package rapidviz_test

import (
	"math"
	"strings"
	"testing"

	"repro"
	"repro/internal/xrand"
)

// mkGroups builds materialized groups with the given means on [0,100].
func mkGroups(means []float64, n int, seed uint64) []rapidviz.Group {
	r := xrand.New(seed)
	groups := make([]rapidviz.Group, len(means))
	for i, mu := range means {
		d := xrand.TruncNormal{Mu: mu, Sigma: 8, Lo: 0, Hi: 100}
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = d.Sample(r)
		}
		groups[i] = rapidviz.GroupFromValues(name(i), vals)
	}
	return groups
}

func name(i int) string { return string(rune('A' + i)) }

// ordered reports whether est orders exactly like truth.
func ordered(est, truth []float64) bool {
	for i := range truth {
		for j := i + 1; j < len(truth); j++ {
			if truth[i] < truth[j] && !(est[i] < est[j]) {
				return false
			}
			if truth[i] > truth[j] && !(est[i] > est[j]) {
				return false
			}
		}
	}
	return true
}

func TestOrderEndToEnd(t *testing.T) {
	means := []float64{20, 45, 70, 90}
	groups := mkGroups(means, 30_000, 1)
	res, err := rapidviz.Order(groups, rapidviz.Options{Bound: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !ordered(res.Estimates, means) {
		t.Fatalf("ordering wrong: %v", res.Estimates)
	}
	if res.TotalSamples >= 4*30_000 {
		t.Fatal("sampled the whole dataset")
	}
	if len(res.Names) != 4 || res.Names[0] != "A" {
		t.Fatalf("names %v", res.Names)
	}
	var sum int64
	for _, c := range res.SampleCounts {
		sum += c
	}
	if sum != res.TotalSamples {
		t.Fatal("sample accounting inconsistent")
	}
}

func TestOrderBeatsRoundRobinAndRefine(t *testing.T) {
	means := []float64{20, 49, 51, 90}
	groups := mkGroups(means, 100_000, 3)
	opts := rapidviz.Options{Bound: 100, Seed: 4}
	fo, err := rapidviz.Order(groups, opts)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := rapidviz.RoundRobin(groups, opts)
	if err != nil {
		t.Fatal(err)
	}
	re, err := rapidviz.Refine(groups, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fo.TotalSamples >= rr.TotalSamples {
		t.Fatalf("Order (%d) not cheaper than RoundRobin (%d)", fo.TotalSamples, rr.TotalSamples)
	}
	if fo.TotalSamples >= re.TotalSamples {
		t.Fatalf("Order (%d) not cheaper than Refine (%d)", fo.TotalSamples, re.TotalSamples)
	}
}

func TestExact(t *testing.T) {
	groups := []rapidviz.Group{
		rapidviz.GroupFromValues("x", []float64{1, 2, 3}),
		rapidviz.GroupFromValues("y", []float64{10, 20}),
	}
	res, err := rapidviz.Exact(groups, rapidviz.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates[0] != 2 || res.Estimates[1] != 15 {
		t.Fatalf("exact %v", res.Estimates)
	}
}

func TestBoundInference(t *testing.T) {
	groups := []rapidviz.Group{
		rapidviz.GroupFromValues("x", []float64{1, 2, 50}),
		rapidviz.GroupFromValues("y", []float64{10, 20, 30}),
	}
	// No bound given: inferred from the data; the run must succeed.
	if _, err := rapidviz.Order(groups, rapidviz.Options{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	// Negative values cannot be shifted automatically.
	neg := []rapidviz.Group{rapidviz.GroupFromValues("n", []float64{-1, 2})}
	if _, err := rapidviz.Order(neg, rapidviz.Options{}); err == nil {
		t.Fatal("negative values accepted without bound")
	}
}

func TestFuncGroups(t *testing.T) {
	r := xrand.New(6)
	mk := func(name string, mean float64) rapidviz.Group {
		d := xrand.TruncNormal{Mu: mean, Sigma: 5, Lo: 0, Hi: 100}
		return rapidviz.GroupFromFunc(name, 1_000_000, func() float64 { return d.Sample(r) })
	}
	groups := []rapidviz.Group{mk("low", 30), mk("high", 70)}
	// Func groups require an explicit bound.
	if _, err := rapidviz.Order(groups, rapidviz.Options{}); err == nil {
		t.Fatal("missing bound accepted for func group")
	}
	res, err := rapidviz.Order(groups, rapidviz.Options{Bound: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Estimates[0] < res.Estimates[1]) {
		t.Fatal("func group ordering wrong")
	}
}

func TestResolutionOption(t *testing.T) {
	means := []float64{50, 50.8}
	groups := mkGroups(means, 300_000, 8)
	strict := rapidviz.Options{Bound: 100, Seed: 9}
	relaxed := rapidviz.Options{Bound: 100, Seed: 9, Resolution: 4}
	rs, err := rapidviz.Order(groups, strict)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := rapidviz.Order(groups, relaxed)
	if err != nil {
		t.Fatal(err)
	}
	if rr.TotalSamples >= rs.TotalSamples {
		t.Fatalf("resolution did not help: %d vs %d", rr.TotalSamples, rs.TotalSamples)
	}
}

func TestTrendAPI(t *testing.T) {
	means := []float64{20, 40, 60, 40.5}
	groups := mkGroups(means, 200_000, 10)
	res, err := rapidviz.Trend(groups, rapidviz.Options{Bound: 100, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(means); i++ {
		if means[i] < means[i+1] && !(res.Estimates[i] < res.Estimates[i+1]) {
			t.Fatalf("adjacent pair %d wrong", i)
		}
		if means[i] > means[i+1] && !(res.Estimates[i] > res.Estimates[i+1]) {
			t.Fatalf("adjacent pair %d wrong", i)
		}
	}
	if out := res.RenderTrend(); !strings.Contains(out, "…") {
		t.Fatalf("trend render: %q", out)
	}
}

func TestTopTAPI(t *testing.T) {
	means := []float64{10, 80, 30, 90, 50}
	groups := mkGroups(means, 50_000, 12)
	res, err := rapidviz.TopT(groups, 2, rapidviz.Options{Bound: 100, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Top) != 2 || res.Top[0] != "D" || res.Top[1] != "B" {
		t.Fatalf("top-2 %v", res.Top)
	}
}

func TestOrderWithValuesAPI(t *testing.T) {
	means := []float64{25, 55, 85}
	groups := mkGroups(means, 200_000, 14)
	res, err := rapidviz.OrderWithValues(groups, 3, rapidviz.Options{Bound: 100, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	for i, est := range res.Estimates {
		truth := 0.0
		switch i {
		case 0:
			truth = groups[0].TrueMean()
		case 1:
			truth = groups[1].TrueMean()
		case 2:
			truth = groups[2].TrueMean()
		}
		if math.Abs(est-truth) > 3 {
			t.Fatalf("value bound violated: |%v - %v| > 3", est, truth)
		}
	}
}

func TestOrderAllowingMistakesAPI(t *testing.T) {
	means := []float64{10, 50, 50.05, 90}
	groups := mkGroups(means, 400_000, 16)
	opts := rapidviz.Options{Bound: 100, Seed: 17, MaxRounds: 1 << 20}
	strict, err := rapidviz.Order(groups, opts)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := rapidviz.OrderAllowingMistakes(groups, 0.8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fast.TotalSamples >= strict.TotalSamples {
		t.Fatalf("mistakes mode (%d) not cheaper than strict (%d)", fast.TotalSamples, strict.TotalSamples)
	}
}

func TestSumAPI(t *testing.T) {
	// Bigger group, smaller values: sums order opposite to means.
	r := xrand.New(18)
	big := make([]float64, 50_000)
	small := make([]float64, 5_000)
	for i := range big {
		big[i] = 10 + r.Float64()
	}
	for i := range small {
		small[i] = 90 + r.Float64()
	}
	groups := []rapidviz.Group{
		rapidviz.GroupFromValues("big", big),
		rapidviz.GroupFromValues("small", small),
	}
	res, err := rapidviz.Sum(groups, rapidviz.Options{Bound: 100, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Estimates[0] > res.Estimates[1]) {
		t.Fatalf("sum ordering wrong: %v", res.Estimates)
	}
}

func TestOnPartialStreams(t *testing.T) {
	means := []float64{10, 50, 52, 90}
	groups := mkGroups(means, 200_000, 20)
	var got []string
	opts := rapidviz.Options{Bound: 100, Seed: 21}
	opts.OnPartial = func(g string, est float64) { got = append(got, g) }
	if _, err := rapidviz.Order(groups, opts); err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("partials %v", got)
	}
}

func TestRender(t *testing.T) {
	groups := mkGroups([]float64{30, 70}, 20_000, 22)
	res, err := rapidviz.Order(groups, rapidviz.Options{Bound: 100, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") || !strings.Contains(out, "█") {
		t.Fatalf("render: %q", out)
	}
	bars := res.Bars()
	if len(bars) != 2 || bars[0].Err != res.Epsilon {
		t.Fatalf("bars %v", bars)
	}
}

func TestNoGroups(t *testing.T) {
	if _, err := rapidviz.Order(nil, rapidviz.Options{}); err == nil {
		t.Fatal("empty group list accepted")
	}
}

func TestDeterministicDefaultSeed(t *testing.T) {
	a, err := rapidviz.Order(mkGroups([]float64{30, 70}, 10_000, 24), rapidviz.Options{Bound: 100})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rapidviz.Order(mkGroups([]float64{30, 70}, 10_000, 24), rapidviz.Options{Bound: 100})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalSamples != b.TotalSamples {
		t.Fatal("default runs not deterministic")
	}
}
