package rapidviz

import (
	"context"
	"sync"
	"testing"
)

// BenchmarkSharedSamples measures the point of the broker: eight identical
// concurrent ifocus queries over one table, with and without sample
// sharing. "logical" samples are what the queries consumed (Σ TotalSamples);
// "physical" samples are what actually hit the data. Solo, the two are
// equal; shared, physical collapses toward one query's worth, and the
// reduction_x metric (logical/physical) should approach the subscriber
// count — the acceptance floor is 5x.
func BenchmarkSharedSamples(b *testing.B) {
	tab := whereTestTable(b, 20000)
	const concurrent = 8
	query := Query{Seed: 7, Bound: 100, Resolution: 1, BatchSize: 64}

	run := func(b *testing.B, share bool) {
		eng, err := NewEngine(EngineConfig{Workers: 2 * concurrent, ShareSamples: share})
		if err != nil {
			b.Fatal(err)
		}
		var logical, physical int64
		b.ResetTimer()
		for n := 0; n < b.N; n++ {
			results := make([]*Result, concurrent)
			var wg sync.WaitGroup
			for i := 0; i < concurrent; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					res, err := eng.Run(context.Background(), query, tab.View())
					if err != nil {
						b.Error(err)
						return
					}
					results[i] = res
				}(i)
			}
			wg.Wait()
			if b.Failed() {
				return
			}
			for _, res := range results {
				logical += res.TotalSamples
			}
		}
		b.StopTimer()
		if share {
			physical = eng.BrokerStats().SamplesDrawn
		} else {
			physical = logical
		}
		b.ReportMetric(float64(logical)/float64(b.N), "logical-samples/op")
		b.ReportMetric(float64(physical)/float64(b.N), "physical-samples/op")
		if physical > 0 {
			b.ReportMetric(float64(logical)/float64(physical), "reduction_x")
		}
	}

	b.Run("solo", func(b *testing.B) { run(b, false) })
	b.Run("shared", func(b *testing.B) { run(b, true) })
}
