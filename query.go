package rapidviz

import (
	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/xrand"
)

// Query.ConfidenceBound values.
const (
	// BoundHoeffding is the paper's anytime Hoeffding/Serfling schedule —
	// the default, and bit-for-bit the behavior from before confidence
	// bounds became pluggable.
	BoundHoeffding = string(conc.KindHoeffding)
	// BoundBernstein is the variance-adaptive empirical-Bernstein bound:
	// per-group interval widths that shrink with the observed spread.
	BoundBernstein = string(conc.KindBernstein)
	// BoundBernsteinFinite is BoundBernstein with a finite-population
	// correction for without-replacement sampling.
	BoundBernsteinFinite = string(conc.KindBernsteinFinite)
)

// Aggregate selects what a Query estimates per group.
type Aggregate = core.AggregateKind

// Aggregate values.
const (
	// AggAvg estimates per-group averages — the paper's main setting and
	// the default.
	AggAvg Aggregate = core.AggAvg
	// AggSum estimates per-group SUMs with the ordering guarantee
	// (Algorithm 4). Group sizes must be known.
	AggSum Aggregate = core.AggSum
	// AggNormalizedSum estimates normalized sums s_i·µ_i (Algorithm 5)
	// from membership sampling, never consuming exact group sizes.
	// Multiply by the table size to recover absolute sums.
	AggNormalizedSum Aggregate = core.AggNormalizedSum
	// AggCount reports exact per-group tuple counts (free when sizes are
	// known).
	AggCount Aggregate = core.AggCount
	// AggNormalizedCount estimates fractional group sizes with correct
	// ordering via membership sampling (§6.3.2).
	AggNormalizedCount Aggregate = core.AggNormalizedCount
	// AggAvgPair estimates AVG(Y) and AVG(Z) together from shared tuple
	// draws (§6.3.5). Groups must come from GroupFromPairs, and the query
	// needs an explicit Bound covering both attributes. The Z estimates
	// are returned in Result.SecondEstimates.
	AggAvgPair Aggregate = core.AggAvgPair
)

// Guarantee selects which orderings a Query certifies (each with
// probability at least 1−Delta).
type Guarantee = core.GuaranteeKind

// Guarantee values.
const (
	// GuaranteeOrder certifies the full ordering of all groups (Problem 1)
	// — the default.
	GuaranteeOrder Guarantee = core.GuarOrder
	// GuaranteeTrend certifies adjacent pairs only (Problem 3), the right
	// property for trend lines, at a fraction of the samples.
	GuaranteeTrend Guarantee = core.GuarTrend
	// GuaranteeTopT identifies the T groups with the largest true
	// aggregates and orders them among themselves (Problem 4). Set
	// Query.T.
	GuaranteeTopT Guarantee = core.GuarTopT
	// GuaranteeValues adds |estimate − truth| ≤ MaxError on top of the
	// ordering (Problem 6). Set Query.MaxError.
	GuaranteeValues Guarantee = core.GuarValues
	// GuaranteeMistakes certifies only a CorrectPairs fraction of the
	// pairwise comparisons, skipping the hardest ones (Problem 5). Set
	// Query.CorrectPairs.
	GuaranteeMistakes Guarantee = core.GuarMistakes
	// GuaranteeAdjacency certifies the pairs of an arbitrary neighbour
	// graph (§6.1.1 — chloropleth maps). Set Query.Adjacency.
	GuaranteeAdjacency Guarantee = core.GuarAdjacency
)

// Algorithm selects the sampling strategy of a Query.
type Algorithm = core.Algorithm

// Algorithm values.
const (
	// AlgoAuto — the default — picks IFOCUS, the paper's optimal
	// algorithm.
	AlgoAuto Algorithm = core.AlgoAuto
	// AlgoIFocus forces IFOCUS (Algorithm 1).
	AlgoIFocus Algorithm = core.AlgoIFocus
	// AlgoIRefine runs the interval-halving IREFINE baseline
	// (Algorithm 3): correct but provably non-optimal.
	AlgoIRefine Algorithm = core.AlgoIRefine
	// AlgoRoundRobin runs conventional stratified sampling under the same
	// guarantee — the paper's baseline.
	AlgoRoundRobin Algorithm = core.AlgoRoundRobin
	// AlgoScan computes exact averages by reading every value.
	AlgoScan Algorithm = core.AlgoScan
	// AlgoNoIndex assumes no index on the group-by attribute (Problem 9):
	// only whole-table tuple sampling is available. Group sizes must be
	// known so table-wide draws can be simulated.
	AlgoNoIndex Algorithm = core.AlgoNoIndex
)

// Query declaratively describes one visualization query. The zero value
// asks for AVG estimates of every group under the full ordering guarantee
// using IFOCUS, with the engine's defaults for δ, bound, and seed.
//
// Queries are plain values: build them once, reuse and copy them freely,
// and execute them with Engine.Run or Engine.Stream.
type Query struct {
	// Aggregate is the per-group statistic to estimate. Default AggAvg.
	Aggregate Aggregate
	// Guarantee is the set of orderings to certify. Default
	// GuaranteeOrder. Guarantees other than GuaranteeOrder require the
	// IFOCUS family (AlgoAuto or AlgoIFocus).
	Guarantee Guarantee
	// Algorithm is the sampling strategy. Default AlgoAuto (IFOCUS).
	Algorithm Algorithm

	// T is the number of top groups for GuaranteeTopT; must satisfy
	// 1 ≤ T ≤ k.
	T int
	// MaxError is the per-group value bound d for GuaranteeValues; must
	// be positive.
	MaxError float64
	// CorrectPairs is the fraction of pairwise comparisons that must be
	// certain for GuaranteeMistakes; must be in (0, 1].
	CorrectPairs float64
	// Adjacency lists, per group, the indices of the groups it must be
	// ordered against, for GuaranteeAdjacency. Symmetrized internally.
	Adjacency [][]int
	// SubGroups, when positive, switches to the multiple-group-by setting
	// of §6.3.4: every input group is an indexed stratum whose tuples
	// carry a secondary key in [0, SubGroups), and the query estimates
	// every (group, key) cell. Groups must come from GroupFromCells.
	SubGroups int

	// Where restricts the query to the rows satisfying every listed
	// predicate (a conjunction): typed comparisons on the table's value
	// column or any extra column (Where/WhereValue), plus group-name
	// inclusion (WhereGroups). Filtered queries require table-backed
	// groups — pass Table.Groups() or Table.View() — because predicates
	// evaluate against the table's columns, not the sample stream. The
	// engine plans each filter once (group inclusion answers from the
	// group index; value predicates scan-and-filter) and caches the
	// resulting selection per table, keyed by the predicates' canonical
	// fingerprint, so repeated filtered queries pay the scan once. Groups
	// left empty by the filter are dropped from the result; sampling over
	// the survivors carries the same 1−δ ordering guarantee, with group
	// sizes taken from the selection cardinalities.
	Where []Predicate

	// Delta is the permitted probability that a certified ordering is
	// wrong. Zero means the engine default (0.05). Must be in (0, 1).
	Delta float64
	// Bound is the value bound c: every value must lie in [0, Bound].
	// Zero means the engine default, or — when that is zero too — the
	// maximum over materialized groups.
	Bound float64
	// ConfidenceBound selects the concentration inequality behind the
	// query's confidence intervals. Empty or BoundHoeffding keeps the
	// paper's anytime Hoeffding/Serfling schedule — one shared interval
	// width per round, the exact pre-existing behavior. BoundBernstein
	// switches to variance-adaptive empirical-Bernstein intervals: each
	// group's width scales with its *observed* spread (maintained
	// incrementally, single-pass), so low-variance groups separate with
	// far fewer samples — often several-fold fewer on well-behaved data —
	// under the same 1−Delta guarantee. BoundBernsteinFinite adds a
	// finite-population correction for without-replacement sampling.
	ConfidenceBound string
	// Resolution relaxes the guarantee to Problem 2: pairs of true
	// aggregates within Resolution of each other may be ordered either
	// way, which terminates (much) faster. Zero disables.
	Resolution float64
	// WithReplacement switches to with-replacement sampling (§3.6); group
	// sizes then need not be exact. Forced on for func-backed groups.
	WithReplacement bool

	// BatchSize is the number of fresh samples drawn from each contentious
	// group per sampling round. Zero (the default) selects the auto-batch
	// schedule: blocks start at 64 and double each round up to 4096 — a
	// deterministic, fixed schedule (never tuned from timings, which would
	// break run-to-run reproducibility), so a default query is both fast
	// and repeatable. 1 selects the paper's one-sample-per-round schedule;
	// explicit larger blocks — 64 and up — fix the block size, amortizing
	// per-draw dispatch and bookkeeping over dense block draws at the cost
	// of up to BatchSize−1 extra samples per group. The confidence
	// schedule is indexed by cumulative draws, so the ordering guarantee
	// is unaffected at any block size. NOINDEX queries are the exception:
	// their batch scales the interval-check cadence, so 0 keeps the scalar
	// cadence there. Negative values are invalid.
	BatchSize int
	// RoundGrowth, when above 1, grows the per-round block geometrically
	// (a group holding c samples draws about (RoundGrowth−1)·c fresh ones
	// next round), bounding bookkeeping to O(log) rounds in the total
	// samples. 0 and 1 keep blocks fixed at BatchSize; values in (0, 1)
	// are invalid.
	RoundGrowth float64
	// Workers caps the parallelism of this query's sampling rounds and
	// exact scans. Zero (the default) lets the engine decide: dense-block
	// queries (auto-batch, BatchSize ≥ 64, or geometric RoundGrowth) are
	// offered however many worker slots are idle when they start — a lone
	// query uses the whole pool, concurrent traffic shares it. Whatever
	// the cap, the core driver's fan-out is adaptive per round: it is
	// clamped to the machine's schedulable parallelism, rounds too small
	// to amortize the pool dispatch run inline, and a periodic timing
	// probe falls back to the sequential loop whenever parallel draws do
	// not actually run faster — so Workers is safe to leave on (or at 0)
	// everywhere, single-core hosts included. Results are bit-for-bit
	// identical for every value (each group's randomness is its own
	// seed-derived stream; timing only picks how the same draws execute),
	// so Workers is purely a throughput knob. 1 pins the query to a
	// single goroutine. Negative values are invalid.
	Workers int

	// ShareSamples opts this query into the engine's per-table sample
	// broker: concurrent queries over the same table, Where filter,
	// sampling mode, and resolved seed draw from one shared physical
	// stream instead of each drawing its own — N identical-table queries
	// cost ~1× the memory traffic rather than N×. Results are bit-for-bit
	// identical to running solo (each group's draws are a pure function of
	// the resolved seed and the group's cumulative draw count, no matter
	// who triggers them), so sharing is purely a throughput knob;
	// Result.Shared reports whether a broker actually served the run.
	// Advisory: query shapes with custom draw paths — AggNormalizedSum,
	// AggNormalizedCount, AggAvgPair, SubGroups, and the non-round-driver
	// algorithms (AlgoIRefine, AlgoScan, AlgoNoIndex) — and non-table
	// group sets silently run solo. Queries sharing a broker never mutate
	// their groups' draw state, so a shared group set (Table.Groups) is
	// safe under concurrent broker-fed queries.
	ShareSamples bool

	// Seed seeds the query's random stream. With Deterministic false
	// (default), zero selects the engine's default seed; any other value
	// is used as given. With Deterministic true, Seed is used exactly as
	// written — an explicit seed of 0 is honored rather than replaced.
	Seed uint64
	// Deterministic marks Seed as intentional even when it is zero. It
	// exists because a bare uint64 cannot distinguish "unset" from "0".
	Deterministic bool

	// MaxRounds caps sampling rounds as a safety valve; capped runs void
	// the guarantee and report Result.Capped. Zero means the engine
	// default.
	MaxRounds int
	// MaxDraws caps total tuple draws for AlgoNoIndex and SubGroups
	// queries (0 = unlimited).
	MaxDraws int64

	// OnRound, when non-nil, observes the run round by round: current
	// estimates, which groups are still being sampled, and the per-group
	// confidence half-widths — equal under the default schedule, per
	// group under variance-adaptive bounds. It is called synchronously on
	// the sampling goroutine; keep it cheap, and copy any slice you
	// retain (they are reused between rounds). Supported by the sampling
	// algorithms — AlgoNoIndex reports at its interval-check cadence,
	// once every group has landed a tuple — but not by AlgoScan (no
	// rounds) or SubGroups queries.
	OnRound func(RoundTrace)
}

// RoundTrace is one per-round observability event delivered to
// Query.OnRound. All slices are index-aligned with the groups the query
// actually sampled and are only valid during the call — copy to retain.
type RoundTrace struct {
	// Round is the sampling round number m, from 1.
	Round int `json:"round"`
	// Epsilon is the widest live confidence half-width.
	Epsilon float64 `json:"epsilon"`
	// GroupEpsilons holds each group's current half-width: its live
	// radius while sampling, the width its interval was frozen at after
	// settling. Nil for algorithms that report only the scalar width.
	GroupEpsilons []float64 `json:"group_epsilons,omitempty"`
	// Active flags the groups still being sampled.
	Active []bool `json:"active"`
	// Estimates are the current running estimates.
	Estimates []float64 `json:"estimates"`
	// TotalSamples is the cumulative sample count across all groups.
	TotalSamples int64 `json:"total_samples"`
}

// PredicateOp is the comparison operator of a Where predicate.
type PredicateOp = dataset.PredicateOp

// PredicateOp values.
const (
	// OpLT keeps rows whose column is strictly below the constant.
	OpLT PredicateOp = dataset.OpLT
	// OpLE keeps rows whose column is at most the constant.
	OpLE PredicateOp = dataset.OpLE
	// OpGT keeps rows whose column is strictly above the constant.
	OpGT PredicateOp = dataset.OpGT
	// OpGE keeps rows whose column is at least the constant.
	OpGE PredicateOp = dataset.OpGE
	// OpEQ keeps rows whose column equals the constant exactly.
	OpEQ PredicateOp = dataset.OpEQ
	// OpNE keeps rows whose column differs from the constant.
	OpNE PredicateOp = dataset.OpNE
)

// Predicate is one conjunct of a Query.Where filter: a typed comparison
// on a table column, or a group-name inclusion. Build them with Where,
// WhereValue, and WhereGroups.
type Predicate = dataset.Predicate

// Where returns a predicate comparing the named column against a
// constant. The column is the table's value column (its ingested name,
// "value", or "") or any extra column declared at ingestion (CSV header
// fields past the value column, or NewTableBuilderColumns).
func Where(column string, op PredicateOp, value float64) Predicate {
	return Predicate{Column: column, Op: op, Value: value}
}

// WhereValue returns a predicate comparing the aggregated value column
// against a constant.
func WhereValue(op PredicateOp, value float64) Predicate {
	return Predicate{Op: op, Value: value}
}

// WhereGroups returns a predicate keeping only the named groups. It is
// answered from the table's group index without reading any rows.
func WhereGroups(names ...string) Predicate {
	return Predicate{Groups: names}
}

// Partial is one streamed partial result: a group whose estimate has
// settled while the query is still running (§6.2.2). Analysts can start
// reading the chart before the contentious bars finish.
//
// Partials are wire types: the json tags fix the serialized field names
// (snake_case) independently of the Go identifiers, so network consumers
// — rapidvizd's WebSocket protocol among them — can rely on a stable
// payload shape.
type Partial struct {
	// Group is the settled group's name; Index its position among the
	// groups the query actually sampled (for Where queries, the surviving
	// groups in table order — the same indexing as Result.Names).
	Group string `json:"group"`
	Index int    `json:"index"`
	// Estimate is the group's final estimate.
	Estimate float64 `json:"estimate"`
	// Round is the sampling round at which the group settled.
	Round int `json:"round"`
	// HalfWidth is the confidence half-width the group's interval was
	// frozen at when it settled: the estimate is within ±HalfWidth of the
	// true aggregate with the query's confidence. Per group under
	// variance-adaptive bounds, the shared ε under the default schedule.
	HalfWidth float64 `json:"half_width"`
}

// Event is one element of a Stream: either a Partial, or — exactly once,
// last — the terminal Result or error.
type Event struct {
	// Partial is non-nil for settle events.
	Partial *Partial
	// Result is non-nil on the terminal event of a successful run.
	Result *Result
	// Err is non-nil on the terminal event of a failed or canceled run.
	Err error
}

// GroupFromPairs returns a materialized group whose tuples carry two
// aggregate attributes (Y, Z), for AggAvgPair queries. The slices are
// retained and must be parallel; do not mutate them afterwards.
func GroupFromPairs(name string, ys, zs []float64) Group {
	return dataset.NewSlicePairGroup(name, ys, zs)
}

// CellGroup is a group whose tuples additionally carry a discrete
// secondary key, modelling one indexed stratum of a GROUP BY X, Z query
// where only X is indexed (§6.3.4). Queries with SubGroups > 0 require
// every group to implement it.
type CellGroup interface {
	Group
	// DrawCell returns the secondary key and value of one uniform random
	// tuple.
	DrawCell(r *xrand.RNG) (z int, y float64)
	// NumCells returns the number of distinct secondary-key values.
	NumCells() int
}

// GroupFromCells returns a materialized CellGroup: cells[z] holds the
// values of the tuples whose secondary key is z. Empty cells are allowed;
// the group as a whole must be non-empty.
func GroupFromCells(name string, cells [][]float64) Group {
	var zs []int
	var ys []float64
	for z, vals := range cells {
		for _, v := range vals {
			zs = append(zs, z)
			ys = append(ys, v)
		}
	}
	if len(ys) == 0 {
		panic("rapidviz: cell group " + name + " has no values")
	}
	sum := 0.0
	for _, v := range ys {
		sum += v
	}
	return &cellSliceGroup{
		name: name,
		zs:   zs,
		ys:   ys,
		kz:   len(cells),
		mean: sum / float64(len(ys)),
	}
}

// cellSliceGroup is the materialized CellGroup behind GroupFromCells.
type cellSliceGroup struct {
	name string
	zs   []int
	ys   []float64
	kz   int
	mean float64
}

func (g *cellSliceGroup) Name() string      { return g.name }
func (g *cellSliceGroup) Size() int64       { return int64(len(g.ys)) }
func (g *cellSliceGroup) TrueMean() float64 { return g.mean }
func (g *cellSliceGroup) NumCells() int     { return g.kz }

func (g *cellSliceGroup) Draw(r *xrand.RNG) float64 {
	return g.ys[r.Intn(len(g.ys))]
}

func (g *cellSliceGroup) DrawCell(r *xrand.RNG) (int, float64) {
	i := r.Intn(len(g.ys))
	return g.zs[i], g.ys[i]
}

// Scan visits every value, enabling bound inference and the SCAN baseline.
func (g *cellSliceGroup) Scan(fn func(v float64)) int64 {
	for _, v := range g.ys {
		fn(v)
	}
	return int64(len(g.ys))
}

// cellSource adapts a slice of CellGroups to the core sampling interface.
type cellSource struct {
	groups []CellGroup
	kz     int
	c      float64
}

func (s *cellSource) NumX() int  { return len(s.groups) }
func (s *cellSource) NumZ() int  { return s.kz }
func (s *cellSource) C() float64 { return s.c }
func (s *cellSource) Draw(x int, r *xrand.RNG) (int, float64) {
	return s.groups[x].DrawCell(r)
}
