package rapidviz

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// TestBrokerMatchesSolo is the sharing acceptance pin: for every shareable
// algorithm × confidence bound × batch size × filter shape, eight
// concurrent broker-fed queries return bit-for-bit the result of a solo
// run — sharing changes who pays for the draws, never their values. Run
// under -race this also exercises the broker's concurrent fan-out.
func TestBrokerMatchesSolo(t *testing.T) {
	tab := whereTestTable(t, 2000)
	eng, err := NewEngine(EngineConfig{Workers: 16})
	if err != nil {
		t.Fatal(err)
	}

	type shape struct {
		name  string
		query Query
	}
	var shapes []shape
	for _, algo := range []Algorithm{AlgoAuto, AlgoRoundRobin} {
		for _, bound := range []string{BoundHoeffding, BoundBernstein} {
			for _, batch := range []int{1, 64} {
				for _, where := range []bool{false, true} {
					q := Query{
						Algorithm:       algo,
						ConfidenceBound: bound,
						BatchSize:       batch,
						Seed:            42,
						Bound:           100,
						Resolution:      2,
					}
					if where {
						q.Where = []Predicate{Where("qty", OpGE, 5)}
					}
					shapes = append(shapes, shape{
						name:  fmt.Sprintf("algo=%v/bound=%s/batch=%d/where=%t", algo, bound, batch, where),
						query: q,
					})
				}
			}
		}
	}

	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			solo, err := eng.Run(context.Background(), sh.query, tab.View())
			if err != nil {
				t.Fatal(err)
			}
			if solo.Shared {
				t.Fatal("solo run reported Shared")
			}
			want := resultFingerprint(solo)

			const concurrent = 8
			results := make([]*Result, concurrent)
			errs := make([]error, concurrent)
			var wg sync.WaitGroup
			for i := 0; i < concurrent; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					q := sh.query
					q.ShareSamples = true
					results[i], errs[i] = eng.Run(context.Background(), q, tab.View())
				}(i)
			}
			wg.Wait()
			for i := 0; i < concurrent; i++ {
				if errs[i] != nil {
					t.Fatalf("shared run %d: %v", i, errs[i])
				}
				if !results[i].Shared {
					t.Fatalf("shared run %d did not attach to a broker", i)
				}
				if got := resultFingerprint(results[i]); got != want {
					t.Fatalf("shared run %d diverged from solo:\n got %s\nwant %s", i, got, want)
				}
			}
		})
	}

	stats := eng.BrokerStats()
	if stats.Active != 0 {
		t.Fatalf("brokers leaked: %d still active", stats.Active)
	}
	if stats.Attached == 0 || stats.SamplesServed < stats.SamplesDrawn {
		t.Fatalf("implausible broker stats: %+v", stats)
	}
}

// TestShareSamplesLateSubscriber pins engine-level catch-up: a query that
// subscribes after another already drove the broker's streams deep folds
// the retained prefix and still matches its solo result exactly.
func TestShareSamplesLateSubscriber(t *testing.T) {
	tab := whereTestTable(t, 2000)
	eng, err := NewEngine(EngineConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// An early long-running query (tight resolution → many rounds) holds
	// the broker open while a quick late query attaches mid-stream.
	early := Query{Seed: 9, Bound: 100, Resolution: 0.5, ShareSamples: true, BatchSize: 64}
	late := Query{Seed: 9, Bound: 100, Resolution: 4, ShareSamples: true, BatchSize: 64}

	soloLate, err := eng.Run(context.Background(), late, tab.View())
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	started := make(chan struct{})
	var earlyErr error
	go func() {
		defer wg.Done()
		close(started)
		_, earlyErr = eng.Run(context.Background(), early, tab.View())
	}()
	<-started
	sharedLate, err := eng.Run(context.Background(), late, tab.View())
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if earlyErr != nil {
		t.Fatal(earlyErr)
	}
	if got, want := resultFingerprint(sharedLate), resultFingerprint(soloLate); got != want {
		t.Fatalf("late subscriber diverged from its solo run:\n got %s\nwant %s", got, want)
	}
}

// TestShareSamplesCrossFingerprint pins that queries with different
// fingerprints (different δ here) share one broker — the broker key is
// (table, filter, mode, seed), not the full query — and each still matches
// its own solo run.
func TestShareSamplesCrossFingerprint(t *testing.T) {
	tab := whereTestTable(t, 2000)
	eng, err := NewEngine(EngineConfig{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	qa := Query{Seed: 5, Bound: 100, Resolution: 2, Delta: 0.05, BatchSize: 64}
	qb := Query{Seed: 5, Bound: 100, Resolution: 2, Delta: 0.2, BatchSize: 64}
	if eng.Fingerprint(qa) == eng.Fingerprint(qb) {
		t.Fatal("test needs distinct fingerprints")
	}
	wantA := resultFingerprint(mustRun(t, eng, qa, tab))
	wantB := resultFingerprint(mustRun(t, eng, qb, tab))

	qa.ShareSamples, qb.ShareSamples = true, true
	var wg sync.WaitGroup
	var gotA, gotB *Result
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); gotA, errA = eng.Run(context.Background(), qa, tab.View()) }()
	go func() { defer wg.Done(); gotB, errB = eng.Run(context.Background(), qb, tab.View()) }()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if got := resultFingerprint(gotA); got != wantA {
		t.Fatalf("δ=0.05 shared run diverged:\n got %s\nwant %s", got, wantA)
	}
	if got := resultFingerprint(gotB); got != wantB {
		t.Fatalf("δ=0.2 shared run diverged:\n got %s\nwant %s", got, wantB)
	}
}

// TestShareSamplesFallbackShapes pins the advisory fallback: ineligible
// shapes run solo — same result, Shared false — rather than erroring.
func TestShareSamplesFallbackShapes(t *testing.T) {
	tab := whereTestTable(t, 500)
	eng, err := NewEngine(EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{
		{Algorithm: AlgoIRefine, Seed: 3, Bound: 100, Resolution: 2},
		{Algorithm: AlgoNoIndex, Seed: 3, Bound: 100, Resolution: 2},
		{Aggregate: AggNormalizedSum, Seed: 3, Bound: 100, Resolution: 2},
	} {
		want := resultFingerprint(mustRun(t, eng, q, tab))
		q.ShareSamples = true
		res, err := eng.Run(context.Background(), q, tab.View())
		if err != nil {
			t.Fatalf("fallback shape %v errored: %v", q.Algorithm, err)
		}
		if res.Shared {
			t.Fatalf("ineligible shape %v/%v reported Shared", q.Algorithm, q.Aggregate)
		}
		if got := resultFingerprint(res); got != want {
			t.Fatalf("fallback shape diverged:\n got %s\nwant %s", got, want)
		}
	}
}

func mustRun(t *testing.T, eng *Engine, q Query, tab *Table) *Result {
	t.Helper()
	res, err := eng.Run(context.Background(), q, tab.View())
	if err != nil {
		t.Fatal(err)
	}
	return res
}
