// Package rapidviz generates approximate visualizations with ordering
// guarantees, implementing the sampling algorithms of "Rapid Sampling for
// Visualizations with Ordering Guarantees" (Kim, Blais, Parameswaran,
// Indyk, Madden, Rubinfeld — VLDB 2015).
//
// Given k groups of bounded numeric values (the result groups of a
// SELECT X, AVG(Y) ... GROUP BY X query), Order returns per-group average
// estimates whose *ordering* matches the true averages with probability at
// least 1−δ — while sampling far fewer values than any scheme that first
// nails down each average. The flagship algorithm, IFOCUS, concentrates
// samples on the groups whose confidence intervals still overlap and stops
// sampling a group the moment its interval separates; its sample complexity
// is optimal up to log-log factors.
//
// Quick start:
//
//	groups := []rapidviz.Group{
//		rapidviz.GroupFromValues("AA", delaysAA),
//		rapidviz.GroupFromValues("JB", delaysJB),
//	}
//	res, err := rapidviz.Order(groups, rapidviz.Options{Bound: 24 * 60})
//	fmt.Print(res.Render())
//
// Variants cover the paper's §6 extensions: Trend (adjacent-pair ordering
// for trend lines and chloropleths), TopT (identify and order only the top
// t groups), OrderWithValues (additionally bound each estimate's error),
// OrderAllowingMistakes (trade a fraction of pairwise comparisons for
// speed), Sum and Count aggregates, and NoIndex (no index on the group-by
// attribute). Baselines RoundRobin and Refine are included for comparison.
package rapidviz

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/viz"
	"repro/internal/xrand"
)

// Group is a named collection of bounded numeric values that supports
// uniform random sampling — one bar of the eventual chart.
type Group = dataset.Group

// GroupFromValues returns a fully materialized group. The slice is
// retained; do not mutate it afterwards. Materialized groups support exact
// sampling without replacement (the library default).
func GroupFromValues(name string, values []float64) Group {
	return dataset.NewSliceGroup(name, values)
}

// GroupFromFunc returns a group backed by a sampling function: each call
// must return one value drawn uniformly at random (with replacement) from
// the group's population of nominal size n. Use this to plug in an
// external sampling engine (a database index, a service). Runs over
// func-backed groups force sampling with replacement.
func GroupFromFunc(name string, n int64, sample func() float64) Group {
	return &funcGroup{name: name, n: n, sample: sample}
}

type funcGroup struct {
	name   string
	n      int64
	sample func() float64
}

func (g *funcGroup) Name() string            { return g.name }
func (g *funcGroup) Size() int64             { return g.n }
func (g *funcGroup) Draw(*xrand.RNG) float64 { return g.sample() }
func (g *funcGroup) TrueMean() float64       { return math.NaN() }

// Options configures a run. The zero value is usable: it requests δ=0.05,
// κ=1, sampling without replacement, and infers the value bound.
type Options struct {
	// Delta is the permitted probability that the returned ordering is
	// wrong. Zero means 0.05.
	Delta float64
	// Bound is the value bound c: every value must lie in [0, Bound].
	// Zero asks the library to use the maximum over materialized groups
	// (func-backed groups require an explicit bound).
	Bound float64
	// Resolution relaxes the guarantee to Problem 2 of the paper: pairs of
	// true averages within Resolution of each other may be ordered either
	// way. Larger resolutions terminate (much) faster. Zero disables.
	Resolution float64
	// WithReplacement switches to with-replacement sampling (group sizes
	// then need not be exact). Forced on for func-backed groups.
	WithReplacement bool
	// Seed makes the run deterministic; zero picks a fixed default seed
	// (runs are deterministic by default — vary Seed for independence).
	Seed uint64
	// MaxRounds optionally caps sampling rounds as a safety valve; capped
	// runs void the guarantee and are reported via Result.Capped.
	MaxRounds int
	// OnPartial, when non-nil, streams each group's estimate the moment it
	// settles (the paper's partial-results extension): analysts can start
	// reading the chart before the contentious bars finish.
	OnPartial func(group string, estimate float64)
}

func (o Options) normalize(groups []Group) (core.Options, *dataset.Universe, *xrand.RNG, error) {
	if len(groups) == 0 {
		return core.Options{}, nil, nil, fmt.Errorf("rapidviz: no groups")
	}
	opts := core.DefaultOptions()
	if o.Delta != 0 {
		opts.Delta = o.Delta
	}
	opts.Resolution = o.Resolution
	opts.WithReplacement = o.WithReplacement
	opts.MaxRounds = o.MaxRounds

	bound := o.Bound
	for _, g := range groups {
		if _, ok := g.(*funcGroup); ok {
			opts.WithReplacement = true
			if o.Bound == 0 {
				return core.Options{}, nil, nil, fmt.Errorf("rapidviz: func-backed group %q requires an explicit Options.Bound", g.Name())
			}
		}
	}
	if bound == 0 {
		for _, g := range groups {
			sg, ok := g.(*dataset.SliceGroup)
			if !ok {
				return core.Options{}, nil, nil, fmt.Errorf("rapidviz: cannot infer bound for group %q; set Options.Bound", g.Name())
			}
			for _, v := range sg.Values() {
				if v < 0 {
					return core.Options{}, nil, nil, fmt.Errorf("rapidviz: group %q has negative value %v; shift values into [0, c]", g.Name(), v)
				}
				if v > bound {
					bound = v
				}
			}
		}
		if bound == 0 {
			bound = 1
		}
	}
	u := dataset.NewUniverse(bound, groups...)
	seed := o.Seed
	if seed == 0 {
		seed = 0x5eedf00d
	}
	rng := xrand.New(seed)
	if o.OnPartial != nil {
		names := make([]string, len(groups))
		for i, g := range groups {
			names[i] = g.Name()
		}
		cb := o.OnPartial
		opts.OnPartial = func(i int, est float64, round int) { cb(names[i], est) }
	}
	return opts, u, rng, nil
}

// Result reports a run: per-group estimates plus sampling cost.
type Result struct {
	// Names and Estimates are index-aligned; Estimates[i] is ν_i.
	Names     []string
	Estimates []float64
	// SampleCounts are the per-group sample counts m_i; TotalSamples is
	// their sum (the paper's sample complexity C).
	SampleCounts []int64
	TotalSamples int64
	// Epsilon is the final confidence half-width: each estimate is within
	// ±Epsilon of its true average with the run's confidence.
	Epsilon float64
	// Capped reports that MaxRounds fired; the guarantee is void.
	Capped bool
}

func newResult(u *dataset.Universe, r *core.Result) *Result {
	names := make([]string, u.K())
	for i, g := range u.Groups {
		names[i] = g.Name()
	}
	return &Result{
		Names:        names,
		Estimates:    r.Estimates,
		SampleCounts: r.SampleCounts,
		TotalSamples: r.TotalSamples,
		Epsilon:      r.FinalEpsilon,
		Capped:       r.Capped,
	}
}

// Bars converts the result to renderable bars with error bars.
func (r *Result) Bars() []viz.Bar {
	bars := make([]viz.Bar, len(r.Names))
	for i := range bars {
		bars[i] = viz.Bar{Label: r.Names[i], Value: r.Estimates[i], Err: r.Epsilon}
	}
	return bars
}

// Render draws the result as a text bar chart.
func (r *Result) Render() string { return viz.BarChart(r.Bars(), 50) }

// RenderTrend draws the result as a text trend line (for Trend runs).
func (r *Result) RenderTrend() string { return viz.TrendLine(r.Names, r.Estimates) }

// Order estimates every group's average with the ordering guarantee, using
// IFOCUS — the paper's optimal algorithm. With probability at least
// 1−Delta, the returned estimates are ordered exactly as the true averages
// (up to Options.Resolution, when set).
func Order(groups []Group, o Options) (*Result, error) {
	opts, u, rng, err := o.normalize(groups)
	if err != nil {
		return nil, err
	}
	res, err := core.IFocus(u, rng, opts)
	if err != nil {
		return nil, err
	}
	return newResult(u, res), nil
}

// RoundRobin runs the conventional stratified-sampling baseline under the
// same guarantee. It exists for comparison: expect several times the
// samples of Order.
func RoundRobin(groups []Group, o Options) (*Result, error) {
	opts, u, rng, err := o.normalize(groups)
	if err != nil {
		return nil, err
	}
	res, err := core.RoundRobin(u, rng, opts)
	if err != nil {
		return nil, err
	}
	return newResult(u, res), nil
}

// Refine runs the interval-halving IREFINE variant: correct, simpler to
// analyze, but provably non-optimal (expect more samples than Order).
func Refine(groups []Group, o Options) (*Result, error) {
	opts, u, rng, err := o.normalize(groups)
	if err != nil {
		return nil, err
	}
	res, err := core.IRefine(u, rng, opts)
	if err != nil {
		return nil, err
	}
	return newResult(u, res), nil
}

// Exact computes the true averages by scanning every value of every group
// (all groups must be materialized) — the SCAN baseline.
func Exact(groups []Group, o Options) (*Result, error) {
	_, u, _, err := o.normalize(groups)
	if err != nil {
		return nil, err
	}
	res, err := core.Scan(u)
	if err != nil {
		return nil, err
	}
	return newResult(u, res), nil
}

// Trend estimates the averages with the weaker trend-line guarantee: only
// *adjacent* groups (in the given order) are guaranteed to be ordered
// correctly — the right property for time series and chloropleth maps, at
// a fraction of Order's samples.
func Trend(groups []Group, o Options) (*Result, error) {
	opts, u, rng, err := o.normalize(groups)
	if err != nil {
		return nil, err
	}
	res, err := core.Trend(u, rng, opts)
	if err != nil {
		return nil, err
	}
	return newResult(u, res), nil
}

// TopTResult extends Result with the top-t selection.
type TopTResult struct {
	Result
	// Top lists the names of the top-t groups, largest estimate first.
	Top []string
}

// TopT identifies the t groups with the largest true averages and orders
// them correctly among themselves, with probability at least 1−Delta.
// Groups provably outside the top t stop being sampled early, the big
// saving when k is large.
func TopT(groups []Group, t int, o Options) (*TopTResult, error) {
	opts, u, rng, err := o.normalize(groups)
	if err != nil {
		return nil, err
	}
	res, err := core.TopT(u, rng, t, opts)
	if err != nil {
		return nil, err
	}
	out := &TopTResult{Result: *newResult(u, &res.Result)}
	for _, i := range res.Members {
		out.Top = append(out.Top, u.Groups[i].Name())
	}
	return out, nil
}

// OrderWithValues adds a value guarantee on top of the ordering: every
// estimate is within ±maxErr of its true average with probability 1−Delta.
func OrderWithValues(groups []Group, maxErr float64, o Options) (*Result, error) {
	opts, u, rng, err := o.normalize(groups)
	if err != nil {
		return nil, err
	}
	res, err := core.WithValues(u, rng, maxErr, opts)
	if err != nil {
		return nil, err
	}
	return newResult(u, res), nil
}

// OrderAllowingMistakes terminates as soon as a fraction of at least
// correctPairs of all pairwise comparisons is certain, skipping the
// hardest comparisons (the paper's allowed-mistakes extension).
// correctPairs must be in (0, 1].
func OrderAllowingMistakes(groups []Group, correctPairs float64, o Options) (*Result, error) {
	opts, u, rng, err := o.normalize(groups)
	if err != nil {
		return nil, err
	}
	res, err := core.WithMistakes(u, rng, correctPairs, opts)
	if err != nil {
		return nil, err
	}
	return newResult(u, res), nil
}

// Sum estimates per-group SUMs (rather than averages) with the ordering
// guarantee. Group sizes must be known (materialized groups, or func
// groups constructed with their true sizes).
func Sum(groups []Group, o Options) (*Result, error) {
	opts, u, rng, err := o.normalize(groups)
	if err != nil {
		return nil, err
	}
	res, err := core.SumKnownSizes(u, rng, opts)
	if err != nil {
		return nil, err
	}
	return newResult(u, res), nil
}
