// Package rapidviz generates approximate visualizations with ordering
// guarantees, implementing the sampling algorithms of "Rapid Sampling for
// Visualizations with Ordering Guarantees" (Kim, Blais, Parameswaran,
// Indyk, Madden, Rubinfeld — VLDB 2015).
//
// Given k groups of bounded numeric values (the result groups of a
// SELECT X, AVG(Y) ... GROUP BY X query), the engine returns per-group
// estimates whose *ordering* matches the true aggregates with probability
// at least 1−δ — while sampling far fewer values than any scheme that
// first nails down each aggregate. The flagship algorithm, IFOCUS,
// concentrates samples on the groups whose confidence intervals still
// overlap and stops sampling a group the moment its interval separates;
// its sample complexity is optimal up to log-log factors.
//
// The API is a reusable Engine executing declarative Queries:
//
//	groups := []rapidviz.Group{
//		rapidviz.GroupFromValues("AA", delaysAA),
//		rapidviz.GroupFromValues("JB", delaysJB),
//	}
//	eng, err := rapidviz.NewEngine(rapidviz.EngineConfig{})
//	// handle err ...
//	res, err := eng.Run(ctx, rapidviz.Query{Bound: 24 * 60}, groups)
//	// handle err ...
//	fmt.Print(res.Render())
//
// The zero Query estimates per-group averages under the full ordering
// guarantee with IFOCUS; its fields select the aggregate (AggAvg, AggSum,
// AggCount, and their normalized variants, or AggAvgPair for two
// aggregates at once), the guarantee (GuaranteeOrder, GuaranteeTrend,
// GuaranteeTopT, GuaranteeValues, GuaranteeMistakes, GuaranteeAdjacency —
// relax any of them further with Resolution), and the algorithm
// (AlgoAuto/AlgoIFocus, the AlgoIRefine and AlgoRoundRobin baselines,
// the exact AlgoScan, or AlgoNoIndex when the group-by attribute has no
// index). SubGroups queries estimate the cells of GROUP BY X, Z with an
// index on X only. Queries over table-backed groups can carry a Where
// filter — typed comparisons on the table's columns plus group-name
// inclusion — answered through per-group selection vectors with the same
// ordering guarantee over the filtered rows. Engine.Run honors context
// cancellation and deadlines
// between sampling rounds; Engine.Stream delivers each group's estimate
// over a channel the moment it settles. Engines are safe for concurrent
// use and bound their own parallelism, so one engine can serve heavy
// concurrent query traffic.
//
// The free functions (Order, RoundRobin, Refine, Exact, Trend, TopT,
// OrderWithValues, OrderAllowingMistakes, Sum) are deprecated thin
// wrappers over a shared default engine, kept for compatibility; they
// produce seed-for-seed identical results to the equivalent Query.
package rapidviz

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/viz"
	"repro/internal/xrand"
)

// Group is a named collection of bounded numeric values that supports
// uniform random sampling — one bar of the eventual chart.
type Group = dataset.Group

// GroupFromValues returns a fully materialized group. The slice is
// retained; do not mutate it afterwards. Materialized groups support exact
// sampling without replacement (the library default).
func GroupFromValues(name string, values []float64) Group {
	return dataset.NewSliceGroup(name, values)
}

// GroupFromFunc returns a group backed by a sampling function: each call
// must return one value drawn uniformly at random (with replacement) from
// the group's population of nominal size n. Use this to plug in an
// external sampling engine (a database index, a service). Runs over
// func-backed groups force sampling with replacement and require an
// explicit bound.
func GroupFromFunc(name string, n int64, sample func() float64) Group {
	return &funcGroup{name: name, n: n, sample: sample}
}

type funcGroup struct {
	name   string
	n      int64
	sample func() float64
}

func (g *funcGroup) Name() string            { return g.name }
func (g *funcGroup) Size() int64             { return g.n }
func (g *funcGroup) Draw(*xrand.RNG) float64 { return g.sample() }
func (g *funcGroup) TrueMean() float64       { return math.NaN() }

// Options configures a run of the deprecated free functions. The zero
// value is usable: it requests δ=0.05, κ=1, sampling without replacement,
// and infers the value bound.
//
// Deprecated: build a Query instead; it has the same knobs plus aggregate,
// guarantee, and algorithm selection, and distinguishes an explicit zero
// seed (Query.Deterministic) from an unset one.
type Options struct {
	// Delta is the permitted probability that the returned ordering is
	// wrong. Zero means 0.05.
	Delta float64
	// Bound is the value bound c: every value must lie in [0, Bound].
	// Zero asks the library to use the maximum over materialized groups
	// (func-backed groups require an explicit bound).
	Bound float64
	// Resolution relaxes the guarantee to Problem 2 of the paper: pairs of
	// true averages within Resolution of each other may be ordered either
	// way. Larger resolutions terminate (much) faster. Zero disables.
	Resolution float64
	// WithReplacement switches to with-replacement sampling (group sizes
	// then need not be exact). Forced on for func-backed groups.
	WithReplacement bool
	// Seed makes the run deterministic; zero picks a fixed default seed
	// (runs are deterministic by default — vary Seed for independence).
	// Use Query.Deterministic to make an explicit zero seed stick.
	Seed uint64
	// MaxRounds optionally caps sampling rounds as a safety valve; capped
	// runs void the guarantee and are reported via Result.Capped.
	MaxRounds int
	// OnPartial, when non-nil, streams each group's estimate the moment it
	// settles. Prefer Engine.Stream, which delivers the same events over a
	// channel together with the terminal result.
	OnPartial func(group string, estimate float64)
}

// query translates legacy options into the equivalent Query. BatchSize is
// pinned to 1 — the paper's one-sample rounds — because these wrappers
// promise seed-for-seed identity with the original scalar algorithms,
// while a zero BatchSize on a Query now selects the auto-batch schedule.
func (o Options) query() Query {
	return Query{
		Delta:           o.Delta,
		Bound:           o.Bound,
		Resolution:      o.Resolution,
		WithReplacement: o.WithReplacement,
		Seed:            o.Seed,
		MaxRounds:       o.MaxRounds,
		BatchSize:       1,
	}
}

// partial adapts the legacy callback to the engine's internal hook.
func (o Options) partial() func(name string, i int, est float64, round int, eps float64) {
	if o.OnPartial == nil {
		return nil
	}
	return func(name string, i int, est float64, round int, eps float64) { o.OnPartial(name, est) }
}

// Result reports a run: per-group estimates plus sampling cost.
//
// Result is a wire type: the json tags fix stable snake_case field names
// for network consumers (rapidvizd's HTTP/WebSocket protocol), with the
// query-specific extensions (Top, SecondEstimates, cells) omitted when
// empty so the common payload stays small.
type Result struct {
	// Names and Estimates are index-aligned; Estimates[i] is ν_i. For
	// SubGroups queries Estimates is the row-major flattening of
	// CellEstimates.
	Names     []string  `json:"names"`
	Estimates []float64 `json:"estimates"`
	// SampleCounts are the per-group sample counts m_i; TotalSamples is
	// their sum (the paper's sample complexity C).
	SampleCounts []int64 `json:"sample_counts"`
	TotalSamples int64   `json:"total_samples"`
	// Epsilon is the final confidence half-width: each estimate is within
	// ±Epsilon of its true average with the run's confidence.
	Epsilon float64 `json:"epsilon"`
	// Rounds is the number of sampling rounds executed.
	Rounds int `json:"rounds"`
	// Capped reports that MaxRounds (or MaxDraws) fired; the guarantee is
	// void.
	Capped bool `json:"capped,omitempty"`
	// Shared reports that the run's draws were served by the engine's
	// per-table sample broker (Query.ShareSamples). Purely informational:
	// shared and solo runs of the same query produce identical results.
	Shared bool `json:"shared,omitempty"`
	// Top lists the names of the top-T groups, largest estimate first
	// (GuaranteeTopT queries only).
	Top []string `json:"top,omitempty"`
	// SecondEstimates holds the AVG(Z) estimates of AggAvgPair queries,
	// index-aligned with Names.
	SecondEstimates []float64 `json:"second_estimates,omitempty"`
	// CellEstimates and CellCounts hold the per-cell results of SubGroups
	// queries, indexed [group][key].
	CellEstimates [][]float64 `json:"cell_estimates,omitempty"`
	CellCounts    [][]int64   `json:"cell_counts,omitempty"`
}

// Bars converts the result to renderable bars with error bars. SubGroups
// results get one bar per cell, labeled "group/key".
func (r *Result) Bars() []viz.Bar {
	if r.CellEstimates != nil {
		var bars []viz.Bar
		for x, cells := range r.CellEstimates {
			for z, v := range cells {
				bars = append(bars, viz.Bar{
					Label: fmt.Sprintf("%s/%d", r.Names[x], z),
					Value: v,
					Err:   r.Epsilon,
				})
			}
		}
		return bars
	}
	bars := make([]viz.Bar, len(r.Names))
	for i := range bars {
		bars[i] = viz.Bar{Label: r.Names[i], Value: r.Estimates[i], Err: r.Epsilon}
	}
	return bars
}

// Render draws the result as a text bar chart.
func (r *Result) Render() string { return viz.BarChart(r.Bars(), 50) }

// RenderTrend draws the result as a text trend line (for Trend runs).
func (r *Result) RenderTrend() string { return viz.TrendLine(r.Names, r.Estimates) }

// Order estimates every group's average with the ordering guarantee, using
// IFOCUS — the paper's optimal algorithm. With probability at least
// 1−Delta, the returned estimates are ordered exactly as the true averages
// (up to Options.Resolution, when set).
//
// Deprecated: use Engine.Run with a zero Query (plus Delta/Bound/Seed).
func Order(groups []Group, o Options) (*Result, error) {
	return DefaultEngine().run(context.Background(), o.query(), groups, o.partial())
}

// RoundRobin runs the conventional stratified-sampling baseline under the
// same guarantee. It exists for comparison: expect several times the
// samples of Order.
//
// Deprecated: use Engine.Run with Query{Algorithm: AlgoRoundRobin}.
func RoundRobin(groups []Group, o Options) (*Result, error) {
	q := o.query()
	q.Algorithm = AlgoRoundRobin
	return DefaultEngine().run(context.Background(), q, groups, o.partial())
}

// Refine runs the interval-halving IREFINE variant: correct, simpler to
// analyze, but provably non-optimal (expect more samples than Order).
//
// Deprecated: use Engine.Run with Query{Algorithm: AlgoIRefine}.
func Refine(groups []Group, o Options) (*Result, error) {
	q := o.query()
	q.Algorithm = AlgoIRefine
	return DefaultEngine().run(context.Background(), q, groups, o.partial())
}

// Exact computes the true averages by scanning every value of every group
// (all groups must be materialized) — the SCAN baseline.
//
// Deprecated: use Engine.Run with Query{Algorithm: AlgoScan}.
func Exact(groups []Group, o Options) (*Result, error) {
	q := o.query()
	q.Algorithm = AlgoScan
	return DefaultEngine().run(context.Background(), q, groups, nil)
}

// Trend estimates the averages with the weaker trend-line guarantee: only
// *adjacent* groups (in the given order) are guaranteed to be ordered
// correctly — the right property for time series and chloropleths, at a
// fraction of Order's samples.
//
// Deprecated: use Engine.Run with Query{Guarantee: GuaranteeTrend}.
func Trend(groups []Group, o Options) (*Result, error) {
	q := o.query()
	q.Guarantee = GuaranteeTrend
	return DefaultEngine().run(context.Background(), q, groups, o.partial())
}

// TopTResult extends Result with the top-t selection.
//
// Deprecated: Result carries the Top field directly.
type TopTResult struct {
	Result
	// Top lists the names of the top-t groups, largest estimate first.
	Top []string
}

// TopT identifies the t groups with the largest true averages and orders
// them correctly among themselves, with probability at least 1−Delta.
// Groups provably outside the top t stop being sampled early, the big
// saving when k is large.
//
// Deprecated: use Engine.Run with Query{Guarantee: GuaranteeTopT, T: t}.
func TopT(groups []Group, t int, o Options) (*TopTResult, error) {
	q := o.query()
	q.Guarantee = GuaranteeTopT
	q.T = t
	res, err := DefaultEngine().run(context.Background(), q, groups, o.partial())
	if err != nil {
		return nil, err
	}
	return &TopTResult{Result: *res, Top: res.Top}, nil
}

// OrderWithValues adds a value guarantee on top of the ordering: every
// estimate is within ±maxErr of its true average with probability 1−Delta.
//
// Deprecated: use Engine.Run with Query{Guarantee: GuaranteeValues,
// MaxError: maxErr}.
func OrderWithValues(groups []Group, maxErr float64, o Options) (*Result, error) {
	q := o.query()
	q.Guarantee = GuaranteeValues
	q.MaxError = maxErr
	return DefaultEngine().run(context.Background(), q, groups, o.partial())
}

// OrderAllowingMistakes terminates as soon as a fraction of at least
// correctPairs of all pairwise comparisons is certain, skipping the
// hardest comparisons (the paper's allowed-mistakes extension).
// correctPairs must be in (0, 1].
//
// Deprecated: use Engine.Run with Query{Guarantee: GuaranteeMistakes,
// CorrectPairs: correctPairs}.
func OrderAllowingMistakes(groups []Group, correctPairs float64, o Options) (*Result, error) {
	q := o.query()
	q.Guarantee = GuaranteeMistakes
	q.CorrectPairs = correctPairs
	return DefaultEngine().run(context.Background(), q, groups, o.partial())
}

// Sum estimates per-group SUMs (rather than averages) with the ordering
// guarantee. Group sizes must be known (materialized groups, or func
// groups constructed with their true sizes).
//
// Deprecated: use Engine.Run with Query{Aggregate: AggSum}.
func Sum(groups []Group, o Options) (*Result, error) {
	q := o.query()
	q.Aggregate = AggSum
	return DefaultEngine().run(context.Background(), q, groups, o.partial())
}
