package rapidviz

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/xrand"
)

// defaultSeed seeds non-deterministic queries that set no seed of their
// own, so runs are reproducible by default. Vary Query.Seed (or set
// Query.Deterministic with an explicit seed) for independent runs.
const defaultSeed uint64 = 0x5eedf00d

// autoParallelMinBatch is the smallest BatchSize at which a query with no
// explicit Workers automatically fans its rounds across the pool: dense
// blocks amortize the per-round fan-out dispatch, one-sample rounds do
// not.
const autoParallelMinBatch = 64

// EngineConfig holds an Engine's validated defaults. The zero value is
// usable: δ=0.05, bound inferred per query, seed 0x5eedf00d, and one
// worker per CPU.
//
// Defaults are inherited by queries that leave the matching field at its
// zero value; a query can therefore raise but never zero-out a truthy
// engine default (a Query cannot express "no resolution" on an engine
// configured with one, nor without-replacement sampling on a
// WithReplacement engine — use a separate engine for those workloads).
type EngineConfig struct {
	// Delta is the default failure probability. Zero means 0.05.
	Delta float64
	// Bound is the default value bound c. Zero defers to per-query bounds
	// or inference from materialized groups.
	Bound float64
	// Resolution is the default visual resolution. Zero disables.
	Resolution float64
	// WithReplacement makes with-replacement sampling the default.
	WithReplacement bool
	// Seed is the seed of non-deterministic queries that set none. Zero
	// means 0x5eedf00d.
	Seed uint64
	// MaxRounds is the default round cap. Zero means uncapped.
	MaxRounds int
	// Workers bounds the engine's admission concurrency: at most Workers
	// queries execute at once (further Run calls wait for a slot,
	// honoring their context). Intra-query fan-out sizes itself to the
	// pool too: short-lived per-group work — bound inference, exact
	// scans — reserves the currently idle slots for its duration, and
	// each sampling query's round fan-out is sized to the idle capacity
	// at the moment it starts (advisory, so long queries never hoard
	// slots; traffic arriving mid-query may transiently oversubscribe).
	// An explicit Query.Workers overrides the sizing entirely. Zero
	// means runtime.GOMAXPROCS(0).
	Workers int
	// ShareSamples turns on the per-table sample broker for every query,
	// as if each had set Query.ShareSamples. Concurrent queries over the
	// same table, filter, sampling mode, and resolved seed then share one
	// physical draw stream — N queries cost ~1× the memory traffic instead
	// of N× — with bit-for-bit identical results (see Query.ShareSamples).
	ShareSamples bool
	// OnAdmission, when non-nil, observes every admitted query: it is
	// called once per Run/Stream with the time the call spent waiting for
	// a worker slot (zero when a slot was free). It runs on the query's
	// goroutine before any work starts, so keep it cheap; serving layers
	// use it to record admission-latency distributions. Calls that are
	// canceled while waiting are not reported.
	OnAdmission func(wait time.Duration)
}

// Engine executes Queries over groups. It is cheap to construct, safe for
// concurrent use, and reusable across any number of queries: construct one
// per service (or use the package-level default via the top-level
// functions) and call Run from as many goroutines as you like — the
// bounded worker pool keeps heavy concurrent traffic from oversubscribing
// the host.
type Engine struct {
	cfg EngineConfig
	sem chan struct{}

	// views caches predicate selections: one dataset.View per (table,
	// canonical predicate fingerprint), so repeated Where queries reuse
	// the selection vectors and pay the filter scan once. Entries hold
	// selection state only — every query takes fresh draw state via
	// View.View() — so cached views are safe to share across concurrent
	// queries. The cache is bounded: when a store would exceed
	// maxCachedViews the whole cache is flushed and rebuilt from live
	// traffic, so neither the selections nor the tables they pin can
	// accumulate without limit (a service that re-ingests its table
	// periodically sheds the old table's entries at the next flush).
	// Lookups are lock-free; viewMu serializes only the store/flush path,
	// which runs at most once per distinct filter.
	views     sync.Map // whereKey -> *dataset.View
	viewMu    sync.Mutex
	viewCount atomic.Int32

	// View-cache introspection counters (see ViewCacheStats): lookups that
	// reused a cached selection, lookups that paid the filter scan, and
	// entries dropped by overflow flushes.
	viewHits      atomic.Int64
	viewMisses    atomic.Int64
	viewEvictions atomic.Int64

	// inflight counts queries currently holding a worker slot (admitted
	// Run/Stream calls, from slot acquisition to release).
	inflight atomic.Int64

	// brokers holds the live shared-sample brokers, one per (table, filter
	// fingerprint, sampling mode, resolved seed), refcounted by the queries
	// subscribed to them. A broker is dropped — retention freed, counters
	// folded into the totals below — when its last subscriber departs;
	// determinism makes an identical broker reconstructible at any moment,
	// so dropping is always safe.
	brokerMu sync.Mutex
	brokers  map[brokerKey]*brokerEntry

	// Broker introspection counters (see BrokerStats). Drawn/served hold
	// retired brokers' totals; live brokers are added at read time.
	brokerAttached atomic.Int64
	brokerDrawn    atomic.Int64
	brokerServed   atomic.Int64
}

// brokerKey identifies one shareable draw stream: queries agreeing on all
// four fields consume identical per-group sample sequences, so they can be
// fed from one broker. Everything else a query varies — δ, bound kind,
// batch size, guarantee, workers — only changes how many draws it folds,
// never their values.
type brokerKey struct {
	table   *dataset.Table
	fp      string // canonical Where fingerprint; "" when unfiltered
	without bool
	seed    uint64
}

// brokerEntry is a live broker plus its subscriber count.
type brokerEntry struct {
	broker *dataset.Broker
	refs   int
}

// maxCachedViews bounds the engine's selection cache; overflowing it
// flushes the cache rather than disabling caching.
const maxCachedViews = 64

// whereKey identifies one cached selection.
type whereKey struct {
	table *dataset.Table
	fp    string
}

// NewEngine validates cfg and returns an Engine.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if cfg.Delta == 0 {
		cfg.Delta = 0.05
	}
	if cfg.Delta <= 0 || cfg.Delta >= 1 {
		return nil, fmt.Errorf("rapidviz: engine Delta must be in (0,1), got %v", cfg.Delta)
	}
	if cfg.Bound < 0 {
		return nil, fmt.Errorf("rapidviz: engine Bound must be non-negative, got %v", cfg.Bound)
	}
	if cfg.Resolution < 0 {
		return nil, fmt.Errorf("rapidviz: engine Resolution must be non-negative, got %v", cfg.Resolution)
	}
	if cfg.MaxRounds < 0 {
		return nil, fmt.Errorf("rapidviz: engine MaxRounds must be non-negative, got %d", cfg.MaxRounds)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("rapidviz: engine Workers must be non-negative, got %d", cfg.Workers)
	}
	if cfg.Seed == 0 {
		cfg.Seed = defaultSeed
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.Workers),
		brokers: make(map[brokerKey]*brokerEntry),
	}, nil
}

// defaultEngine backs the package-level convenience functions and the
// deprecated wrappers.
var defaultEngine = sync.OnceValue(func() *Engine {
	e, err := NewEngine(EngineConfig{})
	if err != nil {
		panic(err) // unreachable: the zero config is valid
	}
	return e
})

// DefaultEngine returns the shared engine with default configuration that
// backs the package-level functions.
func DefaultEngine() *Engine { return defaultEngine() }

// Run executes q over groups and returns the complete result. It blocks
// until the query finishes, a worker slot never frees, or ctx is canceled
// — cancellation and deadlines are honored between sampling rounds, so Run
// returns promptly with ctx.Err() even mid-query. A nil ctx means
// context.Background().
//
// The engine is safe for concurrent use, but materialized groups are not:
// they carry without-replacement draw state that each run resets and
// advances. Concurrent Run calls must use distinct group sets (rebuild
// them, or ingest one table per goroutine); reusing one set across
// *consecutive* runs is fine.
func (e *Engine) Run(ctx context.Context, q Query, groups []Group) (*Result, error) {
	return e.run(ctx, q, groups, nil)
}

// Stream executes q like Run but returns immediately with a channel of
// events: one Event per group the moment its estimate settles (the paper's
// partial-results extension, §6.2.2), then exactly one terminal Event
// carrying the Result or error, after which the channel is closed. The
// terminal event is always delivered — including ctx.Err() on
// cancellation. The channel is buffered for the worst case (one partial
// per group plus the terminal event), so the query never blocks on a slow
// or departed consumer and abandoning the channel cannot leak the query
// goroutine or its worker slot.
func (e *Engine) Stream(ctx context.Context, q Query, groups []Group) <-chan Event {
	if ctx == nil {
		ctx = context.Background()
	}
	ch := make(chan Event, len(groups)+1)
	go func() {
		defer close(ch)
		res, err := e.run(ctx, q, groups, func(name string, i int, est float64, round int, eps float64) {
			p := &Partial{Group: name, Index: i, Estimate: est, Round: round, HalfWidth: eps}
			select {
			case ch <- Event{Partial: p}:
			case <-ctx.Done():
				// Only reachable if an algorithm settles a group more than
				// once (none does today): never block a canceled run.
			}
		})
		// At most len(groups) partials precede this send, so a buffer slot
		// is guaranteed: terminal delivery cannot block or be lost.
		ch <- Event{Result: res, Err: err}
	}()
	return ch
}

// run is the one execution path behind Run, Stream, and every deprecated
// wrapper: resolve any Where filter to a (cached) table view, normalize
// and validate the query, acquire a worker slot, build the universe, and
// dispatch through core.Run.
func (e *Engine) run(ctx context.Context, q Query, groups []Group, onPartial func(name string, i int, est float64, round int, eps float64)) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Take a worker slot before normalization: predicate filtering and
	// bound inference scan every materialized group, so they must count
	// against the engine's concurrency budget, and an already-canceled
	// context must not pay for them.
	var admitted time.Time
	if e.cfg.OnAdmission != nil {
		admitted = time.Now()
	}
	select {
	case e.sem <- struct{}{}:
		e.inflight.Add(1)
		defer func() {
			e.inflight.Add(-1)
			<-e.sem
		}()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if e.cfg.OnAdmission != nil {
		e.cfg.OnAdmission(time.Since(admitted))
	}

	// Sharing eligibility is decided against the caller's groups, before a
	// Where filter replaces them with view groups: the broker key is the
	// backing table (plus the filter's fingerprint), and only a full
	// table-backed group set identifies one.
	var shareTable *dataset.Table
	if q.ShareSamples || e.cfg.ShareSamples {
		shareTable = shareTableOf(groups)
	}

	if len(q.Where) > 0 {
		filtered, err := e.whereGroups(q.Where, groups)
		if err != nil {
			return nil, err
		}
		groups = filtered
	}

	q, err := e.normalize(q, groups)
	if err != nil {
		return nil, err
	}

	u := dataset.NewUniverse(q.Bound, groups...)
	rng := xrand.New(e.seed(q))
	spec, err := e.spec(q, u, groups)
	if err != nil {
		return nil, err
	}
	if onPartial != nil {
		// Bind names to the groups actually sampled: a Where filter may
		// have dropped groups, so indices into the caller's slice would be
		// wrong.
		run := groups
		spec.Opts.OnPartial = func(i int, est float64, round int, eps float64) {
			onPartial(run[i].Name(), i, est, round, eps)
		}
	}
	// Intra-query fan-out. An explicit Query.Workers is used verbatim (the
	// user asked for exactly that parallelism). Otherwise exact scans —
	// short-lived — reserve the currently idle slots for their duration,
	// while sampling queries size their round fan-out to the idle capacity
	// *without* reserving it: a long query must not hoard slots, or a
	// staggered second query would block until the first finishes instead
	// of starting immediately. The trade is that traffic arriving mid-query
	// can transiently oversubscribe Workers goroutines until the earlier
	// query's rounds finish; the Go scheduler absorbs this, and results are
	// unaffected either way (worker invariance).
	switch {
	case q.Workers > 0:
		spec.Workers = q.Workers
	case q.Algorithm == AlgoScan:
		workers, release := e.borrowWorkers()
		spec.Workers = workers
		defer release()
	case q.BatchSize == 0 || q.BatchSize >= autoParallelMinBatch || q.RoundGrowth > 1:
		// Auto fan-out only pays for dense rounds: at the scalar schedule
		// the per-round pool dispatch dwarfs the one-sample draws it
		// would parallelize (measured several-fold slower), so small
		// explicit BatchSize keeps the inline path unless the query
		// explicitly asks for workers. BatchSize 0 (the auto-batch
		// doubling schedule) and RoundGrowth qualify because their blocks
		// grow dense within a few rounds. The worker count sizes a cap,
		// not a commitment: the core driver's per-round volume gate and
		// timing probe still fall back to the sequential loop whenever
		// fan-out would not pay, so handing workers to a query that turns
		// out to run small rounds costs nothing.
		spec.Workers = e.idleWorkers()
	}
	// Attach to (or create) the table's shared draw stream when the query
	// shape allows it. Advisory: an ineligible shape — custom draw paths,
	// non-round-driver algorithms — silently runs solo, which is always
	// correct; sharing only changes who pays for the draws, never their
	// values, so Result.Shared is the only observable difference.
	shared := false
	if shareTable != nil && shareableShape(q) {
		if src, release := e.acquireBroker(shareTable, q); src != nil {
			spec.Opts.Draws = src
			defer release()
			shared = true
		}
	}
	rr, err := core.Run(ctx, u, rng, spec)
	if err != nil {
		return nil, err
	}
	res := e.result(groups, rr)
	res.Shared = shared
	return res, nil
}

// shareTableOf reports the single table behind a full, table-ordered,
// table-backed group set — the precondition for identifying a shareable
// draw stream — or nil when the groups don't form one. It mirrors
// whereGroups' validation but advisorily: non-table groups just mean no
// sharing.
func shareTableOf(groups []Group) *dataset.Table {
	var table *dataset.Table
	for i, g := range groups {
		tb, ok := g.(dataset.TableBacked)
		if !ok {
			return nil
		}
		if i == 0 {
			table = tb.Table()
		} else if tb.Table() != table {
			return nil
		}
		if tb.GroupIndex() != i {
			return nil
		}
	}
	if table == nil || table.K() != len(groups) {
		return nil
	}
	return table
}

// shareableShape reports whether a normalized query's draw path is pure
// per-group block draws — the shapes core.Run accepts a shared draw source
// for. Aggregates with custom draw paths (pair draws, membership
// indicators), non-round-driver algorithms, and SubGroups cell runs need
// randomness beyond the shared streams, so they run solo.
func shareableShape(q Query) bool {
	if q.SubGroups != 0 {
		return false
	}
	switch q.Algorithm {
	case AlgoAuto, AlgoIFocus, AlgoRoundRobin:
	default:
		return false
	}
	switch q.Aggregate {
	case AggAvg, AggSum:
	default:
		return false
	}
	return true
}

// acquireBroker subscribes the query to its table's shared draw stream,
// creating the broker on first attach. The broker owns a private group set
// (fresh draw state over the same rows — the query's own groups are never
// touched) seeded exactly as a solo run would seed its streams, which is
// what makes broker-fed results bit-for-bit equal to solo ones. Returns
// (nil, nil) when no broker can be built; the caller then runs solo.
func (e *Engine) acquireBroker(table *dataset.Table, q Query) (dataset.DrawSource, func()) {
	key := brokerKey{table: table, without: !q.WithReplacement, seed: e.seed(q)}
	if len(q.Where) > 0 {
		key.fp = dataset.FingerprintPredicates(q.Where)
	}
	e.brokerMu.Lock()
	defer e.brokerMu.Unlock()
	ent, ok := e.brokers[key]
	if !ok {
		var bgroups []Group
		if key.fp == "" {
			bgroups = table.View()
		} else {
			// The query already resolved this filter, so the selection is
			// cached: this takes fresh draw-state groups over it without
			// re-scanning.
			filtered, err := e.whereGroups(q.Where, table.Groups())
			if err != nil {
				return nil, nil
			}
			bgroups = filtered
		}
		u := dataset.NewUniverse(q.Bound, bgroups...)
		// The solo round driver derives its per-group stream base from one
		// Uint64 of the resolved seed's generator; the broker draws from
		// streams based identically, so offsets address the same values.
		base := xrand.New(key.seed).Uint64()
		ent = &brokerEntry{broker: dataset.NewBroker(u, base, key.without)}
		e.brokers[key] = ent
	}
	ent.refs++
	e.brokerAttached.Add(1)
	b := ent.broker
	var once sync.Once
	release := func() {
		once.Do(func() {
			e.brokerMu.Lock()
			ent.refs--
			if ent.refs == 0 {
				e.brokerDrawn.Add(b.Drawn())
				e.brokerServed.Add(b.Served())
				delete(e.brokers, key)
			}
			e.brokerMu.Unlock()
		})
	}
	return b, release
}

// BrokerStats reports the shared-sample broker registry's state: live
// brokers, cumulative subscriptions, and the physical-vs-delivered sample
// split. Served/Drawn is the sharing win — with N concurrent subscribers
// over the same stream it approaches N. Safe to call concurrently with
// queries.
type BrokerStats struct {
	// Active is the number of live brokers (tables with subscribed
	// queries right now).
	Active int `json:"active"`
	// Attached counts query-broker subscriptions since engine start.
	Attached int64 `json:"attached"`
	// SamplesDrawn counts samples physically drawn by brokers — the
	// memory traffic actually paid.
	SamplesDrawn int64 `json:"samples_drawn"`
	// SamplesServed counts samples delivered to subscribed queries.
	SamplesServed int64 `json:"samples_served"`
}

// BrokerStats returns the engine's shared-sample broker counters.
func (e *Engine) BrokerStats() BrokerStats {
	e.brokerMu.Lock()
	defer e.brokerMu.Unlock()
	s := BrokerStats{
		Active:        len(e.brokers),
		Attached:      e.brokerAttached.Load(),
		SamplesDrawn:  e.brokerDrawn.Load(),
		SamplesServed: e.brokerServed.Load(),
	}
	for _, ent := range e.brokers {
		s.SamplesDrawn += ent.broker.Drawn()
		s.SamplesServed += ent.broker.Served()
	}
	return s
}

// whereGroups resolves a Where conjunction against table-backed groups:
// it validates that the groups are one table's full group set in table
// order, then returns fresh draw-state groups over the table's filtered
// view — cached per (table, predicate fingerprint), so only the first
// query with a given filter pays the selection scan. Planning lives in
// dataset.Table.Filter: group-inclusion predicates answer from the group
// index without touching rows; value predicates, which have no
// precomputed index, fall back to one scan-and-filter pass.
func (e *Engine) whereGroups(preds []Predicate, groups []Group) ([]Group, error) {
	if len(groups) == 0 {
		return nil, fmt.Errorf("rapidviz: no groups")
	}
	var table *dataset.Table
	for i, g := range groups {
		tb, ok := g.(dataset.TableBacked)
		if !ok {
			return nil, fmt.Errorf("rapidviz: Where requires table-backed groups (pass Table.Groups or Table.View); group %q (%T) carries no table", g.Name(), g)
		}
		if i == 0 {
			table = tb.Table()
		} else if tb.Table() != table {
			return nil, fmt.Errorf("rapidviz: Where requires all groups to come from one table; group %q belongs to another", g.Name())
		}
		if tb.GroupIndex() != i {
			return nil, fmt.Errorf("rapidviz: Where requires the table's full group set in table order; restrict groups with WhereGroups instead of slicing")
		}
	}
	if table.K() != len(groups) {
		return nil, fmt.Errorf("rapidviz: Where requires the table's full group set (table has %d groups, got %d); restrict groups with WhereGroups instead of slicing", table.K(), len(groups))
	}

	key := whereKey{table: table, fp: dataset.FingerprintPredicates(preds)}
	if cached, ok := e.views.Load(key); ok {
		e.viewHits.Add(1)
		return cached.(*dataset.View).View(), nil
	}
	e.viewMisses.Add(1)
	view, err := table.Filter(preds...)
	if err != nil {
		return nil, err
	}
	e.viewMu.Lock()
	if count := e.viewCount.Load(); count >= maxCachedViews {
		e.views.Range(func(k, _ any) bool {
			e.views.Delete(k)
			return true
		})
		e.viewCount.Store(0)
		e.viewEvictions.Add(int64(count))
	}
	if _, loaded := e.views.LoadOrStore(key, view); !loaded {
		e.viewCount.Add(1)
	}
	e.viewMu.Unlock()
	return view.View(), nil
}

// ResolveGroups returns the groups q will actually sample over the given
// group set: for Where queries, the filter's surviving groups in table
// order (resolved through the engine's selection cache, so the later run
// reuses the scan); otherwise the input unchanged. Serving layers use it
// to label streamed per-round traces, whose slices are index-aligned with
// the resolved groups rather than the caller's.
func (e *Engine) ResolveGroups(q Query, groups []Group) ([]Group, error) {
	if len(q.Where) == 0 {
		return groups, nil
	}
	return e.whereGroups(q.Where, groups)
}

// idleWorkers returns the parallelism currently available to a query —
// its own slot plus the instantaneous number of idle slots — without
// reserving anything. Used to size the sampling driver's round fan-out:
// advisory, so a lone query spreads over the whole pool while later
// arrivals still get admitted immediately.
func (e *Engine) idleWorkers() int {
	return 1 + cap(e.sem) - len(e.sem)
}

// borrowWorkers reserves however many worker slots are currently idle (at
// most Workers−1, never blocking) for intra-query fan-out, and returns the
// total parallelism available to the caller — its own slot plus the
// borrowed ones — with a release function. Charging fan-out against the
// same semaphore keeps queries plus fan-out at or below Workers in total;
// use it only around short-lived work (scans, bound inference), since
// held slots keep other queries queued.
func (e *Engine) borrowWorkers() (int, func()) {
	extra := 0
	for extra < e.cfg.Workers-1 {
		select {
		case e.sem <- struct{}{}:
			extra++
			continue
		default:
		}
		break
	}
	return extra + 1, func() {
		for i := 0; i < extra; i++ {
			<-e.sem
		}
	}
}

// CacheStats reports cumulative counters of an engine-internal cache.
type CacheStats struct {
	// Hits counts lookups answered from the cache.
	Hits int64 `json:"hits"`
	// Misses counts lookups that paid the underlying computation.
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped to keep the cache bounded.
	Evictions int64 `json:"evictions"`
	// Entries is the current number of cached entries.
	Entries int64 `json:"entries"`
}

// ViewCacheStats reports the predicate-view cache's cumulative hit, miss,
// and eviction counters plus its current size, for observability surfaces
// like rapidvizd's /metrics endpoint. Safe to call concurrently with
// queries; the counters are monotone but mutually unsynchronized, so a
// snapshot taken under traffic may be transiently inconsistent by a few
// lookups.
func (e *Engine) ViewCacheStats() CacheStats {
	return CacheStats{
		Hits:      e.viewHits.Load(),
		Misses:    e.viewMisses.Load(),
		Evictions: e.viewEvictions.Load(),
		Entries:   int64(e.viewCount.Load()),
	}
}

// InFlight returns the number of queries currently holding one of the
// engine's worker slots (admitted, not yet finished).
func (e *Engine) InFlight() int { return int(e.inflight.Load()) }

// Capacity returns the engine's admission concurrency: the resolved
// EngineConfig.Workers, i.e. the maximum number of simultaneously
// executing queries.
func (e *Engine) Capacity() int { return cap(e.sem) }

// seed resolves the query's seed per the engine's RNG policy: an explicit
// Deterministic seed is used verbatim (0 included); otherwise a nonzero
// Query.Seed wins and zero falls back to the engine default.
func (e *Engine) seed(q Query) uint64 {
	switch {
	case q.Deterministic:
		return q.Seed
	case q.Seed != 0:
		return q.Seed
	default:
		return e.cfg.Seed
	}
}

// normalize merges engine defaults into q and validates the result,
// reporting precise errors at the public boundary rather than deep inside
// the sampling internals.
func (e *Engine) normalize(q Query, groups []Group) (Query, error) {
	if len(groups) == 0 {
		return q, fmt.Errorf("rapidviz: no groups")
	}
	if q.Delta == 0 {
		q.Delta = e.cfg.Delta
	}
	if q.Bound == 0 {
		q.Bound = e.cfg.Bound
	}
	if q.Resolution == 0 {
		q.Resolution = e.cfg.Resolution
	}
	if e.cfg.WithReplacement {
		q.WithReplacement = true
	}
	if q.MaxRounds == 0 {
		q.MaxRounds = e.cfg.MaxRounds
	}

	if q.Delta <= 0 || q.Delta >= 1 {
		return q, fmt.Errorf("rapidviz: Delta must be in (0,1), got %v", q.Delta)
	}
	if q.Bound < 0 {
		return q, fmt.Errorf("rapidviz: Bound must be non-negative, got %v", q.Bound)
	}
	if q.Resolution < 0 {
		return q, fmt.Errorf("rapidviz: Resolution must be non-negative, got %v", q.Resolution)
	}
	if q.MaxRounds < 0 {
		return q, fmt.Errorf("rapidviz: MaxRounds must be non-negative, got %d", q.MaxRounds)
	}
	if q.MaxDraws < 0 {
		return q, fmt.Errorf("rapidviz: MaxDraws must be non-negative, got %d", q.MaxDraws)
	}
	if q.Workers < 0 {
		return q, fmt.Errorf("rapidviz: Workers must be non-negative, got %d", q.Workers)
	}
	if q.BatchSize < 0 {
		return q, fmt.Errorf("rapidviz: BatchSize must be non-negative, got %d", q.BatchSize)
	}
	if q.RoundGrowth != 0 && !(q.RoundGrowth >= 1 && !math.IsInf(q.RoundGrowth, 1)) {
		return q, fmt.Errorf("rapidviz: RoundGrowth must be 0 or a finite value >= 1, got %v", q.RoundGrowth)
	}
	kind, err := conc.ParseKind(q.ConfidenceBound)
	if err != nil {
		return q, fmt.Errorf("rapidviz: ConfidenceBound %q is not one of %q, %q, %q",
			q.ConfidenceBound, BoundHoeffding, BoundBernstein, BoundBernsteinFinite)
	}
	q.ConfidenceBound = string(kind)
	switch q.Guarantee {
	case GuaranteeOrder, GuaranteeTrend:
	case GuaranteeTopT:
		if q.T < 1 || q.T > len(groups) {
			return q, fmt.Errorf("rapidviz: GuaranteeTopT needs 1 <= T <= %d groups, got T=%d", len(groups), q.T)
		}
	case GuaranteeValues:
		if q.MaxError <= 0 {
			return q, fmt.Errorf("rapidviz: GuaranteeValues needs a positive MaxError, got %v", q.MaxError)
		}
	case GuaranteeMistakes:
		if q.CorrectPairs <= 0 || q.CorrectPairs > 1 {
			return q, fmt.Errorf("rapidviz: GuaranteeMistakes needs CorrectPairs in (0,1], got %v", q.CorrectPairs)
		}
	case GuaranteeAdjacency:
		if len(q.Adjacency) != len(groups) {
			return q, fmt.Errorf("rapidviz: GuaranteeAdjacency needs one adjacency list per group (%d), got %d", len(groups), len(q.Adjacency))
		}
	default:
		return q, fmt.Errorf("rapidviz: unknown guarantee %v", q.Guarantee)
	}
	if q.SubGroups < 0 {
		return q, fmt.Errorf("rapidviz: SubGroups must be non-negative, got %d", q.SubGroups)
	}
	if q.SubGroups > 0 {
		if q.Aggregate != AggAvg || q.Guarantee != GuaranteeOrder {
			return q, fmt.Errorf("rapidviz: SubGroups queries estimate AVG cells under the ordering guarantee only")
		}
		if q.ConfidenceBound != BoundHoeffding {
			return q, fmt.Errorf("rapidviz: SubGroups queries support the default %q bound only (cells are discovered as tuples land, so no per-cell moments exist); got %q", BoundHoeffding, q.ConfidenceBound)
		}
		for _, g := range groups {
			cg, ok := g.(CellGroup)
			if !ok {
				return q, fmt.Errorf("rapidviz: SubGroups queries need cell groups (see GroupFromCells); group %q carries no secondary key", g.Name())
			}
			if cg.NumCells() > q.SubGroups {
				return q, fmt.Errorf("rapidviz: group %q has %d cells, more than SubGroups=%d", g.Name(), cg.NumCells(), q.SubGroups)
			}
		}
	}
	if q.Aggregate == AggAvgPair {
		for _, g := range groups {
			if _, ok := g.(dataset.PairGroup); !ok {
				return q, fmt.Errorf("rapidviz: AggAvgPair needs pair groups (see GroupFromPairs); group %q carries one attribute", g.Name())
			}
		}
		if q.Bound == 0 {
			return q, fmt.Errorf("rapidviz: AggAvgPair requires an explicit Bound covering both attributes")
		}
	}

	for _, g := range groups {
		if _, ok := g.(*funcGroup); ok {
			q.WithReplacement = true
			if q.Bound == 0 {
				return q, fmt.Errorf("rapidviz: func-backed group %q requires an explicit Bound", g.Name())
			}
		}
	}
	if q.Bound == 0 {
		bound, err := e.inferBound(groups)
		if err != nil {
			return q, err
		}
		q.Bound = bound
	}
	return q, nil
}

// inferBound computes max value over materialized groups, rejecting
// negative values, with the per-group scans fanned out across the worker
// pool. Inference requires every group to be scannable.
func (e *Engine) inferBound(groups []Group) (float64, error) {
	workers, release := e.borrowWorkers()
	defer release()
	maxes := make([]float64, len(groups))
	errs := make([]error, len(groups))
	core.ParallelFor(len(groups), workers, func(i int) {
		sc, ok := groups[i].(dataset.Scannable)
		if !ok {
			errs[i] = fmt.Errorf("rapidviz: cannot infer a value bound for group %q; set Bound", groups[i].Name())
			return
		}
		max, neg := 0.0, 0.0
		hasNeg := false
		sc.Scan(func(v float64) {
			if v < 0 && !hasNeg {
				hasNeg = true
				neg = v
			}
			if v > max {
				max = v
			}
		})
		if hasNeg {
			errs[i] = fmt.Errorf("rapidviz: group %q has negative value %v; shift values into [0, c]", groups[i].Name(), neg)
			return
		}
		maxes[i] = max
	})
	bound := 0.0
	for i := range groups {
		if errs[i] != nil {
			return 0, errs[i]
		}
		if maxes[i] > bound {
			bound = maxes[i]
		}
	}
	if bound == 0 {
		bound = 1
	}
	return bound, nil
}

// spec translates a normalized query into the core dispatch description.
func (e *Engine) spec(q Query, u *dataset.Universe, groups []Group) (core.Spec, error) {
	opts := core.DefaultOptions()
	opts.Delta = q.Delta
	opts.Resolution = q.Resolution
	opts.WithReplacement = q.WithReplacement
	opts.MaxRounds = q.MaxRounds
	opts.BatchSize = q.BatchSize
	if q.BatchSize == 0 && q.Algorithm != AlgoNoIndex {
		// BatchSize 0 means auto: the round driver's deterministic
		// doubling schedule (64 → 4096). NOINDEX is excluded because its
		// batch scales the interval-check cadence — a result-changing
		// knob, so it keeps the scalar default; the exact scan, IREFINE,
		// and cell runs ignore BatchSize either way. Queries that need
		// the paper's one-sample rounds ask for BatchSize=1 explicitly
		// (the deprecated free functions do).
		opts.BatchSize = core.BatchAuto
	}
	opts.RoundGrowth = q.RoundGrowth
	opts.Bound = conc.Kind(q.ConfidenceBound)
	if q.OnRound != nil {
		hook := q.OnRound
		opts.Tracer = core.GroupTracerFunc(func(m int, eps float64, epsByGroup []float64, active []bool, estimates []float64, total int64) {
			hook(RoundTrace{
				Round:         m,
				Epsilon:       eps,
				GroupEpsilons: epsByGroup,
				Active:        active,
				Estimates:     estimates,
				TotalSamples:  total,
			})
		})
	}

	spec := core.Spec{
		Algorithm:    q.Algorithm,
		Aggregate:    q.Aggregate,
		Guarantee:    q.Guarantee,
		T:            q.T,
		MaxError:     q.MaxError,
		CorrectPairs: q.CorrectPairs,
		Adjacency:    core.Adjacency(q.Adjacency),
		MaxDraws:     q.MaxDraws,
		Opts:         opts,
	}
	if q.SubGroups > 0 {
		cells := make([]CellGroup, len(groups))
		for i, g := range groups {
			cells[i] = g.(CellGroup) // validated in normalize
		}
		spec.Cells = &cellSource{groups: cells, kz: q.SubGroups, c: q.Bound}
	}
	if q.Aggregate == AggNormalizedSum || q.Aggregate == AggNormalizedCount {
		if u.TotalSize() == 0 {
			return core.Spec{}, fmt.Errorf("rapidviz: %v needs known group sizes to simulate membership sampling", q.Aggregate)
		}
		spec.Fractions = dataset.NewMembershipFractionEstimator(u)
	}
	return spec, nil
}

// result maps a core run result onto the public shape.
func (e *Engine) result(groups []Group, rr *core.RunResult) *Result {
	names := make([]string, len(groups))
	for i, g := range groups {
		names[i] = g.Name()
	}
	res := &Result{
		Names:           names,
		Estimates:       rr.Estimates,
		SampleCounts:    rr.SampleCounts,
		TotalSamples:    rr.TotalSamples,
		Epsilon:         rr.FinalEpsilon,
		Rounds:          rr.Rounds,
		Capped:          rr.Capped,
		SecondEstimates: rr.SecondEstimates,
		CellEstimates:   rr.CellEstimates,
		CellCounts:      rr.CellCounts,
	}
	for _, i := range rr.TopMembers {
		res.Top = append(res.Top, names[i])
	}
	return res
}
