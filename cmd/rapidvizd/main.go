// Command rapidvizd serves ordering-guaranteed visualization queries over
// HTTP and WebSocket from a single binary: JSON query submission on
// POST /api/query, streamed partials with converging error bars on
// GET /api/stream, Prometheus metrics on GET /metrics, and an embedded
// live dashboard on /.
//
// Usage:
//
//	rapidvizd -csv data.csv [-addr :8080]
//	rapidvizd -demo [-rows 200000] [-seed 1]
//	rapidvizd -segments dir      # serve an on-disk columnar segment
//	                             # table (mmap-backed; larger than RAM).
//	                             # Raw (v1) and block-compressed (v2,
//	                             # written with -compress by datagen or
//	                             # vizsample) directories both serve
//	                             # identically — queries over compressed
//	                             # columns decode through a bounded block
//	                             # cache and return bit-identical results.
//
// Serving knobs:
//
//	-workers N        engine admission capacity (0 = max(8, GOMAXPROCS));
//	                  at most N queries sample concurrently, the rest
//	                  queue and their wait is exported on /metrics
//	-deadline D       default per-query deadline for requests that set none
//	-maxdeadline D    hard clamp on requested deadlines
//	-maxrounds N      per-query round budget (0 = unlimited); requests
//	                  asking for more are capped, which voids the guarantee
//	                  exactly as a client-side cap would
//	-maxdraws N       per-query draw budget for noindex scans
//	-cache N          whole-query result cache entries (0 = 256, <0 = off)
//
// The dashboard at / submits queries over the WebSocket stream and renders
// per-group error bars that converge live as sampling rounds complete.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		csvPath     = flag.String("csv", "", "CSV file of group,value[,extra...] rows")
		demo        = flag.Bool("demo", false, "serve a built-in synthetic flight-delay dataset")
		rows        = flag.Int64("rows", 200_000, "rows for the -demo dataset")
		seed        = flag.Uint64("seed", 1, "seed for the -demo dataset")
		workers     = flag.Int("workers", 0, "concurrent query limit (0 = max(8, GOMAXPROCS))")
		deadline    = flag.Duration("deadline", 30*time.Second, "default per-query deadline")
		maxDeadline = flag.Duration("maxdeadline", 2*time.Minute, "maximum per-query deadline")
		maxRounds   = flag.Int("maxrounds", 0, "per-query round budget (0 = unlimited)")
		maxDraws    = flag.Int64("maxdraws", 0, "per-query draw budget for noindex (0 = unlimited)")
		cache       = flag.Int("cache", 0, "result cache entries (0 = 256, negative = disabled)")
		segments    = flag.String("segments", "", "serve an on-disk columnar segment directory (mmap-backed; instead of -csv/-demo)")
	)
	flag.Parse()

	var (
		table *rapidviz.Table
		err   error
	)
	switch {
	case *segments != "":
		var st *rapidviz.SegmentTable
		st, err = rapidviz.OpenSegments(*segments)
		if err == nil {
			defer st.Close()
			table = st.Table
		}
	case *demo:
		table, err = demoTable(*rows, *seed)
	case *csvPath != "":
		table, err = rapidviz.TableFromCSVFile(*csvPath)
	default:
		fmt.Fprintln(os.Stderr, "rapidvizd: need -csv FILE, -demo, or -segments DIR")
		os.Exit(2)
	}
	if err != nil {
		log.Fatalf("rapidvizd: %v", err)
	}

	srv, err := serve.New(serve.Config{
		Table:           table,
		Workers:         *workers,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		MaxRoundsBudget: *maxRounds,
		MaxDrawsBudget:  *maxDraws,
		CacheEntries:    *cache,
	})
	if err != nil {
		log.Fatalf("rapidvizd: %v", err)
	}
	defer srv.Close()

	log.Printf("rapidvizd: serving %d rows in %d groups on %s", table.NumRows(), table.K(), *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatalf("rapidvizd: %v", err)
	}
}

// demoTable builds the synthetic flight-delay table also used by
// cmd/vizsample: arrival delay is the value, scheduled elapsed minutes
// ride along as a filterable extra column.
func demoTable(rows int64, seed uint64) (*rapidviz.Table, error) {
	b := rapidviz.NewTableBuilderColumns("arrdelay", "elapsed")
	err := workload.FlightsRows(rows, seed, func(r workload.FlightRow) error {
		return b.AddRow(r.Airline, r.ArrDelay, r.Elapsed)
	})
	if err != nil {
		return nil, err
	}
	return b.Build()
}
