// Command benchguard compares two benchmark result files and flags
// throughput regressions. It is a warn-only gate: CI runs it after the
// bench job so a >20% drop in any samples/sec-style metric shows up as a
// GitHub annotation on the PR, without failing the build — single-shot
// CI benchmarks (-benchtime 1x) are too noisy to block on.
//
// Both inputs may be either raw `go test -bench` output or the
// `go test -json` stream (as committed in BENCH_core.json); benchmark
// lines are recognized either way. Only "per second" metrics (ns/op
// inverted, plus any unit ending in /sec) are compared: they are the
// higher-is-better numbers the perf roadmap tracks. GOMAXPROCS name
// suffixes are stripped so a baseline recorded on a different core count
// still lines up.
//
// Usage:
//
//	benchguard -baseline BENCH_core.json -current bench_new.json
//	           [-threshold 0.20] [-strict]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line: name, iteration count,
// then value-unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// gomaxprocsSuffix strips the trailing -N processor suffix from a
// benchmark name.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// metrics is unit → value for one benchmark.
type metrics map[string]float64

func main() {
	var (
		baseline  = flag.String("baseline", "BENCH_core.json", "baseline benchmark file (raw or -json)")
		current   = flag.String("current", "", "current benchmark file (raw or -json)")
		threshold = flag.Float64("threshold", 0.20, "relative drop that triggers a warning")
		strict    = flag.Bool("strict", false, "exit nonzero when a regression is flagged")
	)
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current is required")
		os.Exit(2)
	}

	old, err := parseFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	cur, err := parseFile(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}

	regressions := 0
	compared := 0
	for name, curM := range cur {
		oldM, ok := old[name]
		if !ok {
			continue // new benchmark: nothing to compare against
		}
		for unit, curV := range curM {
			oldV, ok := oldM[unit]
			if !ok || oldV <= 0 || curV <= 0 {
				continue
			}
			// Compare as throughput: /sec metrics as-is, ns/op inverted.
			oldT, curT, label := oldV, curV, unit
			if unit == "ns/op" {
				oldT, curT, label = 1/oldV, 1/curV, "op/s (from ns/op)"
			} else if !strings.HasSuffix(unit, "/sec") {
				continue
			}
			compared++
			if curT < oldT*(1-*threshold) {
				regressions++
				fmt.Printf("::warning::benchguard: %s %s regressed %.0f%% (%.4g -> %.4g %s)\n",
					name, label, 100*(1-curT/oldT), oldV, curV, unit)
			}
		}
	}
	fmt.Printf("benchguard: compared %d metrics across %d benchmarks, %d regression(s) beyond %.0f%%\n",
		compared, len(cur), regressions, *threshold*100)
	if *strict && regressions > 0 {
		os.Exit(1)
	}
}

// parseFile reads one benchmark file in either format.
func parseFile(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := map[string]metrics{}
	record := func(line string) {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			return
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		vals := out[name]
		if vals == nil {
			vals = metrics{}
			out[name] = vals
		}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // malformed tail; keep what parsed
			}
			vals[fields[i+1]] = v
		}
	}

	// test2json splits one benchmark result across output events (the
	// name fragment ends in a tab, the metrics follow in the next event),
	// so JSON streams are reassembled into logical lines per package
	// before matching.
	partial := map[string]string{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev struct{ Action, Package, Output string }
			if json.Unmarshal([]byte(line), &ev) == nil && ev.Action == "output" {
				buf := partial[ev.Package] + ev.Output
				for {
					nl := strings.IndexByte(buf, '\n')
					if nl < 0 {
						break
					}
					record(buf[:nl])
					buf = buf[nl+1:]
				}
				partial[ev.Package] = buf
				continue
			}
		}
		record(line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, rest := range partial {
		record(rest)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}
