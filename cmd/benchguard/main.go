// Command benchguard compares two benchmark result files and flags
// throughput regressions. It is a warn-only gate: CI runs it after the
// bench job so a >20% drop in any samples/sec-style metric shows up as a
// GitHub annotation on the PR, without failing the build — single-shot
// CI benchmarks (-benchtime 1x) are too noisy to block on.
//
// Both inputs may be either raw `go test -bench` output or the
// `go test -json` stream (as committed in BENCH_core.json); benchmark
// lines are recognized either way. Only "per second" metrics (ns/op
// inverted, plus any unit ending in /sec) are compared: they are the
// higher-is-better numbers the perf roadmap tracks. GOMAXPROCS name
// suffixes are stripped so a baseline recorded on a different core count
// still lines up.
//
// It also understands the serve-load report loadgen writes
// (BENCH_serve.json): pass -serve-baseline/-serve-current to compare the
// service-level numbers — p99 admission wait (lower is better) and
// sustained samples/sec (higher is better) — under the same warn-only
// threshold.
//
// Usage:
//
//	benchguard -baseline BENCH_core.json -current bench_new.json
//	           [-serve-baseline BENCH_serve.json -serve-current serve_new.json]
//	           [-threshold 0.20] [-strict]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// benchLine matches one benchmark result line: name, iteration count,
// then value-unit pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// gomaxprocsSuffix strips the trailing -N processor suffix from a
// benchmark name.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// metrics is unit → value for one benchmark.
type metrics map[string]float64

func main() {
	var (
		baseline      = flag.String("baseline", "BENCH_core.json", "baseline benchmark file (raw or -json)")
		current       = flag.String("current", "", "current benchmark file (raw or -json)")
		serveBaseline = flag.String("serve-baseline", "", "baseline serve-load report (loadgen JSON)")
		serveCurrent  = flag.String("serve-current", "", "current serve-load report (loadgen JSON)")
		threshold     = flag.Float64("threshold", 0.20, "relative drop that triggers a warning")
		strict        = flag.Bool("strict", false, "exit nonzero when a regression is flagged")
	)
	flag.Parse()
	haveServe := *serveBaseline != "" && *serveCurrent != ""
	if *current == "" && !haveServe {
		fmt.Fprintln(os.Stderr, "benchguard: -current (or -serve-baseline with -serve-current) is required")
		os.Exit(2)
	}

	regressions := 0
	if *current != "" {
		old, err := parseFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		cur, err := parseFile(*current)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		r, compared := compareBench(old, cur, *threshold)
		regressions += r
		fmt.Printf("benchguard: compared %d metrics across %d benchmarks, %d regression(s) beyond %.0f%%\n",
			compared, len(cur), r, *threshold*100)
	}
	if haveServe {
		r, compared, err := compareServe(*serveBaseline, *serveCurrent, *threshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		regressions += r
		fmt.Printf("benchguard: compared %d serve metrics, %d regression(s) beyond %.0f%%\n",
			compared, r, *threshold*100)
	}
	if *strict && regressions > 0 {
		os.Exit(1)
	}
}

// compareBench flags throughput drops between two parsed benchmark files.
func compareBench(old, cur map[string]metrics, threshold float64) (regressions, compared int) {
	for name, curM := range cur {
		oldM, ok := old[name]
		if !ok {
			continue // new benchmark: nothing to compare against
		}
		for unit, curV := range curM {
			oldV, ok := oldM[unit]
			if !ok || oldV <= 0 || curV <= 0 {
				continue
			}
			// Compare as throughput: /sec metrics as-is, ns/op inverted.
			oldT, curT, label := oldV, curV, unit
			if unit == "ns/op" {
				oldT, curT, label = 1/oldV, 1/curV, "op/s (from ns/op)"
			} else if !strings.HasSuffix(unit, "/sec") {
				continue
			}
			compared++
			if curT < oldT*(1-threshold) {
				regressions++
				fmt.Printf("::warning::benchguard: %s %s regressed %.0f%% (%.4g -> %.4g %s)\n",
					name, label, 100*(1-curT/oldT), oldV, curV, unit)
			}
		}
	}
	return regressions, compared
}

// serveReport is the slice of loadgen's JSON report benchguard tracks.
type serveReport struct {
	AdmissionWaitMS struct {
		P99 float64 `json:"p99"`
	} `json:"admission_wait_ms"`
	SamplesPerSec float64 `json:"samples_per_sec"`
}

// compareServe flags service-level regressions between two loadgen
// reports: p99 admission wait rising, or sustained samples/sec dropping,
// beyond the threshold. Metrics absent (zero) on either side are skipped —
// a degenerate load run should not spray warnings.
func compareServe(baselinePath, currentPath string, threshold float64) (regressions, compared int, err error) {
	old, err := parseServe(baselinePath)
	if err != nil {
		return 0, 0, err
	}
	cur, err := parseServe(currentPath)
	if err != nil {
		return 0, 0, err
	}
	if old.SamplesPerSec > 0 && cur.SamplesPerSec > 0 {
		compared++
		if cur.SamplesPerSec < old.SamplesPerSec*(1-threshold) {
			regressions++
			fmt.Printf("::warning::benchguard: serve samples/sec regressed %.0f%% (%.4g -> %.4g)\n",
				100*(1-cur.SamplesPerSec/old.SamplesPerSec), old.SamplesPerSec, cur.SamplesPerSec)
		}
	}
	oldP99, curP99 := old.AdmissionWaitMS.P99, cur.AdmissionWaitMS.P99
	if oldP99 > 0 && curP99 > 0 {
		compared++
		if curP99 > oldP99*(1+threshold) {
			regressions++
			fmt.Printf("::warning::benchguard: serve p99 admission wait regressed %.0f%% (%.4g -> %.4g ms)\n",
				100*(curP99/oldP99-1), oldP99, curP99)
		}
	}
	return regressions, compared, nil
}

// parseServe reads one loadgen JSON report.
func parseServe(path string) (*serveReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep serveReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}

// parseFile reads one benchmark file in either format.
func parseFile(path string) (map[string]metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	out := map[string]metrics{}
	record := func(line string) {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			return
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		vals := out[name]
		if vals == nil {
			vals = metrics{}
			out[name] = vals
		}
		fields := strings.Fields(m[2])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break // malformed tail; keep what parsed
			}
			vals[fields[i+1]] = v
		}
	}

	// test2json splits one benchmark result across output events (the
	// name fragment ends in a tab, the metrics follow in the next event),
	// so JSON streams are reassembled into logical lines per package
	// before matching.
	partial := map[string]string{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev struct{ Action, Package, Output string }
			if json.Unmarshal([]byte(line), &ev) == nil && ev.Action == "output" {
				buf := partial[ev.Package] + ev.Output
				for {
					nl := strings.IndexByte(buf, '\n')
					if nl < 0 {
						break
					}
					record(buf[:nl])
					buf = buf[nl+1:]
				}
				partial[ev.Package] = buf
				continue
			}
		}
		record(line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, rest := range partial {
		record(rest)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return out, nil
}
