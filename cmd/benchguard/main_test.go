package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseRawBenchOutput(t *testing.T) {
	path := writeTemp(t, "raw.txt", `
goos: linux
BenchmarkIFocus/batch=64-4         	       3	  11832456 ns/op	  13900000 samples/sec
BenchmarkFilteredDraw/bitmap-dense-4	   90000	     13400 ns/op	  19100000 draws/sec
PASS
`)
	got, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := got["BenchmarkIFocus/batch=64"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", got)
	}
	if m["samples/sec"] != 13900000 || m["ns/op"] != 11832456 {
		t.Fatalf("bad metrics: %v", m)
	}
	if got["BenchmarkFilteredDraw/bitmap-dense"]["draws/sec"] != 19100000 {
		t.Fatalf("bad metrics: %v", got)
	}
}

func TestParseTestJSONStream(t *testing.T) {
	// test2json splits one result line across events: the bare running
	// line, then a name fragment ending in a tab, then the metrics; events
	// from different packages interleave.
	path := writeTemp(t, "stream.json", `
{"Action":"start","Package":"repro/internal/core"}
{"Action":"output","Package":"repro/internal/core","Output":"BenchmarkIFocus/batch=256\n"}
{"Action":"output","Package":"repro/internal/core","Output":"BenchmarkIFocus/batch=256-8 \t"}
{"Action":"output","Package":"repro/internal/dataset","Output":"BenchmarkFilteredDraw/unfiltered-8 \t"}
{"Action":"output","Package":"repro/internal/core","Output":" 2\t 9000000 ns/op\t 8900000 samples/sec\n"}
{"Action":"output","Package":"repro/internal/dataset","Output":" 5\t 2530 ns/op\t 101000000 draws/sec\n"}
{"Action":"output","Package":"repro/internal/core","Output":"ok  \trepro/internal/core\t1.2s\n"}
`)
	got, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkIFocus/batch=256"]["samples/sec"] != 8900000 {
		t.Fatalf("split bench line not reassembled: %v", got)
	}
	if got["BenchmarkFilteredDraw/unfiltered"]["draws/sec"] != 101000000 {
		t.Fatalf("interleaved package stream misparsed: %v", got)
	}
}

const serveBaselineJSON = `{
  "admission_wait_ms": {"p50": 10.0, "p95": 40.0, "p99": 50.0},
  "samples_per_sec": 8000000.0,
  "query_latency_ms": {"p50": 80.0, "p95": 230.0, "p99": 240.0}
}`

func TestCompareServeCleanRun(t *testing.T) {
	base := writeTemp(t, "base.json", serveBaselineJSON)
	cur := writeTemp(t, "cur.json", `{
  "admission_wait_ms": {"p99": 52.0},
  "samples_per_sec": 7500000.0
}`)
	regressions, compared, err := compareServe(base, cur, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 2 || regressions != 0 {
		t.Fatalf("compared=%d regressions=%d, want 2/0", compared, regressions)
	}
}

func TestCompareServeFlagsRegressions(t *testing.T) {
	base := writeTemp(t, "base.json", serveBaselineJSON)
	cur := writeTemp(t, "cur.json", `{
  "admission_wait_ms": {"p99": 75.0},
  "samples_per_sec": 5000000.0
}`)
	regressions, compared, err := compareServe(base, cur, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 2 || regressions != 2 {
		t.Fatalf("compared=%d regressions=%d, want both metrics flagged", compared, regressions)
	}
}

func TestCompareServeSkipsMissingMetrics(t *testing.T) {
	base := writeTemp(t, "base.json", serveBaselineJSON)
	cur := writeTemp(t, "cur.json", `{"samples_per_sec": 8100000.0}`)
	regressions, compared, err := compareServe(base, cur, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if compared != 1 || regressions != 0 {
		t.Fatalf("compared=%d regressions=%d; absent p99 must be skipped, not flagged", compared, regressions)
	}
	if _, _, err := compareServe(base, writeTemp(t, "bad.json", "not json"), 0.20); err == nil {
		t.Fatal("want error for malformed serve report")
	}
}

func TestParseRejectsEmptyFile(t *testing.T) {
	path := writeTemp(t, "empty.txt", "no benchmarks here\n")
	if _, err := parseFile(path); err == nil {
		t.Fatal("want error for a file with no benchmark lines")
	}
}
