// Command datagen emits synthetic datasets as CSV for use with vizsample
// or external tools. Every emitted file carries a filterable third column
// next to the group,value pair, declared by the header so ingestion picks
// it up as an extra column (vizsample -where can compare against it):
// synthetic kinds emit "aux", a value-correlated companion (aux rises with
// value, plus noise); the flights kind emits the two flight attributes not
// chosen as the value, by name (e.g. -attr arrdelay emits
// airline,arrdelay,elapsed,depdelay — filter long-haul flights with
// -where "elapsed>=150").
//
// With -out, synthetic kinds stream straight into an on-disk columnar
// segment directory (see internal/dataset: WriteSegments/OpenSegments)
// instead of CSV: rows are generated group-contiguously and appended one
// at a time through the segment writer, so memory stays O(1) in the row
// count — the way to materialize tables far larger than RAM.
//
// Usage:
//
//	datagen -kind mixture -k 10 -rows 1000000 > mixture.csv
//	datagen -kind flights -rows 1000000 -attr arrdelay > flights.csv
//	datagen -kind mixture -k 10 -rows 2000000000 -out /data/mixture.seg
//
// Kinds: truncnorm, mixture, bernoulli, hard, flights.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func main() {
	var (
		kind     = flag.String("kind", "mixture", "truncnorm | mixture | bernoulli | hard | flights")
		k        = flag.Int("k", 10, "number of groups (synthetic kinds)")
		rows     = flag.Int64("rows", 1_000_000, "total rows")
		gamma    = flag.Float64("gamma", 0.5, "mean spacing for -kind hard")
		std      = flag.Float64("std", 0, "fixed std for -kind truncnorm (0 = random)")
		attr     = flag.String("attr", "arrdelay", "flights attribute: elapsed | arrdelay | depdelay")
		seed     = flag.Uint64("seed", 1, "random seed")
		out      = flag.String("out", "", "write columnar segments to this directory instead of CSV to stdout (synthetic kinds only)")
		compress = flag.Bool("compress", false, "with -out: write block-compressed (v2) segments with zone maps")
		blockLen = flag.Int("block-len", 0, "with -compress: values per block (default 64Ki)")
	)
	flag.Parse()
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	if *kind == "flights" {
		if *out != "" {
			// Flight rows arrive airline-interleaved, not group-contiguous;
			// the in-memory builder handles that regrouping.
			fatal(fmt.Errorf("-out supports synthetic kinds only; for flights, ingest the CSV and use vizsample -write-segments"))
		}
		// The chosen attribute is the value column; the other two ride
		// along as named extra columns so the CSV can be filtered on them.
		cols := map[string]int{"arrdelay": 0, "elapsed": 1, "depdelay": 2}
		vi, ok := cols[*attr]
		if !ok {
			fatal(fmt.Errorf("unknown attribute %q", *attr))
		}
		names := []string{"arrdelay", "elapsed", "depdelay"}
		extras := make([]string, 0, 2)
		for _, n := range names {
			if n != *attr {
				extras = append(extras, n)
			}
		}
		fmt.Fprintf(w, "airline,%s,%s,%s\n", *attr, extras[0], extras[1])
		err := workload.FlightsRows(*rows, *seed, func(r workload.FlightRow) error {
			vals := [3]float64{r.ArrDelay, r.Elapsed, r.DepDelay}
			e1, e2 := cols[extras[0]], cols[extras[1]]
			_, err := fmt.Fprintf(w, "%s,%.4f,%.4f,%.4f\n", r.Airline, vals[vi], vals[e1], vals[e2])
			return err
		})
		if err != nil {
			fatal(err)
		}
		return
	}
	var kk workload.Kind
	switch *kind {
	case "truncnorm":
		kk = workload.TruncNorm
	case "mixture":
		kk = workload.MixtureKind
	case "bernoulli":
		kk = workload.BernoulliKind
	case "hard":
		kk = workload.HardKind
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	cfg := workload.Config{Kind: kk, K: *k, TotalRows: *rows, Gamma: *gamma, StdDev: *std, Seed: *seed}
	u, err := workload.Virtual(cfg)
	if err != nil {
		fatal(err)
	}
	rng := xrand.New(*seed ^ 0xda7a)

	if *out != "" {
		// Stream rows straight into the segment writer: groups are
		// generated contiguously, so each maps to exactly one StartGroup
		// and the resident set never grows with -rows.
		opts := dataset.SegmentOptions{Compress: *compress, BlockLen: *blockLen}
		sw, err := dataset.CreateSegmentsOptions(*out, opts, "value", "aux")
		if err != nil {
			fatal(err)
		}
		for _, g := range u.Groups {
			dg := g.(*dataset.DistGroup)
			if err := sw.StartGroup(g.Name()); err != nil {
				fatal(err)
			}
			for i := int64(0); i < dg.Size(); i++ {
				v := dg.Draw(rng)
				aux := v * (0.75 + 0.5*rng.Float64())
				if err := sw.Append(v, aux); err != nil {
					fatal(err)
				}
			}
		}
		if err := sw.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "datagen: wrote %d rows across %d groups to %s\n", *rows, len(u.Groups), *out)
		return
	}

	fmt.Fprintln(w, "group,value,aux")
	for _, g := range u.Groups {
		dg := g.(*dataset.DistGroup)
		for i := int64(0); i < dg.Size(); i++ {
			v := dg.Draw(rng)
			// aux correlates positively with the value (ρ well above 0.5
			// under the uniform scaling), so thresholds on aux select a
			// value-skewed — i.e. meaningful — subset to filter on.
			aux := v * (0.75 + 0.5*rng.Float64())
			if _, err := fmt.Fprintf(w, "%s,%.4f,%.4f\n", g.Name(), v, aux); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
