// Command datagen emits synthetic datasets as CSV (group,value rows) for
// use with vizsample or external tools.
//
// Usage:
//
//	datagen -kind mixture -k 10 -rows 1000000 > mixture.csv
//	datagen -kind flights -rows 1000000 -attr arrdelay > flights.csv
//
// Kinds: truncnorm, mixture, bernoulli, hard, flights.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func main() {
	var (
		kind  = flag.String("kind", "mixture", "truncnorm | mixture | bernoulli | hard | flights")
		k     = flag.Int("k", 10, "number of groups (synthetic kinds)")
		rows  = flag.Int64("rows", 1_000_000, "total rows")
		gamma = flag.Float64("gamma", 0.5, "mean spacing for -kind hard")
		std   = flag.Float64("std", 0, "fixed std for -kind truncnorm (0 = random)")
		attr  = flag.String("attr", "arrdelay", "flights attribute: elapsed | arrdelay | depdelay")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "group,value")

	if *kind == "flights" {
		err := workload.FlightsRows(*rows, *seed, func(r workload.FlightRow) error {
			v := r.ArrDelay
			switch *attr {
			case "elapsed":
				v = r.Elapsed
			case "depdelay":
				v = r.DepDelay
			case "arrdelay":
			default:
				return fmt.Errorf("unknown attribute %q", *attr)
			}
			_, err := fmt.Fprintf(w, "%s,%.4f\n", r.Airline, v)
			return err
		})
		if err != nil {
			fatal(err)
		}
		return
	}

	var kk workload.Kind
	switch *kind {
	case "truncnorm":
		kk = workload.TruncNorm
	case "mixture":
		kk = workload.MixtureKind
	case "bernoulli":
		kk = workload.BernoulliKind
	case "hard":
		kk = workload.HardKind
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}
	cfg := workload.Config{Kind: kk, K: *k, TotalRows: *rows, Gamma: *gamma, StdDev: *std, Seed: *seed}
	u, err := workload.Virtual(cfg)
	if err != nil {
		fatal(err)
	}
	rng := xrand.New(*seed ^ 0xda7a)
	for _, g := range u.Groups {
		dg := g.(*dataset.DistGroup)
		for i := int64(0); i < dg.Size(); i++ {
			if _, err := fmt.Fprintf(w, "%s,%.4f\n", g.Name(), dg.Draw(rng)); err != nil {
				fatal(err)
			}
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
