// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -fig table1
//	experiments -fig fig3a -reps 20 -sizes 1e6,1e7,1e8
//	experiments -fig all -scale paper
//
// Figure IDs: table1, fig3a, fig3b, fig3c, fig4, fig5a, fig5b, fig5c,
// fig6a, fig6b, fig6c, fig7a, fig7b, fig7c, table3, ablations, all.
// (fig5c and fig6a share the convergence runner; fig3b and fig4 share the
// engine sweep; ablations covers the kappa / replacement / block-cache
// design-choice studies.)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "figure/table id to regenerate (or 'all')")
		scale   = flag.String("scale", "default", "default | paper")
		reps    = flag.Int("reps", 0, "override datasets per point")
		sizes   = flag.String("sizes", "", "override size sweep, comma-separated (e.g. 1e6,1e7)")
		seed    = flag.Uint64("seed", 0, "override base seed")
		base    = flag.Int64("base", 0, "override base dataset rows")
		workers = flag.Int("workers", 0, "goroutines drawing per-group blocks each sampling round (0/1 = sequential; identical results at any value)")
		bound   = flag.String("bound", "", "confidence bound for every run: hoeffding (default) | bernstein | bernstein-finite")
		timeout = flag.Duration("timeout", 0, "abort the whole run after this long (0 = no limit)")
	)
	flag.Parse()
	if *timeout > 0 {
		// The experiment runners predate context plumbing; a hard exit is
		// the honest way to bound a paper-scale sweep from the CLI.
		time.AfterFunc(*timeout, func() {
			fatal("timed out after %v", *timeout)
		})
	}

	s := experiments.DefaultScale()
	if *scale == "paper" {
		s = experiments.PaperScale()
	}
	if *reps > 0 {
		s.Reps = *reps
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	if *base > 0 {
		s.BaseRows = *base
	}
	if *workers > 0 {
		s.Workers = *workers
	}
	s.Bound = *bound
	if *sizes != "" {
		s.Sizes = nil
		for _, tok := range strings.Split(*sizes, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
			if err != nil {
				fatal("bad size %q: %v", tok, err)
			}
			s.Sizes = append(s.Sizes, int64(v))
		}
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = []string{"table1", "fig3a", "fig3c", "fig4", "fig5a", "fig5b", "fig5c", "fig6b", "fig6c", "fig7a", "fig7b", "fig7c", "table3", "ablations"}
	}
	for _, id := range ids {
		if err := run(id, s); err != nil {
			fatal("%s: %v", id, err)
		}
		fmt.Println()
	}
}

func run(id string, s experiments.Scale) error {
	w := os.Stdout
	switch id {
	case "table1":
		r, err := experiments.Table1(s.Seed)
		if err != nil {
			return err
		}
		r.Print(w)
	case "fig3a":
		r, err := experiments.Fig3a(s)
		if err != nil {
			return err
		}
		r.Print(w)
	case "fig3b", "fig4":
		r, err := experiments.Fig4(s)
		if err != nil {
			return err
		}
		if id == "fig3b" {
			r.PrintScatter(w)
			fmt.Fprintf(w, "samples/time Pearson correlation: %.4f\n", r.SamplesTimeCorrelation())
		} else {
			r.Print(w)
		}
	case "fig3c":
		r, err := experiments.Fig3c(s)
		if err != nil {
			return err
		}
		r.Print(w)
	case "fig5a":
		r, err := experiments.Fig5a(s)
		if err != nil {
			return err
		}
		r.Print(w)
	case "fig5b":
		r, err := experiments.Fig5b(s)
		if err != nil {
			return err
		}
		r.Print(w)
	case "fig5c", "fig6a":
		r, err := experiments.Convergence(s)
		if err != nil {
			return err
		}
		r.Print(w)
	case "fig6b":
		r, err := experiments.Fig6b(s)
		if err != nil {
			return err
		}
		r.Print(w)
	case "fig6c":
		r, err := experiments.Fig6c(s)
		if err != nil {
			return err
		}
		r.Print(w)
	case "fig7a":
		r, err := experiments.Fig7a(s)
		if err != nil {
			return err
		}
		r.Print(w)
	case "fig7b":
		r, err := experiments.Fig7b(s)
		if err != nil {
			return err
		}
		r.Print(w)
	case "fig7c":
		r, err := experiments.Fig7c(s)
		if err != nil {
			return err
		}
		r.Print(w)
	case "table3":
		r, err := experiments.Table3(s)
		if err != nil {
			return err
		}
		r.Print(w)
	case "ablations":
		ak, err := experiments.AblationKappa(s)
		if err != nil {
			return err
		}
		ak.Print(w)
		ar, err := experiments.AblationReplacement(s)
		if err != nil {
			return err
		}
		ar.Print(w)
		ac, err := experiments.AblationBlockCache(s)
		if err != nil {
			return err
		}
		ac.Print(w)
	default:
		return fmt.Errorf("unknown figure id %q", id)
	}
	return nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	os.Exit(1)
}
