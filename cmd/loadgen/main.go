// Command loadgen drives a rapidvizd serving stack under sustained
// concurrent load and reports what the paper's interactivity claim costs
// at the serving layer: it hosts an in-process server over one shared
// table, opens -clients concurrent WebSocket streams that each submit
// -per queries drawn from a deterministic mix of -distinct variants
// (mixed algorithms, confidence bounds, and Where filters, so the run
// exercises fresh executions, single-flight sharing, and the result
// cache), and writes a JSON report with p99 admission latency, end-to-end
// query latency quantiles, and sustained samples/sec to -out.
//
// Usage:
//
//	loadgen [-clients 200] [-per 3] [-distinct 40] [-rows 100000]
//	        [-workers 0] [-batch 128] [-delta 0.1] [-maxrounds 300]
//	        [-out BENCH_serve.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"repro"
	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	var (
		clients   = flag.Int("clients", 200, "concurrent WebSocket streams")
		per       = flag.Int("per", 3, "queries issued per client")
		distinct  = flag.Int("distinct", 40, "distinct query variants in the mix")
		rows      = flag.Int64("rows", 100_000, "rows in the shared demo table")
		seed      = flag.Uint64("seed", 1, "demo table seed")
		workers   = flag.Int("workers", 0, "server admission capacity (0 = server default)")
		batch     = flag.Int("batch", 128, "per-round sampling block size")
		delta     = flag.Float64("delta", 0.1, "failure probability per query")
		maxRounds = flag.Int("maxrounds", 300, "server round budget per query")
		traces    = flag.Bool("traces", false, "request throttled per-round trace events")
		noShare   = flag.Bool("noshare", false, "disable the sample broker (solo baseline runs)")
		out       = flag.String("out", "BENCH_serve.json", "JSON report path")
	)
	flag.Parse()

	table, err := demoTable(*rows, *seed)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	srv, err := serve.New(serve.Config{
		Table:           table,
		Workers:         *workers,
		MaxRoundsBudget: *maxRounds,
		DisableSharing:  *noShare,
	})
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	wsURL := "ws://" + ln.Addr().String() + "/api/stream"

	mix := buildMix(*distinct, *batch, *delta, *traces)
	log.Printf("loadgen: %d clients × %d queries over %d variants against %s",
		*clients, *per, len(mix), ln.Addr())

	var (
		mu         sync.Mutex
		latencies  []float64 // end-to-end ms
		firstEvent []float64 // ms to the accepted event
		sources    = map[string]int{}
		ok, failed int
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < *per; j++ {
				req := mix[(c**per+j)%len(mix)]
				lat, first, source, err := runQuery(wsURL, req)
				mu.Lock()
				if err != nil {
					failed++
				} else {
					ok++
					latencies = append(latencies, lat)
					firstEvent = append(firstEvent, first)
					sources[source]++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := srv.Metrics().Snapshot()
	broker := srv.Engine().BrokerStats()
	brokerReduction := 1.0
	if broker.SamplesDrawn > 0 {
		brokerReduction = float64(broker.SamplesServed) / float64(broker.SamplesDrawn)
	}
	report := map[string]any{
		"timestamp":          time.Now().UTC().Format(time.RFC3339),
		"clients":            *clients,
		"queries_per_client": *per,
		"distinct_variants":  len(mix),
		"table_rows":         *rows,
		"duration_seconds":   elapsed.Seconds(),
		"queries_ok":         ok,
		"queries_failed":     failed,
		"sources":            sources,
		"admission_wait_ms": map[string]float64{
			"p50": srv.Metrics().AdmissionQuantile(0.50) * 1000,
			"p95": srv.Metrics().AdmissionQuantile(0.95) * 1000,
			"p99": srv.Metrics().AdmissionQuantile(0.99) * 1000,
		},
		"query_latency_ms": quantiles(latencies),
		"first_event_ms":   quantiles(firstEvent),
		"samples_total":    snap.SamplesTotal,
		"samples_per_sec":  float64(snap.SamplesTotal) / elapsed.Seconds(),
		"rounds_total":     snap.RoundsTotal,
		"broker":           broker,
		"broker_reduction": brokerReduction,
		"metrics":          snap,
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		log.Fatalf("loadgen: %v", err)
	}

	fmt.Printf("loadgen: %d/%d queries ok in %.1fs — admission p99 %.2fms, %.0f samples/sec (run %d, shared %d, cached %d)\n",
		ok, ok+failed, elapsed.Seconds(),
		srv.Metrics().AdmissionQuantile(0.99)*1000,
		float64(snap.SamplesTotal)/elapsed.Seconds(),
		sources[serve.SourceRun], sources[serve.SourceShared], sources[serve.SourceCached])
	fmt.Printf("loadgen: broker attached %d queries, drew %d / served %d samples (%.1fx reduction)\n",
		broker.Attached, broker.SamplesDrawn, broker.SamplesServed, brokerReduction)
	fmt.Printf("loadgen: report written to %s\n", *out)
	if failed > 0 {
		os.Exit(1)
	}
}

// buildMix produces the deterministic query-variant rotation. Variants
// differ in seed, algorithm, confidence bound, and Where filter, so a run
// mixes fresh executions with flight sharing and cache replays.
func buildMix(distinct, batch int, delta float64, traces bool) []serve.QueryRequest {
	if distinct < 1 {
		distinct = 1
	}
	algos := []string{"ifocus", "roundrobin"}
	bounds := []string{"hoeffding", "bernstein"}
	mix := make([]serve.QueryRequest, distinct)
	for v := 0; v < distinct; v++ {
		req := serve.QueryRequest{
			Algorithm:       algos[v%len(algos)],
			ConfidenceBound: bounds[(v/2)%len(bounds)],
			Delta:           delta,
			BatchSize:       batch,
			Seed:            uint64(v/4 + 1),
			Traces:          traces,
		}
		// Every fourth variant filters: long-haul flights only.
		if v%4 == 3 {
			req.Where = []serve.WirePredicate{{Column: "elapsed", Op: ">=", Value: 150}}
		}
		mix[v] = req
	}
	return mix
}

// runQuery drives one streamed query to its terminal event, returning the
// end-to-end latency, the time to the accepted event (both ms), and the
// execution source.
func runQuery(wsURL string, req serve.QueryRequest) (lat, first float64, source string, err error) {
	start := time.Now()
	conn, err := serve.DialWS(wsURL, 10*time.Second)
	if err != nil {
		return 0, 0, "", err
	}
	defer conn.Close()
	blob, err := json.Marshal(req)
	if err != nil {
		return 0, 0, "", err
	}
	if err := conn.WriteText(blob); err != nil {
		return 0, 0, "", err
	}
	for {
		msg, err := conn.ReadMessage()
		if err != nil {
			return 0, 0, "", fmt.Errorf("stream ended without a terminal event: %w", err)
		}
		var ev serve.Event
		if err := json.Unmarshal(msg, &ev); err != nil {
			return 0, 0, "", err
		}
		switch ev.Type {
		case "accepted":
			first = time.Since(start).Seconds() * 1000
			source = ev.Source
		case "result":
			return time.Since(start).Seconds() * 1000, first, source, nil
		case "error":
			return 0, 0, "", fmt.Errorf("query error: %s", ev.Error)
		}
	}
}

// quantiles summarizes a latency sample in milliseconds.
func quantiles(xs []float64) map[string]float64 {
	if len(xs) == 0 {
		return map[string]float64{"p50": 0, "p95": 0, "p99": 0}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return map[string]float64{"p50": at(0.50), "p95": at(0.95), "p99": at(0.99)}
}

// demoTable mirrors the rapidvizd -demo dataset so the load run and the
// served binary measure the same workload.
func demoTable(rows int64, seed uint64) (*rapidviz.Table, error) {
	b := rapidviz.NewTableBuilderColumns("arrdelay", "elapsed")
	err := workload.FlightsRows(rows, seed, func(r workload.FlightRow) error {
		return b.AddRow(r.Airline, r.ArrDelay, r.Elapsed)
	})
	if err != nil {
		return nil, err
	}
	return b.Build()
}
