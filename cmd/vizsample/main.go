// Command vizsample runs one ordering-guaranteed visualization query over a
// CSV file of (group, value) rows and prints the resulting bar chart next
// to the exact answer, with the sampling saving.
//
// Usage:
//
//	vizsample -csv data.csv [-delta 0.05] [-resolution 0] [-algo ifocus]
//	          [-agg avg] [-bound hoeffding] [-batch 64] [-workers 0]
//	          [-timeout 30s] [-stream] [-where "col>=v,col<v"]
//	vizsample -demo              # run on a built-in synthetic dataset
//	vizsample -segments dir      # query an on-disk columnar segment table
//	vizsample -csv data.csv -write-segments dir   # ingest once, then exit
//
// -segments opens a columnar segment directory (written by
// -write-segments, datagen -out, or Table.WriteSegments) instead of
// ingesting a CSV: columns are memory-mapped, rows page in only as draws
// touch them, and results are bit-for-bit identical to the in-memory
// table for the same query and seed — the path for tables larger than
// RAM. -write-segments ingests the input (-csv or -demo), writes it as a
// segment directory, and exits; pair it with any ingestion flags.
//
// -bound picks the concentration inequality behind the confidence
// intervals: hoeffding (the paper's schedule, default), bernstein
// (variance-adaptive empirical-Bernstein — per-group intervals that
// shrink with the observed spread, typically several-fold fewer samples
// on low-variance columns), or bernstein-finite (bernstein plus a
// finite-population correction).
//
// -algo selects the sampling strategy (ifocus | irefine | roundrobin |
// scan | noindex), -agg the aggregate (avg | sum | count), -batch the
// number of samples drawn per contentious group per round (1 = the
// paper-exact scalar schedule; larger blocks trade a few extra samples for
// a several-fold throughput gain), -workers the goroutines fanning out
// each round's per-group draws (0 = all idle engine workers; results are
// identical for every value), -growth an optional geometric block growth
// factor, -timeout bounds the run via context cancellation, and -stream
// prints each group the moment its estimate settles.
//
// -where restricts the query to the rows matching a comma-separated
// predicate conjunction: typed comparisons "col OP number" (OP one of
// < <= > >= == !=; "value" — or the CSV header's value-column name, or a
// header-declared extra column — names the column) plus group inclusion
// "group in A|B|C". The exact baseline is filtered identically, so the
// printed saving compares like with like. The -demo dataset carries an
// "elapsed" extra column (scheduled flight minutes), so e.g.
// -where "elapsed>=150" charts the delays of long-haul flights only.
//
// The CSV is ingested into a columnar table: the first column is the group
// label and the second the numeric value; a header row is detected and
// skipped automatically, and header fields past the value column declare
// extra numeric columns that -where can filter on.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/workload"
)

func main() {
	var (
		csvPath    = flag.String("csv", "", "CSV file of group,value rows")
		demo       = flag.Bool("demo", false, "use a built-in synthetic flight-delay dataset")
		delta      = flag.Float64("delta", 0.05, "failure probability")
		resolution = flag.Float64("resolution", 0, "visual resolution r (0 = exact ordering)")
		algo       = flag.String("algo", "ifocus", "ifocus | irefine | roundrobin | scan | noindex")
		agg        = flag.String("agg", "avg", "avg | sum | count")
		boundKind  = flag.String("bound", "hoeffding", "confidence bound: hoeffding | bernstein | bernstein-finite (variance-adaptive bounds need far fewer samples on low-spread data)")
		seed       = flag.Uint64("seed", 1, "random seed")
		batch      = flag.Int("batch", 0, "samples per contentious group per round (0/1 = paper-exact scalar rounds)")
		workers    = flag.Int("workers", 0, "goroutines drawing per-group blocks each round (0 = all idle engine workers; identical results at any value)")
		growth     = flag.Float64("growth", 0, "geometric per-round block growth factor (0/1 = fixed blocks)")
		timeout    = flag.Duration("timeout", 0, "abort the query after this long (0 = no limit)")
		maxDraws   = flag.Int64("maxdraws", 0, "cap total draws for -algo noindex (0 = unlimited; the cap voids the guarantee)")
		stream     = flag.Bool("stream", false, "print each group the moment its estimate settles")
		where      = flag.String("where", "", `predicate filter, e.g. "elapsed>=150,value<600" or "group in AA|DL" (comma = AND)`)
		segments   = flag.String("segments", "", "query an on-disk columnar segment directory (mmap-backed; instead of -csv/-demo)")
		writeSegs  = flag.String("write-segments", "", "ingest (-csv or -demo), write the table as a segment directory, and exit")
		compress   = flag.Bool("compress", false, "with -write-segments: write block-compressed (v2) segments with zone maps")
		blockLen   = flag.Int("block-len", 0, "with -compress: values per block (default 64Ki)")
	)
	flag.Parse()

	preds, err := parseWhere(*where)
	if err != nil {
		fatal(err)
	}

	var table *rapidviz.Table
	switch {
	case *segments != "":
		if *csvPath != "" || *demo {
			fatal(fmt.Errorf("-segments replaces ingestion; drop -csv/-demo"))
		}
		st, err := rapidviz.OpenSegments(*segments)
		if err != nil {
			fatal(err)
		}
		defer st.Close()
		table = st.Table
	case *demo:
		table, err = demoTable(*seed)
	case *csvPath != "":
		table, err = rapidviz.TableFromCSVFile(*csvPath)
	default:
		fmt.Fprintln(os.Stderr, "vizsample: need -csv FILE, -demo, or -segments DIR")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	if *writeSegs != "" {
		opts := rapidviz.SegmentOptions{Compress: *compress, BlockLen: *blockLen}
		if err := table.WriteSegmentsOptions(*writeSegs, opts); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "vizsample: wrote %d groups to %s\n", len(table.Groups()), *writeSegs)
		return
	}
	// The ingestion builder tracked the value range, so the queries below
	// need not rescan the columns to infer a bound. (The ingested max also
	// bounds every filtered subset.)
	groups, bound := table.Groups(), table.MaxValue()

	q := rapidviz.Query{
		Delta:           *delta,
		Resolution:      *resolution,
		Bound:           bound,
		ConfidenceBound: *boundKind,
		Seed:            *seed,
		MaxDraws:        *maxDraws,
		BatchSize:       *batch,
		RoundGrowth:     *growth,
		Workers:         *workers,
		Where:           preds,
	}
	switch *algo {
	case "ifocus":
		q.Algorithm = rapidviz.AlgoIFocus
	case "irefine":
		q.Algorithm = rapidviz.AlgoIRefine
	case "roundrobin":
		q.Algorithm = rapidviz.AlgoRoundRobin
	case "scan":
		q.Algorithm = rapidviz.AlgoScan
	case "noindex":
		q.Algorithm = rapidviz.AlgoNoIndex
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	switch *agg {
	case "avg":
		q.Aggregate = rapidviz.AggAvg
	case "sum":
		q.Aggregate = rapidviz.AggSum
	case "count":
		q.Aggregate = rapidviz.AggCount
	default:
		fatal(fmt.Errorf("unknown aggregate %q", *agg))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	eng, err := rapidviz.NewEngine(rapidviz.EngineConfig{})
	if err != nil {
		fatal(err)
	}

	var res *rapidviz.Result
	if *stream {
		settled := 0
		for ev := range eng.Stream(ctx, q, groups) {
			switch {
			case ev.Partial != nil:
				settled++
				fmt.Printf("  settled %2d/%d: %-12s %.3f ±%.3f (round %d)\n",
					settled, len(groups), ev.Partial.Group, ev.Partial.Estimate, ev.Partial.HalfWidth, ev.Partial.Round)
			case ev.Err != nil:
				fatal(ev.Err)
			default:
				res = ev.Result
			}
		}
		if res == nil {
			fatal(fmt.Errorf("stream ended without a result (canceled?)"))
		}
	} else {
		res, err = eng.Run(ctx, q, groups)
		if err != nil {
			fatal(err)
		}
	}

	// The exact baseline carries the same filter, so the reported saving
	// compares the filtered query against a filtered scan.
	exact, err := eng.Run(ctx, rapidviz.Query{Algorithm: rapidviz.AlgoScan, Bound: bound, Where: preds}, groups)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s/%s (delta=%.3g", *algo, *agg, *delta)
	if *boundKind != "" && *boundKind != "hoeffding" {
		fmt.Printf(", bound=%s", *boundKind)
	}
	if len(preds) > 0 {
		fmt.Printf(", where %s", *where)
	}
	if *resolution > 0 {
		fmt.Printf(", r=%g", *resolution)
	}
	fmt.Printf(") — %d samples of %d values (%.3f%%)\n\n",
		res.TotalSamples, exact.TotalSamples,
		100*float64(res.TotalSamples)/float64(exact.TotalSamples))
	fmt.Print(res.Render())
	fmt.Println("\nexact AVG (full scan):")
	fmt.Print(exact.Render())
}

// demoTable builds a small materialized flight-delay table. The arrival
// delay is the aggregated value; the scheduled elapsed minutes ride along
// as an extra column so -where can filter (e.g. "elapsed>=150" keeps
// long-haul flights only).
func demoTable(seed uint64) (*rapidviz.Table, error) {
	b := rapidviz.NewTableBuilderColumns("arrdelay", "elapsed")
	err := workload.FlightsRows(200_000, seed, func(r workload.FlightRow) error {
		return b.AddRow(r.Airline, r.ArrDelay, r.Elapsed)
	})
	if err != nil {
		return nil, err
	}
	return b.Build()
}

// whereOps lists the comparison spellings longest-first, so ">=" is tried
// before ">".
var whereOps = []struct {
	text string
	op   rapidviz.PredicateOp
}{
	{">=", rapidviz.OpGE}, {"<=", rapidviz.OpLE}, {"!=", rapidviz.OpNE},
	{"==", rapidviz.OpEQ}, {">", rapidviz.OpGT}, {"<", rapidviz.OpLT},
	{"=", rapidviz.OpEQ},
}

// parseWhere parses the -where mini-language: a comma-separated
// conjunction of "col OP number" comparisons and "group in A|B|C"
// inclusion clauses.
func parseWhere(s string) ([]rapidviz.Predicate, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var preds []rapidviz.Predicate
	for _, clause := range strings.Split(s, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(clause, "group in "); ok {
			var names []string
			for _, n := range strings.Split(rest, "|") {
				if n = strings.TrimSpace(n); n != "" {
					names = append(names, n)
				}
			}
			if len(names) == 0 {
				return nil, fmt.Errorf(`empty group list in %q`, clause)
			}
			preds = append(preds, rapidviz.WhereGroups(names...))
			continue
		}
		matched := false
		for _, cand := range whereOps {
			col, valText, ok := strings.Cut(clause, cand.text)
			if !ok {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(valText), 64)
			if err != nil {
				return nil, fmt.Errorf("bad constant in %q: %w", clause, err)
			}
			preds = append(preds, rapidviz.Where(strings.TrimSpace(col), cand.op, v))
			matched = true
			break
		}
		if !matched {
			return nil, fmt.Errorf(`cannot parse clause %q (want "col>=42" or "group in A|B")`, clause)
		}
	}
	return preds, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vizsample:", err)
	os.Exit(1)
}
