// Command vizsample runs one ordering-guaranteed visualization query over a
// CSV file of (group, value) rows and prints the resulting bar chart next
// to the exact answer, with the sampling saving.
//
// Usage:
//
//	vizsample -csv data.csv [-delta 0.05] [-resolution 0] [-algo ifocus]
//	          [-agg avg] [-timeout 30s] [-stream]
//	vizsample -demo              # run on a built-in synthetic dataset
//
// -algo selects the sampling strategy (ifocus | irefine | roundrobin |
// scan | noindex), -agg the aggregate (avg | sum | count), -timeout bounds
// the run via context cancellation, and -stream prints each group the
// moment its estimate settles.
//
// The CSV must have two columns: a group label and a numeric value; a
// header row is detected and skipped automatically.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/workload"
)

func main() {
	var (
		csvPath    = flag.String("csv", "", "CSV file of group,value rows")
		demo       = flag.Bool("demo", false, "use a built-in synthetic flight-delay dataset")
		delta      = flag.Float64("delta", 0.05, "failure probability")
		resolution = flag.Float64("resolution", 0, "visual resolution r (0 = exact ordering)")
		algo       = flag.String("algo", "ifocus", "ifocus | irefine | roundrobin | scan | noindex")
		agg        = flag.String("agg", "avg", "avg | sum | count")
		seed       = flag.Uint64("seed", 1, "random seed")
		timeout    = flag.Duration("timeout", 0, "abort the query after this long (0 = no limit)")
		maxDraws   = flag.Int64("maxdraws", 0, "cap total draws for -algo noindex (0 = unlimited; the cap voids the guarantee)")
		stream     = flag.Bool("stream", false, "print each group the moment its estimate settles")
	)
	flag.Parse()

	var groups []rapidviz.Group
	var err error
	switch {
	case *demo:
		groups, err = demoGroups(*seed)
	case *csvPath != "":
		groups, err = loadCSV(*csvPath)
	default:
		fmt.Fprintln(os.Stderr, "vizsample: need -csv FILE or -demo")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	q := rapidviz.Query{Delta: *delta, Resolution: *resolution, Seed: *seed, MaxDraws: *maxDraws}
	switch *algo {
	case "ifocus":
		q.Algorithm = rapidviz.AlgoIFocus
	case "irefine":
		q.Algorithm = rapidviz.AlgoIRefine
	case "roundrobin":
		q.Algorithm = rapidviz.AlgoRoundRobin
	case "scan":
		q.Algorithm = rapidviz.AlgoScan
	case "noindex":
		q.Algorithm = rapidviz.AlgoNoIndex
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	switch *agg {
	case "avg":
		q.Aggregate = rapidviz.AggAvg
	case "sum":
		q.Aggregate = rapidviz.AggSum
	case "count":
		q.Aggregate = rapidviz.AggCount
	default:
		fatal(fmt.Errorf("unknown aggregate %q", *agg))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	eng, err := rapidviz.NewEngine(rapidviz.EngineConfig{})
	if err != nil {
		fatal(err)
	}

	var res *rapidviz.Result
	if *stream {
		settled := 0
		for ev := range eng.Stream(ctx, q, groups) {
			switch {
			case ev.Partial != nil:
				settled++
				fmt.Printf("  settled %2d/%d: %-12s %.3f (round %d)\n",
					settled, len(groups), ev.Partial.Group, ev.Partial.Estimate, ev.Partial.Round)
			case ev.Err != nil:
				fatal(ev.Err)
			default:
				res = ev.Result
			}
		}
		if res == nil {
			fatal(fmt.Errorf("stream ended without a result (canceled?)"))
		}
	} else {
		res, err = eng.Run(ctx, q, groups)
		if err != nil {
			fatal(err)
		}
	}

	exact, err := eng.Run(ctx, rapidviz.Query{Algorithm: rapidviz.AlgoScan}, groups)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s/%s (delta=%.3g", *algo, *agg, *delta)
	if *resolution > 0 {
		fmt.Printf(", r=%g", *resolution)
	}
	fmt.Printf(") — %d samples of %d values (%.3f%%)\n\n",
		res.TotalSamples, exact.TotalSamples,
		100*float64(res.TotalSamples)/float64(exact.TotalSamples))
	fmt.Print(res.Render())
	fmt.Println("\nexact AVG (full scan):")
	fmt.Print(exact.Render())
}

// loadCSV reads group,value rows.
func loadCSV(path string) ([]rapidviz.Group, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	byGroup := map[string][]float64{}
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, ",", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("%s:%d: want group,value", path, line)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("%s:%d: bad value: %v", path, line, err)
		}
		g := strings.TrimSpace(parts[0])
		if _, ok := byGroup[g]; !ok {
			order = append(order, g)
		}
		byGroup[g] = append(byGroup[g], v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("%s: no rows", path)
	}
	groups := make([]rapidviz.Group, 0, len(order))
	for _, g := range order {
		groups = append(groups, rapidviz.GroupFromValues(g, byGroup[g]))
	}
	return groups, nil
}

// demoGroups builds a small materialized flight-delay dataset.
func demoGroups(seed uint64) ([]rapidviz.Group, error) {
	byAirline := map[string][]float64{}
	var order []string
	err := workload.FlightsRows(200_000, seed, func(r workload.FlightRow) error {
		if _, ok := byAirline[r.Airline]; !ok {
			order = append(order, r.Airline)
		}
		byAirline[r.Airline] = append(byAirline[r.Airline], r.ArrDelay)
		return nil
	})
	if err != nil {
		return nil, err
	}
	groups := make([]rapidviz.Group, 0, len(order))
	for _, a := range order {
		groups = append(groups, rapidviz.GroupFromValues(a, byAirline[a]))
	}
	return groups, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vizsample:", err)
	os.Exit(1)
}
