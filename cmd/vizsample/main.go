// Command vizsample runs one ordering-guaranteed visualization query over a
// CSV file of (group, value) rows and prints the resulting bar chart next
// to the exact answer, with the sampling saving.
//
// Usage:
//
//	vizsample -csv data.csv [-delta 0.05] [-resolution 0] [-algo ifocus]
//	          [-agg avg] [-batch 64] [-workers 0] [-timeout 30s] [-stream]
//	vizsample -demo              # run on a built-in synthetic dataset
//
// -algo selects the sampling strategy (ifocus | irefine | roundrobin |
// scan | noindex), -agg the aggregate (avg | sum | count), -batch the
// number of samples drawn per contentious group per round (1 = the
// paper-exact scalar schedule; larger blocks trade a few extra samples for
// a several-fold throughput gain), -workers the goroutines fanning out
// each round's per-group draws (0 = all idle engine workers; results are
// identical for every value), -growth an optional geometric block growth
// factor, -timeout bounds the run via context cancellation, and -stream
// prints each group the moment its estimate settles.
//
// The CSV is ingested into a columnar table: the first column is the group
// label and the second the numeric value; a header row is detected and
// skipped automatically.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/workload"
)

func main() {
	var (
		csvPath    = flag.String("csv", "", "CSV file of group,value rows")
		demo       = flag.Bool("demo", false, "use a built-in synthetic flight-delay dataset")
		delta      = flag.Float64("delta", 0.05, "failure probability")
		resolution = flag.Float64("resolution", 0, "visual resolution r (0 = exact ordering)")
		algo       = flag.String("algo", "ifocus", "ifocus | irefine | roundrobin | scan | noindex")
		agg        = flag.String("agg", "avg", "avg | sum | count")
		seed       = flag.Uint64("seed", 1, "random seed")
		batch      = flag.Int("batch", 0, "samples per contentious group per round (0/1 = paper-exact scalar rounds)")
		workers    = flag.Int("workers", 0, "goroutines drawing per-group blocks each round (0 = all idle engine workers; identical results at any value)")
		growth     = flag.Float64("growth", 0, "geometric per-round block growth factor (0/1 = fixed blocks)")
		timeout    = flag.Duration("timeout", 0, "abort the query after this long (0 = no limit)")
		maxDraws   = flag.Int64("maxdraws", 0, "cap total draws for -algo noindex (0 = unlimited; the cap voids the guarantee)")
		stream     = flag.Bool("stream", false, "print each group the moment its estimate settles")
	)
	flag.Parse()

	var groups []rapidviz.Group
	var bound float64
	var err error
	switch {
	case *demo:
		groups, err = demoGroups(*seed)
	case *csvPath != "":
		// The ingestion builder tracked the value range, so the queries
		// below need not rescan the columns to infer a bound.
		var table *rapidviz.Table
		table, err = rapidviz.TableFromCSVFile(*csvPath)
		if err == nil {
			groups, bound = table.Groups(), table.MaxValue()
		}
	default:
		fmt.Fprintln(os.Stderr, "vizsample: need -csv FILE or -demo")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	q := rapidviz.Query{
		Delta:       *delta,
		Resolution:  *resolution,
		Bound:       bound,
		Seed:        *seed,
		MaxDraws:    *maxDraws,
		BatchSize:   *batch,
		RoundGrowth: *growth,
		Workers:     *workers,
	}
	switch *algo {
	case "ifocus":
		q.Algorithm = rapidviz.AlgoIFocus
	case "irefine":
		q.Algorithm = rapidviz.AlgoIRefine
	case "roundrobin":
		q.Algorithm = rapidviz.AlgoRoundRobin
	case "scan":
		q.Algorithm = rapidviz.AlgoScan
	case "noindex":
		q.Algorithm = rapidviz.AlgoNoIndex
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	switch *agg {
	case "avg":
		q.Aggregate = rapidviz.AggAvg
	case "sum":
		q.Aggregate = rapidviz.AggSum
	case "count":
		q.Aggregate = rapidviz.AggCount
	default:
		fatal(fmt.Errorf("unknown aggregate %q", *agg))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	eng, err := rapidviz.NewEngine(rapidviz.EngineConfig{})
	if err != nil {
		fatal(err)
	}

	var res *rapidviz.Result
	if *stream {
		settled := 0
		for ev := range eng.Stream(ctx, q, groups) {
			switch {
			case ev.Partial != nil:
				settled++
				fmt.Printf("  settled %2d/%d: %-12s %.3f (round %d)\n",
					settled, len(groups), ev.Partial.Group, ev.Partial.Estimate, ev.Partial.Round)
			case ev.Err != nil:
				fatal(ev.Err)
			default:
				res = ev.Result
			}
		}
		if res == nil {
			fatal(fmt.Errorf("stream ended without a result (canceled?)"))
		}
	} else {
		res, err = eng.Run(ctx, q, groups)
		if err != nil {
			fatal(err)
		}
	}

	exact, err := eng.Run(ctx, rapidviz.Query{Algorithm: rapidviz.AlgoScan, Bound: bound}, groups)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s/%s (delta=%.3g", *algo, *agg, *delta)
	if *resolution > 0 {
		fmt.Printf(", r=%g", *resolution)
	}
	fmt.Printf(") — %d samples of %d values (%.3f%%)\n\n",
		res.TotalSamples, exact.TotalSamples,
		100*float64(res.TotalSamples)/float64(exact.TotalSamples))
	fmt.Print(res.Render())
	fmt.Println("\nexact AVG (full scan):")
	fmt.Print(exact.Render())
}

// demoGroups builds a small materialized flight-delay dataset.
func demoGroups(seed uint64) ([]rapidviz.Group, error) {
	byAirline := map[string][]float64{}
	var order []string
	err := workload.FlightsRows(200_000, seed, func(r workload.FlightRow) error {
		if _, ok := byAirline[r.Airline]; !ok {
			order = append(order, r.Airline)
		}
		byAirline[r.Airline] = append(byAirline[r.Airline], r.ArrDelay)
		return nil
	})
	if err != nil {
		return nil, err
	}
	groups := make([]rapidviz.Group, 0, len(order))
	for _, a := range order {
		groups = append(groups, rapidviz.GroupFromValues(a, byAirline[a]))
	}
	return groups, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vizsample:", err)
	os.Exit(1)
}
