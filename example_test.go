package rapidviz_test

import (
	"context"
	"fmt"
	"sort"

	"repro"
	"repro/internal/xrand"
)

// ExampleEngine_Run demonstrates the Engine/Query API: one reusable engine
// executes declarative queries — here a top-2 selection — under a
// cancellable context.
func ExampleEngine_Run() {
	r := xrand.New(2015)
	group := func(name string, mean float64) rapidviz.Group {
		d := xrand.TruncNormal{Mu: mean, Sigma: 10, Lo: 0, Hi: 100}
		vals := make([]float64, 50_000)
		for i := range vals {
			vals[i] = d.Sample(r)
		}
		return rapidviz.GroupFromValues(name, vals)
	}
	groups := []rapidviz.Group{
		group("espresso", 62),
		group("filter", 38),
		group("decaf", 20),
	}
	eng, err := rapidviz.NewEngine(rapidviz.EngineConfig{})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := eng.Run(context.Background(), rapidviz.Query{
		Guarantee: rapidviz.GuaranteeTopT,
		T:         2,
		Bound:     100,
		Seed:      7,
	}, groups)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, name := range res.Top {
		fmt.Println(name)
	}
	// Output:
	// espresso
	// filter
}

// ExampleOrder demonstrates the core workflow: build groups, run the
// ordering-guaranteed estimator, read the bars back in ranked order.
func ExampleOrder() {
	r := xrand.New(2015)
	group := func(name string, mean float64) rapidviz.Group {
		d := xrand.TruncNormal{Mu: mean, Sigma: 10, Lo: 0, Hi: 100}
		vals := make([]float64, 50_000)
		for i := range vals {
			vals[i] = d.Sample(r)
		}
		return rapidviz.GroupFromValues(name, vals)
	}
	groups := []rapidviz.Group{
		group("espresso", 62),
		group("filter", 38),
		group("decaf", 20),
	}
	res, err := rapidviz.Order(groups, rapidviz.Options{Bound: 100, Seed: 7})
	if err != nil {
		fmt.Println(err)
		return
	}
	// Rank the bars by estimate.
	type bar struct {
		name string
		v    float64
	}
	bars := make([]bar, len(res.Names))
	for i := range bars {
		bars[i] = bar{res.Names[i], res.Estimates[i]}
	}
	sort.Slice(bars, func(i, j int) bool { return bars[i].v > bars[j].v })
	for _, b := range bars {
		fmt.Println(b.name)
	}
	// Output:
	// espresso
	// filter
	// decaf
}

// ExampleTopT finds the two best-rated products out of many without
// resolving the order of the also-rans.
func ExampleTopT() {
	r := xrand.New(99)
	var groups []rapidviz.Group
	means := []float64{41, 87, 55, 93, 30, 62, 48, 71}
	for i, mu := range means {
		d := xrand.TruncNormal{Mu: mu, Sigma: 8, Lo: 0, Hi: 100}
		vals := make([]float64, 30_000)
		for j := range vals {
			vals[j] = d.Sample(r)
		}
		groups = append(groups, rapidviz.GroupFromValues(fmt.Sprintf("p%d", i), vals))
	}
	res, err := rapidviz.TopT(groups, 2, rapidviz.Options{Bound: 100, Seed: 5})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Top[0], res.Top[1])
	// Output:
	// p3 p1
}
