// Needletail demonstrates the storage substrate directly: build a
// bitmap-indexed row store over synthetic flight records, run IFOCUS and
// SCAN against it through the engine, apply an ad-hoc selection predicate
// (§6.3.3 of the paper), and report the simulated I/O / CPU cost split and
// the index compression ratio.
//
//	go run ./examples/needletail
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/needletail"
	"repro/internal/needletail/disksim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func main() {
	const rows = 300_000
	device := disksim.MustNew(disksim.DefaultCostModel())
	schema := needletail.Schema{
		GroupColumn:  "airline",
		ValueColumns: []string{"elapsed", "arrdelay", "depdelay"},
	}

	fmt.Printf("loading %d flight rows into a bitmap-indexed row store...\n", rows)
	b := needletail.NewTableBuilder(schema, device)
	err := workload.FlightsRows(rows, 42, func(r workload.FlightRow) error {
		return b.Append(r.Airline, r.Elapsed, r.ArrDelay, r.DepDelay)
	})
	if err != nil {
		log.Fatal(err)
	}
	table, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	compressed, plain := table.CompressedIndexWords()
	fmt.Printf("index: %d groups, RLE-compressed to %d of %d words (%.1fx)\n",
		len(table.GroupNames()), compressed, plain, float64(plain)/float64(compressed))

	eng, err := needletail.NewEngine(table, "arrdelay", workload.FlightBound)
	if err != nil {
		log.Fatal(err)
	}

	// IFOCUS through the engine, with a 1% visual resolution.
	device.Reset()
	opts := core.DefaultOptions()
	opts.Resolution = workload.FlightBound / 100
	run, err := core.IFocus(eng.Universe(), xrand.New(9), opts)
	if err != nil {
		log.Fatal(err)
	}
	st := device.Stats()
	fmt.Printf("\nIFOCUS(r=1%%): %d samples, simulated %.3fs I/O + %.3fs CPU\n",
		run.TotalSamples, st.IOSeconds, st.CPUSeconds)

	// SCAN for comparison.
	device.Reset()
	exact := eng.Scan()
	st = device.Stats()
	fmt.Printf("SCAN:         %d rows,    simulated %.3fs I/O + %.3fs CPU\n",
		rows, st.IOSeconds, st.CPUSeconds)

	names := table.GroupNames()
	fmt.Println("\nairline  ifocus-est  exact")
	for i := range names {
		fmt.Printf("%-8s %9.2f  %5.2f\n", names[i], run.Estimates[i], exact[i])
	}

	// Ad-hoc selection predicate: among *long* flights only (elapsed >
	// 2h), sample the arrival delay of one airline. The predicate bitmap
	// is built with one sequential pass and then composes with the group
	// index by bitwise AND.
	elapsedCol := schema.ColumnIndex("elapsed")
	delayCol := schema.ColumnIndex("arrdelay")
	pred := table.PredicateBitmap(elapsedCol, func(v float64) bool { return v > 120 })
	rng := xrand.New(77)
	const probes = 2000
	sum, got := 0.0, 0
	for i := 0; i < probes; i++ {
		if v, ok := table.SampleRowWhere(0, delayCol, pred, rng); ok {
			sum += v
			got++
		}
	}
	if got > 0 {
		fmt.Printf("\npredicate demo: avg arrival delay of %s on flights >2h ≈ %.2f min (%d samples)\n",
			names[0], sum/float64(got), got)
	}
}
