// Needletail demonstrates the storage substrate directly: build a
// bitmap-indexed row store over synthetic flight records, run IFOCUS
// (through the public Engine/Query API, under a context deadline) and
// SCAN against it, apply an ad-hoc selection predicate (§6.3.3 of the
// paper), and report the simulated I/O / CPU cost split and the index
// compression ratio.
//
//	go run ./examples/needletail
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/needletail"
	"repro/internal/needletail/disksim"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func main() {
	const rows = 300_000
	device := disksim.MustNew(disksim.DefaultCostModel())
	schema := needletail.Schema{
		GroupColumn:  "airline",
		ValueColumns: []string{"elapsed", "arrdelay", "depdelay"},
	}

	fmt.Printf("loading %d flight rows into a bitmap-indexed row store...\n", rows)
	b := needletail.NewTableBuilder(schema, device)
	err := workload.FlightsRows(rows, 42, func(r workload.FlightRow) error {
		return b.Append(r.Airline, r.Elapsed, r.ArrDelay, r.DepDelay)
	})
	if err != nil {
		log.Fatal(err)
	}
	table, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	compressed, plain := table.CompressedIndexWords()
	fmt.Printf("index: %d groups, RLE-compressed to %d of %d words (%.1fx)\n",
		len(table.GroupNames()), compressed, plain, float64(plain)/float64(compressed))

	store, err := needletail.NewEngine(table, "arrdelay", workload.FlightBound)
	if err != nil {
		log.Fatal(err)
	}

	// IFOCUS over the store's groups through the public engine, with a 1%
	// visual resolution and a deadline: the sampling loop polls the
	// context every round, so a wedged device can't wedge the query.
	viz, err := rapidviz.NewEngine(rapidviz.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	device.Reset()
	run, err := viz.Run(ctx, rapidviz.Query{
		Bound:      workload.FlightBound,
		Resolution: workload.FlightBound / 100,
		Seed:       9,
	}, store.Universe().Groups)
	if err != nil {
		log.Fatal(err)
	}
	st := device.Stats()
	fmt.Printf("\nIFOCUS(r=1%%): %d samples, simulated %.3fs I/O + %.3fs CPU\n",
		run.TotalSamples, st.IOSeconds, st.CPUSeconds)

	// SCAN for comparison.
	device.Reset()
	exact := store.Scan()
	st = device.Stats()
	fmt.Printf("SCAN:         %d rows,    simulated %.3fs I/O + %.3fs CPU\n",
		rows, st.IOSeconds, st.CPUSeconds)

	names := table.GroupNames()
	fmt.Println("\nairline  ifocus-est  exact")
	for i := range names {
		fmt.Printf("%-8s %9.2f  %5.2f\n", names[i], run.Estimates[i], exact[i])
	}

	// Ad-hoc selection predicate: among *long* flights only (elapsed >
	// 2h), sample the arrival delay of one airline. The predicate bitmap
	// is built with one sequential pass and then composes with the group
	// index by bitwise AND.
	elapsedCol := schema.ColumnIndex("elapsed")
	delayCol := schema.ColumnIndex("arrdelay")
	pred := table.PredicateBitmap(elapsedCol, func(v float64) bool { return v > 120 })
	rng := xrand.New(77)
	const probes = 2000
	sum, got := 0.0, 0
	for i := 0; i < probes; i++ {
		if v, ok := table.SampleRowWhere(0, delayCol, pred, rng); ok {
			sum += v
			got++
		}
	}
	if got > 0 {
		fmt.Printf("\npredicate demo: avg arrival delay of %s on flights >2h ≈ %.2f min (%d samples)\n",
			names[0], sum/float64(got), got)
	}
}
