// Dashboard exercises the paper's §6 extensions the way an analyst's
// dashboard would, all through one reusable Engine: a top-5 leaderboard
// over many groups (Problem 4), a trend line whose guarantee covers
// adjacent points only (Problem 3), a value-accurate chart (Problem 6),
// a fast mode that accepts mistakes on a small fraction of comparisons
// (Problem 5), and finally the serving shape a real dashboard has: many
// panels refreshing concurrently against one shared ingested table, each
// query taking its own zero-copy view. Every panel is one Query against
// the same engine — no per-operator entry points.
//
//	go run ./examples/dashboard
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"
	"strings"
	"sync"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	eng, err := rapidviz.NewEngine(rapidviz.EngineConfig{Bound: 100})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// --- Top-5 of 40 product lines by average basket value -------------
	var products []rapidviz.Group
	for i := 0; i < 40; i++ {
		mean := 20 + 60*rng.Float64()
		products = append(products, synthGroup(rng, fmt.Sprintf("sku-%02d", i), mean, 12, 50_000))
	}
	top, err := eng.Run(ctx, rapidviz.Query{Guarantee: rapidviz.GuaranteeTopT, T: 5, Seed: 5}, products)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-5 SKUs (of %d, sampled %d values): %s\n",
		len(products), top.TotalSamples, strings.Join(top.Top, " > "))

	// --- Trend line: monthly averages, adjacent ordering only ----------
	var months []rapidviz.Group
	for m := 0; m < 12; m++ {
		mean := 50 + 25*math.Sin(float64(m)/12*2*math.Pi)
		months = append(months, synthGroup(rng, fmt.Sprintf("m%02d", m+1), mean, 10, 50_000))
	}
	trend, err := eng.Run(ctx, rapidviz.Query{Guarantee: rapidviz.GuaranteeTrend, Seed: 6}, months)
	if err != nil {
		log.Fatal(err)
	}
	full, err := eng.Run(ctx, rapidviz.Query{Seed: 6}, months)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrend (adjacent-only guarantee): %d samples vs %d for the full ordering\n",
		trend.TotalSamples, full.TotalSamples)
	fmt.Print(trend.RenderTrend())

	// --- Value-accurate bars: ordering + |estimate - truth| <= 2 -------
	regions := []rapidviz.Group{
		synthGroup(rng, "emea", 42, 15, 80_000),
		synthGroup(rng, "apac", 55, 15, 80_000),
		synthGroup(rng, "amer", 49, 15, 80_000),
	}
	vals, err := eng.Run(ctx, rapidviz.Query{Guarantee: rapidviz.GuaranteeValues, MaxError: 2.0, Seed: 7}, regions)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvalue-accurate chart (±2.0 guarantee, ε=%.2f):\n", vals.Epsilon)
	fmt.Print(vals.Render())

	// --- Fast mode: 90% of pairwise comparisons guaranteed -------------
	var channels []rapidviz.Group
	for i := 0; i < 12; i++ {
		mean := 30 + 40*rng.Float64()
		channels = append(channels, synthGroup(rng, fmt.Sprintf("ch-%02d", i), mean, 18, 50_000))
	}
	strict, err := eng.Run(ctx, rapidviz.Query{Seed: 8}, channels)
	if err != nil {
		log.Fatal(err)
	}
	fast, err := eng.Run(ctx, rapidviz.Query{Guarantee: rapidviz.GuaranteeMistakes, CorrectPairs: 0.9, Seed: 8}, channels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nallowing mistakes on 10%% of pairs: %d samples vs %d strict (%.1fx fewer)\n",
		fast.TotalSamples, strict.TotalSamples,
		float64(strict.TotalSamples)/float64(fast.TotalSamples))

	// --- Variance-adaptive bounds with live per-group intervals --------
	// Latency percentiles per service: tightly concentrated values, the
	// shape where the empirical-Bernstein bound needs a fraction of the
	// Hoeffding schedule's samples. Query.OnRound observes the run round
	// by round; its RoundTrace carries each group's own confidence
	// half-width (settled groups report the width they froze at), which a
	// live dashboard renders as shrinking error bars.
	var services []rapidviz.Group
	for i, mean := range []float64{18, 24, 31, 39, 48, 58} {
		services = append(services, synthGroup(rng, fmt.Sprintf("svc-%d", i), mean, 1.5, 60_000))
	}
	// One dataset for both runs, so the saving compares like with like
	// (consecutive runs over one group slice are fine: each run resets
	// the without-replacement draw state).
	classic, err := eng.Run(ctx, rapidviz.Query{Seed: 9, BatchSize: 16}, services)
	if err != nil {
		log.Fatal(err)
	}
	var lastWidths []float64
	var traced int
	adaptive := rapidviz.Query{
		Seed: 9, BatchSize: 16,
		ConfidenceBound: rapidviz.BoundBernstein,
		OnRound: func(tr rapidviz.RoundTrace) {
			traced++
			// Slices are reused between rounds: copy what we keep.
			lastWidths = append(lastWidths[:0], tr.GroupEpsilons...)
		},
	}
	adapt, err := eng.Run(ctx, adaptive, services)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvariance-adaptive bound on low-spread latencies: %d samples vs %d (%.1fx fewer, %d traced rounds)\n",
		adapt.TotalSamples, classic.TotalSamples,
		float64(classic.TotalSamples)/float64(adapt.TotalSamples), traced)
	for i, name := range adapt.Names {
		fmt.Printf("  %-8s %6.2f ±%.2f\n", name, adapt.Estimates[i], lastWidths[i])
	}

	// --- Concurrent panels over one shared table -----------------------
	// Ingest once, serve many: the table's packed columns are shared by
	// every panel, but each concurrent query samples its own View — views
	// carry independent without-replacement draw state, so one Engine can
	// refresh all panels in parallel. Fixed seeds keep each panel's answer
	// reproducible no matter how the queries interleave.
	var rows []rapidviz.Row
	for i := 0; i < 16; i++ {
		mean := 25 + 50*rng.Float64()
		name := fmt.Sprintf("region-%02d", i)
		for j := 0; j < 30_000; j++ {
			v := mean + rng.NormFloat64()*12
			rows = append(rows, rapidviz.Row{Group: name, Value: math.Min(100, math.Max(0, v))})
		}
	}
	table, err := rapidviz.NewTableUniverse(rows)
	if err != nil {
		log.Fatal(err)
	}
	panels := []struct {
		name string
		q    rapidviz.Query
	}{
		{"leaderboard", rapidviz.Query{Guarantee: rapidviz.GuaranteeTopT, T: 3, Seed: 21}},
		{"full order", rapidviz.Query{Seed: 22, BatchSize: 64}},
		{"fast refresh", rapidviz.Query{Guarantee: rapidviz.GuaranteeMistakes, CorrectPairs: 0.9, Seed: 23}},
		{"trend", rapidviz.Query{Guarantee: rapidviz.GuaranteeTrend, Seed: 24}},
	}
	results := make([]*rapidviz.Result, len(panels))
	errs := make([]error, len(panels))
	var wg sync.WaitGroup
	for i, p := range panels {
		wg.Add(1)
		go func(i int, q rapidviz.Query) {
			defer wg.Done()
			q.Bound = table.MaxValue()
			results[i], errs[i] = eng.Run(ctx, q, table.View())
		}(i, p.q)
	}
	wg.Wait()
	fmt.Printf("\n%d concurrent panels over one %d-row table:\n", len(panels), table.NumRows())
	for i, p := range panels {
		if errs[i] != nil {
			log.Fatal(errs[i])
		}
		fmt.Printf("  %-12s %6d samples, %4d rounds\n", p.name, results[i].TotalSamples, results[i].Rounds)
	}
}

// synthGroup builds a materialized group of n clipped-normal values.
func synthGroup(rng *rand.Rand, name string, mean, std float64, n int) rapidviz.Group {
	values := make([]float64, n)
	for i := range values {
		v := mean + rng.NormFloat64()*std
		if v < 0 {
			v = 0
		}
		if v > 100 {
			v = 100
		}
		values[i] = v
	}
	return rapidviz.GroupFromValues(name, values)
}
