// Quickstart: ingest raw (group, value) rows into a columnar table,
// generate an ordering-guaranteed bar chart with the Engine/Query API
// (batched sampling), and compare its cost against the exact scan.
//
//	go run ./examples/quickstart [-batch 64]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	batch := flag.Int("batch", 64, "samples per contentious group per round (1 = paper-exact scalar rounds)")
	flag.Parse()

	// Ingest raw rows — think the result stream of
	// SELECT store, price FROM sales — into a columnar table. Rows arrive
	// in any order; the table groups them by label as they stream in.
	rng := rand.New(rand.NewSource(7))
	means := map[string]float64{
		"north": 52, "south": 47, "east": 61, "west": 49, "online": 35,
	}
	builder := rapidviz.NewTableBuilder()
	for i := 0; i < 200_000; i++ {
		for _, name := range []string{"north", "south", "east", "west", "online"} {
			v := means[name] + rng.NormFloat64()*15
			if v < 0 {
				v = 0
			}
			if v > 100 {
				v = 100
			}
			builder.Add(name, v)
		}
	}
	table, err := builder.Build()
	if err != nil {
		log.Fatal(err)
	}
	groups := table.Groups()

	// One engine serves any number of queries; Run honors the context's
	// cancellation and deadline between sampling rounds.
	eng, err := rapidviz.NewEngine(rapidviz.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// The zero Query samples adaptively with IFOCUS and stops the moment
	// the bar ordering is certain (with probability ≥ 1 − Delta).
	// BatchSize draws a block per contentious group per round: same
	// guarantee, several-fold faster on large groups.
	res, err := eng.Run(ctx, rapidviz.Query{Delta: 0.05, Bound: 100, BatchSize: *batch}, groups)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := eng.Run(ctx, rapidviz.Query{Algorithm: rapidviz.AlgoScan, Bound: 100}, groups)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sampled %d of %d values (%.3f%%) in %d rounds\n\n",
		res.TotalSamples, exact.TotalSamples,
		100*float64(res.TotalSamples)/float64(exact.TotalSamples), res.Rounds)
	fmt.Println("approximate (ordering guaranteed):")
	fmt.Print(res.Render())
	fmt.Println("\nexact:")
	fmt.Print(exact.Render())
}
