// Quickstart: generate an ordering-guaranteed bar chart from in-memory
// data with the Engine/Query API, and compare its cost against the exact
// scan.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	// Build five groups of 200k bounded values each with distinct means —
	// think AVG(price) GROUP BY store.
	rng := rand.New(rand.NewSource(7))
	means := map[string]float64{
		"north": 52, "south": 47, "east": 61, "west": 49, "online": 35,
	}
	var groups []rapidviz.Group
	for _, name := range []string{"north", "south", "east", "west", "online"} {
		values := make([]float64, 200_000)
		for i := range values {
			v := means[name] + rng.NormFloat64()*15
			if v < 0 {
				v = 0
			}
			if v > 100 {
				v = 100
			}
			values[i] = v
		}
		groups = append(groups, rapidviz.GroupFromValues(name, values))
	}

	// One engine serves any number of queries; Run honors the context's
	// cancellation and deadline between sampling rounds.
	eng, err := rapidviz.NewEngine(rapidviz.EngineConfig{})
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// The zero Query samples adaptively with IFOCUS and stops the moment
	// the bar ordering is certain (with probability ≥ 1 − Delta).
	res, err := eng.Run(ctx, rapidviz.Query{Delta: 0.05, Bound: 100}, groups)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := eng.Run(ctx, rapidviz.Query{Algorithm: rapidviz.AlgoScan, Bound: 100}, groups)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sampled %d of %d values (%.3f%%)\n\n",
		res.TotalSamples, exact.TotalSamples,
		100*float64(res.TotalSamples)/float64(exact.TotalSamples))
	fmt.Println("approximate (ordering guaranteed):")
	fmt.Print(res.Render())
	fmt.Println("\nexact:")
	fmt.Print(exact.Render())
}
