// Flightdelays reproduces the paper's motivating example end to end: the
// query SELECT AIRLINE, AVG(DELAY) FROM FLT GROUP BY AIRLINE over a
// synthetic flight-records dataset, answered four ways — exact scan,
// conventional round-robin sampling, IFOCUS, and IFOCUS with a 1% visual
// resolution — with partial results streamed over Engine.Stream's channel
// as groups settle, under a context deadline. A final filtered query adds
// the paper's selection-predicate shape: the same GROUP BY restricted to
// long-haul flights (WHERE ELAPSED >= 150), answered through Query.Where
// over the table's elapsed column — no re-ingestion, same 1−δ ordering
// guarantee over the filtered rows.
//
//	go run ./examples/flightdelays [-batch 64]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/workload"
)

func main() {
	batch := flag.Int("batch", 64, "samples per contentious group per round (1 = paper-exact scalar rounds)")
	flag.Parse()

	const rows = 500_000
	fmt.Printf("generating %d synthetic flight records...\n", rows)
	// Stream the raw rows into a columnar table: the ingestion layer does
	// the GROUP BY AIRLINE, and the sampling groups are zero-copy views
	// over the packed delay column. The scheduled elapsed minutes ride
	// along as an extra column — never aggregated, only filtered on.
	builder := rapidviz.NewTableBuilderColumns("arrdelay", "elapsed")
	err := workload.FlightsRows(rows, 2015, func(r workload.FlightRow) error {
		return builder.AddRow(r.Airline, r.ArrDelay, r.Elapsed)
	})
	if err != nil {
		log.Fatal(err)
	}
	table, err := builder.Build()
	if err != nil {
		log.Fatal(err)
	}
	groups := table.Groups()

	// Bound: the max observed delay, tracked by the table during
	// ingestion. The paper's 24h worst-case bound is valid too, but on a
	// small in-memory sample the tighter data-driven bound shows the
	// algorithms' focus better; either choice preserves the guarantee.
	eng, err := rapidviz.NewEngine(rapidviz.EngineConfig{Delta: 0.05, Seed: 3, Bound: table.MaxValue()})
	if err != nil {
		log.Fatal(err)
	}
	// A generous deadline: were the dataset adversarial (groups with equal
	// true means), the context — not a wedged process — ends the run.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	exact, err := eng.Run(ctx, rapidviz.Query{Algorithm: rapidviz.AlgoScan}, groups)
	if err != nil {
		log.Fatal(err)
	}

	// Partial results: each airline's average arrives on the stream the
	// moment it settles; the terminal event carries the full result.
	fmt.Println("\nIFOCUS with streaming partial results:")
	var res *rapidviz.Result
	settled := 0
	for ev := range eng.Stream(ctx, rapidviz.Query{BatchSize: *batch}, groups) {
		switch {
		case ev.Partial != nil:
			settled++
			fmt.Printf("  settled %2d/%d: %-3s avg arrival delay %.2f min\n",
				settled, len(groups), ev.Partial.Group, ev.Partial.Estimate)
		case ev.Err != nil:
			log.Fatal(ev.Err)
		default:
			res = ev.Result
		}
	}
	if res == nil {
		log.Fatal("stream ended without a result")
	}

	rr, err := eng.Run(ctx, rapidviz.Query{Algorithm: rapidviz.AlgoRoundRobin}, groups)
	if err != nil {
		log.Fatal(err)
	}
	// A 1-minute visual resolution: airlines within a minute of each other
	// may swap, which a 20-bar chart could not legibly show anyway.
	resR, err := eng.Run(ctx, rapidviz.Query{Resolution: 1}, groups)
	if err != nil {
		log.Fatal(err)
	}

	// Selection predicates: the same query over long-haul flights only.
	// Query.Where filters through the table's selection layer (the
	// elapsed column was ingested alongside the delays), so no second
	// table is built and airlines with no long-haul flights drop out of
	// the chart; the ordering guarantee covers the filtered rows.
	longHaul, err := eng.Run(ctx, rapidviz.Query{
		BatchSize: *batch,
		Where:     []rapidviz.Predicate{rapidviz.Where("elapsed", rapidviz.OpGE, 150)},
	}, groups)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsample complexity (out of %d rows):\n", rows)
	fmt.Printf("  exact scan       %d\n", exact.TotalSamples)
	fmt.Printf("  roundrobin       %d (%.2f%%)\n", rr.TotalSamples, pct(rr, exact))
	fmt.Printf("  ifocus           %d (%.2f%%)\n", res.TotalSamples, pct(res, exact))
	fmt.Printf("  ifocus r=1min    %d (%.2f%%)\n", resR.TotalSamples, pct(resR, exact))
	fmt.Println("\nnote: gains grow with dataset size (sample complexity is size-independent);")
	fmt.Println("run `go run ./cmd/experiments -fig table3` for the paper-scale sweep.")

	fmt.Println("\nifocus result (error bars = final confidence interval):")
	fmt.Print(res.Render())

	fmt.Printf("\nlong-haul flights only (WHERE elapsed >= 150; %d airlines qualify, %d samples):\n",
		len(longHaul.Names), longHaul.TotalSamples)
	fmt.Print(longHaul.Render())
}

func pct(r, exact *rapidviz.Result) float64 {
	return 100 * float64(r.TotalSamples) / float64(exact.TotalSamples)
}
