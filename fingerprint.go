package rapidviz

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/conc"
	"repro/internal/dataset"
)

// Fingerprint returns a canonical identifier of everything that determines
// q's result under this engine, extending the predicate-fingerprint scheme
// of the Where cache to whole queries. Two queries with equal fingerprints
// executed over the same group set produce bit-for-bit identical results
// (sampling is deterministic given the resolved seed), so serving layers
// can key result caches by (table, fingerprint) and collapse identical
// concurrent queries into one execution.
//
// The encoding resolves the engine's defaults first — a zero Delta and an
// explicit Delta equal to the engine default fingerprint identically, and
// the seed policy (Deterministic / Query.Seed / engine default) is folded
// into one resolved seed. Fields that provably do not affect results are
// excluded: Workers (worker invariance is pinned by the test suite) and
// the OnRound observer. Fields that do — BatchSize, RoundGrowth, MaxRounds,
// MaxDraws, the confidence bound, and every guarantee parameter — are
// included. A zero Bound means "infer from the groups", which is a pure
// function of the group set, so it fingerprints as the inferred marker
// rather than a value. ShareSamples is excluded like Workers: broker-fed
// and solo runs are pinned bit-for-bit equal, so a serving layer may
// collapse a shared and an unshared copy of the same query into one
// flight.
//
// The fingerprint identifies the query only; callers caching results must
// additionally key by the identity of the groups it ran over.
func (e *Engine) Fingerprint(q Query) string {
	var b strings.Builder
	b.Grow(160)
	b.WriteString("q1|")
	fmt.Fprintf(&b, "agg=%d|guar=%d|algo=%d|", int(q.Aggregate), int(q.Guarantee), int(q.Algorithm))
	fmt.Fprintf(&b, "t=%d|sub=%d|", q.T, q.SubGroups)
	fpFloat(&b, "err", q.MaxError)
	fpFloat(&b, "pairs", q.CorrectPairs)
	if len(q.Adjacency) > 0 {
		b.WriteString("adj=")
		for i, list := range q.Adjacency {
			if i > 0 {
				b.WriteByte(';')
			}
			sorted := append([]int(nil), list...)
			sort.Ints(sorted)
			for j, n := range sorted {
				if j > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%d", n)
			}
		}
		b.WriteByte('|')
	}
	if len(q.Where) > 0 {
		// Already canonical: order-insensitive across conjuncts.
		fmt.Fprintf(&b, "where=%s|", dataset.FingerprintPredicates(q.Where))
	}

	delta := q.Delta
	if delta == 0 {
		delta = e.cfg.Delta
	}
	fpFloat(&b, "delta", delta)
	bound := q.Bound
	if bound == 0 {
		bound = e.cfg.Bound
	}
	if bound == 0 {
		b.WriteString("c=inferred|")
	} else {
		fpFloat(&b, "c", bound)
	}
	res := q.Resolution
	if res == 0 {
		res = e.cfg.Resolution
	}
	fpFloat(&b, "res", res)
	kind, err := conc.ParseKind(q.ConfidenceBound)
	if err != nil {
		// Invalid queries never execute; give them a distinct bucket so a
		// caching layer that fingerprints before validation cannot alias
		// them with a valid query.
		kind = conc.Kind("invalid:" + q.ConfidenceBound)
	}
	fmt.Fprintf(&b, "cb=%s|", kind)
	wr := q.WithReplacement || e.cfg.WithReplacement
	fmt.Fprintf(&b, "wr=%t|", wr)
	fmt.Fprintf(&b, "batch=%d|", q.BatchSize)
	fpFloat(&b, "growth", q.RoundGrowth)
	rounds := q.MaxRounds
	if rounds == 0 {
		rounds = e.cfg.MaxRounds
	}
	fmt.Fprintf(&b, "rounds=%d|draws=%d|", rounds, q.MaxDraws)
	fmt.Fprintf(&b, "seed=%d", e.seed(q))
	return b.String()
}

// fpFloat appends one name=value field encoding the float exactly (by
// bits), so no two distinct values ever collide and the encoding never
// depends on formatting precision. Zero — by far the common case for unset
// knobs — is written compactly.
func fpFloat(b *strings.Builder, name string, v float64) {
	if v == 0 {
		fmt.Fprintf(b, "%s=0|", name)
		return
	}
	fmt.Fprintf(b, "%s=%x|", name, math.Float64bits(v))
}
