package rapidviz_test

import (
	"context"
	"fmt"
	"math"
	"testing"

	rapidviz "repro"
)

// lowVarGroups builds tightly concentrated groups (±2 around means 8
// apart, domain [0,100]) — the workload where variance-adaptive bounds
// shine.
func lowVarGroups(rows int, seed uint64) []rapidviz.Group {
	var groups []rapidviz.Group
	state := seed
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	for g := 0; g < 6; g++ {
		mean := 20 + 8*float64(g)
		values := make([]float64, rows)
		for i := range values {
			values[i] = mean + (next()-0.5)*4
		}
		groups = append(groups, rapidviz.GroupFromValues(fmt.Sprintf("lv%d", g), values))
	}
	return groups
}

// TestQueryConfidenceBound: a Bernstein query terminates with at least 2x
// fewer samples than the default schedule on a low-variance workload, with
// the same correct ordering.
func TestQueryConfidenceBound(t *testing.T) {
	ctx := context.Background()
	eng := rapidviz.DefaultEngine()
	base := rapidviz.Query{Bound: 100, Seed: 61, BatchSize: 16}
	hoeff, err := eng.Run(ctx, base, lowVarGroups(50_000, 9))
	if err != nil {
		t.Fatal(err)
	}
	q := base
	q.ConfidenceBound = rapidviz.BoundBernstein
	bern, err := eng.Run(ctx, q, lowVarGroups(50_000, 9))
	if err != nil {
		t.Fatal(err)
	}
	if bern.TotalSamples*2 > hoeff.TotalSamples {
		t.Fatalf("bernstein used %d samples vs hoeffding %d; want at least 2x fewer",
			bern.TotalSamples, hoeff.TotalSamples)
	}
	for i := 1; i < len(bern.Estimates); i++ {
		if bern.Estimates[i] <= bern.Estimates[i-1] {
			t.Fatalf("bernstein estimates misordered: %v", bern.Estimates)
		}
	}
}

// TestQueryConfidenceBoundWorkerInvariance: Workers 1 == 8 seed-for-seed
// at the engine level under the Bernstein bound, per batch size.
func TestQueryConfidenceBoundWorkerInvariance(t *testing.T) {
	ctx := context.Background()
	eng := rapidviz.DefaultEngine()
	for _, batch := range []int{1, 64} {
		run := func(workers int) string {
			q := rapidviz.Query{
				Bound: 100, Seed: 62, BatchSize: batch, Workers: workers,
				ConfidenceBound: rapidviz.BoundBernstein,
			}
			res, err := eng.Run(ctx, q, lowVarGroups(50_000, 10))
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("%v|%v|%d|%d", res.Estimates, res.SampleCounts, res.TotalSamples, res.Rounds)
		}
		want := run(1)
		if got := run(8); got != want {
			t.Fatalf("batch=%d: workers=8 diverged from workers=1:\n got: %s\nwant: %s", batch, got, want)
		}
	}
}

// TestQueryConfidenceBoundValidation: unknown bound names — and the
// unsupported SubGroups combination — are rejected at the public boundary
// instead of silently running the default schedule.
func TestQueryConfidenceBoundValidation(t *testing.T) {
	_, err := rapidviz.DefaultEngine().Run(context.Background(),
		rapidviz.Query{Bound: 100, ConfidenceBound: "chernoff"}, lowVarGroups(100, 1))
	if err == nil {
		t.Fatal("unknown ConfidenceBound accepted")
	}
	cells := rapidviz.GroupFromCells("c", [][]float64{{1, 2}, {3, 4}})
	_, err = rapidviz.DefaultEngine().Run(context.Background(),
		rapidviz.Query{Bound: 100, SubGroups: 2, ConfidenceBound: rapidviz.BoundBernstein},
		[]rapidviz.Group{cells})
	if err == nil {
		t.Fatal("SubGroups + ConfidenceBound accepted despite being unsupported")
	}
}

// TestStreamPartialHalfWidths: streamed partials carry each group's frozen
// half-width — per group (not all equal) under the Bernstein bound, and
// tight enough to cover the truth on this seeded run.
func TestStreamPartialHalfWidths(t *testing.T) {
	groups := lowVarGroups(50_000, 11)
	q := rapidviz.Query{Bound: 100, Seed: 63, BatchSize: 16, ConfidenceBound: rapidviz.BoundBernstein}
	var partials []rapidviz.Partial
	var res *rapidviz.Result
	for ev := range rapidviz.DefaultEngine().Stream(context.Background(), q, groups) {
		switch {
		case ev.Partial != nil:
			partials = append(partials, *ev.Partial)
		case ev.Err != nil:
			t.Fatal(ev.Err)
		default:
			res = ev.Result
		}
	}
	if res == nil || len(partials) != len(groups) {
		t.Fatalf("got %d partials for %d groups", len(partials), len(groups))
	}
	distinct := false
	for _, p := range partials {
		if p.HalfWidth <= 0 {
			t.Fatalf("partial %q carries no half-width: %+v", p.Group, p)
		}
		truth := 20 + 8*float64(p.Index)
		if math.Abs(p.Estimate-truth) > p.HalfWidth+0.5 { // +0.5: group means jitter around the nominal center
			t.Fatalf("partial %q estimate %v outside ±%v of %v", p.Group, p.Estimate, p.HalfWidth, truth)
		}
		if p.HalfWidth != partials[0].HalfWidth {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("all partial half-widths equal; expected per-group radii")
	}
}

// TestQueryOnRound: the public per-round hook reports per-group widths
// that tighten over time, for the default schedule (equal widths) and the
// Bernstein bound (per-group) alike.
func TestQueryOnRound(t *testing.T) {
	for _, bound := range []string{rapidviz.BoundHoeffding, rapidviz.BoundBernstein} {
		var rounds int
		var lastEps float64
		q := rapidviz.Query{Bound: 100, Seed: 64, BatchSize: 16, ConfidenceBound: bound}
		q.OnRound = func(tr rapidviz.RoundTrace) {
			rounds++
			if len(tr.GroupEpsilons) != 6 || len(tr.Estimates) != 6 || len(tr.Active) != 6 {
				t.Fatalf("%s: malformed trace %+v", bound, tr)
			}
			lastEps = tr.Epsilon
		}
		if _, err := rapidviz.DefaultEngine().Run(context.Background(), q, lowVarGroups(50_000, 12)); err != nil {
			t.Fatal(err)
		}
		if rounds == 0 {
			t.Fatalf("%s: OnRound never fired", bound)
		}
		if lastEps <= 0 || lastEps >= 100 {
			t.Fatalf("%s: final eps %v not in (0, 100)", bound, lastEps)
		}
	}
}

// TestQueryOnRoundNoIndex: the hook also fires for AlgoNoIndex, at its
// interval-check cadence, with per-group widths.
func TestQueryOnRoundNoIndex(t *testing.T) {
	var rounds int
	q := rapidviz.Query{
		Bound: 100, Seed: 65, Algorithm: rapidviz.AlgoNoIndex,
		ConfidenceBound: rapidviz.BoundBernstein,
		OnRound: func(tr rapidviz.RoundTrace) {
			rounds++
			if len(tr.GroupEpsilons) != 6 {
				t.Fatalf("malformed trace %+v", tr)
			}
		},
	}
	if _, err := rapidviz.DefaultEngine().Run(context.Background(), q, lowVarGroups(50_000, 13)); err != nil {
		t.Fatal(err)
	}
	if rounds == 0 {
		t.Fatal("OnRound never fired for AlgoNoIndex")
	}
}
