package rapidviz

import (
	"context"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"testing"

	"repro/internal/xrand"
)

// whereTestTable builds the quickstart-style sales dataset as a table with
// an extra "qty" column: five stores with well-separated mean prices,
// deterministic noise, qty cycling 0..9 so any qty threshold selects a
// predictable slice of every store.
func whereTestTable(t testing.TB, rowsPerStore int) *Table {
	t.Helper()
	r := xrand.New(0x5a1e5)
	stores := []string{"north", "south", "east", "west", "online"}
	means := map[string]float64{"north": 52, "south": 47, "east": 61, "west": 40, "online": 30}
	b := NewTableBuilderColumns("price", "qty")
	for i := 0; i < rowsPerStore; i++ {
		for _, name := range stores {
			v := means[name] + (r.Float64()-0.5)*16
			if v < 0 {
				v = 0
			}
			if err := b.AddRow(name, v, float64(i%10)); err != nil {
				t.Fatal(err)
			}
		}
	}
	tab, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// resultFingerprint renders a public Result at full precision.
func resultFingerprint(res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rounds=%d total=%d capped=%v names=%v est=[", res.Rounds, res.TotalSamples, res.Capped, res.Names)
	for i, e := range res.Estimates {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.17g", e)
	}
	b.WriteString("] counts=")
	fmt.Fprintf(&b, "%v", res.SampleCounts)
	return b.String()
}

// TestWhereMatchesPrefiltered is the acceptance pin: a Query{Where: …} on
// the quickstart-style dataset returns the same certified ordering — in
// fact the identical result, bit for bit — as running the equivalent
// pre-filtered groups, because filtered groups consume their RNG streams
// exactly as equal-sized materialized groups would.
func TestWhereMatchesPrefiltered(t *testing.T) {
	tab := whereTestTable(t, 4000)
	preds := []Predicate{Where("qty", OpGE, 5), WhereValue(OpLE, 95)}

	eng, err := NewEngine(EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Seed: 77, Bound: 100, Delta: 0.05}
	q.Where = preds
	got, err := eng.Run(context.Background(), q, tab.Groups())
	if err != nil {
		t.Fatal(err)
	}

	// Pre-filter by hand: same predicate semantics, surviving groups in
	// table order.
	qty, ok := tab.ExtraColumn("qty")
	if !ok {
		t.Fatal("qty column missing")
	}
	var ref []Group
	off := 0
	for gi, name := range tab.Names() {
		col := tab.Column(gi)
		var kept []float64
		for j, v := range col {
			if qty[off+j] >= 5 && v <= 95 {
				kept = append(kept, v)
			}
		}
		off += len(col)
		if len(kept) > 0 {
			ref = append(ref, GroupFromValues(name, kept))
		}
	}
	want, err := eng.Run(context.Background(), Query{Seed: 77, Bound: 100, Delta: 0.05}, ref)
	if err != nil {
		t.Fatal(err)
	}
	if resultFingerprint(got) != resultFingerprint(want) {
		t.Fatalf("filtered query diverges from pre-filtered run:\n got %s\nwant %s",
			resultFingerprint(got), resultFingerprint(want))
	}
	// The certified ordering matches the true filtered ordering:
	// online < west < south < north < east by construction.
	rank := map[string]float64{}
	for i, name := range got.Names {
		rank[name] = got.Estimates[i]
	}
	order := []string{"online", "west", "south", "north", "east"}
	for i := 1; i < len(order); i++ {
		if rank[order[i-1]] >= rank[order[i]] {
			t.Fatalf("certified ordering wrong: %s=%v !< %s=%v",
				order[i-1], rank[order[i-1]], order[i], rank[order[i]])
		}
	}
}

// TestWhereGoldenPins pins the filtered execution bit-for-bit: for each
// BatchSize the result is identical at Workers 1 and 8 (worker
// invariance extends to filtered groups), and both match a captured
// golden fingerprint so refactors cannot silently reshape filtered
// sampling streams. (BatchSize 1 and 64 legitimately differ — block
// rounds draw more per group by design — hence one pin per batch size.)
func TestWhereGoldenPins(t *testing.T) {
	goldens := map[int]string{
		1:  "cc40edf3ec3895c1",
		64: "d68adcdfb92982c1",
	}
	tab := whereTestTable(t, 4000)
	eng, err := NewEngine(EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{1, 64} {
		var base string
		for _, workers := range []int{1, 8} {
			q := Query{
				Seed:      2026,
				Bound:     100,
				BatchSize: batch,
				Workers:   workers,
				Where:     []Predicate{Where("qty", OpLT, 4)},
			}
			res, err := eng.Run(context.Background(), q, tab.Groups())
			if err != nil {
				t.Fatalf("batch=%d workers=%d: %v", batch, workers, err)
			}
			fp := resultFingerprint(res)
			if workers == 1 {
				base = fp
				if h := fnvHash(fp); h != goldens[batch] {
					t.Fatalf("batch=%d golden drifted: hash %s want %s\n%s", batch, h, goldens[batch], fp)
				}
				continue
			}
			if fp != base {
				t.Fatalf("batch=%d: workers=8 diverges from workers=1:\n got %s\nwant %s", batch, fp, base)
			}
		}
	}
}

// fnvHash renders a 64-bit FNV-1a of s, the compact golden-pin form.
func fnvHash(s string) string {
	h := fnv.New64a()
	h.Write([]byte(s))
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestWhereConcurrentCachedViews hammers one cached dense selection from
// many concurrent queries. The selection's bitmap rank index is built
// before the view is published, so concurrent Selects are read-only; run
// under -race this pins that contract, and every query must return the
// identical result (fresh draw state per use).
func TestWhereConcurrentCachedViews(t *testing.T) {
	tab := whereTestTable(t, 2000)
	eng, err := NewEngine(EngineConfig{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Seed: 21, Bound: 100, BatchSize: 64, Where: []Predicate{Where("qty", OpGE, 5)}}
	ref, err := eng.Run(context.Background(), q, tab.Groups())
	if err != nil {
		t.Fatal(err)
	}
	want := resultFingerprint(ref)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := eng.Run(context.Background(), q, tab.View())
			if err != nil {
				errs[w] = err
				return
			}
			if got := resultFingerprint(res); got != want {
				errs[w] = fmt.Errorf("concurrent cached run diverged:\n got %s\nwant %s", got, want)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestWhereViewCacheReuse: repeated filtered queries — predicate order
// permuted, group lists reordered — share one cached selection per table.
func TestWhereViewCacheReuse(t *testing.T) {
	tab := whereTestTable(t, 1000)
	eng, err := NewEngine(EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	qa := Query{Seed: 5, Bound: 100, Where: []Predicate{Where("qty", OpGE, 3), WhereGroups("north", "east", "south")}}
	qb := Query{Seed: 9, Bound: 100, Where: []Predicate{WhereGroups("south", "east", "north"), Where("qty", OpGE, 3)}}
	if _, err := eng.Run(ctx, qa, tab.Groups()); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(ctx, qb, tab.Groups()); err != nil {
		t.Fatal(err)
	}
	if n := eng.viewCount.Load(); n != 1 {
		t.Fatalf("fingerprint-equal filters cached %d views, want 1", n)
	}
	// A different constant is a different selection.
	qc := Query{Seed: 5, Bound: 100, Where: []Predicate{Where("qty", OpGE, 4), WhereGroups("north", "east", "south")}}
	if _, err := eng.Run(ctx, qc, tab.Groups()); err != nil {
		t.Fatal(err)
	}
	if n := eng.viewCount.Load(); n != 2 {
		t.Fatalf("distinct filter cached %d views, want 2", n)
	}
	// Cached selections serve Table.View() group sets too, and reuse must
	// produce the same answer as the first run (fresh draw state per use).
	r1, err := eng.Run(ctx, qa, tab.View())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Run(ctx, qa, tab.View())
	if err != nil {
		t.Fatal(err)
	}
	if resultFingerprint(r1) != resultFingerprint(r2) {
		t.Fatal("cached view reuse changed the result")
	}
}

func TestWhereValidation(t *testing.T) {
	tab := whereTestTable(t, 100)
	eng, err := NewEngine(EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	where := []Predicate{WhereValue(OpGE, 0)}

	// Non-table groups cannot be filtered.
	plain := []Group{GroupFromValues("a", []float64{1, 2}), GroupFromValues("b", []float64{3, 4})}
	if _, err := eng.Run(ctx, Query{Bound: 10, Where: where}, plain); err == nil ||
		!strings.Contains(err.Error(), "table-backed") {
		t.Fatalf("non-table groups: %v", err)
	}
	// A sliced group set is rejected (subset selection goes through
	// WhereGroups, not slicing).
	if _, err := eng.Run(ctx, Query{Bound: 100, Where: where}, tab.Groups()[1:3]); err == nil ||
		!strings.Contains(err.Error(), "full group set") {
		t.Fatalf("sliced groups: %v", err)
	}
	// Unknown columns and groups surface the dataset layer's message.
	if _, err := eng.Run(ctx, Query{Bound: 100, Where: []Predicate{Where("nosuch", OpGT, 1)}}, tab.Groups()); err == nil ||
		!strings.Contains(err.Error(), "unknown column") {
		t.Fatalf("unknown column: %v", err)
	}
	if _, err := eng.Run(ctx, Query{Bound: 100, Where: []Predicate{WhereGroups("nostore")}}, tab.Groups()); err == nil ||
		!strings.Contains(err.Error(), "unknown group") {
		t.Fatalf("unknown group: %v", err)
	}
	// A filter matching nothing is an error, not an empty chart.
	if _, err := eng.Run(ctx, Query{Bound: 100, Where: []Predicate{WhereValue(OpGT, 1e9)}}, tab.Groups()); err == nil ||
		!strings.Contains(err.Error(), "matches no rows") {
		t.Fatalf("empty filter: %v", err)
	}
}

// TestWhereExhaustion: a filter can shrink groups below what the sampler
// would like to draw; the run must settle those groups at their exact
// filtered means (population exhausted) rather than loop, cap, or draw
// outside the selection.
func TestWhereExhaustion(t *testing.T) {
	// qty == 7 keeps one row in ten; with only 60 rows per store the
	// filtered groups hold 6 values each — far below any settle budget.
	tab := whereTestTable(t, 60)
	eng, err := NewEngine(EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Seed: 3, Bound: 100, Where: []Predicate{Where("qty", OpEQ, 7)}}
	res, err := eng.Run(context.Background(), q, tab.Groups())
	if err != nil {
		t.Fatal(err)
	}
	if res.Capped {
		t.Fatal("exhausted filtered run reported capped")
	}
	// Every group settled at its exact filtered mean.
	view, err := tab.Filter(q.Where...)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range view.Groups() {
		if g.Size() != 6 {
			t.Fatalf("group %q filtered size %d, want 6", g.Name(), g.Size())
		}
		if res.Names[i] != g.Name() {
			t.Fatalf("result name %q, want %q", res.Names[i], g.Name())
		}
		if diff := res.Estimates[i] - g.TrueMean(); diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("group %q estimate %v, want exact filtered mean %v", g.Name(), res.Estimates[i], g.TrueMean())
		}
	}
}

// TestStreamWhere: streamed partials carry the surviving groups' names,
// never a dropped group's, and the terminal result covers exactly the
// survivors.
func TestStreamWhere(t *testing.T) {
	tab := whereTestTable(t, 2000)
	eng, err := NewEngine(EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Seed: 11, Bound: 100, Where: []Predicate{
		WhereGroups("north", "east", "online"),
		Where("qty", OpGE, 2),
	}}
	var res *Result
	seen := map[string]bool{}
	for ev := range eng.Stream(context.Background(), q, tab.Groups()) {
		switch {
		case ev.Partial != nil:
			seen[ev.Partial.Group] = true
		case ev.Err != nil:
			t.Fatal(ev.Err)
		default:
			res = ev.Result
		}
	}
	if res == nil {
		t.Fatal("no terminal result")
	}
	want := []string{"north", "east", "online"}
	if len(res.Names) != 3 {
		t.Fatalf("result names %v", res.Names)
	}
	for _, name := range want {
		found := false
		for _, n := range res.Names {
			found = found || n == name
		}
		if !found {
			t.Fatalf("missing %q in %v", name, res.Names)
		}
	}
	for name := range seen {
		if name == "south" || name == "west" {
			t.Fatalf("dropped group %q appeared in partials", name)
		}
	}
}
