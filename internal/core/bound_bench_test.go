package core

import (
	"fmt"
	"testing"

	"repro/internal/conc"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// BenchmarkBoundTermination measures samples-to-termination (the paper's
// sample complexity C, reported as the samples/run metric) for the
// Hoeffding schedule vs the empirical-Bernstein bound on the datagen
// workload families at both ends of the spread spectrum:
//
//   - low-variance: truncnorm with σ=2 — group spreads are a sliver of the
//     [0,100] domain, so the variance-oblivious Hoeffding width is pure
//     waste and Bernstein's acceptance bar is ≥2x fewer samples.
//   - high-variance: bernoulli ({0,100} two-point groups, the worst case
//     the Hoeffding bound is tight for) — Bernstein's second-order term
//     makes it at best comparable here, which the artifact records too.
//
// Wall-clock time also improves with the sample count, but the recorded
// samples/run metric is the advertised comparison: it is deterministic per
// seed and independent of the host.
func BenchmarkBoundTermination(b *testing.B) {
	workloads := []struct {
		name string
		cfg  workload.Config
	}{
		{"lowvar", workload.Config{Kind: workload.TruncNorm, K: 10, TotalRows: 10_000_000, StdDev: 2, Seed: 7}},
		{"highvar", workload.Config{Kind: workload.BernoulliKind, K: 10, TotalRows: 10_000_000, Seed: 7}},
	}
	for _, wl := range workloads {
		for _, kind := range []conc.Kind{conc.KindHoeffding, conc.KindBernstein} {
			b.Run(fmt.Sprintf("%s/%s", wl.name, kind), func(b *testing.B) {
				u, err := workload.Virtual(wl.cfg)
				if err != nil {
					b.Fatal(err)
				}
				opts := DefaultOptions()
				opts.Bound = kind
				opts.BatchSize = 16
				opts.MaxRounds = 1 << 22
				var samples, runs int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := IFocus(u, xrand.New(uint64(i)+1), opts)
					if err != nil {
						b.Fatal(err)
					}
					if res.Capped {
						b.Fatal("benchmark run hit the round cap")
					}
					samples += res.TotalSamples
					runs++
				}
				b.ReportMetric(float64(samples)/float64(runs), "samples/run")
			})
		}
	}
}
