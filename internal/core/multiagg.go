package core

import (
	"fmt"

	"repro/internal/conc"
	"repro/internal/dataset"
	"repro/internal/xrand"
)

// MultiResult reports a multiple-aggregate run (§6.3.5): one estimate vector
// per aggregate, each independently ordering-correct with probability 1−δ/2
// (1−δ jointly by the union bound).
type MultiResult struct {
	// EstimatesY and EstimatesZ are the per-group estimates of AVG(Y) and
	// AVG(Z).
	EstimatesY []float64
	EstimatesZ []float64
	// SampleCounts are the per-group tuple draws (each draw yields both
	// attributes at once).
	SampleCounts []int64
	// TotalSamples is the total number of tuples drawn.
	TotalSamples int64
	// RoundsY is the round at which the Y phase finished; RoundsZ the
	// per-group rounds when the Z phase finished.
	RoundsY int
	RoundsZ int
	// Capped reports a MaxRounds exit; the guarantee is void.
	Capped bool
}

// MultiAgg solves Problem 8 (AVG-AVG-ORDER): visualize AVG(Y) and AVG(Z)
// simultaneously with both orderings correct with probability 1−δ. Per the
// paper, it runs IFOCUS on Y with budget δ/2 while opportunistically
// accumulating Z estimates from the same tuple draws, then continues
// sampling only the groups whose Z intervals still overlap — warm-started
// from the Z samples already taken, which is where the saving over two
// independent runs comes from.
//
// Every group must implement dataset.PairGroup.
func MultiAgg(u *dataset.Universe, rng *xrand.RNG, opts Options) (*MultiResult, error) {
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	k := u.K()
	pairs := make([]dataset.PairGroup, k)
	for i, g := range u.Groups {
		pg, ok := g.(dataset.PairGroup)
		if !ok {
			return nil, fmt.Errorf("core: group %q does not carry a second aggregate attribute", g.Name())
		}
		pairs[i] = pg
	}

	// Both phases run at δ/2 so the union bound covers the pair.
	half := opts
	half.Delta = opts.Delta / 2

	estZ := make([]float64, k)
	zcnt := make([]int64, k)
	// Under a variance-adaptive bound the Z phase needs Z's own moments:
	// the driver's sampler accounting tracks the Y values the hook returns,
	// so the hook (and the phase-2 draw) folds each tuple's Z here.
	var zmom []conc.Moments
	if half.Bound == conc.KindBernstein || half.Bound == conc.KindBernsteinFinite {
		zmom = make([]conc.Moments, k)
	}

	// Phase 1: IFOCUS on Y through the shared driver. Z estimates ride
	// along for free: the draw hook folds each tuple's Z into its own
	// running mean (same incremental update, same count) before handing Y
	// back to the driver. No partial-result events fire — a Y-settled
	// group's estimates still move if phase 2 keeps drawing from it. Pair
	// tuples draw from group i's own stream (RNGFor) and every mutated
	// cell (zcnt[i], estZ[i]) is group-owned, so the hook is safe under
	// the parallel draw fan-out.
	var lp *roundLoop
	lp = newRoundLoop(u, rng, &half, roundAlgo{
		drawOne: func(i int) float64 {
			y, z := pairs[i].DrawPair(lp.sampler.RNGFor(i))
			lp.sampler.Record(i, 1)
			zcnt[i]++
			zm := float64(zcnt[i])
			estZ[i] = (zm-1)/zm*estZ[i] + z/zm
			if zmom != nil {
				zmom[i].Add(z)
			}
			return y
		},
		decide: func(lp *roundLoop) {
			lp.settleIsolated()
			lp.resolutionExit()
		},
	})
	if err := lp.run(); err != nil {
		return nil, err
	}
	estY := lp.estimates
	counts := lp.sampler.Counts()
	sched := lp.sched
	zbound := lp.bound // same kind and δ/2 budget as the Y phase
	isolated := lp.isolated
	res := &MultiResult{
		EstimatesY:   estY,
		EstimatesZ:   estZ,
		SampleCounts: counts,
		RoundsY:      lp.m,
		Capped:       lp.capped,
	}

	// Phase 2: IFOCUS on Z, warm-started. Group i already has counts[i]
	// samples; the anytime schedule is valid at every m simultaneously, so
	// its current interval [estZ[i] ± ε(counts[i])] is immediately usable.
	// Per-group widths now differ, so the general disjointness check is
	// used, and each round advances every active group by one sample —
	// continuing each group's phase-1 stream, whose position is worker-
	// invariant (it depends only on the group's draw count).
	draw := func(i int) {
		y, z := pairs[i].DrawPair(lp.sampler.RNGFor(i))
		counts[i]++
		m := float64(counts[i])
		estY[i] = (m-1)/m*estY[i] + y/m
		estZ[i] = (m-1)/m*estZ[i] + z/m
		if zmom != nil {
			zmom[i].Add(z)
		}
	}
	activeZ := make([]bool, k)
	for i := 0; i < k; i++ {
		activeZ[i] = true
	}
	numActive := k
	rounds := 0
	ivs := make([]interval, k)
	var orderBuf []int
	for numActive > 0 {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		rounds++
		for i := 0; i < k; i++ {
			var n int64
			if !opts.WithReplacement {
				n = u.Groups[i].Size()
			}
			var w float64
			if zbound != nil {
				w = zbound.Radius(int(counts[i]), n, &zmom[i]) / opts.HeuristicFactor
			} else {
				w = sched.EpsilonN(int(counts[i]), n) / opts.HeuristicFactor
			}
			ivs[i] = interval{estZ[i] - w, estZ[i] + w}
		}
		orderBuf = isolatedGeneral(ivs, isolated, orderBuf, len(orderBuf) == len(ivs))
		progress := false
		for i := 0; i < k; i++ {
			if !activeZ[i] {
				continue
			}
			w := ivs[i].hi - estZ[i]
			if isolated[i] || (opts.Resolution > 0 && w < opts.Resolution/4) {
				activeZ[i] = false
				numActive--
				continue
			}
			if !opts.WithReplacement {
				if n := u.Groups[i].Size(); n > 0 && counts[i] >= n {
					activeZ[i] = false
					numActive--
					continue
				}
			}
			draw(i)
			progress = true
		}
		if opts.MaxRounds > 0 && rounds >= opts.MaxRounds && numActive > 0 {
			res.Capped = true
			break
		}
		if !progress && numActive > 0 {
			// All remaining groups are exhausted; their estimates are exact.
			break
		}
	}
	res.RoundsZ = rounds

	for _, c := range counts {
		res.TotalSamples += c
	}
	return res, nil
}
