package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// SumKnownSizes implements IFOCUS–Sum1 (Algorithm 4, §6.3.1): ordering-
// guaranteed estimation of per-group SUMs when the group sizes n_i are
// known. Each group's sum estimate is ν_i = n_i · (running mean), and its
// confidence half-width is the mean's half-width scaled by n_i, so widths
// differ across groups and the general interval-disjointness check is used.
//
// Estimates returned in Result.Estimates are the sums σ_i.
func SumKnownSizes(u *dataset.Universe, rng *xrand.RNG, opts Options) (*Result, error) {
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	for _, g := range u.Groups {
		if g.Size() == 0 {
			return nil, fmt.Errorf("core: SumKnownSizes requires every group size; %q is unknown (use SumUnknownSizes)", g.Name())
		}
	}
	k := u.K()
	sched := newSchedule(u, &opts)
	sampler := dataset.NewSampler(u, rng, !opts.WithReplacement)

	sizes := make([]float64, k)
	for i, g := range u.Groups {
		sizes[i] = float64(g.Size())
	}
	means := make([]float64, k)    // running means
	sums := make([]float64, k)     // ν_i = n_i · mean_i
	epsConst := make([]float64, k) // per-group ε scale n_i
	active := make([]bool, k)
	settled := make([]int, k)
	isolated := make([]bool, k)

	for i := 0; i < k; i++ {
		means[i] = sampler.Draw(i)
		sums[i] = sizes[i] * means[i]
		epsConst[i] = sizes[i]
		active[i] = true
	}
	res := &Result{Estimates: sums, SettledRound: settled, Rounds: 1}
	numActive := k
	m := 1
	frozenEps := make([]float64, k)

	settle := func(i, round int, eps float64) {
		active[i] = false
		settled[i] = round
		frozenEps[i] = eps
		numActive--
		if opts.OnPartial != nil {
			opts.OnPartial(i, sums[i], round)
		}
	}

	var baseEps float64
	for numActive > 0 {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		m++
		var maxN int64
		if !opts.WithReplacement {
			maxN = maxActiveSize(u, active)
		}
		baseEps = sched.EpsilonN(m, maxN) / opts.HeuristicFactor

		for i := 0; i < k; i++ {
			if !active[i] {
				continue
			}
			if !opts.WithReplacement {
				if n := u.Groups[i].Size(); n > 0 && int64(m) > n {
					settle(i, m, 0)
					continue
				}
			}
			x := sampler.Draw(i)
			means[i] = float64(m-1)/float64(m)*means[i] + x/float64(m)
			sums[i] = sizes[i] * means[i]
		}

		ivs := make(map[int]interval, k)
		for i := 0; i < k; i++ {
			w := frozenEps[i]
			if active[i] {
				w = epsConst[i] * baseEps
			}
			ivs[i] = interval{sums[i] - w, sums[i] + w}
		}
		isolatedGeneral(ivs, isolated)
		var toSettle []int
		for i := 0; i < k; i++ {
			if active[i] && isolated[i] {
				toSettle = append(toSettle, i)
			}
		}
		for _, i := range toSettle {
			settle(i, m, epsConst[i]*baseEps)
		}
		// The resolution r of Problem 2 is interpreted in sum units here:
		// stop once every active group's scaled width is below r/4.
		if opts.Resolution > 0 {
			all := true
			for i := 0; i < k; i++ {
				if active[i] && epsConst[i]*baseEps >= opts.Resolution/4 {
					all = false
					break
				}
			}
			if all {
				for i := 0; i < k; i++ {
					if active[i] {
						settle(i, m, epsConst[i]*baseEps)
					}
				}
			}
		}
		if opts.Tracer != nil {
			opts.Tracer.OnRound(m, baseEps, active, sums, sampler.Total())
		}
		if opts.MaxRounds > 0 && m >= opts.MaxRounds && numActive > 0 {
			res.Capped = true
			for i := 0; i < k; i++ {
				if active[i] {
					settle(i, m, epsConst[i]*baseEps)
				}
			}
		}
	}

	res.Rounds = m
	res.FinalEpsilon = baseEps
	res.TotalSamples = sampler.Total()
	res.SampleCounts = append([]int64(nil), sampler.Counts()...)
	return res, nil
}

// SumUnknownSizes implements IFOCUS–Sum2 (Algorithm 5, §6.3.1): ordering-
// guaranteed estimation of *normalized* sums σ_i = s_i·µ_i when group sizes
// are unknown. For every value sample x it also draws an unbiased fraction
// estimate z from est (a membership indicator in NEEDLETAIL); x·z is an
// unbiased sample of σ_i in [0, c], so the IFOCUS machinery applies with
// the with-replacement schedule and no knowledge of n_i.
//
// Result.Estimates holds the normalized sums; multiply by the total table
// size, when known, to recover absolute sums.
func SumUnknownSizes(u *dataset.Universe, est dataset.FractionEstimator, rng *xrand.RNG, opts Options) (*Result, error) {
	if est == nil {
		return nil, fmt.Errorf("core: SumUnknownSizes requires a fraction estimator")
	}
	// Sizes are unknown by assumption: force with-replacement mode so the
	// schedule never consults them.
	opts.WithReplacement = true
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	k := u.K()
	sched := newSchedule(u, &opts)
	sampler := dataset.NewSampler(u, rng, false)

	estimates := make([]float64, k)
	active := make([]bool, k)
	settled := make([]int, k)
	isolated := make([]bool, k)
	actIdx := make([]int, 0, k)

	drawNormalized := func(i int) float64 {
		x := sampler.Draw(i)
		z := est.DrawFractionEstimate(i, rng)
		return x * z
	}
	for i := 0; i < k; i++ {
		estimates[i] = drawNormalized(i)
		active[i] = true
	}
	res := &Result{Estimates: estimates, SettledRound: settled, Rounds: 1}
	numActive := k
	m := 1

	settle := func(i, round int) {
		active[i] = false
		settled[i] = round
		numActive--
		if opts.OnPartial != nil {
			opts.OnPartial(i, estimates[i], round)
		}
	}

	var eps float64
	for numActive > 0 {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		m++
		eps = sched.EpsilonN(m, 0) / opts.HeuristicFactor
		for i := 0; i < k; i++ {
			if !active[i] {
				continue
			}
			xz := drawNormalized(i)
			estimates[i] = float64(m-1)/float64(m)*estimates[i] + xz/float64(m)
		}
		actIdx = activeIndices(active, actIdx)
		isolatedEqualWidth(actIdx, estimates, eps, isolated)
		for _, i := range actIdx {
			if isolated[i] {
				settle(i, m)
			}
		}
		if opts.Resolution > 0 && eps < opts.Resolution/4 {
			for _, i := range actIdx {
				if active[i] {
					settle(i, m)
				}
			}
		}
		if opts.Tracer != nil {
			opts.Tracer.OnRound(m, eps, active, estimates, sampler.Total())
		}
		if opts.MaxRounds > 0 && m >= opts.MaxRounds && numActive > 0 {
			res.Capped = true
			for i := 0; i < k; i++ {
				if active[i] {
					settle(i, m)
				}
			}
		}
	}

	res.Rounds = m
	res.FinalEpsilon = eps
	res.TotalSamples = sampler.Total()
	res.SampleCounts = append([]int64(nil), sampler.Counts()...)
	return res, nil
}
