package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// SumKnownSizes implements IFOCUS–Sum1 (Algorithm 4, §6.3.1): ordering-
// guaranteed estimation of per-group SUMs when the group sizes n_i are
// known. Each group's sum estimate is ν_i = n_i · (running mean), and its
// confidence half-width is the mean's half-width scaled by n_i, so widths
// differ across groups and the general interval-disjointness check is used.
//
// Estimates returned in Result.Estimates are the sums σ_i.
func SumKnownSizes(u *dataset.Universe, rng *xrand.RNG, opts Options) (*Result, error) {
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	for _, g := range u.Groups {
		if g.Size() == 0 {
			return nil, fmt.Errorf("core: SumKnownSizes requires every group size; %q is unknown (use SumUnknownSizes)", g.Name())
		}
	}
	k := u.K()
	sizes := make([]float64, k)
	for i, g := range u.Groups {
		sizes[i] = float64(g.Size())
	}
	sums := make([]float64, k) // ν_i = n_i · mean_i
	ivs := make([]interval, k)
	toSettle := make([]int, 0, k)

	lp := newRoundLoop(u, rng, &opts, roundAlgo{
		notifyPartials: true,
		capNotify:      true,
		display:        sums,
		partialVal:     func(i int) float64 { return sums[i] },
		afterDraws: func(lp *roundLoop) {
			// The driver advances the running means; rescale into sums.
			// Settled groups' means are frozen, so recomputing every entry
			// is idempotent for them.
			for i := 0; i < k; i++ {
				sums[i] = sizes[i] * lp.estimates[i]
			}
		},
		decide: func(lp *roundLoop) {
			// Widths differ per group (scaled by n_i — and, under a
			// variance-adaptive bound, per-group mean radii on top), so the
			// general disjointness sweep applies, over frozen widths for
			// settled groups and n_i·ε_i for active ones.
			for i := 0; i < k; i++ {
				w := lp.frozenEps[i]
				if lp.active[i] {
					w = sizes[i] * lp.groupEps(i)
				}
				ivs[i] = interval{sums[i] - w, sums[i] + w}
			}
			lp.sweepGeneral(ivs)
			toSettle = toSettle[:0]
			for i := 0; i < k; i++ {
				if lp.active[i] && lp.isolated[i] {
					toSettle = append(toSettle, i)
				}
			}
			for _, i := range toSettle {
				lp.settle(i, sizes[i]*lp.groupEps(i), true)
			}
			// The resolution r of Problem 2 is interpreted in sum units
			// here: stop once every active group's scaled width is below
			// r/4.
			if opts.Resolution > 0 {
				all := true
				for i := 0; i < k; i++ {
					if lp.active[i] && sizes[i]*lp.groupEps(i) >= opts.Resolution/4 {
						all = false
						break
					}
				}
				if all {
					for i := 0; i < k; i++ {
						if lp.active[i] {
							lp.settle(i, sizes[i]*lp.groupEps(i), true)
						}
					}
				}
			}
		},
	})
	if err := lp.run(); err != nil {
		return nil, err
	}
	return lp.result(), nil
}

// SumUnknownSizes implements IFOCUS–Sum2 (Algorithm 5, §6.3.1): ordering-
// guaranteed estimation of *normalized* sums σ_i = s_i·µ_i when group sizes
// are unknown. For every value sample x it also draws an unbiased fraction
// estimate z from est (a membership indicator in NEEDLETAIL); x·z is an
// unbiased sample of σ_i in [0, c], so the IFOCUS machinery applies with
// the with-replacement schedule and no knowledge of n_i.
//
// Result.Estimates holds the normalized sums; multiply by the total table
// size, when known, to recover absolute sums.
func SumUnknownSizes(u *dataset.Universe, est dataset.FractionEstimator, rng *xrand.RNG, opts Options) (*Result, error) {
	if est == nil {
		return nil, fmt.Errorf("core: SumUnknownSizes requires a fraction estimator")
	}
	// Sizes are unknown by assumption: force with-replacement mode so the
	// schedule never consults them.
	opts.WithReplacement = true
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	// Each normalized draw needs auxiliary randomness for the membership
	// indicator, so the batched native path does not apply; the driver
	// loops the hook per block instead. The indicator draws from group i's
	// own stream (RNGFor), keeping the hook safe under the parallel draw
	// fan-out and the run worker-invariant.
	var lp *roundLoop
	lp = newRoundLoop(u, rng, &opts, roundAlgo{
		notifyPartials: true,
		capNotify:      true,
		drawOne: func(i int) float64 {
			x := lp.sampler.Draw(i)
			z := est.DrawFractionEstimate(i, lp.sampler.RNGFor(i))
			return x * z
		},
		decide: func(lp *roundLoop) {
			lp.settleIsolated()
			lp.resolutionExit()
		},
	})
	if err := lp.run(); err != nil {
		return nil, err
	}
	return lp.result(), nil
}
