package core

import (
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/conc"
	"repro/internal/dataset"
	"repro/internal/xrand"
)

// This file is the shared round driver. Every round-based algorithm in the
// package — IFOCUS and its guarantee variants (trend, chloropleth, top-t,
// values, mistakes), ROUNDROBIN, both SUM estimators, and the first phase
// of MultiAgg — is the same loop with a different settling rule: seed
// every group, then repeatedly (1) poll for cancellation, (2) recompute
// the anytime half-width ε from the cumulative per-group draw count,
// (3) draw a block of fresh samples from every still-active group,
// (4) let the algorithm settle groups whose intervals have separated, and
// (5) run the tracing / partial-result / round-cap bookkeeping. roundLoop
// owns steps 1–3 and 5; a roundAlgo supplies step 4 and a handful of
// behavioral switches.
//
// Batching: with Options.BatchSize = b, step 3 draws b fresh samples per
// group through the dataset layer's block draw path (one dispatch, one
// accounting update, and one running-mean division per block). BatchSize
// ≤ 1 reproduces the paper's one-sample rounds bit for bit, incremental
// running-mean update included — pinned by TestGoldenPins. Blocks can
// additionally grow geometrically via Options.RoundGrowth. Because the
// anytime schedule is simultaneously valid at every sample count, indexing
// ε by the cumulative draw count keeps the union bound intact at any block
// size; batching only trades bookkeeping frequency for up to one block of
// extra samples per group.
//
// Parallelism: every group owns a deterministic RNG stream derived from
// the run seed and its index (dataset.NewStreamSampler), so a group's
// draws are a pure function of (seed, index, samples taken) and never of
// the order groups are visited. The draw phase of each round can therefore
// fan the per-group block draws across Options.Workers goroutines — the
// paper's guarantees are per group, so draws are independent — while every
// decision that touches cross-group state (settling, the isolation sweep,
// partial-result events) runs after the draw barrier, in deterministic
// group order, exactly as in the sequential loop. Workers=1 and Workers=N
// produce bit-identical results; the invariant is pinned by
// TestWorkerInvariance.

// roundAlgo packages what distinguishes one round-based algorithm from
// another.
type roundAlgo struct {
	// decide runs after each round's draws and settles the groups whose
	// intervals have separated (and applies any algorithm-specific exits,
	// e.g. the resolution relaxation or the allowed-mistakes quota).
	decide func(lp *roundLoop)
	// drawOne, when set, replaces the sampler-native draw path (pair
	// draws, normalized draws with auxiliary randomness). Block rounds
	// loop it; accounting must go through sampler.Record inside the hook
	// unless the hook itself draws through the sampler.
	drawOne func(i int) float64
	// afterDraws, when set, runs right after every draw phase (the seed
	// round included) — e.g. the SUM estimator rescaling means into sums.
	afterDraws func(lp *roundLoop)
	// partialVal, when set, supplies the value reported to OnPartial
	// (default: the group's running estimate).
	partialVal func(i int) float64
	// display, when set, is the estimate vector exposed to the tracer and
	// the final Result (default: the running means).
	display []float64
	// traceFlags, when set, is passed to the tracer instead of the live
	// active flags (ROUNDROBIN reports every group as active, as the
	// scalar implementation always did).
	traceFlags []bool
	// seedTrace emits a tracer event for the seed round.
	seedTrace bool
	// fixedMaxN feeds the Serfling term max n_i over all groups instead of
	// the shrinking max over active groups (ROUNDROBIN).
	fixedMaxN bool
	// keepExhaustedActive marks population-exhausted groups as drained —
	// they stop drawing but stay active until decide ends the run
	// (ROUNDROBIN) — instead of settling them.
	keepExhaustedActive bool
	// notifyPartials emits OnPartial events on ordinary settles.
	notifyPartials bool
	// capNotify emits OnPartial events for the groups force-settled by the
	// MaxRounds cap.
	capNotify bool
}

// roundLoop is the shared state of one run.
type roundLoop struct {
	u       *dataset.Universe
	opts    *Options
	sched   *conc.Schedule
	sampler *dataset.Sampler
	algo    roundAlgo

	// bound is the pluggable per-group bound, nil under the default
	// Hoeffding schedule. When set, epsG holds each group's live radius
	// (recomputed after every draw phase from its own count and moments)
	// and every settle decision routes through the general unequal-width
	// interval sweep; lp.eps then tracks the widest live radius for the
	// scalar tracer/result fields.
	bound conc.Bound
	epsG  []float64

	k         int
	estimates []float64 // running means
	active    []bool
	settledR  []int
	frozenEps []float64 // interval half-width at settle time
	isolated  []bool
	actIdx    []int
	drained   []bool // keepExhaustedActive mode: drawing stopped
	numActive int

	m      int // round number
	cum    int // cumulative draws per still-active group
	eps    float64
	capped bool

	workers int         // resolved draw-phase fan-out cap (≤ 1 draws inline)
	drawIdx []int       // groups drawing this round, in index order
	drawN   []int       // matching per-group block sizes
	bufs    [][]float64 // per-worker block draw buffers

	// Adaptive fan-out state. Rounds dense enough to clear the volume gate
	// run a two-round timing probe (one sequential, one parallel) and then
	// lock whichever loop was faster per draw, re-probing periodically so
	// a run that outlives a load shift can switch. Timing only ever picks
	// how the same planned draws execute — worker invariance makes the
	// results identical either way — so the probe is result-safe.
	parMode      int8
	seqNsPerDraw float64
	parNsPerDraw float64
	parRounds    int // gated rounds since the last probe concluded

	ivsBuf   []interval // scratch for the unequal-width sweep
	orderBuf []int      // the isolation sweeps' sort permutation, carried across rounds
	orderFor int8       // which sweep family orderBuf belongs to
	traceEps []float64  // scratch per-group widths handed to GroupTracer

	// scratch is the pooled arena behind every per-run buffer above that
	// does not escape into the Result (estimates and settledR do escape and
	// are always freshly allocated). result() returns it to the pool; runs
	// that never reach result() — cancellation, multiagg's phase-1 loop —
	// simply drop it to the GC, which is always correct, just unpooled.
	scratch *loopScratch
}

// loopScratch holds one run's reusable buffers between runs. An engine
// serving a query stream re-runs the round loop constantly with the same
// group counts, so recycling the ~10 per-run slices (and the per-worker
// block buffers, the largest of them) takes the driver's steady-state
// allocation rate to near zero — the open remainder of ROADMAP item 4.
type loopScratch struct {
	active    []bool
	isolated  []bool
	drained   []bool
	frozenEps []float64
	epsG      []float64
	traceEps  []float64
	actIdx    []int
	drawIdx   []int
	drawN     []int
	orderBuf  []int
	ivsBuf    []interval
	bufs      [][]float64
}

var loopScratchPool = sync.Pool{New: func() any { return new(loopScratch) }}

// boolScratch returns a zeroed length-k slice reusing buf's storage.
func boolScratch(buf []bool, k int) []bool {
	if cap(buf) < k {
		return make([]bool, k)
	}
	buf = buf[:k]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// f64Scratch returns a zeroed length-k slice reusing buf's storage.
func f64Scratch(buf []float64, k int) []float64 {
	if cap(buf) < k {
		return make([]float64, k)
	}
	buf = buf[:k]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// intScratch returns an empty slice with capacity ≥ k reusing buf's storage.
func intScratch(buf []int, k int) []int {
	if cap(buf) < k {
		return make([]int, 0, k)
	}
	return buf[:0]
}

// release hands the run's scratch buffers back to the pool. The roundLoop
// must not be used afterwards.
func (lp *roundLoop) release() {
	sc := lp.scratch
	if sc == nil {
		return
	}
	lp.scratch = nil
	// Store back the possibly grown/reallocated slices so the pool keeps
	// the largest incarnation of each buffer.
	sc.active = lp.active
	sc.isolated = lp.isolated
	sc.drained = lp.drained
	sc.frozenEps = lp.frozenEps
	if lp.epsG != nil {
		sc.epsG = lp.epsG
	}
	if lp.traceEps != nil {
		sc.traceEps = lp.traceEps
	}
	sc.actIdx = lp.actIdx
	sc.drawIdx = lp.drawIdx
	sc.drawN = lp.drawN
	sc.orderBuf = lp.orderBuf
	sc.ivsBuf = lp.ivsBuf
	sc.bufs = lp.bufs
	loopScratchPool.Put(sc)
}

// parMode values: the fan-out decision state machine.
const (
	parProbeSeq int8 = iota // next gated round runs sequentially, timed
	parProbePar             // next gated round runs parallel, timed
	parLockSeq              // probe concluded: sequential loop wins
	parLockPar              // probe concluded: parallel fan-out wins
)

// orderFor values: which call family the carried orderBuf permutation
// belongs to. Sweeps only carry the order across rounds of the same
// family; a kind switch (impossible within one run today, since the bound
// is fixed at construction) rebuilds from scratch.
const (
	orderNone int8 = iota
	orderEqual
	orderGeneral
)

// Adaptive fan-out tuning. minParallelRoundDraws is the planned draw
// volume below which a round always runs inline: dispatching the pool
// costs on the order of microseconds, so scalar and near-scalar rounds
// (one block per group, tiny blocks) never pay for it. reprobeRounds is
// how many gated rounds a locked decision holds before the probe runs
// again. parWinFactor is how much faster per draw the parallel probe
// must be to win — a strict improvement, so ties keep the cheaper
// sequential loop.
const (
	minParallelRoundDraws = 1024
	reprobeRounds         = 64
	parWinFactor          = 0.9
)

// newRoundLoop builds the loop state. opts must already be validated. The
// run's RNG discipline is fixed here: one word is taken from rng and every
// group derives its own stream from it, keyed by group index — so the
// sample a group sees depends only on the seed, the group's position, and
// how many draws it has taken, never on draw interleaving across groups.
func newRoundLoop(u *dataset.Universe, rng *xrand.RNG, opts *Options, algo roundAlgo) *roundLoop {
	k := u.K()
	// Resolve the fan-out cap: Workers=0 sizes it to the machine, and any
	// request is clamped to GOMAXPROCS (goroutines beyond the schedulable
	// parallelism only add handoff cost — the measured 25% workers=8 tax
	// on a single core) and to the group count. Whether a given round
	// actually fans out is decided per round by the volume gate and the
	// timing probe in drawRound.
	maxPar := runtime.GOMAXPROCS(0)
	workers := opts.Workers
	if workers == 0 {
		workers = maxPar
	}
	if workers > maxPar {
		workers = maxPar
	}
	if workers > k {
		workers = k
	}
	// Draw discipline: private per-group streams by default; a shared
	// offset-addressed source (broker) when the caller supplies one. A
	// broker built from the same resolved seed serves exactly the values
	// the private streams would draw — the one rng.Uint64() below is the
	// solo path's stream base, and brokers derive theirs from the same
	// seed — so the two paths are interchangeable bit for bit.
	var sampler *dataset.Sampler
	if opts.Draws != nil {
		sampler = dataset.NewSourceSampler(u, opts.Draws, !opts.WithReplacement)
	} else {
		sampler = dataset.NewStreamSampler(u, rng.Uint64(), !opts.WithReplacement)
	}
	if algo.drawOne == nil {
		// Sampler-native block draws can take the devirtualized kernel
		// path: the concrete group type is resolved once here, not per
		// draw. Algorithms with a draw hook never block-draw natively.
		sampler.EnableBlockKernels()
	}
	bound := newRunBound(u, opts)
	// Per-run buffers come from the scratch pool; only estimates and
	// settledR escape into the Result and are always freshly allocated.
	sc := loopScratchPool.Get().(*loopScratch)
	var epsG []float64
	if bound != nil {
		epsG = f64Scratch(sc.epsG, k)
		if bound.NeedsMoments() {
			// Native draws fold straight into the sampler's per-group
			// moments; algorithms with a transform hook (drawOne) observe
			// the transformed values from the draw phase instead, so the
			// moments describe the variable actually being estimated.
			sampler.EnableMoments(algo.drawOne == nil)
		}
	}
	var traceEps []float64
	if opts.Tracer != nil {
		traceEps = f64Scratch(sc.traceEps, k)
	}
	nb := max(1, workers)
	if cap(sc.bufs) < nb {
		grown := make([][]float64, nb)
		copy(grown, sc.bufs)
		sc.bufs = grown
	}
	return &roundLoop{
		u:         u,
		opts:      opts,
		sched:     newSchedule(u, opts),
		sampler:   sampler,
		bound:     bound,
		epsG:      epsG,
		algo:      algo,
		k:         k,
		estimates: make([]float64, k),
		active:    boolScratch(sc.active, k),
		settledR:  make([]int, k),
		frozenEps: f64Scratch(sc.frozenEps, k),
		isolated:  boolScratch(sc.isolated, k),
		actIdx:    intScratch(sc.actIdx, k),
		drained:   boolScratch(sc.drained, k),
		workers:   workers,
		drawIdx:   intScratch(sc.drawIdx, k),
		drawN:     intScratch(sc.drawN, k),
		bufs:      sc.bufs[:nb],
		ivsBuf:    sc.ivsBuf[:0],
		orderBuf:  sc.orderBuf[:0],
		traceEps:  traceEps,
		scratch:   sc,
	}
}

// blockSize returns how many fresh samples each active group draws this
// round: the fixed batch (or the BatchAuto schedule's block for this
// round), grown geometrically from the cumulative count when RoundGrowth
// asks for it. Always at least 1.
func (lp *roundLoop) blockSize() int {
	b := lp.opts.BatchSize
	if b == BatchAuto {
		b = autoBatchSize(lp.m)
	}
	if b < 1 {
		b = 1
	}
	if g := lp.opts.RoundGrowth; g > 1 {
		if grown := int(math.Ceil((g - 1) * float64(lp.cum))); grown > b {
			b = grown
		}
	}
	return b
}

// run executes the whole loop: seed round, then rounds until every group
// has settled. It returns only the context error.
func (lp *roundLoop) run() error {
	lp.seed()
	for lp.numActive > 0 {
		if err := lp.opts.interrupted(); err != nil {
			return err
		}
		lp.m++
		fresh := lp.blockSize()
		if lp.bound == nil {
			var maxN int64
			if !lp.opts.WithReplacement {
				if lp.algo.fixedMaxN {
					maxN = lp.u.MaxSize()
				} else {
					maxN = maxActiveSize(lp.u, lp.active)
				}
			}
			lp.eps = lp.sched.EpsilonN(lp.cum+fresh, maxN) / lp.opts.HeuristicFactor
		}
		lp.drawRound(fresh)
		lp.cum += fresh
		if lp.bound != nil {
			lp.updateRadii()
		}
		if lp.algo.afterDraws != nil {
			lp.algo.afterDraws(lp)
		}
		lp.algo.decide(lp)
		lp.trace(lp.m, lp.eps)
		if lp.opts.MaxRounds > 0 && lp.m >= lp.opts.MaxRounds && lp.numActive > 0 {
			lp.capped = true
			lp.settleAllRemaining(lp.algo.capNotify)
		}
	}
	return nil
}

// seed runs round 1: every group starts active and draws one block.
func (lp *roundLoop) seed() {
	for i := 0; i < lp.k; i++ {
		lp.active[i] = true
	}
	lp.numActive = lp.k
	lp.m = 1
	fresh := lp.blockSize()
	lp.drawRound(fresh)
	lp.cum = fresh
	if lp.bound != nil {
		lp.updateRadii()
	}
	if lp.algo.afterDraws != nil {
		lp.algo.afterDraws(lp)
	}
	if lp.algo.seedTrace {
		eps := lp.eps
		if lp.bound == nil {
			eps = lp.sched.Epsilon(lp.cum) / lp.opts.HeuristicFactor
		}
		lp.trace(1, eps)
	}
}

// updateRadii recomputes the live per-group radii from each group's own
// draw count, population, and incrementally maintained moments, then
// refreshes lp.eps to the widest live radius — the scalar the tracer,
// Result.FinalEpsilon, and round-cap settles see. Per-group bounds consume
// each group's own n_i directly, where the shared schedule had to feed one
// max_{i∈A} n_i to every group. Only non-settled groups are touched
// (drained ones included: their frozen-in-place intervals still take part
// in other groups' isolation checks).
func (lp *roundLoop) updateRadii() {
	maxEps := 0.0
	for i := 0; i < lp.k; i++ {
		if !lp.active[i] {
			continue
		}
		var n int64
		if !lp.opts.WithReplacement {
			n = lp.u.Groups[i].Size()
		}
		eps := lp.bound.Radius(int(lp.sampler.Count(i)), n, lp.sampler.MomentsFor(i)) / lp.opts.HeuristicFactor
		lp.epsG[i] = eps
		if eps > maxEps {
			maxEps = eps
		}
	}
	lp.eps = maxEps
}

// drawRound draws up to fresh samples from every active, undrained group,
// folding them into the running means. A group whose remaining population
// cannot cover a full block draws what is left; one that has nothing left
// settles at width zero (its running mean is exact) or, in
// keepExhaustedActive mode, is marked drained.
//
// The round is planned sequentially (block sizes, exhaustion settles — the
// only part that mutates cross-group state, kept in deterministic group
// order), then the planned block draws fan across the worker pool. Each
// draw touches only group-owned state: the group's RNG stream and
// permutation, its running mean, a per-worker buffer, and the sampler's
// atomic accounting — so the fan-out needs no locks and the barrier at the
// end of ParallelForWorkers publishes every estimate before decide reads
// them.
func (lp *roundLoop) drawRound(fresh int) {
	lp.drawIdx = lp.drawIdx[:0]
	lp.drawN = lp.drawN[:0]
	for i := 0; i < lp.k; i++ {
		if !lp.active[i] || lp.drained[i] {
			continue
		}
		n := fresh
		if !lp.opts.WithReplacement {
			if sz := lp.u.Groups[i].Size(); sz > 0 {
				remaining := sz - int64(lp.cum)
				if remaining <= 0 {
					if lp.algo.keepExhaustedActive {
						lp.drained[i] = true
					} else {
						lp.settle(i, 0, lp.algo.notifyPartials)
					}
					continue
				}
				if int64(n) > remaining {
					n = int(remaining)
				}
			}
		}
		lp.drawIdx = append(lp.drawIdx, i)
		lp.drawN = append(lp.drawN, n)
	}
	planned := 0
	for _, n := range lp.drawN {
		planned += n
	}
	if lp.workers <= 1 || len(lp.drawIdx) <= 1 || planned < minParallelRoundDraws {
		// Below the volume gate the pool dispatch costs more than the
		// draws it would spread; scalar and near-scalar rounds always run
		// inline, deterministically, with no timing involved.
		lp.drawSequential()
		return
	}
	switch lp.parMode {
	case parProbeSeq:
		start := time.Now()
		lp.drawSequential()
		lp.seqNsPerDraw = float64(time.Since(start)) / float64(planned)
		lp.parMode = parProbePar
	case parProbePar:
		start := time.Now()
		lp.drawParallel()
		lp.parNsPerDraw = float64(time.Since(start)) / float64(planned)
		if lp.parNsPerDraw < lp.seqNsPerDraw*parWinFactor {
			lp.parMode = parLockPar
		} else {
			lp.parMode = parLockSeq
		}
		lp.parRounds = 0
	case parLockSeq:
		lp.drawSequential()
		lp.bumpReprobe()
	case parLockPar:
		lp.drawParallel()
		lp.bumpReprobe()
	}
}

// drawSequential runs the planned draws inline on the calling goroutine.
func (lp *roundLoop) drawSequential() {
	for j, i := range lp.drawIdx {
		lp.drawGroup(0, i, lp.drawN[j])
	}
}

// drawParallel fans the planned draws across the worker pool.
func (lp *roundLoop) drawParallel() {
	ParallelForWorkers(len(lp.drawIdx), lp.workers, func(w, j int) {
		lp.drawGroup(w, lp.drawIdx[j], lp.drawN[j])
	})
}

// bumpReprobe re-arms the timing probe after enough gated rounds have run
// on the locked decision.
func (lp *roundLoop) bumpReprobe() {
	lp.parRounds++
	if lp.parRounds >= reprobeRounds {
		lp.parMode = parProbeSeq
	}
}

// drawGroup folds n fresh samples into group i's running mean, using
// worker w's scratch buffer. The n == 1 path is the paper's incremental
// update, bit-for-bit what the scalar algorithms computed; blocks
// accumulate a sum and pay one division.
func (lp *roundLoop) drawGroup(w, i, n int) {
	prev := lp.cum
	nc := prev + n
	if n == 1 {
		var x float64
		if lp.algo.drawOne != nil {
			x = lp.algo.drawOne(i)
			lp.sampler.Observe(i, x)
		} else {
			x = lp.sampler.Draw(i)
		}
		lp.estimates[i] = float64(nc-1)/float64(nc)*lp.estimates[i] + x/float64(nc)
		return
	}
	sum := 0.0
	switch {
	case lp.algo.drawOne != nil:
		for j := 0; j < n; j++ {
			x := lp.algo.drawOne(i)
			lp.sampler.Observe(i, x)
			sum += x
		}
	default:
		// Devirtualized fast path: for slice/table/filtered-backed groups
		// the sampler folds the block's sum (and moments) inside the
		// group's own draw loop — one bounds-checked slice walk, no buffer
		// fill, no per-draw interface dispatch. Groups without a kernel
		// (virtual distributions, source-fed samplers) buffer through the
		// generic block path; both produce the identical value stream.
		if s, ok := lp.sampler.DrawBlockSum(i, n); ok {
			sum = s
			break
		}
		if cap(lp.bufs[w]) < n {
			lp.bufs[w] = make([]float64, n)
		}
		buf := lp.bufs[w][:n]
		lp.sampler.DrawBatch(i, buf)
		for _, v := range buf {
			sum += v
		}
	}
	lp.estimates[i] = (float64(prev)*lp.estimates[i] + sum) / float64(nc)
}

// settle deactivates group i at the given interval half-width.
func (lp *roundLoop) settle(i int, width float64, notify bool) {
	lp.active[i] = false
	lp.settledR[i] = lp.m
	lp.frozenEps[i] = width
	lp.numActive--
	if notify && lp.opts.OnPartial != nil {
		v := lp.estimates[i]
		if lp.algo.partialVal != nil {
			v = lp.algo.partialVal(i)
		}
		lp.opts.OnPartial(i, v, lp.m, width)
	}
}

// groupEps returns group i's live radius: the shared ε under the default
// schedule, its own per-group radius under a pluggable bound.
func (lp *roundLoop) groupEps(i int) float64 {
	if lp.bound != nil {
		return lp.epsG[i]
	}
	return lp.eps
}

// width returns group i's current interval half-width: the live radius
// while it is active, the frozen width after it settles.
func (lp *roundLoop) width(i int) float64 {
	if lp.active[i] {
		return lp.groupEps(i)
	}
	return lp.frozenEps[i]
}

// settleIsolated settles the active groups whose intervals have separated,
// each at its own live radius. Under the default schedule all live widths
// equal ε and only active intervals matter — a group that separated from
// every active interval stays separated, because the shared ε only
// shrinks and frozen widths never exceed it. Per-group radii break that
// monotonicity (a wide high-variance interval can straddle a settled
// group's narrow frozen one), so the unequal-width sweep runs over ALL k
// intervals — frozen for settled groups, live for active — and an active
// group settles only when disjoint from every one of them, exactly like
// the SUM estimators' and IREFINE's sweeps.
func (lp *roundLoop) settleIsolated() {
	lp.actIdx = activeIndices(lp.active, lp.actIdx)
	if lp.bound == nil {
		lp.sweepEqualWidth(lp.actIdx)
	} else {
		lp.isolatedUnequal()
	}
	for _, i := range lp.actIdx {
		if lp.isolated[i] {
			lp.settle(i, lp.groupEps(i), lp.algo.notifyPartials)
		}
	}
}

// sweepEqualWidth runs the equal-width isolation sweep over indices,
// carrying the sorted order across rounds: settled groups are dropped
// from the carried permutation (settles only ever remove — the active set
// never grows — so the filtered order holds exactly the live indices),
// and the sweep's adaptive insertion sort then repairs the few positions
// that moved instead of re-deriving the permutation every round.
func (lp *roundLoop) sweepEqualWidth(indices []int) {
	carry := false
	if lp.orderFor == orderEqual {
		w := 0
		for _, idx := range lp.orderBuf {
			if lp.active[idx] {
				lp.orderBuf[w] = idx
				w++
			}
		}
		lp.orderBuf = lp.orderBuf[:w]
		carry = w == len(indices)
	}
	lp.orderBuf = isolatedEqualWidth(indices, lp.estimates, lp.eps, lp.isolated, lp.orderBuf, carry)
	lp.orderFor = orderEqual
}

// sweepGeneral runs the general interval sweep over ivs (one interval per
// group, settled ones frozen), carrying the sort-by-lo order across
// rounds. Membership is all k groups every round, so the carried
// permutation stays valid for the whole run once built.
func (lp *roundLoop) sweepGeneral(ivs []interval) {
	carry := lp.orderFor == orderGeneral && len(lp.orderBuf) == len(ivs)
	lp.orderBuf = isolatedGeneral(ivs, lp.isolated, lp.orderBuf, carry)
	lp.orderFor = orderGeneral
}

// isolatedUnequal marks in lp.isolated which groups' intervals
// [est−w_i, est+w_i] (frozen w for settled groups, live radius for
// active) are disjoint from every other group's interval, via the general
// sort-by-lo sweep — per-group widths differ under variance-adaptive
// bounds, so the equal-width neighbour shortcut does not apply.
func (lp *roundLoop) isolatedUnequal() {
	ivs := lp.ivsBuf[:0]
	for i := 0; i < lp.k; i++ {
		w := lp.width(i)
		ivs = append(ivs, interval{lp.estimates[i] - w, lp.estimates[i] + w})
	}
	lp.ivsBuf = ivs
	lp.sweepGeneral(ivs)
}

// resolutionExit applies the Problem 2 relaxation. Under the shared
// schedule every remaining group settles once the one live ε drops below
// r/4. Per-group radii certify the resolution on their own clock: a tight
// (low-variance) group exits while loose ones keep sampling — the same
// per-group exit IREFINE-R uses.
func (lp *roundLoop) resolutionExit() {
	if lp.opts.Resolution <= 0 {
		return
	}
	if lp.bound == nil {
		if lp.eps < lp.opts.Resolution/4 {
			lp.settleAllRemaining(lp.algo.notifyPartials)
		}
		return
	}
	for i := 0; i < lp.k; i++ {
		if lp.active[i] && lp.epsG[i] < lp.opts.Resolution/4 {
			lp.settle(i, lp.epsG[i], lp.algo.notifyPartials)
		}
	}
}

// settleAllRemaining settles every still-active group at its live radius.
func (lp *roundLoop) settleAllRemaining(notify bool) {
	for i := 0; i < lp.k; i++ {
		if lp.active[i] {
			lp.settle(i, lp.groupEps(i), notify)
		}
	}
}

// trace emits one tracer event, honoring the algorithm's display and flag
// overrides. A GroupTracer additionally receives the per-group widths:
// frozen for settled groups, the live radius (eps under the default
// schedule) for active ones.
func (lp *roundLoop) trace(m int, eps float64) {
	if lp.opts.Tracer == nil {
		return
	}
	flags := lp.active
	if lp.algo.traceFlags != nil {
		flags = lp.algo.traceFlags
	}
	est := lp.estimates
	if lp.algo.display != nil {
		est = lp.algo.display
	}
	if gt, ok := lp.opts.Tracer.(GroupTracer); ok {
		if lp.traceEps == nil {
			lp.traceEps = make([]float64, lp.k)
		}
		for i := 0; i < lp.k; i++ {
			switch {
			case !lp.active[i]:
				lp.traceEps[i] = lp.frozenEps[i]
			case lp.bound != nil:
				lp.traceEps[i] = lp.epsG[i]
			default:
				lp.traceEps[i] = eps
			}
		}
		gt.OnRoundGroups(m, eps, lp.traceEps, flags, est, lp.sampler.Total())
		return
	}
	lp.opts.Tracer.OnRound(m, eps, flags, est, lp.sampler.Total())
}

// result assembles the common Result shape and returns the run's scratch
// buffers to the pool — it must be the loop's final use; none of the pooled
// fields may be touched afterwards (every field the Result carries is
// either freshly allocated here or was never pooled).
func (lp *roundLoop) result() *Result {
	est := lp.estimates
	if lp.algo.display != nil {
		est = lp.algo.display
	}
	res := &Result{
		Estimates:    est,
		SampleCounts: append([]int64(nil), lp.sampler.Counts()...),
		TotalSamples: lp.sampler.Total(),
		Rounds:       lp.m,
		SettledRound: lp.settledR,
		FinalEpsilon: lp.eps,
		Capped:       lp.capped,
	}
	lp.release()
	return res
}
