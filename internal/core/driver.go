package core

import (
	"math"

	"repro/internal/conc"
	"repro/internal/dataset"
	"repro/internal/xrand"
)

// This file is the shared round driver. Every round-based algorithm in the
// package — IFOCUS and its guarantee variants (trend, chloropleth, top-t,
// values, mistakes), ROUNDROBIN, both SUM estimators, and the first phase
// of MultiAgg — is the same loop with a different settling rule: seed
// every group, then repeatedly (1) poll for cancellation, (2) recompute
// the anytime half-width ε from the cumulative per-group draw count,
// (3) draw a block of fresh samples from every still-active group,
// (4) let the algorithm settle groups whose intervals have separated, and
// (5) run the tracing / partial-result / round-cap bookkeeping. roundLoop
// owns steps 1–3 and 5; a roundAlgo supplies step 4 and a handful of
// behavioral switches.
//
// Batching: with Options.BatchSize = b, step 3 draws b fresh samples per
// group through the dataset layer's block draw path (one dispatch, one
// accounting update, and one running-mean division per block). BatchSize
// ≤ 1 reproduces the paper's one-sample rounds bit for bit, incremental
// running-mean update included — pinned by TestGoldenPins. Blocks can
// additionally grow geometrically via Options.RoundGrowth. Because the
// anytime schedule is simultaneously valid at every sample count, indexing
// ε by the cumulative draw count keeps the union bound intact at any block
// size; batching only trades bookkeeping frequency for up to one block of
// extra samples per group.
//
// Parallelism: every group owns a deterministic RNG stream derived from
// the run seed and its index (dataset.NewStreamSampler), so a group's
// draws are a pure function of (seed, index, samples taken) and never of
// the order groups are visited. The draw phase of each round can therefore
// fan the per-group block draws across Options.Workers goroutines — the
// paper's guarantees are per group, so draws are independent — while every
// decision that touches cross-group state (settling, the isolation sweep,
// partial-result events) runs after the draw barrier, in deterministic
// group order, exactly as in the sequential loop. Workers=1 and Workers=N
// produce bit-identical results; the invariant is pinned by
// TestWorkerInvariance.

// roundAlgo packages what distinguishes one round-based algorithm from
// another.
type roundAlgo struct {
	// decide runs after each round's draws and settles the groups whose
	// intervals have separated (and applies any algorithm-specific exits,
	// e.g. the resolution relaxation or the allowed-mistakes quota).
	decide func(lp *roundLoop)
	// drawOne, when set, replaces the sampler-native draw path (pair
	// draws, normalized draws with auxiliary randomness). Block rounds
	// loop it; accounting must go through sampler.Record inside the hook
	// unless the hook itself draws through the sampler.
	drawOne func(i int) float64
	// afterDraws, when set, runs right after every draw phase (the seed
	// round included) — e.g. the SUM estimator rescaling means into sums.
	afterDraws func(lp *roundLoop)
	// partialVal, when set, supplies the value reported to OnPartial
	// (default: the group's running estimate).
	partialVal func(i int) float64
	// display, when set, is the estimate vector exposed to the tracer and
	// the final Result (default: the running means).
	display []float64
	// traceFlags, when set, is passed to the tracer instead of the live
	// active flags (ROUNDROBIN reports every group as active, as the
	// scalar implementation always did).
	traceFlags []bool
	// seedTrace emits a tracer event for the seed round.
	seedTrace bool
	// fixedMaxN feeds the Serfling term max n_i over all groups instead of
	// the shrinking max over active groups (ROUNDROBIN).
	fixedMaxN bool
	// keepExhaustedActive marks population-exhausted groups as drained —
	// they stop drawing but stay active until decide ends the run
	// (ROUNDROBIN) — instead of settling them.
	keepExhaustedActive bool
	// notifyPartials emits OnPartial events on ordinary settles.
	notifyPartials bool
	// capNotify emits OnPartial events for the groups force-settled by the
	// MaxRounds cap.
	capNotify bool
}

// roundLoop is the shared state of one run.
type roundLoop struct {
	u       *dataset.Universe
	opts    *Options
	sched   *conc.Schedule
	sampler *dataset.Sampler
	algo    roundAlgo

	// bound is the pluggable per-group bound, nil under the default
	// Hoeffding schedule. When set, epsG holds each group's live radius
	// (recomputed after every draw phase from its own count and moments)
	// and every settle decision routes through the general unequal-width
	// interval sweep; lp.eps then tracks the widest live radius for the
	// scalar tracer/result fields.
	bound conc.Bound
	epsG  []float64

	k         int
	estimates []float64 // running means
	active    []bool
	settledR  []int
	frozenEps []float64 // interval half-width at settle time
	isolated  []bool
	actIdx    []int
	drained   []bool // keepExhaustedActive mode: drawing stopped
	numActive int

	m      int // round number
	cum    int // cumulative draws per still-active group
	eps    float64
	capped bool

	workers int         // draw-phase fan-out (≤ 1 draws inline)
	drawIdx []int       // groups drawing this round, in index order
	drawN   []int       // matching per-group block sizes
	bufs    [][]float64 // per-worker block draw buffers

	ivsBuf   []interval // scratch for the unequal-width sweep
	orderBuf []int      // scratch for the isolation sweeps' sort permutation
	traceEps []float64  // scratch per-group widths handed to GroupTracer
}

// newRoundLoop builds the loop state. opts must already be validated. The
// run's RNG discipline is fixed here: one word is taken from rng and every
// group derives its own stream from it, keyed by group index — so the
// sample a group sees depends only on the seed, the group's position, and
// how many draws it has taken, never on draw interleaving across groups.
func newRoundLoop(u *dataset.Universe, rng *xrand.RNG, opts *Options, algo roundAlgo) *roundLoop {
	k := u.K()
	workers := opts.Workers
	if workers > k {
		workers = k
	}
	// Draw discipline: private per-group streams by default; a shared
	// offset-addressed source (broker) when the caller supplies one. A
	// broker built from the same resolved seed serves exactly the values
	// the private streams would draw — the one rng.Uint64() below is the
	// solo path's stream base, and brokers derive theirs from the same
	// seed — so the two paths are interchangeable bit for bit.
	var sampler *dataset.Sampler
	if opts.Draws != nil {
		sampler = dataset.NewSourceSampler(u, opts.Draws, !opts.WithReplacement)
	} else {
		sampler = dataset.NewStreamSampler(u, rng.Uint64(), !opts.WithReplacement)
	}
	bound := newRunBound(u, opts)
	var epsG []float64
	if bound != nil {
		epsG = make([]float64, k)
		if bound.NeedsMoments() {
			// Native draws fold straight into the sampler's per-group
			// moments; algorithms with a transform hook (drawOne) observe
			// the transformed values from the draw phase instead, so the
			// moments describe the variable actually being estimated.
			sampler.EnableMoments(algo.drawOne == nil)
		}
	}
	return &roundLoop{
		u:         u,
		opts:      opts,
		sched:     newSchedule(u, opts),
		sampler:   sampler,
		bound:     bound,
		epsG:      epsG,
		algo:      algo,
		k:         k,
		estimates: make([]float64, k),
		active:    make([]bool, k),
		settledR:  make([]int, k),
		frozenEps: make([]float64, k),
		isolated:  make([]bool, k),
		actIdx:    make([]int, 0, k),
		drained:   make([]bool, k),
		workers:   workers,
		drawIdx:   make([]int, 0, k),
		drawN:     make([]int, 0, k),
		bufs:      make([][]float64, max(1, workers)),
	}
}

// blockSize returns how many fresh samples each active group draws this
// round: the fixed batch, grown geometrically from the cumulative count
// when RoundGrowth asks for it. Always at least 1.
func (lp *roundLoop) blockSize() int {
	b := lp.opts.BatchSize
	if b < 1 {
		b = 1
	}
	if g := lp.opts.RoundGrowth; g > 1 {
		if grown := int(math.Ceil((g - 1) * float64(lp.cum))); grown > b {
			b = grown
		}
	}
	return b
}

// run executes the whole loop: seed round, then rounds until every group
// has settled. It returns only the context error.
func (lp *roundLoop) run() error {
	lp.seed()
	for lp.numActive > 0 {
		if err := lp.opts.interrupted(); err != nil {
			return err
		}
		lp.m++
		fresh := lp.blockSize()
		if lp.bound == nil {
			var maxN int64
			if !lp.opts.WithReplacement {
				if lp.algo.fixedMaxN {
					maxN = lp.u.MaxSize()
				} else {
					maxN = maxActiveSize(lp.u, lp.active)
				}
			}
			lp.eps = lp.sched.EpsilonN(lp.cum+fresh, maxN) / lp.opts.HeuristicFactor
		}
		lp.drawRound(fresh)
		lp.cum += fresh
		if lp.bound != nil {
			lp.updateRadii()
		}
		if lp.algo.afterDraws != nil {
			lp.algo.afterDraws(lp)
		}
		lp.algo.decide(lp)
		lp.trace(lp.m, lp.eps)
		if lp.opts.MaxRounds > 0 && lp.m >= lp.opts.MaxRounds && lp.numActive > 0 {
			lp.capped = true
			lp.settleAllRemaining(lp.algo.capNotify)
		}
	}
	return nil
}

// seed runs round 1: every group starts active and draws one block.
func (lp *roundLoop) seed() {
	for i := 0; i < lp.k; i++ {
		lp.active[i] = true
	}
	lp.numActive = lp.k
	lp.m = 1
	fresh := lp.blockSize()
	lp.drawRound(fresh)
	lp.cum = fresh
	if lp.bound != nil {
		lp.updateRadii()
	}
	if lp.algo.afterDraws != nil {
		lp.algo.afterDraws(lp)
	}
	if lp.algo.seedTrace {
		eps := lp.eps
		if lp.bound == nil {
			eps = lp.sched.Epsilon(lp.cum) / lp.opts.HeuristicFactor
		}
		lp.trace(1, eps)
	}
}

// updateRadii recomputes the live per-group radii from each group's own
// draw count, population, and incrementally maintained moments, then
// refreshes lp.eps to the widest live radius — the scalar the tracer,
// Result.FinalEpsilon, and round-cap settles see. Per-group bounds consume
// each group's own n_i directly, where the shared schedule had to feed one
// max_{i∈A} n_i to every group. Only non-settled groups are touched
// (drained ones included: their frozen-in-place intervals still take part
// in other groups' isolation checks).
func (lp *roundLoop) updateRadii() {
	maxEps := 0.0
	for i := 0; i < lp.k; i++ {
		if !lp.active[i] {
			continue
		}
		var n int64
		if !lp.opts.WithReplacement {
			n = lp.u.Groups[i].Size()
		}
		eps := lp.bound.Radius(int(lp.sampler.Count(i)), n, lp.sampler.MomentsFor(i)) / lp.opts.HeuristicFactor
		lp.epsG[i] = eps
		if eps > maxEps {
			maxEps = eps
		}
	}
	lp.eps = maxEps
}

// drawRound draws up to fresh samples from every active, undrained group,
// folding them into the running means. A group whose remaining population
// cannot cover a full block draws what is left; one that has nothing left
// settles at width zero (its running mean is exact) or, in
// keepExhaustedActive mode, is marked drained.
//
// The round is planned sequentially (block sizes, exhaustion settles — the
// only part that mutates cross-group state, kept in deterministic group
// order), then the planned block draws fan across the worker pool. Each
// draw touches only group-owned state: the group's RNG stream and
// permutation, its running mean, a per-worker buffer, and the sampler's
// atomic accounting — so the fan-out needs no locks and the barrier at the
// end of ParallelForWorkers publishes every estimate before decide reads
// them.
func (lp *roundLoop) drawRound(fresh int) {
	lp.drawIdx = lp.drawIdx[:0]
	lp.drawN = lp.drawN[:0]
	for i := 0; i < lp.k; i++ {
		if !lp.active[i] || lp.drained[i] {
			continue
		}
		n := fresh
		if !lp.opts.WithReplacement {
			if sz := lp.u.Groups[i].Size(); sz > 0 {
				remaining := sz - int64(lp.cum)
				if remaining <= 0 {
					if lp.algo.keepExhaustedActive {
						lp.drained[i] = true
					} else {
						lp.settle(i, 0, lp.algo.notifyPartials)
					}
					continue
				}
				if int64(n) > remaining {
					n = int(remaining)
				}
			}
		}
		lp.drawIdx = append(lp.drawIdx, i)
		lp.drawN = append(lp.drawN, n)
	}
	if lp.workers <= 1 || len(lp.drawIdx) <= 1 {
		for j, i := range lp.drawIdx {
			lp.drawGroup(0, i, lp.drawN[j])
		}
		return
	}
	ParallelForWorkers(len(lp.drawIdx), lp.workers, func(w, j int) {
		lp.drawGroup(w, lp.drawIdx[j], lp.drawN[j])
	})
}

// drawGroup folds n fresh samples into group i's running mean, using
// worker w's scratch buffer. The n == 1 path is the paper's incremental
// update, bit-for-bit what the scalar algorithms computed; blocks
// accumulate a sum and pay one division.
func (lp *roundLoop) drawGroup(w, i, n int) {
	prev := lp.cum
	nc := prev + n
	if n == 1 {
		var x float64
		if lp.algo.drawOne != nil {
			x = lp.algo.drawOne(i)
			lp.sampler.Observe(i, x)
		} else {
			x = lp.sampler.Draw(i)
		}
		lp.estimates[i] = float64(nc-1)/float64(nc)*lp.estimates[i] + x/float64(nc)
		return
	}
	sum := 0.0
	if lp.algo.drawOne != nil {
		for j := 0; j < n; j++ {
			x := lp.algo.drawOne(i)
			lp.sampler.Observe(i, x)
			sum += x
		}
	} else {
		if cap(lp.bufs[w]) < n {
			lp.bufs[w] = make([]float64, n)
		}
		buf := lp.bufs[w][:n]
		lp.sampler.DrawBatch(i, buf)
		for _, v := range buf {
			sum += v
		}
	}
	lp.estimates[i] = (float64(prev)*lp.estimates[i] + sum) / float64(nc)
}

// settle deactivates group i at the given interval half-width.
func (lp *roundLoop) settle(i int, width float64, notify bool) {
	lp.active[i] = false
	lp.settledR[i] = lp.m
	lp.frozenEps[i] = width
	lp.numActive--
	if notify && lp.opts.OnPartial != nil {
		v := lp.estimates[i]
		if lp.algo.partialVal != nil {
			v = lp.algo.partialVal(i)
		}
		lp.opts.OnPartial(i, v, lp.m, width)
	}
}

// groupEps returns group i's live radius: the shared ε under the default
// schedule, its own per-group radius under a pluggable bound.
func (lp *roundLoop) groupEps(i int) float64 {
	if lp.bound != nil {
		return lp.epsG[i]
	}
	return lp.eps
}

// width returns group i's current interval half-width: the live radius
// while it is active, the frozen width after it settles.
func (lp *roundLoop) width(i int) float64 {
	if lp.active[i] {
		return lp.groupEps(i)
	}
	return lp.frozenEps[i]
}

// settleIsolated settles the active groups whose intervals have separated,
// each at its own live radius. Under the default schedule all live widths
// equal ε and only active intervals matter — a group that separated from
// every active interval stays separated, because the shared ε only
// shrinks and frozen widths never exceed it. Per-group radii break that
// monotonicity (a wide high-variance interval can straddle a settled
// group's narrow frozen one), so the unequal-width sweep runs over ALL k
// intervals — frozen for settled groups, live for active — and an active
// group settles only when disjoint from every one of them, exactly like
// the SUM estimators' and IREFINE's sweeps.
func (lp *roundLoop) settleIsolated() {
	lp.actIdx = activeIndices(lp.active, lp.actIdx)
	if lp.bound == nil {
		lp.orderBuf = isolatedEqualWidth(lp.actIdx, lp.estimates, lp.eps, lp.isolated, lp.orderBuf)
	} else {
		lp.isolatedUnequal()
	}
	for _, i := range lp.actIdx {
		if lp.isolated[i] {
			lp.settle(i, lp.groupEps(i), lp.algo.notifyPartials)
		}
	}
}

// isolatedUnequal marks in lp.isolated which groups' intervals
// [est−w_i, est+w_i] (frozen w for settled groups, live radius for
// active) are disjoint from every other group's interval, via the general
// sort-by-lo sweep — per-group widths differ under variance-adaptive
// bounds, so the equal-width neighbour shortcut does not apply.
func (lp *roundLoop) isolatedUnequal() {
	ivs := lp.ivsBuf[:0]
	for i := 0; i < lp.k; i++ {
		w := lp.width(i)
		ivs = append(ivs, interval{lp.estimates[i] - w, lp.estimates[i] + w})
	}
	lp.ivsBuf = ivs
	lp.orderBuf = isolatedGeneral(ivs, lp.isolated, lp.orderBuf)
}

// resolutionExit applies the Problem 2 relaxation. Under the shared
// schedule every remaining group settles once the one live ε drops below
// r/4. Per-group radii certify the resolution on their own clock: a tight
// (low-variance) group exits while loose ones keep sampling — the same
// per-group exit IREFINE-R uses.
func (lp *roundLoop) resolutionExit() {
	if lp.opts.Resolution <= 0 {
		return
	}
	if lp.bound == nil {
		if lp.eps < lp.opts.Resolution/4 {
			lp.settleAllRemaining(lp.algo.notifyPartials)
		}
		return
	}
	for i := 0; i < lp.k; i++ {
		if lp.active[i] && lp.epsG[i] < lp.opts.Resolution/4 {
			lp.settle(i, lp.epsG[i], lp.algo.notifyPartials)
		}
	}
}

// settleAllRemaining settles every still-active group at its live radius.
func (lp *roundLoop) settleAllRemaining(notify bool) {
	for i := 0; i < lp.k; i++ {
		if lp.active[i] {
			lp.settle(i, lp.groupEps(i), notify)
		}
	}
}

// trace emits one tracer event, honoring the algorithm's display and flag
// overrides. A GroupTracer additionally receives the per-group widths:
// frozen for settled groups, the live radius (eps under the default
// schedule) for active ones.
func (lp *roundLoop) trace(m int, eps float64) {
	if lp.opts.Tracer == nil {
		return
	}
	flags := lp.active
	if lp.algo.traceFlags != nil {
		flags = lp.algo.traceFlags
	}
	est := lp.estimates
	if lp.algo.display != nil {
		est = lp.algo.display
	}
	if gt, ok := lp.opts.Tracer.(GroupTracer); ok {
		if lp.traceEps == nil {
			lp.traceEps = make([]float64, lp.k)
		}
		for i := 0; i < lp.k; i++ {
			switch {
			case !lp.active[i]:
				lp.traceEps[i] = lp.frozenEps[i]
			case lp.bound != nil:
				lp.traceEps[i] = lp.epsG[i]
			default:
				lp.traceEps[i] = eps
			}
		}
		gt.OnRoundGroups(m, eps, lp.traceEps, flags, est, lp.sampler.Total())
		return
	}
	lp.opts.Tracer.OnRound(m, eps, flags, est, lp.sampler.Total())
}

// result assembles the common Result shape.
func (lp *roundLoop) result() *Result {
	est := lp.estimates
	if lp.algo.display != nil {
		est = lp.algo.display
	}
	return &Result{
		Estimates:    est,
		SampleCounts: append([]int64(nil), lp.sampler.Counts()...),
		TotalSamples: lp.sampler.Total(),
		Rounds:       lp.m,
		SettledRound: lp.settledR,
		FinalEpsilon: lp.eps,
		Capped:       lp.capped,
	}
}
