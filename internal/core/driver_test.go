package core

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// algoRunner names one round-based entry point for the batch tests.
type algoRunner struct {
	name string
	run  func(u *dataset.Universe, rng *xrand.RNG, opts Options) (*Result, error)
}

func batchRunners() []algoRunner {
	return []algoRunner{
		{"ifocus", IFocus},
		{"roundrobin", RoundRobin},
		{"trend", Trend},
		{"values", func(u *dataset.Universe, rng *xrand.RNG, opts Options) (*Result, error) {
			return WithValues(u, rng, 8, opts)
		}},
		{"mistakes", func(u *dataset.Universe, rng *xrand.RNG, opts Options) (*Result, error) {
			return WithMistakes(u, rng, 0.8, opts)
		}},
		{"chloropleth", func(u *dataset.Universe, rng *xrand.RNG, opts Options) (*Result, error) {
			return Chloropleth(u, rng, GridAdjacency(2, 3), opts)
		}},
		{"topt", func(u *dataset.Universe, rng *xrand.RNG, opts Options) (*Result, error) {
			res, err := TopT(u, rng, 2, opts)
			if err != nil {
				return nil, err
			}
			return &res.Result, nil
		}},
		{"sum-known", SumKnownSizes},
		{"sum-unknown", func(u *dataset.Universe, rng *xrand.RNG, opts Options) (*Result, error) {
			return SumUnknownSizes(u, dataset.NewMembershipFractionEstimator(u), rng, opts)
		}},
	}
}

// TestBatchSizeOneMatchesDefault pins the scalar contract on every
// algorithm: BatchSize 0 (the default) and BatchSize 1 take the same code
// path and must produce identical results — together with TestGoldenPins
// (which pins the default to the pre-driver scalar implementations), this
// certifies BatchSize=1 is seed-for-seed identical to the paper-faithful
// originals.
func TestBatchSizeOneMatchesDefault(t *testing.T) {
	for _, ar := range batchRunners() {
		t.Run(ar.name, func(t *testing.T) {
			base, err := ar.run(pinUniverse(), xrand.New(77), DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions()
			opts.BatchSize = 1
			one, err := ar.run(pinUniverse(), xrand.New(77), opts)
			if err != nil {
				t.Fatal(err)
			}
			if fingerprint(base, nil) != fingerprint(one, nil) {
				t.Fatalf("BatchSize=1 diverged from default:\n%s\n%s",
					fingerprint(one, nil), fingerprint(base, nil))
			}
		})
	}
}

// TestBatchedRunsOrderCorrectly checks that block rounds preserve the
// ordering guarantee machinery: estimates order like the true aggregates,
// totals reconcile, and every group draws at least one block.
func TestBatchedRunsOrderCorrectly(t *testing.T) {
	for _, batch := range []int{4, 64} {
		for _, ar := range batchRunners() {
			t.Run(fmt.Sprintf("%s/batch=%d", ar.name, batch), func(t *testing.T) {
				u := pinUniverse()
				if ar.name == "sum-known" || ar.name == "sum-unknown" {
					u = pinSumUniverse()
				}
				opts := DefaultOptions()
				opts.BatchSize = batch
				res, err := ar.run(u, xrand.New(101), opts)
				if err != nil {
					t.Fatal(err)
				}
				var sum int64
				for i, c := range res.SampleCounts {
					if c < int64(batch) && c < u.Groups[i].Size() {
						t.Errorf("group %d drew %d samples, want at least one full block", i, c)
					}
					sum += c
				}
				if sum != res.TotalSamples {
					t.Fatalf("sample counts sum to %d, TotalSamples %d", sum, res.TotalSamples)
				}
				if ar.name == "topt" || ar.name == "mistakes" {
					return // partial-ordering guarantees; checked elsewhere
				}
				truth := u.TrueMeans()
				if ar.name == "sum-known" {
					for i, g := range u.Groups {
						truth[i] *= float64(g.Size())
					}
				}
				if ar.name == "sum-unknown" {
					total := float64(u.TotalSize())
					for i, g := range u.Groups {
						truth[i] *= float64(g.Size()) / total
					}
				}
				if ar.name == "trend" || ar.name == "chloropleth" {
					// Adjacent-pair guarantees only.
					for i := 1; i < len(truth); i++ {
						if (truth[i] > truth[i-1]) != (res.Estimates[i] > res.Estimates[i-1]) {
							t.Errorf("adjacent pair (%d,%d) misordered", i-1, i)
						}
					}
					return
				}
				if !CorrectOrdering(res.Estimates, truth) {
					t.Fatalf("batched run misordered: est=%v truth=%v", res.Estimates, truth)
				}
			})
		}
	}
}

// TestBatchExhaustsTinyGroups: a block larger than the group's population
// clamps to what is left, and fully consumed groups settle at their exact
// mean.
func TestBatchExhaustsTinyGroups(t *testing.T) {
	ga := dataset.NewSliceGroup("a", []float64{48, 50, 52})
	gb := dataset.NewSliceGroup("b", []float64{58, 60, 62})
	u := dataset.NewUniverse(100, ga, gb)
	opts := DefaultOptions()
	opts.BatchSize = 64
	res, err := IFocus(u, xrand.New(5), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates[0] != 50 || res.Estimates[1] != 60 {
		t.Fatalf("exhausted groups should report exact means, got %v", res.Estimates)
	}
	if res.SampleCounts[0] != 3 || res.SampleCounts[1] != 3 {
		t.Fatalf("counts should clamp to population, got %v", res.SampleCounts)
	}
}

// TestRoundGrowthReducesRounds: geometric blocks reach the same sampling
// depth in logarithmically many rounds.
func TestRoundGrowthReducesRounds(t *testing.T) {
	opts := DefaultOptions()
	scalar, err := IFocus(pinUniverse(), xrand.New(7), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.RoundGrowth = 1.5
	grown, err := IFocus(pinUniverse(), xrand.New(7), opts)
	if err != nil {
		t.Fatal(err)
	}
	if grown.Rounds >= scalar.Rounds/4 {
		t.Fatalf("RoundGrowth=1.5 used %d rounds, scalar %d; want a large reduction",
			grown.Rounds, scalar.Rounds)
	}
	if !CorrectOrdering(grown.Estimates, pinUniverse().TrueMeans()) {
		t.Fatalf("grown run misordered: %v", grown.Estimates)
	}
}

// TestBatchOptionValidation rejects nonsense batching parameters at every
// entry point that validates options.
func TestBatchOptionValidation(t *testing.T) {
	u := pinUniverse()
	opts := DefaultOptions()
	opts.BatchSize = -2
	if _, err := IFocus(u, xrand.New(1), opts); err == nil {
		t.Fatal("negative BatchSize accepted")
	}
	opts = DefaultOptions()
	opts.BatchSize = BatchAuto
	if _, err := IFocus(u, xrand.New(1), opts); err != nil {
		t.Fatalf("BatchAuto rejected: %v", err)
	}
	opts = DefaultOptions()
	opts.RoundGrowth = 0.5
	if _, err := IFocus(u, xrand.New(1), opts); err == nil {
		t.Fatal("RoundGrowth in (0,1) accepted")
	}
	// NoIndex's batch scales its interval-check cadence — it changes
	// results, so the auto schedule does not apply there and every
	// negative value (BatchAuto included) stays invalid.
	for _, bad := range []int{-1, -2} {
		opts = DefaultOptions()
		opts.BatchSize = bad
		if _, err := NoIndex(NewUniverseTupleSource(u), xrand.New(1), opts, 0); err == nil {
			t.Fatalf("NoIndex accepted BatchSize=%d", bad)
		}
	}
}

// TestAutoBatchSchedule pins the BatchAuto block schedule itself: blocks
// start at autoBatchStart, double each round, and clamp at autoBatchMax.
// A round-capped run over never-settling equal-mean groups must draw
// exactly k·Σ_m min(64·2^(m−1), 4096) samples — the schedule is a fixed
// function of the round number, never of timing.
func TestAutoBatchSchedule(t *testing.T) {
	want := []int{64, 128, 256, 512, 1024, 2048, 4096, 4096, 4096}
	for m, w := range want {
		if got := autoBatchSize(m + 1); got != w {
			t.Fatalf("autoBatchSize(%d) = %d, want %d", m+1, got, w)
		}
	}
	const k, rounds = 3, 9
	groups := make([]dataset.Group, k)
	for i := range groups {
		groups[i] = dataset.NewDistGroup(groupNames(i),
			xrand.TruncNormal{Mu: 50, Sigma: 8, Lo: 0, Hi: 100}, 1_000_000_000)
	}
	u := dataset.NewUniverse(100, groups...)
	opts := DefaultOptions()
	opts.BatchSize = BatchAuto
	opts.MaxRounds = rounds
	res, err := IFocus(u, xrand.New(17), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Capped || res.Rounds != rounds {
		t.Fatalf("equal-mean run should hit the %d-round cap, got capped=%v rounds=%d",
			rounds, res.Capped, res.Rounds)
	}
	var total int64
	for _, w := range want {
		total += int64(k * w)
	}
	if res.TotalSamples != total {
		t.Fatalf("auto-batch draw total %d, want the exact schedule sum %d", res.TotalSamples, total)
	}
}

// TestAutoBatchGoldenPin freezes one full BatchAuto run bit-for-bit, so
// any change to the schedule or to the kernels/fan-out underneath it that
// moves results is caught immediately.
func TestAutoBatchGoldenPin(t *testing.T) {
	opts := DefaultOptions()
	opts.BatchSize = BatchAuto
	res, err := IFocus(pinUniverse(), xrand.New(77), opts)
	got := fingerprint(res, err)
	const want = "rounds=5 total=7808 capped=false eps=2.9276839962557677 est=[15.088661979672436 27.427973130465798 39.231194976654848 50.848775234152676 63.095549355683744 75.399729472743488] counts=[960 960 1984 1984 960 960] settled=[4 4 5 5 4 4]"
	if got != want {
		t.Fatalf("BatchAuto golden diverged:\n got: %s\nwant: %s", got, want)
	}
}

// TestNoIndexBatchCadence: batching a no-index run scales the check
// cadence without changing the per-draw statistics; the run still orders
// correctly and still honors maxDraws.
func TestNoIndexBatchCadence(t *testing.T) {
	u := pinUniverse()
	opts := DefaultOptions()
	opts.BatchSize = 16
	res, err := NoIndex(NewUniverseTupleSource(u), xrand.New(43), opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !CorrectOrdering(res.Estimates, u.TrueMeans()) {
		t.Fatalf("batched no-index misordered: %v", res.Estimates)
	}
	capped, err := NoIndex(NewUniverseTupleSource(u), xrand.New(43), opts, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !capped.Capped || capped.TotalSamples != 100 {
		t.Fatalf("maxDraws ignored under batching: capped=%v total=%d", capped.Capped, capped.TotalSamples)
	}
}

// TestMultiAggBatched: the pair estimator accepts block rounds (the draw
// hook loops per block) and both orderings stay correct.
func TestMultiAggBatched(t *testing.T) {
	opts := DefaultOptions()
	opts.BatchSize = 32
	res, err := MultiAgg(pinPairUniverse(), xrand.New(41), opts)
	if err != nil {
		t.Fatal(err)
	}
	yOrder := Ranking(res.EstimatesY)
	zOrder := Ranking(res.EstimatesZ)
	wantY := []int{3, 2, 1, 0}
	wantZ := []int{0, 1, 2, 3}
	for i := range wantY {
		if yOrder[i] != wantY[i] || zOrder[i] != wantZ[i] {
			t.Fatalf("batched multi-agg misordered: y=%v z=%v", yOrder, zOrder)
		}
	}
}

// TestBatchReducesRoundsProportionally: a block of b samples advances the
// cumulative count b at a time, so round counts shrink by about b while
// totals stay within one block per group of the scalar run's depth.
func TestBatchReducesRoundsProportionally(t *testing.T) {
	scalar, err := IFocus(pinUniverse(), xrand.New(7), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.BatchSize = 64
	batched, err := IFocus(pinUniverse(), xrand.New(7), opts)
	if err != nil {
		t.Fatal(err)
	}
	if batched.Rounds > scalar.Rounds/32 {
		t.Fatalf("batch=64 used %d rounds vs scalar %d; want ~64x fewer", batched.Rounds, scalar.Rounds)
	}
	// Settling granularity is one block, so per-group draws may exceed the
	// scalar run's by at most ~one block (plus sampling noise from the
	// different stream).
	perGroup := make([]int64, len(batched.SampleCounts))
	copy(perGroup, batched.SampleCounts)
	sort.Slice(perGroup, func(a, b int) bool { return perGroup[a] > perGroup[b] })
	maxScalar := int64(0)
	for _, c := range scalar.SampleCounts {
		if c > maxScalar {
			maxScalar = c
		}
	}
	if perGroup[0] > 4*maxScalar+64 {
		t.Fatalf("batched run drew far deeper than scalar: %d vs %d", perGroup[0], maxScalar)
	}
}
