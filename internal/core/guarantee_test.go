package core

import (
	"testing"

	"repro/internal/workload"
	"repro/internal/xrand"
)

// TestOrderingGuaranteeStatistical is the end-to-end statistical check the
// paper reports as its headline accuracy result: across many random
// datasets from each family, every algorithm's output must respect the
// (resolution-relaxed, where applicable) ordering property essentially
// always — the paper measures 100% across the board at δ=0.05.
func TestOrderingGuaranteeStatistical(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	kinds := []workload.Kind{workload.TruncNorm, workload.MixtureKind, workload.BernoulliKind}
	const reps = 15
	failures := map[string]int{}
	for _, kind := range kinds {
		for rep := 0; rep < reps; rep++ {
			cfg := workload.Config{Kind: kind, K: 8, TotalRows: 4_000_000, Seed: uint64(100*int(kind) + rep)}
			u, err := workload.Virtual(cfg)
			if err != nil {
				t.Fatal(err)
			}
			truth := u.TrueMeans()
			opts := DefaultOptions()
			opts.MaxRounds = 1 << 21

			run, err := IFocus(u, xrand.New(uint64(rep)), opts)
			if err != nil {
				t.Fatal(err)
			}
			if !run.Capped && !CorrectOrdering(run.Estimates, truth) {
				failures["ifocus/"+kind.String()]++
			}

			ropts := opts
			ropts.Resolution = 1
			runR, err := IFocus(u, xrand.New(uint64(rep)), ropts)
			if err != nil {
				t.Fatal(err)
			}
			if !runR.Capped && !ResolutionCorrect(runR.Estimates, truth, 1) {
				failures["ifocusr/"+kind.String()]++
			}

			rr, err := RoundRobin(u, xrand.New(uint64(rep)), opts)
			if err != nil {
				t.Fatal(err)
			}
			if !rr.Capped && !CorrectOrdering(rr.Estimates, truth) {
				failures["roundrobin/"+kind.String()]++
			}

			ir, err := IRefine(u, xrand.New(uint64(rep)), ropts)
			if err != nil {
				t.Fatal(err)
			}
			if !ir.Capped && !ResolutionCorrect(ir.Estimates, truth, 1) {
				failures["irefiner/"+kind.String()]++
			}
		}
	}
	// δ=0.05 over 15 reps allows the occasional failure; more than 2 in
	// any cell means the machinery is broken, not unlucky.
	for key, n := range failures {
		if n > 2 {
			t.Errorf("%s: %d/%d ordering failures", key, n, reps)
		}
	}
}

// TestHardFamilyEtaControlsCost verifies the sample-complexity scaling of
// Theorem 3.6 on the hard Bernoulli family, where η = γ exactly: halving γ
// should roughly quadruple the cost (c²/η² scaling).
func TestHardFamilyEtaControlsCost(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	cost := func(gamma float64) int64 {
		var total int64
		for rep := 0; rep < 3; rep++ {
			cfg := workload.Config{Kind: workload.HardKind, K: 4, TotalRows: 100_000_000, Gamma: gamma, Seed: uint64(rep)}
			u, err := workload.Virtual(cfg)
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions()
			res, err := IFocus(u, xrand.New(uint64(rep)+50), opts)
			if err != nil {
				t.Fatal(err)
			}
			total += res.TotalSamples
		}
		return total
	}
	wide := cost(1.6)
	narrow := cost(0.8)
	ratio := float64(narrow) / float64(wide)
	// Theory says ~4x; accept anything clearly super-linear.
	if ratio < 2 {
		t.Fatalf("halving eta only grew cost by %.2fx; want ~4x", ratio)
	}
}
