package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// These tests pin the exact numeric behavior of every round-based algorithm
// on fixed seeds: estimates, sample counts, rounds, partial-result events,
// and trace sequences. The fingerprints below were captured from the
// pre-driver scalar implementations, so any refactor of the round loop —
// in particular the shared batched round driver — must keep BatchSize ≤ 1
// bit-for-bit identical to the paper-faithful one-sample-per-round originals.

// pinUniverse builds a deterministic 6-group slice universe with means
// roughly 12 apart (uniform ±10 noise), values in [0, 100].
func pinUniverse() *dataset.Universe {
	r := xrand.New(0xfeed)
	groups := make([]dataset.Group, 6)
	for g := range groups {
		mean := 15 + 12*float64(g)
		values := make([]float64, 3000)
		for i := range values {
			values[i] = mean + (r.Float64()-0.5)*20
		}
		groups[g] = dataset.NewSliceGroup(fmt.Sprintf("g%d", g), values)
	}
	return dataset.NewUniverse(100, groups...)
}

// pinSumUniverse has deliberately unequal group sizes so the SUM ordering
// differs from the AVG ordering.
func pinSumUniverse() *dataset.Universe {
	r := xrand.New(0xbeef)
	sizes := []int{1000, 2500, 500, 4000, 1500}
	groups := make([]dataset.Group, len(sizes))
	for g, n := range sizes {
		mean := 20 + 15*float64(g%3)
		values := make([]float64, n)
		for i := range values {
			values[i] = mean + (r.Float64()-0.5)*16
		}
		groups[g] = dataset.NewSliceGroup(fmt.Sprintf("s%d", g), values)
	}
	return dataset.NewUniverse(100, groups...)
}

// pinPairUniverse carries a second aggregate attribute per tuple.
func pinPairUniverse() *dataset.Universe {
	r := xrand.New(0xabcd)
	groups := make([]dataset.Group, 4)
	for g := range groups {
		ys := make([]float64, 2000)
		zs := make([]float64, 2000)
		for i := range ys {
			ys[i] = 20 + 18*float64(g) + (r.Float64()-0.5)*14
			zs[i] = 80 - 16*float64(g) + (r.Float64()-0.5)*14
		}
		groups[g] = dataset.NewSlicePairGroup(fmt.Sprintf("p%d", g), ys, zs)
	}
	return dataset.NewUniverse(100, groups...)
}

// fingerprint renders a result compactly but at full float precision.
func fingerprint(res *Result, err error) string {
	if err != nil {
		return "err:" + err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "rounds=%d total=%d capped=%v eps=%.17g est=[", res.Rounds, res.TotalSamples, res.Capped, res.FinalEpsilon)
	for i, e := range res.Estimates {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.17g", e)
	}
	b.WriteString("] counts=")
	fmt.Fprintf(&b, "%v settled=%v", res.SampleCounts, res.SettledRound)
	return b.String()
}

// pinCase runs one algorithm configuration and compares its fingerprint.
type pinCase struct {
	name string
	run  func(t *testing.T) string
	want string
}

// partialRecorder captures the OnPartial event sequence.
type partialRecorder struct {
	events []string
}

func (p *partialRecorder) hook() func(int, float64, int) {
	return func(group int, estimate float64, round int) {
		p.events = append(p.events, fmt.Sprintf("%d@%d=%.17g", group, round, estimate))
	}
}

func (p *partialRecorder) String() string { return strings.Join(p.events, ",") }

// traceRecorder fingerprints the tracer stream (round, eps, active count,
// cumulative samples).
type traceRecorder struct {
	events []string
}

func (tr *traceRecorder) OnRound(m int, eps float64, active []bool, estimates []float64, total int64) {
	n := 0
	for _, a := range active {
		if a {
			n++
		}
	}
	tr.events = append(tr.events, fmt.Sprintf("%d:%.17g:%d:%d", m, eps, n, total))
}

func (tr *traceRecorder) String() string { return strings.Join(tr.events, ",") }

func pinCases() []pinCase {
	return []pinCase{
		{
			name: "ifocus",
			run: func(t *testing.T) string {
				res, err := IFocus(pinUniverse(), xrand.New(7), DefaultOptions())
				return fingerprint(res, err)
			},
			want: "rounds=960 total=5643 capped=false eps=5.9023670600529403 est=[14.956598051988427 26.941702233823129 39.118267725824431 50.934620835132428 63.004584343975871 75.212043231927282] counts=[941 941 960 960 926 915] settled=[941 941 960 960 926 915]",
		},
		{
			name: "ifocus-partials-trace",
			run: func(t *testing.T) string {
				opts := DefaultOptions()
				var pr partialRecorder
				var tr traceRecorder
				opts.OnPartial = pr.hook()
				opts.Tracer = &tr
				res, err := IFocus(pinUniverse(), xrand.New(7), opts)
				if err != nil {
					t.Fatal(err)
				}
				return fmt.Sprintf("total=%d partials=%s traceN=%d traceHead=%s traceTail=%s",
					res.TotalSamples, pr.String(), len(tr.events), tr.events[0], tr.events[len(tr.events)-1])
			},
			want: "total=5643 partials=5@915=75.212043231927282,4@926=63.004584343975871,0@941=14.956598051988427,1@941=26.941702233823129,2@960=39.118267725824431,3@960=50.934620835132428 traceN=960 traceHead=1:172.89215172778574:6:6 traceTail=960:5.9023670600529403:0:5643",
		},
		{
			name: "ifocus-with-replacement",
			run: func(t *testing.T) string {
				opts := DefaultOptions()
				opts.WithReplacement = true
				res, err := IFocus(pinUniverse(), xrand.New(11), opts)
				return fingerprint(res, err)
			},
			want: "rounds=1530 total=8380 capped=false eps=5.7060668667754308 est=[14.973792297419578 27.049575463812431 39.453485069108915 50.869644422991485 63.051898229818129 75.510149461328382] counts=[1364 1364 1530 1530 1334 1258] settled=[1364 1364 1530 1530 1334 1258]",
		},
		{
			name: "ifocus-resolution",
			run: func(t *testing.T) string {
				opts := DefaultOptions()
				opts.Resolution = 40
				res, err := IFocus(pinUniverse(), xrand.New(7), opts)
				return fingerprint(res, err)
			},
			want: "rounds=413 total=2478 capped=false eps=9.9972306425406643 est=[14.929214663336873 27.002041113173835 39.211910456813818 50.885982452134535 62.720421126994459 75.07531967590765] counts=[413 413 413 413 413 413] settled=[413 413 413 413 413 413]",
		},
		{
			name: "ifocus-cap",
			run: func(t *testing.T) string {
				vals := []float64{40, 60}
				ga := dataset.NewSliceGroup("a", vals)
				gb := dataset.NewSliceGroup("b", vals)
				u := dataset.NewUniverse(100, ga, gb)
				opts := DefaultOptions()
				opts.WithReplacement = true
				opts.MaxRounds = 50
				res, err := IFocus(u, xrand.New(3), opts)
				return fingerprint(res, err)
			},
			want: "rounds=50 total=100 capped=true eps=27.58230629030415 est=[50.800000000000004 51.199999999999996] counts=[50 50] settled=[50 50]",
		},
		{
			name: "ifocus-exhaust",
			run: func(t *testing.T) string {
				ga := dataset.NewSliceGroup("a", []float64{48, 50, 52})
				gb := dataset.NewSliceGroup("b", []float64{49, 51, 53})
				u := dataset.NewUniverse(100, ga, gb)
				res, err := IFocus(u, xrand.New(5), DefaultOptions())
				return fingerprint(res, err)
			},
			want: "rounds=4 total=6 capped=false eps=0 est=[50 51] counts=[3 3] settled=[4 4]",
		},
		{
			name: "roundrobin",
			run: func(t *testing.T) string {
				var tr traceRecorder
				opts := DefaultOptions()
				opts.Tracer = &tr
				res, err := RoundRobin(pinUniverse(), xrand.New(7), opts)
				return fingerprint(res, err) + " traceTail=" + tr.events[len(tr.events)-1]
			},
			want: "rounds=964 total=5784 capped=false eps=5.8846964172513294 est=[14.970776727006175 27.001894619197156 39.087920411636773 50.866482496990749 63.024882260127022 75.156785573866031] counts=[964 964 964 964 964 964] settled=[964 964 964 964 964 964] traceTail=964:5.8846964172513294:6:5784",
		},
		{
			name: "roundrobin-cap",
			run: func(t *testing.T) string {
				vals := []float64{40, 60}
				u := dataset.NewUniverse(100,
					dataset.NewSliceGroup("a", vals), dataset.NewSliceGroup("b", vals))
				opts := DefaultOptions()
				opts.WithReplacement = true
				opts.MaxRounds = 40
				res, err := RoundRobin(u, xrand.New(3), opts)
				return fingerprint(res, err)
			},
			want: "rounds=40 total=80 capped=true eps=30.598963256683838 est=[51.500000000000014 51] counts=[40 40] settled=[40 40]",
		},
		{
			name: "irefine",
			run: func(t *testing.T) string {
				res, err := IRefine(pinUniverse(), xrand.New(7), DefaultOptions())
				return fingerprint(res, err)
			},
			want: "rounds=4 total=18000 capped=false eps=3.125 est=[15.112645392975839 27.143727025742276 39.269162374449749 50.988322863421622 63.152058865837205 75.229764250659912] counts=[3000 3000 3000 3000 3000 3000] settled=[4 4 4 4 4 4]",
		},
		{
			name: "trend",
			run: func(t *testing.T) string {
				var pr partialRecorder
				opts := DefaultOptions()
				opts.OnPartial = pr.hook()
				res, err := Trend(pinUniverse(), xrand.New(9), opts)
				return fingerprint(res, err) + " partials=" + pr.String()
			},
			want: "rounds=975 total=5703 capped=false eps=5.836565163637113 est=[15.232235200450999 27.237274110175107 39.384486648322948 51.07384524206585 62.89181501150069 75.057256468332795] counts=[938 938 975 975 954 923] settled=[938 938 975 975 954 923] partials=5@923=75.057256468332795,0@938=15.232235200450999,1@938=27.237274110175107,4@954=62.89181501150069,2@975=39.384486648322948,3@975=51.07384524206585",
		},
		{
			name: "chloropleth-grid",
			run: func(t *testing.T) string {
				res, err := Chloropleth(pinUniverse(), xrand.New(13), GridAdjacency(2, 3), DefaultOptions())
				return fingerprint(res, err)
			},
			want: "rounds=946 total=5628 capped=false eps=5.9649396111814852 est=[15.094112069985918 27.308316885176698 39.256597720243235 51.086403011170496 63.137126152470017 75.089309450757369] counts=[915 946 946 931 945 945] settled=[915 946 946 931 945 945]",
		},
		{
			name: "topt",
			run: func(t *testing.T) string {
				res, err := TopT(pinUniverse(), xrand.New(17), 2, DefaultOptions())
				if err != nil {
					return "err:" + err.Error()
				}
				return fingerprint(&res.Result, nil) + fmt.Sprintf(" members=%v membership=%v", res.Members, res.Membership)
			},
			want: "rounds=956 total=3345 capped=false eps=5.9201289963063939 est=[14.872071217873374 27.733110395135263 39.125820677474152 51.217275663294828 63.075672373506521 75.134834240977384] counts=[74 136 290 956 956 933] settled=[74 136 290 956 956 933] members=[5 4] membership=[out out out out in in]",
		},
		{
			name: "values",
			run: func(t *testing.T) string {
				res, err := WithValues(pinUniverse(), xrand.New(19), 8, DefaultOptions())
				return fingerprint(res, err)
			},
			want: "rounds=1529 total=9174 capped=false eps=3.9982341134852404 est=[15.251145060058676 27.31024636753498 39.301801219857317 51.00834263605433 63.011413372755278 75.122637289929372] counts=[1529 1529 1529 1529 1529 1529] settled=[1529 1529 1529 1529 1529 1529]",
		},
		{
			name: "mistakes",
			run: func(t *testing.T) string {
				res, err := WithMistakes(pinUniverse(), xrand.New(23), 0.8, DefaultOptions())
				return fingerprint(res, err)
			},
			want: "rounds=924 total=5529 capped=false eps=6.0656297986660093 est=[15.199448038429717 27.340241908809201 39.215308743278257 51.158974649255207 63.072903319401838 75.320229727204051] counts=[924 924 924 924 924 909] settled=[924 924 924 924 924 909]",
		},
		{
			name: "sum-known",
			run: func(t *testing.T) string {
				var pr partialRecorder
				opts := DefaultOptions()
				opts.OnPartial = pr.hook()
				res, err := SumKnownSizes(pinSumUniverse(), xrand.New(29), opts)
				return fingerprint(res, err) + " partials=" + pr.String()
			},
			want: "rounds=3100 total=8473 capped=false eps=1.9026895505877051 est=[19901.841418532837 87614.455006064789 24994.308114855343 79994.906718798302 52772.0598196629] counts=[1000 2500 500 3100 1373] settled=[1001 2501 501 3100 1373] partials=2@501=24994.308114855343,0@1001=19901.841418532837,4@1373=52772.0598196629,1@2501=87614.455006064789,3@3100=79994.906718798302",
		},
		{
			name: "sum-unknown",
			run: func(t *testing.T) string {
				u := pinSumUniverse()
				est := dataset.NewMembershipFractionEstimator(u)
				res, err := SumUnknownSizes(u, est, xrand.New(31), DefaultOptions())
				return fingerprint(res, err)
			},
			want: "rounds=791077 total=2260388 capped=false eps=0.2638371831135371 est=[2.0963594260296023 9.2343941781541989 2.6240353156049863 8.417076818592669 5.4037833450102948] counts=[791077 325727 791077 325727 26780] settled=[791077 325727 791077 325727 26780]",
		},
		{
			name: "count-unknown",
			run: func(t *testing.T) string {
				u := pinSumUniverse()
				est := dataset.NewMembershipFractionEstimator(u)
				res, err := CountUnknownSizes(u, est, xrand.New(37), DefaultOptions())
				return fingerprint(res, err)
			},
			want: "rounds=8529 total=27786 capped=false eps=0.024455398246295033 est=[0.10493610036346535 0.25295315682281067 0.055926837847344424 0.43428571428571405 0.15565307176045426] counts=[8529 2455 8529 525 7748] settled=[8529 2455 8529 525 7748]",
		},
		{
			name: "multiagg",
			run: func(t *testing.T) string {
				res, err := MultiAgg(pinPairUniverse(), xrand.New(41), DefaultOptions())
				if err != nil {
					return "err:" + err.Error()
				}
				var b strings.Builder
				fmt.Fprintf(&b, "roundsY=%d roundsZ=%d total=%d capped=%v estY=[", res.RoundsY, res.RoundsZ, res.TotalSamples, res.Capped)
				for i, e := range res.EstimatesY {
					if i > 0 {
						b.WriteByte(' ')
					}
					fmt.Fprintf(&b, "%.17g", e)
				}
				b.WriteString("] estZ=[")
				for i, e := range res.EstimatesZ {
					if i > 0 {
						b.WriteByte(' ')
					}
					fmt.Fprintf(&b, "%.17g", e)
				}
				fmt.Fprintf(&b, "] counts=%v", res.SampleCounts)
				return b.String()
			},
			want: "roundsY=482 roundsZ=115 total=2272 capped=false estY=[19.906094786187708 37.987915629497678 55.673093457543104 74.325741570498764] estZ=[79.970693770867641 63.952438238202824 47.845668759500462 32.111264746207617] counts=[550 569 596 557]",
		},
		{
			name: "noindex",
			run: func(t *testing.T) string {
				u := pinUniverse()
				res, err := NoIndex(NewUniverseTupleSource(u), xrand.New(43), DefaultOptions(), 0)
				if err != nil {
					return "err:" + err.Error()
				}
				var b strings.Builder
				fmt.Fprintf(&b, "total=%d capped=%v est=[", res.TotalSamples, res.Capped)
				for i, e := range res.Estimates {
					if i > 0 {
						b.WriteByte(' ')
					}
					fmt.Fprintf(&b, "%.17g", e)
				}
				fmt.Fprintf(&b, "] counts=%v", res.SampleCounts)
				return b.String()
			},
			want: "total=8784 capped=false est=[15.226188793960741 27.356738497696643 39.128505993232928 51.041483428061589 62.72631276879104 75.083287962212381] counts=[1475 1441 1430 1471 1516 1451]",
		},
		{
			name: "noindex-cap",
			run: func(t *testing.T) string {
				u := pinUniverse()
				res, err := NoIndex(NewUniverseTupleSource(u), xrand.New(43), DefaultOptions(), 100)
				if err != nil {
					return "err:" + err.Error()
				}
				return fmt.Sprintf("total=%d capped=%v counts=%v", res.TotalSamples, res.Capped, res.SampleCounts)
			},
			want: "total=100 capped=true counts=[22 11 17 17 21 12]",
		},
	}
}

// TestGoldenPins locks the exact scalar behavior of every algorithm.
func TestGoldenPins(t *testing.T) {
	for _, tc := range pinCases() {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.run(t)
			if tc.want == "" {
				t.Logf("GOLDEN %s: %s", tc.name, got)
				t.Skip("golden not recorded yet")
			}
			if got != tc.want {
				t.Errorf("fingerprint drifted\n got: %s\nwant: %s", got, tc.want)
			}
		})
	}
}
