package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// These tests pin the exact numeric behavior of every round-based algorithm
// on fixed seeds: estimates, sample counts, rounds, partial-result events,
// and trace sequences. The fingerprints below were captured under the
// per-group RNG stream discipline of the parallel round driver (each group
// draws from its own xrand.NewStream keyed by the run seed and the group
// index) at BatchSize ≤ 1 and Workers ≤ 1, so any further refactor of the
// round loop must keep the scalar sequential path bit-for-bit stable —
// and, via TestWorkerInvariance, every Workers/BatchSize combination with
// it. IREFINE now follows the same per-group stream discipline (its pin
// was re-captured when it migrated off the legacy shared stream); NOINDEX
// is genuinely stream-free — table-wide tuple draws consume one shared
// generator in draw order — and keeps its pre-driver scalar fingerprint.

// pinUniverse builds a deterministic 6-group slice universe with means
// roughly 12 apart (uniform ±10 noise), values in [0, 100].
func pinUniverse() *dataset.Universe {
	r := xrand.New(0xfeed)
	groups := make([]dataset.Group, 6)
	for g := range groups {
		mean := 15 + 12*float64(g)
		values := make([]float64, 3000)
		for i := range values {
			values[i] = mean + (r.Float64()-0.5)*20
		}
		groups[g] = dataset.NewSliceGroup(fmt.Sprintf("g%d", g), values)
	}
	return dataset.NewUniverse(100, groups...)
}

// pinSumUniverse has deliberately unequal group sizes so the SUM ordering
// differs from the AVG ordering.
func pinSumUniverse() *dataset.Universe {
	r := xrand.New(0xbeef)
	sizes := []int{1000, 2500, 500, 4000, 1500}
	groups := make([]dataset.Group, len(sizes))
	for g, n := range sizes {
		mean := 20 + 15*float64(g%3)
		values := make([]float64, n)
		for i := range values {
			values[i] = mean + (r.Float64()-0.5)*16
		}
		groups[g] = dataset.NewSliceGroup(fmt.Sprintf("s%d", g), values)
	}
	return dataset.NewUniverse(100, groups...)
}

// pinPairUniverse carries a second aggregate attribute per tuple.
func pinPairUniverse() *dataset.Universe {
	r := xrand.New(0xabcd)
	groups := make([]dataset.Group, 4)
	for g := range groups {
		ys := make([]float64, 2000)
		zs := make([]float64, 2000)
		for i := range ys {
			ys[i] = 20 + 18*float64(g) + (r.Float64()-0.5)*14
			zs[i] = 80 - 16*float64(g) + (r.Float64()-0.5)*14
		}
		groups[g] = dataset.NewSlicePairGroup(fmt.Sprintf("p%d", g), ys, zs)
	}
	return dataset.NewUniverse(100, groups...)
}

// fingerprint renders a result compactly but at full float precision.
func fingerprint(res *Result, err error) string {
	if err != nil {
		return "err:" + err.Error()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "rounds=%d total=%d capped=%v eps=%.17g est=[", res.Rounds, res.TotalSamples, res.Capped, res.FinalEpsilon)
	for i, e := range res.Estimates {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.17g", e)
	}
	b.WriteString("] counts=")
	fmt.Fprintf(&b, "%v settled=%v", res.SampleCounts, res.SettledRound)
	return b.String()
}

// pinCase runs one algorithm configuration and compares its fingerprint.
type pinCase struct {
	name string
	run  func(t *testing.T) string
	want string
}

// partialRecorder captures the OnPartial event sequence.
type partialRecorder struct {
	events []string
}

func (p *partialRecorder) hook() func(int, float64, int, float64) {
	return func(group int, estimate float64, round int, eps float64) {
		p.events = append(p.events, fmt.Sprintf("%d@%d=%.17g", group, round, estimate))
	}
}

func (p *partialRecorder) String() string { return strings.Join(p.events, ",") }

// traceRecorder fingerprints the tracer stream (round, eps, active count,
// cumulative samples).
type traceRecorder struct {
	events []string
}

func (tr *traceRecorder) OnRound(m int, eps float64, active []bool, estimates []float64, total int64) {
	n := 0
	for _, a := range active {
		if a {
			n++
		}
	}
	tr.events = append(tr.events, fmt.Sprintf("%d:%.17g:%d:%d", m, eps, n, total))
}

func (tr *traceRecorder) String() string { return strings.Join(tr.events, ",") }

func pinCases() []pinCase {
	return []pinCase{
		{
			name: "ifocus",
			run: func(t *testing.T) string {
				res, err := IFocus(pinUniverse(), xrand.New(7), DefaultOptions())
				return fingerprint(res, err)
			},
			want: "rounds=1001 total=5699 capped=false eps=5.725406528135057 est=[14.885397685372219 27.445416999858228 39.530414297692133 50.986818222988305 62.779736901504556 74.937832440269403] counts=[876 936 1001 1001 964 921] settled=[876 936 1001 1001 964 921]",
		},
		{
			name: "ifocus-partials-trace",
			run: func(t *testing.T) string {
				opts := DefaultOptions()
				var pr partialRecorder
				var tr traceRecorder
				opts.OnPartial = pr.hook()
				opts.Tracer = &tr
				res, err := IFocus(pinUniverse(), xrand.New(7), opts)
				if err != nil {
					t.Fatal(err)
				}
				return fmt.Sprintf("total=%d partials=%s traceN=%d traceHead=%s traceTail=%s",
					res.TotalSamples, pr.String(), len(tr.events), tr.events[0], tr.events[len(tr.events)-1])
			},
			want: "total=5699 partials=0@876=14.885397685372219,5@921=74.937832440269403,1@936=27.445416999858228,4@964=62.779736901504556,2@1001=39.530414297692133,3@1001=50.986818222988305 traceN=1001 traceHead=1:172.89215172778574:6:6 traceTail=1001:5.725406528135057:0:5699",
		},
		{
			name: "ifocus-with-replacement",
			run: func(t *testing.T) string {
				opts := DefaultOptions()
				opts.WithReplacement = true
				res, err := IFocus(pinUniverse(), xrand.New(11), opts)
				return fingerprint(res, err)
			},
			want: "rounds=1429 total=8196 capped=false eps=5.8987258704429335 est=[14.796751551446437 27.298467758608815 39.103423449899381 51.054404262846155 63.145829834323749 75.334296051574043] counts=[1262 1429 1429 1388 1354 1334] settled=[1262 1429 1429 1388 1354 1334]",
		},
		{
			name: "ifocus-resolution",
			run: func(t *testing.T) string {
				opts := DefaultOptions()
				opts.Resolution = 40
				res, err := IFocus(pinUniverse(), xrand.New(7), opts)
				return fingerprint(res, err)
			},
			want: "rounds=413 total=2478 capped=false eps=9.9972306425406643 est=[14.799720751587939 27.481211869128337 39.608109963201734 50.559023300237939 62.610758804542357 75.20992728762856] counts=[413 413 413 413 413 413] settled=[413 413 413 413 413 413]",
		},
		{
			name: "ifocus-cap",
			run: func(t *testing.T) string {
				vals := []float64{40, 60}
				ga := dataset.NewSliceGroup("a", vals)
				gb := dataset.NewSliceGroup("b", vals)
				u := dataset.NewUniverse(100, ga, gb)
				opts := DefaultOptions()
				opts.WithReplacement = true
				opts.MaxRounds = 50
				res, err := IFocus(u, xrand.New(3), opts)
				return fingerprint(res, err)
			},
			want: "rounds=50 total=100 capped=true eps=27.58230629030415 est=[49.999999999999986 50.400000000000006] counts=[50 50] settled=[50 50]",
		},
		{
			name: "ifocus-exhaust",
			run: func(t *testing.T) string {
				ga := dataset.NewSliceGroup("a", []float64{48, 50, 52})
				gb := dataset.NewSliceGroup("b", []float64{49, 51, 53})
				u := dataset.NewUniverse(100, ga, gb)
				res, err := IFocus(u, xrand.New(5), DefaultOptions())
				return fingerprint(res, err)
			},
			want: "rounds=4 total=6 capped=false eps=0 est=[50 51] counts=[3 3] settled=[4 4]",
		},
		{
			name: "roundrobin",
			run: func(t *testing.T) string {
				var tr traceRecorder
				opts := DefaultOptions()
				opts.Tracer = &tr
				res, err := RoundRobin(pinUniverse(), xrand.New(7), opts)
				return fingerprint(res, err) + " traceTail=" + tr.events[len(tr.events)-1]
			},
			want: "rounds=1001 total=6006 capped=false eps=5.725406528135057 est=[14.821129536215993 27.386391668186199 39.530414297692133 50.986818222988305 62.837639019349716 74.946690944749719] counts=[1001 1001 1001 1001 1001 1001] settled=[1001 1001 1001 1001 1001 1001] traceTail=1001:5.725406528135057:6:6006",
		},
		{
			name: "roundrobin-cap",
			run: func(t *testing.T) string {
				vals := []float64{40, 60}
				u := dataset.NewUniverse(100,
					dataset.NewSliceGroup("a", vals), dataset.NewSliceGroup("b", vals))
				opts := DefaultOptions()
				opts.WithReplacement = true
				opts.MaxRounds = 40
				res, err := RoundRobin(u, xrand.New(3), opts)
				return fingerprint(res, err)
			},
			want: "rounds=40 total=80 capped=true eps=30.598963256683838 est=[50.500000000000007 50.500000000000021] counts=[40 40] settled=[40 40]",
		},
		{
			name: "irefine",
			run: func(t *testing.T) string {
				res, err := IRefine(pinUniverse(), xrand.New(7), DefaultOptions())
				return fingerprint(res, err)
			},
			// Re-pinned when IREFINE moved off the legacy shared RNG stream
			// onto the per-group stream discipline of the round driver (one
			// xrand.NewStream per group, keyed by seed and group index).
			want: "rounds=4 total=18000 capped=false eps=3.125 est=[15.129936920831994 27.151697486879321 39.034117342387084 51.082123523025523 63.056571800413053 75.26738981060241] counts=[3000 3000 3000 3000 3000 3000] settled=[4 4 4 4 4 4]",
		},
		{
			name: "trend",
			run: func(t *testing.T) string {
				var pr partialRecorder
				opts := DefaultOptions()
				opts.OnPartial = pr.hook()
				res, err := Trend(pinUniverse(), xrand.New(9), opts)
				return fingerprint(res, err) + " partials=" + pr.String()
			},
			want: "rounds=958 total=5627 capped=false eps=5.9112365565225016 est=[14.98882187147681 27.306033580766865 39.132405718614031 51.151750321062629 63.119581530719984 75.302182658046618] counts=[906 958 958 942 942 921] settled=[906 958 958 942 942 921] partials=0@906=14.98882187147681,5@921=75.302182658046618,3@942=51.151750321062629,4@942=63.119581530719984,1@958=27.306033580766865,2@958=39.132405718614031",
		},
		{
			name: "chloropleth-grid",
			run: func(t *testing.T) string {
				res, err := Chloropleth(pinUniverse(), xrand.New(13), GridAdjacency(2, 3), DefaultOptions())
				return fingerprint(res, err)
			},
			want: "rounds=958 total=5607 capped=false eps=5.9112365565225016 est=[14.984002034767625 27.427932275356579 39.399712065251315 50.980711637646031 62.803914042869067 75.028368150787557] counts=[889 943 943 958 958 916] settled=[889 943 943 958 958 916]",
		},
		{
			name: "topt",
			run: func(t *testing.T) string {
				res, err := TopT(pinUniverse(), xrand.New(17), 2, DefaultOptions())
				if err != nil {
					return "err:" + err.Error()
				}
				return fingerprint(&res.Result, nil) + fmt.Sprintf(" members=%v membership=%v", res.Members, res.Membership)
			},
			want: "rounds=955 total=3312 capped=false eps=5.9245838577267795 est=[14.642704383266405 27.920132987304026 39.137134493607029 50.955908795951935 62.808589247053384 75.435037961539962] counts=[77 149 309 955 955 867] settled=[77 149 309 955 955 867] members=[5 4] membership=[out out out out in in]",
		},
		{
			name: "values",
			run: func(t *testing.T) string {
				res, err := WithValues(pinUniverse(), xrand.New(19), 8, DefaultOptions())
				return fingerprint(res, err)
			},
			want: "rounds=1529 total=9174 capped=false eps=3.9982341134852404 est=[15.031381386865853 27.228184910751043 39.292486434210311 50.89334030539365 62.914903083518503 75.063433175433246] counts=[1529 1529 1529 1529 1529 1529] settled=[1529 1529 1529 1529 1529 1529]",
		},
		{
			name: "mistakes",
			run: func(t *testing.T) string {
				res, err := WithMistakes(pinUniverse(), xrand.New(23), 0.8, DefaultOptions())
				return fingerprint(res, err)
			},
			want: "rounds=926 total=5556 capped=false eps=6.0563531980809024 est=[15.255658839387243 27.285092890904025 38.788664180034843 50.977217026443306 63.017577074023002 75.145692751150122] counts=[926 926 926 926 926 926] settled=[926 926 926 926 926 926]",
		},
		{
			name: "sum-known",
			run: func(t *testing.T) string {
				var pr partialRecorder
				opts := DefaultOptions()
				opts.OnPartial = pr.hook()
				res, err := SumKnownSizes(pinSumUniverse(), xrand.New(29), opts)
				return fingerprint(res, err) + " partials=" + pr.String()
			},
			want: "rounds=3091 total=8444 capped=false eps=1.9148810983631754 est=[19901.841418532815 87614.455006064483 24994.308114855405 79952.937308221633 52686.720643273205] counts=[1000 2500 500 3091 1353] settled=[1001 2501 501 3091 1353] partials=2@501=24994.308114855405,0@1001=19901.841418532815,4@1353=52686.720643273205,1@2501=87614.455006064483,3@3091=79952.937308221633",
		},
		{
			name: "sum-unknown",
			run: func(t *testing.T) string {
				u := pinSumUniverse()
				est := dataset.NewMembershipFractionEstimator(u)
				res, err := SumUnknownSizes(u, est, xrand.New(31), DefaultOptions())
				return fingerprint(res, err)
			},
			want: "rounds=822242 total=2389578 capped=false eps=0.25885559409995451 est=[2.1130310308966389 9.2074647746106173 2.6307867786280554 8.4295214774856184 5.5348622144668633] counts=[822242 360022 822242 360022 25050] settled=[822242 360022 822242 360022 25050]",
		},
		{
			name: "count-unknown",
			run: func(t *testing.T) string {
				u := pinSumUniverse()
				est := dataset.NewMembershipFractionEstimator(u)
				res, err := CountUnknownSizes(u, est, xrand.New(37), DefaultOptions())
				return fingerprint(res, err)
			},
			want: "rounds=8146 total=26015 capped=false eps=0.025011218108140987 est=[0.10299533513380775 0.25935653315824048 0.052909403388165917 0.4242878560719644 0.15544935616620151] counts=[8146 1523 8146 667 7533] settled=[8146 1523 8146 667 7533]",
		},
		{
			name: "multiagg",
			run: func(t *testing.T) string {
				res, err := MultiAgg(pinPairUniverse(), xrand.New(41), DefaultOptions())
				if err != nil {
					return "err:" + err.Error()
				}
				var b strings.Builder
				fmt.Fprintf(&b, "roundsY=%d roundsZ=%d total=%d capped=%v estY=[", res.RoundsY, res.RoundsZ, res.TotalSamples, res.Capped)
				for i, e := range res.EstimatesY {
					if i > 0 {
						b.WriteByte(' ')
					}
					fmt.Fprintf(&b, "%.17g", e)
				}
				b.WriteString("] estZ=[")
				for i, e := range res.EstimatesZ {
					if i > 0 {
						b.WriteByte(' ')
					}
					fmt.Fprintf(&b, "%.17g", e)
				}
				fmt.Fprintf(&b, "] counts=%v", res.SampleCounts)
				return b.String()
			},
			want: "roundsY=471 roundsZ=118 total=2259 capped=false estY=[19.86358231128737 38.038985011134983 56.206855817817441 74.167903108316338] estZ=[80.048653525178977 64.386516614535807 48.076473959955614 31.877746595555159] counts=[574 583 551 551]",
		},
		{
			name: "noindex",
			run: func(t *testing.T) string {
				u := pinUniverse()
				res, err := NoIndex(NewUniverseTupleSource(u), xrand.New(43), DefaultOptions(), 0)
				if err != nil {
					return "err:" + err.Error()
				}
				var b strings.Builder
				fmt.Fprintf(&b, "total=%d capped=%v est=[", res.TotalSamples, res.Capped)
				for i, e := range res.Estimates {
					if i > 0 {
						b.WriteByte(' ')
					}
					fmt.Fprintf(&b, "%.17g", e)
				}
				fmt.Fprintf(&b, "] counts=%v", res.SampleCounts)
				return b.String()
			},
			want: "total=8784 capped=false est=[15.226188793960741 27.356738497696643 39.128505993232928 51.041483428061589 62.72631276879104 75.083287962212381] counts=[1475 1441 1430 1471 1516 1451]",
		},
		{
			name: "noindex-cap",
			run: func(t *testing.T) string {
				u := pinUniverse()
				res, err := NoIndex(NewUniverseTupleSource(u), xrand.New(43), DefaultOptions(), 100)
				if err != nil {
					return "err:" + err.Error()
				}
				return fmt.Sprintf("total=%d capped=%v counts=%v", res.TotalSamples, res.Capped, res.SampleCounts)
			},
			want: "total=100 capped=true counts=[22 11 17 17 21 12]",
		},
	}
}

// TestGoldenPins locks the exact scalar behavior of every algorithm.
func TestGoldenPins(t *testing.T) {
	for _, tc := range pinCases() {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.run(t)
			if tc.want == "" {
				t.Logf("GOLDEN %s: %s", tc.name, got)
				t.Skip("golden not recorded yet")
			}
			if got != tc.want {
				t.Errorf("fingerprint drifted\n got: %s\nwant: %s", got, tc.want)
			}
		})
	}
}
