package core

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// benchUniverse is a 50-group × 1M-row slice universe of identically
// distributed groups (uniform on [0, 100)). Means differ only by sampling
// noise of the populations, so no interval ever separates within the
// benchmark's round cap and every run draws exactly its per-group budget —
// the fixed-work setup the throughput comparison needs. Built once
// (~400 MB plus permutation state) and shared across sub-benchmarks.
var benchUniverse = sync.OnceValue(func() *dataset.Universe {
	const (
		k    = 50
		rows = 1_000_000
	)
	r := xrand.New(0x5ca1e)
	groups := make([]dataset.Group, k)
	for g := range groups {
		values := make([]float64, rows)
		for i := range values {
			values[i] = 100 * r.Float64()
		}
		groups[g] = dataset.NewSliceGroup(fmt.Sprintf("g%02d", g), values)
	}
	return dataset.NewUniverse(100, groups...)
})

// BenchmarkIFocus measures end-to-end sampling throughput (samples/sec) of
// the IFOCUS round loop at increasing block sizes on the 50×1M universe.
// The acceptance bar for the batching refactor is ≥2× samples/sec at
// batch=64 over batch=1.
func BenchmarkIFocus(b *testing.B) {
	const perGroup = 20_000 // samples per group per run
	for _, batch := range []int{1, 64, 256, BatchAuto} {
		name := fmt.Sprintf("batch=%d", batch)
		if batch == BatchAuto {
			name = "batch=auto"
		}
		b.Run(name, func(b *testing.B) {
			u := benchUniverse()
			opts := DefaultOptions()
			opts.BatchSize = batch
			if batch == BatchAuto {
				// The doubling schedule reaches the per-group depth in
				// however many rounds its cumulative sum needs.
				for cum := 0; cum < perGroup; {
					opts.MaxRounds++
					cum += autoBatchSize(opts.MaxRounds)
				}
			} else {
				opts.MaxRounds = (perGroup + batch - 1) / batch
			}
			var total int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := IFocus(u, xrand.New(uint64(i)+1), opts)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Capped {
					b.Fatal("benchmark run separated early; fixed-work assumption broken")
				}
				total += res.TotalSamples
			}
			b.StopTimer()
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/sec")
			b.ReportMetric(float64(total)/float64(b.N), "samples/op")
		})
	}
}

// BenchmarkIFocusParallel measures the parallel round driver: the same
// fixed-work IFOCUS run at batch=256 with the per-group block draws fanned
// across increasing worker counts. Results are bit-identical at every
// worker count (TestWorkerInvariance), so samples/sec is directly
// comparable across sub-benchmarks; the CI bench job records workers=1
// against workers=ncpu in BENCH_core.json to track the scaling trajectory.
// The acceptance bar for the parallel driver is ≥3× samples/sec at
// workers=8 over workers=1 on 8+ core hardware.
func BenchmarkIFocusParallel(b *testing.B) {
	const (
		perGroup = 20_000
		batch    = 256
	)
	cases := []struct {
		name    string
		workers int
	}{{"workers=1", 1}, {"workers=8", 8}, {"workers=auto", 0}}
	if n := runtime.NumCPU(); n != 1 && n != 8 {
		cases = append(cases, struct {
			name    string
			workers int
		}{fmt.Sprintf("workers=ncpu(%d)", n), n})
	}
	for _, tc := range cases {
		workers := tc.workers
		b.Run(tc.name, func(b *testing.B) {
			u := benchUniverse()
			opts := DefaultOptions()
			opts.BatchSize = batch
			opts.Workers = workers
			opts.MaxRounds = (perGroup + batch - 1) / batch
			var total int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := IFocus(u, xrand.New(uint64(i)+1), opts)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Capped {
					b.Fatal("benchmark run separated early; fixed-work assumption broken")
				}
				total += res.TotalSamples
			}
			b.StopTimer()
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/sec")
			b.ReportMetric(float64(total)/float64(b.N), "samples/op")
		})
	}
}

// BenchmarkIngestCSV measures sharded CSV ingestion throughput (rows/sec)
// at increasing worker counts over an in-memory payload.
func BenchmarkIngestCSV(b *testing.B) {
	payload := func() []byte {
		var sb strings.Builder
		r := xrand.New(0xc5f)
		for i := 0; i < 2_000_000; i++ {
			fmt.Fprintf(&sb, "g%02d,%.4f\n", i%50, 100*r.Float64())
		}
		return []byte(sb.String())
	}()
	counts := []int{1, 8}
	if n := runtime.NumCPU(); n != 1 && n != 8 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var rows int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tb, err := dataset.ReadCSVWorkers(bytes.NewReader(payload), workers)
				if err != nil {
					b.Fatal(err)
				}
				rows += tb.NumRows()
			}
			b.StopTimer()
			b.ReportMetric(float64(rows)/b.Elapsed().Seconds(), "rows/sec")
		})
	}
}

// BenchmarkIFocusGrowth measures the geometric-block schedule at the same
// sampling depth.
func BenchmarkIFocusGrowth(b *testing.B) {
	u := benchUniverse()
	opts := DefaultOptions()
	opts.BatchSize = 64
	opts.RoundGrowth = 1.1
	// With growth the cumulative count multiplies by ~1.1 per round, so a
	// small round cap reaches the same ~20k/group depth.
	opts.MaxRounds = 62
	var total int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := IFocus(u, xrand.New(uint64(i)+1), opts)
		if err != nil {
			b.Fatal(err)
		}
		total += res.TotalSamples
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/sec")
	b.ReportMetric(float64(total)/float64(b.N), "samples/op")
}
