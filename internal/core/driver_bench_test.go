package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// benchUniverse is a 50-group × 1M-row slice universe of identically
// distributed groups (uniform on [0, 100)). Means differ only by sampling
// noise of the populations, so no interval ever separates within the
// benchmark's round cap and every run draws exactly its per-group budget —
// the fixed-work setup the throughput comparison needs. Built once
// (~400 MB plus permutation state) and shared across sub-benchmarks.
var benchUniverse = sync.OnceValue(func() *dataset.Universe {
	const (
		k    = 50
		rows = 1_000_000
	)
	r := xrand.New(0x5ca1e)
	groups := make([]dataset.Group, k)
	for g := range groups {
		values := make([]float64, rows)
		for i := range values {
			values[i] = 100 * r.Float64()
		}
		groups[g] = dataset.NewSliceGroup(fmt.Sprintf("g%02d", g), values)
	}
	return dataset.NewUniverse(100, groups...)
})

// BenchmarkIFocus measures end-to-end sampling throughput (samples/sec) of
// the IFOCUS round loop at increasing block sizes on the 50×1M universe.
// The acceptance bar for the batching refactor is ≥2× samples/sec at
// batch=64 over batch=1.
func BenchmarkIFocus(b *testing.B) {
	const perGroup = 20_000 // samples per group per run
	for _, batch := range []int{1, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			u := benchUniverse()
			opts := DefaultOptions()
			opts.BatchSize = batch
			opts.MaxRounds = (perGroup + batch - 1) / batch
			var total int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := IFocus(u, xrand.New(uint64(i)+1), opts)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Capped {
					b.Fatal("benchmark run separated early; fixed-work assumption broken")
				}
				total += res.TotalSamples
			}
			b.StopTimer()
			b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/sec")
			b.ReportMetric(float64(total)/float64(b.N), "samples/op")
		})
	}
}

// BenchmarkIFocusGrowth measures the geometric-block schedule at the same
// sampling depth.
func BenchmarkIFocusGrowth(b *testing.B) {
	u := benchUniverse()
	opts := DefaultOptions()
	opts.BatchSize = 64
	opts.RoundGrowth = 1.1
	// With growth the cumulative count multiplies by ~1.1 per round, so a
	// small round cap reaches the same ~20k/group depth.
	opts.MaxRounds = 62
	var total int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := IFocus(u, xrand.New(uint64(i)+1), opts)
		if err != nil {
			b.Fatal(err)
		}
		total += res.TotalSamples
	}
	b.StopTimer()
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "samples/sec")
	b.ReportMetric(float64(total)/float64(b.N), "samples/op")
}
