package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// Membership classifies a group's relation to the top-t set.
type Membership int8

// Membership values.
const (
	// MemberUnknown means the confidence intervals cannot yet decide.
	MemberUnknown Membership = iota
	// MemberIn means the group is certainly among the top t.
	MemberIn
	// MemberOut means the group is certainly not among the top t.
	MemberOut
)

// String returns a short label for the membership state.
func (m Membership) String() string {
	switch m {
	case MemberIn:
		return "in"
	case MemberOut:
		return "out"
	default:
		return "unknown"
	}
}

// TopTResult extends Result with the membership classification of
// the top-t computation.
type TopTResult struct {
	Result
	// Members holds the indices of the top-t groups, ordered from largest
	// estimate down.
	Members []int
	// Membership is the final classification of every group.
	Membership []Membership
}

// TopT solves Problem 4 (AVG-ORDER-TOP-t): identify the t groups with the
// largest true means and order them correctly among themselves, with
// probability at least 1−δ. Groups stay active only while (a) their top-t
// membership is uncertain, or (b) they are certain members whose interval
// still overlaps another potential member's interval (so their relative
// order within the top-t is unresolved). Certain non-members stop being
// sampled immediately — the big saving when k is large and t small.
func TopT(u *dataset.Universe, rng *xrand.RNG, t int, opts Options) (*TopTResult, error) {
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	k := u.K()
	if t <= 0 || t > k {
		return nil, fmt.Errorf("core: top-t requires 1 <= t <= k, got t=%d with k=%d", t, k)
	}
	membership := make([]Membership, k)
	los := make([]float64, k)
	his := make([]float64, k)
	toSettle := make([]int, 0, k)

	lp := newRoundLoop(u, rng, &opts, roundAlgo{
		notifyPartials: true,
		capNotify:      true,
		decide: func(lp *roundLoop) {
			// Classify membership from the current intervals.
			// certainlyAbove counts groups whose entire interval lies above
			// group i's interval; possiblyAbove counts groups that *might*
			// lie above it.
			for i := 0; i < k; i++ {
				w := lp.width(i)
				los[i], his[i] = lp.estimates[i]-w, lp.estimates[i]+w
			}
			for i := 0; i < k; i++ {
				if membership[i] != MemberUnknown {
					continue
				}
				certainlyAbove, possiblyAbove := 0, 0
				for j := 0; j < k; j++ {
					if j == i {
						continue
					}
					if los[j] > his[i] {
						certainlyAbove++
					}
					if his[j] > los[i] {
						possiblyAbove++
					}
				}
				if certainlyAbove >= t {
					membership[i] = MemberOut
				} else if possiblyAbove <= t-1 {
					membership[i] = MemberIn
				}
			}

			// Settle: certain non-members stop immediately; certain members
			// stop once their interval is disjoint from every other
			// potential member's interval (their in-set rank is then fixed).
			toSettle = toSettle[:0]
			for i := 0; i < k; i++ {
				if !lp.active[i] {
					continue
				}
				switch membership[i] {
				case MemberOut:
					toSettle = append(toSettle, i)
				case MemberIn:
					disjoint := true
					for j := 0; j < k; j++ {
						if j == i || membership[j] == MemberOut {
							continue
						}
						if los[i] <= his[j] && los[j] <= his[i] {
							disjoint = false
							break
						}
					}
					if disjoint {
						toSettle = append(toSettle, i)
					}
				}
			}
			for _, i := range toSettle {
				lp.settle(i, lp.groupEps(i), true)
			}
			lp.resolutionExit()
		},
	})
	if err := lp.run(); err != nil {
		return nil, err
	}
	res := &TopTResult{Result: *lp.result(), Membership: membership}

	// Any group still unclassified (possible under the resolution or cap
	// exits) is assigned by final estimate.
	rank := Ranking(res.Estimates)
	taken := 0
	for _, i := range rank {
		if taken < t && membership[i] != MemberOut {
			if membership[i] == MemberUnknown {
				membership[i] = MemberIn
			}
			taken++
		} else if membership[i] == MemberUnknown {
			membership[i] = MemberOut
		}
	}
	for _, i := range rank {
		if membership[i] == MemberIn && len(res.Members) < t {
			res.Members = append(res.Members, i)
		}
	}
	return res, nil
}
