package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// Membership classifies a group's relation to the top-t set.
type Membership int8

// Membership values.
const (
	// MemberUnknown means the confidence intervals cannot yet decide.
	MemberUnknown Membership = iota
	// MemberIn means the group is certainly among the top t.
	MemberIn
	// MemberOut means the group is certainly not among the top t.
	MemberOut
)

// String returns a short label for the membership state.
func (m Membership) String() string {
	switch m {
	case MemberIn:
		return "in"
	case MemberOut:
		return "out"
	default:
		return "unknown"
	}
}

// TopTResult extends Result with the membership classification of
// the top-t computation.
type TopTResult struct {
	Result
	// Members holds the indices of the top-t groups, ordered from largest
	// estimate down.
	Members []int
	// Membership is the final classification of every group.
	Membership []Membership
}

// TopT solves Problem 4 (AVG-ORDER-TOP-t): identify the t groups with the
// largest true means and order them correctly among themselves, with
// probability at least 1−δ. Groups stay active only while (a) their top-t
// membership is uncertain, or (b) they are certain members whose interval
// still overlaps another potential member's interval (so their relative
// order within the top-t is unresolved). Certain non-members stop being
// sampled immediately — the big saving when k is large and t small.
func TopT(u *dataset.Universe, rng *xrand.RNG, t int, opts Options) (*TopTResult, error) {
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	k := u.K()
	if t <= 0 || t > k {
		return nil, fmt.Errorf("core: top-t requires 1 <= t <= k, got t=%d with k=%d", t, k)
	}
	sched := newSchedule(u, &opts)
	sampler := dataset.NewSampler(u, rng, !opts.WithReplacement)

	estimates := make([]float64, k)
	active := make([]bool, k)
	settled := make([]int, k)
	frozenEps := make([]float64, k)
	membership := make([]Membership, k)

	for i := 0; i < k; i++ {
		estimates[i] = sampler.Draw(i)
		active[i] = true
	}
	res := &TopTResult{
		Result:     Result{Estimates: estimates, SettledRound: settled, Rounds: 1},
		Membership: membership,
	}
	numActive := k
	m := 1

	width := func(i int, liveEps float64) float64 {
		if active[i] {
			return liveEps
		}
		return frozenEps[i]
	}
	settle := func(i, round int, eps float64) {
		active[i] = false
		settled[i] = round
		frozenEps[i] = eps
		numActive--
		if opts.OnPartial != nil {
			opts.OnPartial(i, estimates[i], round)
		}
	}

	var eps float64
	for numActive > 0 {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		m++
		var maxN int64
		if !opts.WithReplacement {
			maxN = maxActiveSize(u, active)
		}
		eps = sched.EpsilonN(m, maxN) / opts.HeuristicFactor

		for i := 0; i < k; i++ {
			if !active[i] {
				continue
			}
			if !opts.WithReplacement {
				if n := u.Groups[i].Size(); n > 0 && int64(m) > n {
					settle(i, m, 0)
					continue
				}
			}
			x := sampler.Draw(i)
			estimates[i] = float64(m-1)/float64(m)*estimates[i] + x/float64(m)
		}

		// Classify membership from the current intervals. certainlyAbove[i]
		// counts groups whose entire interval lies above group i's interval;
		// possiblyAbove[i] counts groups that *might* lie above it.
		los := make([]float64, k)
		his := make([]float64, k)
		for i := 0; i < k; i++ {
			w := width(i, eps)
			los[i], his[i] = estimates[i]-w, estimates[i]+w
		}
		for i := 0; i < k; i++ {
			if membership[i] != MemberUnknown {
				continue
			}
			certainlyAbove, possiblyAbove := 0, 0
			for j := 0; j < k; j++ {
				if j == i {
					continue
				}
				if los[j] > his[i] {
					certainlyAbove++
				}
				if his[j] > los[i] {
					possiblyAbove++
				}
			}
			if certainlyAbove >= t {
				membership[i] = MemberOut
			} else if possiblyAbove <= t-1 {
				membership[i] = MemberIn
			}
		}

		// Settle: certain non-members stop immediately; certain members stop
		// once their interval is disjoint from every other potential
		// member's interval (their in-set rank is then fixed).
		var toSettle []int
		for i := 0; i < k; i++ {
			if !active[i] {
				continue
			}
			switch membership[i] {
			case MemberOut:
				toSettle = append(toSettle, i)
			case MemberIn:
				disjoint := true
				for j := 0; j < k; j++ {
					if j == i || membership[j] == MemberOut {
						continue
					}
					if los[i] <= his[j] && los[j] <= his[i] {
						disjoint = false
						break
					}
				}
				if disjoint {
					toSettle = append(toSettle, i)
				}
			}
		}
		for _, i := range toSettle {
			settle(i, m, eps)
		}
		if opts.Resolution > 0 && eps < opts.Resolution/4 {
			for i := 0; i < k; i++ {
				if active[i] {
					settle(i, m, eps)
				}
			}
		}
		if opts.Tracer != nil {
			opts.Tracer.OnRound(m, eps, active, estimates, sampler.Total())
		}
		if opts.MaxRounds > 0 && m >= opts.MaxRounds && numActive > 0 {
			res.Capped = true
			for i := 0; i < k; i++ {
				if active[i] {
					settle(i, m, eps)
				}
			}
		}
	}

	// Any group still unclassified (possible under the resolution or cap
	// exits) is assigned by final estimate.
	rank := Ranking(estimates)
	taken := 0
	for _, i := range rank {
		if taken < t && membership[i] != MemberOut {
			if membership[i] == MemberUnknown {
				membership[i] = MemberIn
			}
			taken++
		} else if membership[i] == MemberUnknown {
			membership[i] = MemberOut
		}
	}
	for _, i := range rank {
		if membership[i] == MemberIn && len(res.Members) < t {
			res.Members = append(res.Members, i)
		}
	}

	res.Rounds = m
	res.FinalEpsilon = eps
	res.TotalSamples = sampler.Total()
	res.SampleCounts = append([]int64(nil), sampler.Counts()...)
	return res, nil
}
