package core

import (
	"fmt"

	"repro/internal/conc"
	"repro/internal/xrand"
)

// CellSource models the multiple-group-by setting of §6.3.4 with an index
// on X only: the visualization groups by (X, Z), but the engine can only
// target samples by X. Drawing from stratum x returns a random tuple's Z
// value alongside its Y value, so each draw lands in one (x, z) cell.
type CellSource interface {
	// NumX returns the number of indexable strata (values of X).
	NumX() int
	// NumZ returns the number of values of the unindexed attribute Z.
	NumZ() int
	// C bounds every Y value: all values lie in [0, C].
	C() float64
	// Draw samples one random tuple from stratum x, returning its z and y.
	Draw(x int, r *xrand.RNG) (z int, y float64)
}

// MultiGroupByResult reports per-cell estimates for the (X, Z) cross
// product. Cells never observed are reported with Counts 0 and NaN-free
// zero estimates.
type MultiGroupByResult struct {
	// Estimates[x][z] is the AVG(Y) estimate of cell (x, z).
	Estimates [][]float64
	// Counts[x][z] is the number of samples that landed in the cell.
	Counts [][]int64
	// TotalSamples is the total draws across strata.
	TotalSamples int64
	// Capped reports a maxDraws exit; the guarantee is void.
	Capped bool
}

// MultiGroupBy solves §6.3.4: ordering-guaranteed estimation of the cells
// of GROUP BY X, Z when only X is indexed. A stratum X = x stays active as
// long as *some* cell (x, z) still has a confidence interval overlapping
// another cell's interval; each round draws one tuple from every active
// stratum, which refines whichever of its cells the tuple lands in. Cell
// intervals use the per-cell sample count under the anytime schedule, so
// the union bound covers all NumX×NumZ cells.
//
// maxDraws caps total draws (0 = unlimited). As the paper notes, the
// sample complexity exceeds the jointly-indexed case because a stratum
// keeps paying for its already-settled cells while any one cell is
// contended.
func MultiGroupBy(src CellSource, rng *xrand.RNG, opts Options, maxDraws int64) (*MultiGroupByResult, error) {
	kx, kz := src.NumX(), src.NumZ()
	if kx <= 0 || kz <= 0 {
		return nil, fmt.Errorf("core: multi-group-by needs positive strata and cell counts")
	}
	if opts.Delta <= 0 || opts.Delta >= 1 {
		return nil, fmt.Errorf("core: delta must be in (0,1), got %v", opts.Delta)
	}
	if kind, err := conc.ParseKind(string(opts.Bound)); err != nil {
		return nil, err
	} else if kind != conc.KindHoeffding {
		// Cells are discovered as tuples land, so there is no per-cell
		// moment accounting to feed a variance-adaptive bound yet; reject
		// rather than silently running the default schedule.
		return nil, fmt.Errorf("core: multiple group-by supports the default %s bound only, got %s", conc.KindHoeffding, kind)
	}
	if opts.Kappa == 0 {
		opts.Kappa = 1
	}
	if opts.HeuristicFactor == 0 {
		opts.HeuristicFactor = 1
	}
	cells := kx * kz
	// Per-cell budget δ/(kx·kz); draws are with replacement at the stratum
	// level so the plain schedule applies.
	sched := conc.MustSchedule(src.C(), cells, opts.Delta, opts.Kappa, 0)

	est := make([][]float64, kx)
	cnt := make([][]int64, kx)
	for x := range est {
		est[x] = make([]float64, kz)
		cnt[x] = make([]int64, kz)
	}
	res := &MultiGroupByResult{Estimates: est, Counts: cnt}
	activeX := make([]bool, kx)
	for x := range activeX {
		activeX[x] = true
	}
	numActive := kx
	var total int64

	// flat index helpers for the interval check.
	type cellIv struct {
		lo, hi float64
		seen   bool
	}
	ivs := make([]cellIv, cells)

	round := 0
	for numActive > 0 {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		round++
		for x := 0; x < kx; x++ {
			if !activeX[x] {
				continue
			}
			z, y := src.Draw(x, rng)
			if z < 0 || z >= kz {
				return nil, fmt.Errorf("core: stratum %d produced invalid z=%d", x, z)
			}
			cnt[x][z]++
			m := float64(cnt[x][z])
			est[x][z] = (m-1)/m*est[x][z] + y/m
			total++
		}
		if maxDraws > 0 && total >= maxDraws {
			res.Capped = true
			break
		}
		// Interval refresh. A cell that has never been sampled keeps the
		// whole domain as its interval (its stratum cannot settle yet).
		if round%4 != 0 {
			continue // amortize the O(cells²)-ish check
		}
		for x := 0; x < kx; x++ {
			for z := 0; z < kz; z++ {
				i := x*kz + z
				w := sched.EpsilonN(int(cnt[x][z]), 0) / opts.HeuristicFactor
				ivs[i] = cellIv{est[x][z] - w, est[x][z] + w, cnt[x][z] > 0}
			}
		}
		resolved := func(i int) bool {
			if !ivs[i].seen {
				return false
			}
			if opts.Resolution > 0 && ivs[i].hi-ivs[i].lo < opts.Resolution/2 {
				return true
			}
			for j := range ivs {
				if j == i {
					continue
				}
				if ivs[i].lo <= ivs[j].hi && ivs[j].lo <= ivs[i].hi {
					return false
				}
			}
			return true
		}
		for x := 0; x < kx; x++ {
			if !activeX[x] {
				continue
			}
			done := true
			for z := 0; z < kz; z++ {
				if !resolved(x*kz + z) {
					done = false
					break
				}
			}
			if done {
				activeX[x] = false
				numActive--
			}
		}
	}
	res.TotalSamples = total
	return res, nil
}
