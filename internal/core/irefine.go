package core

import (
	"repro/internal/conc"
	"repro/internal/dataset"
	"repro/internal/xrand"
)

// IRefine runs Algorithm 3 of the paper: an interval-halving alternative to
// IFOCUS built on the plain Chernoff–Hoeffding bound. Each group maintains an
// estimate with half-width ε_i and failure budget δ_i; while any group's
// interval overlaps another's, every still-active group halves both (ε_i/2,
// δ_i/2) and draws a fresh batch of c²/(2ε_i²)·ln(2/δ_i) samples
// (EstimateMean, Algorithm 2). Correct with probability 1−δ but aggressive:
// its sample complexity carries a log(1/η) factor where IFOCUS pays only
// log log(1/η), so it is provably non-optimal (Theorem 3.10).
//
// Setting opts.Resolution > 0 yields IREFINE-R, which stops refining a group
// once its interval half-width drops below r/4.
//
// With opts.Bound set to an empirical-Bernstein kind, each re-estimation
// becomes variance-adaptive: instead of committing to the Hoeffding batch
// size up front, the group draws geometrically growing chunks and stops as
// soon as the empirical-Bernstein radius certifies the target width — far
// earlier for low-spread groups.
//
// Draws follow the per-group stream discipline of the round driver: every
// group consumes its own seed-derived RNG stream (dataset.NewStreamSampler),
// so a group's samples depend only on the run seed, its index, and its own
// draw count, never on the other groups' batch sizes.
func IRefine(u *dataset.Universe, rng *xrand.RNG, opts Options) (*Result, error) {
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	k := u.K()
	sampler := dataset.NewStreamSampler(u, rng.Uint64(), !opts.WithReplacement)
	adaptive := opts.Bound == conc.KindBernstein || opts.Bound == conc.KindBernsteinFinite

	estimates := make([]float64, k)
	epsilons := make([]float64, k)
	deltas := make([]float64, k)
	active := make([]bool, k)
	settled := make([]int, k)
	isolated := make([]bool, k)
	var orderBuf []int
	buf := make([]float64, drawChunk)

	// Initialization (Lines 1–4): the whole domain is the first interval.
	for i := 0; i < k; i++ {
		estimates[i] = u.C / 2
		epsilons[i] = u.C / 2
		deltas[i] = opts.Delta / (2 * float64(k))
		active[i] = true
	}

	res := &Result{Estimates: estimates, SettledRound: settled}
	numActive := k
	round := 0
	for numActive > 0 {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		round++
		for i := 0; i < k; i++ {
			if !active[i] {
				continue
			}
			// Halve the target width and failure budget, then re-estimate
			// (Lines 8–9). The divisor includes the heuristic factor so the
			// Figure 5 experiments can shrink faster than theory allows.
			epsilons[i] /= 2
			deltas[i] /= 2
			if adaptive {
				estimates[i] = estimateMeanEB(sampler, i, u.C, epsilons[i]*opts.HeuristicFactor, deltas[i], buf)
			} else {
				estimates[i] = estimateMean(sampler, i, u.C, epsilons[i]*opts.HeuristicFactor, deltas[i], buf)
			}
		}

		// Deactivate groups whose intervals no longer intersect any other
		// group's interval (Line 10). Widths differ per group, so the
		// general disjointness sweep is used.
		ivs := make([]interval, k)
		for i := 0; i < k; i++ {
			ivs[i] = interval{estimates[i] - epsilons[i], estimates[i] + epsilons[i]}
		}
		orderBuf = isolatedGeneral(ivs, isolated, orderBuf, len(orderBuf) == len(ivs))
		for i := 0; i < k; i++ {
			if !active[i] {
				continue
			}
			stop := isolated[i]
			// Resolution relaxation: a group refined past r/4 can be frozen
			// even while overlapping — any group it overlaps is within r.
			if opts.Resolution > 0 && epsilons[i] < opts.Resolution/4 {
				stop = true
			}
			if stop {
				active[i] = false
				settled[i] = round
				numActive--
				if opts.OnPartial != nil {
					opts.OnPartial(i, estimates[i], round, epsilons[i])
				}
			}
		}
		if opts.Tracer != nil {
			maxEps := 0.0
			for i := 0; i < k; i++ {
				if active[i] && epsilons[i] > maxEps {
					maxEps = epsilons[i]
				}
			}
			if gt, ok := opts.Tracer.(GroupTracer); ok {
				gt.OnRoundGroups(round, maxEps, epsilons, active, estimates, sampler.Total())
			} else {
				opts.Tracer.OnRound(round, maxEps, active, estimates, sampler.Total())
			}
		}
		if opts.MaxRounds > 0 && round >= opts.MaxRounds && numActive > 0 {
			res.Capped = true
			break
		}
	}

	maxEps := 0.0
	for _, e := range epsilons {
		if e > maxEps {
			maxEps = e
		}
	}
	res.Rounds = round
	res.FinalEpsilon = maxEps
	res.TotalSamples = sampler.Total()
	res.SampleCounts = append([]int64(nil), sampler.Counts()...)
	return res, nil
}

// drawChunk bounds the block buffer of estimateMean: Hoeffding batches can
// run to 10⁵+ samples, so they stream through a fixed-size buffer instead
// of materializing the whole batch.
const drawChunk = 4096

// estimateMean is Algorithm 2: it draws enough fresh samples that the
// returned mean is within ±eps of the true mean with probability 1−delta,
// by the Chernoff–Hoeffding bound. Draws go through the sampler's block
// path chunk by chunk; the sample stream and the accumulated sum are
// identical to the scalar draw loop, just without a dispatch per sample.
func estimateMean(s *dataset.Sampler, group int, c, eps, delta float64, buf []float64) float64 {
	m := conc.HoeffdingSampleSize(c, eps, delta)
	// Cap the batch at the remaining population when sampling without
	// replacement from a finite group: once the whole group is consumed the
	// mean is exact, so extra draws add nothing.
	if n := s.Universe().Groups[group].Size(); n > 0 && s.WithoutReplacement() {
		remaining := n - s.Count(group)
		if remaining <= 0 {
			return exactMean(s.Universe().Groups[group])
		}
		if int64(m) > remaining {
			m = int(remaining)
		}
	}
	sum := 0.0
	for drawn := 0; drawn < m; {
		n := m - drawn
		if n > len(buf) {
			n = len(buf)
		}
		s.DrawBatch(group, buf[:n])
		for _, v := range buf[:n] {
			sum += v
		}
		drawn += n
	}
	return sum / float64(m)
}

// estimateMeanEB is the variance-adaptive Algorithm 2: rather than
// committing to the Hoeffding batch c²/(2ε²)·ln(2/δ) up front, it draws
// geometrically growing chunks, folds them into an incremental Welford
// accumulator, and stops as soon as the fixed-confidence empirical-
// Bernstein radius — which scales with the observed spread rather than the
// domain width — certifies ±eps. Because the stopping rule peeks at the
// data, the failure budget is spread over the checkpoints as δ/(j(j+1))
// (a convergent series summing to δ), so the certificate holds wherever
// the loop stops. Sampling without replacement stops early once the
// group's remaining population is consumed, exactly like estimateMean.
func estimateMeanEB(s *dataset.Sampler, group int, c, eps, delta float64, buf []float64) float64 {
	remaining := int64(-1) // unbounded
	if n := s.Universe().Groups[group].Size(); n > 0 && s.WithoutReplacement() {
		remaining = n - s.Count(group)
		if remaining <= 0 {
			return exactMean(s.Universe().Groups[group])
		}
	}
	var mom conc.Moments
	taken := 0
	chunk := 64
	for j := 1; ; j++ {
		n := chunk
		if n > len(buf) {
			n = len(buf)
		}
		if remaining >= 0 && int64(taken+n) > remaining {
			n = int(remaining) - taken
		}
		s.DrawBatch(group, buf[:n])
		mom.AddAll(buf[:n])
		taken += n
		if remaining >= 0 && int64(taken) >= remaining {
			break // population consumed; the batch mean is all there is
		}
		if conc.EBRadius(c, taken, mom.Variance(), delta/float64(j*(j+1))) <= eps {
			break
		}
		if chunk < len(buf) {
			chunk *= 2
		}
	}
	return mom.Mean
}

// exactMean recomputes the exact mean of a fully consumed group. Only
// reachable for groups smaller than the requested batch (tiny groups in
// tests).
func exactMean(g dataset.Group) float64 {
	if sc, ok := g.(dataset.Scannable); ok {
		sum, n := 0.0, int64(0)
		n = sc.Scan(func(v float64) { sum += v })
		return sum / float64(n)
	}
	return g.TrueMean()
}
