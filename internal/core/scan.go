package core

import (
	"fmt"

	"repro/internal/dataset"
)

// Scan computes the exact group means by visiting every element of every
// group — the approach a traditional execution engine takes and the
// slowest baseline in the paper's Figure 4. It requires every group to be
// scannable (materialized).
func Scan(u *dataset.Universe) (*Result, error) {
	if u == nil || u.K() == 0 {
		return nil, fmt.Errorf("core: universe has no groups")
	}
	k := u.K()
	estimates := make([]float64, k)
	counts := make([]int64, k)
	var total int64
	for i, g := range u.Groups {
		sc, ok := g.(dataset.Scannable)
		if !ok {
			return nil, fmt.Errorf("core: group %q is not scannable; SCAN needs materialized data", g.Name())
		}
		sum := 0.0
		n := sc.Scan(func(v float64) { sum += v })
		if n == 0 {
			return nil, fmt.Errorf("core: group %q is empty", g.Name())
		}
		estimates[i] = sum / float64(n)
		counts[i] = n
		total += n
	}
	settled := make([]int, k)
	for i := range settled {
		settled[i] = 1
	}
	return &Result{
		Estimates:    estimates,
		SampleCounts: counts,
		TotalSamples: total,
		Rounds:       1,
		SettledRound: settled,
	}, nil
}
