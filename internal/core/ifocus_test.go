package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// sepUniverse builds k materialized groups with well-separated means
// (gap 10 on [0,100]) of n values each.
func sepUniverse(k int, n int, seed uint64) *dataset.Universe {
	r := xrand.New(seed)
	groups := make([]dataset.Group, k)
	for i := 0; i < k; i++ {
		mean := 10 + 10*float64(i)
		d := xrand.TruncNormal{Mu: mean, Sigma: 5, Lo: 0, Hi: 100}
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = d.Sample(r)
		}
		groups[i] = dataset.NewSliceGroup(groupNames(i), vals)
	}
	return dataset.NewUniverse(100, groups...)
}

// virtUniverse builds k virtual groups at the given means.
func virtUniverse(means []float64, n int64) *dataset.Universe {
	groups := make([]dataset.Group, len(means))
	for i, m := range means {
		groups[i] = dataset.NewDistGroup(groupNames(i), xrand.TruncNormal{Mu: m, Sigma: 8, Lo: 0, Hi: 100}, n)
	}
	return dataset.NewUniverse(100, groups...)
}

func groupNames(i int) string {
	return string(rune('a' + i%26))
}

func TestIFocusOrdersCorrectly(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		u := sepUniverse(6, 50_000, seed)
		res, err := IFocus(u, xrand.New(seed+100), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !CorrectOrdering(res.Estimates, u.TrueMeans()) {
			t.Fatalf("seed %d: incorrect ordering", seed)
		}
		if res.Capped {
			t.Fatalf("seed %d: unexpectedly capped", seed)
		}
	}
}

func TestIFocusDeterministic(t *testing.T) {
	u := sepUniverse(5, 10_000, 1)
	a, err := IFocus(u, xrand.New(9), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Fresh universe (the first run consumed permutations).
	u2 := sepUniverse(5, 10_000, 1)
	b, err := IFocus(u2, xrand.New(9), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalSamples != b.TotalSamples || a.Rounds != b.Rounds {
		t.Fatalf("nondeterministic: %d/%d vs %d/%d samples/rounds",
			a.TotalSamples, a.Rounds, b.TotalSamples, b.Rounds)
	}
	for i := range a.Estimates {
		if a.Estimates[i] != b.Estimates[i] {
			t.Fatalf("estimate %d differs", i)
		}
	}
}

func TestIFocusSampleCountsMatchSettling(t *testing.T) {
	u := virtUniverse([]float64{10, 50, 52, 90}, 1_000_000)
	res, err := IFocus(u, xrand.New(3), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The contentious pair (50, 52) must be sampled more than the easy
	// extremes.
	if res.SampleCounts[1] <= res.SampleCounts[0] || res.SampleCounts[2] <= res.SampleCounts[3] {
		t.Fatalf("contentious groups undersampled: %v", res.SampleCounts)
	}
	// Sample counts equal the settling rounds (one sample per round while
	// active).
	for i, m := range res.SampleCounts {
		if int(m) > res.SettledRound[i] {
			t.Fatalf("group %d: %d samples after settling at round %d", i, m, res.SettledRound[i])
		}
	}
	if res.TotalSamples != res.SampleCounts[0]+res.SampleCounts[1]+res.SampleCounts[2]+res.SampleCounts[3] {
		t.Fatal("total samples does not sum counts")
	}
}

func TestIFocusResolutionStopsEarly(t *testing.T) {
	// Two groups 1 apart: strict ordering needs many samples, resolution
	// r=5 may order them arbitrarily and stop at ε < 5/4.
	u := virtUniverse([]float64{50, 51}, 10_000_000)
	strictOpts := DefaultOptions()
	strictOpts.MaxRounds = 1 << 22
	strict, err := IFocus(u, xrand.New(4), strictOpts)
	if err != nil {
		t.Fatal(err)
	}
	relOpts := DefaultOptions()
	relOpts.Resolution = 5
	relaxed, err := IFocus(u, xrand.New(4), relOpts)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.TotalSamples >= strict.TotalSamples {
		t.Fatalf("resolution did not reduce samples: %d vs %d", relaxed.TotalSamples, strict.TotalSamples)
	}
	if relaxed.FinalEpsilon >= relOpts.Resolution {
		t.Fatalf("final epsilon %v not below resolution", relaxed.FinalEpsilon)
	}
	if !ResolutionCorrect(relaxed.Estimates, u.TrueMeans(), 5) {
		t.Fatal("resolution ordering violated")
	}
}

func TestIFocusExhaustionGivesExactMeans(t *testing.T) {
	// Two tiny groups with nearly equal means: the algorithm must exhaust
	// them and return their exact means.
	a := []float64{49, 51, 50, 50}   // mean 50
	b := []float64{50, 50, 51, 49.2} // mean 50.05
	u := dataset.NewUniverse(100,
		dataset.NewSliceGroup("a", a),
		dataset.NewSliceGroup("b", b),
	)
	res, err := IFocus(u, xrand.New(5), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimates[0]-50) > 1e-9 || math.Abs(res.Estimates[1]-50.05) > 1e-9 {
		t.Fatalf("exhausted groups not exact: %v", res.Estimates)
	}
	if !CorrectOrdering(res.Estimates, u.TrueMeans()) {
		t.Fatal("ordering wrong after exhaustion")
	}
}

func TestIFocusSingleGroup(t *testing.T) {
	u := virtUniverse([]float64{42}, 1000)
	res, err := IFocus(u, xrand.New(6), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// A single group has no one to overlap: it settles immediately after
	// the first comparison round.
	if res.TotalSamples > 2 {
		t.Fatalf("single group took %d samples", res.TotalSamples)
	}
}

func TestIFocusHeuristicFactorReducesSamples(t *testing.T) {
	u := virtUniverse([]float64{40, 45, 60, 80}, 1_000_000)
	pure, err := IFocus(u, xrand.New(7), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.HeuristicFactor = 4
	cheat, err := IFocus(u, xrand.New(7), opts)
	if err != nil {
		t.Fatal(err)
	}
	if cheat.TotalSamples >= pure.TotalSamples {
		t.Fatalf("heuristic factor did not reduce samples: %d vs %d", cheat.TotalSamples, pure.TotalSamples)
	}
}

func TestIFocusMaxRoundsCaps(t *testing.T) {
	// Equal means with replacement never separate; the cap must fire.
	u := virtUniverse([]float64{50, 50}, 1_000_000)
	opts := DefaultOptions()
	opts.WithReplacement = true
	opts.MaxRounds = 500
	res, err := IFocus(u, xrand.New(8), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Capped {
		t.Fatal("cap did not fire")
	}
	if res.Rounds > 500 {
		t.Fatalf("ran %d rounds past the cap", res.Rounds)
	}
}

func TestIFocusPartialResultsOrder(t *testing.T) {
	u := virtUniverse([]float64{10, 50, 52, 90}, 1_000_000)
	var order []int
	opts := DefaultOptions()
	opts.OnPartial = func(g int, est float64, round int, eps float64) {
		order = append(order, g)
	}
	res, err := IFocus(u, xrand.New(9), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("partial callbacks: %v", order)
	}
	// Callbacks arrive in settling order, consistent with SettledRound.
	for i := 0; i+1 < len(order); i++ {
		if res.SettledRound[order[i]] > res.SettledRound[order[i+1]] {
			t.Fatalf("partial order inconsistent: %v vs rounds %v", order, res.SettledRound)
		}
	}
	// The contentious middle pair settles last.
	last2 := map[int]bool{order[2]: true, order[3]: true}
	if !last2[1] || !last2[2] {
		t.Fatalf("expected groups 1,2 to settle last: %v", order)
	}
}

func TestIFocusTracerInvariants(t *testing.T) {
	u := virtUniverse([]float64{20, 60, 85}, 100_000)
	prevEps := math.Inf(1)
	prevActive := 4
	calls := 0
	opts := DefaultOptions()
	opts.Tracer = TracerFunc(func(m int, eps float64, active []bool, est []float64, total int64) {
		calls++
		n := 0
		for _, a := range active {
			if a {
				n++
			}
		}
		if m > 2 && eps > prevEps {
			t.Fatalf("epsilon grew at round %d", m)
		}
		if n > prevActive {
			t.Fatalf("active set grew at round %d", m)
		}
		if m > 1 {
			prevEps = eps
		}
		prevActive = n
	})
	if _, err := IFocus(u, xrand.New(10), opts); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("tracer never called")
	}
}

func TestIFocusValidation(t *testing.T) {
	u := virtUniverse([]float64{10, 20}, 1000)
	bad := []Options{
		{Delta: 0},
		{Delta: 1.5},
		{Delta: 0.05, Kappa: 0.5},
		{Delta: 0.05, HeuristicFactor: 0.5},
		{Delta: 0.05, Resolution: -1},
	}
	for i, opts := range bad {
		if _, err := IFocus(u, xrand.New(1), opts); err == nil {
			t.Errorf("case %d: invalid options accepted", i)
		}
	}
	if _, err := IFocus(nil, xrand.New(1), DefaultOptions()); err == nil {
		t.Error("nil universe accepted")
	}
}

func TestIFocusWithReplacementUnknownSizes(t *testing.T) {
	// With-replacement mode must work without group sizes.
	groups := []dataset.Group{
		funcishGroup{name: "a", mean: 30},
		funcishGroup{name: "b", mean: 70},
	}
	u := dataset.NewUniverse(100, groups...)
	opts := DefaultOptions()
	opts.WithReplacement = true
	res, err := IFocus(u, xrand.New(11), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Estimates[0] < res.Estimates[1]) {
		t.Fatal("ordering wrong")
	}
	// Without-replacement mode must refuse unknown sizes.
	if _, err := IFocus(u, xrand.New(11), DefaultOptions()); err == nil {
		t.Fatal("unknown sizes accepted in without-replacement mode")
	}
}

// funcishGroup is a size-less group for with-replacement tests.
type funcishGroup struct {
	name string
	mean float64
}

func (g funcishGroup) Name() string { return g.name }
func (g funcishGroup) Size() int64  { return 0 }
func (g funcishGroup) Draw(r *xrand.RNG) float64 {
	return xrand.TruncNormal{Mu: g.mean, Sigma: 10, Lo: 0, Hi: 100}.Sample(r)
}
func (g funcishGroup) TrueMean() float64 { return g.mean }
