package core

import (
	"repro/internal/dataset"
	"repro/internal/xrand"
)

// RoundRobin is the paper's baseline: conventional round-robin stratified
// sampling, adapted so that it terminates with the same ordering guarantee
// as IFOCUS. Every round takes one sample from *every* group — active or
// not — and the run ends only when no two groups' confidence intervals
// overlap (or, with opts.Resolution > 0 — ROUNDROBIN-R — when ε < r/4).
//
// The confidence-interval machinery is identical to IFOCUS; the only
// difference is that sampling is never focused on the contentious groups,
// which is exactly the waste the paper quantifies.
func RoundRobin(u *dataset.Universe, rng *xrand.RNG, opts Options) (*Result, error) {
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	k := u.K()
	sched := newSchedule(u, &opts)
	sampler := dataset.NewSampler(u, rng, !opts.WithReplacement)

	estimates := make([]float64, k)
	exhausted := make([]bool, k)
	settled := make([]int, k)
	isolated := make([]bool, k)
	all := make([]int, k)
	for i := range all {
		all[i] = i
	}

	for i := 0; i < k; i++ {
		estimates[i] = sampler.Draw(i)
	}
	res := &Result{Estimates: estimates, SettledRound: settled, Rounds: 1}

	m := 1
	var eps float64
	allFlags := make([]bool, k)
	for i := range allFlags {
		allFlags[i] = true
	}
	if opts.Tracer != nil {
		opts.Tracer.OnRound(m, sched.Epsilon(m)/opts.HeuristicFactor, allFlags, estimates, sampler.Total())
	}
	for {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		m++
		var maxN int64
		if !opts.WithReplacement {
			maxN = u.MaxSize()
		}
		eps = sched.EpsilonN(m, maxN) / opts.HeuristicFactor

		for i := 0; i < k; i++ {
			if exhausted[i] {
				continue
			}
			if !opts.WithReplacement {
				if n := u.Groups[i].Size(); n > 0 && int64(m) > n {
					// The group's population is fully consumed; its running
					// mean is exact and further draws add nothing.
					exhausted[i] = true
					continue
				}
			}
			x := sampler.Draw(i)
			estimates[i] = float64(m-1)/float64(m)*estimates[i] + x/float64(m)
		}

		isolatedEqualWidth(all, estimates, eps, isolated)
		done := true
		for i := 0; i < k; i++ {
			if !isolated[i] && !exhausted[i] {
				done = false
				break
			}
		}
		if opts.Resolution > 0 && eps < opts.Resolution/4 {
			done = true
		}
		if opts.Tracer != nil {
			opts.Tracer.OnRound(m, eps, allFlags, estimates, sampler.Total())
		}
		if done {
			break
		}
		if opts.MaxRounds > 0 && m >= opts.MaxRounds {
			res.Capped = true
			break
		}
	}

	for i := range settled {
		settled[i] = m
	}
	res.Rounds = m
	res.FinalEpsilon = eps
	res.TotalSamples = sampler.Total()
	res.SampleCounts = append([]int64(nil), sampler.Counts()...)
	return res, nil
}
