package core

import (
	"repro/internal/dataset"
	"repro/internal/xrand"
)

// RoundRobin is the paper's baseline: conventional round-robin stratified
// sampling, adapted so that it terminates with the same ordering guarantee
// as IFOCUS. Every round takes one block of samples from *every* group —
// contended or not — and the run ends only when no two groups' confidence
// intervals overlap (or, with opts.Resolution > 0 — ROUNDROBIN-R — when
// ε < r/4).
//
// The confidence-interval machinery is identical to IFOCUS; the only
// difference is that sampling is never focused on the contentious groups,
// which is exactly the waste the paper quantifies.
func RoundRobin(u *dataset.Universe, rng *xrand.RNG, opts Options) (*Result, error) {
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	k := u.K()
	all := make([]int, k)
	allFlags := make([]bool, k)
	for i := range all {
		all[i] = i
		allFlags[i] = true
	}
	lp := newRoundLoop(u, rng, &opts, roundAlgo{
		seedTrace: true,
		// Round-robin never narrows its focus: the Serfling term keeps the
		// global max n_i, population-exhausted groups merely stop drawing,
		// and the tracer reports every group as live.
		fixedMaxN:           true,
		keepExhaustedActive: true,
		traceFlags:          allFlags,
		decide: func(lp *roundLoop) {
			// Every group stays live until the run ends, so the sweep runs
			// over all k: the neighbour shortcut under the shared ε, the
			// general sweep when per-group radii differ.
			if lp.bound == nil {
				lp.sweepEqualWidth(all)
			} else {
				lp.isolatedUnequal()
			}
			done := true
			for i := 0; i < k; i++ {
				if !lp.isolated[i] && !lp.drained[i] {
					done = false
					break
				}
			}
			if lp.opts.Resolution > 0 && lp.eps < lp.opts.Resolution/4 {
				done = true
			}
			if done {
				lp.settleAllRemaining(false)
			}
		},
	})
	if err := lp.run(); err != nil {
		return nil, err
	}
	return lp.result(), nil
}
