package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/conc"
	"repro/internal/dataset"
	"repro/internal/xrand"
)

// These tests pin and verify the variance-adaptive bound path: per-group
// empirical-Bernstein radii maintained from incremental sampler moments,
// with every settle decision routed through the general unequal-width
// interval sweep. The fingerprints play the same role golden_pin_test.go's
// do for the default schedule — any refactor of the unequal-width path
// must keep them stable — and the worker/batching tests prove that the
// determinism invariants of the round driver transfer to unequal-width
// settling unchanged.

// lowVarUniverse has tightly concentrated groups (spread ±2 around means 8
// apart) in a [0, 100] domain: exactly the shape where the Hoeffding bound
// wastes samples charging the full domain width and a variance-adaptive
// bound cashes in.
func lowVarUniverse(rows int) *dataset.Universe {
	r := xrand.New(0x10f)
	groups := make([]dataset.Group, 6)
	for g := range groups {
		mean := 20 + 8*float64(g)
		values := make([]float64, rows)
		for i := range values {
			values[i] = mean + (r.Float64()-0.5)*4
		}
		groups[g] = dataset.NewSliceGroup(fmt.Sprintf("lv%d", g), values)
	}
	return dataset.NewUniverse(100, groups...)
}

func bernsteinOpts(kind conc.Kind, batch, workers int) Options {
	opts := DefaultOptions()
	opts.Bound = kind
	opts.BatchSize = batch
	opts.Workers = workers
	return opts
}

// TestBernsteinGoldenPins locks the exact behavior of the unequal-width
// settle path per batch size: BatchSize 1 and 64 get independent pins
// (unequal-width settling makes no scalar/batched bit-equivalence claim —
// radii are recomputed per block boundary), and each must stay stable.
func TestBernsteinGoldenPins(t *testing.T) {
	cases := []pinCase{
		{
			name: "ifocus-bernstein-batch1",
			run: func(t *testing.T) string {
				res, err := IFocus(lowVarUniverse(60_000), xrand.New(7), bernsteinOpts(conc.KindBernstein, 1, 1))
				return fingerprint(res, err)
			},
			want: "rounds=875 total=5188 capped=false eps=3.925519294597656 est=[19.996789099130488 27.951452390580304 35.969370166949275 43.986954708956489 52.042588790625238 59.901700977045785] counts=[864 864 855 855 875 875] settled=[864 864 855 855 875 875]",
		},
		{
			name: "ifocus-bernstein-batch64",
			run: func(t *testing.T) string {
				res, err := IFocus(lowVarUniverse(60_000), xrand.New(7), bernsteinOpts(conc.KindBernstein, 64, 1))
				return fingerprint(res, err)
			},
			want: "rounds=14 total=5376 capped=false eps=3.8388187090191006 est=[19.988997721304425 27.945598728773145 35.975725109686522 43.986551271542623 52.037011340864169 59.909063396681923] counts=[896 896 896 896 896 896] settled=[14 14 14 14 14 14]",
		},
		{
			name: "ifocus-bernstein-finite-batch64",
			run: func(t *testing.T) string {
				res, err := IFocus(lowVarUniverse(60_000), xrand.New(7), bernsteinOpts(conc.KindBernsteinFinite, 64, 1))
				return fingerprint(res, err)
			},
			want: "rounds=14 total=5376 capped=false eps=3.8374273472006628 est=[19.988997721304425 27.945598728773145 35.975725109686522 43.986551271542623 52.037011340864169 59.909063396681923] counts=[896 896 896 896 896 896] settled=[14 14 14 14 14 14]",
		},
		{
			name: "sum-bernstein-batch16",
			run: func(t *testing.T) string {
				var pr partialRecorder
				opts := bernsteinOpts(conc.KindBernstein, 16, 1)
				opts.OnPartial = pr.hook()
				res, err := SumKnownSizes(pinSumUniverse(), xrand.New(29), opts)
				return fingerprint(res, err) + " partials=" + pr.String()
			},
			want: "rounds=157 total=7064 capped=false eps=1.7431065337863452 est=[19807.576035652783 87614.455006064614 24994.308114855347 79578.206418675894 52375.915936375699] counts=[752 2500 500 2512 800] settled=[47 157 33 157 50] partials=2@33=24994.308114855347,0@47=19807.576035652783,4@50=52375.915936375699,1@157=87614.455006064614,3@157=79578.206418675894",
		},
		{
			name: "roundrobin-bernstein-batch8",
			run: func(t *testing.T) string {
				res, err := RoundRobin(pinUniverse(), xrand.New(7), bernsteinOpts(conc.KindBernstein, 8, 1))
				return fingerprint(res, err)
			},
			want: "rounds=87 total=4176 capped=false eps=5.7175819506408345 est=[14.890555488494655 27.485787547346717 39.542921769477445 50.967842650666014 62.773948904941427 74.934008486201989] counts=[696 696 696 696 696 696] settled=[87 87 87 87 87 87]",
		},
		{
			name: "irefine-bernstein",
			run: func(t *testing.T) string {
				res, err := IRefine(pinUniverse(), xrand.New(7), bernsteinOpts(conc.KindBernstein, 0, 1))
				return fingerprint(res, err)
			},
			want: "rounds=4 total=18000 capped=false eps=3.125 est=[15.142020953720431 27.146109727244955 39.062594209284548 51.100860182050432 63.032065713764496 75.192407775809784] counts=[3000 3000 3000 3000 3000 3000] settled=[4 4 4 4 4 4]",
		},
		{
			name: "noindex-bernstein",
			run: func(t *testing.T) string {
				opts := bernsteinOpts(conc.KindBernstein, 0, 1)
				res, err := NoIndex(NewUniverseTupleSource(pinUniverse()), xrand.New(43), opts, 0)
				if err != nil {
					return "err:" + err.Error()
				}
				return fmt.Sprintf("total=%d capped=%v counts=%v", res.TotalSamples, res.Capped, res.SampleCounts)
			},
			want: "total=4134 capped=false counts=[703 680 678 664 711 698]",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.run(t)
			if tc.want == "" {
				t.Logf("GOLDEN %s: %s", tc.name, got)
				t.Skip("golden not recorded yet")
			}
			if got != tc.want {
				t.Errorf("fingerprint drifted\n got: %s\nwant: %s", got, tc.want)
			}
		})
	}
}

// TestBoundWorkerInvariance: Workers 1 == 8 bit-for-bit for every
// round-driver algorithm under both variance-adaptive bounds, scalar and
// block rounds alike — the per-group stream and post-barrier settle
// disciplines carry over to unequal-width settling.
func TestBoundWorkerInvariance(t *testing.T) {
	for _, kind := range []conc.Kind{conc.KindBernstein, conc.KindBernsteinFinite} {
		for _, ar := range batchRunners() {
			for _, batch := range []int{1, 64} {
				t.Run(fmt.Sprintf("%s/%s/batch=%d", kind, ar.name, batch), func(t *testing.T) {
					build := pinUniverse
					if ar.name == "sum-known" || ar.name == "sum-unknown" {
						build = pinSumUniverse
					}
					run := func(workers int) string {
						opts := bernsteinOpts(kind, batch, workers)
						var pr partialRecorder
						opts.OnPartial = pr.hook()
						res, err := ar.run(build(), xrand.New(2027), opts)
						if err != nil {
							t.Fatal(err)
						}
						return fingerprint(res, nil) + " partials=" + pr.String()
					}
					want := run(1)
					if got := run(8); got != want {
						t.Fatalf("workers=8 diverged from workers=1:\n got: %s\nwant: %s", got, want)
					}
				})
			}
		}
	}
}

// TestBernsteinFewerSamples is the headline property: on a low-variance
// workload the empirical-Bernstein bound terminates with a small fraction
// of the Hoeffding schedule's samples (the acceptance bar is 2x; typical
// savings are far larger).
func TestBernsteinFewerSamples(t *testing.T) {
	u := lowVarUniverse(200_000)
	opts := DefaultOptions()
	opts.BatchSize = 16
	hoeff, err := IFocus(u, xrand.New(3), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Bound = conc.KindBernstein
	bern, err := IFocus(lowVarUniverse(200_000), xrand.New(3), opts)
	if err != nil {
		t.Fatal(err)
	}
	if bern.TotalSamples*2 > hoeff.TotalSamples {
		t.Fatalf("bernstein used %d samples vs hoeffding %d; want at least 2x fewer",
			bern.TotalSamples, hoeff.TotalSamples)
	}
}

// TestBernsteinOrderingCorrect: the variance-adaptive path still delivers
// correctly ordered estimates across algorithms and guarantees.
func TestBernsteinOrderingCorrect(t *testing.T) {
	for _, ar := range batchRunners() {
		if ar.name == "mistakes" || ar.name == "topt" {
			continue // quota/membership exits order only a subset by design
		}
		t.Run(ar.name, func(t *testing.T) {
			build := pinUniverse
			if ar.name == "sum-known" || ar.name == "sum-unknown" {
				build = pinSumUniverse
			}
			u := build()
			res, err := ar.run(u, xrand.New(11), bernsteinOpts(conc.KindBernstein, 4, 1))
			if err != nil {
				t.Fatal(err)
			}
			var truth []float64
			switch ar.name {
			case "sum-known":
				for _, g := range u.Groups {
					truth = append(truth, float64(g.Size())*g.TrueMean())
				}
			case "sum-unknown":
				total := float64(u.TotalSize())
				for _, g := range u.Groups {
					truth = append(truth, float64(g.Size())/total*g.TrueMean())
				}
			default:
				truth = u.TrueMeans()
			}
			if n := IncorrectPairs(res.Estimates, truth, 0); n != 0 {
				t.Fatalf("%d pairs misordered: est=%v truth=%v", n, res.Estimates, truth)
			}
		})
	}
}

// TestBernsteinPartialWidths: settle events under per-group radii report
// each group's own frozen half-width, and those widths certify the final
// estimates (|est − µ| ≤ width on this seeded run).
func TestBernsteinPartialWidths(t *testing.T) {
	u := lowVarUniverse(60_000)
	widths := make([]float64, u.K())
	opts := bernsteinOpts(conc.KindBernstein, 16, 1)
	opts.OnPartial = func(g int, est float64, round int, eps float64) {
		widths[g] = eps
	}
	res, err := IFocus(u, xrand.New(5), opts)
	if err != nil {
		t.Fatal(err)
	}
	truth := u.TrueMeans()
	distinct := false
	for i := range widths {
		if widths[i] <= 0 {
			t.Fatalf("group %d settled with non-positive width %v", i, widths[i])
		}
		if math.Abs(res.Estimates[i]-truth[i]) > widths[i] {
			t.Fatalf("group %d: |%v - %v| exceeds reported width %v",
				i, res.Estimates[i], truth[i], widths[i])
		}
		if widths[i] != widths[0] {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("all frozen widths equal; expected per-group radii to differ")
	}
}

// TestGroupTracerWidths: a GroupTracer sees per-group widths that are
// positive for active groups, frozen for settled ones, and consistent
// with the scalar eps (the max over live radii).
func TestGroupTracerWidths(t *testing.T) {
	u := lowVarUniverse(60_000)
	rounds := 0
	opts := bernsteinOpts(conc.KindBernstein, 16, 1)
	opts.Tracer = GroupTracerFunc(func(m int, eps float64, epsByGroup []float64, active []bool, est []float64, total int64) {
		rounds++
		if len(epsByGroup) != u.K() {
			t.Fatalf("round %d: %d widths for %d groups", m, len(epsByGroup), u.K())
		}
		maxLive := 0.0
		for i, w := range epsByGroup {
			if active[i] && w > maxLive {
				maxLive = w
			}
			if w < 0 {
				t.Fatalf("round %d: negative width %v", m, w)
			}
		}
		// The scalar eps is the widest radius computed at this round's
		// radius update; groups settling during decide can only lower the
		// live maximum afterwards.
		if maxLive > eps {
			t.Fatalf("round %d: live width %v above scalar eps %v", m, maxLive, eps)
		}
	})
	if _, err := IFocus(u, xrand.New(5), opts); err != nil {
		t.Fatal(err)
	}
	if rounds == 0 {
		t.Fatal("tracer never fired")
	}
	// The scalar TracerFunc adapter keeps working on the same run.
	fired := false
	opts.Tracer = TracerFunc(func(m int, eps float64, active []bool, est []float64, total int64) { fired = true })
	if _, err := IFocus(lowVarUniverse(60_000), xrand.New(5), opts); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("scalar tracer adapter never fired")
	}
}

// TestBernsteinFrozenIntervalsDisjoint: under per-group radii, a group
// may only settle once its interval clears every OTHER group's interval —
// frozen ones included. The adversarial shape is one tight group frozen at
// a sliver next to one wide, slow group with a nearby mean: if the last
// active group settled against active intervals only (there are none), it
// would freeze while still straddling the tight group's interval and the
// certified ordering could be wrong. The invariant below — all k frozen
// intervals pairwise disjoint at termination — is exactly what the
// ordering guarantee needs.
func TestBernsteinFrozenIntervalsDisjoint(t *testing.T) {
	r := xrand.New(0xd15)
	tight := make([]float64, 40_000) // 50 ± 0.5
	wide := make([]float64, 400_000) // mean ≈ 52, spread the whole domain
	far := make([]float64, 40_000)   // 80 ± 5
	for i := range tight {
		tight[i] = 50 + (r.Float64() - 0.5)
	}
	for i := range wide {
		wide[i] = 104 * r.Float64() * r.Float64() // skewed, mean ≈ 104/4 ≈ 26
	}
	for i := range wide {
		wide[i] = 52 + (wide[i]-26)/2 // recenter near the tight group
		if wide[i] < 0 {
			wide[i] = 0
		}
		if wide[i] > 100 {
			wide[i] = 100
		}
	}
	for i := range far {
		far[i] = 80 + (r.Float64()-0.5)*10
	}
	u := dataset.NewUniverse(100,
		dataset.NewSliceGroup("tight", tight),
		dataset.NewSliceGroup("wide", wide),
		dataset.NewSliceGroup("far", far),
	)
	widths := make([]float64, u.K())
	opts := bernsteinOpts(conc.KindBernstein, 16, 1)
	opts.OnPartial = func(g int, est float64, round int, eps float64) { widths[g] = eps }
	res, err := IFocus(u, xrand.New(21), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < u.K(); i++ {
		for j := i + 1; j < u.K(); j++ {
			loI, hiI := res.Estimates[i]-widths[i], res.Estimates[i]+widths[i]
			loJ, hiJ := res.Estimates[j]-widths[j], res.Estimates[j]+widths[j]
			if loI <= hiJ && loJ <= hiI {
				t.Fatalf("frozen intervals of %d and %d overlap: [%v,%v] vs [%v,%v]",
					i, j, loI, hiI, loJ, hiJ)
			}
		}
	}
	if n := IncorrectPairs(res.Estimates, u.TrueMeans(), 0); n != 0 {
		t.Fatalf("%d pairs misordered: est=%v truth=%v", n, res.Estimates, u.TrueMeans())
	}
}

// TestBoundValidation: unknown bound kinds are rejected at validation, for
// driver algorithms and NOINDEX alike.
func TestBoundValidation(t *testing.T) {
	opts := DefaultOptions()
	opts.Bound = "chernoff"
	if _, err := IFocus(pinUniverse(), xrand.New(1), opts); err == nil {
		t.Fatal("unknown bound kind accepted by IFocus")
	}
	if _, err := NoIndex(NewUniverseTupleSource(pinUniverse()), xrand.New(1), opts, 0); err == nil {
		t.Fatal("unknown bound kind accepted by NoIndex")
	}
}

// TestBernsteinExhaustion: tiny groups still settle exactly (width zero)
// when their population runs out under the variance-adaptive path.
func TestBernsteinExhaustion(t *testing.T) {
	u := dataset.NewUniverse(100,
		dataset.NewSliceGroup("a", []float64{48, 50, 52}),
		dataset.NewSliceGroup("b", []float64{49, 51, 53}),
	)
	res, err := IFocus(u, xrand.New(5), bernsteinOpts(conc.KindBernstein, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates[0] != 50 || res.Estimates[1] != 51 {
		t.Fatalf("exhausted groups not exact: %v", res.Estimates)
	}
	if res.SampleCounts[0] != 3 || res.SampleCounts[1] != 3 {
		t.Fatalf("drew past the population: %v", res.SampleCounts)
	}
}
