package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

func TestRoundRobinOrdersCorrectly(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		u := sepUniverse(5, 50_000, seed)
		res, err := RoundRobin(u, xrand.New(seed+200), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !CorrectOrdering(res.Estimates, u.TrueMeans()) {
			t.Fatalf("seed %d: incorrect ordering", seed)
		}
	}
}

func TestRoundRobinSamplesUniformly(t *testing.T) {
	u := virtUniverse([]float64{10, 50, 52, 90}, 1_000_000)
	res, err := RoundRobin(u, xrand.New(1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin takes the same number of samples from every group: that
	// is exactly its waste.
	for i := 1; i < len(res.SampleCounts); i++ {
		if res.SampleCounts[i] != res.SampleCounts[0] {
			t.Fatalf("unequal counts: %v", res.SampleCounts)
		}
	}
}

func TestIFocusBeatsRoundRobin(t *testing.T) {
	// The paper's headline: on instances with one contentious pair and
	// easy other groups, IFOCUS takes far fewer samples.
	var ifocusTotal, rrTotal int64
	for seed := uint64(0); seed < 5; seed++ {
		u := virtUniverse([]float64{10, 30, 49, 51, 75, 95}, 10_000_000)
		fo, err := IFocus(u, xrand.New(seed), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		rr, err := RoundRobin(u, xrand.New(seed), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ifocusTotal += fo.TotalSamples
		rrTotal += rr.TotalSamples
	}
	if ifocusTotal*2 >= rrTotal {
		t.Fatalf("IFOCUS (%d) not at least 2x better than ROUNDROBIN (%d)", ifocusTotal, rrTotal)
	}
}

func TestIRefineOrdersCorrectly(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		u := sepUniverse(5, 50_000, seed)
		res, err := IRefine(u, xrand.New(seed+300), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !CorrectOrdering(res.Estimates, u.TrueMeans()) {
			t.Fatalf("seed %d: incorrect ordering", seed)
		}
	}
}

func TestIRefineBetweenIFocusAndRoundRobin(t *testing.T) {
	// Theorem 3.10's extra log(1/eta) factor: IREFINE should use more
	// samples than IFOCUS on a moderately hard instance.
	u := virtUniverse([]float64{20, 48, 52, 80}, 10_000_000)
	fo, err := IFocus(u, xrand.New(1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ir, err := IRefine(u, xrand.New(1), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ir.TotalSamples <= fo.TotalSamples {
		t.Fatalf("IREFINE (%d) should exceed IFOCUS (%d) on this instance", ir.TotalSamples, fo.TotalSamples)
	}
}

func TestIRefineResolution(t *testing.T) {
	u := virtUniverse([]float64{50, 50.5}, 10_000_000)
	opts := DefaultOptions()
	opts.Resolution = 4
	res, err := IRefine(u, xrand.New(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Capped {
		t.Fatal("resolution run capped")
	}
	if !ResolutionCorrect(res.Estimates, u.TrueMeans(), 4) {
		t.Fatal("resolution ordering violated")
	}
	// The halving schedule must have stopped at or below r/4 per group.
	if res.FinalEpsilon >= 4 {
		t.Fatalf("final epsilon %v not refined to the resolution", res.FinalEpsilon)
	}
}

func TestScanExact(t *testing.T) {
	u := dataset.NewUniverse(100,
		dataset.NewSliceGroup("a", []float64{1, 2, 3}),
		dataset.NewSliceGroup("b", []float64{10, 20}),
	)
	res, err := Scan(u)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates[0] != 2 || res.Estimates[1] != 15 {
		t.Fatalf("scan means %v", res.Estimates)
	}
	if res.TotalSamples != 5 {
		t.Fatalf("scan cost %d", res.TotalSamples)
	}
}

func TestScanRequiresMaterialized(t *testing.T) {
	u := virtUniverse([]float64{10}, 100)
	if _, err := Scan(u); err == nil {
		t.Fatal("scan of virtual group should fail")
	}
}

func TestTrendAdjacentOrdering(t *testing.T) {
	// A seasonal series where non-adjacent points nearly tie (the two
	// shoulder months) but neighbours are well separated.
	means := []float64{20, 40, 60, 40.5, 20.5}
	u := virtUniverse(means, 1_000_000)
	res, err := Trend(u, xrand.New(3), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !AdjacentCorrect(res.Estimates, means, 0) {
		t.Fatalf("adjacent ordering violated: %v", res.Estimates)
	}
}

func TestTrendCheaperThanFullOrdering(t *testing.T) {
	// Groups 1 and 3 differ by 0.5 but are not adjacent: Trend should not
	// spend samples separating them, while IFocus must.
	means := []float64{20, 50, 80, 50.5, 20.5}
	u := virtUniverse(means, 10_000_000)
	opts := DefaultOptions()
	opts.MaxRounds = 1 << 21
	full, err := IFocus(u, xrand.New(4), opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Trend(u, xrand.New(4), opts)
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalSamples*4 >= full.TotalSamples {
		t.Fatalf("Trend (%d) should be at least 4x cheaper than full (%d)", tr.TotalSamples, full.TotalSamples)
	}
	if tr.Capped {
		t.Fatal("trend run capped")
	}
}

func TestTopTSelectsCorrectly(t *testing.T) {
	means := []float64{10, 80, 30, 90, 50, 70, 20}
	u := virtUniverse(means, 1_000_000)
	res, err := TopT(u, xrand.New(5), 3, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 1, 5} // 90, 80, 70
	if len(res.Members) != 3 {
		t.Fatalf("members %v", res.Members)
	}
	for i := range want {
		if res.Members[i] != want[i] {
			t.Fatalf("top-3 %v, want %v", res.Members, want)
		}
	}
	for _, i := range want {
		if res.Membership[i] != MemberIn {
			t.Fatalf("membership of %d: %v", i, res.Membership[i])
		}
	}
}

func TestTopTCheaperThanFull(t *testing.T) {
	// Two near-tied groups at the bottom must not be separated by a top-2
	// query.
	means := []float64{90, 70, 30, 30.3, 10}
	u := virtUniverse(means, 10_000_000)
	opts := DefaultOptions()
	opts.MaxRounds = 1 << 21
	full, err := IFocus(u, xrand.New(6), opts)
	if err != nil {
		t.Fatal(err)
	}
	top, err := TopT(u, xrand.New(6), 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if top.Capped {
		t.Fatal("top-t run capped")
	}
	if top.TotalSamples*4 >= full.TotalSamples {
		t.Fatalf("TopT (%d) should be at least 4x cheaper than full (%d)", top.TotalSamples, full.TotalSamples)
	}
}

func TestTopTValidation(t *testing.T) {
	u := virtUniverse([]float64{10, 20}, 1000)
	for _, tt := range []int{0, -1, 3} {
		if _, err := TopT(u, xrand.New(1), tt, DefaultOptions()); err == nil {
			t.Errorf("t=%d accepted", tt)
		}
	}
}

func TestWithMistakesFasterAndMostlyRight(t *testing.T) {
	// One impossible pair (exact tie at 50) among easy groups: strict
	// IFOCUS burns its cap, the mistakes variant stops once 80% of pairs
	// are certain.
	means := []float64{10, 30, 50, 50, 70, 90}
	u := virtUniverse(means, 10_000_000)
	opts := DefaultOptions()
	opts.WithReplacement = true
	opts.MaxRounds = 200_000
	strict, err := IFocus(u, xrand.New(7), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strict.Capped {
		t.Fatal("strict run should have hit the cap on the tied pair")
	}
	relaxed, err := WithMistakes(u, xrand.New(7), 0.8, opts)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Capped {
		t.Fatal("mistakes run should terminate before the cap")
	}
	if relaxed.TotalSamples >= strict.TotalSamples {
		t.Fatalf("mistakes (%d) not cheaper than strict (%d)", relaxed.TotalSamples, strict.TotalSamples)
	}
	// At most the tied pair may be wrong: >= 80% of the 15 pairs correct.
	if bad := IncorrectPairs(relaxed.Estimates, means, 0); bad > 3 {
		t.Fatalf("%d incorrect pairs", bad)
	}
}

func TestWithMistakesValidation(t *testing.T) {
	u := virtUniverse([]float64{10, 20}, 1000)
	for _, g := range []float64{0, -0.1, 1.1} {
		if _, err := WithMistakes(u, xrand.New(1), g, DefaultOptions()); err == nil {
			t.Errorf("gamma=%v accepted", g)
		}
	}
}

func TestWithValuesBoundsErrors(t *testing.T) {
	means := []float64{20, 45, 70}
	u := virtUniverse(means, 10_000_000)
	const d = 2.0
	res, err := WithValues(u, xrand.New(8), d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !CorrectOrdering(res.Estimates, u.TrueMeans()) {
		t.Fatal("ordering wrong")
	}
	for i, est := range res.Estimates {
		if math.Abs(est-means[i]) > d {
			t.Fatalf("group %d: |%v - %v| > %v", i, est, means[i], d)
		}
	}
	// The value guarantee requires more sampling than plain ordering on
	// well-separated groups.
	plain, err := IFocus(u, xrand.New(8), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSamples <= plain.TotalSamples {
		t.Fatalf("value-guaranteed run (%d) should exceed plain (%d)", res.TotalSamples, plain.TotalSamples)
	}
}

func TestWithValuesValidation(t *testing.T) {
	u := virtUniverse([]float64{10, 20}, 1000)
	if _, err := WithValues(u, xrand.New(1), 0, DefaultOptions()); err == nil {
		t.Fatal("d=0 accepted")
	}
}
