package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func TestCorrectOrderingBasic(t *testing.T) {
	truth := []float64{10, 20, 30}
	if !CorrectOrdering([]float64{1, 2, 3}, truth) {
		t.Fatal("monotone estimates rejected")
	}
	if CorrectOrdering([]float64{2, 1, 3}, truth) {
		t.Fatal("swapped estimates accepted")
	}
	// Ties in estimates violate strict ordering of distinct truths.
	if CorrectOrdering([]float64{1, 1, 3}, truth) {
		t.Fatal("tied estimates accepted for distinct truths")
	}
	// Ties in truth are unordered: anything goes for that pair.
	if !CorrectOrdering([]float64{2, 1, 3}, []float64{10, 10, 30}) {
		t.Fatal("tied truths should be free")
	}
}

func TestCorrectOrderingSelf(t *testing.T) {
	// Property: any vector orders itself correctly.
	check := func(raw []uint8) bool {
		xs := make([]float64, len(raw))
		for i, b := range raw {
			xs[i] = float64(b)
		}
		return CorrectOrdering(xs, xs)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIncorrectPairsCount(t *testing.T) {
	truth := []float64{1, 2, 3, 4}
	// Fully reversed: all 6 pairs wrong.
	if n := IncorrectPairs([]float64{4, 3, 2, 1}, truth, 0); n != 6 {
		t.Fatalf("reversed: %d wrong pairs, want 6", n)
	}
	// One swap: pairs (0,1) wrong only.
	if n := IncorrectPairs([]float64{2, 1, 3, 4}, truth, 0); n != 1 {
		t.Fatalf("one swap: %d wrong pairs, want 1", n)
	}
}

func TestIncorrectPairsResolution(t *testing.T) {
	truth := []float64{10, 10.5, 30}
	est := []float64{2, 1, 3} // swaps the close pair
	if n := IncorrectPairs(est, truth, 0); n != 1 {
		t.Fatalf("strict: %d, want 1", n)
	}
	if n := IncorrectPairs(est, truth, 1); n != 0 {
		t.Fatalf("r=1 should forgive the close pair, got %d", n)
	}
}

func TestResolutionCorrectMonotoneInR(t *testing.T) {
	// Property: growing r can only forgive more pairs.
	check := func(rawT, rawE []uint8, rRaw uint8) bool {
		n := len(rawT)
		if len(rawE) < n {
			n = len(rawE)
		}
		if n < 2 {
			return true
		}
		truth := make([]float64, n)
		est := make([]float64, n)
		for i := 0; i < n; i++ {
			truth[i] = float64(rawT[i])
			est[i] = float64(rawE[i])
		}
		r1 := float64(rRaw % 50)
		r2 := r1 + 10
		return IncorrectPairs(est, truth, r2) <= IncorrectPairs(est, truth, r1)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAdjacentCorrect(t *testing.T) {
	truth := []float64{1, 3, 2, 5}
	if !AdjacentCorrect([]float64{10, 30, 20, 50}, truth, 0) {
		t.Fatal("correct trend rejected")
	}
	// Swap a non-adjacent pair's order (indices 0 and 3 relation broken is
	// irrelevant); breaking an adjacent one must be caught.
	if AdjacentCorrect([]float64{30, 10, 20, 50}, truth, 0) {
		t.Fatal("broken adjacent pair accepted")
	}
	// Close adjacent pair exempt at resolution.
	if !AdjacentCorrect([]float64{10, 30, 31, 50}, []float64{1, 3, 2.9, 5}, 0.5) {
		t.Fatal("resolution exemption not applied")
	}
}

func TestRanking(t *testing.T) {
	r := Ranking([]float64{5, 9, 1, 7})
	want := []int{1, 3, 0, 2}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranking %v, want %v", r, want)
		}
	}
}

func TestRankingIsPermutation(t *testing.T) {
	check := func(raw []uint8) bool {
		xs := make([]float64, len(raw))
		for i, b := range raw {
			xs[i] = float64(b)
		}
		r := Ranking(xs)
		if len(r) != len(xs) {
			return false
		}
		seen := make([]bool, len(xs))
		for _, v := range r {
			if v < 0 || v >= len(xs) || seen[v] {
				return false
			}
			seen[v] = true
		}
		// Descending by value.
		for i := 1; i < len(r); i++ {
			if xs[r[i]] > xs[r[i-1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTopTCorrect(t *testing.T) {
	truth := []float64{10, 40, 30, 20}
	if !TopTCorrect([]float64{1, 4, 3, 2}, truth, 2, 0) {
		t.Fatal("correct top-2 rejected")
	}
	if TopTCorrect([]float64{1, 3, 4, 2}, truth, 2, 0) {
		t.Fatal("swapped top-2 accepted")
	}
	// Swap within resolution allowed.
	if !TopTCorrect([]float64{1, 3, 4, 2}, []float64{10, 40, 39.9, 20}, 2, 0.5) {
		t.Fatal("resolution swap rejected")
	}
	// t larger than k degrades gracefully.
	if !TopTCorrect([]float64{1, 4, 3, 2}, truth, 10, 0) {
		t.Fatal("t>k failed")
	}
}

func TestIntervalOverlap(t *testing.T) {
	a := interval{0, 1}
	cases := []struct {
		b    interval
		want bool
	}{
		{interval{0.5, 2}, true},
		{interval{1, 2}, true}, // touching counts as overlap
		{interval{1.01, 2}, false},
		{interval{-2, -0.01}, false},
		{interval{-1, 0}, true},
	}
	for _, c := range cases {
		if a.overlaps(c.b) != c.want {
			t.Errorf("overlap(%v, %v) != %v", a, c.b, c.want)
		}
	}
}

// bruteForceIsolated is the O(n²) pairwise reference both sweeps are
// checked against.
func bruteForceIsolated(ivs []interval, isolated []bool) {
	for i, a := range ivs {
		ok := true
		for j, b := range ivs {
			if i != j && a.overlaps(b) {
				ok = false
				break
			}
		}
		isolated[i] = ok
	}
}

func TestIsolatedEqualWidthMatchesGeneral(t *testing.T) {
	// Property: the equal-width sorted-neighbour sweep, the general
	// sort-by-lo sweep, and the brute-force pairwise check all agree when
	// widths are equal.
	check := func(raw []uint8, epsRaw uint8) bool {
		if len(raw) < 2 || len(raw) > 12 {
			return true
		}
		est := make([]float64, len(raw))
		for i, b := range raw {
			est[i] = float64(b)
		}
		eps := float64(epsRaw%40) / 3
		idx := make([]int, len(est))
		for i := range idx {
			idx[i] = i
		}
		fast := make([]bool, len(est))
		isolatedEqualWidth(idx, est, eps, fast, nil, false)
		ivs := make([]interval, len(est))
		for i, e := range est {
			ivs[i] = interval{e - eps, e + eps}
		}
		slow := make([]bool, len(est))
		isolatedGeneral(ivs, slow, nil, false)
		brute := make([]bool, len(est))
		bruteForceIsolated(ivs, brute)
		for i := range fast {
			if fast[i] != slow[i] || slow[i] != brute[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestIsolatedGeneralMatchesBruteForce(t *testing.T) {
	// Property: the O(k log k) sort-by-lo sweep agrees with the pairwise
	// check on intervals of arbitrary unequal widths, ties included.
	check := func(rawLo, rawW []uint8) bool {
		n := len(rawLo)
		if len(rawW) < n {
			n = len(rawW)
		}
		if n < 2 || n > 12 {
			return true
		}
		ivs := make([]interval, n)
		for i := 0; i < n; i++ {
			lo := float64(rawLo[i] % 50)
			ivs[i] = interval{lo, lo + float64(rawW[i]%20)}
		}
		fast := make([]bool, n)
		isolatedGeneral(ivs, fast, nil, false)
		brute := make([]bool, n)
		bruteForceIsolated(ivs, brute)
		for i := range fast {
			if fast[i] != brute[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestResultSampledFraction(t *testing.T) {
	u := virtUniverse([]float64{10, 90}, 500)
	res := &Result{TotalSamples: 100}
	if f := res.SampledFraction(u); f != 0.1 {
		t.Fatalf("fraction %v, want 0.1", f)
	}
	unknown := dataset.NewUniverse(100, funcishGroup{name: "u", mean: 1})
	noSize := &Result{TotalSamples: 5}
	if f := noSize.SampledFraction(unknown); !math.IsNaN(f) {
		t.Fatalf("unknown-size fraction %v, want NaN", f)
	}
}
