package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// sumUniverse builds groups whose sums order differently from their means
// (the interesting case for SUM queries).
func sumUniverse(seed uint64) *dataset.Universe {
	r := xrand.New(seed)
	mk := func(name string, mean float64, n int) dataset.Group {
		d := xrand.TruncNormal{Mu: mean, Sigma: 5, Lo: 0, Hi: 100}
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = d.Sample(r)
		}
		return dataset.NewSliceGroup(name, vals)
	}
	// Means order: a < b < c. Sums order: c < b < a (sizes invert it).
	return dataset.NewUniverse(100,
		mk("a", 20, 60_000),
		mk("b", 50, 12_000),
		mk("c", 80, 3_000),
	)
}

func trueSums(u *dataset.Universe) []float64 {
	sums := make([]float64, u.K())
	for i, g := range u.Groups {
		sums[i] = g.TrueMean() * float64(g.Size())
	}
	return sums
}

func TestSumKnownSizesOrdersSums(t *testing.T) {
	u := sumUniverse(1)
	res, err := SumKnownSizes(u, xrand.New(2), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := trueSums(u)
	if !CorrectOrdering(res.Estimates, want) {
		t.Fatalf("sum ordering wrong: est %v truth %v", res.Estimates, want)
	}
	// Sums, not means: magnitudes must be in the size-scaled range.
	for i, g := range u.Groups {
		if res.Estimates[i] < float64(g.Size()) || res.Estimates[i] > 100*float64(g.Size()) {
			t.Fatalf("estimate %d = %v outside sum range", i, res.Estimates[i])
		}
	}
}

func TestSumKnownSizesNeedsSizes(t *testing.T) {
	u := dataset.NewUniverse(100, funcishGroup{name: "a", mean: 10}, funcishGroup{name: "b", mean: 20})
	opts := DefaultOptions()
	opts.WithReplacement = true
	if _, err := SumKnownSizes(u, xrand.New(1), opts); err == nil {
		t.Fatal("unknown sizes accepted")
	}
}

func TestSumUnknownSizesOrdersNormalizedSums(t *testing.T) {
	u := sumUniverse(3)
	est := dataset.NewMembershipFractionEstimator(u)
	opts := DefaultOptions()
	opts.MaxRounds = 1 << 21
	res, err := SumUnknownSizes(u, est, xrand.New(4), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Capped {
		t.Skip("instance too hard for the test budget; covered by smaller gap tests")
	}
	// Normalized sums: s_i * mu_i.
	total := float64(u.TotalSize())
	want := make([]float64, u.K())
	for i, g := range u.Groups {
		want[i] = float64(g.Size()) / total * g.TrueMean()
	}
	if !CorrectOrdering(res.Estimates, want) {
		t.Fatalf("normalized sum ordering wrong: est %v truth %v", res.Estimates, want)
	}
	for i := range want {
		if math.Abs(res.Estimates[i]-want[i]) > 5 {
			t.Fatalf("estimate %d = %v too far from %v", i, res.Estimates[i], want[i])
		}
	}
}

func TestSumUnknownSizesNeedsEstimator(t *testing.T) {
	u := sumUniverse(5)
	if _, err := SumUnknownSizes(u, nil, xrand.New(1), DefaultOptions()); err == nil {
		t.Fatal("nil estimator accepted")
	}
}

func TestCountUnknownSizesOrdersFractions(t *testing.T) {
	u := sumUniverse(6) // sizes 60k, 12k, 3k: fractions well separated
	est := dataset.NewMembershipFractionEstimator(u)
	opts := DefaultOptions()
	opts.MaxRounds = 1 << 21
	res, err := CountUnknownSizes(u, est, xrand.New(7), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Capped {
		t.Fatal("count run capped")
	}
	total := float64(u.TotalSize())
	want := make([]float64, u.K())
	for i, g := range u.Groups {
		want[i] = float64(g.Size()) / total
	}
	if !CorrectOrdering(res.Estimates, want) {
		t.Fatalf("count ordering wrong: est %v truth %v", res.Estimates, want)
	}
	// A group settles the moment the shared ε falls below half its
	// nearest-neighbour gap (0.64 for the largest group here), so its
	// frozen estimate is only guaranteed within ~0.3 of the truth; 0.15
	// keeps the regression meaningful without depending on a lucky seed.
	for i := range want {
		if math.Abs(res.Estimates[i]-want[i]) > 0.15 {
			t.Fatalf("fraction %d = %v too far from %v", i, res.Estimates[i], want[i])
		}
	}
}

func TestCountKnownSizesExact(t *testing.T) {
	u := sumUniverse(8)
	res, err := CountKnownSizes(u)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimates[0] != 60_000 || res.Estimates[1] != 12_000 || res.Estimates[2] != 3_000 {
		t.Fatalf("counts %v", res.Estimates)
	}
	if res.TotalSamples != 0 {
		t.Fatal("counting known sizes should take no samples")
	}
}

func TestMultiAggBothOrderings(t *testing.T) {
	r := xrand.New(9)
	mk := func(name string, muY, muZ float64, n int) dataset.Group {
		dy := xrand.TruncNormal{Mu: muY, Sigma: 6, Lo: 0, Hi: 100}
		dz := xrand.TruncNormal{Mu: muZ, Sigma: 6, Lo: 0, Hi: 100}
		ys := make([]float64, n)
		zs := make([]float64, n)
		for i := range ys {
			ys[i] = dy.Sample(r)
			zs[i] = dz.Sample(r)
		}
		return dataset.NewSlicePairGroup(name, ys, zs)
	}
	// Y ordering: a < b < c.  Z ordering: b < c < a.
	u := dataset.NewUniverse(100,
		mk("a", 20, 80, 40_000),
		mk("b", 50, 20, 40_000),
		mk("c", 80, 50, 40_000),
	)
	res, err := MultiAgg(u, xrand.New(10), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	truthY := u.TrueMeans()
	var truthZ []float64
	for _, g := range u.Groups {
		truthZ = append(truthZ, g.(dataset.PairGroup).TrueMeanZ())
	}
	if !CorrectOrdering(res.EstimatesY, truthY) {
		t.Fatalf("Y ordering wrong: %v vs %v", res.EstimatesY, truthY)
	}
	if !CorrectOrdering(res.EstimatesZ, truthZ) {
		t.Fatalf("Z ordering wrong: %v vs %v", res.EstimatesZ, truthZ)
	}
	var sum int64
	for _, c := range res.SampleCounts {
		sum += c
	}
	if sum != res.TotalSamples {
		t.Fatal("sample accounting inconsistent")
	}
}

func TestMultiAggRequiresPairGroups(t *testing.T) {
	u := virtUniverse([]float64{10, 20}, 1000)
	if _, err := MultiAgg(u, xrand.New(1), DefaultOptions()); err == nil {
		t.Fatal("non-pair groups accepted")
	}
}

func TestNoIndexOrdersCorrectly(t *testing.T) {
	u := sepUniverse(4, 30_000, 11)
	src := NewUniverseTupleSource(u)
	opts := DefaultOptions()
	res, err := NoIndex(src, xrand.New(12), opts, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Capped {
		t.Fatal("no-index run capped")
	}
	if !CorrectOrdering(res.Estimates, u.TrueMeans()) {
		t.Fatalf("no-index ordering wrong: %v", res.Estimates)
	}
	// Sample counts must roughly follow group proportions (uniform groups
	// here): no group can be starved.
	for i, c := range res.SampleCounts {
		if c == 0 {
			t.Fatalf("group %d starved", i)
		}
	}
}

func TestNoIndexResolution(t *testing.T) {
	u := sepUniverse(4, 30_000, 13)
	src := NewUniverseTupleSource(u)
	opts := DefaultOptions()
	opts.Resolution = 10
	res, err := NoIndex(src, xrand.New(14), opts, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !ResolutionCorrect(res.Estimates, u.TrueMeans(), 10) {
		t.Fatal("resolution ordering violated")
	}
}

func TestNoIndexCostlierThanIFocus(t *testing.T) {
	// Without an index the tuple source cannot skip settled groups, so the
	// table-wide draw count exceeds IFOCUS's targeted sampling.
	u := virtUniverse([]float64{10, 49, 51, 90}, 1_000_000)
	fo, err := IFocus(u, xrand.New(15), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	src := NewUniverseTupleSource(u)
	ni, err := NoIndex(src, xrand.New(15), DefaultOptions(), 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if ni.TotalSamples <= fo.TotalSamples {
		t.Fatalf("no-index (%d) should cost more than IFOCUS (%d)", ni.TotalSamples, fo.TotalSamples)
	}
}

func TestUniverseTupleSourceProportions(t *testing.T) {
	u := dataset.NewUniverse(100,
		dataset.NewSliceGroup("a", make([]float64, 9000)),
		dataset.NewSliceGroup("b", make([]float64, 1000)),
	)
	src := NewUniverseTupleSource(u)
	r := xrand.New(16)
	counts := [2]int{}
	const n = 100_000
	for i := 0; i < n; i++ {
		g, _ := src.Draw(r)
		counts[g]++
	}
	if frac := float64(counts[0]) / n; math.Abs(frac-0.9) > 0.01 {
		t.Fatalf("group 0 drawn %v of the time, want 0.9", frac)
	}
}
