package core

import (
	"repro/internal/dataset"
	"repro/internal/xrand"
)

// Trend solves Problem 3 (AVG-ORDER-TRENDS): when the x-axis is ordinal
// (e.g. time) only *adjacent* pairs of groups need to be ordered correctly,
// which is the guarantee a trend line or chloropleth needs. The algorithm is
// IFOCUS with the activity criterion relaxed: a group stays active only
// while its confidence interval overlaps the interval of a neighbouring
// group (i−1 or i+1). Inactive neighbours contribute their frozen intervals,
// so a late-settling group still cannot cross a settled neighbour.
//
// The effective hardness drops from η_i = min over all groups to
// η*_i = min(τ_{i−1,i}, τ_{i,i+1}), typically a large saving when many
// non-adjacent groups have similar means.
func Trend(u *dataset.Universe, rng *xrand.RNG, opts Options) (*Result, error) {
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	k := u.K()
	toSettle := make([]int, 0, k)
	lp := newRoundLoop(u, rng, &opts, roundAlgo{
		notifyPartials: true,
		capNotify:      true,
		decide: func(lp *roundLoop) {
			// Snapshot the groups to settle before settling any, so settle
			// order within the round cannot change the neighbour checks.
			toSettle = toSettle[:0]
			for i := 0; i < k; i++ {
				line := [2]int{i - 1, i + 1}
				if lp.active[i] && !neighbourOverlap(lp, i, line[:]) {
					toSettle = append(toSettle, i)
				}
			}
			for _, i := range toSettle {
				lp.settle(i, lp.groupEps(i), true)
			}
			lp.resolutionExit()
		},
	})
	if err := lp.run(); err != nil {
		return nil, err
	}
	return lp.result(), nil
}

// neighbourOverlap reports whether group i's interval overlaps any listed
// neighbour's interval (frozen widths for settled neighbours, the live ε
// for active ones). Out-of-range neighbour indices are skipped, so line
// graphs can pass {i−1, i+1} unconditionally.
func neighbourOverlap(lp *roundLoop, i int, neighbours []int) bool {
	wi := lp.width(i)
	iv := interval{lp.estimates[i] - wi, lp.estimates[i] + wi}
	for _, j := range neighbours {
		if j < 0 || j >= lp.k {
			continue
		}
		wj := lp.width(j)
		if iv.overlaps(interval{lp.estimates[j] - wj, lp.estimates[j] + wj}) {
			return true
		}
	}
	return false
}
