package core

import (
	"repro/internal/dataset"
	"repro/internal/xrand"
)

// Trend solves Problem 3 (AVG-ORDER-TRENDS): when the x-axis is ordinal
// (e.g. time) only *adjacent* pairs of groups need to be ordered correctly,
// which is the guarantee a trend line or chloropleth needs. The algorithm is
// IFOCUS with the activity criterion relaxed: a group stays active only
// while its confidence interval overlaps the interval of a neighbouring
// group (i−1 or i+1). Inactive neighbours contribute their frozen intervals,
// so a late-settling group still cannot cross a settled neighbour.
//
// The effective hardness drops from η_i = min over all groups to
// η*_i = min(τ_{i−1,i}, τ_{i,i+1}), typically a large saving when many
// non-adjacent groups have similar means.
func Trend(u *dataset.Universe, rng *xrand.RNG, opts Options) (*Result, error) {
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	k := u.K()
	sched := newSchedule(u, &opts)
	sampler := dataset.NewSampler(u, rng, !opts.WithReplacement)

	estimates := make([]float64, k)
	active := make([]bool, k)
	settled := make([]int, k)
	// frozenEps[i] is the interval half-width at which group i settled; for
	// active groups the shared live ε applies instead.
	frozenEps := make([]float64, k)

	for i := 0; i < k; i++ {
		estimates[i] = sampler.Draw(i)
		active[i] = true
	}
	res := &Result{Estimates: estimates, SettledRound: settled, Rounds: 1}
	numActive := k
	m := 1

	width := func(i int, liveEps float64) float64 {
		if active[i] {
			return liveEps
		}
		return frozenEps[i]
	}
	neighbourOverlap := func(i int, liveEps float64) bool {
		wi := width(i, liveEps)
		iv := interval{estimates[i] - wi, estimates[i] + wi}
		for _, j := range [2]int{i - 1, i + 1} {
			if j < 0 || j >= k {
				continue
			}
			wj := width(j, liveEps)
			if iv.overlaps(interval{estimates[j] - wj, estimates[j] + wj}) {
				return true
			}
		}
		return false
	}
	settle := func(i, round int, eps float64) {
		active[i] = false
		settled[i] = round
		frozenEps[i] = eps
		numActive--
		if opts.OnPartial != nil {
			opts.OnPartial(i, estimates[i], round)
		}
	}

	var eps float64
	for numActive > 0 {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		m++
		var maxN int64
		if !opts.WithReplacement {
			maxN = maxActiveSize(u, active)
		}
		eps = sched.EpsilonN(m, maxN) / opts.HeuristicFactor

		for i := 0; i < k; i++ {
			if !active[i] {
				continue
			}
			if !opts.WithReplacement {
				if n := u.Groups[i].Size(); n > 0 && int64(m) > n {
					settle(i, m, 0)
					continue
				}
			}
			x := sampler.Draw(i)
			estimates[i] = float64(m-1)/float64(m)*estimates[i] + x/float64(m)
		}

		// Snapshot the active flags so settle order within the round cannot
		// change the outcome of the neighbour checks.
		var toSettle []int
		for i := 0; i < k; i++ {
			if active[i] && !neighbourOverlap(i, eps) {
				toSettle = append(toSettle, i)
			}
		}
		for _, i := range toSettle {
			settle(i, m, eps)
		}
		if opts.Resolution > 0 && eps < opts.Resolution/4 {
			for i := 0; i < k; i++ {
				if active[i] {
					settle(i, m, eps)
				}
			}
		}
		if opts.Tracer != nil {
			opts.Tracer.OnRound(m, eps, active, estimates, sampler.Total())
		}
		if opts.MaxRounds > 0 && m >= opts.MaxRounds && numActive > 0 {
			res.Capped = true
			for i := 0; i < k; i++ {
				if active[i] {
					settle(i, m, eps)
				}
			}
		}
	}

	res.Rounds = m
	res.FinalEpsilon = eps
	res.TotalSamples = sampler.Total()
	res.SampleCounts = append([]int64(nil), sampler.Counts()...)
	return res, nil
}
