package core

import (
	"fmt"

	"repro/internal/conc"
	"repro/internal/dataset"
	"repro/internal/xrand"
)

// TupleSource models a table without an index on the group-by attribute
// (§6.3.6): the only available operation is drawing a uniformly random
// tuple from the *whole* table, which reveals its group and value. Targeted
// per-group sampling is impossible.
type TupleSource interface {
	// K returns the number of groups.
	K() int
	// C bounds every value: all values lie in [0, C].
	C() float64
	// Draw returns the group index and value of one uniform random tuple.
	Draw(r *xrand.RNG) (group int, value float64)
}

// UniverseTupleSource adapts a universe with known group sizes into a
// TupleSource: a random tuple belongs to group i with probability
// proportional to n_i.
type UniverseTupleSource struct {
	u   *dataset.Universe
	cum []float64
}

// NewUniverseTupleSource builds the adapter; it panics if any group size is
// unknown.
func NewUniverseTupleSource(u *dataset.Universe) *UniverseTupleSource {
	total := u.TotalSize()
	if total == 0 {
		panic("core: tuple source needs known group sizes")
	}
	cum := make([]float64, u.K())
	run := 0.0
	for i, g := range u.Groups {
		run += float64(g.Size()) / float64(total)
		cum[i] = run
	}
	return &UniverseTupleSource{u: u, cum: cum}
}

// K returns the number of groups.
func (s *UniverseTupleSource) K() int { return s.u.K() }

// C returns the value bound.
func (s *UniverseTupleSource) C() float64 { return s.u.C }

// Draw picks a group proportionally to size and samples a value from it.
func (s *UniverseTupleSource) Draw(r *xrand.RNG) (int, float64) {
	u := r.Float64()
	// Linear scan: k is small and this keeps the source allocation-free.
	for i, c := range s.cum {
		if u < c {
			return i, s.u.Groups[i].Draw(r)
		}
	}
	i := len(s.cum) - 1
	return i, s.u.Groups[i].Draw(r)
}

// NoIndexResult reports a no-index run.
type NoIndexResult struct {
	// Estimates are the per-group mean estimates.
	Estimates []float64
	// SampleCounts are the number of tuples that landed in each group.
	SampleCounts []int64
	// TotalSamples is the number of tuples drawn from the table.
	TotalSamples int64
	// Capped reports a MaxDraws exit.
	Capped bool
}

// NoIndex solves Problem 9 (AVG-ORDER-NOINDEX): ordering-guaranteed
// estimation when tuples can only be sampled table-wide. Tuples are drawn
// one at a time; each lands in some group and refines that group's running
// mean. Group i's anytime confidence interval uses its own sample count
// m_i, and the run stops when all intervals are pairwise disjoint (or, with
// opts.Resolution > 0, when every interval is narrower than r/4).
//
// maxDraws caps the total table draws (0 = unlimited); the cap voids the
// guarantee and is reported via Capped.
//
// As the paper notes, when groups are near-equal in size this behaves like
// a round-robin scheme that cannot skip settled groups, which is exactly
// the cost of having no index.
func NoIndex(src TupleSource, rng *xrand.RNG, opts Options, maxDraws int64) (*NoIndexResult, error) {
	k := src.K()
	if k == 0 {
		return nil, fmt.Errorf("core: tuple source has no groups")
	}
	if opts.Delta <= 0 || opts.Delta >= 1 {
		return nil, fmt.Errorf("core: delta must be in (0,1), got %v", opts.Delta)
	}
	if opts.Kappa == 0 {
		opts.Kappa = 1
	}
	if opts.HeuristicFactor == 0 {
		opts.HeuristicFactor = 1
	}
	if opts.BatchSize < 0 {
		return nil, fmt.Errorf("core: batch size must be non-negative, got %d", opts.BatchSize)
	}
	kind, err := conc.ParseKind(string(opts.Bound))
	if err != nil {
		return nil, err
	}
	// Table-wide draws return each group's tuples with replacement; the
	// with-replacement schedule applies.
	sched := conc.MustSchedule(src.C(), k, opts.Delta, opts.Kappa, 0)
	// Per-group counts already differ here — tuples land where they land —
	// so a variance-adaptive bound slots straight into the per-group width
	// computation; its moments fold forward with each landed tuple.
	var bound conc.Bound
	var mom []conc.Moments
	if kind != conc.KindHoeffding {
		bound = conc.MustBound(kind, src.C(), k, opts.Delta, opts.Kappa)
		mom = make([]conc.Moments, k)
	}

	estimates := make([]float64, k)
	counts := make([]int64, k)
	isolated := make([]bool, k)
	ivs := make([]interval, k)
	var orderBuf []int
	// Tracer support: table-wide draws never deactivate a group, so every
	// group reports as live; widths go to GroupTracer implementations.
	var traceActive []bool
	var traceEps []float64
	if opts.Tracer != nil {
		traceActive = make([]bool, k)
		for i := range traceActive {
			traceActive[i] = true
		}
		traceEps = make([]float64, k)
	}
	var total int64

	res := &NoIndexResult{Estimates: estimates, SampleCounts: counts}
	// Check cadence: interval checks cost O(k log k); doing one per draw
	// would dominate, so check every k draws (one "round" worth), scaled by
	// the batch size — table-wide draws cannot be targeted per group, so
	// batching here means drawing a block of tuples between checks.
	batch := opts.BatchSize
	if batch < 1 {
		batch = 1
	}
	checkEvery := int64(k) * int64(batch)
	for {
		if total%checkEvery == 0 {
			if err := opts.interrupted(); err != nil {
				return nil, err
			}
		}
		g, v := src.Draw(rng)
		counts[g]++
		m := float64(counts[g])
		estimates[g] = (m-1)/m*estimates[g] + v/m
		if mom != nil {
			mom[g].Add(v)
		}
		total++

		if total%checkEvery == 0 {
			seen := true
			for i := 0; i < k; i++ {
				if counts[i] == 0 {
					seen = false
					break
				}
			}
			if seen {
				maxEps := 0.0
				for i := 0; i < k; i++ {
					var w float64
					if bound != nil {
						w = bound.Radius(int(counts[i]), 0, &mom[i]) / opts.HeuristicFactor
					} else {
						w = sched.EpsilonN(int(counts[i]), 0) / opts.HeuristicFactor
					}
					if w > maxEps {
						maxEps = w
					}
					ivs[i] = interval{estimates[i] - w, estimates[i] + w}
				}
				if opts.Tracer != nil {
					for i := 0; i < k; i++ {
						traceEps[i] = ivs[i].hi - estimates[i]
					}
					round := int(total / checkEvery)
					if gt, ok := opts.Tracer.(GroupTracer); ok {
						gt.OnRoundGroups(round, maxEps, traceEps, traceActive, estimates, total)
					} else {
						opts.Tracer.OnRound(round, maxEps, traceActive, estimates, total)
					}
				}
				orderBuf = isolatedGeneral(ivs, isolated, orderBuf, len(orderBuf) == len(ivs))
				done := true
				for i := 0; i < k; i++ {
					if !isolated[i] {
						done = false
						break
					}
				}
				if opts.Resolution > 0 && maxEps < opts.Resolution/4 {
					done = true
				}
				if done {
					break
				}
			}
		}
		if maxDraws > 0 && total >= maxDraws {
			res.Capped = true
			break
		}
	}

	res.TotalSamples = total
	return res, nil
}
