package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// WithMistakes solves Problem 5 (AVG-ORDER-MISTAKES): the analyst accepts
// that up to a (1−gamma) fraction of the pairwise comparisons may be wrong,
// in exchange for faster termination. The algorithm is IFOCUS with one
// extra exit: after each round it counts the pairs whose relative order is
// already certain — pairs whose confidence intervals (frozen for settled
// groups, live for active ones) are disjoint — and stops as soon as that
// fraction reaches gamma, abandoning the hardest comparisons.
//
// gamma = 1 requires every pair certain, which is plain IFOCUS.
func WithMistakes(u *dataset.Universe, rng *xrand.RNG, gamma float64, opts Options) (*Result, error) {
	if gamma <= 0 || gamma > 1 {
		return nil, fmt.Errorf("core: mistake threshold gamma must be in (0,1], got %v", gamma)
	}
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	k := u.K()
	totalPairs := k * (k - 1) / 2
	if totalPairs == 0 {
		return IFocus(u, rng, opts)
	}
	needed := int(float64(totalPairs) * gamma)

	sched := newSchedule(u, &opts)
	sampler := dataset.NewSampler(u, rng, !opts.WithReplacement)

	estimates := make([]float64, k)
	active := make([]bool, k)
	settled := make([]int, k)
	frozenEps := make([]float64, k)
	isolated := make([]bool, k)
	actIdx := make([]int, 0, k)

	for i := 0; i < k; i++ {
		estimates[i] = sampler.Draw(i)
		active[i] = true
	}
	res := &Result{Estimates: estimates, SettledRound: settled, Rounds: 1}
	numActive := k
	m := 1

	settle := func(i, round int, eps float64, notify bool) {
		active[i] = false
		settled[i] = round
		frozenEps[i] = eps
		numActive--
		if notify && opts.OnPartial != nil {
			opts.OnPartial(i, estimates[i], round)
		}
	}

	// certainPairs counts pairs whose intervals are disjoint right now.
	width := func(i int, liveEps float64) float64 {
		if active[i] {
			return liveEps
		}
		return frozenEps[i]
	}
	certainPairs := func(liveEps float64) int {
		certain := 0
		for i := 0; i < k; i++ {
			wi := width(i, liveEps)
			for j := i + 1; j < k; j++ {
				wj := width(j, liveEps)
				lo1, hi1 := estimates[i]-wi, estimates[i]+wi
				lo2, hi2 := estimates[j]-wj, estimates[j]+wj
				if hi1 < lo2 || hi2 < lo1 {
					certain++
				}
			}
		}
		return certain
	}

	var eps float64
	for numActive > 0 {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		m++
		var maxN int64
		if !opts.WithReplacement {
			maxN = maxActiveSize(u, active)
		}
		eps = sched.EpsilonN(m, maxN) / opts.HeuristicFactor

		for i := 0; i < k; i++ {
			if !active[i] {
				continue
			}
			if !opts.WithReplacement {
				if n := u.Groups[i].Size(); n > 0 && int64(m) > n {
					settle(i, m, 0, true)
					continue
				}
			}
			x := sampler.Draw(i)
			estimates[i] = float64(m-1)/float64(m)*estimates[i] + x/float64(m)
		}

		actIdx = activeIndices(active, actIdx)
		isolatedEqualWidth(actIdx, estimates, eps, isolated)
		for _, i := range actIdx {
			if isolated[i] {
				settle(i, m, eps, true)
			}
		}
		if opts.Resolution > 0 && eps < opts.Resolution/4 {
			for _, i := range actIdx {
				if active[i] {
					settle(i, m, eps, true)
				}
			}
		}
		if numActive > 0 && certainPairs(eps) >= needed {
			// Quota met: abandon the remaining contended groups at their
			// current estimates (their pairs are the permitted mistakes,
			// so no partial-result notification fires for them).
			for i := 0; i < k; i++ {
				if active[i] {
					settle(i, m, eps, false)
				}
			}
		}
		if opts.Tracer != nil {
			opts.Tracer.OnRound(m, eps, active, estimates, sampler.Total())
		}
		if opts.MaxRounds > 0 && m >= opts.MaxRounds && numActive > 0 {
			res.Capped = true
			for i := 0; i < k; i++ {
				if active[i] {
					settle(i, m, eps, false)
				}
			}
		}
	}

	res.Rounds = m
	res.FinalEpsilon = eps
	res.TotalSamples = sampler.Total()
	res.SampleCounts = append([]int64(nil), sampler.Counts()...)
	return res, nil
}
