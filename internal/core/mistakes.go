package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// WithMistakes solves Problem 5 (AVG-ORDER-MISTAKES): the analyst accepts
// that up to a (1−gamma) fraction of the pairwise comparisons may be wrong,
// in exchange for faster termination. The algorithm is IFOCUS with one
// extra exit: after each round it counts the pairs whose relative order is
// already certain — pairs whose confidence intervals (frozen for settled
// groups, live for active ones) are disjoint — and stops as soon as that
// fraction reaches gamma, abandoning the hardest comparisons.
//
// gamma = 1 requires every pair certain, which is plain IFOCUS.
func WithMistakes(u *dataset.Universe, rng *xrand.RNG, gamma float64, opts Options) (*Result, error) {
	if gamma <= 0 || gamma > 1 {
		return nil, fmt.Errorf("core: mistake threshold gamma must be in (0,1], got %v", gamma)
	}
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	k := u.K()
	totalPairs := k * (k - 1) / 2
	if totalPairs == 0 {
		return IFocus(u, rng, opts)
	}
	needed := int(float64(totalPairs) * gamma)

	// certainPairs counts pairs whose intervals (frozen for settled groups,
	// live for active ones) are disjoint right now.
	certainPairs := func(lp *roundLoop) int {
		certain := 0
		for i := 0; i < k; i++ {
			wi := lp.width(i)
			for j := i + 1; j < k; j++ {
				wj := lp.width(j)
				lo1, hi1 := lp.estimates[i]-wi, lp.estimates[i]+wi
				lo2, hi2 := lp.estimates[j]-wj, lp.estimates[j]+wj
				if hi1 < lo2 || hi2 < lo1 {
					certain++
				}
			}
		}
		return certain
	}

	lp := newRoundLoop(u, rng, &opts, roundAlgo{
		notifyPartials: true,
		decide: func(lp *roundLoop) {
			lp.settleIsolated()
			lp.resolutionExit()
			if lp.numActive > 0 && certainPairs(lp) >= needed {
				// Quota met: abandon the remaining contended groups at their
				// current estimates (their pairs are the permitted mistakes,
				// so no partial-result notification fires for them).
				lp.settleAllRemaining(false)
			}
		},
	})
	if err := lp.run(); err != nil {
		return nil, err
	}
	return lp.result(), nil
}
