package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// Adjacency lists, for every group, the groups it must be ordered correctly
// against — the generalization of the trend-line guarantee to chloropleth
// (heat-map) visualizations, where §6.1.1 asks only that *nearby regions*
// be correctly ordered relative to each other. Adjacency[i] holds the
// indices of group i's neighbours; the relation is symmetrized internally.
type Adjacency [][]int

// LineAdjacency returns the trend-line adjacency over k groups: each group
// neighbours its predecessor and successor.
func LineAdjacency(k int) Adjacency {
	adj := make(Adjacency, k)
	for i := 0; i < k; i++ {
		if i > 0 {
			adj[i] = append(adj[i], i-1)
		}
		if i+1 < k {
			adj[i] = append(adj[i], i+1)
		}
	}
	return adj
}

// GridAdjacency returns 4-neighbour adjacency over a rows×cols chloropleth
// grid; group index r*cols + c is the cell at (r, c).
func GridAdjacency(rows, cols int) Adjacency {
	adj := make(Adjacency, rows*cols)
	idx := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := idx(r, c)
			if r > 0 {
				adj[i] = append(adj[i], idx(r-1, c))
			}
			if r+1 < rows {
				adj[i] = append(adj[i], idx(r+1, c))
			}
			if c > 0 {
				adj[i] = append(adj[i], idx(r, c-1))
			}
			if c+1 < cols {
				adj[i] = append(adj[i], idx(r, c+1))
			}
		}
	}
	return adj
}

// symmetrized returns a validated, symmetric copy of the adjacency.
func (a Adjacency) symmetrized(k int) (Adjacency, error) {
	if len(a) != k {
		return nil, fmt.Errorf("core: adjacency covers %d groups, universe has %d", len(a), k)
	}
	set := make([]map[int]bool, k)
	for i := range set {
		set[i] = map[int]bool{}
	}
	for i, ns := range a {
		for _, j := range ns {
			if j < 0 || j >= k {
				return nil, fmt.Errorf("core: adjacency of group %d references invalid group %d", i, j)
			}
			if j == i {
				continue
			}
			set[i][j] = true
			set[j][i] = true
		}
	}
	out := make(Adjacency, k)
	for i, s := range set {
		for j := range s {
			out[i] = append(out[i], j)
		}
	}
	return out, nil
}

// Chloropleth solves the §6.1.1 generalization: estimates whose ordering is
// correct between every pair of *adjacent* groups (per the given adjacency)
// with probability at least 1−δ. Trend is the special case of a line graph;
// heat maps use GridAdjacency or a custom region graph. Groups stay active
// only while their confidence interval overlaps a neighbour's interval
// (frozen for settled neighbours), so the effective hardness of group i is
// min over its neighbours' mean gaps rather than the global η_i.
func Chloropleth(u *dataset.Universe, rng *xrand.RNG, adj Adjacency, opts Options) (*Result, error) {
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	k := u.K()
	neighbours, err := adj.symmetrized(k)
	if err != nil {
		return nil, err
	}
	toSettle := make([]int, 0, k)
	lp := newRoundLoop(u, rng, &opts, roundAlgo{
		notifyPartials: true,
		capNotify:      true,
		decide: func(lp *roundLoop) {
			// Snapshot the groups to settle before settling any, so settle
			// order within the round cannot change the neighbour checks.
			toSettle = toSettle[:0]
			for i := 0; i < k; i++ {
				if lp.active[i] && !neighbourOverlap(lp, i, neighbours[i]) {
					toSettle = append(toSettle, i)
				}
			}
			for _, i := range toSettle {
				lp.settle(i, lp.groupEps(i), true)
			}
			lp.resolutionExit()
		},
	})
	if err := lp.run(); err != nil {
		return nil, err
	}
	return lp.result(), nil
}

// AdjacentPairsCorrect reports whether the estimates order every adjacent
// pair (per the adjacency) as the truth does, up to resolution r.
func AdjacentPairsCorrect(estimates, truth []float64, adj Adjacency, r float64) bool {
	sym, err := adj.symmetrized(len(truth))
	if err != nil {
		return false
	}
	for i, ns := range sym {
		for _, j := range ns {
			d := truth[i] - truth[j]
			if d > r && !(estimates[i] > estimates[j]) {
				return false
			}
			if d < -r && !(estimates[i] < estimates[j]) {
				return false
			}
		}
	}
	return true
}
