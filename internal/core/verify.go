package core

import "math"

// CorrectOrdering reports whether the estimates order every pair of groups
// exactly as the true means do (the correct ordering property of §2.2).
// Pairs of exactly equal true means are unordered and always acceptable.
func CorrectOrdering(estimates, truth []float64) bool {
	return IncorrectPairs(estimates, truth, 0) == 0
}

// ResolutionCorrect reports whether the estimates satisfy the relaxed
// ordering property of Problem 2 at resolution r: only pairs whose true
// means differ by more than r must be ordered correctly.
func ResolutionCorrect(estimates, truth []float64, r float64) bool {
	return IncorrectPairs(estimates, truth, r) == 0
}

// IncorrectPairs counts the pairs (i, j) that violate the ordering property
// at resolution r: pairs with |µ_i − µ_j| > r whose estimates are ordered
// the other way (or tied). r = 0 gives the strict Problem 1 count used by
// Figure 6(a).
func IncorrectPairs(estimates, truth []float64, r float64) int {
	bad := 0
	for i := range truth {
		for j := i + 1; j < len(truth); j++ {
			if math.Abs(truth[i]-truth[j]) <= r {
				continue
			}
			if truth[i] < truth[j] && !(estimates[i] < estimates[j]) {
				bad++
			}
			if truth[i] > truth[j] && !(estimates[i] > estimates[j]) {
				bad++
			}
		}
	}
	return bad
}

// AdjacentCorrect reports whether the estimates order every *adjacent* pair
// (i, i+1) as the true means do — the trend-line property of Problem 3.
// Adjacent pairs with true means within r of each other are exempt.
func AdjacentCorrect(estimates, truth []float64, r float64) bool {
	for i := 0; i+1 < len(truth); i++ {
		if math.Abs(truth[i]-truth[i+1]) <= r {
			continue
		}
		if truth[i] < truth[i+1] && !(estimates[i] < estimates[i+1]) {
			return false
		}
		if truth[i] > truth[i+1] && !(estimates[i] > estimates[i+1]) {
			return false
		}
	}
	return true
}

// Ranking returns the indices of the estimates sorted descending by value:
// Ranking(ν)[0] is the group with the largest estimate.
func Ranking(estimates []float64) []int {
	idx := make([]int, len(estimates))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort keeps this allocation-free beyond idx and is plenty
	// for the small k of visualizations.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && estimates[idx[j]] > estimates[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// TopTCorrect reports whether the top t groups by estimate are exactly the
// top t groups by true mean, in the correct order. Ties in the truth within
// resolution r are acceptable in either order.
func TopTCorrect(estimates, truth []float64, t int, r float64) bool {
	if t > len(truth) {
		t = len(truth)
	}
	est := Ranking(estimates)[:t]
	tru := Ranking(truth)[:t]
	for pos := 0; pos < t; pos++ {
		if est[pos] == tru[pos] {
			continue
		}
		// A swap is fine if the true means involved are within r.
		if math.Abs(truth[est[pos]]-truth[tru[pos]]) <= r {
			continue
		}
		return false
	}
	return true
}
