package core

import (
	"fmt"
	"testing"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// These tests pin the central invariant of the parallel round driver:
// Workers is purely a throughput knob. Every algorithm must produce
// bit-identical estimates, sample counts, settle rounds, and settle-event
// *order* for every Workers value, at scalar and block batch sizes alike —
// because each group's randomness is its own seed-derived stream and every
// cross-group decision runs after the draw barrier in deterministic group
// order. Run under -race (the CI race job does) this also exercises the
// concurrent draw fan-out for data races.

// invarianceFingerprint runs one configuration on a freshly built universe
// (ResetDraws deliberately does not replay a consumed permutation, so
// bit-level comparisons need pristine groups) and renders everything that
// must not depend on worker count, including the partial-event sequence.
func invarianceFingerprint(t *testing.T, ar algoRunner, build func() *dataset.Universe, batch, workers int) string {
	t.Helper()
	opts := DefaultOptions()
	opts.BatchSize = batch
	opts.Workers = workers
	var pr partialRecorder
	opts.OnPartial = pr.hook()
	res, err := ar.run(build(), xrand.New(2024), opts)
	if err != nil {
		t.Fatal(err)
	}
	return fingerprint(res, nil) + " partials=" + pr.String()
}

// TestWorkerInvariance: Workers ∈ {0 (auto), 1, 4, 16} × BatchSize ∈
// {1, 64, auto} agree exactly for every round-driver algorithm. Workers=0
// resolves to GOMAXPROCS and must stay on the same bit-for-bit results as
// every explicit count; BatchAuto is a deterministic schedule, so it is
// subject to the same invariant.
func TestWorkerInvariance(t *testing.T) {
	batches := []struct {
		label string
		size  int
	}{{"1", 1}, {"64", 64}, {"auto", BatchAuto}}
	for _, ar := range batchRunners() {
		for _, batch := range batches {
			t.Run(fmt.Sprintf("%s/batch=%s", ar.name, batch.label), func(t *testing.T) {
				build := pinUniverse
				if ar.name == "sum-known" || ar.name == "sum-unknown" {
					build = pinSumUniverse
				}
				want := invarianceFingerprint(t, ar, build, batch.size, 1)
				for _, workers := range []int{0, 4, 16} {
					if got := invarianceFingerprint(t, ar, build, batch.size, workers); got != want {
						t.Fatalf("workers=%d diverged from workers=1:\n got: %s\nwant: %s", workers, got, want)
					}
				}
			})
		}
	}
}

// TestWorkerInvarianceMultiAgg covers the two-phase pair estimator, whose
// phase-2 warm start must continue per-group streams from worker-invariant
// positions.
func TestWorkerInvarianceMultiAgg(t *testing.T) {
	run := func(batch, workers int) string {
		opts := DefaultOptions()
		opts.BatchSize = batch
		opts.Workers = workers
		res, err := MultiAgg(pinPairUniverse(), xrand.New(2025), opts)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v|%v|%v|%d|%d|%d", res.EstimatesY, res.EstimatesZ, res.SampleCounts, res.TotalSamples, res.RoundsY, res.RoundsZ)
	}
	for _, batch := range []int{1, 64, BatchAuto} {
		want := run(batch, 1)
		for _, workers := range []int{0, 4, 16} {
			if got := run(batch, workers); got != want {
				t.Fatalf("batch=%d workers=%d diverged:\n got: %s\nwant: %s", batch, workers, got, want)
			}
		}
	}
}

// TestWorkerInvarianceTopT: the membership classification and the reported
// top set must match too, not just the common result fields.
func TestWorkerInvarianceTopT(t *testing.T) {
	run := func(workers int) string {
		opts := DefaultOptions()
		opts.BatchSize = 16
		opts.Workers = workers
		res, err := TopT(pinUniverse(), xrand.New(2026), 3, opts)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v|%v|%s", res.Members, res.Membership, fingerprint(&res.Result, nil))
	}
	want := run(1)
	for _, workers := range []int{4, 16} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%d diverged:\n got: %s\nwant: %s", workers, got, want)
		}
	}
}

// TestWorkerInvarianceExhaustion: parallel rounds must clamp and settle
// exhausted groups exactly like sequential ones (widths frozen at zero, in
// group order).
func TestWorkerInvarianceExhaustion(t *testing.T) {
	build := func() *dataset.Universe {
		return dataset.NewUniverse(100,
			dataset.NewSliceGroup("a", []float64{48, 50, 52}),
			dataset.NewSliceGroup("b", []float64{49, 51, 53}),
			dataset.NewSliceGroup("c", []float64{90, 92, 94}),
		)
	}
	run := func(workers int) string {
		opts := DefaultOptions()
		opts.Workers = workers
		res, err := IFocus(build(), xrand.New(9), opts)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(res, nil)
	}
	want := run(1)
	if got := run(8); got != want {
		t.Fatalf("exhaustion path diverged under workers=8:\n got: %s\nwant: %s", got, want)
	}
}

// TestWorkersValidation rejects negative worker counts at the options
// boundary.
func TestWorkersValidation(t *testing.T) {
	opts := DefaultOptions()
	opts.Workers = -1
	if _, err := IFocus(pinUniverse(), xrand.New(1), opts); err == nil {
		t.Fatal("negative Workers accepted")
	}
}

// TestRunSpecWorkersReachesDriver: Spec.Workers flows into the sampling
// driver through the one dispatch path and leaves results unchanged.
func TestRunSpecWorkersReachesDriver(t *testing.T) {
	run := func(workers int) string {
		res, err := Run(nil, pinUniverse(), xrand.New(4), Spec{Workers: workers, Opts: DefaultOptions()})
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(&res.Result, nil)
	}
	if run(1) != run(8) {
		t.Fatal("Spec.Workers changed sampling results")
	}
}
