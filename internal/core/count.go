package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// CountUnknownSizes solves the COUNT case of §6.3.2 when per-group tuple
// counts are unknown: it estimates the fractional sizes s_i with correct
// ordering, by running the normalized-sum machinery with the value sample
// fixed at 1 — each draw is then just the membership indicator z, a
// Bernoulli(s_i) sample in [0, 1].
//
// Result.Estimates holds the fractional sizes; multiply by the total table
// size, when known, to recover absolute counts.
func CountUnknownSizes(u *dataset.Universe, est dataset.FractionEstimator, rng *xrand.RNG, opts Options) (*Result, error) {
	if est == nil {
		return nil, fmt.Errorf("core: CountUnknownSizes requires a fraction estimator")
	}
	// Replace every group's value stream with the constant 1 so each
	// normalized-sum draw x·z reduces to the membership indicator z, and
	// run the schedule with c = 1 (fractions live in [0, 1]).
	ones := make([]dataset.Group, u.K())
	for i, g := range u.Groups {
		ones[i] = oneGroup{g}
	}
	unit := &dataset.Universe{Groups: ones, C: 1}
	return SumUnknownSizes(unit, est, rng, opts)
}

// oneGroup wraps a group so every draw returns the constant 1, turning the
// SUM estimator into a COUNT estimator. TrueMean is the fraction-weighted
// truth only when combined with the membership indicator, so it reports 1.
type oneGroup struct {
	dataset.Group
}

// Draw returns 1 for every tuple.
func (oneGroup) Draw(*xrand.RNG) float64 { return 1 }

// TrueMean of the constant-1 stream is 1.
func (oneGroup) TrueMean() float64 { return 1 }

// CountKnownSizes handles the trivial case: when tuple counts are known the
// COUNT visualization is exact without sampling.
func CountKnownSizes(u *dataset.Universe) (*Result, error) {
	if u == nil || u.K() == 0 {
		return nil, fmt.Errorf("core: universe has no groups")
	}
	k := u.K()
	estimates := make([]float64, k)
	for i, g := range u.Groups {
		n := g.Size()
		if n == 0 {
			return nil, fmt.Errorf("core: group %q size unknown; use CountUnknownSizes", g.Name())
		}
		estimates[i] = float64(n)
	}
	settled := make([]int, k)
	return &Result{
		Estimates:    estimates,
		SampleCounts: make([]int64, k),
		SettledRound: settled,
		Rounds:       0,
	}, nil
}
