package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// WithValues solves Problem 6 (AVG-ORDER-ACTUAL): in addition to the
// ordering guarantee, every returned estimate must satisfy |ν_i − µ_i| ≤ d
// with probability at least 1−δ. Per §6.2.1 the algorithm is IFOCUS with a
// minimum-sampling requirement: a group may not settle until the confidence
// half-width has dropped to d/2 or below, so its interval — which contains
// µ_i with the required probability — certifies the value bound. The sample
// complexity matches Theorem 3.6 with η_i replaced by min(η_i, d/2).
func WithValues(u *dataset.Universe, rng *xrand.RNG, d float64, opts Options) (*Result, error) {
	if d <= 0 {
		return nil, fmt.Errorf("core: value bound d must be positive, got %v", d)
	}
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	lp := newRoundLoop(u, rng, &opts, roundAlgo{
		notifyPartials: true,
		capNotify:      true,
		decide: func(lp *roundLoop) {
			// A group settles only when isolated AND its interval is tight
			// enough to certify the value bound (ε ≤ d/2 ⇒ |ν−µ| ≤ d/2 ≤ d).
			if lp.bound == nil {
				if lp.eps > d/2 {
					return
				}
				lp.settleIsolated()
				// Resolution relaxation still applies to the ordering half
				// of the guarantee; the value half is already certified
				// here.
				lp.resolutionExit()
				return
			}
			// Per-group radii certify the value bound per group: a group
			// may settle — whether by isolation from all k intervals
			// (frozen ones included) or by the resolution relaxation —
			// only once its own interval has tightened to d/2, while
			// wider groups keep sampling.
			lp.actIdx = activeIndices(lp.active, lp.actIdx)
			lp.isolatedUnequal()
			for _, i := range lp.actIdx {
				w := lp.groupEps(i)
				if w > d/2 {
					continue
				}
				if lp.isolated[i] || (opts.Resolution > 0 && w < opts.Resolution/4) {
					lp.settle(i, w, true)
				}
			}
		},
	})
	if err := lp.run(); err != nil {
		return nil, err
	}
	return lp.result(), nil
}
