package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// WithValues solves Problem 6 (AVG-ORDER-ACTUAL): in addition to the
// ordering guarantee, every returned estimate must satisfy |ν_i − µ_i| ≤ d
// with probability at least 1−δ. Per §6.2.1 the algorithm is IFOCUS with a
// minimum-sampling requirement: a group may not settle until the confidence
// half-width has dropped to d/2 or below, so its interval — which contains
// µ_i with the required probability — certifies the value bound. The sample
// complexity matches Theorem 3.6 with η_i replaced by min(η_i, d/2).
func WithValues(u *dataset.Universe, rng *xrand.RNG, d float64, opts Options) (*Result, error) {
	if d <= 0 {
		return nil, fmt.Errorf("core: value bound d must be positive, got %v", d)
	}
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	k := u.K()
	sched := newSchedule(u, &opts)
	sampler := dataset.NewSampler(u, rng, !opts.WithReplacement)

	estimates := make([]float64, k)
	active := make([]bool, k)
	settled := make([]int, k)
	isolated := make([]bool, k)
	actIdx := make([]int, 0, k)

	for i := 0; i < k; i++ {
		estimates[i] = sampler.Draw(i)
		active[i] = true
	}
	res := &Result{Estimates: estimates, SettledRound: settled, Rounds: 1}
	numActive := k
	m := 1

	settle := func(i, round int) {
		active[i] = false
		settled[i] = round
		numActive--
		if opts.OnPartial != nil {
			opts.OnPartial(i, estimates[i], round)
		}
	}

	var eps float64
	for numActive > 0 {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		m++
		var maxN int64
		if !opts.WithReplacement {
			maxN = maxActiveSize(u, active)
		}
		eps = sched.EpsilonN(m, maxN) / opts.HeuristicFactor

		for i := 0; i < k; i++ {
			if !active[i] {
				continue
			}
			if !opts.WithReplacement {
				if n := u.Groups[i].Size(); n > 0 && int64(m) > n {
					settle(i, m)
					continue
				}
			}
			x := sampler.Draw(i)
			estimates[i] = float64(m-1)/float64(m)*estimates[i] + x/float64(m)
		}

		// A group settles only when isolated AND its interval is tight
		// enough to certify the value bound (ε ≤ d/2 ⇒ |ν−µ| ≤ d/2 ≤ d).
		if eps <= d/2 {
			actIdx = activeIndices(active, actIdx)
			isolatedEqualWidth(actIdx, estimates, eps, isolated)
			for _, i := range actIdx {
				if isolated[i] {
					settle(i, m)
				}
			}
			// Resolution relaxation still applies to the ordering half of
			// the guarantee; the value half is already certified here.
			if opts.Resolution > 0 && eps < opts.Resolution/4 {
				for _, i := range actIdx {
					if active[i] {
						settle(i, m)
					}
				}
			}
		}
		if opts.Tracer != nil {
			opts.Tracer.OnRound(m, eps, active, estimates, sampler.Total())
		}
		if opts.MaxRounds > 0 && m >= opts.MaxRounds && numActive > 0 {
			res.Capped = true
			for i := 0; i < k; i++ {
				if active[i] {
					settle(i, m)
				}
			}
		}
	}

	res.Rounds = m
	res.FinalEpsilon = eps
	res.TotalSamples = sampler.Total()
	res.SampleCounts = append([]int64(nil), sampler.Counts()...)
	return res, nil
}
