package core

import (
	"repro/internal/dataset"
	"repro/internal/xrand"
)

// IFocus runs Algorithm 1 of the paper on the given universe and returns
// estimates whose ordering matches the true means with probability at least
// 1−opts.Delta. Setting opts.Resolution > 0 yields IFOCUS-R, the solution to
// Problem 2: sampling stops as soon as the interval half-width drops below
// r/4, and only pairs of means separated by more than r are guaranteed to be
// ordered correctly.
//
// The algorithm proceeds in rounds. Round m=1 seeds every group with one
// block of samples. Each later round takes one fresh block from every
// *active* group (one whose confidence interval still overlaps another
// active group's interval), recomputes the shared anytime half-width ε,
// and deactivates groups whose intervals have separated. Inactive groups
// are never reactivated (paper §3.1, option (a) — required for the
// optimality property). Sampling stops when no active groups remain. With
// opts.BatchSize ≤ 1 the blocks are single samples and the run is
// bit-for-bit the paper's Algorithm 1.
func IFocus(u *dataset.Universe, rng *xrand.RNG, opts Options) (*Result, error) {
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	lp := newRoundLoop(u, rng, &opts, roundAlgo{
		seedTrace:      true,
		notifyPartials: true,
		capNotify:      true,
		decide: func(lp *roundLoop) {
			// Deactivate groups whose intervals separated from all other
			// active intervals (Lines 10–12). All active intervals share ε,
			// so the sorted-neighbour sweep applies.
			lp.settleIsolated()
			lp.resolutionExit()
		},
	})
	if err := lp.run(); err != nil {
		return nil, err
	}
	return lp.result(), nil
}
