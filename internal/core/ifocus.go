package core

import (
	"repro/internal/dataset"
	"repro/internal/xrand"
)

// IFocus runs Algorithm 1 of the paper on the given universe and returns
// estimates whose ordering matches the true means with probability at least
// 1−opts.Delta. Setting opts.Resolution > 0 yields IFOCUS-R, the solution to
// Problem 2: sampling stops as soon as the interval half-width drops below
// r/4, and only pairs of means separated by more than r are guaranteed to be
// ordered correctly.
//
// The algorithm proceeds in rounds. Round m=1 seeds every group with one
// sample. Each later round takes one fresh sample from every *active* group
// (one whose confidence interval still overlaps another active group's
// interval), recomputes the shared anytime half-width ε_m, and deactivates
// groups whose intervals have separated. Inactive groups are never
// reactivated (paper §3.1, option (a) — required for the optimality
// property). Sampling stops when no active groups remain.
func IFocus(u *dataset.Universe, rng *xrand.RNG, opts Options) (*Result, error) {
	if err := opts.validate(u); err != nil {
		return nil, err
	}
	k := u.K()
	sched := newSchedule(u, &opts)
	sampler := dataset.NewSampler(u, rng, !opts.WithReplacement)

	estimates := make([]float64, k)
	active := make([]bool, k)
	settled := make([]int, k)
	isolated := make([]bool, k)
	actIdx := make([]int, 0, k)

	// Round 1: one sample from every group.
	for i := 0; i < k; i++ {
		estimates[i] = sampler.Draw(i)
		active[i] = true
	}
	res := &Result{
		Estimates:    estimates,
		SettledRound: settled,
		Rounds:       1,
	}
	numActive := k
	m := 1
	if opts.Tracer != nil {
		opts.Tracer.OnRound(m, sched.Epsilon(m)/opts.HeuristicFactor, active, estimates, sampler.Total())
	}

	settle := func(i, round int) {
		active[i] = false
		settled[i] = round
		numActive--
		if opts.OnPartial != nil {
			opts.OnPartial(i, estimates[i], round)
		}
	}

	var eps float64
	for numActive > 0 {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		m++
		// Update the confidence-interval half-width (Line 6). The Serfling
		// correction uses max over the *active* groups' sizes, which shrinks
		// as large groups deactivate.
		var maxN int64
		if !opts.WithReplacement {
			maxN = maxActiveSize(u, active)
		}
		eps = sched.EpsilonN(m, maxN) / opts.HeuristicFactor

		// One fresh sample per active group; groups whose population is
		// exhausted have exact means and settle immediately.
		for i := 0; i < k; i++ {
			if !active[i] {
				continue
			}
			if !opts.WithReplacement {
				if n := u.Groups[i].Size(); n > 0 && int64(m) > n {
					// Every element has been seen: the running mean is the
					// exact group mean and the interval is a point.
					settle(i, m)
					continue
				}
			}
			x := sampler.Draw(i)
			estimates[i] = float64(m-1)/float64(m)*estimates[i] + x/float64(m)
		}

		// Deactivate groups whose intervals separated from all other active
		// intervals (Lines 10–12). All active intervals share ε, so the
		// sorted-neighbour sweep applies. The check uses a snapshot of the
		// active set so removal order cannot matter.
		actIdx = activeIndices(active, actIdx)
		isolatedEqualWidth(actIdx, estimates, eps, isolated)
		for _, i := range actIdx {
			if isolated[i] {
				settle(i, m)
			}
		}

		// Resolution relaxation (Problem 2): once ε < r/4, any two groups
		// still overlapping have means within r of each other, so both
		// orderings are acceptable — stop.
		if opts.Resolution > 0 && eps < opts.Resolution/4 {
			for _, i := range actIdx {
				if active[i] {
					settle(i, m)
				}
			}
		}

		if opts.Tracer != nil {
			opts.Tracer.OnRound(m, eps, active, estimates, sampler.Total())
		}
		if opts.MaxRounds > 0 && m >= opts.MaxRounds && numActive > 0 {
			res.Capped = true
			for _, i := range actIdx {
				if active[i] {
					settle(i, m)
				}
			}
		}
	}

	res.Rounds = m
	res.FinalEpsilon = eps
	res.TotalSamples = sampler.Total()
	res.SampleCounts = append([]int64(nil), sampler.Counts()...)
	return res, nil
}
