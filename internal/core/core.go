// Package core implements the paper's query-processing algorithms:
//
//   - IFOCUS (Algorithm 1) and its resolution variant IFOCUS-R — the main
//     contribution: round-based sampling with anytime confidence intervals
//     that stops sampling a group as soon as its interval separates from all
//     other active groups' intervals.
//   - IREFINE / IREFINE-R (Algorithm 3) — the interval-halving alternative.
//   - ROUNDROBIN / ROUNDROBIN-R — conventional stratified sampling adapted
//     to stop under the same ordering guarantee; the paper's baseline.
//   - SCAN — the exact full-scan baseline.
//   - Every §6 extension: trends, top-t, allowed mistakes, value guarantees,
//     partial results, SUM (known and unknown group sizes), COUNT, multiple
//     aggregates, and the no-index fallback.
//
// All algorithms guarantee that, with probability at least 1−δ, the returned
// estimates ν₁..ν_k are ordered identically to the true means µ₁..µ_k
// (exactly for Problem 1; up to the resolution r for Problem 2).
package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/conc"
	"repro/internal/dataset"
)

// Options configures a run of any ordering-guaranteed algorithm.
// The zero value is not valid; start from DefaultOptions.
type Options struct {
	// Delta is the permitted probability that the returned ordering is
	// wrong (the user-specified failure probability δ).
	Delta float64
	// Resolution is the minimum visual resolution r of Problem 2. Zero
	// requests the strict ordering guarantee of Problem 1. When positive,
	// sampling stops as soon as ε < r/4 (paper §3.6, "Visual Resolution
	// Extension") and groups closer than r may be ordered either way.
	Resolution float64
	// Kappa is the geometric spacing κ of the anytime union bound. The
	// paper sets κ=1 in all experiments (footnote †); values slightly above
	// 1 (e.g. 1.01) behave near-identically.
	Kappa float64
	// Bound selects the concentration inequality behind every confidence
	// radius. Empty (or conc.KindHoeffding) keeps the paper's anytime
	// Hoeffding/Serfling schedule: one shared equal-width ε per round,
	// bit-for-bit the behavior from before bounds became pluggable.
	// conc.KindBernstein and conc.KindBernsteinFinite switch to
	// variance-adaptive empirical-Bernstein radii computed per group from
	// incrementally maintained moments (Welford count/mean/M2 in the
	// sampler accounting layer — single-pass, no rescans); radii then
	// differ across groups, so every settle decision routes through the
	// general unequal-width interval sweep. Low-spread groups separate
	// with far fewer samples; the guarantee is unchanged.
	Bound conc.Kind
	// WithReplacement selects sampling with replacement (§3.6). The default
	// (false) samples without replacement and uses the Hoeffding–Serfling
	// finite-population correction; with replacement the correction is
	// dropped and group sizes need not be known.
	WithReplacement bool
	// HeuristicFactor divides every confidence interval by the given factor
	// (>1 shrinks intervals faster than theory allows). Factor 1 is the
	// pure algorithm. Used only by the Figure 5 accuracy-vs-heuristic
	// experiments; any factor above 1 voids the correctness guarantee.
	HeuristicFactor float64
	// MaxRounds caps the number of sampling rounds as a safety valve for
	// adversarial inputs with exactly equal means in with-replacement mode
	// (where the algorithm would otherwise not terminate). Zero means no
	// cap. When the cap triggers the result reports Capped=true and the
	// guarantee is void.
	MaxRounds int
	// BatchSize is the number of fresh samples every still-active group
	// draws per sampling round. 0 and 1 both select the paper's
	// one-sample-per-round schedule and are bit-for-bit identical to the
	// scalar algorithms; larger blocks amortize per-draw dispatch, RNG
	// accounting, and the running-mean update over dense block draws, at
	// the cost of up to BatchSize−1 samples per group past the point where
	// its interval separated. BatchAuto selects the deterministic
	// auto-batch schedule (start at 64, double per round, cap at 4096).
	// The ε schedule is indexed by the cumulative per-group draw count,
	// which the anytime union bound covers at every count simultaneously,
	// so batching never weakens the guarantee. Other negative values are
	// invalid.
	BatchSize int
	// RoundGrowth, when above 1, grows the per-round block geometrically:
	// a group holding c cumulative samples draws
	// max(BatchSize, ⌈(RoundGrowth−1)·c⌉) fresh samples next round, so the
	// per-round bookkeeping (ε update, isolation sweep, tracing) runs only
	// O(log) times in the total sample count. 0 and 1 keep blocks fixed at
	// BatchSize. Values in (0, 1) are invalid.
	RoundGrowth float64
	// Workers fans each round's per-group block draws across a pool of
	// goroutines. Results are bit-for-bit identical for every value —
	// each group's randomness is its own seed-derived stream, and all
	// cross-group decisions run after the draw barrier in deterministic
	// group order — so Workers is purely a throughput knob, safe to leave
	// on everywhere. 0 sizes the pool to runtime.GOMAXPROCS; any value is
	// clamped to GOMAXPROCS and the group count, and the fan-out is
	// adaptive on top: rounds too small to amortize the pool dispatch run
	// inline, and a periodic timing probe falls back to the sequential
	// loop whenever parallelism does not pay on the current hardware
	// (timing only ever picks *how* the same draws execute, never what
	// they are, so results stay deterministic). 1 always draws inline.
	// Negative values are invalid.
	Workers int
	// Draws, when non-nil, feeds the run from a shared offset-addressed
	// draw source (dataset.Broker) instead of private per-group streams:
	// the sampler serves group i's j-th draw from Draws.Fill(i, j, ·), so
	// any number of concurrent runs over sources built from the same
	// resolved seed fold the same physical draws — the N×samples → ~1×
	// sharing lever. Because a group's stream draws are a pure function of
	// (seed, group index, offset), a broker-fed run is bit-for-bit
	// identical to a solo run with the same seed. Only sampler-native draw
	// paths can be fed this way; Run rejects specs with custom draw hooks
	// (pair draws, normalized draws, tuple sampling).
	Draws dataset.DrawSource
	// Tracer, when non-nil, observes every round (used by the convergence
	// experiments behind Figures 5(c) and 6(a)).
	Tracer Tracer
	// OnPartial, when non-nil, is invoked the moment a group's estimate
	// settles (it becomes inactive), implementing the partial-results
	// extension of §6.2.2. Arguments are the group index, its estimate,
	// the round at which it settled, and the confidence half-width its
	// interval was frozen at — per group under variance-adaptive bounds,
	// the shared ε under the default schedule.
	OnPartial func(group int, estimate float64, round int, eps float64)
	// Ctx, when non-nil, is polled once per sampling round: the run aborts
	// with Ctx.Err() as soon as the context is canceled or its deadline
	// passes. A canceled run returns no result.
	Ctx context.Context
}

// BatchAuto, assigned to Options.BatchSize, selects the deterministic
// auto-batch schedule: round m draws min(64·2^(m−1), 4096) fresh samples
// per active group. The schedule is a fixed function of the round number —
// never of measured timings — because the block size changes *which*
// samples each group holds when settle decisions run, so a timing-driven
// batch would break run-to-run determinism and the worker/batch golden
// pins. Exhaustion clamping still applies per group, and RoundGrowth
// composes as usual (the larger of the two block sizes wins).
const BatchAuto = -1

// The BatchAuto schedule's endpoints: the starting block (the measured
// knee of the throughput curve — below it per-round bookkeeping dominates)
// and the cap (past it blocks stop helping and only add overshoot past the
// settle point).
const (
	autoBatchStart = 64
	autoBatchMax   = 4096
)

// autoBatchSize returns the BatchAuto block for round m (1-based).
func autoBatchSize(m int) int {
	b := autoBatchStart
	for i := 1; i < m && b < autoBatchMax; i++ {
		b <<= 1
	}
	return b
}

// interrupted reports the context error, if the run's context is done.
// Round loops call it once per round so cancellation lands within one
// round's worth of draws.
func (o *Options) interrupted() error {
	if o.Ctx == nil {
		return nil
	}
	select {
	case <-o.Ctx.Done():
		return o.Ctx.Err()
	default:
		return nil
	}
}

// DefaultOptions mirrors the paper's default experimental setup:
// δ=0.05, κ=1, sampling without replacement, no resolution relaxation.
func DefaultOptions() Options {
	return Options{
		Delta:           0.05,
		Kappa:           1,
		HeuristicFactor: 1,
	}
}

// validate normalizes and checks options against the universe.
func (o *Options) validate(u *dataset.Universe) error {
	if u == nil || u.K() == 0 {
		return fmt.Errorf("core: universe has no groups")
	}
	if o.Delta <= 0 || o.Delta >= 1 {
		return fmt.Errorf("core: delta must be in (0,1), got %v", o.Delta)
	}
	if o.Kappa == 0 {
		o.Kappa = 1
	}
	if o.Kappa < 1 {
		return fmt.Errorf("core: kappa must be >= 1, got %v", o.Kappa)
	}
	kind, err := conc.ParseKind(string(o.Bound))
	if err != nil {
		return err
	}
	o.Bound = kind
	if o.HeuristicFactor == 0 {
		o.HeuristicFactor = 1
	}
	if o.HeuristicFactor < 1 {
		return fmt.Errorf("core: heuristic factor must be >= 1, got %v", o.HeuristicFactor)
	}
	if o.Resolution < 0 {
		return fmt.Errorf("core: resolution must be non-negative, got %v", o.Resolution)
	}
	if o.BatchSize < 0 && o.BatchSize != BatchAuto {
		return fmt.Errorf("core: batch size must be non-negative (or BatchAuto), got %d", o.BatchSize)
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: workers must be non-negative, got %d", o.Workers)
	}
	// !(x >= 1) rather than x < 1 so NaN is rejected too; +Inf would
	// silently overflow the block computation, so it is equally invalid.
	if o.RoundGrowth != 0 && !(o.RoundGrowth >= 1 && !math.IsInf(o.RoundGrowth, 1)) {
		return fmt.Errorf("core: round growth must be 0 or a finite value >= 1, got %v", o.RoundGrowth)
	}
	if !o.WithReplacement && u.MaxSize() == 0 {
		return fmt.Errorf("core: without-replacement sampling requires known group sizes")
	}
	return nil
}

// Tracer observes algorithm execution round by round.
type Tracer interface {
	// OnRound is called after each sampling round with the round number m,
	// the current interval half-width eps (the widest live radius when
	// per-group widths differ), the active flags, the current estimates,
	// and the cumulative sample count.
	OnRound(m int, eps float64, active []bool, estimates []float64, totalSamples int64)
}

// GroupTracer extends Tracer with the per-group interval half-widths:
// active groups report their live radius (all equal to eps under the
// default schedule, per-group under variance-adaptive bounds), settled
// groups the width their interval was frozen at. Tracers implementing it
// receive OnRoundGroups instead of OnRound. The epsByGroup slice is reused
// between rounds; implementations must copy it to retain it.
type GroupTracer interface {
	Tracer
	OnRoundGroups(m int, eps float64, epsByGroup []float64, active []bool, estimates []float64, totalSamples int64)
}

// TracerFunc adapts a function with the original scalar-eps signature to
// the Tracer interface, keeping every pre-pluggable-bound tracer working
// unchanged; per-group widths go to GroupTracerFunc instead.
type TracerFunc func(m int, eps float64, active []bool, estimates []float64, totalSamples int64)

// OnRound implements Tracer.
func (f TracerFunc) OnRound(m int, eps float64, active []bool, estimates []float64, totalSamples int64) {
	f(m, eps, active, estimates, totalSamples)
}

// GroupTracerFunc adapts a function to the GroupTracer interface.
type GroupTracerFunc func(m int, eps float64, epsByGroup []float64, active []bool, estimates []float64, totalSamples int64)

// OnRound implements Tracer: the adapter for algorithms (or rounds) that
// report only the scalar width — epsByGroup arrives nil.
func (f GroupTracerFunc) OnRound(m int, eps float64, active []bool, estimates []float64, totalSamples int64) {
	f(m, eps, nil, active, estimates, totalSamples)
}

// OnRoundGroups implements GroupTracer.
func (f GroupTracerFunc) OnRoundGroups(m int, eps float64, epsByGroup []float64, active []bool, estimates []float64, totalSamples int64) {
	f(m, eps, epsByGroup, active, estimates, totalSamples)
}

// Result reports the outcome of a sampling run.
type Result struct {
	// Estimates are the returned ν₁..ν_k, index-aligned with the universe.
	Estimates []float64
	// SampleCounts are the per-group m_i.
	SampleCounts []int64
	// TotalSamples is the paper's sample complexity C = Σ m_i.
	TotalSamples int64
	// Rounds is the number of sampling rounds executed (max m).
	Rounds int
	// SettledRound[i] is the round at which group i became inactive.
	SettledRound []int
	// FinalEpsilon is the interval half-width at termination.
	FinalEpsilon float64
	// Capped reports that MaxRounds terminated the run early; the ordering
	// guarantee does not hold in that case.
	Capped bool
}

// SampledFraction returns TotalSamples divided by the universe size, the
// "Percentage Sampled" y-axis of Figures 3, 6 and 7 (as a fraction; multiply
// by 100 for percent). Returns NaN when the universe size is unknown.
func (r *Result) SampledFraction(u *dataset.Universe) float64 {
	total := u.TotalSize()
	if total == 0 {
		return math.NaN()
	}
	return float64(r.TotalSamples) / float64(total)
}

// interval is a closed confidence interval around an estimate.
type interval struct {
	lo, hi float64
}

func (iv interval) overlaps(other interval) bool {
	return iv.lo <= other.hi && other.lo <= iv.hi
}

// isolatedEqualWidth reports, for each listed index, whether its interval
// [est−eps, est+eps] is disjoint from every other listed index's interval.
// Because all intervals share the same half-width, index i is isolated iff
// the gap between its estimate and both sorted neighbours exceeds 2ε.
//
// order is caller-owned scratch for the sorted index permutation, reused
// across rounds and returned (possibly regrown): the sweep runs every
// round, and a per-call slice plus sort.Slice's closure were the round
// loop's only steady-state allocations. The sort is a stable insertion
// sort: alloc-free, and n is the number of still-active groups — a
// chart's bar count — where its constant factor beats the libsort
// dispatch. Tie order cannot change the result (tied estimates have gap
// 0 ≤ 2ε, so neither neighbour check passes).
//
// With carry set, the caller asserts order already holds exactly the
// elements of indices, arranged as the previous round left them; the
// rebuild from indices is skipped and the insertion sort repairs the
// carried arrangement in place. Between rounds only the groups that drew
// move, and each by one block's worth of mean shift, so the carried order
// is nearly sorted and the adaptive insertion sort runs in O(n + moves)
// instead of re-deriving the permutation from scratch. Because tie order
// cannot change the flags, a carried order and a rebuilt one produce
// bit-identical results.
func isolatedEqualWidth(indices []int, estimates []float64, eps float64, isolated []bool, order []int, carry bool) []int {
	n := len(indices)
	if n <= 1 {
		for _, idx := range indices {
			isolated[idx] = true
		}
		return order[:0]
	}
	if !carry {
		order = append(order[:0], indices...)
	}
	for i := 1; i < n; i++ {
		x := order[i]
		kx := estimates[x]
		j := i - 1
		for j >= 0 && estimates[order[j]] > kx {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = x
	}
	for pos, idx := range order {
		ok := true
		if pos > 0 && estimates[idx]-estimates[order[pos-1]] <= 2*eps {
			ok = false
		}
		if pos < n-1 && estimates[order[pos+1]]-estimates[idx] <= 2*eps {
			ok = false
		}
		isolated[idx] = ok
	}
	return order
}

// isolatedGeneral reports, for every interval, whether it is disjoint from
// all others. Used by IREFINE, the SUM estimators, and NOINDEX, whose
// per-group widths differ. Sorting by lower endpoint reduces the check to
// two neighbour comparisons per interval — the running maximum of earlier
// upper endpoints and the successor's lower endpoint — so the sweep costs
// two neighbour comparisons per interval where the previous pairwise check
// cost O(n²) every round.
//
// Like isolatedEqualWidth, order is caller-owned scratch returned for
// reuse, and the sort is an alloc-free stable insertion sort over the
// group count; tie order among equal lower endpoints cannot change the
// result (the running-max and next-lo comparisons are ≥/≤ against values,
// not positions, so any permutation of ties sees the same outcomes).
//
// With carry set, order must already be a permutation of 0..n-1 (the
// previous round's result over the same interval set); the identity
// rebuild is skipped and the insertion sort repairs the carried, nearly
// sorted arrangement incrementally. Tie-safety makes the carried and
// rebuilt paths bit-identical.
func isolatedGeneral(ivs []interval, isolated []bool, order []int, carry bool) []int {
	n := len(ivs)
	switch n {
	case 0:
		return order[:0]
	case 1:
		isolated[0] = true
		return order[:0]
	}
	if !carry {
		order = order[:0]
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
	}
	for i := 1; i < n; i++ {
		x := order[i]
		lo := ivs[x].lo
		j := i - 1
		for j >= 0 && ivs[order[j]].lo > lo {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = x
	}
	// An interval overlaps some predecessor (in lo order) iff the running
	// max of predecessor his reaches its lo, and overlaps some successor
	// iff the very next lo is at or below its hi — later los only grow.
	prevMaxHi := math.Inf(-1)
	for pos, idx := range order {
		ok := true
		if pos > 0 && prevMaxHi >= ivs[idx].lo {
			ok = false
		}
		if pos < n-1 && ivs[order[pos+1]].lo <= ivs[idx].hi {
			ok = false
		}
		isolated[idx] = ok
		if ivs[idx].hi > prevMaxHi {
			prevMaxHi = ivs[idx].hi
		}
	}
	return order
}

// newSchedule builds the ε schedule for a run, deriving the population term
// from the universe per the sampling mode.
func newSchedule(u *dataset.Universe, opts *Options) *conc.Schedule {
	var n int64
	if !opts.WithReplacement {
		n = u.MaxSize()
	}
	return conc.MustSchedule(u.C, u.K(), opts.Delta, opts.Kappa, n)
}

// newRunBound builds the pluggable per-group bound for a run, or nil for
// the default Hoeffding schedule — whose shared-ε fast path the round
// driver keeps exactly as it was, bit for bit.
func newRunBound(u *dataset.Universe, opts *Options) conc.Bound {
	if opts.Bound == "" || opts.Bound == conc.KindHoeffding {
		return nil
	}
	return conc.MustBound(opts.Bound, u.C, u.K(), opts.Delta, opts.Kappa)
}

// maxActiveSize returns max_{i active} n_i, the population bound Algorithm 1
// feeds into the Serfling term. Returns 0 when any active size is unknown.
func maxActiveSize(u *dataset.Universe, active []bool) int64 {
	var max int64
	for i, g := range u.Groups {
		if !active[i] {
			continue
		}
		n := g.Size()
		if n == 0 {
			return 0
		}
		if n > max {
			max = n
		}
	}
	return max
}

// activeIndices appends the indices of set flags to dst and returns it.
func activeIndices(active []bool, dst []int) []int {
	dst = dst[:0]
	for i, a := range active {
		if a {
			dst = append(dst, i)
		}
	}
	return dst
}
