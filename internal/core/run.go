package core

import (
	"context"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/par"
	"repro/internal/xrand"
)

// This file is the single dispatch point for every capability the package
// implements. Callers describe a run declaratively with a Spec and execute
// it through Run; the nine-ish per-algorithm entry points (IFocus, Trend,
// SumKnownSizes, ...) remain available but the public rapidviz layer goes
// exclusively through here, so new extensions become reachable by adding a
// case to one switch instead of a new exported function per operator.

// Algorithm selects the sampling strategy of a run.
type Algorithm int

// Algorithm values.
const (
	// AlgoAuto picks IFOCUS, the paper's optimal algorithm.
	AlgoAuto Algorithm = iota
	// AlgoIFocus is Algorithm 1 (round-based focused sampling).
	AlgoIFocus
	// AlgoIRefine is Algorithm 3 (interval halving; provably non-optimal).
	AlgoIRefine
	// AlgoRoundRobin is the conventional stratified-sampling baseline.
	AlgoRoundRobin
	// AlgoScan computes exact answers by reading every value.
	AlgoScan
	// AlgoNoIndex solves Problem 9: only whole-table tuple sampling is
	// available (no index on the group-by attribute).
	AlgoNoIndex
)

// String returns the lower-case algorithm name.
func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoIFocus:
		return "ifocus"
	case AlgoIRefine:
		return "irefine"
	case AlgoRoundRobin:
		return "roundrobin"
	case AlgoScan:
		return "scan"
	case AlgoNoIndex:
		return "noindex"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// AggregateKind selects the aggregate a run estimates per group.
type AggregateKind int

// AggregateKind values.
const (
	// AggAvg estimates per-group averages (the paper's main setting).
	AggAvg AggregateKind = iota
	// AggSum estimates per-group SUMs; group sizes must be known
	// (IFOCUS-Sum1, Algorithm 4).
	AggSum
	// AggNormalizedSum estimates normalized sums s_i·µ_i via a fraction
	// estimator, without consuming group sizes (IFOCUS-Sum2, Algorithm 5).
	AggNormalizedSum
	// AggCount reports exact per-group tuple counts (trivial when sizes
	// are known).
	AggCount
	// AggNormalizedCount estimates fractional group sizes with correct
	// ordering via membership sampling (§6.3.2).
	AggNormalizedCount
	// AggAvgPair estimates AVG(Y) and AVG(Z) simultaneously from shared
	// tuple draws (§6.3.5); groups must implement dataset.PairGroup.
	AggAvgPair
)

// String returns the lower-case aggregate name.
func (a AggregateKind) String() string {
	switch a {
	case AggAvg:
		return "avg"
	case AggSum:
		return "sum"
	case AggNormalizedSum:
		return "normalized-sum"
	case AggCount:
		return "count"
	case AggNormalizedCount:
		return "normalized-count"
	case AggAvgPair:
		return "avg-pair"
	}
	return fmt.Sprintf("AggregateKind(%d)", int(a))
}

// GuaranteeKind selects which orderings a run certifies.
type GuaranteeKind int

// GuaranteeKind values.
const (
	// GuarOrder certifies the full ordering of all k groups (Problem 1).
	GuarOrder GuaranteeKind = iota
	// GuarTrend certifies adjacent pairs only (Problem 3).
	GuarTrend
	// GuarTopT identifies and orders the top-t groups (Problem 4);
	// Spec.T must be set.
	GuarTopT
	// GuarValues adds |ν_i−µ_i| ≤ MaxError to the ordering (Problem 6);
	// Spec.MaxError must be set.
	GuarValues
	// GuarMistakes certifies only a CorrectPairs fraction of pairwise
	// comparisons (Problem 5); Spec.CorrectPairs must be set.
	GuarMistakes
	// GuarAdjacency certifies the pairs of an arbitrary neighbour graph
	// (§6.1.1, chloropleths); Spec.Adjacency must be set.
	GuarAdjacency
)

// String returns the lower-case guarantee name.
func (g GuaranteeKind) String() string {
	switch g {
	case GuarOrder:
		return "order"
	case GuarTrend:
		return "trend"
	case GuarTopT:
		return "top-t"
	case GuarValues:
		return "values"
	case GuarMistakes:
		return "mistakes"
	case GuarAdjacency:
		return "adjacency"
	}
	return fmt.Sprintf("GuaranteeKind(%d)", int(g))
}

// Spec is the declarative description of a run consumed by Run. The zero
// value requests AVG estimates under the full ordering guarantee with
// IFOCUS; Opts supplies δ, κ, resolution, and the other knobs.
type Spec struct {
	Algorithm Algorithm
	Aggregate AggregateKind
	Guarantee GuaranteeKind

	// T is the top-t size for GuarTopT.
	T int
	// MaxError is the per-group value bound d for GuarValues.
	MaxError float64
	// CorrectPairs is the certain-pair fraction γ for GuarMistakes.
	CorrectPairs float64
	// Adjacency is the neighbour graph for GuarAdjacency.
	Adjacency Adjacency
	// Fractions supplies unbiased fractional-size estimates for the
	// normalized aggregates. Required by AggNormalizedSum/Count.
	Fractions dataset.FractionEstimator
	// Cells, when non-nil, switches the run to the multiple-group-by
	// setting of §6.3.4: the universe is ignored and every cell of the
	// source's (X, Z) cross product is estimated.
	Cells CellSource
	// MaxDraws caps total draws for AlgoNoIndex and Cells runs
	// (0 = unlimited).
	MaxDraws int64
	// Workers bounds intra-run parallelism: the fan-out of the exact scan
	// (AlgoScan) and of each sampling round's per-group block draws in the
	// shared round driver (the IFOCUS family, ROUNDROBIN, the SUM
	// estimators, MultiAgg phase 1). Results are identical for every
	// value — parallel rounds only partition independent per-group work.
	// 0 or 1 runs inline. IREFINE (per-group streams but sequential
	// batches), NOINDEX, and Cells runs (one shared stream in draw order)
	// ignore it.
	Workers int

	Opts Options
}

// RunResult is the union result shape of Run: the common Result fields are
// always populated (for cell runs, flattened row-major), and the optional
// fields carry the extras of the specialized problems.
type RunResult struct {
	Result
	// TopMembers holds the indices of the top-t groups (GuarTopT),
	// largest estimate first.
	TopMembers []int
	// Membership is the final top-t classification (GuarTopT).
	Membership []Membership
	// SecondEstimates holds the AVG(Z) estimates of AggAvgPair runs.
	SecondEstimates []float64
	// CellEstimates and CellCounts hold the per-cell results of Cells
	// runs, indexed [x][z].
	CellEstimates [][]float64
	CellCounts    [][]int64
}

// Run executes the run described by spec on u, polling ctx between rounds.
// It is the single dispatch path behind the public Engine API: every
// algorithm and §6 extension in this package is reachable through it.
func Run(ctx context.Context, u *dataset.Universe, rng *xrand.RNG, spec Spec) (*RunResult, error) {
	opts := spec.Opts
	if ctx != nil {
		opts.Ctx = ctx
	}
	if spec.Workers != 0 {
		opts.Workers = spec.Workers
	}

	if opts.Draws != nil {
		if err := shareableSpec(spec); err != nil {
			return nil, err
		}
	}

	// Multiple group-by replaces the universe entirely.
	if spec.Cells != nil {
		mg, err := MultiGroupBy(spec.Cells, rng, opts, spec.MaxDraws)
		if err != nil {
			return nil, err
		}
		return cellRunResult(mg), nil
	}

	if spec.Guarantee != GuarOrder && spec.Aggregate != AggAvg {
		return nil, fmt.Errorf("core: the %s guarantee is only available for AVG runs (got %s)", spec.Guarantee, spec.Aggregate)
	}

	switch spec.Algorithm {
	case AlgoScan:
		if spec.Aggregate != AggAvg || spec.Guarantee != GuarOrder {
			return nil, fmt.Errorf("core: scan computes exact AVGs only")
		}
		res, err := scanParallel(u, spec.Workers)
		if err != nil {
			return nil, err
		}
		return &RunResult{Result: *res}, nil
	case AlgoNoIndex:
		if spec.Aggregate != AggAvg || spec.Guarantee != GuarOrder {
			return nil, fmt.Errorf("core: the no-index algorithm supports plain AVG ordering only")
		}
		if u.TotalSize() == 0 {
			return nil, fmt.Errorf("core: the no-index algorithm needs known group sizes to simulate table-wide tuple sampling")
		}
		ni, err := NoIndex(NewUniverseTupleSource(u), rng, opts, spec.MaxDraws)
		if err != nil {
			return nil, err
		}
		k := u.K()
		return &RunResult{Result: Result{
			Estimates:    ni.Estimates,
			SampleCounts: ni.SampleCounts,
			TotalSamples: ni.TotalSamples,
			// NoIndex draws tuples one at a time; a "round" is one
			// k-draw pass, matching its interval-check cadence.
			Rounds:       int(ni.TotalSamples / int64(k)),
			SettledRound: make([]int, k),
			Capped:       ni.Capped,
		}}, nil
	case AlgoIRefine, AlgoRoundRobin:
		if spec.Aggregate != AggAvg || spec.Guarantee != GuarOrder {
			return nil, fmt.Errorf("core: %s supports plain AVG ordering only; guarantee variants and non-AVG aggregates require IFOCUS", spec.Algorithm)
		}
	case AlgoAuto, AlgoIFocus:
		// The IFOCUS family carries every aggregate and guarantee below.
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", spec.Algorithm)
	}

	switch spec.Aggregate {
	case AggAvg:
		return runAvg(u, rng, spec, opts)
	case AggSum:
		res, err := SumKnownSizes(u, rng, opts)
		if err != nil {
			return nil, err
		}
		return &RunResult{Result: *res}, nil
	case AggNormalizedSum:
		res, err := SumUnknownSizes(u, spec.Fractions, rng, opts)
		if err != nil {
			return nil, err
		}
		return &RunResult{Result: *res}, nil
	case AggCount:
		res, err := CountKnownSizes(u)
		if err != nil {
			return nil, err
		}
		return &RunResult{Result: *res}, nil
	case AggNormalizedCount:
		res, err := CountUnknownSizes(u, spec.Fractions, rng, opts)
		if err != nil {
			return nil, err
		}
		return &RunResult{Result: *res}, nil
	case AggAvgPair:
		multi, err := MultiAgg(u, rng, opts)
		if err != nil {
			return nil, err
		}
		return &RunResult{
			Result: Result{
				Estimates:    multi.EstimatesY,
				SampleCounts: multi.SampleCounts,
				TotalSamples: multi.TotalSamples,
				Rounds:       multi.RoundsY + multi.RoundsZ,
				SettledRound: make([]int, u.K()),
				Capped:       multi.Capped,
			},
			SecondEstimates: multi.EstimatesZ,
		}, nil
	}
	return nil, fmt.Errorf("core: unknown aggregate %v", spec.Aggregate)
}

// shareableSpec reports whether spec's draw path is pure block draws, the
// precondition for feeding it from a shared Options.Draws source. Anything
// that consumes auxiliary randomness outside the per-group sample streams —
// pair draws, membership indicators, whole-table tuple sampling, exact
// scans, cell runs — would need randomness a source-fed sampler does not
// have (RNGFor is nil), so those shapes are rejected here, in one place,
// rather than nil-dereferencing deep inside an algorithm. The engine layer
// makes the same check advisorily (falling back to solo); this is the
// backstop for direct core callers.
func shareableSpec(spec Spec) error {
	if spec.Cells != nil {
		return fmt.Errorf("core: shared draw sources cannot feed multiple-group-by runs")
	}
	switch spec.Algorithm {
	case AlgoAuto, AlgoIFocus, AlgoRoundRobin:
	default:
		return fmt.Errorf("core: shared draw sources require a round-driver algorithm (auto, ifocus, roundrobin); got %s", spec.Algorithm)
	}
	switch spec.Aggregate {
	case AggAvg, AggSum:
	default:
		return fmt.Errorf("core: shared draw sources support AVG and SUM aggregates; %s uses a custom draw path", spec.Aggregate)
	}
	return nil
}

// runAvg dispatches the AVG guarantee variants.
func runAvg(u *dataset.Universe, rng *xrand.RNG, spec Spec, opts Options) (*RunResult, error) {
	switch spec.Guarantee {
	case GuarOrder:
		var res *Result
		var err error
		switch spec.Algorithm {
		case AlgoIRefine:
			res, err = IRefine(u, rng, opts)
		case AlgoRoundRobin:
			res, err = RoundRobin(u, rng, opts)
		default:
			res, err = IFocus(u, rng, opts)
		}
		if err != nil {
			return nil, err
		}
		return &RunResult{Result: *res}, nil
	case GuarTrend:
		res, err := Trend(u, rng, opts)
		if err != nil {
			return nil, err
		}
		return &RunResult{Result: *res}, nil
	case GuarAdjacency:
		res, err := Chloropleth(u, rng, spec.Adjacency, opts)
		if err != nil {
			return nil, err
		}
		return &RunResult{Result: *res}, nil
	case GuarTopT:
		res, err := TopT(u, rng, spec.T, opts)
		if err != nil {
			return nil, err
		}
		return &RunResult{Result: res.Result, TopMembers: res.Members, Membership: res.Membership}, nil
	case GuarValues:
		res, err := WithValues(u, rng, spec.MaxError, opts)
		if err != nil {
			return nil, err
		}
		return &RunResult{Result: *res}, nil
	case GuarMistakes:
		res, err := WithMistakes(u, rng, spec.CorrectPairs, opts)
		if err != nil {
			return nil, err
		}
		return &RunResult{Result: *res}, nil
	}
	return nil, fmt.Errorf("core: unknown guarantee %v", spec.Guarantee)
}

// cellRunResult flattens a multi-group-by result row-major into the common
// Result fields and preserves the per-cell views.
func cellRunResult(mg *MultiGroupByResult) *RunResult {
	rr := &RunResult{
		Result:        Result{TotalSamples: mg.TotalSamples, Capped: mg.Capped},
		CellEstimates: mg.Estimates,
		CellCounts:    mg.Counts,
	}
	for x := range mg.Estimates {
		rr.Estimates = append(rr.Estimates, mg.Estimates[x]...)
		rr.SampleCounts = append(rr.SampleCounts, mg.Counts[x]...)
	}
	rr.SettledRound = make([]int, len(rr.Estimates))
	return rr
}

// ParallelFor runs fn(0..n-1) across at most workers goroutines (clamped
// to n; workers <= 1 runs inline). Each fn call must touch only its own
// index. It is the bounded work-queue primitive (internal/par) shared by
// the parallel scan below, the round driver's draw fan-out, the public
// engine's per-group preprocessing, and sharded table ingestion.
func ParallelFor(n, workers int, fn func(i int)) {
	par.For(n, workers, fn)
}

// ParallelForWorkers is ParallelFor with the worker's identity passed to
// each call, so fn can select per-worker scratch without synchronization.
func ParallelForWorkers(n, workers int, fn func(w, i int)) {
	par.ForWorkers(n, workers, fn)
}

// scanParallel is Scan with the per-group scans fanned out across at most
// workers goroutines. Group scans are independent and each group's sum is
// accumulated in visit order, so the result is bit-identical to Scan.
func scanParallel(u *dataset.Universe, workers int) (*Result, error) {
	if u == nil || u.K() == 0 {
		return nil, fmt.Errorf("core: universe has no groups")
	}
	k := u.K()
	if workers <= 1 || k == 1 {
		return Scan(u)
	}
	estimates := make([]float64, k)
	counts := make([]int64, k)
	errs := make([]error, k)
	ParallelFor(k, workers, func(i int) {
		g := u.Groups[i]
		sc, ok := g.(dataset.Scannable)
		if !ok {
			errs[i] = fmt.Errorf("core: group %q is not scannable; SCAN needs materialized data", g.Name())
			return
		}
		sum := 0.0
		n := sc.Scan(func(v float64) { sum += v })
		if n == 0 {
			errs[i] = fmt.Errorf("core: group %q is empty", g.Name())
			return
		}
		estimates[i] = sum / float64(n)
		counts[i] = n
	})
	var total int64
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
		total += counts[i]
	}
	settled := make([]int, k)
	for i := range settled {
		settled[i] = 1
	}
	return &Result{
		Estimates:    estimates,
		SampleCounts: counts,
		TotalSamples: total,
		Rounds:       1,
		SettledRound: settled,
	}, nil
}
