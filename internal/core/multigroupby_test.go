package core

import (
	"testing"

	"repro/internal/xrand"
)

// testCellSource: kx strata × kz cells with well-separated cell means and
// equal cell populations within a stratum.
type testCellSource struct {
	means [][]float64 // [x][z]
	c     float64
}

func (s *testCellSource) NumX() int  { return len(s.means) }
func (s *testCellSource) NumZ() int  { return len(s.means[0]) }
func (s *testCellSource) C() float64 { return s.c }

func (s *testCellSource) Draw(x int, r *xrand.RNG) (int, float64) {
	z := r.Intn(len(s.means[x]))
	d := xrand.TruncNormal{Mu: s.means[x][z], Sigma: 5, Lo: 0, Hi: s.c}
	return z, d.Sample(r)
}

func TestMultiGroupByOrdersCells(t *testing.T) {
	src := &testCellSource{
		means: [][]float64{
			{10, 40},
			{70, 25},
			{55, 90},
		},
		c: 100,
	}
	opts := DefaultOptions()
	opts.Resolution = 2
	res, err := MultiGroupBy(src, xrand.New(1), opts, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Capped {
		t.Fatal("run capped")
	}
	// Flatten and check the cross-product ordering at the resolution.
	var est, truth []float64
	for x := range src.means {
		for z := range src.means[x] {
			est = append(est, res.Estimates[x][z])
			truth = append(truth, src.means[x][z])
			if res.Counts[x][z] == 0 {
				t.Fatalf("cell (%d,%d) never sampled", x, z)
			}
		}
	}
	if !ResolutionCorrect(est, truth, 2) {
		t.Fatalf("cell ordering wrong: %v vs %v", est, truth)
	}
}

func TestMultiGroupByStrataSettleIndependently(t *testing.T) {
	// Stratum 0's cells are far from everything; strata 1/2 share a
	// contended pair. Stratum 0 must stop being drawn from early.
	src := &testCellSource{
		means: [][]float64{
			{5, 95},
			{48, 70},
			{50, 30},
		},
		c: 100,
	}
	opts := DefaultOptions()
	opts.Resolution = 4
	res, err := MultiGroupBy(src, xrand.New(2), opts, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Capped {
		t.Fatal("run capped")
	}
	s0 := res.Counts[0][0] + res.Counts[0][1]
	s1 := res.Counts[1][0] + res.Counts[1][1]
	s2 := res.Counts[2][0] + res.Counts[2][1]
	if s0 >= s1 || s0 >= s2 {
		t.Fatalf("easy stratum not settled early: %d vs %d/%d", s0, s1, s2)
	}
}

func TestMultiGroupByValidation(t *testing.T) {
	src := &testCellSource{means: [][]float64{{10}}, c: 100}
	if _, err := MultiGroupBy(src, xrand.New(1), Options{Delta: 0}, 0); err == nil {
		t.Fatal("bad delta accepted")
	}
	bad := &badCellSource{}
	if _, err := MultiGroupBy(bad, xrand.New(1), DefaultOptions(), 0); err == nil {
		t.Fatal("empty source accepted")
	}
	// Invalid z from the source is reported, not ignored.
	badZ := &badZSource{}
	if _, err := MultiGroupBy(badZ, xrand.New(1), DefaultOptions(), 0); err == nil {
		t.Fatal("invalid z accepted")
	}
}

type badCellSource struct{}

func (badCellSource) NumX() int                           { return 0 }
func (badCellSource) NumZ() int                           { return 0 }
func (badCellSource) C() float64                          { return 1 }
func (badCellSource) Draw(int, *xrand.RNG) (int, float64) { return 0, 0 }

type badZSource struct{}

func (badZSource) NumX() int                           { return 1 }
func (badZSource) NumZ() int                           { return 1 }
func (badZSource) C() float64                          { return 1 }
func (badZSource) Draw(int, *xrand.RNG) (int, float64) { return 7, 0.5 }

func TestMultiGroupByMaxDraws(t *testing.T) {
	// Two identical cells in different strata never separate; the cap must
	// fire and be reported.
	src := &testCellSource{means: [][]float64{{50}, {50}}, c: 100}
	res, err := MultiGroupBy(src, xrand.New(3), DefaultOptions(), 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Capped {
		t.Fatal("cap did not fire")
	}
	if res.TotalSamples > 10_000 {
		t.Fatalf("overshot the cap: %d", res.TotalSamples)
	}
}
