package core

import (
	"testing"

	"repro/internal/xrand"
)

func TestLineAdjacency(t *testing.T) {
	adj := LineAdjacency(4)
	if len(adj[0]) != 1 || adj[0][0] != 1 {
		t.Fatalf("endpoint adjacency %v", adj[0])
	}
	if len(adj[2]) != 2 {
		t.Fatalf("interior adjacency %v", adj[2])
	}
}

func TestGridAdjacency(t *testing.T) {
	adj := GridAdjacency(2, 3)
	if len(adj) != 6 {
		t.Fatalf("cells %d", len(adj))
	}
	// Corner (0,0) has 2 neighbours; edge (0,1) has 3.
	if len(adj[0]) != 2 || len(adj[1]) != 3 {
		t.Fatalf("corner/edge degrees %d/%d", len(adj[0]), len(adj[1]))
	}
	// Neighbour sets are consistent: (0,0) ~ (0,1) and (1,0).
	want := map[int]bool{1: true, 3: true}
	for _, n := range adj[0] {
		if !want[n] {
			t.Fatalf("corner neighbours %v", adj[0])
		}
	}
}

func TestChloroplethEqualsTrendOnLine(t *testing.T) {
	means := []float64{20, 40, 60, 40.5, 20.5}
	u1 := virtUniverse(means, 1_000_000)
	u2 := virtUniverse(means, 1_000_000)
	tr, err := Trend(u1, xrand.New(3), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ch, err := Chloropleth(u2, xrand.New(3), LineAdjacency(len(means)), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Same seed, same neighbour structure: identical runs.
	if tr.TotalSamples != ch.TotalSamples {
		t.Fatalf("line chloropleth %d differs from trend %d", ch.TotalSamples, tr.TotalSamples)
	}
	if !AdjacentPairsCorrect(ch.Estimates, means, LineAdjacency(len(means)), 0) {
		t.Fatal("adjacent ordering violated")
	}
}

func TestChloroplethGrid(t *testing.T) {
	// 2x3 grid of regions. Diagonal cells (0,0)=30 and (1,1)=30.4 nearly
	// tie but are NOT adjacent, so the run must not pay to separate them.
	means := []float64{30, 60, 90, 75, 30.4, 55}
	u := virtUniverse(means, 10_000_000)
	adj := GridAdjacency(2, 3)
	opts := DefaultOptions()
	opts.MaxRounds = 1 << 21
	res, err := Chloropleth(u, xrand.New(4), adj, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Capped {
		t.Fatal("grid run capped: paid for a non-adjacent tie")
	}
	if !AdjacentPairsCorrect(res.Estimates, means, adj, 0) {
		t.Fatalf("grid ordering violated: %v", res.Estimates)
	}
	// Full ordering would be vastly more expensive.
	full, err := IFocus(virtUniverse(means, 10_000_000), xrand.New(4), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSamples*4 >= full.TotalSamples {
		t.Fatalf("chloropleth (%d) should be much cheaper than full (%d)", res.TotalSamples, full.TotalSamples)
	}
}

func TestChloroplethValidation(t *testing.T) {
	u := virtUniverse([]float64{10, 20}, 1000)
	if _, err := Chloropleth(u, xrand.New(1), Adjacency{{1}}, DefaultOptions()); err == nil {
		t.Fatal("short adjacency accepted")
	}
	if _, err := Chloropleth(u, xrand.New(1), Adjacency{{5}, {}}, DefaultOptions()); err == nil {
		t.Fatal("out-of-range neighbour accepted")
	}
}

func TestAdjacentPairsCorrect(t *testing.T) {
	truth := []float64{10, 20, 30}
	adj := LineAdjacency(3)
	if !AdjacentPairsCorrect([]float64{1, 2, 3}, truth, adj, 0) {
		t.Fatal("correct rejected")
	}
	if AdjacentPairsCorrect([]float64{2, 1, 3}, truth, adj, 0) {
		t.Fatal("broken adjacent pair accepted")
	}
	// Non-adjacent violation (0 vs 2) is permitted.
	disconnected := Adjacency{{1}, {0}, {}}
	if !AdjacentPairsCorrect([]float64{5, 6, 0}, truth, disconnected, 0) {
		t.Fatal("non-adjacent pair should not matter")
	}
}
