package workload

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// FlightBound is the value bound c for the flight attributes, in minutes:
// the paper bounds delays by 24 hours (§2.1).
const FlightBound = 24 * 60.0

// FlightAttr enumerates the three attributes Table 3 visualizes.
type FlightAttr int

// Flight attributes.
const (
	// ElapsedTime is the scheduled-gate-to-gate duration of the flight.
	ElapsedTime FlightAttr = iota
	// ArrivalDelay is minutes of delay at arrival.
	ArrivalDelay
	// DepartureDelay is minutes of delay at departure.
	DepartureDelay
)

// String names the attribute the way Table 3 does.
func (a FlightAttr) String() string {
	switch a {
	case ElapsedTime:
		return "Elapsed Time"
	case ArrivalDelay:
		return "Arrival Delay"
	case DepartureDelay:
		return "Departure Delay"
	default:
		return fmt.Sprintf("FlightAttr(%d)", int(a))
	}
}

// FlightAttrs lists the three Table 3 attributes in paper order.
var FlightAttrs = []FlightAttr{ElapsedTime, ArrivalDelay, DepartureDelay}

// airlineSpec captures the qualitative per-airline structure that drives
// Table 3: the carriers fall into clusters with near-identical mean delays
// (the hard pairs that dominate sample complexity) plus a few outliers, and
// every delay distribution has a big point mass near zero with a heavy
// right tail. Means below are in minutes and shaped after the published
// summaries of the FAA dataset (1987–2008); see DESIGN.md §5 for why only
// this structure — not the raw rows — matters for the reproduction.
type airlineSpec struct {
	name string
	// share of total flights (relative weight; normalized at build time).
	share float64
	// elapsed is the mean scheduled duration; carriers differ broadly.
	elapsed float64
	// arrDelay and depDelay are the mean delays; several carriers sit
	// within a minute of each other, which is what makes this dataset hard.
	arrDelay, depDelay float64
}

var airlines = []airlineSpec{
	{"WN", 1.45, 95, 5.3, 8.8},
	{"AA", 1.10, 135, 7.1, 8.1},
	{"UA", 1.00, 140, 8.0, 9.0},
	{"DL", 1.25, 115, 6.8, 7.4},
	{"US", 0.95, 105, 6.6, 7.2},
	{"NW", 0.80, 120, 6.2, 6.5},
	{"CO", 0.70, 130, 7.3, 7.9},
	{"TW", 0.35, 125, 7.0, 7.6},
	{"HP", 0.40, 110, 7.8, 8.3},
	{"AS", 0.30, 100, 8.4, 9.4},
	{"B6", 0.20, 150, 9.9, 11.2},
	{"EV", 0.35, 80, 11.5, 12.6},
	{"OO", 0.45, 75, 7.5, 8.6},
	{"XE", 0.30, 85, 10.2, 11.0},
	{"MQ", 0.50, 70, 9.1, 10.1},
	{"FL", 0.25, 90, 8.7, 9.7},
	{"YV", 0.20, 78, 10.8, 11.8},
	{"F9", 0.15, 112, 6.4, 7.0},
	{"HA", 0.10, 60, 2.5, 2.0},
	{"AQ", 0.05, 55, 1.8, 1.5},
}

// flightDist builds the value distribution of one attribute for one
// airline: elapsed times are a truncated normal around the carrier's stage
// length; delays are a mixture of "on time" (mass near zero) and a long
// delayed tail, tuned so the overall mean matches the spec.
func flightDist(s airlineSpec, attr FlightAttr, rng *xrand.RNG) xrand.Dist {
	switch attr {
	case ElapsedTime:
		sigma := 20 + 30*rng.Float64()
		return xrand.TruncNormal{Mu: s.elapsed, Sigma: sigma, Lo: 20, Hi: FlightBound}
	case ArrivalDelay, DepartureDelay:
		mean := s.arrDelay
		if attr == DepartureDelay {
			mean = s.depDelay
		}
		// ~75% of flights cluster near zero delay; the delayed tail is a
		// wide truncated normal whose mean is solved so the mixture's mean
		// matches the carrier's.
		onTime := xrand.TruncNormal{Mu: 2, Sigma: 3, Lo: 0, Hi: 30}
		pOnTime := 0.75
		// mean = p*muOn + (1-p)*muTail  =>  muTail target:
		target := (mean - pOnTime*onTime.Mean()) / (1 - pOnTime)
		if target < 5 {
			target = 5
		}
		tail := xrand.TruncNormal{Sigma: 45, Lo: 0, Hi: FlightBound}
		// TruncNormal's analytical mean differs from Mu under truncation;
		// bisect Mu so the realized tail mean hits the target. Mean is
		// monotone increasing in Mu, so bisection is exact and fast.
		lo, hi := -20*tail.Sigma, FlightBound
		for i := 0; i < 80; i++ {
			tail.Mu = (lo + hi) / 2
			if tail.Mean() < target {
				lo = tail.Mu
			} else {
				hi = tail.Mu
			}
		}
		return xrand.NewMixture(
			[]xrand.Dist{onTime, tail},
			[]float64{pOnTime, 1 - pOnTime},
		)
	default:
		panic("workload: unknown flight attribute")
	}
}

// FlightsVirtual builds a virtual universe of the given total size for one
// flight attribute. Seed controls the per-airline shape parameters.
func FlightsVirtual(attr FlightAttr, totalRows int64, seed uint64) (*dataset.Universe, error) {
	if totalRows < int64(len(airlines)) {
		return nil, fmt.Errorf("workload: %d rows cannot cover %d airlines", totalRows, len(airlines))
	}
	rng := xrand.New(seed)
	var shareSum float64
	for _, s := range airlines {
		shareSum += s.share
	}
	groups := make([]dataset.Group, len(airlines))
	var assigned int64
	for i, s := range airlines {
		n := int64(float64(totalRows) * s.share / shareSum)
		if n == 0 {
			n = 1
		}
		if i == len(airlines)-1 {
			n = totalRows - assigned
		}
		assigned += n
		groups[i] = dataset.NewDistGroup(s.name, flightDist(s, attr, rng), n)
	}
	return dataset.NewUniverse(FlightBound, groups...), nil
}

// FlightRow is one synthetic flight record with all three attributes.
type FlightRow struct {
	Airline                     string
	Elapsed, ArrDelay, DepDelay float64
}

// FlightsRows generates n materialized flight records, for loading into a
// NEEDLETAIL table. Rows stream through the callback to avoid holding the
// full dataset.
func FlightsRows(n int64, seed uint64, fn func(FlightRow) error) error {
	rng := xrand.New(seed)
	var shareSum float64
	for _, s := range airlines {
		shareSum += s.share
	}
	dists := make([][3]xrand.Dist, len(airlines))
	for i, s := range airlines {
		dists[i] = [3]xrand.Dist{
			flightDist(s, ElapsedTime, rng),
			flightDist(s, ArrivalDelay, rng),
			flightDist(s, DepartureDelay, rng),
		}
	}
	cum := make([]float64, len(airlines))
	run := 0.0
	for i, s := range airlines {
		run += s.share / shareSum
		cum[i] = run
	}
	for row := int64(0); row < n; row++ {
		u := rng.Float64()
		a := len(airlines) - 1
		for i, c := range cum {
			if u < c {
				a = i
				break
			}
		}
		r := FlightRow{
			Airline:  airlines[a].name,
			Elapsed:  dists[a][0].Sample(rng),
			ArrDelay: dists[a][1].Sample(rng),
			DepDelay: dists[a][2].Sample(rng),
		}
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// AirlineNames returns the carrier codes in spec order.
func AirlineNames() []string {
	names := make([]string, len(airlines))
	for i, s := range airlines {
		names[i] = s.name
	}
	return names
}
