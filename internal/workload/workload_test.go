package workload

import (
	"math"
	"testing"

	"repro/internal/dataset"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		TruncNorm: "truncnorm", MixtureKind: "mixture",
		BernoulliKind: "bernoulli", HardKind: "hard", Kind(99): "Kind(99)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%v != %s", k, want)
		}
	}
}

func TestVirtualBasics(t *testing.T) {
	for _, kind := range []Kind{TruncNorm, MixtureKind, BernoulliKind} {
		u, err := Virtual(Config{Kind: kind, K: 10, TotalRows: 1_000_000, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if u.K() != 10 || u.TotalSize() != 1_000_000 {
			t.Fatalf("%v: shape %d/%d", kind, u.K(), u.TotalSize())
		}
		for _, m := range u.TrueMeans() {
			if m < 0 || m > DomainBound {
				t.Fatalf("%v: mean %v out of domain", kind, m)
			}
		}
	}
}

func TestVirtualDeterministic(t *testing.T) {
	a, err := Virtual(Config{Kind: MixtureKind, K: 5, TotalRows: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Virtual(Config{Kind: MixtureKind, K: 5, TotalRows: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	am, bm := a.TrueMeans(), b.TrueMeans()
	for i := range am {
		if am[i] != bm[i] {
			t.Fatal("same seed produced different datasets")
		}
	}
	c, err := Virtual(Config{Kind: MixtureKind, K: 5, TotalRows: 1000, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	cm := c.TrueMeans()
	same := true
	for i := range am {
		if am[i] != cm[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestHardFamilyEta(t *testing.T) {
	u, err := Virtual(Config{Kind: HardKind, K: 10, TotalRows: 1000, Gamma: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	means := u.TrueMeans()
	for i, m := range means {
		want := 40 + 0.5*float64(i)
		if math.Abs(m-want) > 1e-9 {
			t.Fatalf("hard mean %d = %v, want %v", i, m, want)
		}
	}
	if eta := dataset.MinEta(means); math.Abs(eta-0.5) > 1e-9 {
		t.Fatalf("hard eta %v, want gamma", eta)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Kind: MixtureKind, K: 0, TotalRows: 100},
		{Kind: MixtureKind, K: 10, TotalRows: 5},
		{Kind: HardKind, K: 5, TotalRows: 100, Gamma: 0},
		{Kind: HardKind, K: 5, TotalRows: 100, Gamma: 2},
		{Kind: Kind(42), K: 5, TotalRows: 100},
		{Kind: MixtureKind, K: 3, TotalRows: 100, Proportions: []float64{0.5, 0.5}},
		{Kind: MixtureKind, K: 2, TotalRows: 100, Proportions: []float64{0.5, -0.1}},
	}
	for i, cfg := range bad {
		if _, err := Virtual(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestProportions(t *testing.T) {
	props := []float64{0.7, 0.1, 0.1, 0.1}
	u, err := Virtual(Config{Kind: MixtureKind, K: 4, TotalRows: 100_000, Proportions: props, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if u.TotalSize() != 100_000 {
		t.Fatalf("total %d", u.TotalSize())
	}
	if frac := float64(u.Groups[0].Size()) / 100_000; math.Abs(frac-0.7) > 0.01 {
		t.Fatalf("first group share %v", frac)
	}
}

func TestMaterializeMatchesVirtualStatistically(t *testing.T) {
	cfg := Config{Kind: TruncNorm, K: 4, TotalRows: 200_000, StdDev: 5, Seed: 3}
	v, err := Virtual(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Materialize(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed → same distributions; the materialized empirical means
	// must track the virtual analytical means.
	vm, mm := v.TrueMeans(), m.TrueMeans()
	for i := range vm {
		if math.Abs(vm[i]-mm[i]) > 0.5 {
			t.Fatalf("group %d: virtual %v vs materialized %v", i, vm[i], mm[i])
		}
	}
}

func TestFlightsVirtual(t *testing.T) {
	for _, attr := range FlightAttrs {
		u, err := FlightsVirtual(attr, 10_000_000, 1)
		if err != nil {
			t.Fatalf("%v: %v", attr, err)
		}
		if u.K() != len(AirlineNames()) {
			t.Fatalf("%v: %d airlines", attr, u.K())
		}
		if u.TotalSize() != 10_000_000 {
			t.Fatalf("%v: total %d", attr, u.TotalSize())
		}
		for _, m := range u.TrueMeans() {
			if m < 0 || m > FlightBound {
				t.Fatalf("%v: mean %v out of bounds", attr, m)
			}
		}
	}
	if _, err := FlightsVirtual(ArrivalDelay, 3, 1); err == nil {
		t.Fatal("tiny dataset accepted")
	}
}

func TestFlightsDelayMeansMatchSpec(t *testing.T) {
	// The synthetic generator must hit the per-airline delay means it
	// advertises (they define the hard pairs that make Table 3 hard).
	u, err := FlightsVirtual(ArrivalDelay, 1_000_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	names := AirlineNames()
	for i, g := range u.Groups {
		if g.Name() != names[i] {
			t.Fatalf("airline order changed: %s vs %s", g.Name(), names[i])
		}
	}
	// Spot-check two carriers with known spec means.
	byName := map[string]float64{}
	for _, g := range u.Groups {
		byName[g.Name()] = g.TrueMean()
	}
	if math.Abs(byName["HA"]-2.5) > 1.5 {
		t.Fatalf("HA mean %v too far from spec 2.5", byName["HA"])
	}
	if byName["EV"] < byName["WN"] {
		t.Fatal("EV (worst delays) should exceed WN (best big carrier)")
	}
}

func TestFlightsRows(t *testing.T) {
	count := 0
	seen := map[string]bool{}
	err := FlightsRows(50_000, 4, func(r FlightRow) error {
		count++
		seen[r.Airline] = true
		if r.Elapsed < 0 || r.Elapsed > FlightBound ||
			r.ArrDelay < 0 || r.ArrDelay > FlightBound ||
			r.DepDelay < 0 || r.DepDelay > FlightBound {
			t.Fatalf("row out of bounds: %+v", r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 50_000 {
		t.Fatalf("callback count %d", count)
	}
	if len(seen) < 15 {
		t.Fatalf("only %d airlines appeared", len(seen))
	}
}

func TestFlightsRowsPropagatesError(t *testing.T) {
	want := errSentinel{}
	err := FlightsRows(100, 1, func(FlightRow) error { return want })
	if err != want {
		t.Fatalf("err %v", err)
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "sentinel" }

func TestDists(t *testing.T) {
	dists, sizes, err := Dists(Config{Kind: BernoulliKind, K: 3, TotalRows: 300, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) != 3 || len(sizes) != 3 {
		t.Fatalf("lengths %d/%d", len(dists), len(sizes))
	}
	var total int64
	for _, n := range sizes {
		total += n
	}
	if total != 300 {
		t.Fatalf("sizes sum %d", total)
	}
}
