// Package workload generates the paper's experimental datasets.
//
// Synthetic families (§5.2): truncated normals ("truncnorm"), mixtures of
// truncated normals ("mixture", the paper's default), two-point Bernoulli
// groups ("bernoulli"), and the difficulty-controlled hard Bernoulli
// ("hard", means 40 + γ·i so that η = γ exactly). Each generator can emit
// either virtual (distribution-backed) groups for the large-scale sweeps or
// materialized slices for exact without-replacement runs and NEEDLETAIL
// tables.
//
// The flights generator substitutes for the paper's FAA flight-records
// dataset (see DESIGN.md §5): it synthesizes per-airline Elapsed Time,
// Arrival Delay and Departure Delay distributions with the structure that
// drives Table 3 — clusters of airlines with near-identical means (hard
// pairs) plus a few clear outliers, heavy right tails, values bounded by
// the paper's c (24 hours for delays).
package workload

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/xrand"
)

// DomainBound is the value bound c shared by all synthetic families: every
// generated value lies in [0, 100].
const DomainBound = 100.0

// Kind enumerates the synthetic dataset families of §5.2.
type Kind int

// Synthetic dataset families.
const (
	// TruncNorm draws each group from one truncated normal with mean
	// U[0,100] and variance from {4, 25, 64, 100}.
	TruncNorm Kind = iota
	// MixtureKind draws each group from a mixture of 1–5 truncated normals
	// with means U[0,100] and variances U[1,10]; the paper's default.
	MixtureKind
	// BernoulliKind draws each group from {0, 100} with a mean U[0,100].
	BernoulliKind
	// HardKind fixes group i's mean at 40 + γ·i over {0, 100} draws, so the
	// instance difficulty c²/η² is controlled exactly by γ.
	HardKind
)

// String names the family the way the paper's figures do.
func (k Kind) String() string {
	switch k {
	case TruncNorm:
		return "truncnorm"
	case MixtureKind:
		return "mixture"
	case BernoulliKind:
		return "bernoulli"
	case HardKind:
		return "hard"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config parameterizes a synthetic dataset.
type Config struct {
	// Kind selects the family.
	Kind Kind
	// K is the number of groups.
	K int
	// TotalRows is the total dataset size; rows are split across groups by
	// Proportions (equal split when nil).
	TotalRows int64
	// Proportions optionally gives each group's share of TotalRows; it must
	// sum to ~1. Used by the skew experiment (Figure 7(a)).
	Proportions []float64
	// Gamma is the mean spacing of the hard family (η = γ).
	Gamma float64
	// StdDev fixes the truncnorm standard deviation (0 = the paper's random
	// choice from {2, 5, 8, 10}); used by Figures 7(b) and 7(c).
	StdDev float64
	// Seed drives all randomness in the dataset's construction.
	Seed uint64
}

// groupSizes splits TotalRows per the proportions.
func (c Config) groupSizes() ([]int64, error) {
	if c.K <= 0 {
		return nil, fmt.Errorf("workload: need at least one group, got %d", c.K)
	}
	if c.TotalRows < int64(c.K) {
		return nil, fmt.Errorf("workload: %d rows cannot cover %d groups", c.TotalRows, c.K)
	}
	sizes := make([]int64, c.K)
	if c.Proportions == nil {
		per := c.TotalRows / int64(c.K)
		for i := range sizes {
			sizes[i] = per
		}
		sizes[c.K-1] += c.TotalRows - per*int64(c.K)
		return sizes, nil
	}
	if len(c.Proportions) != c.K {
		return nil, fmt.Errorf("workload: %d proportions for %d groups", len(c.Proportions), c.K)
	}
	var used int64
	for i, p := range c.Proportions {
		if p <= 0 {
			return nil, fmt.Errorf("workload: proportion %d is non-positive", i)
		}
		sizes[i] = int64(p * float64(c.TotalRows))
		if sizes[i] == 0 {
			sizes[i] = 1
		}
		used += sizes[i]
	}
	sizes[c.K-1] += c.TotalRows - used
	if sizes[c.K-1] <= 0 {
		return nil, fmt.Errorf("workload: proportions overflow the row budget")
	}
	return sizes, nil
}

// dists builds the per-group distributions for the config.
func (c Config) dists(rng *xrand.RNG) ([]xrand.Dist, error) {
	dists := make([]xrand.Dist, c.K)
	switch c.Kind {
	case TruncNorm:
		variances := []float64{4, 25, 64, 100}
		for i := range dists {
			mu := rng.Float64() * DomainBound
			var sigma float64
			if c.StdDev > 0 {
				sigma = c.StdDev
			} else {
				v := variances[rng.Intn(len(variances))]
				sigma = sqrt(v)
			}
			dists[i] = xrand.TruncNormal{Mu: mu, Sigma: sigma, Lo: 0, Hi: DomainBound}
		}
	case MixtureKind:
		for i := range dists {
			n := 1 + rng.Intn(5)
			comps := make([]xrand.Dist, n)
			weights := make([]float64, n)
			for j := 0; j < n; j++ {
				mu := rng.Float64() * DomainBound
				v := 1 + 9*rng.Float64()
				comps[j] = xrand.TruncNormal{Mu: mu, Sigma: sqrt(v), Lo: 0, Hi: DomainBound}
				weights[j] = 1
			}
			dists[i] = xrand.NewMixture(comps, weights)
		}
	case BernoulliKind:
		for i := range dists {
			mean := rng.Float64() * DomainBound
			dists[i] = xrand.NewBernoulliWithMean(0, DomainBound, mean)
		}
	case HardKind:
		if c.Gamma <= 0 || c.Gamma >= 2 {
			return nil, fmt.Errorf("workload: hard family needs gamma in (0,2), got %v", c.Gamma)
		}
		for i := range dists {
			mean := 40 + c.Gamma*float64(i)
			dists[i] = xrand.NewBernoulliWithMean(0, DomainBound, mean)
		}
	default:
		return nil, fmt.Errorf("workload: unknown kind %v", c.Kind)
	}
	return dists, nil
}

// Virtual generates a universe of distribution-backed groups (no
// materialization): the form used for the paper's 10⁷–10¹⁰-row sweeps.
func Virtual(c Config) (*dataset.Universe, error) {
	rng := xrand.New(c.Seed)
	sizes, err := c.groupSizes()
	if err != nil {
		return nil, err
	}
	dists, err := c.dists(rng)
	if err != nil {
		return nil, err
	}
	groups := make([]dataset.Group, c.K)
	for i := range groups {
		groups[i] = dataset.NewDistGroup(groupName(i), dists[i], sizes[i])
	}
	return dataset.NewUniverse(DomainBound, groups...), nil
}

// Materialize generates a universe of fully materialized groups drawn from
// the same distributions, enabling exact without-replacement sampling and
// SCAN. Memory is 8 bytes per row; keep TotalRows modest.
func Materialize(c Config) (*dataset.Universe, error) {
	rng := xrand.New(c.Seed)
	sizes, err := c.groupSizes()
	if err != nil {
		return nil, err
	}
	dists, err := c.dists(rng)
	if err != nil {
		return nil, err
	}
	groups := make([]dataset.Group, c.K)
	for i := range groups {
		vals := make([]float64, sizes[i])
		for j := range vals {
			vals[j] = dists[i].Sample(rng)
		}
		groups[i] = dataset.NewSliceGroup(groupName(i), vals)
	}
	return dataset.NewUniverse(DomainBound, groups...), nil
}

// Dists exposes the per-group distributions for a config (used to build
// NEEDLETAIL virtual tables with the same populations).
func Dists(c Config) ([]xrand.Dist, []int64, error) {
	rng := xrand.New(c.Seed)
	sizes, err := c.groupSizes()
	if err != nil {
		return nil, nil, err
	}
	dists, err := c.dists(rng)
	if err != nil {
		return nil, nil, err
	}
	return dists, sizes, nil
}

func groupName(i int) string { return fmt.Sprintf("g%02d", i) }

func sqrt(v float64) float64 { return math.Sqrt(v) }
