package bitmap

import "math/bits"

// RLE is a word-aligned run-length-compressed bitmap in the style of
// WAH/EWAH (the compression family the paper cites for NEEDLETAIL's
// indexes). The encoding alternates two kinds of 64-bit entries:
//
//   - fill words:    header bit 1, fill-value bit, 62-bit run length
//     (a run of identical all-zero or all-one 64-bit words);
//   - literal words: header bit 0 is implied by position — each fill header
//     carries the count of literal words that follow it.
//
// Concretely the stream is a sequence of (header, literals...) groups:
// header = 1-bit fill value | 31-bit fill run | 32-bit literal count.
// This is EWAH's layout and compresses clustered attributes (like a group-by
// column in insertion order) by orders of magnitude.
type RLE struct {
	stream []uint64
	n      int // bits covered
	count  int // set bits
}

const (
	rleFillBit   = 63
	rleRunShift  = 32
	rleRunMask   = (1 << 31) - 1
	rleLitMask   = (1 << 32) - 1
	maxFillRun   = rleRunMask
	maxLiteralCt = rleLitMask
)

// Compress encodes a plain bitmap.
func Compress(b *Bitmap) *RLE {
	out := &RLE{n: b.n, count: b.Count()}
	words := b.words
	i := 0
	for i < len(words) {
		// Measure a fill run (all zeros or all ones).
		fillVal := uint64(0)
		run := 0
		if words[i] == 0 || words[i] == ^uint64(0) {
			if words[i] != 0 {
				fillVal = 1
			}
			for i < len(words) && run < maxFillRun {
				if (fillVal == 0 && words[i] != 0) || (fillVal == 1 && words[i] != ^uint64(0)) {
					break
				}
				run++
				i++
			}
		}
		// Measure the literal stretch that follows.
		start := i
		for i < len(words) && i-start < maxLiteralCt {
			if words[i] == 0 || words[i] == ^uint64(0) {
				// A single homogeneous word mid-stream is cheaper as a
				// literal only if it does not start a longer run.
				if i+1 < len(words) && (words[i+1] == words[i]) {
					break
				}
				if i+1 >= len(words) {
					// trailing homogeneous word: let the next header take it
					break
				}
			}
			i++
		}
		lits := i - start
		header := fillVal<<rleFillBit | uint64(run)<<rleRunShift | uint64(lits)
		out.stream = append(out.stream, header)
		out.stream = append(out.stream, words[start:start+lits]...)
	}
	return out
}

// Decompress expands back to a plain bitmap.
func (r *RLE) Decompress() *Bitmap {
	b := New(r.n)
	wi := 0
	for s := 0; s < len(r.stream); {
		header := r.stream[s]
		s++
		fillVal := header >> rleFillBit
		run := int(header >> rleRunShift & rleRunMask)
		lits := int(header & rleLitMask)
		if fillVal == 1 {
			for j := 0; j < run; j++ {
				b.words[wi+j] = ^uint64(0)
			}
		}
		wi += run
		copy(b.words[wi:wi+lits], r.stream[s:s+lits])
		s += lits
		wi += lits
	}
	// Mask any trailing garbage beyond n (possible when n%64 != 0 and a
	// one-fill covered the final partial word).
	if rem := r.n % wordBits; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= 1<<uint(rem) - 1
	}
	b.dirty()
	return b
}

// Len returns the number of rows covered.
func (r *RLE) Len() int { return r.n }

// Count returns the number of set bits.
func (r *RLE) Count() int { return r.count }

// CompressedWords returns the size of the encoded stream in 64-bit words,
// for compression-ratio reporting.
func (r *RLE) CompressedWords() int { return len(r.stream) }

// PlainWords returns the size an uncompressed bitmap of the same coverage
// would occupy, in 64-bit words.
func (r *RLE) PlainWords() int { return (r.n + wordBits - 1) / wordBits }

// ForEach calls fn with each set bit position in ascending order; returning
// false stops the iteration. Iteration works directly on the compressed
// stream without decompressing.
func (r *RLE) ForEach(fn func(pos int) bool) {
	wi := 0
	for s := 0; s < len(r.stream); {
		header := r.stream[s]
		s++
		fillVal := header >> rleFillBit
		run := int(header >> rleRunShift & rleRunMask)
		lits := int(header & rleLitMask)
		if fillVal == 1 {
			for j := 0; j < run; j++ {
				base := (wi + j) * wordBits
				for o := 0; o < wordBits; o++ {
					pos := base + o
					if pos >= r.n {
						return
					}
					if !fn(pos) {
						return
					}
				}
			}
		}
		wi += run
		for j := 0; j < lits; j++ {
			w := r.stream[s+j]
			base := (wi + j) * wordBits
			for w != 0 {
				t := bits.TrailingZeros64(w)
				pos := base + t
				if pos >= r.n {
					return
				}
				if !fn(pos) {
					return
				}
				w &= w - 1
			}
		}
		s += lits
		wi += lits
	}
}
