package bitmap

import (
	"math/bits"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestBitmapSetGetClear(t *testing.T) {
	b := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if b.Get(i) {
			t.Fatalf("fresh bit %d set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count() != 8 {
		t.Fatalf("count %d", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 7 {
		t.Fatal("clear failed")
	}
}

func TestBitmapBoundsPanic(t *testing.T) {
	b := New(10)
	for _, fn := range []func(){
		func() { b.Set(10) },
		func() { b.Get(-1) },
		func() { b.Clear(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestSelectRankInverse(t *testing.T) {
	// Property: over a random bitmap, Select(Rank(pos)) == pos for every
	// set position, and Select enumerates set bits in order.
	r := xrand.New(1)
	check := func(nRaw uint16, density uint8) bool {
		n := 1 + int(nRaw%5000)
		b := New(n)
		p := 0.02 + float64(density%200)/250
		var setPos []int
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				b.Set(i)
				setPos = append(setPos, i)
			}
		}
		if b.Count() != len(setPos) {
			return false
		}
		for rank, pos := range setPos {
			got, err := b.Select(rank)
			if err != nil || got != pos {
				return false
			}
			if b.Rank(pos) != rank {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSelectOutOfRange(t *testing.T) {
	b := New(100)
	b.Set(50)
	if _, err := b.Select(1); err == nil {
		t.Fatal("rank past count accepted")
	}
	if _, err := b.Select(-1); err == nil {
		t.Fatal("negative rank accepted")
	}
	if pos, err := b.Select(0); err != nil || pos != 50 {
		t.Fatalf("select(0) = %d, %v", pos, err)
	}
}

func TestSelectAfterMutation(t *testing.T) {
	// The lazy index must invalidate on writes.
	b := New(1000)
	b.Set(10)
	if pos, _ := b.Select(0); pos != 10 {
		t.Fatal("select before mutation wrong")
	}
	b.Set(5)
	if pos, _ := b.Select(0); pos != 5 {
		t.Fatal("index not invalidated by Set")
	}
	b.Clear(5)
	if pos, _ := b.Select(0); pos != 10 {
		t.Fatal("index not invalidated by Clear")
	}
}

func TestBitmapOps(t *testing.T) {
	n := 300
	a, b := New(n), New(n)
	for i := 0; i < n; i += 2 {
		a.Set(i)
	}
	for i := 0; i < n; i += 3 {
		b.Set(i)
	}
	and := a.And(b)
	or := a.Or(b)
	andNot := a.AndNot(b)
	not := a.Not()
	for i := 0; i < n; i++ {
		even, third := i%2 == 0, i%3 == 0
		if and.Get(i) != (even && third) {
			t.Fatalf("and bit %d", i)
		}
		if or.Get(i) != (even || third) {
			t.Fatalf("or bit %d", i)
		}
		if andNot.Get(i) != (even && !third) {
			t.Fatalf("andnot bit %d", i)
		}
		if not.Get(i) != !even {
			t.Fatalf("not bit %d", i)
		}
	}
	// Not must not set phantom bits past n.
	if not.Count() != n/2 {
		t.Fatalf("not count %d, want %d", not.Count(), n/2)
	}
}

func TestBitmapOpsLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	New(10).And(New(20))
}

func TestForEachOrderAndStop(t *testing.T) {
	b := New(500)
	want := []int{3, 64, 65, 130, 499}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(pos int) bool {
		got = append(got, pos)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order wrong: %v", got)
		}
	}
	// Early stop.
	count := 0
	b.ForEach(func(pos int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("stop ignored: %d", count)
	}
}

func TestSelectUniformSampling(t *testing.T) {
	// Sampling via Select(rand(count)) must be uniform over set bits —
	// the property random tuple retrieval depends on.
	b := New(1000)
	positions := []int{10, 200, 333, 512, 900}
	for _, p := range positions {
		b.Set(p)
	}
	r := xrand.New(5)
	counts := map[int]int{}
	const n = 50_000
	for i := 0; i < n; i++ {
		pos, err := b.Select(r.Intn(b.Count()))
		if err != nil {
			t.Fatal(err)
		}
		counts[pos]++
	}
	for _, p := range positions {
		frac := float64(counts[p]) / n
		if frac < 0.17 || frac > 0.23 {
			t.Fatalf("position %d drawn %v of the time, want ~0.2", p, frac)
		}
	}
}

func TestSelectInWordMatchesNaive(t *testing.T) {
	// The binary-descent selectInWord must agree with the obvious
	// clear-lowest-bit definition for every rank of random words,
	// including the all-ones and single-bit extremes.
	naive := func(w uint64, rank int) int {
		for i := 0; i < rank; i++ {
			w &= w - 1
		}
		return bits.TrailingZeros64(w)
	}
	r := xrand.New(7)
	words := []uint64{^uint64(0), 1, 1 << 63, 0x8000000000000001}
	for i := 0; i < 500; i++ {
		words = append(words, r.Uint64())
	}
	for _, w := range words {
		for rank := 0; rank < bits.OnesCount64(w); rank++ {
			if got, want := selectInWord(w, rank), naive(w, rank); got != want {
				t.Fatalf("selectInWord(%#x, %d) = %d, want %d", w, rank, got, want)
			}
		}
	}
}

func TestSelectRankDense(t *testing.T) {
	// A fully dense bitmap is the worst case the word-scan select paid
	// for: every select must still land exactly, across superblock and
	// word boundaries.
	n := 3*64*selectBlockWords + 17
	b := New(n)
	for i := 0; i < n; i++ {
		b.Set(i)
	}
	for _, rank := range []int{0, 1, 63, 64, 4095, 4096, 8191, 8192, n - 1} {
		pos, err := b.Select(rank)
		if err != nil || pos != rank {
			t.Fatalf("dense Select(%d) = %d, %v", rank, pos, err)
		}
		if b.Rank(rank) != rank {
			t.Fatalf("dense Rank(%d) = %d", rank, b.Rank(rank))
		}
	}
}
