package bitmap

import (
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestRLERoundTripClustered(t *testing.T) {
	// A clustered bitmap (one contiguous run of 1s) must compress well and
	// round-trip exactly.
	n := 100_000
	b := New(n)
	for i := 30_000; i < 60_000; i++ {
		b.Set(i)
	}
	c := Compress(b)
	if c.Count() != b.Count() || c.Len() != n {
		t.Fatalf("metadata mismatch: %d/%d", c.Count(), c.Len())
	}
	if c.CompressedWords()*10 > c.PlainWords() {
		t.Fatalf("clustered bitmap barely compressed: %d of %d words",
			c.CompressedWords(), c.PlainWords())
	}
	d := c.Decompress()
	for i := 0; i < n; i++ {
		if b.Get(i) != d.Get(i) {
			t.Fatalf("bit %d lost in round trip", i)
		}
	}
}

func TestRLERoundTripProperty(t *testing.T) {
	r := xrand.New(2)
	check := func(nRaw uint16, density uint8, clusters uint8) bool {
		n := 1 + int(nRaw%3000)
		b := New(n)
		// Mix of random bits and runs to hit literal and fill paths.
		p := float64(density) / 255
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				b.Set(i)
			}
		}
		for c := 0; c < int(clusters%4); c++ {
			start := r.Intn(n)
			end := start + r.Intn(n-start)
			for i := start; i < end; i++ {
				b.Set(i)
			}
		}
		c := Compress(b)
		d := c.Decompress()
		if d.Count() != b.Count() {
			return false
		}
		for w := range b.words {
			if b.words[w] != d.words[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRLEEdgeCases(t *testing.T) {
	// All zeros.
	z := Compress(New(1000))
	if z.Count() != 0 || z.Decompress().Count() != 0 {
		t.Fatal("all-zero round trip failed")
	}
	// All ones, non-word-aligned length.
	n := 1000
	b := New(n)
	for i := 0; i < n; i++ {
		b.Set(i)
	}
	c := Compress(b)
	d := c.Decompress()
	if d.Count() != n {
		t.Fatalf("all-ones count %d, want %d", d.Count(), n)
	}
	// One bit at the very end.
	b2 := New(129)
	b2.Set(128)
	if got := Compress(b2).Decompress(); !got.Get(128) || got.Count() != 1 {
		t.Fatal("final-bit round trip failed")
	}
}

func TestRLEForEachMatchesPlain(t *testing.T) {
	r := xrand.New(3)
	n := 5000
	b := New(n)
	for i := 0; i < n; i++ {
		if r.Float64() < 0.1 {
			b.Set(i)
		}
	}
	// A solid run exercises the fill path of ForEach.
	for i := 1024; i < 2048; i++ {
		b.Set(i)
	}
	c := Compress(b)
	var plain, compressed []int
	b.ForEach(func(pos int) bool { plain = append(plain, pos); return true })
	c.ForEach(func(pos int) bool { compressed = append(compressed, pos); return true })
	if len(plain) != len(compressed) {
		t.Fatalf("lengths differ: %d vs %d", len(plain), len(compressed))
	}
	for i := range plain {
		if plain[i] != compressed[i] {
			t.Fatalf("position %d differs: %d vs %d", i, plain[i], compressed[i])
		}
	}
	// Early stop.
	seen := 0
	c.ForEach(func(pos int) bool { seen++; return seen < 5 })
	if seen != 5 {
		t.Fatalf("stop ignored: %d", seen)
	}
}
