// Package bitmap implements the selection-vector machinery shared by both
// table stores: uncompressed bitmaps with O(log n) rank/select (the
// constant-time random tuple retrieval of the paper's §4), the word-aligned
// run-length-compressed form the paper cites for clustered attributes, and
// the boolean algebra (AND/OR/NOT) that composes group indexes with ad-hoc
// predicate bitmaps — the same bulk-bitwise selection technique the PIM
// line of work applies to analytics scans.
//
// The dense index structure mirrors the paper's description: one bitmap per
// value of an indexed attribute, organized hierarchically so that
// retrieving the rank-k set bit ("select") takes time logarithmic in the
// number of rows.
package bitmap

import (
	"fmt"
	"math/bits"
)

const (
	wordBits = 64
	// selectBlockWords is the number of 64-bit words per rank superblock:
	// the hierarchical layer that gives O(log n) select.
	selectBlockWords = 64
	// hintShift: a select hint is stored for every 1<<hintShift ranks,
	// mapping the rank directly to the word containing its set bit. The
	// search then runs only between two adjacent hints — a handful of
	// words at any density — instead of walking the full hierarchy.
	hintShift = 8
)

// Bitmap is an uncompressed bitmap over row IDs with a two-level rank index
// enabling O(log n) select. The rank index is built lazily on the first
// Select/Rank call and invalidated by mutation.
type Bitmap struct {
	words []uint64
	n     int // number of valid bits

	count int      // cached popcount; -1 when dirty
	super []int64  // cumulative set bits before each superblock
	sub   []uint16 // per word: set bits before it within its superblock
	hints []uint32 // per 1<<hintShift ranks: the word holding that set bit
}

// New returns an empty bitmap over n rows.
func New(n int) *Bitmap {
	if n < 0 {
		panic("bitmap: negative bitmap size")
	}
	return &Bitmap{
		words: make([]uint64, (n+wordBits-1)/wordBits),
		n:     n,
		count: 0,
	}
}

// Len returns the number of rows the bitmap covers.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i.
func (b *Bitmap) Set(i int) {
	b.checkIndex(i)
	w, off := i/wordBits, uint(i%wordBits)
	if b.words[w]&(1<<off) == 0 {
		b.words[w] |= 1 << off
		b.dirty()
	}
}

// Clear clears bit i.
func (b *Bitmap) Clear(i int) {
	b.checkIndex(i)
	w, off := i/wordBits, uint(i%wordBits)
	if b.words[w]&(1<<off) != 0 {
		b.words[w] &^= 1 << off
		b.dirty()
	}
}

// Get reports bit i.
func (b *Bitmap) Get(i int) bool {
	b.checkIndex(i)
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (b *Bitmap) checkIndex(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitmap: bit %d out of range [0,%d)", i, b.n))
	}
}

func (b *Bitmap) dirty() {
	b.count = -1
	b.super = nil
	b.sub = nil
	b.hints = nil
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	if b.count < 0 {
		c := 0
		for _, w := range b.words {
			c += bits.OnesCount64(w)
		}
		b.count = c
	}
	return b.count
}

// Index forces the lazy rank/select index to be built now. Select and
// Rank build it on first use, which mutates the bitmap — a data race when
// two readers arrive at once. Call Index before sharing a finished bitmap
// across goroutines read-only (the selection layer does, because cached
// views hand one bitmap to any number of concurrent queries).
func (b *Bitmap) Index() {
	if b.super == nil {
		b.buildIndex()
	}
}

// buildIndex computes the superblock cumulative counts and the per-word
// counts within each superblock. The in-block counts fit uint16 (a block
// holds at most selectBlockWords×64 = 4096 set bits), so the second level
// costs two bytes per word — 3% of the bitmap itself — and turns the
// per-query word scan into a binary search.
func (b *Bitmap) buildIndex() {
	nSuper := (len(b.words) + selectBlockWords - 1) / selectBlockWords
	b.super = make([]int64, nSuper+1)
	b.sub = make([]uint16, len(b.words))
	var run int64
	for s := 0; s < nSuper; s++ {
		b.super[s] = run
		end := (s + 1) * selectBlockWords
		if end > len(b.words) {
			end = len(b.words)
		}
		var within uint16
		for w := s * selectBlockWords; w < end; w++ {
			b.sub[w] = within
			c := uint16(bits.OnesCount64(b.words[w]))
			within += c
			run += int64(c)
		}
	}
	b.super[nSuper] = run
	b.count = int(run)

	// Select hints: hints[h] is the word containing set bit h<<hintShift,
	// so a select jumps straight to a two-hint word range. Cost is four
	// bytes per 1<<hintShift set bits — under 2 bits per survivor.
	if len(b.words) > 0 {
		b.hints = make([]uint32, (int(run)>>hintShift)+2)
		h := 0
		var cum int64
		for w, word := range b.words {
			c := int64(bits.OnesCount64(word))
			for h < len(b.hints) && int64(h)<<hintShift < cum+c {
				b.hints[h] = uint32(w)
				h++
			}
			cum += c
		}
		for ; h < len(b.hints); h++ {
			b.hints[h] = uint32(len(b.words) - 1)
		}
	}
}

// absCum returns the number of set bits before word w, from the two index
// levels.
func (b *Bitmap) absCum(w int) int64 {
	return b.super[w/selectBlockWords] + int64(b.sub[w])
}

// Select returns the position of the rank-th set bit (rank counts from 0).
// This is the core operation behind constant-time random tuple retrieval:
// pick rank uniformly in [0, Count()) and Select it. The rank hint table
// jumps straight to a narrow word range (adjacent hints bound the word no
// matter the density), a short binary search pins the word, and the bit
// within it falls out of branchless popcount descent. (The previous
// single-level index scanned up to selectBlockWords words per call and
// cleared bits one by one inside the word: on dense filters that walk,
// repeated once per drawn sample, was the 2.3x filtered-draw slowdown in
// BENCH_core.json.)
func (b *Bitmap) Select(rank int) (int, error) {
	if b.super == nil {
		b.buildIndex()
	}
	if rank < 0 || int64(rank) >= b.super[len(b.super)-1] {
		return 0, fmt.Errorf("bitmap: select rank %d out of range [0,%d)", rank, b.super[len(b.super)-1])
	}
	return b.selectIndexed(int64(rank)), nil
}

// selectIndexed maps a validated rank to its bit position using the built
// index: hint jump, then a binary search for the rightmost word whose
// cumulative count is ≤ rank — that word holds the bit, because the next
// word's cumulative count exceeds it.
func (b *Bitmap) selectIndexed(target int64) int {
	h := int(target >> hintShift)
	wlo, whi := int(b.hints[h]), int(b.hints[h+1])
	for wlo < whi {
		mid := (wlo + whi + 1) / 2
		if b.absCum(mid) <= target {
			wlo = mid
		} else {
			whi = mid - 1
		}
	}
	return wlo*wordBits + selectInWord(b.words[wlo], int(target-b.absCum(wlo)))
}

// SelectBatch replaces each entry of ranks — a rank in [0, Count()) — with
// the position of that rank's set bit, exactly as Select would map it.
// Batching matters on draw-heavy paths: one Select is a short chain of
// dependent loads (hint → word range → word), so per-draw calls serialize
// on memory latency; a batch's chains are independent, letting the CPU
// overlap many lookups in flight. This is the bulk rank/select path behind
// block draws on dense filtered groups.
func (b *Bitmap) SelectBatch(ranks []int32) error {
	if b.super == nil {
		b.buildIndex()
	}
	total := b.super[len(b.super)-1]
	for i, rk := range ranks {
		if rk < 0 || int64(rk) >= total {
			return fmt.Errorf("bitmap: select rank %d out of range [0,%d)", rk, total)
		}
		ranks[i] = int32(b.selectIndexed(int64(rk)))
	}
	return nil
}

// select8 maps (byte value, rank) to the position of the rank-th set bit
// within the byte. 2KB, shared by every selectInWord call.
var select8 [256][8]uint8

func init() {
	for v := 0; v < 256; v++ {
		rank := 0
		for pos := 0; pos < 8; pos++ {
			if v&(1<<pos) != 0 {
				select8[v][rank] = uint8(pos)
				rank++
			}
		}
	}
}

// selectInWord returns the position of the rank-th set bit within a word
// by broadword byte-lane arithmetic (Vigna's select-in-word): SWAR prefix
// popcounts locate the byte holding the bit, a lane-parallel ≤ comparison
// counts the bytes before it, and a 2KB table finishes inside the byte.
// Branchless and a constant ~15 operations — where the old
// clear-lowest-bit loop cost rank iterations, quadratic over a word's
// worth of draws.
func selectInWord(w uint64, rank int) int {
	const (
		l8 = 0x0101010101010101 // one per byte lane
		h8 = 0x8080808080808080 // lane high bits
	)
	// Per-byte popcounts, then inclusive prefix sums across lanes.
	s := w - w>>1&0x5555555555555555
	s = s&0x3333333333333333 + s>>2&0x3333333333333333
	s = (s + s>>4) & 0x0f0f0f0f0f0f0f0f
	cum := s * l8
	// Lane-parallel cum ≤ rank (valid while lane values < 128): the target
	// byte index is the number of lanes whose inclusive prefix is ≤ rank.
	leq := ((uint64(rank)*l8 | h8) - cum) & h8
	byteIdx := uint(bits.OnesCount64(leq))
	prev := cum << 8 >> (byteIdx * 8) & 0xff // set bits before the byte
	return int(byteIdx*8 + uint(select8[w>>(byteIdx*8)&0xff][uint64(rank)-prev]))
}

// Rank returns the number of set bits strictly before position i, from
// three lookups: the superblock prefix, the word's in-block prefix, and a
// popcount of the word's bits below i.
func (b *Bitmap) Rank(i int) int {
	b.checkIndex(i)
	if b.super == nil {
		b.buildIndex()
	}
	wi := i / wordBits
	r := b.super[wi/selectBlockWords] + int64(b.sub[wi])
	r += int64(bits.OnesCount64(b.words[wi] & (1<<uint(i%wordBits) - 1)))
	return int(r)
}

// And returns the intersection of b and o. Panics if lengths differ.
func (b *Bitmap) And(o *Bitmap) *Bitmap {
	b.checkSameLen(o)
	out := New(b.n)
	for i := range b.words {
		out.words[i] = b.words[i] & o.words[i]
	}
	out.dirty()
	return out
}

// Or returns the union of b and o. Panics if lengths differ.
func (b *Bitmap) Or(o *Bitmap) *Bitmap {
	b.checkSameLen(o)
	out := New(b.n)
	for i := range b.words {
		out.words[i] = b.words[i] | o.words[i]
	}
	out.dirty()
	return out
}

// AndNot returns the bits of b not set in o. Panics if lengths differ.
func (b *Bitmap) AndNot(o *Bitmap) *Bitmap {
	b.checkSameLen(o)
	out := New(b.n)
	for i := range b.words {
		out.words[i] = b.words[i] &^ o.words[i]
	}
	out.dirty()
	return out
}

// Not returns the complement of b over its row range.
func (b *Bitmap) Not() *Bitmap {
	out := New(b.n)
	for i := range b.words {
		out.words[i] = ^b.words[i]
	}
	// Mask trailing bits beyond n.
	if rem := b.n % wordBits; rem != 0 && len(out.words) > 0 {
		out.words[len(out.words)-1] &= 1<<uint(rem) - 1
	}
	out.dirty()
	return out
}

func (b *Bitmap) checkSameLen(o *Bitmap) {
	if b.n != o.n {
		panic(fmt.Sprintf("bitmap: length mismatch %d vs %d", b.n, o.n))
	}
}

// ForEach calls fn with each set bit position in ascending order; returning
// false stops the iteration.
func (b *Bitmap) ForEach(fn func(pos int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			t := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + t) {
				return
			}
			w &= w - 1
		}
	}
}
