// Package bitmap implements the selection-vector machinery shared by both
// table stores: uncompressed bitmaps with O(log n) rank/select (the
// constant-time random tuple retrieval of the paper's §4), the word-aligned
// run-length-compressed form the paper cites for clustered attributes, and
// the boolean algebra (AND/OR/NOT) that composes group indexes with ad-hoc
// predicate bitmaps — the same bulk-bitwise selection technique the PIM
// line of work applies to analytics scans.
//
// The dense index structure mirrors the paper's description: one bitmap per
// value of an indexed attribute, organized hierarchically so that
// retrieving the rank-k set bit ("select") takes time logarithmic in the
// number of rows.
package bitmap

import (
	"fmt"
	"math/bits"
)

const (
	wordBits = 64
	// selectBlockWords is the number of 64-bit words per rank superblock:
	// the hierarchical layer that gives O(log n) select.
	selectBlockWords = 64
)

// Bitmap is an uncompressed bitmap over row IDs with a two-level rank index
// enabling O(log n) select. The rank index is built lazily on the first
// Select/Rank call and invalidated by mutation.
type Bitmap struct {
	words []uint64
	n     int // number of valid bits

	count int     // cached popcount; -1 when dirty
	super []int64 // cumulative set bits before each superblock
}

// New returns an empty bitmap over n rows.
func New(n int) *Bitmap {
	if n < 0 {
		panic("bitmap: negative bitmap size")
	}
	return &Bitmap{
		words: make([]uint64, (n+wordBits-1)/wordBits),
		n:     n,
		count: 0,
	}
}

// Len returns the number of rows the bitmap covers.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i.
func (b *Bitmap) Set(i int) {
	b.checkIndex(i)
	w, off := i/wordBits, uint(i%wordBits)
	if b.words[w]&(1<<off) == 0 {
		b.words[w] |= 1 << off
		b.dirty()
	}
}

// Clear clears bit i.
func (b *Bitmap) Clear(i int) {
	b.checkIndex(i)
	w, off := i/wordBits, uint(i%wordBits)
	if b.words[w]&(1<<off) != 0 {
		b.words[w] &^= 1 << off
		b.dirty()
	}
}

// Get reports bit i.
func (b *Bitmap) Get(i int) bool {
	b.checkIndex(i)
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (b *Bitmap) checkIndex(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitmap: bit %d out of range [0,%d)", i, b.n))
	}
}

func (b *Bitmap) dirty() {
	b.count = -1
	b.super = nil
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	if b.count < 0 {
		c := 0
		for _, w := range b.words {
			c += bits.OnesCount64(w)
		}
		b.count = c
	}
	return b.count
}

// Index forces the lazy rank/select index to be built now. Select and
// Rank build it on first use, which mutates the bitmap — a data race when
// two readers arrive at once. Call Index before sharing a finished bitmap
// across goroutines read-only (the selection layer does, because cached
// views hand one bitmap to any number of concurrent queries).
func (b *Bitmap) Index() {
	if b.super == nil {
		b.buildIndex()
	}
}

// buildIndex computes the superblock cumulative counts.
func (b *Bitmap) buildIndex() {
	nSuper := (len(b.words) + selectBlockWords - 1) / selectBlockWords
	b.super = make([]int64, nSuper+1)
	var run int64
	for s := 0; s < nSuper; s++ {
		b.super[s] = run
		end := (s + 1) * selectBlockWords
		if end > len(b.words) {
			end = len(b.words)
		}
		for _, w := range b.words[s*selectBlockWords : end] {
			run += int64(bits.OnesCount64(w))
		}
	}
	b.super[nSuper] = run
	b.count = int(run)
}

// Select returns the position of the rank-th set bit (rank counts from 0).
// This is the core operation behind constant-time random tuple retrieval:
// pick rank uniformly in [0, Count()) and Select it. The superblock layer
// is binary-searched (O(log n)), then at most selectBlockWords words are
// scanned, then the bit within the final word is found with popcount
// arithmetic.
func (b *Bitmap) Select(rank int) (int, error) {
	if b.super == nil {
		b.buildIndex()
	}
	if rank < 0 || int64(rank) >= b.super[len(b.super)-1] {
		return 0, fmt.Errorf("bitmap: select rank %d out of range [0,%d)", rank, b.super[len(b.super)-1])
	}
	target := int64(rank)
	// Binary search for the superblock containing the target rank.
	lo, hi := 0, len(b.super)-1
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if b.super[mid] <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	remaining := int(target - b.super[lo])
	start := lo * selectBlockWords
	for w := start; w < len(b.words); w++ {
		c := bits.OnesCount64(b.words[w])
		if remaining < c {
			return w*wordBits + selectInWord(b.words[w], remaining), nil
		}
		remaining -= c
	}
	return 0, fmt.Errorf("bitmap: select index corrupt")
}

// selectInWord returns the position of the rank-th set bit within a word.
func selectInWord(w uint64, rank int) int {
	for i := 0; i < rank; i++ {
		w &= w - 1 // clear lowest set bit
	}
	return bits.TrailingZeros64(w)
}

// Rank returns the number of set bits strictly before position i.
func (b *Bitmap) Rank(i int) int {
	b.checkIndex(i)
	if b.super == nil {
		b.buildIndex()
	}
	s := i / wordBits / selectBlockWords
	r := b.super[s]
	for w := s * selectBlockWords; w < i/wordBits; w++ {
		r += int64(bits.OnesCount64(b.words[w]))
	}
	r += int64(bits.OnesCount64(b.words[i/wordBits] & (1<<uint(i%wordBits) - 1)))
	return int(r)
}

// And returns the intersection of b and o. Panics if lengths differ.
func (b *Bitmap) And(o *Bitmap) *Bitmap {
	b.checkSameLen(o)
	out := New(b.n)
	for i := range b.words {
		out.words[i] = b.words[i] & o.words[i]
	}
	out.dirty()
	return out
}

// Or returns the union of b and o. Panics if lengths differ.
func (b *Bitmap) Or(o *Bitmap) *Bitmap {
	b.checkSameLen(o)
	out := New(b.n)
	for i := range b.words {
		out.words[i] = b.words[i] | o.words[i]
	}
	out.dirty()
	return out
}

// AndNot returns the bits of b not set in o. Panics if lengths differ.
func (b *Bitmap) AndNot(o *Bitmap) *Bitmap {
	b.checkSameLen(o)
	out := New(b.n)
	for i := range b.words {
		out.words[i] = b.words[i] &^ o.words[i]
	}
	out.dirty()
	return out
}

// Not returns the complement of b over its row range.
func (b *Bitmap) Not() *Bitmap {
	out := New(b.n)
	for i := range b.words {
		out.words[i] = ^b.words[i]
	}
	// Mask trailing bits beyond n.
	if rem := b.n % wordBits; rem != 0 && len(out.words) > 0 {
		out.words[len(out.words)-1] &= 1<<uint(rem) - 1
	}
	out.dirty()
	return out
}

func (b *Bitmap) checkSameLen(o *Bitmap) {
	if b.n != o.n {
		panic(fmt.Sprintf("bitmap: length mismatch %d vs %d", b.n, o.n))
	}
}

// ForEach calls fn with each set bit position in ascending order; returning
// false stops the iteration.
func (b *Bitmap) ForEach(fn func(pos int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			t := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + t) {
				return
			}
			w &= w - 1
		}
	}
}
