// Package par provides the one bounded work-queue primitive shared by the
// parallel round driver, the exact-scan fan-out, the engine's per-group
// preprocessing, and sharded table ingestion. It deliberately stays tiny:
// a fixed pool of workers draining an atomic index counter, with an inline
// fast path when parallelism is not requested — so callers can use the
// same code path for Workers=1 and Workers=N and rely on the results being
// identical.
package par

import (
	"sync"
	"sync/atomic"
)

// For runs fn(0..n-1) across at most workers goroutines (clamped to n;
// workers <= 1 runs inline on the calling goroutine). Each fn call must
// touch only state owned by its index. For returns after every call has
// completed, so writes made by fn happen-before the caller's next read.
func For(n, workers int, fn func(i int)) {
	ForWorkers(n, workers, func(_, i int) { fn(i) })
}

// ForWorkers is For with the worker's identity passed to each call:
// fn(w, i) with w in [0, workers). Indices handled by the same worker are
// processed sequentially, so w can select per-worker scratch (buffers,
// accumulators) without synchronization. The inline path uses w = 0.
//
// Work is distributed by an atomic fetch-and-add over the index range —
// one uncontended RMW per item — rather than a channel: the previous
// unbuffered-channel queue cost a sender/receiver rendezvous (two
// scheduler handoffs) per item, which dominated small per-item work and
// made fan-out a net loss for rounds of cheap blocks. The calling
// goroutine participates as worker 0, so only workers−1 goroutines are
// spawned and the caller stays busy instead of blocking on a feed loop.
func ForWorkers(n, workers int, fn func(w, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(w, i)
			}
		}(w)
	}
	for {
		i := int(next.Add(1)) - 1
		if i >= n {
			break
		}
		fn(0, i)
	}
	wg.Wait()
}
