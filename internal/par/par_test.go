package par

import (
	"sync/atomic"
	"testing"
)

// TestForCoversEveryIndexOnce: each index runs exactly once for any
// workers value, including the inline and over-provisioned cases.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]int64
		For(n, workers, func(i int) { atomic.AddInt64(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

// TestForWorkersIdentity: worker ids stay in [0, min(workers, n)), and the
// inline path reports worker 0.
func TestForWorkersIdentity(t *testing.T) {
	var maxW int64 = -1
	ForWorkers(5, 16, func(w, i int) {
		for {
			cur := atomic.LoadInt64(&maxW)
			if int64(w) <= cur || atomic.CompareAndSwapInt64(&maxW, cur, int64(w)) {
				break
			}
		}
	})
	if maxW >= 5 {
		t.Fatalf("worker id %d with only 5 items (workers must clamp to n)", maxW)
	}
	ForWorkers(3, 1, func(w, i int) {
		if w != 0 {
			t.Fatalf("inline path reported worker %d", w)
		}
	})
}

// TestForBarrier: For must not return before every call completes.
func TestForBarrier(t *testing.T) {
	var done int64
	For(50, 8, func(i int) { atomic.AddInt64(&done, 1) })
	if done != 50 {
		t.Fatalf("For returned with %d/50 calls complete", done)
	}
}

// TestForZeroItems: degenerate sizes are no-ops.
func TestForZeroItems(t *testing.T) {
	For(0, 4, func(i int) { t.Fatal("fn called for n=0") })
}
