package experiments

import (
	"fmt"
	"io"

	"repro/internal/viz"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Fig3aResult reproduces Figure 3(a): mean percentage of the dataset
// sampled as a function of dataset size, for all six algorithms.
type Fig3aResult struct {
	Sizes []int64
	// PctSampled[algo][sizeIdx] is the mean percentage sampled.
	PctSampled map[Algo][]float64
	// RawSamples[algo][sizeIdx] is the mean raw sample count — the paper's
	// observation that the -R variants take a *constant* number of samples
	// beyond 10⁸ rows is visible here.
	RawSamples map[Algo][]float64
	// Correct[algo] counts ordering-correct runs out of Runs.
	Correct map[Algo]int
	Runs    int
	Capped  int
}

// Fig3a runs the dataset-size sweep on the paper's mixture workload
// (k=10 groups, δ=0.05, r=1), averaging over Scale.Reps datasets per size.
func Fig3a(s Scale) (*Fig3aResult, error) {
	res := &Fig3aResult{
		Sizes:      s.Sizes,
		PctSampled: map[Algo][]float64{},
		RawSamples: map[Algo][]float64{},
		Correct:    map[Algo]int{},
	}
	for _, a := range Algos {
		res.PctSampled[a] = make([]float64, len(s.Sizes))
		res.RawSamples[a] = make([]float64, len(s.Sizes))
	}
	for si, size := range s.Sizes {
		for rep := 0; rep < s.Reps; rep++ {
			seed := s.Seed + uint64(si*1000+rep)
			u, err := workload.Virtual(mixtureConfig(size, 10, seed))
			if err != nil {
				return nil, err
			}
			truth := u.TrueMeans()
			for _, a := range Algos {
				run, err := a.Run(u, xrand.New(seed^0x5eed), s.options(a))
				if err != nil {
					return nil, err
				}
				res.PctSampled[a][si] += 100 * run.SampledFraction(u) / float64(s.Reps)
				res.RawSamples[a][si] += float64(run.TotalSamples) / float64(s.Reps)
				if checkCorrect(a, s, run, truth) {
					res.Correct[a]++
				}
				if run.Capped {
					res.Capped++
				}
				res.Runs++
			}
		}
	}
	res.Runs /= len(Algos)
	return res, nil
}

// Print renders the sweep as a table, one row per size.
func (r *Fig3aResult) Print(w io.Writer) {
	headers := []string{"size"}
	for _, a := range Algos {
		headers = append(headers, string(a)+" %")
	}
	var rows [][]string
	for si, size := range r.Sizes {
		cells := []string{fmt.Sprintf("%.0e", float64(size))}
		for _, a := range Algos {
			cells = append(cells, fmt.Sprintf("%.4f", r.PctSampled[a][si]))
		}
		rows = append(rows, cells)
	}
	fprintf(w, "Figure 3(a): percent of dataset sampled vs dataset size (mixture, k=10)\n")
	fprintf(w, "%s", viz.Table(headers, rows))
	fprintf(w, "ordering-correct runs: ")
	for _, a := range Algos {
		fprintf(w, "%s %d/%d  ", a, r.Correct[a], r.Runs)
	}
	fprintf(w, "(capped: %d)\n", r.Capped)
}

// Fig3cResult reproduces Figure 3(c): percentage sampled as a function of
// the failure probability δ, at fixed dataset size.
type Fig3cResult struct {
	Deltas []float64
	// PctSampled[algo][deltaIdx] is the mean percentage sampled.
	PctSampled map[Algo][]float64
	// Accuracy[algo][deltaIdx] is the fraction of ordering-correct runs —
	// the paper's headline that accuracy stays at 100% independent of δ.
	Accuracy map[Algo][]float64
}

// Fig3c sweeps δ over the paper's range at Scale.BaseRows.
func Fig3c(s Scale) (*Fig3cResult, error) {
	deltas := []float64{0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95}
	res := &Fig3cResult{
		Deltas:     deltas,
		PctSampled: map[Algo][]float64{},
		Accuracy:   map[Algo][]float64{},
	}
	for _, a := range Algos {
		res.PctSampled[a] = make([]float64, len(deltas))
		res.Accuracy[a] = make([]float64, len(deltas))
	}
	for di, delta := range deltas {
		for rep := 0; rep < s.Reps; rep++ {
			seed := s.Seed + uint64(di*1000+rep)
			u, err := workload.Virtual(mixtureConfig(s.BaseRows, 10, seed))
			if err != nil {
				return nil, err
			}
			truth := u.TrueMeans()
			for _, a := range Algos {
				opts := s.options(a)
				opts.Delta = delta
				run, err := a.Run(u, xrand.New(seed^0xde17a), opts)
				if err != nil {
					return nil, err
				}
				res.PctSampled[a][di] += 100 * run.SampledFraction(u) / float64(s.Reps)
				if checkCorrect(a, s, run, truth) {
					res.Accuracy[a][di] += 1 / float64(s.Reps)
				}
			}
		}
	}
	return res, nil
}

// Print renders the δ sweep.
func (r *Fig3cResult) Print(w io.Writer) {
	headers := []string{"delta"}
	for _, a := range Algos {
		headers = append(headers, string(a)+" %")
	}
	var rows [][]string
	for di, d := range r.Deltas {
		cells := []string{fmt.Sprintf("%.2f", d)}
		for _, a := range Algos {
			cells = append(cells, fmt.Sprintf("%.3f", r.PctSampled[a][di]))
		}
		rows = append(rows, cells)
	}
	fprintf(w, "Figure 3(c): percent sampled vs delta (mixture, k=10)\n")
	fprintf(w, "%s", viz.Table(headers, rows))
	fprintf(w, "accuracy at every delta: ")
	for _, a := range Algos {
		min := 1.0
		for _, acc := range r.Accuracy[a] {
			if acc < min {
				min = acc
			}
		}
		fprintf(w, "%s >= %.0f%%  ", a, 100*min)
	}
	fprintf(w, "\n")
}
