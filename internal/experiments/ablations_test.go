package experiments

import (
	"bytes"
	"testing"
)

func TestAblationKappa(t *testing.T) {
	s := tinyScale()
	res, err := AblationKappa(s)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's footnote: small κ near 1 behaves like κ=1. Larger κ may
	// differ somewhat but must stay within a small constant factor. (Strict
	// accuracy is not asserted here: at this tiny scale near-tie pairs are
	// settled by virtual-group exhaustion, whose noise is κ-independent —
	// see DESIGN.md §4.)
	base := res.MeanPct[0]
	for i, k := range res.Kappas {
		if res.MeanPct[i] < base/2 || res.MeanPct[i] > base*2 {
			t.Fatalf("kappa=%v cost %v strays from kappa=1 cost %v", k, res.MeanPct[i], base)
		}
		if res.Accuracy[i] < 0 || res.Accuracy[i] > 1+1e-9 {
			t.Fatalf("kappa=%v accuracy %v out of range", k, res.Accuracy[i])
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestAblationReplacement(t *testing.T) {
	s := tinyScale()
	res, err := AblationReplacement(s)
	if err != nil {
		t.Fatal(err)
	}
	// δ=0.05 per run: tolerate the occasional tail event, not a pattern.
	if float64(res.Failures) > 0.25*float64(res.Runs) {
		t.Fatalf("%d/%d ordering failures", res.Failures, res.Runs)
	}
	// The Serfling term can only help: without-replacement never samples
	// more than with-replacement at the same seed (the schedule is
	// pointwise tighter and exhaustion bounds the worst case).
	for i := range res.Sizes {
		if res.WithoutPct[i] > res.WithPct[i]*1.05 {
			t.Fatalf("size %d: without %v exceeds with %v", res.Sizes[i], res.WithoutPct[i], res.WithPct[i])
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestAblationBlockCache(t *testing.T) {
	s := tinyScale()
	s.Reps = 1
	res, err := AblationBlockCache(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Sizes {
		// The cache is the difference between beating SCAN and losing to
		// it: naive costing must be dramatically slower than cached.
		if res.NaiveSec[i] < 5*res.CachedSec[i] {
			t.Fatalf("size %d: naive %v not >> cached %v", res.Sizes[i], res.NaiveSec[i], res.CachedSec[i])
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}
