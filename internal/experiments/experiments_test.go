package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// tinyScale keeps the harness tests fast while still exercising every code
// path of each runner.
func tinyScale() Scale {
	s := DefaultScale()
	s.Reps = 2
	s.Sizes = []int64{200_000, 400_000}
	s.BaseRows = 200_000
	s.MaxRounds = 1 << 20
	return s
}

func TestStat(t *testing.T) {
	st := NewStat([]float64{4, 1, 3, 2, 5})
	if st.Mean != 3 || st.Min != 1 || st.Max != 5 || st.Median != 3 || st.N != 5 {
		t.Fatalf("stat %+v", st)
	}
	if st.Q1 != 2 || st.Q3 != 4 {
		t.Fatalf("quartiles %v %v", st.Q1, st.Q3)
	}
	if z := NewStat(nil); z.N != 0 {
		t.Fatal("empty stat")
	}
}

func TestAlgoRun(t *testing.T) {
	s := tinyScale()
	// A resolution variant without a resolution must be rejected.
	if _, err := AlgoIFocusR.Run(nil, nil, s.options(AlgoIFocus)); err == nil {
		t.Fatal("resolution variant without resolution accepted")
	}
	if _, err := Algo("bogus").Run(nil, nil, s.options(AlgoIFocus)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestTable1(t *testing.T) {
	res, err := Table1(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("trace too short: %d rows", len(res.Rows))
	}
	first := res.Rows[0]
	for _, a := range first.Active {
		if !a {
			t.Fatal("all groups must start active")
		}
	}
	// Later rows have fewer active groups; intervals shrink.
	last := res.Rows[len(res.Rows)-1]
	if countTrue(last.Active) >= countTrue(first.Active) {
		t.Fatal("active set did not shrink")
	}
	w0 := first.Intervals[0][1] - first.Intervals[0][0]
	wLast := last.Intervals[0][1] - last.Intervals[0][0]
	if wLast >= w0 {
		t.Fatal("intervals did not shrink")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatal("print output malformed")
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func TestFig3a(t *testing.T) {
	s := tinyScale()
	res, err := Fig3a(s)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's core comparison: IFOCUS must beat ROUNDROBIN at every
	// size, and the resolution variant must not exceed its base variant.
	for si := range s.Sizes {
		if res.PctSampled[AlgoIFocus][si] >= res.PctSampled[AlgoRoundRobin][si] {
			t.Fatalf("size %d: ifocus %v >= roundrobin %v", si,
				res.PctSampled[AlgoIFocus][si], res.PctSampled[AlgoRoundRobin][si])
		}
		if res.PctSampled[AlgoIFocusR][si] > res.PctSampled[AlgoIFocus][si]+1e-9 {
			t.Fatalf("size %d: ifocusr above ifocus", si)
		}
	}
	// Percentage sampled decreases with dataset size (constant-ish raw
	// counts over growing denominators).
	if res.PctSampled[AlgoIFocus][1] >= res.PctSampled[AlgoIFocus][0] {
		t.Fatal("percent sampled did not fall with size")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Figure 3(a)") {
		t.Fatal("print output malformed")
	}
}

func TestFig3c(t *testing.T) {
	s := tinyScale()
	res, err := Fig3c(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Algos {
		for di := range res.Deltas {
			if res.Accuracy[a][di] < 0 || res.Accuracy[a][di] > 1+1e-9 {
				t.Fatalf("accuracy out of range: %v", res.Accuracy[a][di])
			}
		}
		// More permissive delta must not require more samples (weak check:
		// compare the extremes).
		first, last := res.PctSampled[a][0], res.PctSampled[a][len(res.Deltas)-1]
		if last > first*1.1 {
			t.Fatalf("%s: sampling grew with delta: %v -> %v", a, first, last)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFig4AndScatter(t *testing.T) {
	s := tinyScale()
	res, err := Fig4(s)
	if err != nil {
		t.Fatal(err)
	}
	for si := range s.Sizes {
		fo := res.Mean[AlgoIFocus][si]
		rr := res.Mean[AlgoRoundRobin][si]
		if fo.TotalSec() >= rr.TotalSec() {
			t.Fatalf("size %d: ifocus %v not faster than roundrobin %v", si, fo.TotalSec(), rr.TotalSec())
		}
		sc := res.Mean[AlgoScan][si]
		if sc.IOSec <= 0 || sc.CPUSec <= 0 {
			t.Fatalf("scan cost empty: %+v", sc)
		}
	}
	// SCAN cost grows linearly with size; sampling grows sublinearly.
	scanGrowth := res.Mean[AlgoScan][1].TotalSec() / res.Mean[AlgoScan][0].TotalSec()
	foGrowth := res.Mean[AlgoIFocus][1].TotalSec() / res.Mean[AlgoIFocus][0].TotalSec()
	if foGrowth >= scanGrowth {
		t.Fatalf("sampling growth %v not below scan growth %v", foGrowth, scanGrowth)
	}
	// Figure 3(b): runtime tracks samples.
	if corr := res.SamplesTimeCorrelation(); corr < 0.8 {
		t.Fatalf("samples/time correlation %v too weak", corr)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	res.PrintScatter(&buf)
	if !strings.Contains(buf.String(), "Figure 4(a)") || !strings.Contains(buf.String(), "Figure 3(b)") {
		t.Fatal("print output malformed")
	}
}

func TestFig5aAccuracyDegrades(t *testing.T) {
	s := tinyScale()
	s.Reps = 4
	res, err := Fig5a(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy[0] < 0.75 {
		t.Fatalf("factor-1 accuracy %v too low", res.Accuracy[0])
	}
	// Large factors sample less...
	last := len(res.Factors) - 1
	if res.MeanPct[last] >= res.MeanPct[0] {
		t.Fatal("heuristic factor did not reduce sampling")
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFig5bHardInstance(t *testing.T) {
	s := tinyScale()
	s.Reps = 3
	res, err := Fig5b(s)
	if err != nil {
		t.Fatal(err)
	}
	// Factor 1 keeps the guarantee on the hard family.
	if res.Accuracy[0] < 0.6 {
		t.Fatalf("factor-1 accuracy %v suspiciously low", res.Accuracy[0])
	}
}

func TestConvergence(t *testing.T) {
	s := tinyScale()
	res, err := Convergence(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.All) == 0 {
		t.Fatal("no checkpoints")
	}
	// Active groups decrease along the grid; the final checkpoint is at or
	// near zero active groups for easy instances.
	first, last := res.All[0], res.All[len(res.All)-1]
	if last.ActiveGroups > first.ActiveGroups {
		t.Fatal("active groups grew")
	}
	for _, p := range res.All {
		if p.ActiveGroups < 0 || p.ActiveGroups > 10 || math.IsNaN(p.IncorrectPairs) {
			t.Fatalf("bad checkpoint %+v", p)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFig6b(t *testing.T) {
	s := tinyScale()
	s.Reps = 1
	res, err := Fig6b(s)
	if err != nil {
		t.Fatal(err)
	}
	for ki := range res.Ks {
		if res.PctSampled[AlgoIFocus][ki] > res.PctSampled[AlgoRoundRobin][ki] {
			t.Fatalf("k=%d: ifocus above roundrobin", res.Ks[ki])
		}
	}
}

func TestFig6cAnd7cDifficulty(t *testing.T) {
	s := tinyScale()
	s.Reps = 5
	c6, err := Fig6c(s)
	if err != nil {
		t.Fatal(err)
	}
	// More groups → random means pack closer → difficulty grows (compare
	// the extremes, medians).
	if c6.Stats[len(c6.Stats)-1].Median <= c6.Stats[0].Median {
		t.Fatal("difficulty did not grow with k")
	}
	c7, err := Fig7c(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(c7.Stats) != 4 {
		t.Fatalf("std stats %d", len(c7.Stats))
	}
	var buf bytes.Buffer
	c6.Print(&buf)
	c7.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFig7a(t *testing.T) {
	s := tinyScale()
	s.Reps = 1
	res, err := Fig7a(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Proportions) != 9 {
		t.Fatalf("proportions %v", res.Proportions)
	}
	for pi := range res.Proportions {
		if res.PctSampled[AlgoIFocus][pi] > res.PctSampled[AlgoRoundRobin][pi] {
			t.Fatalf("share %v: ifocus above roundrobin", res.Proportions[pi])
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFig7b(t *testing.T) {
	s := tinyScale()
	s.Reps = 1
	res, err := Fig7b(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PctSampled) != len(res.Stds) {
		t.Fatalf("rows %d", len(res.PctSampled))
	}
	for si := range res.Stds {
		for di := range res.Deltas {
			if res.PctSampled[si][di] <= 0 || res.PctSampled[si][di] > 100 {
				t.Fatalf("pct %v out of range", res.PctSampled[si][di])
			}
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestTable3Small(t *testing.T) {
	s := tinyScale()
	s.Sizes = []int64{150_000}
	res, err := Table3(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 9 { // 3 attrs x 3 algos x 1 size
		t.Fatalf("cells %d", len(res.Cells))
	}
	byAlgo := map[Algo]float64{}
	for _, c := range res.Cells {
		if !c.Correct {
			t.Fatalf("materialized run incorrect: %+v", c)
		}
		if c.Seconds <= 0 {
			t.Fatalf("zero cost cell: %+v", c)
		}
		byAlgo[c.Algo] += c.Seconds
	}
	// Paper's ordering: IFOCUS-R fastest, ROUNDROBIN slowest. At this tiny
	// size the resolution threshold (r = 1% of 24h) cannot fire before the
	// contended groups exhaust, so IFOCUS-R may legitimately tie IFOCUS;
	// it must still never exceed it, and both must beat ROUNDROBIN.
	if byAlgo[AlgoIFocusR] > byAlgo[AlgoIFocus]+1e-9 || byAlgo[AlgoIFocus] >= byAlgo[AlgoRoundRobin] {
		t.Fatalf("algorithm ordering wrong: %v", byAlgo)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Table 3") {
		t.Fatal("print output malformed")
	}
}
