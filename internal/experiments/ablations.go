package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/needletail"
	"repro/internal/needletail/disksim"
	"repro/internal/viz"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// AblationKappaResult measures the paper's footnote-† claim: the geometric
// spacing κ of the anytime union bound barely matters; κ=1 (natural-log
// convention) and small κ>1 give near-identical sample complexity and
// identical accuracy.
type AblationKappaResult struct {
	Kappas   []float64
	MeanPct  []float64
	Accuracy []float64
}

// AblationKappa sweeps κ over {1, 1.01, 1.1, 2} on the mixture workload.
func AblationKappa(s Scale) (*AblationKappaResult, error) {
	kappas := []float64{1, 1.01, 1.1, 2}
	res := &AblationKappaResult{
		Kappas:   kappas,
		MeanPct:  make([]float64, len(kappas)),
		Accuracy: make([]float64, len(kappas)),
	}
	for ki, kappa := range kappas {
		for rep := 0; rep < s.Reps; rep++ {
			seed := s.Seed + uint64(rep)
			u, err := workload.Virtual(mixtureConfig(s.BaseRows, 10, seed))
			if err != nil {
				return nil, err
			}
			opts := s.options(AlgoIFocus)
			opts.Kappa = kappa
			run, err := core.IFocus(u, xrand.New(seed^0xab1), opts)
			if err != nil {
				return nil, err
			}
			res.MeanPct[ki] += 100 * run.SampledFraction(u) / float64(s.Reps)
			if core.CorrectOrdering(run.Estimates, u.TrueMeans()) {
				res.Accuracy[ki] += 1 / float64(s.Reps)
			}
		}
	}
	return res, nil
}

// Print renders the κ ablation.
func (r *AblationKappaResult) Print(w io.Writer) {
	var rows [][]string
	for i, k := range r.Kappas {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", k),
			fmt.Sprintf("%.4f", r.MeanPct[i]),
			fmt.Sprintf("%.2f", r.Accuracy[i]),
		})
	}
	fprintf(w, "Ablation: union-bound spacing kappa (IFOCUS, mixture)\n%s",
		viz.Table([]string{"kappa", "% sampled", "accuracy"}, rows))
}

// AblationReplacementResult quantifies the Hoeffding–Serfling
// finite-population correction: without-replacement sampling with the
// Serfling term vs with-replacement sampling with the plain schedule. The
// correction matters exactly when sample counts approach group sizes —
// i.e. on small datasets with contentious groups — and fades at scale.
type AblationReplacementResult struct {
	Sizes      []int64
	WithoutPct []float64
	WithPct    []float64
	// Failures counts ordering violations across all runs of both modes;
	// Runs is the total number of runs. The guarantee permits a delta
	// fraction of failures.
	Failures int
	Runs     int
}

// AblationReplacement runs the comparison across the Scale's sizes.
func AblationReplacement(s Scale) (*AblationReplacementResult, error) {
	res := &AblationReplacementResult{
		Sizes:      s.Sizes,
		WithoutPct: make([]float64, len(s.Sizes)),
		WithPct:    make([]float64, len(s.Sizes)),
	}
	for si, size := range s.Sizes {
		for rep := 0; rep < s.Reps; rep++ {
			seed := s.Seed + uint64(si*1000+rep)
			u, err := workload.Virtual(mixtureConfig(size, 10, seed))
			if err != nil {
				return nil, err
			}
			truth := u.TrueMeans()

			opts := s.options(AlgoIFocus)
			without, err := core.IFocus(u, xrand.New(seed^0xab2), opts)
			if err != nil {
				return nil, err
			}
			opts.WithReplacement = true
			with, err := core.IFocus(u, xrand.New(seed^0xab2), opts)
			if err != nil {
				return nil, err
			}
			res.WithoutPct[si] += 100 * without.SampledFraction(u) / float64(s.Reps)
			res.WithPct[si] += 100 * with.SampledFraction(u) / float64(s.Reps)
			res.Runs += 2
			if !without.Capped && !core.CorrectOrdering(without.Estimates, truth) {
				res.Failures++
			}
			if !with.Capped && !core.CorrectOrdering(with.Estimates, truth) {
				res.Failures++
			}
		}
	}
	return res, nil
}

// Print renders the replacement ablation.
func (r *AblationReplacementResult) Print(w io.Writer) {
	var rows [][]string
	for i, size := range r.Sizes {
		rows = append(rows, []string{
			fmt.Sprintf("%.0e", float64(size)),
			fmt.Sprintf("%.4f", r.WithoutPct[i]),
			fmt.Sprintf("%.4f", r.WithPct[i]),
		})
	}
	fprintf(w, "Ablation: sampling without vs with replacement (IFOCUS, mixture)\n%s",
		viz.Table([]string{"size", "without-repl %", "with-repl %"}, rows))
	fprintf(w, "ordering failures: %d/%d runs (delta budget applies per run)\n", r.Failures, r.Runs)
}

// AblationBlockCacheResult quantifies NEEDLETAIL's query-lifetime block
// cache: the same IFOCUS run costed with the cache on vs off. Without the
// cache every sample pays a full random block fetch, which is the naive
// model under which SCAN would win — the comparison behind §4's design.
type AblationBlockCacheResult struct {
	Sizes     []int64
	CachedSec []float64
	NaiveSec  []float64
	ScanSec   []float64
}

// AblationBlockCache runs the cache on/off comparison.
func AblationBlockCache(s Scale) (*AblationBlockCacheResult, error) {
	res := &AblationBlockCacheResult{
		Sizes:     s.Sizes,
		CachedSec: make([]float64, len(s.Sizes)),
		NaiveSec:  make([]float64, len(s.Sizes)),
		ScanSec:   make([]float64, len(s.Sizes)),
	}
	schema := needletail.Schema{GroupColumn: "grp", ValueColumns: []string{"y"}}
	for si, size := range s.Sizes {
		for rep := 0; rep < s.Reps; rep++ {
			seed := s.Seed + uint64(si*1000+rep)
			dists, sizes, err := workload.Dists(mixtureConfig(size, 10, seed))
			if err != nil {
				return nil, err
			}
			specs := make([]needletail.VirtualGroupSpec, len(dists))
			for i := range dists {
				specs[i] = needletail.VirtualGroupSpec{
					Name: fmt.Sprintf("g%02d", i), N: sizes[i], Dists: []xrand.Dist{dists[i]},
				}
			}
			for _, naive := range []bool{false, true} {
				model := disksim.DefaultCostModel()
				model.DisableCache = naive
				device := disksim.MustNew(model)
				table, err := needletail.NewVirtualTable(schema, device, specs)
				if err != nil {
					return nil, err
				}
				eng, err := needletail.NewEngine(table, "y", workload.DomainBound)
				if err != nil {
					return nil, err
				}
				opts := s.options(AlgoIFocusR)
				if _, err := core.IFocus(eng.Universe(), xrand.New(seed^0xab3), opts); err != nil {
					return nil, err
				}
				sec := device.Stats().TotalSeconds() / float64(s.Reps)
				if naive {
					res.NaiveSec[si] += sec
				} else {
					res.CachedSec[si] += sec
				}
			}
			device := disksim.MustNew(disksim.DefaultCostModel())
			table, err := needletail.NewVirtualTable(schema, device, specs)
			if err != nil {
				return nil, err
			}
			eng, err := needletail.NewEngine(table, "y", workload.DomainBound)
			if err != nil {
				return nil, err
			}
			eng.Scan()
			res.ScanSec[si] += device.Stats().TotalSeconds() / float64(s.Reps)
		}
	}
	return res, nil
}

// Print renders the cache ablation.
func (r *AblationBlockCacheResult) Print(w io.Writer) {
	var rows [][]string
	for i, size := range r.Sizes {
		rows = append(rows, []string{
			fmt.Sprintf("%.0e", float64(size)),
			fmt.Sprintf("%.3g", r.CachedSec[i]),
			fmt.Sprintf("%.3g", r.NaiveSec[i]),
			fmt.Sprintf("%.3g", r.ScanSec[i]),
		})
	}
	fprintf(w, "Ablation: query-lifetime block cache (IFOCUS-R simulated seconds)\n%s",
		viz.Table([]string{"size", "cached", "no cache", "scan"}, rows))
}
