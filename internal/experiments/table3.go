package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/needletail"
	"repro/internal/needletail/disksim"
	"repro/internal/viz"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Table3Cell is one cell of the real-data runtime table: an attribute ×
// algorithm × dataset-size measurement.
type Table3Cell struct {
	Attr    workload.FlightAttr
	Algo    Algo
	Size    int64
	Seconds float64
	Samples int64
	Correct bool
}

// Table3Result reproduces Table 3: wall-clock (simulated) seconds to
// visualize three flight attributes grouped by airline, for ROUNDROBIN,
// IFOCUS and IFOCUS-R (r = 1% of the domain) across dataset scales.
type Table3Result struct {
	Sizes []int64
	Cells []Table3Cell
}

// table3Algos is the roster Table 3 compares.
var table3Algos = []Algo{AlgoRoundRobin, AlgoIFocus, AlgoIFocusR}

// Table3MaxMaterialize caps the flight-table sizes that are materialized
// into a real NEEDLETAIL row store (28 bytes per row). Materialized runs
// sample without replacement, so an exhausted group's estimate is exact —
// which is how the paper's real-data runs order even the airlines whose
// mean delays differ by a fraction of a minute. Larger sizes fall back to
// the virtual table; there, exhaustion leaves O(c/sqrt(n)) noise in the
// estimates, so correctness is judged at that noise floor (see the Correct
// field's derivation below and EXPERIMENTS.md).
const Table3MaxMaterialize = 4_000_000

// Table3 runs the flight workload (the synthetic substitute documented in
// DESIGN.md §5) on the NEEDLETAIL engine: three attributes × three
// algorithms × the Scale's dataset sizes, reporting simulated seconds.
func Table3(s Scale) (*Table3Result, error) {
	res := &Table3Result{Sizes: s.Sizes}
	schema := needletail.Schema{
		GroupColumn:  "airline",
		ValueColumns: []string{"elapsed", "arrdelay", "depdelay"},
	}
	cols := []string{"elapsed", "arrdelay", "depdelay"}
	for _, size := range s.Sizes {
		materialized := size <= Table3MaxMaterialize
		var table needletail.Table
		device := disksim.MustNew(disksim.DefaultCostModel())
		if materialized {
			b := needletail.NewTableBuilder(schema, device)
			err := workload.FlightsRows(size, s.Seed, func(r workload.FlightRow) error {
				return b.Append(r.Airline, r.Elapsed, r.ArrDelay, r.DepDelay)
			})
			if err != nil {
				return nil, err
			}
			table, err = b.Build()
			if err != nil {
				return nil, err
			}
		}
		for ai, attr := range workload.FlightAttrs {
			if !materialized {
				// Single-column virtual table per attribute.
				u, err := workload.FlightsVirtual(attr, size, s.Seed)
				if err != nil {
					return nil, err
				}
				vschema := needletail.Schema{GroupColumn: "airline", ValueColumns: []string{cols[ai]}}
				table, err = flightsTable(vschema, device, u)
				if err != nil {
					return nil, err
				}
			}
			eng, err := needletail.NewEngine(table, cols[ai], workload.FlightBound)
			if err != nil {
				return nil, err
			}
			// Ground truth from the engine's own oracle (exact scan on
			// materialized tables, analytical means on virtual ones).
			u := eng.Universe()
			truth := u.TrueMeans()
			// Correctness floor: exact for materialized runs; the CLT
			// noise of exhausted virtual groups otherwise.
			noiseFloor := 0.0
			if !materialized {
				minN := u.Groups[0].Size()
				for _, g := range u.Groups {
					if n := g.Size(); n < minN {
						minN = n
					}
				}
				noiseFloor = 4 * workload.FlightBound / math.Sqrt(float64(minN))
			}
			for _, a := range table3Algos {
				device.Reset()
				opts := s.options(a)
				if a == AlgoIFocusR {
					opts.Resolution = workload.FlightBound / 100 // r = 1%
				}
				run, err := a.Run(eng.Universe(), xrand.New(s.Seed^uint64(size)^hashAlgo(a)), opts)
				if err != nil {
					return nil, err
				}
				st := device.Stats()
				r := noiseFloor
				if a == AlgoIFocusR && workload.FlightBound/100 > r {
					r = workload.FlightBound / 100
				}
				res.Cells = append(res.Cells, Table3Cell{
					Attr:    attr,
					Algo:    a,
					Size:    size,
					Seconds: st.TotalSeconds(),
					Samples: run.TotalSamples,
					Correct: core.IncorrectPairs(run.Estimates, truth, r) == 0,
				})
			}
		}
	}
	return res, nil
}

// flightsTable adapts a flight universe's distribution-backed groups into
// a NEEDLETAIL virtual table.
func flightsTable(schema needletail.Schema, device *disksim.Device, u *dataset.Universe) (*needletail.VirtualTable, error) {
	specs := make([]needletail.VirtualGroupSpec, u.K())
	for i, g := range u.Groups {
		dg, ok := g.(*dataset.DistGroup)
		if !ok {
			return nil, fmt.Errorf("experiments: flight group %q is not distribution-backed", g.Name())
		}
		specs[i] = needletail.VirtualGroupSpec{Name: g.Name(), N: g.Size(), Dists: []xrand.Dist{dg.Dist()}}
	}
	return needletail.NewVirtualTable(schema, device, specs)
}

func hashAlgo(a Algo) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(a); i++ {
		h ^= uint64(a[i])
		h *= 1099511628211
	}
	return h
}

// Print renders Table 3 in the paper's layout.
func (r *Table3Result) Print(w io.Writer) {
	headers := []string{"Attribute", "Algorithm"}
	for _, s := range r.Sizes {
		headers = append(headers, fmt.Sprintf("%.0e (s)", float64(s)))
	}
	byKey := map[string][]string{}
	var order []string
	for _, c := range r.Cells {
		key := c.Attr.String() + "|" + string(c.Algo)
		if _, ok := byKey[key]; !ok {
			byKey[key] = []string{c.Attr.String(), string(c.Algo)}
			order = append(order, key)
		}
		byKey[key] = append(byKey[key], fmt.Sprintf("%.3g", c.Seconds))
	}
	var rows [][]string
	for _, k := range order {
		rows = append(rows, byKey[k])
	}
	fprintf(w, "Table 3: simulated seconds on the synthetic flight dataset\n")
	fprintf(w, "%s", viz.Table(headers, rows))
	allCorrect := true
	for _, c := range r.Cells {
		if !c.Correct {
			allCorrect = false
		}
	}
	fprintf(w, "all orderings correct: %v\n", allCorrect)
}
