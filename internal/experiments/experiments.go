// Package experiments regenerates every table and figure in the paper's
// evaluation (§5). Each runner builds the paper's workload (scaled by a
// Scale), executes the six algorithms (IFOCUS, IFOCUS-R, IREFINE,
// IREFINE-R, ROUNDROBIN, ROUNDROBIN-R — plus SCAN where the figure includes
// it), and returns the same rows/series the paper plots. Absolute numbers
// depend on the simulated device, but the comparisons the paper reports —
// who wins, by what factor, where behaviour flattens out — are what these
// runners reproduce. See EXPERIMENTS.md for paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Algo names one of the six sampling algorithms under test.
type Algo string

// The algorithm roster of §5.1.
const (
	AlgoIFocus      Algo = "ifocus"
	AlgoIFocusR     Algo = "ifocusr"
	AlgoIRefine     Algo = "irefine"
	AlgoIRefineR    Algo = "irefiner"
	AlgoRoundRobin  Algo = "roundrobin"
	AlgoRoundRobinR Algo = "roundrobinr"
)

// Algos lists the roster in the order the paper's legends use.
var Algos = []Algo{AlgoIFocus, AlgoIFocusR, AlgoIRefine, AlgoIRefineR, AlgoRoundRobin, AlgoRoundRobinR}

// resolutionVariant reports whether the algorithm uses the Problem 2
// relaxation.
func (a Algo) resolutionVariant() bool {
	switch a {
	case AlgoIFocusR, AlgoIRefineR, AlgoRoundRobinR:
		return true
	}
	return false
}

// Run executes the named algorithm on u.
func (a Algo) Run(u *dataset.Universe, rng *xrand.RNG, opts core.Options) (*core.Result, error) {
	if a.resolutionVariant() && opts.Resolution == 0 {
		return nil, fmt.Errorf("experiments: %s needs a resolution", a)
	}
	if !a.resolutionVariant() {
		opts.Resolution = 0
	}
	switch a {
	case AlgoIFocus, AlgoIFocusR:
		return core.IFocus(u, rng, opts)
	case AlgoIRefine, AlgoIRefineR:
		return core.IRefine(u, rng, opts)
	case AlgoRoundRobin, AlgoRoundRobinR:
		return core.RoundRobin(u, rng, opts)
	default:
		return nil, fmt.Errorf("experiments: unknown algorithm %q", a)
	}
}

// Scale controls how much work a runner does. The paper's full scale (100
// datasets per point, sizes to 10¹⁰) is hours of compute; DefaultScale is
// laptop-sized and preserves every qualitative comparison.
type Scale struct {
	// Reps is the number of independently generated datasets per data
	// point (the paper uses 100).
	Reps int
	// Sizes are the dataset sizes for the size sweeps of Figures 3(a) and
	// 4 (the paper uses 10⁷..10¹⁰).
	Sizes []int64
	// BaseRows is the dataset size for non-size-sweep figures (the paper
	// uses 10⁷, i.e. 10M).
	BaseRows int64
	// Seed drives all dataset generation and sampling.
	Seed uint64
	// MaxRounds caps pathological instances (two means drawn almost
	// exactly equal would otherwise sample unboundedly at the largest
	// sizes). Capped runs are counted and reported.
	MaxRounds int
	// Delta is the failure probability (paper default 0.05).
	Delta float64
	// Resolution is the r of the -R variants, in value units (paper: 1,
	// i.e. 1% of the [0,100] domain).
	Resolution float64
	// Workers fans each sampling round's per-group draws across this many
	// goroutines (0 or 1 = sequential). Results are identical for every
	// value — per-group RNG streams make the draws order-independent — so
	// this only changes how fast a paper-scale sweep finishes.
	Workers int
	// Bound selects the concentration inequality behind every run's
	// confidence intervals ("" or "hoeffding" = the paper's schedule;
	// "bernstein" / "bernstein-finite" = variance-adaptive). Re-running a
	// figure under a different bound shows how much of its sample cost was
	// the Hoeffding width rather than the problem's hardness.
	Bound string
}

// DefaultScale returns the laptop-sized configuration.
func DefaultScale() Scale {
	return Scale{
		Reps:       10,
		Sizes:      []int64{1e6, 1e7, 1e8},
		BaseRows:   1e6,
		Seed:       1,
		MaxRounds:  1 << 22,
		Delta:      0.05,
		Resolution: 1,
	}
}

// PaperScale returns the paper's full experimental configuration. Expect
// hours of compute.
func PaperScale() Scale {
	s := DefaultScale()
	s.Reps = 100
	s.Sizes = []int64{1e7, 1e8, 1e9, 1e10}
	s.BaseRows = 1e7
	s.MaxRounds = 1 << 26
	return s
}

// options builds the core options for one run.
func (s Scale) options(a Algo) core.Options {
	opts := core.DefaultOptions()
	opts.Delta = s.Delta
	opts.MaxRounds = s.MaxRounds
	opts.Workers = s.Workers
	opts.Bound = conc.Kind(s.Bound)
	if a.resolutionVariant() {
		opts.Resolution = s.Resolution
	}
	return opts
}

// Stat summarizes repeated measurements.
type Stat struct {
	Mean, Min, Max float64
	// Q1, Median, Q3 support the box-and-whisker figures.
	Q1, Median, Q3 float64
	N              int
}

// NewStat computes summary statistics of xs.
func NewStat(xs []float64) Stat {
	if len(xs) == 0 {
		return Stat{}
	}
	sorted := append([]float64(nil), xs...)
	insertionSort(sorted)
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	q := func(p float64) float64 {
		pos := p * float64(len(sorted)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 < len(sorted) {
			return sorted[lo]*(1-frac) + sorted[lo+1]*frac
		}
		return sorted[lo]
	}
	return Stat{
		Mean:   sum / float64(len(sorted)),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Q1:     q(0.25),
		Median: q(0.5),
		Q3:     q(0.75),
		N:      len(sorted),
	}
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// mixtureConfig is the paper's default workload at the given size.
func mixtureConfig(rows int64, k int, seed uint64) workload.Config {
	return workload.Config{Kind: workload.MixtureKind, K: k, TotalRows: rows, Seed: seed}
}

// checkCorrect verifies a run against ground truth at the resolution the
// algorithm was promised (0 for the strict variants, r for the -R ones).
func checkCorrect(a Algo, s Scale, res *core.Result, truth []float64) bool {
	r := 0.0
	if a.resolutionVariant() {
		r = s.Resolution
	}
	return core.IncorrectPairs(res.Estimates, truth, r) == 0
}

// fprintf writes formatted output, ignoring errors (terminal writers).
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
