package experiments

import (
	"fmt"
	"io"

	"repro/internal/viz"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// SkewResult reproduces Figure 7(a): percentage sampled as the fraction of
// the dataset held by the first group varies from 10% to 90%, the rest
// split evenly over the remaining groups.
type SkewResult struct {
	Proportions []float64
	// PctSampled[algo][propIdx] is the mean percentage sampled.
	PctSampled map[Algo][]float64
}

// Fig7a runs the skew sweep on the mixture workload.
func Fig7a(s Scale) (*SkewResult, error) {
	props := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	res := &SkewResult{Proportions: props, PctSampled: map[Algo][]float64{}}
	for _, a := range Algos {
		res.PctSampled[a] = make([]float64, len(props))
	}
	const k = 10
	for pi, p := range props {
		shares := make([]float64, k)
		shares[0] = p
		for i := 1; i < k; i++ {
			shares[i] = (1 - p) / float64(k-1)
		}
		for rep := 0; rep < s.Reps; rep++ {
			seed := s.Seed + uint64(pi*1000+rep)
			cfg := mixtureConfig(s.BaseRows, k, seed)
			cfg.Proportions = shares
			u, err := workload.Virtual(cfg)
			if err != nil {
				return nil, err
			}
			for _, a := range Algos {
				run, err := a.Run(u, xrand.New(seed^0x7a), s.options(a))
				if err != nil {
					return nil, err
				}
				res.PctSampled[a][pi] += 100 * run.SampledFraction(u) / float64(s.Reps)
			}
		}
	}
	return res, nil
}

// Print renders the skew sweep.
func (r *SkewResult) Print(w io.Writer) {
	headers := []string{"share"}
	for _, a := range Algos {
		headers = append(headers, string(a)+" %")
	}
	var rows [][]string
	for pi, p := range r.Proportions {
		cells := []string{fmt.Sprintf("%.1f", p)}
		for _, a := range Algos {
			cells = append(cells, fmt.Sprintf("%.3f", r.PctSampled[a][pi]))
		}
		rows = append(rows, cells)
	}
	fprintf(w, "Figure 7(a): percent sampled vs proportion of dataset in first group\n")
	fprintf(w, "%s", viz.Table(headers, rows))
}

// StdDevResult reproduces Figure 7(b): IFOCUS-R's percentage sampled as a
// function of δ for several truncnorm standard deviations.
type StdDevResult struct {
	Stds   []float64
	Deltas []float64
	// PctSampled[stdIdx][deltaIdx] is the mean percentage sampled.
	PctSampled [][]float64
}

// Fig7b runs the std-dev sweep.
func Fig7b(s Scale) (*StdDevResult, error) {
	stds := []float64{2, 5, 8, 10}
	deltas := []float64{0.05, 0.2, 0.4, 0.6, 0.8, 0.95}
	res := &StdDevResult{Stds: stds, Deltas: deltas}
	for si, std := range stds {
		row := make([]float64, len(deltas))
		for di, delta := range deltas {
			for rep := 0; rep < s.Reps; rep++ {
				seed := s.Seed + uint64(si*10_000+di*100+rep)
				cfg := workload.Config{Kind: workload.TruncNorm, K: 10, TotalRows: s.BaseRows, StdDev: std, Seed: seed}
				u, err := workload.Virtual(cfg)
				if err != nil {
					return nil, err
				}
				opts := s.options(AlgoIFocusR)
				opts.Delta = delta
				run, err := AlgoIFocusR.Run(u, xrand.New(seed^0x7b), opts)
				if err != nil {
					return nil, err
				}
				row[di] += 100 * run.SampledFraction(u) / float64(s.Reps)
			}
		}
		res.PctSampled = append(res.PctSampled, row)
	}
	return res, nil
}

// Print renders the std-dev sweep.
func (r *StdDevResult) Print(w io.Writer) {
	headers := []string{"delta"}
	for _, std := range r.Stds {
		headers = append(headers, fmt.Sprintf("std=%.0f %%", std))
	}
	var rows [][]string
	for di, d := range r.Deltas {
		cells := []string{fmt.Sprintf("%.2f", d)}
		for si := range r.Stds {
			cells = append(cells, fmt.Sprintf("%.3f", r.PctSampled[si][di]))
		}
		rows = append(rows, cells)
	}
	fprintf(w, "Figure 7(b): IFOCUS-R percent sampled vs delta by truncnorm std\n")
	fprintf(w, "%s", viz.Table(headers, rows))
}
