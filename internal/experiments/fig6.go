package experiments

import (
	"fmt"
	"io"

	"repro/internal/conc"
	"repro/internal/dataset"
	"repro/internal/viz"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// GroupsSweepResult reproduces Figure 6(b): percentage sampled as a
// function of the number of groups (each group holding a fixed number of
// rows, 1M in the paper).
type GroupsSweepResult struct {
	Ks []int
	// PctSampled[algo][kIdx] is the mean percentage sampled.
	PctSampled map[Algo][]float64
}

// Fig6b sweeps k over the paper's {5, 10, 20, 50} with Scale.BaseRows/10
// rows per group (so k=10 matches the paper's default dataset).
func Fig6b(s Scale) (*GroupsSweepResult, error) {
	ks := []int{5, 10, 20, 50}
	perGroup := s.BaseRows / 10
	res := &GroupsSweepResult{Ks: ks, PctSampled: map[Algo][]float64{}}
	for _, a := range Algos {
		res.PctSampled[a] = make([]float64, len(ks))
	}
	for ki, k := range ks {
		for rep := 0; rep < s.Reps; rep++ {
			seed := s.Seed + uint64(ki*1000+rep)
			u, err := workload.Virtual(mixtureConfig(perGroup*int64(k), k, seed))
			if err != nil {
				return nil, err
			}
			for _, a := range Algos {
				run, err := a.Run(u, xrand.New(seed^0x6b), s.options(a))
				if err != nil {
					return nil, err
				}
				res.PctSampled[a][ki] += 100 * run.SampledFraction(u) / float64(s.Reps)
			}
		}
	}
	return res, nil
}

// Print renders the sweep.
func (r *GroupsSweepResult) Print(w io.Writer) {
	headers := []string{"k"}
	for _, a := range Algos {
		headers = append(headers, string(a)+" %")
	}
	var rows [][]string
	for ki, k := range r.Ks {
		cells := []string{fmt.Sprintf("%d", k)}
		for _, a := range Algos {
			cells = append(cells, fmt.Sprintf("%.3f", r.PctSampled[a][ki]))
		}
		rows = append(rows, cells)
	}
	fprintf(w, "Figure 6(b): percent sampled vs number of groups (mixture, 1M rows/group scale-equivalent)\n")
	fprintf(w, "%s", viz.Table(headers, rows))
}

// DifficultyResult reproduces Figures 6(c) and 7(c): box-and-whisker
// summaries of the instance difficulty c²/η² as the workload parameter
// (number of groups, or truncnorm standard deviation) varies.
type DifficultyResult struct {
	// Labels are the x-axis values (k or std).
	Labels []string
	// Stats are the difficulty summaries per label.
	Stats []Stat
	Title string
}

// Fig6c measures difficulty vs number of groups on the mixture family.
func Fig6c(s Scale) (*DifficultyResult, error) {
	ks := []int{5, 10, 20, 50}
	res := &DifficultyResult{Title: "Figure 6(c): difficulty c^2/eta^2 vs number of groups"}
	for ki, k := range ks {
		var diffs []float64
		for rep := 0; rep < s.Reps; rep++ {
			seed := s.Seed + uint64(ki*1000+rep)
			u, err := workload.Virtual(mixtureConfig(int64(k)*100_000, k, seed))
			if err != nil {
				return nil, err
			}
			eta := dataset.MinEta(u.TrueMeans())
			diffs = append(diffs, conc.Difficulty(u.C, eta))
		}
		res.Labels = append(res.Labels, fmt.Sprintf("%d", k))
		res.Stats = append(res.Stats, NewStat(diffs))
	}
	return res, nil
}

// Fig7c measures difficulty vs truncnorm standard deviation.
func Fig7c(s Scale) (*DifficultyResult, error) {
	stds := []float64{2, 5, 8, 10}
	res := &DifficultyResult{Title: "Figure 7(c): difficulty c^2/eta^2 vs truncnorm std"}
	for si, std := range stds {
		var diffs []float64
		for rep := 0; rep < s.Reps; rep++ {
			seed := s.Seed + uint64(si*1000+rep)
			cfg := workload.Config{Kind: workload.TruncNorm, K: 10, TotalRows: s.BaseRows, StdDev: std, Seed: seed}
			u, err := workload.Virtual(cfg)
			if err != nil {
				return nil, err
			}
			eta := dataset.MinEta(u.TrueMeans())
			diffs = append(diffs, conc.Difficulty(u.C, eta))
		}
		res.Labels = append(res.Labels, fmt.Sprintf("%.0f", std))
		res.Stats = append(res.Stats, NewStat(diffs))
	}
	return res, nil
}

// Print renders the box-and-whisker summaries.
func (r *DifficultyResult) Print(w io.Writer) {
	var rows [][]string
	for i, l := range r.Labels {
		st := r.Stats[i]
		rows = append(rows, []string{
			l,
			fmt.Sprintf("%.3g", st.Min),
			fmt.Sprintf("%.3g", st.Q1),
			fmt.Sprintf("%.3g", st.Median),
			fmt.Sprintf("%.3g", st.Q3),
			fmt.Sprintf("%.3g", st.Max),
			fmt.Sprintf("%.3g", st.Mean),
		})
	}
	fprintf(w, "%s\n%s", r.Title, viz.Table(
		[]string{"x", "min", "q1", "median", "q3", "max", "mean"}, rows))
}
