package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/viz"
	"repro/internal/xrand"
)

// Table1Row is one displayed round of the execution-trace demonstration.
type Table1Row struct {
	Round     int
	Intervals [][2]float64
	Active    []bool
	Samples   int64
}

// Table1Result is the reproduction of the paper's Table 1: an IFOCUS
// execution trace on four groups, showing confidence intervals shrinking
// and groups deactivating one by one, plus the cost decomposition the
// paper's Example 3.1 derives from it.
type Table1Result struct {
	Groups []string
	Rows   []Table1Row
	// SettleRounds are the rounds at which each group deactivated.
	SettleRounds []int
	// TotalSamples is the cost C of the run.
	TotalSamples int64
}

// Table1 runs IFOCUS on a four-group instance shaped like the paper's
// example (means near 75, 40, 25, 55 on [0,100]) and captures the trace.
// Rows are recorded whenever the active set changes, plus the first round.
func Table1(seed uint64) (*Table1Result, error) {
	rng := xrand.New(seed)
	mk := func(name string, mean float64) dataset.Group {
		return dataset.NewDistGroup(name, xrand.TruncNormal{Mu: mean, Sigma: 12, Lo: 0, Hi: 100}, 1_000_000)
	}
	u := dataset.NewUniverse(100,
		mk("Group 1", 75), mk("Group 2", 40), mk("Group 3", 25), mk("Group 4", 55))

	res := &Table1Result{Groups: []string{"Group 1", "Group 2", "Group 3", "Group 4"}}
	prevActive := -1
	opts := core.DefaultOptions()
	opts.Tracer = core.TracerFunc(func(m int, eps float64, active []bool, est []float64, total int64) {
		n := 0
		for _, a := range active {
			if a {
				n++
			}
		}
		if n != prevActive || m == 1 {
			row := Table1Row{Round: m, Samples: total}
			for i := range est {
				row.Intervals = append(row.Intervals, [2]float64{est[i] - eps, est[i] + eps})
			}
			row.Active = append([]bool(nil), active...)
			res.Rows = append(res.Rows, row)
			prevActive = n
		}
	})
	run, err := core.IFocus(u, rng, opts)
	if err != nil {
		return nil, err
	}
	res.SettleRounds = run.SettledRound
	res.TotalSamples = run.TotalSamples
	return res, nil
}

// Print renders the trace in the paper's Table 1 layout.
func (r *Table1Result) Print(w io.Writer) {
	headers := append([]string{"Round"}, r.Groups...)
	var rows [][]string
	for _, row := range r.Rows {
		cells := []string{itoa(row.Round)}
		for i, iv := range row.Intervals {
			state := "I"
			if row.Active[i] {
				state = "A"
			}
			cells = append(cells, fprintfS("[%.0f, %.0f] %s", iv[0], iv[1], state))
		}
		rows = append(rows, cells)
	}
	fprintf(w, "Table 1: IFOCUS execution trace (cost C = %d samples)\n", r.TotalSamples)
	fprintf(w, "%s", viz.Table(headers, rows))
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func fprintfS(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}
