package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/viz"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// HeuristicResult reproduces Figures 5(a) and 5(b): accuracy (fraction of
// runs satisfying the ordering property) as a function of the heuristic
// shrinking factor applied to IFOCUS-R's confidence intervals.
type HeuristicResult struct {
	Factors  []float64
	Accuracy []float64
	// PairAccuracy is the mean fraction of *strictly* correct pairwise
	// comparisons (no resolution exemption) — the finer-grained signal on
	// instances whose gaps all fall below the resolution, where the
	// run-level relaxed property cannot register degradation.
	PairAccuracy []float64
	// MeanPct is the mean percentage sampled at each factor, showing what
	// the heuristic buys (and costs).
	MeanPct []float64
	Title   string
}

// Fig5a sweeps the heuristic factor over the paper's 2⁰..2⁶ range on the
// mixture workload with δ=0.05.
func Fig5a(s Scale) (*HeuristicResult, error) {
	factors := []float64{1, 2, 4, 8, 16, 32, 64}
	return heuristicSweep(s, factors, mixtureConfig(s.BaseRows, 10, 0), false,
		"Figure 5(a): accuracy vs heuristic factor (mixture)")
}

// Fig5b sweeps small factors (1.00–1.20) on the hard Bernoulli workload
// with γ=0.1, the paper's demonstration that even sampling 1% less than
// IFOCUS-R prescribes breaks the guarantee on hard instances.
func Fig5b(s Scale) (*HeuristicResult, error) {
	factors := []float64{1, 1.01, 1.05, 1.1, 1.15, 1.2}
	rows := s.BaseRows
	// The paper's factor-1 exactness on this instance comes from
	// without-replacement exhaustion of the contended groups, so the
	// dataset must be materialized (cap the memory footprint).
	if rows > 4_000_000 {
		rows = 4_000_000
	}
	cfg := workload.Config{Kind: workload.HardKind, K: 10, TotalRows: rows, Gamma: 0.1}
	return heuristicSweep(s, factors, cfg, true,
		"Figure 5(b): accuracy vs heuristic factor (hard, gamma=0.1)")
}

func heuristicSweep(s Scale, factors []float64, cfg workload.Config, materialize bool, title string) (*HeuristicResult, error) {
	res := &HeuristicResult{
		Factors:      factors,
		Accuracy:     make([]float64, len(factors)),
		PairAccuracy: make([]float64, len(factors)),
		MeanPct:      make([]float64, len(factors)),
		Title:        title,
	}
	k := cfg.K
	totalPairs := k * (k - 1) / 2
	for fi, factor := range factors {
		for rep := 0; rep < s.Reps; rep++ {
			cfg.Seed = s.Seed + uint64(rep)
			var u *dataset.Universe
			var err error
			if materialize {
				u, err = workload.Materialize(cfg)
			} else {
				u, err = workload.Virtual(cfg)
			}
			if err != nil {
				return nil, err
			}
			truth := u.TrueMeans()
			opts := s.options(AlgoIFocusR)
			opts.HeuristicFactor = factor
			run, err := core.IFocus(u, xrand.New(cfg.Seed^uint64(fi*31+7)), opts)
			if err != nil {
				return nil, err
			}
			if core.ResolutionCorrect(run.Estimates, truth, s.Resolution) {
				res.Accuracy[fi] += 1 / float64(s.Reps)
			}
			bad := core.IncorrectPairs(run.Estimates, truth, 0)
			res.PairAccuracy[fi] += (1 - float64(bad)/float64(totalPairs)) / float64(s.Reps)
			res.MeanPct[fi] += 100 * run.SampledFraction(u) / float64(s.Reps)
		}
	}
	return res, nil
}

// Print renders the sweep.
func (r *HeuristicResult) Print(w io.Writer) {
	var rows [][]string
	for i, f := range r.Factors {
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", f),
			fmt.Sprintf("%.2f", r.Accuracy[i]),
			fmt.Sprintf("%.4f", r.PairAccuracy[i]),
			fmt.Sprintf("%.3f", r.MeanPct[i]),
		})
	}
	fprintf(w, "%s\n%s", r.Title, viz.Table([]string{"factor", "accuracy", "strict pair acc", "% sampled"}, rows))
}

// ConvergencePoint is one checkpoint of the convergence traces behind
// Figures 5(c) and 6(a).
type ConvergencePoint struct {
	// Samples is the cumulative sample count at the checkpoint.
	Samples int64
	// ActiveGroups is the mean number of still-active groups.
	ActiveGroups float64
	// IncorrectPairs is the mean number of incorrectly ordered pairs among
	// the current estimates.
	IncorrectPairs float64
	// Runs is the number of runs contributing to the averages.
	Runs int
}

// ConvergenceResult holds the two series of Figures 5(c) and 6(a): the
// all-runs average ("0") and the average over runs that needed at least
// HardThreshold samples ("3M" in the paper).
type ConvergenceResult struct {
	All  []ConvergencePoint
	Hard []ConvergencePoint
	// HardThreshold is the sample count a run must exceed to enter Hard.
	HardThreshold int64
	// HardRuns counts the qualifying runs.
	HardRuns int
}

// Convergence instruments IFOCUS over Scale.Reps mixture datasets,
// checkpointing the active-group count and the incorrect-pair count on a
// fixed grid of sample counts. The paper's hard-subset threshold (3M
// samples at 10M rows) scales proportionally with Scale.BaseRows.
func Convergence(s Scale) (*ConvergenceResult, error) {
	threshold := int64(float64(s.BaseRows) * 0.3)
	grid := convergenceGrid(s.BaseRows)
	type trace struct {
		active    []float64
		incorrect []float64
		total     int64
	}
	var traces []trace
	for rep := 0; rep < s.Reps; rep++ {
		seed := s.Seed + uint64(rep)
		u, err := workload.Virtual(mixtureConfig(s.BaseRows, 10, seed))
		if err != nil {
			return nil, err
		}
		truth := u.TrueMeans()
		tr := trace{active: make([]float64, len(grid)), incorrect: make([]float64, len(grid))}
		next := 0
		opts := s.options(AlgoIFocus)
		opts.Tracer = core.TracerFunc(func(m int, eps float64, active []bool, est []float64, total int64) {
			for next < len(grid) && total >= grid[next] {
				n := 0
				for _, a := range active {
					if a {
						n++
					}
				}
				tr.active[next] = float64(n)
				tr.incorrect[next] = float64(core.IncorrectPairs(est, truth, 0))
				next++
			}
		})
		run, err := core.IFocus(u, xrand.New(seed^0xc0), opts)
		if err != nil {
			return nil, err
		}
		tr.total = run.TotalSamples
		// Checkpoints beyond termination hold the terminal state.
		for ; next < len(grid); next++ {
			tr.active[next] = 0
			tr.incorrect[next] = float64(core.IncorrectPairs(run.Estimates, truth, 0))
		}
		traces = append(traces, tr)
	}

	build := func(filter func(trace) bool) ([]ConvergencePoint, int) {
		pts := make([]ConvergencePoint, len(grid))
		n := 0
		for _, tr := range traces {
			if !filter(tr) {
				continue
			}
			n++
			for i := range grid {
				pts[i].ActiveGroups += tr.active[i]
				pts[i].IncorrectPairs += tr.incorrect[i]
			}
		}
		for i := range pts {
			pts[i].Samples = grid[i]
			pts[i].Runs = n
			if n > 0 {
				pts[i].ActiveGroups /= float64(n)
				pts[i].IncorrectPairs /= float64(n)
			}
		}
		return pts, n
	}
	res := &ConvergenceResult{HardThreshold: threshold}
	res.All, _ = build(func(trace) bool { return true })
	res.Hard, res.HardRuns = build(func(tr trace) bool { return tr.total >= threshold })
	return res, nil
}

// convergenceGrid returns checkpoint sample counts spanning the run.
func convergenceGrid(baseRows int64) []int64 {
	var grid []int64
	for f := 0.01; f <= 0.4001; f += 0.01 {
		grid = append(grid, int64(float64(baseRows)*f))
	}
	return grid
}

// Print renders Figure 5(c) (active groups) and Figure 6(a) (incorrect
// pairs) from the two scenarios.
func (r *ConvergenceResult) Print(w io.Writer) {
	var rows [][]string
	for i := range r.All {
		hardA, hardI := "-", "-"
		if r.HardRuns > 0 {
			hardA = fmt.Sprintf("%.2f", r.Hard[i].ActiveGroups)
			hardI = fmt.Sprintf("%.2f", r.Hard[i].IncorrectPairs)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.All[i].Samples),
			fmt.Sprintf("%.2f", r.All[i].ActiveGroups),
			fmt.Sprintf("%.2f", r.All[i].IncorrectPairs),
			hardA,
			hardI,
		})
	}
	fprintf(w, "Figures 5(c)/6(a): convergence of IFOCUS (hard = runs with >= %d samples; %d such runs)\n",
		r.HardThreshold, r.HardRuns)
	fprintf(w, "%s", viz.Table(
		[]string{"samples", "active(all)", "incorrect(all)", "active(hard)", "incorrect(hard)"}, rows))
}
