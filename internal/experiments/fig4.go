package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/needletail"
	"repro/internal/needletail/disksim"
	"repro/internal/viz"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// TimedRun is one algorithm execution on the NEEDLETAIL engine with its
// simulated cost decomposition.
type TimedRun struct {
	Algo    Algo
	Size    int64
	Samples int64
	IOSec   float64
	CPUSec  float64
}

// TotalSec is the simulated wall-clock (single-threaded: I/O + CPU).
func (t TimedRun) TotalSec() float64 { return t.IOSec + t.CPUSec }

// Fig4Result reproduces Figures 4(a)–(c) — total, I/O and CPU time vs
// dataset size for the six algorithms plus SCAN — and doubles as the data
// for Figure 3(b), the samples-vs-runtime scatter.
type Fig4Result struct {
	Sizes []int64
	// Mean[algo][sizeIdx] is the averaged cost decomposition. The "scan"
	// pseudo-algorithm is included under AlgoScan.
	Mean map[Algo][]TimedRun
	// Scatter holds every individual (samples, time) point for Fig 3(b).
	Scatter []TimedRun
}

// AlgoScan labels the SCAN baseline rows of Figure 4.
const AlgoScan Algo = "scan"

// Fig4 runs the size sweep on the NEEDLETAIL engine with the default
// simulated device (see disksim.DefaultCostModel), measuring simulated
// I/O and CPU seconds per algorithm.
func Fig4(s Scale) (*Fig4Result, error) {
	algos := append(append([]Algo(nil), Algos...), AlgoScan)
	res := &Fig4Result{Sizes: s.Sizes, Mean: map[Algo][]TimedRun{}}
	for _, a := range algos {
		res.Mean[a] = make([]TimedRun, len(s.Sizes))
		for si, size := range s.Sizes {
			res.Mean[a][si] = TimedRun{Algo: a, Size: size}
		}
	}
	schema := needletail.Schema{GroupColumn: "grp", ValueColumns: []string{"y"}}
	for si, size := range s.Sizes {
		for rep := 0; rep < s.Reps; rep++ {
			seed := s.Seed + uint64(si*1000+rep)
			dists, sizes, err := workload.Dists(mixtureConfig(size, 10, seed))
			if err != nil {
				return nil, err
			}
			specs := make([]needletail.VirtualGroupSpec, len(dists))
			for i := range dists {
				specs[i] = needletail.VirtualGroupSpec{
					Name:  fmt.Sprintf("g%02d", i),
					N:     sizes[i],
					Dists: []xrand.Dist{dists[i]},
				}
			}
			for _, a := range algos {
				device := disksim.MustNew(disksim.DefaultCostModel())
				table, err := needletail.NewVirtualTable(schema, device, specs)
				if err != nil {
					return nil, err
				}
				eng, err := needletail.NewEngine(table, "y", workload.DomainBound)
				if err != nil {
					return nil, err
				}
				var samples int64
				if a == AlgoScan {
					eng.Scan()
					samples = size
				} else {
					u := eng.Universe()
					opts := s.options(a)
					// The engine knows the group sizes, so the schedule
					// keeps the Serfling finite-population term; a group
					// whose population is (nominally) exhausted settles at
					// its running mean, which bounds the worst-case rounds
					// on hard instances exactly as in the paper.
					run, err := a.Run(u, xrand.New(seed^0xf16), opts)
					if err != nil {
						return nil, err
					}
					samples = run.TotalSamples
				}
				st := device.Stats()
				tr := TimedRun{Algo: a, Size: size, Samples: samples, IOSec: st.IOSeconds, CPUSec: st.CPUSeconds}
				res.Scatter = append(res.Scatter, tr)
				mean := &res.Mean[a][si]
				mean.Samples += samples / int64(s.Reps)
				mean.IOSec += st.IOSeconds / float64(s.Reps)
				mean.CPUSec += st.CPUSeconds / float64(s.Reps)
			}
		}
	}
	return res, nil
}

// Print renders the three panels of Figure 4 as tables.
func (r *Fig4Result) Print(w io.Writer) {
	algos := append(append([]Algo(nil), Algos...), AlgoScan)
	panel := func(title string, get func(TimedRun) float64) {
		headers := []string{"size"}
		for _, a := range algos {
			headers = append(headers, string(a))
		}
		var rows [][]string
		for si, size := range r.Sizes {
			cells := []string{fmt.Sprintf("%.0e", float64(size))}
			for _, a := range algos {
				cells = append(cells, fmt.Sprintf("%.3g", get(r.Mean[a][si])))
			}
			rows = append(rows, cells)
		}
		fprintf(w, "%s\n%s\n", title, viz.Table(headers, rows))
	}
	panel("Figure 4(a): total simulated seconds vs dataset size", TimedRun.TotalSec)
	panel("Figure 4(b): simulated I/O seconds vs dataset size", func(t TimedRun) float64 { return t.IOSec })
	panel("Figure 4(c): simulated CPU seconds vs dataset size", func(t TimedRun) float64 { return t.CPUSec })
}

// PrintScatter renders Figure 3(b): every (samples, total time) point.
func (r *Fig4Result) PrintScatter(w io.Writer) {
	fprintf(w, "Figure 3(b): samples vs total simulated time (one point per run)\n")
	var rows [][]string
	for _, p := range r.Scatter {
		if p.Algo == AlgoScan {
			continue
		}
		rows = append(rows, []string{
			string(p.Algo),
			fmt.Sprintf("%.0e", float64(p.Size)),
			fmt.Sprintf("%d", p.Samples),
			fmt.Sprintf("%.4g", p.TotalSec()),
		})
	}
	fprintf(w, "%s", viz.Table([]string{"algo", "size", "samples", "total s"}, rows))
}

// SamplesTimeCorrelation returns the Pearson correlation between sample
// count and total simulated time across the scatter points — the paper's
// Figure 3(b) claim is that runtime is directly proportional to samples,
// i.e. this is close to 1.
func (r *Fig4Result) SamplesTimeCorrelation() float64 {
	var xs, ys []float64
	for _, p := range r.Scatter {
		if p.Algo == AlgoScan {
			continue
		}
		xs = append(xs, float64(p.Samples))
		ys = append(ys, p.TotalSec())
	}
	return pearson(xs, ys)
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
