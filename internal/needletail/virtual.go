package needletail

import (
	"fmt"
	"math"

	"repro/internal/needletail/disksim"
	"repro/internal/xrand"
)

// mathFloat64bits/frombits isolate the one unsafe-looking conversion pair
// used by row encoding; they are plain math.Float64bits wrappers kept here
// so table.go stays free of a math import it otherwise would not need.
func mathFloat64bits(v float64) uint64     { return math.Float64bits(v) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }

// VirtualGroupSpec defines one group of a VirtualTable.
type VirtualGroupSpec struct {
	// Name labels the group.
	Name string
	// N is the nominal row count.
	N int64
	// Dist generates the value columns; one distribution per value column.
	Dists []xrand.Dist
}

// VirtualTable is a generator-backed table for sweeps whose nominal sizes
// (10⁹–10¹⁰ rows) cannot be materialized. It charges the simulated device
// exactly as a materialized table would — one random row fetch per sample,
// sequential blocks plus per-row hash updates for a scan — but produces
// values from per-group distributions instead of stored bytes. The paper's
// sample complexity is size-independent (Theorem 3.6), so this preserves
// every quantity the large-scale figures report. See DESIGN.md §4.
type VirtualTable struct {
	schema Schema
	device *disksim.Device
	specs  []VirtualGroupSpec
	names  []string
	total  int64
	// base[i] is the first row id of group i (groups laid out
	// contiguously, as a clustered load would produce); rowsPerBlock maps
	// row ids to device blocks for I/O accounting.
	base         []int64
	rowsPerBlock int64
}

// NewVirtualTable builds a virtual table over the given group specs.
func NewVirtualTable(schema Schema, device *disksim.Device, specs []VirtualGroupSpec) (*VirtualTable, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("needletail: virtual table needs at least one group")
	}
	t := &VirtualTable{schema: schema, device: device, specs: specs}
	for _, s := range specs {
		if s.N <= 0 {
			return nil, fmt.Errorf("needletail: virtual group %q must have positive size", s.Name)
		}
		if len(s.Dists) != len(schema.ValueColumns) {
			return nil, fmt.Errorf("needletail: virtual group %q has %d dists, schema has %d value columns",
				s.Name, len(s.Dists), len(schema.ValueColumns))
		}
		t.names = append(t.names, s.Name)
		t.base = append(t.base, t.total)
		t.total += s.N
	}
	t.rowsPerBlock = int64(device.Model().BlockSize / schema.RowWidth())
	if t.rowsPerBlock == 0 {
		t.rowsPerBlock = 1
	}
	return t, nil
}

// Schema returns the table schema.
func (t *VirtualTable) Schema() Schema { return t.schema }

// NumRows returns the nominal row count.
func (t *VirtualTable) NumRows() int64 { return t.total }

// GroupNames returns the group names in code order.
func (t *VirtualTable) GroupNames() []string { return t.names }

// GroupSize returns the nominal size of the group.
func (t *VirtualTable) GroupSize(code int) int64 { return t.specs[code].N }

// Device returns the simulated device.
func (t *VirtualTable) Device() *disksim.Device { return t.device }

// SampleRow draws one value of the given column from the group's
// distribution, charging the same costs as a materialized sample: one
// random block read (cached after first touch) for a uniformly random row
// position within the group's extent, plus the per-sample CPU.
func (t *VirtualTable) SampleRow(code, col int, rng *xrand.RNG) float64 {
	t.device.ChargeSampleCPU(1)
	row := t.base[code] + rng.Int64n(t.specs[code].N)
	t.device.ChargeBlockRead(row / t.rowsPerBlock)
	return t.specs[code].Dists[col].Sample(rng)
}

// ScanAggregate simulates a full sequential scan: it charges the block
// reads and per-row hash updates a real scan would incur, and returns
// per-group aggregates synthesized from the analytical means (the quantity
// a real scan would compute exactly). Values are deterministic, so SCAN on
// a virtual table is exact by construction.
func (t *VirtualTable) ScanAggregate(col int) ([]float64, []int64) {
	t.device.ChargeSeqBlocks(t.device.BlocksForRows(t.total, t.schema.RowWidth()))
	t.device.ChargeHashUpdates(t.total)
	sums := make([]float64, len(t.specs))
	counts := make([]int64, len(t.specs))
	for i, s := range t.specs {
		sums[i] = s.Dists[col].Mean() * float64(s.N)
		counts[i] = s.N
	}
	return sums, counts
}
