package needletail

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/needletail/disksim"
	"repro/internal/xrand"
)

// SegmentTupleSource is the NOINDEX scenario over a real on-disk segment
// table (§6.3.6 meets the paper's disk experiments): tuples are drawn
// uniformly from the whole table by an actual timed pread against the
// value column — no group index is consulted to target the draw; the
// group is only revealed afterwards, from the manifest's row layout, the
// way a fetched tuple reveals its group-by attribute. Every read is
// observed on the simulated device (ObserveBlockRead), so a run reports
// both the cost model's charge and the measured wall-clock I/O for the
// identical access pattern.
//
// It satisfies core.TupleSource. Draw has no error path, so the first
// read failure is stored and surfaced via Err; after a failure every draw
// returns (0, 0), which a caller checking Err will discard.
type SegmentTupleSource struct {
	f      *os.File
	dev    *disksim.Device
	info   *dataset.SegmentInfo
	starts []int64 // starts[i] = first row of group i; len k+1, last = total rows
	c      float64
	err    error
}

// OpenSegmentTupleSource opens the value column of a segment directory for
// measured random tuple access, charging reads against dev. The column
// file is validated by the manifest's row count before any draws.
func OpenSegmentTupleSource(dir string, dev *disksim.Device) (*SegmentTupleSource, error) {
	info, err := dataset.ReadSegmentManifest(dir)
	if err != nil {
		return nil, err
	}
	if info.Compressed {
		return nil, fmt.Errorf("needletail: segment tuple source: %s holds block-compressed columns; raw per-row pread needs an uncompressed (v1) segment — rewrite without SegmentOptions.Compress", dir)
	}
	f, err := os.Open(dataset.SegmentValuePath(dir))
	if err != nil {
		return nil, fmt.Errorf("needletail: segment tuple source: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("needletail: segment tuple source: %w", err)
	}
	if want := dataset.SegmentDataOffset + 8*info.Rows; st.Size() != want {
		f.Close()
		return nil, fmt.Errorf("needletail: segment tuple source: value column is %d bytes, manifest expects %d",
			st.Size(), want)
	}
	starts := make([]int64, len(info.GroupRows)+1)
	for i, n := range info.GroupRows {
		starts[i+1] = starts[i] + n
	}
	return &SegmentTupleSource{f: f, dev: dev, info: info, starts: starts, c: info.MaxValue}, nil
}

// K returns the number of groups.
func (s *SegmentTupleSource) K() int { return len(s.info.GroupNames) }

// C returns the value bound (the manifest's maximum value).
func (s *SegmentTupleSource) C() float64 { return s.c }

// GroupNames returns the group names in segment order.
func (s *SegmentTupleSource) GroupNames() []string { return s.info.GroupNames }

// Rows returns the total row count.
func (s *SegmentTupleSource) Rows() int64 { return s.info.Rows }

// Err returns the first read error, if any draw failed.
func (s *SegmentTupleSource) Err() error { return s.err }

// Close closes the underlying column file.
func (s *SegmentTupleSource) Close() error { return s.f.Close() }

// Draw reads one uniformly random tuple from the table: a timed 8-byte
// pread at the row's offset, observed on the device at the row's block,
// then a binary search over the manifest layout to reveal the group.
func (s *SegmentTupleSource) Draw(r *xrand.RNG) (int, float64) {
	row := r.Int64n(s.info.Rows)
	if s.err != nil {
		return 0, 0
	}
	var buf [8]byte
	off := dataset.SegmentDataOffset + 8*row
	start := time.Now()
	if _, err := s.f.ReadAt(buf[:], off); err != nil {
		s.err = fmt.Errorf("needletail: segment tuple source: read row %d: %w", row, err)
		return 0, 0
	}
	elapsed := time.Since(start).Seconds()
	if s.dev != nil {
		s.dev.ObserveBlockRead(off/int64(s.dev.Model().BlockSize), elapsed)
		s.dev.ChargeSampleCPU(1)
	}
	// Group of row: the last group whose start is <= row.
	gi := sort.Search(len(s.starts)-1, func(i int) bool { return s.starts[i+1] > row })
	return gi, math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
}
