package needletail

import (
	"encoding/binary"
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/needletail/disksim"
	"repro/internal/xrand"
)

// Schema describes a table: one dictionary-encoded group-by column followed
// by one or more float64 value columns. This covers every query shape in
// the paper (single and multiple aggregates, selection predicates on value
// columns, group-by on the indexed column).
type Schema struct {
	// GroupColumn names the dictionary-encoded group-by attribute.
	GroupColumn string
	// ValueColumns names the numeric attributes, in storage order.
	ValueColumns []string
}

// RowWidth returns the encoded row size in bytes: a 4-byte group code plus
// 8 bytes per value column.
func (s Schema) RowWidth() int { return 4 + 8*len(s.ValueColumns) }

// ColumnIndex returns the index of the named value column, or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s.ValueColumns {
		if c == name {
			return i
		}
	}
	return -1
}

// Table is the storage interface the engine samples from. Implementations:
// MaterializedTable (real rows in memory pages, real bitmap indexes) and
// VirtualTable (generator-backed, for sweeps too large to materialize).
type Table interface {
	// Schema returns the table schema.
	Schema() Schema
	// NumRows returns the row count.
	NumRows() int64
	// GroupNames returns the dictionary, in code order.
	GroupNames() []string
	// GroupSize returns the number of rows in the given group code.
	GroupSize(code int) int64
	// Device returns the simulated device the table charges.
	Device() *disksim.Device
	// SampleRow returns the value-column payload of a uniformly random row
	// of the given group (charging one random row fetch). col selects the
	// value column.
	SampleRow(code int, col int, rng *xrand.RNG) float64
	// ScanAggregate performs a full sequential scan, charging sequential
	// I/O per block and one hash update per row, and returns per-group
	// (sum, count) for the given value column.
	ScanAggregate(col int) (sums []float64, counts []int64)
}

// MaterializedTable stores rows in memory pages and indexes the group
// column with one bitmap per group value, exactly as §4 describes.
type MaterializedTable struct {
	schema Schema
	device *disksim.Device

	pages    [][]byte // fixed-size pages of encoded rows
	rowWidth int
	perPage  int
	numRows  int64

	dict     []string
	dictIdx  map[string]int
	groupOf  []int32 // row -> group code (kept for membership tests)
	bitmaps  []*bitmap.Bitmap
	rleStats []*bitmap.RLE // compressed form, for storage reporting
}

// TableBuilder accumulates rows for a MaterializedTable.
type TableBuilder struct {
	t   *MaterializedTable
	buf []byte
}

// NewTableBuilder returns a builder over the given schema and device.
func NewTableBuilder(schema Schema, device *disksim.Device) *TableBuilder {
	rowWidth := schema.RowWidth()
	perPage := device.Model().BlockSize / rowWidth
	if perPage == 0 {
		perPage = 1
	}
	return &TableBuilder{
		t: &MaterializedTable{
			schema:   schema,
			device:   device,
			rowWidth: rowWidth,
			perPage:  perPage,
			dictIdx:  map[string]int{},
		},
	}
}

// Append adds one row. The number of values must match the schema.
func (b *TableBuilder) Append(group string, values ...float64) error {
	t := b.t
	if len(values) != len(t.schema.ValueColumns) {
		return fmt.Errorf("needletail: row has %d values, schema has %d columns", len(values), len(t.schema.ValueColumns))
	}
	code, ok := t.dictIdx[group]
	if !ok {
		code = len(t.dict)
		t.dictIdx[group] = code
		t.dict = append(t.dict, group)
	}
	if len(b.buf) == 0 {
		b.buf = make([]byte, 0, t.perPage*t.rowWidth)
	}
	var enc [4]byte
	binary.LittleEndian.PutUint32(enc[:], uint32(code))
	b.buf = append(b.buf, enc[:]...)
	var venc [8]byte
	for _, v := range values {
		binary.LittleEndian.PutUint64(venc[:], mathFloat64bits(v))
		b.buf = append(b.buf, venc[:]...)
	}
	t.groupOf = append(t.groupOf, int32(code))
	t.numRows++
	if len(b.buf) == t.perPage*t.rowWidth {
		t.pages = append(t.pages, b.buf)
		b.buf = nil
	}
	return nil
}

// Build finalizes the table: flushes the last page and constructs the
// bitmap indexes (plain for querying, RLE for the storage report).
func (b *TableBuilder) Build() (*MaterializedTable, error) {
	t := b.t
	if t.numRows == 0 {
		return nil, fmt.Errorf("needletail: empty table")
	}
	if len(b.buf) > 0 {
		t.pages = append(t.pages, b.buf)
		b.buf = nil
	}
	t.bitmaps = make([]*bitmap.Bitmap, len(t.dict))
	for c := range t.bitmaps {
		t.bitmaps[c] = bitmap.New(int(t.numRows))
	}
	for row, code := range t.groupOf {
		t.bitmaps[code].Set(row)
	}
	t.rleStats = make([]*bitmap.RLE, len(t.dict))
	for c, bm := range t.bitmaps {
		t.rleStats[c] = bitmap.Compress(bm)
	}
	return t, nil
}

// Schema returns the table schema.
func (t *MaterializedTable) Schema() Schema { return t.schema }

// NumRows returns the row count.
func (t *MaterializedTable) NumRows() int64 { return t.numRows }

// GroupNames returns the dictionary in code order.
func (t *MaterializedTable) GroupNames() []string { return t.dict }

// GroupSize returns the row count of the group.
func (t *MaterializedTable) GroupSize(code int) int64 {
	return int64(t.bitmaps[code].Count())
}

// Device returns the simulated device.
func (t *MaterializedTable) Device() *disksim.Device { return t.device }

// GroupBitmap exposes a group's index bitmap (for predicate composition).
func (t *MaterializedTable) GroupBitmap(code int) *bitmap.Bitmap { return t.bitmaps[code] }

// CompressedIndexWords reports the total RLE-compressed index size in
// 64-bit words, alongside the uncompressed size.
func (t *MaterializedTable) CompressedIndexWords() (compressed, plain int) {
	for _, r := range t.rleStats {
		compressed += r.CompressedWords()
		plain += r.PlainWords()
	}
	return
}

// readValue decodes column col of the given row, charging a random block
// read for the containing page (cached after first touch).
func (t *MaterializedTable) readValue(row int64, col int) float64 {
	page := row / int64(t.perPage)
	t.device.ChargeBlockRead(page)
	off := int(row%int64(t.perPage)) * t.rowWidth
	raw := t.pages[page][off+4+8*col : off+4+8*col+8]
	return mathFloat64frombits(binary.LittleEndian.Uint64(raw))
}

// SampleRow returns a uniformly random row's value from the group, via
// bitmap select (the constant-time retrieval of §4).
func (t *MaterializedTable) SampleRow(code, col int, rng *xrand.RNG) float64 {
	bm := t.bitmaps[code]
	t.device.ChargeSampleCPU(1)
	rank := rng.Intn(bm.Count())
	pos, err := bm.Select(rank)
	if err != nil {
		panic(err) // rank is in range by construction
	}
	return t.readValue(int64(pos), col)
}

// SampleRowWhere samples uniformly from the rows of the group that also
// satisfy the given predicate bitmap (selection predicates, §6.3.3). It
// returns false if no row qualifies.
func (t *MaterializedTable) SampleRowWhere(code, col int, pred *bitmap.Bitmap, rng *xrand.RNG) (float64, bool) {
	bm := t.bitmaps[code].And(pred)
	if bm.Count() == 0 {
		return 0, false
	}
	t.device.ChargeSampleCPU(1)
	pos, err := bm.Select(rng.Intn(bm.Count()))
	if err != nil {
		panic(err)
	}
	return t.readValue(int64(pos), col), true
}

// PredicateBitmap builds a bitmap of the rows whose column col satisfies
// pred. Building it costs one sequential pass, charged to the device
// (an ad-hoc predicate has no precomputed index).
func (t *MaterializedTable) PredicateBitmap(col int, pred func(v float64) bool) *bitmap.Bitmap {
	bm := bitmap.New(int(t.numRows))
	t.device.ChargeSeqBlocks(int64(len(t.pages)))
	t.device.ChargeHashUpdates(t.numRows)
	for row := int64(0); row < t.numRows; row++ {
		page := row / int64(t.perPage)
		off := int(row%int64(t.perPage)) * t.rowWidth
		raw := t.pages[page][off+4+8*col : off+4+8*col+8]
		if pred(mathFloat64frombits(binary.LittleEndian.Uint64(raw))) {
			bm.Set(int(row))
		}
	}
	return bm
}

// ScanAggregate is the SCAN baseline: a sequential pass charging one block
// read per page and one hash-map update per row.
func (t *MaterializedTable) ScanAggregate(col int) ([]float64, []int64) {
	sums := make([]float64, len(t.dict))
	counts := make([]int64, len(t.dict))
	t.device.ChargeSeqBlocks(int64(len(t.pages)))
	t.device.ChargeHashUpdates(t.numRows)
	for row := int64(0); row < t.numRows; row++ {
		page := row / int64(t.perPage)
		off := int(row%int64(t.perPage)) * t.rowWidth
		code := binary.LittleEndian.Uint32(t.pages[page][off : off+4])
		raw := t.pages[page][off+4+8*col : off+4+8*col+8]
		sums[code] += mathFloat64frombits(binary.LittleEndian.Uint64(raw))
		counts[code]++
	}
	return sums, counts
}
