package needletail

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/dataset"
	"repro/internal/needletail/disksim"
	"repro/internal/xrand"
)

// Engine binds a table to the sampling-algorithm layer: it exposes each
// group of the table as a dataset.Group whose draws go through the bitmap
// index and charge the simulated device, so any algorithm in internal/core
// runs unmodified on NEEDLETAIL and its run can be costed in simulated I/O
// and CPU seconds.
type Engine struct {
	table Table
	col   int
	c     float64
}

// NewEngine returns an engine over the named value column of the table.
// c bounds the column's values (the paper's c; e.g. 24h for flight delays).
func NewEngine(table Table, column string, c float64) (*Engine, error) {
	col := table.Schema().ColumnIndex(column)
	if col < 0 {
		return nil, fmt.Errorf("needletail: no value column %q in schema", column)
	}
	if c <= 0 {
		return nil, fmt.Errorf("needletail: value bound c must be positive, got %v", c)
	}
	return &Engine{table: table, col: col, c: c}, nil
}

// Table returns the underlying table.
func (e *Engine) Table() Table { return e.table }

// Device returns the simulated device being charged.
func (e *Engine) Device() *disksim.Device { return e.table.Device() }

// Universe exposes the table's groups as a dataset.Universe whose draws
// sample through the engine.
func (e *Engine) Universe() *dataset.Universe {
	names := e.table.GroupNames()
	groups := make([]dataset.Group, len(names))
	for code, name := range names {
		groups[code] = &engineGroup{eng: e, code: code, name: name}
	}
	return dataset.NewUniverse(e.c, groups...)
}

// Scan runs the SCAN baseline on the engine's column and returns the exact
// group means, charging a full sequential pass.
func (e *Engine) Scan() []float64 {
	sums, counts := e.table.ScanAggregate(e.col)
	means := make([]float64, len(sums))
	for i := range sums {
		if counts[i] > 0 {
			means[i] = sums[i] / float64(counts[i])
		}
	}
	return means
}

// UniverseWhere exposes the table's groups restricted to the rows matching
// the given predicate bitmap (selection predicates, §6.3.3): the returned
// universe's group i draws uniformly from {rows of group i} ∩ {pred}, via
// the AND of the group's index bitmap with the predicate bitmap, exactly
// as the paper describes for WHERE/HAVING clauses. Groups left empty by
// the predicate are dropped. Materialized tables only.
func (e *Engine) UniverseWhere(pred *bitmap.Bitmap) (*dataset.Universe, error) {
	mt, ok := e.table.(*MaterializedTable)
	if !ok {
		return nil, fmt.Errorf("needletail: predicates require a materialized table")
	}
	var groups []dataset.Group
	for code, name := range mt.GroupNames() {
		bm := mt.bitmaps[code].And(pred)
		if bm.Count() == 0 {
			continue
		}
		groups = append(groups, &predicateGroup{eng: e, table: mt, bits: bm, name: name})
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("needletail: predicate matches no rows")
	}
	return dataset.NewUniverse(e.c, groups...), nil
}

// predicateGroup samples uniformly from a precomputed (group ∩ predicate)
// bitmap. It supports without-replacement draws via a rank permutation,
// like engineGroup.
type predicateGroup struct {
	eng   *Engine
	table *MaterializedTable
	bits  *bitmap.Bitmap
	name  string

	perm []int32
	next int
}

// Name returns the group's name.
func (g *predicateGroup) Name() string { return g.name }

// Size returns the number of matching rows.
func (g *predicateGroup) Size() int64 { return int64(g.bits.Count()) }

// Draw samples one matching row's value.
func (g *predicateGroup) Draw(r *xrand.RNG) float64 {
	g.table.device.ChargeSampleCPU(1)
	pos, err := g.bits.Select(r.Intn(g.bits.Count()))
	if err != nil {
		panic(err)
	}
	return g.table.readValue(int64(pos), g.eng.col)
}

// TrueMean scans the matching rows — verification oracle only.
func (g *predicateGroup) TrueMean() float64 {
	sum, n := 0.0, 0
	g.bits.ForEach(func(pos int) bool {
		page := int64(pos) / int64(g.table.perPage)
		off := (pos % g.table.perPage) * g.table.rowWidth
		raw := g.table.pages[page][off+4+8*g.eng.col : off+4+8*g.eng.col+8]
		sum += mathFloat64frombits(leUint64(raw))
		n++
		return true
	})
	return sum / float64(n)
}

// DrawWithoutReplacement consumes a random permutation of matching rows.
func (g *predicateGroup) DrawWithoutReplacement(r *xrand.RNG) (float64, bool) {
	count := g.bits.Count()
	if g.next >= count {
		return 0, false
	}
	if g.perm == nil {
		g.perm = make([]int32, count)
		for i := range g.perm {
			g.perm[i] = int32(i)
		}
	}
	j := g.next + r.Intn(count-g.next)
	g.perm[g.next], g.perm[j] = g.perm[j], g.perm[g.next]
	rank := int(g.perm[g.next])
	g.next++
	g.table.device.ChargeSampleCPU(1)
	pos, err := g.bits.Select(rank)
	if err != nil {
		panic(err)
	}
	return g.table.readValue(int64(pos), g.eng.col), true
}

// ResetDraws restarts without-replacement sampling.
func (g *predicateGroup) ResetDraws() { g.perm = nil; g.next = 0 }

// FractionEstimator returns a dataset.FractionEstimator that estimates
// group fractional sizes by membership sampling: draw a uniformly random
// row of the whole table and test whether it belongs to the group. The
// membership test runs against the in-memory index (the bitmap or the
// virtual spec), so it costs CPU but no I/O — matching the paper's remark
// that NEEDLETAIL retrieves this information "without doing any disk
// seeks".
func (e *Engine) FractionEstimator() dataset.FractionEstimator {
	return &engineFractionEstimator{eng: e}
}

type engineFractionEstimator struct {
	eng *Engine
}

// DrawFractionEstimate returns 1 if a uniformly random row belongs to
// group i, else 0 — an unbiased Bernoulli(s_i) estimate.
func (f *engineFractionEstimator) DrawFractionEstimate(i int, r *xrand.RNG) float64 {
	t := f.eng.table
	t.Device().ChargeSampleCPU(1)
	row := r.Int64n(t.NumRows())
	if mt, ok := t.(*MaterializedTable); ok {
		if mt.bitmaps[i].Get(int(row)) {
			return 1
		}
		return 0
	}
	// Virtual layout places each group's rows contiguously, so a uniform
	// row id is a membership test against the group's extent.
	var lo int64
	for c := 0; c < i; c++ {
		lo += t.GroupSize(c)
	}
	if row >= lo && row < lo+t.GroupSize(i) {
		return 1
	}
	return 0
}

// engineGroup adapts one table group to dataset.Group. Draws are with
// replacement through the bitmap index; on materialized tables the group
// additionally supports exact without-replacement sampling via a lazily
// built permutation over the group's bitmap ranks.
type engineGroup struct {
	eng  *Engine
	code int
	name string

	perm []int32
	next int
}

// Name returns the group's name.
func (g *engineGroup) Name() string { return g.name }

// Size returns the group's row count.
func (g *engineGroup) Size() int64 { return g.eng.table.GroupSize(g.code) }

// Draw samples one row of the group through the index.
func (g *engineGroup) Draw(r *xrand.RNG) float64 {
	return g.eng.table.SampleRow(g.code, g.eng.col, r)
}

// DrawWithoutReplacement consumes a uniform random permutation of the
// group's rows, built lazily over the bitmap ranks so that consuming only a
// few samples costs O(samples). On virtual tables it reports false, which
// makes the sampler fall back to with-replacement draws (the statistically
// indistinguishable regime virtual tables exist for).
func (g *engineGroup) DrawWithoutReplacement(r *xrand.RNG) (float64, bool) {
	mt, ok := g.eng.table.(*MaterializedTable)
	if !ok {
		return 0, false
	}
	count := int(mt.GroupSize(g.code))
	if g.next >= count {
		return 0, false
	}
	if g.perm == nil {
		g.perm = make([]int32, count)
		for i := range g.perm {
			g.perm[i] = int32(i)
		}
	}
	j := g.next + r.Intn(count-g.next)
	g.perm[g.next], g.perm[j] = g.perm[j], g.perm[g.next]
	rank := int(g.perm[g.next])
	g.next++
	mt.device.ChargeSampleCPU(1)
	pos, err := mt.bitmaps[g.code].Select(rank)
	if err != nil {
		panic(err) // rank < count by construction
	}
	return mt.readValue(int64(pos), g.eng.col), true
}

// ResetDraws restarts without-replacement sampling.
func (g *engineGroup) ResetDraws() { g.perm = nil; g.next = 0 }

// TrueMean computes the exact mean — for verification only. On a
// materialized table this scans the group's bitmap without charging the
// device (it is an oracle, not a query); on a virtual table it is the
// analytical mean.
func (g *engineGroup) TrueMean() float64 {
	switch t := g.eng.table.(type) {
	case *MaterializedTable:
		sum, n := 0.0, 0
		t.bitmaps[g.code].ForEach(func(pos int) bool {
			page := int64(pos) / int64(t.perPage)
			off := (pos % t.perPage) * t.rowWidth
			raw := t.pages[page][off+4+8*g.eng.col : off+4+8*g.eng.col+8]
			sum += mathFloat64frombits(leUint64(raw))
			n++
			return true
		})
		return sum / float64(n)
	case *VirtualTable:
		return t.specs[g.code].Dists[g.eng.col].Mean()
	default:
		panic("needletail: unknown table type")
	}
}

func leUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
