package needletail

import (
	"math"
	"testing"

	"repro/internal/bitmap"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/needletail/disksim"
	"repro/internal/xrand"
)

func buildEngineTable(t *testing.T, rows int) *MaterializedTable {
	t.Helper()
	schema := Schema{GroupColumn: "g", ValueColumns: []string{"v"}}
	b := NewTableBuilder(schema, testDevice())
	r := xrand.New(21)
	means := map[string]float64{"a": 20, "b": 50, "c": 80}
	for i := 0; i < rows; i++ {
		name := []string{"a", "b", "c"}[r.Intn(3)]
		d := xrand.TruncNormal{Mu: means[name], Sigma: 8, Lo: 0, Hi: 100}
		if err := b.Append(name, d.Sample(r)); err != nil {
			t.Fatal(err)
		}
	}
	table, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func TestEngineValidation(t *testing.T) {
	table := buildEngineTable(t, 1000)
	if _, err := NewEngine(table, "nope", 100); err == nil {
		t.Fatal("bad column accepted")
	}
	if _, err := NewEngine(table, "v", 0); err == nil {
		t.Fatal("zero bound accepted")
	}
}

func TestEngineIFocusEndToEnd(t *testing.T) {
	table := buildEngineTable(t, 60_000)
	eng, err := NewEngine(table, "v", 100)
	if err != nil {
		t.Fatal(err)
	}
	u := eng.Universe()
	truth := u.TrueMeans()
	table.Device().Reset()
	res, err := core.IFocus(u, xrand.New(22), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !core.CorrectOrdering(res.Estimates, truth) {
		t.Fatalf("ordering wrong: %v vs %v", res.Estimates, truth)
	}
	st := table.Device().Stats()
	if st.RandBlockMisses == 0 || st.CPUSeconds == 0 {
		t.Fatalf("engine run charged nothing: %+v", st)
	}
}

func TestEngineScanMatchesOracle(t *testing.T) {
	table := buildEngineTable(t, 20_000)
	eng, err := NewEngine(table, "v", 100)
	if err != nil {
		t.Fatal(err)
	}
	scan := eng.Scan()
	for i, g := range eng.Universe().Groups {
		if math.Abs(scan[i]-g.TrueMean()) > 1e-9 {
			t.Fatalf("scan mean %v != oracle %v", scan[i], g.TrueMean())
		}
	}
}

func TestEngineWithoutReplacementExact(t *testing.T) {
	// Consuming a group's full permutation through the engine reproduces
	// the exact group mean — the property Table 3 relies on to order
	// near-tied airlines.
	table := buildEngineTable(t, 3000)
	eng, err := NewEngine(table, "v", 100)
	if err != nil {
		t.Fatal(err)
	}
	u := eng.Universe()
	g := u.Groups[0].(dataset.WithoutReplacementGroup)
	r := xrand.New(23)
	sum, n := 0.0, 0
	for {
		v, ok := g.DrawWithoutReplacement(r)
		if !ok {
			break
		}
		sum += v
		n++
	}
	if int64(n) != u.Groups[0].Size() {
		t.Fatalf("drew %d of %d", n, u.Groups[0].Size())
	}
	if math.Abs(sum/float64(n)-u.Groups[0].TrueMean()) > 1e-9 {
		t.Fatal("full permutation mean not exact")
	}
	// Reset restarts.
	g.ResetDraws()
	if _, ok := g.DrawWithoutReplacement(r); !ok {
		t.Fatal("reset did not restart")
	}
}

func TestEngineFractionEstimator(t *testing.T) {
	table := buildEngineTable(t, 30_000)
	eng, err := NewEngine(table, "v", 100)
	if err != nil {
		t.Fatal(err)
	}
	est := eng.FractionEstimator()
	r := xrand.New(24)
	const n = 100_000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += est.DrawFractionEstimate(1, r)
	}
	want := float64(table.GroupSize(1)) / float64(table.NumRows())
	if got := sum / n; math.Abs(got-want) > 0.01 {
		t.Fatalf("fraction %v, want %v", got, want)
	}
}

func TestEngineFractionEstimatorVirtual(t *testing.T) {
	schema := Schema{GroupColumn: "g", ValueColumns: []string{"v"}}
	vt, err := NewVirtualTable(schema, testDevice(), []VirtualGroupSpec{
		{Name: "a", N: 3000, Dists: []xrand.Dist{xrand.Point(1)}},
		{Name: "b", N: 7000, Dists: []xrand.Dist{xrand.Point(2)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(vt, "v", 100)
	if err != nil {
		t.Fatal(err)
	}
	est := eng.FractionEstimator()
	r := xrand.New(25)
	const n = 100_000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += est.DrawFractionEstimate(1, r)
	}
	if got := sum / n; math.Abs(got-0.7) > 0.01 {
		t.Fatalf("virtual fraction %v, want 0.7", got)
	}
}

func TestDisksimModelValidation(t *testing.T) {
	bad := disksim.DefaultCostModel()
	bad.BlockSize = 0
	if _, err := disksim.New(bad); err == nil {
		t.Fatal("zero block size accepted")
	}
	bad = disksim.DefaultCostModel()
	bad.RandBlockTime = -1
	if _, err := disksim.New(bad); err == nil {
		t.Fatal("negative cost accepted")
	}
}

func TestDisksimAccounting(t *testing.T) {
	d := disksim.MustNew(disksim.DefaultCostModel())
	d.ChargeSeqBlocks(10)
	d.ChargeBlockRead(5)
	d.ChargeBlockRead(5) // cached
	d.ChargeHashUpdates(1000)
	d.ChargeSampleCPU(1000)
	st := d.Stats()
	if st.SeqBlocks != 10 || st.RandBlockMisses != 1 || st.RandBlockHits != 1 {
		t.Fatalf("stats %+v", st)
	}
	m := d.Model()
	wantIO := 10*m.SeqBlockTime + m.RandBlockTime
	if math.Abs(st.IOSeconds-wantIO) > 1e-12 {
		t.Fatalf("io %v, want %v", st.IOSeconds, wantIO)
	}
	wantCPU := 1000*m.HashUpdateTime + 1000*m.SampleCPUTime
	if math.Abs(st.CPUSeconds-wantCPU) > 1e-12 {
		t.Fatalf("cpu %v, want %v", st.CPUSeconds, wantCPU)
	}
	if math.Abs(st.TotalSeconds()-(wantIO+wantCPU)) > 1e-12 {
		t.Fatal("total != io + cpu")
	}
	d.Reset()
	if d.Stats().TotalSeconds() != 0 {
		t.Fatal("reset failed")
	}
	d.ChargeBlockRead(5)
	if d.Stats().RandBlockMisses != 1 {
		t.Fatal("reset did not clear the cache")
	}
}

func TestBlocksForRows(t *testing.T) {
	d := disksim.MustNew(disksim.DefaultCostModel())
	if got := d.BlocksForRows(0, 8); got != 0 {
		t.Fatalf("zero rows: %d", got)
	}
	perBlock := int64((1 << 20) / 8)
	if got := d.BlocksForRows(perBlock, 8); got != 1 {
		t.Fatalf("exactly one block: %d", got)
	}
	if got := d.BlocksForRows(perBlock+1, 8); got != 2 {
		t.Fatalf("one block plus a row: %d", got)
	}
}

func TestUniverseWhereEndToEnd(t *testing.T) {
	// Build a table where a predicate on a second column flips the group
	// ordering: within v2 > 50, group means differ from the unfiltered ones.
	schema := Schema{GroupColumn: "g", ValueColumns: []string{"v", "flag"}}
	b := NewTableBuilder(schema, testDevice())
	r := xrand.New(31)
	for i := 0; i < 40_000; i++ {
		name := []string{"a", "b"}[r.Intn(2)]
		flag := float64(r.Intn(2) * 100)
		var mean float64
		switch {
		case name == "a" && flag > 50:
			mean = 80 // filtered: a > b
		case name == "a":
			mean = 10 // unfiltered: a ≈ 45 < b ≈ 50
		case flag > 50:
			mean = 40
		default:
			mean = 60
		}
		d := xrand.TruncNormal{Mu: mean, Sigma: 5, Lo: 0, Hi: 100}
		if err := b.Append(name, d.Sample(r), flag); err != nil {
			t.Fatal(err)
		}
	}
	table, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(table, "v", 100)
	if err != nil {
		t.Fatal(err)
	}
	pred := table.PredicateBitmap(1, func(v float64) bool { return v > 50 })
	u, err := eng.UniverseWhere(pred)
	if err != nil {
		t.Fatal(err)
	}
	if u.K() != 2 {
		t.Fatalf("predicate universe has %d groups", u.K())
	}
	truth := u.TrueMeans()
	res, err := core.IFocus(u, xrand.New(32), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !core.CorrectOrdering(res.Estimates, truth) {
		t.Fatalf("filtered ordering wrong: %v vs %v", res.Estimates, truth)
	}
	// The filtered ordering differs from the unfiltered one (a's filtered
	// mean is high, unfiltered low) — the point of predicate support.
	full := eng.Universe().TrueMeans()
	if (full[0] < full[1]) == (truth[0] < truth[1]) {
		t.Fatal("test setup: predicate did not flip the ordering")
	}
	// Empty predicate rejected.
	if _, err := eng.UniverseWhere(bitmap.New(int(table.NumRows()))); err == nil {
		t.Fatal("empty predicate accepted")
	}
}

func TestPredicateGroupWithoutReplacement(t *testing.T) {
	schema := Schema{GroupColumn: "g", ValueColumns: []string{"v", "flag"}}
	b := NewTableBuilder(schema, testDevice())
	r := xrand.New(33)
	for i := 0; i < 2000; i++ {
		if err := b.Append("only", r.Float64()*100, float64(i%2*100)); err != nil {
			t.Fatal(err)
		}
	}
	table, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(table, "v", 100)
	if err != nil {
		t.Fatal(err)
	}
	pred := table.PredicateBitmap(1, func(v float64) bool { return v > 50 })
	u, err := eng.UniverseWhere(pred)
	if err != nil {
		t.Fatal(err)
	}
	g := u.Groups[0].(dataset.WithoutReplacementGroup)
	sum, n := 0.0, 0
	for {
		v, ok := g.DrawWithoutReplacement(r)
		if !ok {
			break
		}
		sum += v
		n++
	}
	if int64(n) != u.Groups[0].Size() {
		t.Fatalf("drew %d of %d", n, u.Groups[0].Size())
	}
	if got, want := sum/float64(n), u.Groups[0].TrueMean(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("permutation mean %v != oracle %v", got, want)
	}
}
