// Package disksim models the storage device underneath NEEDLETAIL.
//
// The paper's wall-clock experiments (Figure 4, Table 3) ran on a Xeon
// E7-4830 server reading 1 MB blocks with Direct I/O from a disk subsystem
// sustaining ~800 MB/s sequentially, with a single thread managing ~10M
// hash-map updates per second (§5.1). We do not have that testbed, so the
// device is simulated: every block access is charged against a configurable
// cost model, and experiments report simulated seconds. The paper's own
// analysis of Figure 4 reduces to exactly these constants (sequential
// bandwidth, random-access latency, per-record CPU cost), so the crossovers
// it reports — notably sampling's random I/O beating SCAN's sequential
// I/O — are preserved. See DESIGN.md §5.
package disksim

import "fmt"

// CostModel holds the device and CPU constants, all in (simulated) seconds.
type CostModel struct {
	// BlockSize is the I/O unit in bytes (the paper uses 1 MB Direct I/O).
	BlockSize int
	// SeqBlockTime is the time to read one block during a sequential pass.
	SeqBlockTime float64
	// RandBlockTime is the time to fetch one block not yet resident (a
	// random seek plus the transfer). Blocks fetched earlier in the same
	// query are served from the query's block cache at zero I/O cost,
	// which is how NEEDLETAIL amortizes random access (§4) and why the
	// paper's sampling runtimes track sample counts rather than paying a
	// full seek per sample.
	RandBlockTime float64
	// HashUpdateTime is the CPU time for one aggregate hash-map update
	// (the paper measures ~10M/s single-threaded).
	HashUpdateTime float64
	// SampleCPUTime is the CPU time to service one index sample: a
	// hierarchical bitmap select plus the running-mean update.
	SampleCPUTime float64
	// DisableCache charges every random block access at full cost, for the
	// block-cache ablation (quantifying how much of NEEDLETAIL's speed
	// comes from amortizing block fetches within a query).
	DisableCache bool
}

// DefaultCostModel returns constants calibrated to the paper's testbed:
// 1 MB blocks at 800 MB/s sequential, ~2 ms per uncached random block
// fetch, 10M hash updates/s, ~0.5 µs of CPU per sample.
func DefaultCostModel() CostModel {
	return CostModel{
		BlockSize:      1 << 20,
		SeqBlockTime:   (1 << 20) / 800e6,
		RandBlockTime:  2e-3,
		HashUpdateTime: 0.1e-6,
		SampleCPUTime:  0.5e-6,
	}
}

// Validate reports whether the model's constants are usable.
func (m CostModel) Validate() error {
	if m.BlockSize <= 0 {
		return fmt.Errorf("disksim: block size must be positive, got %d", m.BlockSize)
	}
	if m.SeqBlockTime < 0 || m.RandBlockTime < 0 || m.HashUpdateTime < 0 || m.SampleCPUTime < 0 {
		return fmt.Errorf("disksim: negative cost constant")
	}
	return nil
}

// Stats accumulates the simulated cost of a workload, split the same way
// the paper splits Figure 4: I/O seconds and CPU seconds.
type Stats struct {
	// SeqBlocks counts sequentially read blocks; RandBlockMisses and
	// RandBlockHits split random block accesses by cache residency.
	SeqBlocks       int64
	RandBlockMisses int64
	RandBlockHits   int64
	// IOSeconds and CPUSeconds are the accumulated simulated times.
	IOSeconds  float64
	CPUSeconds float64
	// MeasuredReads and MeasuredIOSeconds accumulate real block reads
	// observed via ObserveBlockRead — wall-clock time of actual I/O against
	// an on-disk segment table, kept apart from the simulated costs so a
	// run can report both "what the paper's device would have charged" and
	// "what this machine actually paid".
	MeasuredReads     int64
	MeasuredIOSeconds float64
}

// TotalSeconds returns I/O plus CPU time. The paper's single-threaded runs
// do not overlap the two, so total time is their sum.
func (s Stats) TotalSeconds() float64 { return s.IOSeconds + s.CPUSeconds }

// Device is a simulated block device: a cost accumulator over a logical
// block space. It stores no bytes — tables keep their pages in memory (or
// generate them) and charge the device for each access.
type Device struct {
	model  CostModel
	stats  Stats
	cached map[int64]struct{}
}

// New returns a device with the given cost model.
func New(model CostModel) (*Device, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	return &Device{model: model, cached: map[int64]struct{}{}}, nil
}

// MustNew is New but panics on an invalid model.
func MustNew(model CostModel) *Device {
	d, err := New(model)
	if err != nil {
		panic(err)
	}
	return d
}

// Model returns the device's cost model.
func (d *Device) Model() CostModel { return d.model }

// Stats returns a snapshot of the accumulated costs.
func (d *Device) Stats() Stats { return d.stats }

// Reset zeroes the accumulated costs and drops the block cache.
func (d *Device) Reset() {
	d.stats = Stats{}
	d.cached = map[int64]struct{}{}
}

// ChargeSeqBlocks charges a sequential read of n blocks.
func (d *Device) ChargeSeqBlocks(n int64) {
	d.stats.SeqBlocks += n
	d.stats.IOSeconds += float64(n) * d.model.SeqBlockTime
}

// ChargeBlockRead charges one random access to the given block: a full
// RandBlockTime on first touch, free afterwards (query-lifetime cache).
func (d *Device) ChargeBlockRead(block int64) {
	if _, ok := d.cached[block]; ok && !d.model.DisableCache {
		d.stats.RandBlockHits++
		return
	}
	d.cached[block] = struct{}{}
	d.stats.RandBlockMisses++
	d.stats.IOSeconds += d.model.RandBlockTime
}

// ObserveBlockRead records one real (measured) access to the given block:
// the wall-clock seconds the read actually took, alongside the simulated
// charge the cost model would have made for the same access. The cache
// discipline is shared with ChargeBlockRead — a block already resident in
// the query-lifetime cache is a hit and charges nothing, simulated or
// measured — so the two accountings stay comparable block for block.
func (d *Device) ObserveBlockRead(block int64, seconds float64) {
	if _, ok := d.cached[block]; ok && !d.model.DisableCache {
		d.stats.RandBlockHits++
		return
	}
	d.cached[block] = struct{}{}
	d.stats.RandBlockMisses++
	d.stats.IOSeconds += d.model.RandBlockTime
	d.stats.MeasuredReads++
	d.stats.MeasuredIOSeconds += seconds
}

// ChargeHashUpdates charges CPU time for n aggregate hash-map updates.
func (d *Device) ChargeHashUpdates(n int64) {
	d.stats.CPUSeconds += float64(n) * d.model.HashUpdateTime
}

// ChargeSampleCPU charges CPU time for n index samples.
func (d *Device) ChargeSampleCPU(n int64) {
	d.stats.CPUSeconds += float64(n) * d.model.SampleCPUTime
}

// BlocksForRows returns the number of blocks occupied by n rows of the
// given width, rounding up.
func (d *Device) BlocksForRows(n int64, rowWidth int) int64 {
	if rowWidth <= 0 || n <= 0 {
		return 0
	}
	perBlock := int64(d.model.BlockSize / rowWidth)
	if perBlock == 0 {
		perBlock = 1
	}
	return (n + perBlock - 1) / perBlock
}
