package needletail

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/needletail/disksim"
	"repro/internal/xrand"
)

// buildSegDir writes a small segment table and returns its directory plus
// the per-group value sets (for membership checks) and true means.
func buildSegDir(t *testing.T) (string, []map[float64]bool, []float64) {
	t.Helper()
	b := dataset.NewTableBuilder()
	rng := xrand.New(101)
	names := []string{"AA", "UA", "DL", "WN"}
	vals := make([]map[float64]bool, len(names))
	means := make([]float64, len(names))
	for gi, name := range names {
		vals[gi] = map[float64]bool{}
		n := 200 + 150*gi
		sum := 0.0
		for i := 0; i < n; i++ {
			v := float64(10*gi) + 40*rng.Float64()
			b.Add(name, v)
			vals[gi][v] = true
			sum += v
		}
		means[gi] = sum / float64(n)
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := tbl.WriteSegments(dir); err != nil {
		t.Fatal(err)
	}
	return dir, vals, means
}

// TestSegmentTupleSourceDraws: every drawn tuple carries a value that
// really belongs to the revealed group, draws are deterministic for a
// seed, and the device observes one measured read per uncached block.
func TestSegmentTupleSourceDraws(t *testing.T) {
	dir, vals, _ := buildSegDir(t)
	dev := disksim.MustNew(disksim.DefaultCostModel())
	src, err := OpenSegmentTupleSource(dir, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.K() != 4 {
		t.Fatalf("K = %d, want 4", src.K())
	}

	const draws = 2000
	rng := xrand.New(7)
	counts := make([]int64, src.K())
	seq := make([]float64, 0, draws)
	for i := 0; i < draws; i++ {
		gi, v := src.Draw(rng)
		if gi < 0 || gi >= src.K() {
			t.Fatalf("draw %d: group %d out of range", i, gi)
		}
		if !vals[gi][v] {
			t.Fatalf("draw %d: value %v is not a member of group %d (%s)", i, v, gi, src.GroupNames()[gi])
		}
		counts[gi]++
		seq = append(seq, v)
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	for gi, c := range counts {
		if c == 0 {
			t.Fatalf("group %d never drawn in %d tuples", gi, draws)
		}
	}

	st := dev.Stats()
	if st.MeasuredReads == 0 {
		t.Fatal("no measured reads observed")
	}
	if st.MeasuredReads != st.RandBlockMisses {
		t.Fatalf("measured reads %d != block misses %d", st.MeasuredReads, st.RandBlockMisses)
	}
	if st.RandBlockMisses+st.RandBlockHits != draws {
		t.Fatalf("block accesses %d, want %d", st.RandBlockMisses+st.RandBlockHits, draws)
	}
	if st.MeasuredIOSeconds < 0 {
		t.Fatalf("negative measured IO: %v", st.MeasuredIOSeconds)
	}

	// Same seed, fresh source: identical tuple stream.
	src2, err := OpenSegmentTupleSource(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer src2.Close()
	rng2 := xrand.New(7)
	for i := 0; i < draws; i++ {
		_, v := src2.Draw(rng2)
		if v != seq[i] {
			t.Fatalf("draw %d diverged on reopen: %v != %v", i, v, seq[i])
		}
	}
}

// TestNoIndexOverSegments runs the full NOINDEX algorithm against the
// on-disk source: it must terminate with correctly ordered estimates, and
// the device must have observed real I/O for the run.
func TestNoIndexOverSegments(t *testing.T) {
	dir, _, means := buildSegDir(t)
	dev := disksim.MustNew(disksim.DefaultCostModel())
	src, err := OpenSegmentTupleSource(dir, dev)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	opts := core.DefaultOptions()
	res, err := core.NoIndex(src, xrand.New(43), opts, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if !core.CorrectOrdering(res.Estimates, means) {
		t.Fatalf("no-index over segments misordered: est %v, true %v", res.Estimates, means)
	}
	if dev.Stats().MeasuredReads == 0 {
		t.Fatal("no measured I/O recorded for the run")
	}
}

// TestSegmentTupleSourceRejectsCompressed: the tuple source reads rows by
// raw pread at row*8, which is meaningless over encoded blocks — a
// compressed directory must be refused with a descriptive error.
func TestSegmentTupleSourceRejectsCompressed(t *testing.T) {
	b := dataset.NewTableBuilder()
	rng := xrand.New(3)
	for i := 0; i < 100; i++ {
		b.Add("G", 40*rng.Float64())
	}
	tbl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := tbl.WriteSegmentsOptions(dir, dataset.SegmentOptions{Compress: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmentTupleSource(dir, nil); err == nil || !strings.Contains(err.Error(), "block-compressed") {
		t.Fatalf("compressed dir must be rejected, got %v", err)
	}
}
