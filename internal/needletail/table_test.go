package needletail

import (
	"math"
	"testing"

	"repro/internal/needletail/disksim"
	"repro/internal/xrand"
)

func testDevice() *disksim.Device {
	m := disksim.DefaultCostModel()
	m.BlockSize = 4096 // small blocks so tests exercise page boundaries
	return disksim.MustNew(m)
}

func buildTestTable(t *testing.T, rows int) *MaterializedTable {
	t.Helper()
	schema := Schema{GroupColumn: "g", ValueColumns: []string{"x", "y"}}
	b := NewTableBuilder(schema, testDevice())
	r := xrand.New(7)
	groups := []string{"red", "green", "blue"}
	for i := 0; i < rows; i++ {
		g := groups[r.Intn(len(groups))]
		base := float64(10 * (1 + indexOf(groups, g)))
		if err := b.Append(g, base+r.Float64(), 100-base); err != nil {
			t.Fatal(err)
		}
	}
	table, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func indexOf(xs []string, s string) int {
	for i, x := range xs {
		if x == s {
			return i
		}
	}
	return -1
}

func TestTableBuildAndScan(t *testing.T) {
	table := buildTestTable(t, 10_000)
	if table.NumRows() != 10_000 {
		t.Fatalf("rows %d", table.NumRows())
	}
	if len(table.GroupNames()) != 3 {
		t.Fatalf("groups %v", table.GroupNames())
	}
	var total int64
	for c := range table.GroupNames() {
		total += table.GroupSize(c)
	}
	if total != 10_000 {
		t.Fatalf("group sizes sum to %d", total)
	}
	// Scan aggregates column x: group means must be near 10/20/30 + 0.5.
	sums, counts := table.ScanAggregate(0)
	for c, name := range table.GroupNames() {
		mean := sums[c] / float64(counts[c])
		want := 10*float64(1+indexOf([]string{"red", "green", "blue"}, name)) + 0.5
		if math.Abs(mean-want) > 0.1 {
			t.Fatalf("group %s mean %v, want ~%v", name, mean, want)
		}
	}
	// Scan charges sequential blocks plus hash updates.
	st := table.Device().Stats()
	if st.SeqBlocks == 0 || st.CPUSeconds == 0 {
		t.Fatalf("scan not charged: %+v", st)
	}
}

func TestTableAppendValidation(t *testing.T) {
	schema := Schema{GroupColumn: "g", ValueColumns: []string{"x"}}
	b := NewTableBuilder(schema, testDevice())
	if err := b.Append("g1", 1, 2); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("empty table built")
	}
}

func TestTableSampleRowUniform(t *testing.T) {
	table := buildTestTable(t, 5_000)
	r := xrand.New(9)
	red := indexOf(table.GroupNames(), "red")
	// Sampling column x from group "red" must stay within red's value
	// range [10, 11) and approximate the group mean.
	sum := 0.0
	const n = 20_000
	for i := 0; i < n; i++ {
		v := table.SampleRow(red, 0, r)
		if v < 10 || v >= 11 {
			t.Fatalf("sample %v outside red's range", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-10.5) > 0.05 {
		t.Fatalf("sample mean %v, want ~10.5", mean)
	}
}

func TestTableBlockCache(t *testing.T) {
	table := buildTestTable(t, 50_000)
	dev := table.Device()
	dev.Reset()
	r := xrand.New(10)
	for i := 0; i < 10_000; i++ {
		table.SampleRow(1, 0, r)
	}
	st := dev.Stats()
	if st.RandBlockMisses == 0 {
		t.Fatal("no block reads charged")
	}
	if st.RandBlockHits == 0 {
		t.Fatal("no cache hits despite heavy resampling")
	}
	// Misses are bounded by the table's page count.
	maxPages := int64(len(table.pages))
	if st.RandBlockMisses > maxPages {
		t.Fatalf("%d misses exceed %d pages", st.RandBlockMisses, maxPages)
	}
}

func TestPredicateBitmapAndSampleWhere(t *testing.T) {
	table := buildTestTable(t, 20_000)
	// Predicate on column y: y > 75 selects exactly the red rows (y=90)
	// and green rows (y=80), not blue (y=70).
	pred := table.PredicateBitmap(1, func(v float64) bool { return v > 75 })
	// Dictionary codes follow first-appearance order; resolve by name.
	code := map[string]int{}
	for c, name := range table.GroupNames() {
		code[name] = c
	}
	want := int(table.GroupSize(code["red"]) + table.GroupSize(code["green"]))
	if pred.Count() != want {
		t.Fatalf("predicate selected %d rows, want %d", pred.Count(), want)
	}
	// Sampling blue under the predicate yields nothing.
	r := xrand.New(11)
	if _, ok := table.SampleRowWhere(code["blue"], 0, pred, r); ok {
		t.Fatal("blue row satisfied an unsatisfiable predicate")
	}
	// Sampling red under the predicate yields red x-values.
	v, ok := table.SampleRowWhere(code["red"], 0, pred, r)
	if !ok || v < 10 || v >= 11 {
		t.Fatalf("red predicate sample %v ok=%v", v, ok)
	}
}

func TestCompressedIndexReporting(t *testing.T) {
	table := buildTestTable(t, 30_000)
	compressed, plain := table.CompressedIndexWords()
	if compressed <= 0 || plain <= 0 {
		t.Fatalf("sizes %d/%d", compressed, plain)
	}
	// Random group assignment compresses poorly; just verify the plain
	// size is 3 bitmaps over 30k rows.
	wantPlain := 3 * ((30_000 + 63) / 64)
	if plain != wantPlain {
		t.Fatalf("plain words %d, want %d", plain, wantPlain)
	}
}

func TestVirtualTable(t *testing.T) {
	schema := Schema{GroupColumn: "g", ValueColumns: []string{"v"}}
	dev := testDevice()
	specs := []VirtualGroupSpec{
		{Name: "a", N: 1 << 30, Dists: []xrand.Dist{xrand.Point(10)}},
		{Name: "b", N: 1 << 31, Dists: []xrand.Dist{xrand.Point(20)}},
	}
	vt, err := NewVirtualTable(schema, dev, specs)
	if err != nil {
		t.Fatal(err)
	}
	if vt.NumRows() != (1<<30)+(1<<31) {
		t.Fatalf("rows %d", vt.NumRows())
	}
	r := xrand.New(12)
	if v := vt.SampleRow(0, 0, r); v != 10 {
		t.Fatalf("sample %v", v)
	}
	sums, counts := vt.ScanAggregate(0)
	if sums[1]/float64(counts[1]) != 20 {
		t.Fatal("virtual scan mean wrong")
	}
	st := dev.Stats()
	if st.SeqBlocks == 0 {
		t.Fatal("virtual scan charged no blocks")
	}
}

func TestVirtualTableValidation(t *testing.T) {
	schema := Schema{GroupColumn: "g", ValueColumns: []string{"v"}}
	dev := testDevice()
	if _, err := NewVirtualTable(schema, dev, nil); err == nil {
		t.Fatal("empty specs accepted")
	}
	if _, err := NewVirtualTable(schema, dev, []VirtualGroupSpec{{Name: "a", N: 0, Dists: []xrand.Dist{xrand.Point(1)}}}); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := NewVirtualTable(schema, dev, []VirtualGroupSpec{{Name: "a", N: 5, Dists: nil}}); err == nil {
		t.Fatal("missing dists accepted")
	}
}
