// Package viz renders the visualizations the sampling algorithms feed:
// text bar charts with optional confidence-interval error bars, trend
// lines, and the ordering/resolution comparisons used to validate output
// against ground truth. Rendering is plain text so examples and CLI tools
// work everywhere; the layer is deliberately independent of how estimates
// were produced.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Bar is one group of a bar chart.
type Bar struct {
	// Label names the group.
	Label string
	// Value is the bar height (the estimate ν).
	Value float64
	// Err is the confidence half-width; zero hides the error bar.
	Err float64
}

// BarChart renders a horizontal text bar chart. Width is the maximum bar
// width in characters; bars scale linearly from zero to the largest
// value+err. A value marker '|' shows the ±Err interval ends when Err > 0.
func BarChart(bars []Bar, width int) string {
	if width <= 0 {
		width = 50
	}
	maxVal := 0.0
	maxLabel := 0
	for _, b := range bars {
		if v := b.Value + b.Err; v > maxVal {
			maxVal = v
		}
		if len(b.Label) > maxLabel {
			maxLabel = len(b.Label)
		}
	}
	if maxVal <= 0 {
		maxVal = 1
	}
	var sb strings.Builder
	for _, b := range bars {
		n := int(math.Round(b.Value / maxVal * float64(width)))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&sb, "%-*s %s", maxLabel, b.Label, strings.Repeat("█", n))
		if b.Err > 0 {
			lo := int(math.Round((b.Value - b.Err) / maxVal * float64(width)))
			hi := int(math.Round((b.Value + b.Err) / maxVal * float64(width)))
			if lo < 0 {
				lo = 0
			}
			if hi > lo {
				// Extend dashes from the bar end to the upper CI bound.
				if hi > n {
					sb.WriteString(strings.Repeat("─", hi-n))
				}
				fmt.Fprintf(&sb, " %.2f ±%.2f", b.Value, b.Err)
			} else {
				fmt.Fprintf(&sb, " %.2f", b.Value)
			}
		} else {
			fmt.Fprintf(&sb, " %.2f", b.Value)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TrendLine renders a text sparkline of the series using eighth-block
// characters, preceded by min/max annotations — the trend-line counterpart
// of BarChart for Problem 3 outputs.
func TrendLine(labels []string, values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	span := hi - lo
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%.2f … %.2f] ", lo, hi)
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(blocks)-1))
		}
		sb.WriteRune(blocks[idx])
	}
	sb.WriteByte('\n')
	if len(labels) == len(values) {
		fmt.Fprintf(&sb, "%s … %s\n", labels[0], labels[len(labels)-1])
	}
	return sb.String()
}

// SortedByValue returns a copy of the bars sorted descending by value —
// the order a "which group wins" visualization presents.
func SortedByValue(bars []Bar) []Bar {
	out := append([]Bar(nil), bars...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Value > out[j].Value })
	return out
}

// Table renders rows as a fixed-width text table with the given headers,
// used by the experiment harness to print paper-style tables.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}
