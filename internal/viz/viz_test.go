package viz

import (
	"strings"
	"testing"
)

func TestBarChartBasics(t *testing.T) {
	out := BarChart([]Bar{
		{Label: "aa", Value: 10},
		{Label: "bbb", Value: 20},
	}, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines: %q", out)
	}
	if !strings.Contains(lines[0], "aa") || !strings.Contains(lines[1], "bbb") {
		t.Fatalf("labels missing: %q", out)
	}
	// The larger bar must be longer.
	if strings.Count(lines[1], "█") <= strings.Count(lines[0], "█") {
		t.Fatalf("bar lengths not monotone: %q", out)
	}
	// Values annotated.
	if !strings.Contains(lines[0], "10.00") {
		t.Fatalf("value missing: %q", out)
	}
}

func TestBarChartErrorBars(t *testing.T) {
	out := BarChart([]Bar{{Label: "g", Value: 10, Err: 5}}, 40)
	if !strings.Contains(out, "±5.00") {
		t.Fatalf("error bar missing: %q", out)
	}
	if !strings.Contains(out, "─") {
		t.Fatalf("CI whisker missing: %q", out)
	}
}

func TestBarChartZeroAndDefaults(t *testing.T) {
	// Zero width falls back; zero values do not divide by zero.
	out := BarChart([]Bar{{Label: "z", Value: 0}}, 0)
	if !strings.Contains(out, "z") {
		t.Fatalf("degenerate chart: %q", out)
	}
}

func TestTrendLine(t *testing.T) {
	out := TrendLine([]string{"jan", "feb", "mar"}, []float64{1, 5, 3})
	if !strings.Contains(out, "jan") || !strings.Contains(out, "mar") {
		t.Fatalf("labels missing: %q", out)
	}
	if !strings.Contains(out, "[1.00 … 5.00]") {
		t.Fatalf("range missing: %q", out)
	}
	if TrendLine(nil, nil) != "" {
		t.Fatal("empty series should render empty")
	}
	// Flat series must not divide by zero.
	if out := TrendLine([]string{"a", "b"}, []float64{2, 2}); out == "" {
		t.Fatal("flat series empty")
	}
}

func TestSortedByValue(t *testing.T) {
	in := []Bar{{Label: "a", Value: 1}, {Label: "b", Value: 3}, {Label: "c", Value: 2}}
	out := SortedByValue(in)
	if out[0].Label != "b" || out[1].Label != "c" || out[2].Label != "a" {
		t.Fatalf("sorted %v", out)
	}
	// Input untouched.
	if in[0].Label != "a" {
		t.Fatal("input mutated")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"col1", "c2"}, [][]string{
		{"a", "123456"},
		{"bb", "7"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines: %q", out)
	}
	// All rows align to the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("header/separator misaligned:\n%s", out)
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Fatalf("separator missing: %q", lines[1])
	}
}
