// Package serve exposes a rapidviz Engine over HTTP and WebSocket: JSON
// query submission, streamed partials with per-group error bars, per-
// request deadlines and draw budgets mapped onto the engine's context-
// cancellation and worker-admission machinery, a whole-query result cache
// with single-flight collapsing, Prometheus metrics, and an embedded live
// dashboard. cmd/rapidvizd is the single-binary server around it.
package serve

import (
	"context"
	"embed"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"time"

	"repro"
)

//go:embed static
var staticFS embed.FS

// Config configures a Server. Table is required; everything else has a
// serving-appropriate default.
type Config struct {
	// Table is the one columnar table this server answers queries over.
	Table *rapidviz.Table

	// Workers is the engine's admission concurrency: at most Workers
	// queries execute simultaneously, the rest queue (admission wait is
	// exported on /metrics). Zero means GOMAXPROCS, floored at 8 — a
	// serving default that favors fairness between interactive streams
	// over single-query latency.
	Workers int

	// DefaultDeadline bounds queries that request no deadline; zero means
	// 30s. MaxDeadline clamps every request; zero means 2m.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration

	// MaxRoundsBudget and MaxDrawsBudget clamp the per-query sampling
	// budgets (Query.MaxRounds / Query.MaxDraws): requests asking for
	// more — or for no limit — are capped to the budget, which voids the
	// guarantee exactly as a client-side cap would (Result.Capped reports
	// it). Zero leaves the corresponding budget unlimited.
	MaxRoundsBudget int
	MaxDrawsBudget  int64

	// CacheEntries bounds the whole-query result cache; zero means 256.
	// Negative disables caching.
	CacheEntries int

	// TraceInterval throttles per-round "round" events on streams that
	// request traces; zero means 50ms.
	TraceInterval time.Duration

	// DisableSharing turns off the sample broker. By default the server
	// runs its engine with ShareSamples on: concurrent queries over the
	// same table, filter, and seed — even with different fingerprints, so
	// the flight table can't collapse them — draw from one shared stream
	// instead of each sampling the data independently. Sharing never
	// changes results (broker-fed runs are bit-for-bit equal to solo
	// runs), so the only reason to disable it is benchmarking the solo
	// path. When set, per-request share_samples flags are ignored too.
	DisableSharing bool
}

// Server serves one table. Create with New, mount via Handler.
type Server struct {
	cfg     Config
	eng     *rapidviz.Engine
	table   *rapidviz.Table
	metrics *Metrics
	flights *flightTable
	mux     *http.ServeMux

	baseCtx context.Context
	stop    context.CancelFunc
	started time.Time
}

// New validates cfg and builds a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Table == nil {
		return nil, errors.New("serve: Config.Table is required")
	}
	if cfg.Workers == 0 {
		cfg.Workers = defaultWorkers()
	}
	if cfg.DefaultDeadline == 0 {
		cfg.DefaultDeadline = 30 * time.Second
	}
	if cfg.MaxDeadline == 0 {
		cfg.MaxDeadline = 2 * time.Minute
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 256
	}
	if cfg.TraceInterval == 0 {
		cfg.TraceInterval = 50 * time.Millisecond
	}
	metrics := NewMetrics()
	eng, err := rapidviz.NewEngine(rapidviz.EngineConfig{
		Workers:      cfg.Workers,
		OnAdmission:  metrics.ObserveAdmission,
		ShareSamples: !cfg.DisableSharing,
	})
	if err != nil {
		return nil, err
	}
	ctx, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		eng:     eng,
		table:   cfg.Table,
		metrics: metrics,
		flights: newFlightTable(cfg.CacheEntries),
		baseCtx: ctx,
		stop:    stop,
		started: time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /{$}", s.handleIndex)
	mux.HandleFunc("GET /api/table", s.handleTable)
	mux.HandleFunc("POST /api/query", s.handleQuery)
	mux.HandleFunc("GET /api/stream", s.handleStream)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	s.mux = mux
	return s, nil
}

// defaultWorkers sizes the admission pool for serving: sampling queries
// are CPU-bound but interactive dashboards care about fairness, so the
// pool runs several queries per core rather than strictly one.
func defaultWorkers() int {
	n := 8
	if p := runtime.GOMAXPROCS(0); p > n {
		n = p
	}
	return n
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Engine exposes the underlying engine (loadgen reads its stats).
func (s *Server) Engine() *rapidviz.Engine { return s.eng }

// Metrics exposes the server's metrics aggregate.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close cancels every in-flight execution.
func (s *Server) Close() { s.stop() }

// clamp applies the server's admission budgets to a parsed query.
func (s *Server) clamp(q rapidviz.Query) rapidviz.Query {
	if b := s.cfg.MaxRoundsBudget; b > 0 && (q.MaxRounds == 0 || q.MaxRounds > b) {
		q.MaxRounds = b
	}
	if b := s.cfg.MaxDrawsBudget; b > 0 && (q.MaxDraws == 0 || q.MaxDraws > b) {
		q.MaxDraws = b
	}
	if s.cfg.DisableSharing {
		q.ShareSamples = false
	}
	return q
}

// subscribe resolves one accepted request to an event subscription:
// cache replay, attachment to an identical in-flight execution, or a
// fresh flight. The returned accepted event is already queued first.
func (s *Server) subscribe(q rapidviz.Query, deadline time.Duration) (*flightSub, error) {
	q = s.clamp(q)
	key := s.eng.Fingerprint(q)
	s.metrics.queriesTotal.Add(1)

	for {
		rec, active := s.flights.lookup(key)
		if rec != nil {
			s.metrics.cacheHits.Add(1)
			sub := &flightSub{signal: make(chan struct{}, 1)}
			accepted := rec.accepted
			accepted.Source = SourceCached
			sub.push(accepted)
			for _, ev := range rec.events {
				sub.push(ev)
			}
			sub.mu.Lock()
			sub.closed = true // replay is complete; next() drains the queue
			sub.mu.Unlock()
			return sub, nil
		}
		if active != nil {
			sub := &flightSub{signal: make(chan struct{}, 1)}
			accepted := active.accepted
			accepted.Source = SourceShared
			sub.push(accepted)
			if active.attach(sub) {
				s.metrics.cacheShared.Add(1)
				return sub, nil
			}
			continue // completed while attaching; the cache has it now
		}

		// Fresh execution. Resolve the group labels up front so accepted
		// events and round traces can be labeled (Where may drop groups).
		resolved, err := s.eng.ResolveGroups(q, s.table.View())
		if err != nil {
			return nil, err
		}
		names := make([]string, len(resolved))
		for i, g := range resolved {
			names[i] = g.Name()
		}
		accepted := Event{Type: "accepted", Groups: names, Fingerprint: key, Source: SourceRun}
		ctx, cancel := context.WithTimeout(s.baseCtx, deadline)
		f := &flight{
			key:      key,
			accepted: accepted,
			subs:     make(map[*flightSub]struct{}),
			cancel:   cancel,
		}
		if got, owned := s.flights.start(key, f); !owned {
			cancel()
			_ = got
			continue // raced with an identical query; attach to theirs
		}
		s.metrics.cacheMisses.Add(1)
		sub := &flightSub{signal: make(chan struct{}, 1)}
		sub.push(accepted)
		if !f.attach(sub) {
			// Unreachable: the flight has not started.
			cancel()
			return nil, errors.New("serve: new flight already done")
		}
		go s.runFlight(ctx, cancel, f, q)
		return sub, nil
	}
}

// runFlight executes one query and broadcasts its event stream.
func (s *Server) runFlight(ctx context.Context, cancel context.CancelFunc, f *flight, q rapidviz.Query) {
	defer cancel()

	// Throttled per-round traces: every subscriber that asked for traces
	// sees the same sequence, index-aligned with the accepted names.
	var lastTrace time.Time
	q.OnRound = func(tr rapidviz.RoundTrace) {
		now := time.Now()
		if !lastTrace.IsZero() && now.Sub(lastTrace) < s.cfg.TraceInterval {
			return
		}
		lastTrace = now
		copied := tr
		copied.GroupEpsilons = append([]float64(nil), tr.GroupEpsilons...)
		copied.Active = append([]bool(nil), tr.Active...)
		copied.Estimates = append([]float64(nil), tr.Estimates...)
		f.broadcast(Event{Type: "round", Round: &copied})
	}

	var terminal Event
	for ev := range s.eng.Stream(ctx, q, s.table.View()) {
		switch {
		case ev.Partial != nil:
			f.broadcast(Event{Type: "partial", Partial: ev.Partial})
		case ev.Err != nil:
			terminal = Event{Type: "error", Error: ev.Err.Error()}
		default:
			terminal = Event{Type: "result", Result: ev.Result}
		}
	}

	cacheable := terminal.Type == "result"
	if cacheable {
		s.metrics.samplesTotal.Add(terminal.Result.TotalSamples)
		s.metrics.roundsTotal.Add(int64(terminal.Result.Rounds))
	} else {
		s.metrics.queryErrors.Add(1)
	}
	// Retire the flight before broadcasting the terminal event: a
	// subscriber that reacts to the terminal by immediately re-submitting
	// must find the cache entry, not a drained flight.
	f.mu.Lock()
	rec := &recording{accepted: f.accepted, events: append([]Event(nil), f.events...)}
	f.mu.Unlock()
	rec.events = append(rec.events, terminal)
	evicted := s.flights.complete(f.key, rec, cacheable)
	if evicted > 0 {
		s.metrics.cacheEvictions.Add(int64(evicted))
	}
	f.broadcast(terminal)
}

// handleIndex serves the embedded dashboard.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	page, err := staticFS.ReadFile("static/index.html")
	if err != nil {
		http.Error(w, "dashboard not embedded", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(page)
}

// tableInfo is the /api/table response: what the dashboard needs to build
// a query form.
type tableInfo struct {
	Groups       []string `json:"groups"`
	Rows         int      `json:"rows"`
	ValueColumn  string   `json:"value_column"`
	ExtraColumns []string `json:"extra_columns,omitempty"`
	MaxValue     float64  `json:"max_value"`
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	info := tableInfo{
		Groups:       s.table.Names(),
		Rows:         s.table.NumRows(),
		ValueColumn:  s.table.ValueColumnName(),
		ExtraColumns: s.table.ExtraColumnNames(),
		MaxValue:     s.table.MaxValue(),
	}
	writeJSON(w, http.StatusOK, info)
}

// queryResponse is the POST /api/query response body.
type queryResponse struct {
	Fingerprint string             `json:"fingerprint"`
	Source      string             `json:"source"`
	Result      *rapidviz.Result   `json:"result,omitempty"`
	Partials    []rapidviz.Partial `json:"partials,omitempty"`
	Error       string             `json:"error,omitempty"`
}

// handleQuery runs one request to completion and returns the result plus
// the settle order (the partials), for clients that don't stream.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, wsMaxMessage)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, queryResponse{Error: "bad request: " + err.Error()})
		return
	}
	q, err := req.Query()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, queryResponse{Error: err.Error()})
		return
	}
	sub, err := s.subscribe(q, req.deadline(s.cfg.DefaultDeadline, s.cfg.MaxDeadline))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, queryResponse{Error: err.Error()})
		return
	}
	defer sub.unsubscribe()

	var resp queryResponse
	for {
		ev, ok := sub.next(r.Context())
		if !ok {
			writeJSON(w, http.StatusServiceUnavailable, queryResponse{Error: "query abandoned: " + r.Context().Err().Error()})
			return
		}
		switch ev.Type {
		case "accepted":
			resp.Fingerprint, resp.Source = ev.Fingerprint, ev.Source
		case "partial":
			resp.Partials = append(resp.Partials, *ev.Partial)
		case "result":
			resp.Result = ev.Result
			writeJSON(w, http.StatusOK, resp)
			return
		case "error":
			resp.Error = ev.Error
			writeJSON(w, http.StatusUnprocessableEntity, resp)
			return
		}
	}
}

// handleStream upgrades to WebSocket, reads one QueryRequest, and streams
// the query's event sequence: accepted, throttled round traces (when
// requested), settle partials, then exactly one terminal result or error,
// followed by a clean close.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	conn, err := UpgradeWS(w, r)
	if err != nil {
		return // UpgradeWS already replied
	}
	defer conn.Close()
	s.metrics.streamsActive.Add(1)
	defer s.metrics.streamsActive.Add(-1)

	fail := func(msg string) {
		conn.WriteText(encodeEvent(Event{Type: "error", Error: msg}))
		conn.WriteClose(1008, "")
	}
	first, err := conn.ReadMessage()
	if err != nil {
		return
	}
	var req QueryRequest
	if err := json.Unmarshal(first, &req); err != nil {
		fail("bad request: " + err.Error())
		return
	}
	q, err := req.Query()
	if err != nil {
		fail(err.Error())
		return
	}
	sub, err := s.subscribe(q, req.deadline(s.cfg.DefaultDeadline, s.cfg.MaxDeadline))
	if err != nil {
		fail(err.Error())
		return
	}
	defer sub.unsubscribe()

	// A hijacked connection's request context does not observe client
	// departure, so a reader goroutine watches the socket: any incoming
	// close frame — or a dead peer — cancels the subscription, which in
	// turn cancels the shared execution if nobody else is listening.
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	go func() {
		for {
			if _, err := conn.ReadMessage(); err != nil {
				cancel()
				return
			}
		}
	}()

	for {
		ev, ok := sub.next(ctx)
		if !ok {
			return // client departed
		}
		if ev.Type == "round" && !req.Traces {
			continue
		}
		if err := conn.WriteText(encodeEvent(ev)); err != nil {
			return
		}
		if ev.terminal() {
			conn.WriteClose(1000, "")
			return
		}
	}
}

// handleMetrics renders the Prometheus exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	active, cached := s.flights.stats()
	vs := s.eng.ViewCacheStats()
	bs := s.eng.BrokerStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeProm(w, engineStats{
		inflight:         s.eng.InFlight(),
		capacity:         s.eng.Capacity(),
		viewHits:         vs.Hits,
		viewMisses:       vs.Misses,
		viewEvictions:    vs.Evictions,
		viewEntries:      vs.Entries,
		flightsActive:    active,
		cacheEntries:     cached,
		brokersActive:    bs.Active,
		brokerAttached:   bs.Attached,
		brokerDrawn:      bs.SamplesDrawn,
		brokerServed:     bs.SamplesServed,
		tableRows:        s.table.NumRows(),
		tableGroups:      int64(s.table.K()),
		uptimeSecondsInt: int64(time.Since(s.started).Seconds()),
	})
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	// A failed encode means the client left; the status is already out.
	_ = json.NewEncoder(w).Encode(v)
}
