// WebSocket transport: a minimal RFC 6455 implementation over the
// standard library, covering exactly what rapidvizd's streaming protocol
// needs — text/binary messages, ping/pong keepalive, the close handshake,
// and both endpoint roles (the server upgrades HTTP requests; the client
// side exists for loadgen and the test suite). No extensions, no
// compression, no subprotocol negotiation.
package serve

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// wsGUID is the protocol-mandated key-accept constant (RFC 6455 §1.3).
const wsGUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// WebSocket frame opcodes (RFC 6455 §5.2).
const (
	opContinuation = 0x0
	opText         = 0x1
	opBinary       = 0x2
	opClose        = 0x8
	opPing         = 0x9
	opPong         = 0xA
)

// wsMaxMessage bounds assembled message size: query requests and streamed
// events are small JSON documents, so anything near a megabyte is abuse.
const wsMaxMessage = 1 << 20

// errWSClosed reports a cleanly closed connection (close frame received or
// sent). Readers treat it like io.EOF.
var errWSClosed = errors.New("serve: websocket closed")

// WSConn is one WebSocket connection. Reads must come from a single
// goroutine; writes are internally serialized and may come from any.
type WSConn struct {
	conn   net.Conn
	br     *bufio.Reader
	client bool // client endpoints mask their frames

	wmu    sync.Mutex
	closed bool
}

// UpgradeWS performs the server side of the RFC 6455 opening handshake,
// hijacking the HTTP connection. On failure it writes the appropriate
// error status and returns a non-nil error; on success the caller owns the
// returned connection and must Close it.
func UpgradeWS(w http.ResponseWriter, r *http.Request) (*WSConn, error) {
	if r.Method != http.MethodGet {
		http.Error(w, "websocket handshake requires GET", http.StatusMethodNotAllowed)
		return nil, fmt.Errorf("serve: ws handshake: method %s", r.Method)
	}
	if !headerContainsToken(r.Header, "Connection", "upgrade") || !headerContainsToken(r.Header, "Upgrade", "websocket") {
		http.Error(w, "not a websocket handshake", http.StatusBadRequest)
		return nil, errors.New("serve: ws handshake: missing upgrade headers")
	}
	if v := r.Header.Get("Sec-WebSocket-Version"); v != "13" {
		w.Header().Set("Sec-WebSocket-Version", "13")
		http.Error(w, "unsupported websocket version", http.StatusUpgradeRequired)
		return nil, fmt.Errorf("serve: ws handshake: version %q", v)
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, errors.New("serve: ws handshake: missing key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "websocket unsupported by this server", http.StatusInternalServerError)
		return nil, errors.New("serve: ws handshake: ResponseWriter cannot hijack")
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("serve: ws hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + wsAccept(key) + "\r\n\r\n"
	if _, err := rw.WriteString(resp); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: ws handshake write: %w", err)
	}
	if err := rw.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: ws handshake flush: %w", err)
	}
	return &WSConn{conn: conn, br: rw.Reader}, nil
}

// DialWS performs the client side of the handshake against a ws:// URL
// (loadgen and tests; TLS is out of scope for the embedded server).
func DialWS(rawURL string, timeout time.Duration) (*WSConn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("serve: ws dial: %w", err)
	}
	if u.Scheme != "ws" {
		return nil, fmt.Errorf("serve: ws dial: unsupported scheme %q", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host += ":80"
	}
	conn, err := net.DialTimeout("tcp", host, timeout)
	if err != nil {
		return nil, err
	}
	if timeout > 0 {
		conn.SetDeadline(time.Now().Add(timeout))
		defer conn.SetDeadline(time.Time{})
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		conn.Close()
		return nil, err
	}
	key := base64.StdEncoding.EncodeToString(nonce)
	path := u.RequestURI()
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := io.WriteString(conn, req); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: ws dial: reading status: %w", err)
	}
	if !strings.Contains(status, " 101 ") {
		conn.Close()
		return nil, fmt.Errorf("serve: ws dial: handshake rejected: %s", strings.TrimSpace(status))
	}
	accept := ""
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("serve: ws dial: reading headers: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if name, val, ok := strings.Cut(line, ":"); ok && strings.EqualFold(strings.TrimSpace(name), "Sec-WebSocket-Accept") {
			accept = strings.TrimSpace(val)
		}
	}
	if accept != wsAccept(key) {
		conn.Close()
		return nil, errors.New("serve: ws dial: bad Sec-WebSocket-Accept")
	}
	return &WSConn{conn: conn, br: br, client: true}, nil
}

// wsAccept derives the Sec-WebSocket-Accept token for a handshake key.
func wsAccept(key string) string {
	h := sha1.Sum([]byte(key + wsGUID))
	return base64.StdEncoding.EncodeToString(h[:])
}

// headerContainsToken reports whether any instance of the header contains
// the (case-insensitive) token in its comma-separated list.
func headerContainsToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// ReadMessage returns the next complete text or binary message payload.
// Control frames are handled transparently: pings are answered, pongs
// dropped, and a close frame completes the closing handshake and returns
// errWSClosed. Fragmented messages are reassembled up to wsMaxMessage.
func (c *WSConn) ReadMessage() ([]byte, error) {
	var message []byte
	assembling := false
	for {
		fin, opcode, payload, err := c.readFrame()
		if err != nil {
			return nil, err
		}
		switch opcode {
		case opPing:
			if err := c.writeFrame(opPong, payload); err != nil {
				return nil, err
			}
		case opPong:
			// keepalive reply; nothing to do
		case opClose:
			c.wmu.Lock()
			if !c.closed {
				c.closed = true
				c.writeFrameLocked(opClose, payload)
			}
			c.wmu.Unlock()
			return nil, errWSClosed
		case opText, opBinary:
			if assembling {
				return nil, errors.New("serve: websocket: new message before prior finished")
			}
			message = append(message, payload...)
			if fin {
				return message, nil
			}
			assembling = true
		case opContinuation:
			if !assembling {
				return nil, errors.New("serve: websocket: continuation without start")
			}
			if len(message)+len(payload) > wsMaxMessage {
				return nil, errors.New("serve: websocket: message too large")
			}
			message = append(message, payload...)
			if fin {
				return message, nil
			}
		default:
			return nil, fmt.Errorf("serve: websocket: unknown opcode %#x", opcode)
		}
	}
}

// readFrame reads one frame, unmasking if needed.
func (c *WSConn) readFrame() (fin bool, opcode byte, payload []byte, err error) {
	var hdr [2]byte
	if _, err = io.ReadFull(c.br, hdr[:]); err != nil {
		return false, 0, nil, err
	}
	fin = hdr[0]&0x80 != 0
	if hdr[0]&0x70 != 0 {
		return false, 0, nil, errors.New("serve: websocket: reserved bits set (extensions unsupported)")
	}
	opcode = hdr[0] & 0x0F
	masked := hdr[1]&0x80 != 0
	length := uint64(hdr[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return false, 0, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	if length > wsMaxMessage {
		return false, 0, nil, errors.New("serve: websocket: frame too large")
	}
	var mask [4]byte
	if masked {
		if _, err = io.ReadFull(c.br, mask[:]); err != nil {
			return false, 0, nil, err
		}
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(c.br, payload); err != nil {
		return false, 0, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i%4]
		}
	}
	return fin, opcode, payload, nil
}

// WriteText sends one unfragmented text message.
func (c *WSConn) WriteText(payload []byte) error { return c.writeFrame(opText, payload) }

// WriteClose initiates (or completes) the closing handshake with a status
// code and reason, after which writes fail.
func (c *WSConn) WriteClose(code uint16, reason string) error {
	body := make([]byte, 2+len(reason))
	binary.BigEndian.PutUint16(body, code)
	copy(body[2:], reason)
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return errWSClosed
	}
	c.closed = true
	return c.writeFrameLocked(opClose, body)
}

// Close tears down the underlying connection.
func (c *WSConn) Close() error { return c.conn.Close() }

func (c *WSConn) writeFrame(opcode byte, payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return errWSClosed
	}
	return c.writeFrameLocked(opcode, payload)
}

// writeFrameLocked writes one complete frame; callers hold wmu. Server
// frames go unmasked, client frames masked, per RFC 6455 §5.1.
func (c *WSConn) writeFrameLocked(opcode byte, payload []byte) error {
	hdr := make([]byte, 0, 14)
	hdr = append(hdr, 0x80|opcode)
	maskBit := byte(0)
	if c.client {
		maskBit = 0x80
	}
	switch n := len(payload); {
	case n < 126:
		hdr = append(hdr, maskBit|byte(n))
	case n <= 0xFFFF:
		hdr = append(hdr, maskBit|126, byte(n>>8), byte(n))
	default:
		hdr = append(hdr, maskBit|127)
		var ext [8]byte
		binary.BigEndian.PutUint64(ext[:], uint64(n))
		hdr = append(hdr, ext[:]...)
	}
	if c.client {
		var mask [4]byte
		if _, err := rand.Read(mask[:]); err != nil {
			return err
		}
		hdr = append(hdr, mask[:]...)
		masked := make([]byte, len(payload))
		for i, b := range payload {
			masked[i] = b ^ mask[i%4]
		}
		payload = masked
	}
	if _, err := c.conn.Write(hdr); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := c.conn.Write(payload); err != nil {
			return err
		}
	}
	return nil
}
