package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
)

// testTable builds a small skewed table: group g_i holds values around
// 10*(i+1) with a "qty" extra column, so orderings settle quickly and
// Where filters have something to cut.
func testTable(t *testing.T, groups, rowsPer int) *rapidviz.Table {
	t.Helper()
	b := rapidviz.NewTableBuilderColumns("price", "qty")
	rng := rand.New(rand.NewPCG(42, 99))
	for g := 0; g < groups; g++ {
		name := fmt.Sprintf("g%02d", g)
		mean := 10 * float64(g+1)
		for r := 0; r < rowsPer; r++ {
			v := mean + rng.Float64()*4 - 2
			if err := b.AddRow(name, v, float64(r%10)); err != nil {
				t.Fatal(err)
			}
		}
	}
	table, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Table == nil {
		cfg.Table = testTable(t, 6, 400)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func wsURL(ts *httptest.Server) string {
	return "ws" + strings.TrimPrefix(ts.URL, "http") + "/api/stream"
}

// streamQuery drives one WebSocket query to its terminal event and
// returns the full event sequence.
func streamQuery(t *testing.T, url string, req QueryRequest) []Event {
	t.Helper()
	conn, err := DialWS(url, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	blob, _ := json.Marshal(req)
	if err := conn.WriteText(blob); err != nil {
		t.Fatalf("send: %v", err)
	}
	var events []Event
	for {
		msg, err := conn.ReadMessage()
		if err != nil {
			t.Fatalf("read after %d events: %v", len(events), err)
		}
		var ev Event
		if err := json.Unmarshal(msg, &ev); err != nil {
			t.Fatalf("decode: %v", err)
		}
		events = append(events, ev)
		if ev.terminal() {
			return events
		}
	}
}

// TestHTTPSmoke exercises the plain-HTTP surface end to end: table info,
// a blocking query with partials, health, and the metrics exposition.
func TestHTTPSmoke(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Table description.
	resp, err := http.Get(ts.URL + "/api/table")
	if err != nil {
		t.Fatal(err)
	}
	var info tableInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(info.Groups) != 6 || info.Rows != 2400 || info.ValueColumn != "price" {
		t.Fatalf("unexpected table info: %+v", info)
	}

	// Blocking query.
	body, _ := json.Marshal(QueryRequest{Delta: 0.1, BatchSize: 64, Seed: 7})
	resp, err = http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", resp.StatusCode, qr.Error)
	}
	if qr.Result == nil || len(qr.Result.Estimates) != 6 {
		t.Fatalf("missing result: %+v", qr)
	}
	if len(qr.Partials) != 6 {
		t.Fatalf("want 6 partials (one per settled group), got %d", len(qr.Partials))
	}
	if qr.Fingerprint == "" || qr.Source != SourceRun {
		t.Fatalf("fingerprint %q source %q", qr.Fingerprint, qr.Source)
	}
	// Estimates must be ordered like the true means (10, 20, ..., 60).
	for i := 1; i < len(qr.Result.Estimates); i++ {
		if qr.Result.Estimates[i] <= qr.Result.Estimates[i-1] {
			t.Fatalf("estimates out of order: %v", qr.Result.Estimates)
		}
	}

	// Health and metrics.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"rapidvizd_queries_total 1",
		"rapidvizd_querycache_misses_total 1",
		"rapidvizd_samples_total",
		"rapidvizd_admission_wait_seconds_count 1",
		"rapidvizd_table_rows 2400",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestHTTPQueryValidation checks the wire boundary rejects bad requests.
func TestHTTPQueryValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, body := range []string{
		`{"aggregate": "median"}`,
		`{"algorithm": "quantum"}`,
		`{"where": [{"op": "~", "value": 1}]}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/api/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: want 400, got %d", body, resp.StatusCode)
		}
	}
}

// TestStreamEventSequence validates the streamed protocol: accepted
// first, round traces when asked, every group settling exactly once, one
// terminal result, clean close.
func TestStreamEventSequence(t *testing.T) {
	_, ts := newTestServer(t, Config{TraceInterval: time.Nanosecond})
	events := streamQuery(t, wsURL(ts), QueryRequest{Delta: 0.1, BatchSize: 32, Seed: 3, Traces: true})

	if events[0].Type != "accepted" || len(events[0].Groups) != 6 {
		t.Fatalf("first event not a 6-group accepted: %+v", events[0])
	}
	var rounds, partials int
	settled := map[string]bool{}
	for _, ev := range events[1:] {
		switch ev.Type {
		case "round":
			rounds++
		case "partial":
			partials++
			if settled[ev.Partial.Group] {
				t.Fatalf("group %q settled twice", ev.Partial.Group)
			}
			settled[ev.Partial.Group] = true
			if ev.Partial.HalfWidth <= 0 {
				t.Fatalf("partial without a half-width: %+v", ev.Partial)
			}
		}
	}
	if rounds == 0 {
		t.Fatal("asked for traces, saw no round events")
	}
	if partials != 6 {
		t.Fatalf("want 6 settle partials, got %d", partials)
	}
	last := events[len(events)-1]
	if last.Type != "result" || last.Result == nil {
		t.Fatalf("terminal event: %+v", last)
	}
}

// TestSingleFlightSharing submits the same query from many concurrent
// streams: exactly one fresh execution may run, everyone gets the same
// result, and the sharing shows up on /metrics.
func TestSingleFlightSharing(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	req := QueryRequest{Delta: 0.05, BatchSize: 16, Seed: 11}

	const n = 12
	results := make([]*rapidviz.Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			events := streamQuery(t, wsURL(ts), req)
			last := events[len(events)-1]
			results[i] = last.Result
		}(i)
	}
	wg.Wait()

	for i, res := range results {
		if res == nil {
			t.Fatalf("client %d got no result", i)
		}
		if fmt.Sprint(res.Estimates) != fmt.Sprint(results[0].Estimates) {
			t.Fatalf("client %d diverged: %v vs %v", i, res.Estimates, results[0].Estimates)
		}
	}
	snap := srv.Metrics().Snapshot()
	if snap.CacheMisses != 1 {
		t.Fatalf("want exactly 1 fresh execution, got %d (shared %d, hits %d)",
			snap.CacheMisses, snap.CacheShared, snap.CacheHits)
	}
	if snap.CacheShared+snap.CacheHits != n-1 {
		t.Fatalf("want %d shared+cached, got shared %d hits %d", n-1, snap.CacheShared, snap.CacheHits)
	}

	// The sharing is observable on the exposition endpoint.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(prom), "rapidvizd_querycache_misses_total 1") {
		t.Error("metrics do not show the single fresh execution")
	}

	// A later identical query replays from the cache.
	events := streamQuery(t, wsURL(ts), req)
	if events[0].Source != SourceCached {
		t.Fatalf("follow-up source %q, want cached", events[0].Source)
	}
}

// TestConcurrentMixedQueries runs many clients across a mixed workload —
// IFOCUS, round-robin, Where-filtered, and empirical-Bernstein queries —
// over one shared table, checking isolation: every stream sees its own
// group set and a coherent terminal. Run under -race in CI.
func TestConcurrentMixedQueries(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	variants := []QueryRequest{
		{Algorithm: "ifocus", Delta: 0.1, BatchSize: 32, Seed: 1},
		{Algorithm: "roundrobin", Delta: 0.1, BatchSize: 32, Seed: 2},
		{Algorithm: "ifocus", Delta: 0.1, BatchSize: 32, Seed: 3,
			Where: []WirePredicate{{Column: "qty", Op: ">=", Value: 5}}},
		{Algorithm: "ifocus", ConfidenceBound: "bernstein", Delta: 0.1, BatchSize: 32, Seed: 4},
		{Algorithm: "ifocus", Delta: 0.1, BatchSize: 32, Seed: 5,
			Where: []WirePredicate{{Groups: []string{"g00", "g02", "g04"}}}},
	}
	const clientsPerVariant = 6
	type outcome struct {
		variant int
		events  []Event
	}
	outcomes := make(chan outcome, len(variants)*clientsPerVariant)
	var wg sync.WaitGroup
	for v := range variants {
		for c := 0; c < clientsPerVariant; c++ {
			wg.Add(1)
			go func(v int) {
				defer wg.Done()
				outcomes <- outcome{v, streamQuery(t, wsURL(ts), variants[v])}
			}(v)
		}
	}
	wg.Wait()
	close(outcomes)

	wantGroups := []int{6, 6, 6, 6, 3} // variant 4 keeps three groups
	estimates := map[int]string{}
	for o := range outcomes {
		accepted, last := o.events[0], o.events[len(o.events)-1]
		if len(accepted.Groups) != wantGroups[o.variant] {
			t.Fatalf("variant %d accepted %d groups, want %d",
				o.variant, len(accepted.Groups), wantGroups[o.variant])
		}
		if last.Type != "result" {
			t.Fatalf("variant %d terminal %q: %s", o.variant, last.Type, last.Error)
		}
		got := fmt.Sprint(last.Result.Estimates)
		if prev, seen := estimates[o.variant]; seen && prev != got {
			t.Fatalf("variant %d nondeterministic: %s vs %s", o.variant, prev, got)
		}
		estimates[o.variant] = got
	}
}

// TestRoundsBudgetClamp checks the server-side budget caps greedy
// requests and the cap is reported in the result.
func TestRoundsBudgetClamp(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRoundsBudget: 2})
	events := streamQuery(t, wsURL(ts), QueryRequest{Delta: 0.01, BatchSize: 1, Seed: 9})
	last := events[len(events)-1]
	if last.Type != "result" {
		t.Fatalf("terminal %q: %s", last.Type, last.Error)
	}
	if !last.Result.Capped || last.Result.Rounds > 2 {
		t.Fatalf("budget did not cap: capped=%v rounds=%d", last.Result.Capped, last.Result.Rounds)
	}
}

// TestWSAcceptVector pins the RFC 6455 handshake transform to the
// specification's worked example.
func TestWSAcceptVector(t *testing.T) {
	if got := wsAccept("dGhlIHNhbXBsZSBub25jZQ=="); got != "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=" {
		t.Fatalf("wsAccept = %q", got)
	}
}

// TestWSUpgradeRejections checks the handshake gate.
func TestWSUpgradeRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name    string
		headers map[string]string
		status  int
	}{
		{"plain GET", nil, http.StatusBadRequest},
		{"wrong version", map[string]string{
			"Connection": "Upgrade", "Upgrade": "websocket",
			"Sec-WebSocket-Version": "8", "Sec-WebSocket-Key": "AQIDBAUGBwgJCgsMDQ4PEA==",
		}, http.StatusUpgradeRequired},
		{"missing key", map[string]string{
			"Connection": "Upgrade", "Upgrade": "websocket",
			"Sec-WebSocket-Version": "13",
		}, http.StatusBadRequest},
	} {
		req, _ := http.NewRequest("GET", ts.URL+"/api/stream", nil)
		for k, v := range tc.headers {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

// TestStreamClientAbandonment opens a stream, reads the accepted event,
// and drops the socket: the server must cancel the abandoned execution
// and settle back to zero in-flight queries.
func TestStreamClientAbandonment(t *testing.T) {
	srv, ts := newTestServer(t, Config{CacheEntries: -1})
	conn, err := DialWS(wsURL(ts), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// A slow query: tiny batches, tight delta.
	blob, _ := json.Marshal(QueryRequest{Delta: 0.001, BatchSize: 1, Seed: 21})
	if err := conn.WriteText(blob); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.ReadMessage(); err != nil { // accepted
		t.Fatal(err)
	}
	conn.Close() // vanish without a close handshake

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		active, _ := srv.flights.stats()
		if active == 0 && srv.Engine().InFlight() == 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	active, _ := srv.flights.stats()
	t.Fatalf("abandoned query not reaped: %d flights active, %d in flight",
		active, srv.Engine().InFlight())
}

// TestBrokerSharingAcrossFingerprints pins the piece the flight table
// cannot do: two queries with different fingerprints (different δ) never
// collapse into one flight, but they still share one sample broker —
// same table, filter, and seed — and the sharing is observable on
// /metrics. It also pins that a DisableSharing server returns the exact
// same result, since the broker never changes answers.
func TestBrokerSharingAcrossFingerprints(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	reqA := QueryRequest{Delta: 0.05, BatchSize: 64, Seed: 21}
	reqB := QueryRequest{Delta: 0.2, BatchSize: 64, Seed: 21}

	var wg sync.WaitGroup
	results := make([]*rapidviz.Result, 2)
	for i, req := range []QueryRequest{reqA, reqB} {
		wg.Add(1)
		go func(i int, req QueryRequest) {
			defer wg.Done()
			events := streamQuery(t, wsURL(ts), req)
			results[i] = events[len(events)-1].Result
		}(i, req)
	}
	wg.Wait()
	for i, res := range results {
		if res == nil {
			t.Fatalf("query %d got no result", i)
		}
	}

	snap := srv.Metrics().Snapshot()
	if snap.CacheMisses != 2 {
		t.Fatalf("distinct fingerprints must not collapse: %d fresh executions", snap.CacheMisses)
	}
	bs := srv.Engine().BrokerStats()
	if bs.Attached != 2 {
		t.Fatalf("both flights should attach to the broker layer, got %d", bs.Attached)
	}
	if bs.Active != 0 {
		t.Fatalf("brokers leaked: %d active after completion", bs.Active)
	}
	if bs.SamplesServed < bs.SamplesDrawn || bs.SamplesDrawn <= 0 {
		t.Fatalf("implausible broker counters: %+v", bs)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{
		"rapidvizd_broker_active 0",
		"rapidvizd_broker_subscribers_total 2",
		"rapidvizd_broker_samples_drawn_total",
		"rapidvizd_broker_samples_served_total",
	} {
		if !strings.Contains(string(prom), metric) {
			t.Fatalf("metrics exposition missing %q", metric)
		}
	}

	// A server with the broker disabled answers identically: sharing is
	// a cost optimization, never a semantic one.
	srvOff, tsOff := newTestServer(t, Config{DisableSharing: true})
	events := streamQuery(t, wsURL(tsOff), reqA)
	off := events[len(events)-1].Result
	if off == nil {
		t.Fatal("DisableSharing query got no result")
	}
	if fmt.Sprint(off.Estimates) != fmt.Sprint(results[0].Estimates) {
		t.Fatalf("DisableSharing changed the answer: %v vs %v", off.Estimates, results[0].Estimates)
	}
	if bs := srvOff.Engine().BrokerStats(); bs.Attached != 0 {
		t.Fatalf("DisableSharing server still attached %d brokers", bs.Attached)
	}
}
