// Flight collapsing and the whole-query result cache.
//
// Every accepted query resolves to a canonical fingerprint
// (Engine.Fingerprint — the whole-query extension of the predicate
// fingerprint scheme). Because sampling is deterministic given the
// resolved seed, identical fingerprints over one table mean identical
// results, so the server executes each distinct fingerprint at most once
// at a time: the first subscriber starts a *flight*, later identical
// queries attach to it and replay its buffered events before following
// live, and a completed flight's event sequence is retained in a bounded
// FIFO cache that replays instantly to later arrivals. A flight whose
// subscribers all depart is canceled, returning its worker slot.
package serve

import (
	"context"
	"sync"
)

// flightSub is one subscriber's ordered event queue. Events are pushed by
// the flight's broadcast path (or preloaded from a cache recording) and
// popped by the connection handler; a slow or departed consumer never
// blocks the producer.
type flightSub struct {
	mu     sync.Mutex
	queue  []Event
	closed bool
	signal chan struct{} // cap 1: wake a waiting next()

	flight *flight // nil for cache replays
}

// push enqueues one event; no-op after close.
func (s *flightSub) push(ev Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.queue = append(s.queue, ev)
	s.mu.Unlock()
	select {
	case s.signal <- struct{}{}:
	default:
	}
}

// next returns the next event, blocking until one arrives or ctx ends.
// The second return is false when the subscription is over (context done
// or the subscriber was closed with an empty queue).
func (s *flightSub) next(ctx context.Context) (Event, bool) {
	for {
		s.mu.Lock()
		if len(s.queue) > 0 {
			ev := s.queue[0]
			s.queue = s.queue[1:]
			s.mu.Unlock()
			return ev, true
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return Event{}, false
		}
		select {
		case <-s.signal:
		case <-ctx.Done():
			return Event{}, false
		}
	}
}

// unsubscribe detaches the consumer: the queue stops accepting events and
// the owning flight drops the reference, canceling itself if this was the
// last subscriber of a still-running execution.
func (s *flightSub) unsubscribe() {
	s.mu.Lock()
	s.closed = true
	s.queue = nil
	s.mu.Unlock()
	if s.flight != nil {
		s.flight.drop(s)
	}
}

// flight is one shared execution of a distinct query fingerprint.
type flight struct {
	key      string
	accepted Event // the accepted-event template (groups + fingerprint)

	mu     sync.Mutex
	subs   map[*flightSub]struct{}
	events []Event // everything broadcast so far, for late joiners
	done   bool
	cancel context.CancelFunc
}

// attach adds a subscriber, replaying the buffered history first. It
// returns false when the flight already completed (the caller should
// retry subscription, which will now find the cache entry).
func (f *flight) attach(s *flightSub) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return false
	}
	s.flight = f
	for _, ev := range f.events {
		s.push(ev)
	}
	f.subs[s] = struct{}{}
	return true
}

// broadcast records one event and fans it to every subscriber.
func (f *flight) broadcast(ev Event) {
	f.mu.Lock()
	f.events = append(f.events, ev)
	subs := make([]*flightSub, 0, len(f.subs))
	for s := range f.subs {
		subs = append(subs, s)
	}
	if ev.terminal() {
		f.done = true
	}
	f.mu.Unlock()
	for _, s := range subs {
		s.push(ev)
		if ev.terminal() {
			s.mu.Lock()
			s.closed = true
			s.mu.Unlock()
			select {
			case s.signal <- struct{}{}:
			default:
			}
		}
	}
}

// drop removes a departed subscriber, canceling the execution when nobody
// is left to hear it.
func (f *flight) drop(s *flightSub) {
	f.mu.Lock()
	delete(f.subs, s)
	abandon := len(f.subs) == 0 && !f.done
	f.mu.Unlock()
	if abandon {
		f.cancel()
	}
}

// recording is one completed flight's replayable event sequence.
type recording struct {
	accepted Event
	events   []Event
}

// flightTable tracks in-flight executions and the bounded result cache.
type flightTable struct {
	mu       sync.Mutex
	active   map[string]*flight
	cache    map[string]*recording
	order    []string // FIFO eviction order for cache
	maxCache int
}

func newFlightTable(maxCache int) *flightTable {
	return &flightTable{
		active:   make(map[string]*flight),
		cache:    make(map[string]*recording),
		maxCache: maxCache,
	}
}

// lookup returns the cached recording or the active flight for a
// fingerprint, if either exists.
func (t *flightTable) lookup(key string) (*recording, *flight) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cache[key], t.active[key]
}

// start registers a new flight for key unless one raced in; it returns
// the flight to run and whether this caller owns the execution.
func (t *flightTable) start(key string, f *flight) (*flight, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if existing, ok := t.active[key]; ok {
		return existing, false
	}
	t.active[key] = f
	return f, true
}

// complete retires a finished flight, caching its recording when the
// execution ended cleanly (errors — deadlines, cancellations — are not
// results and must re-execute). Returns the number of evicted entries.
func (t *flightTable) complete(key string, rec *recording, cacheable bool) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.active, key)
	if !cacheable || t.maxCache <= 0 {
		return 0
	}
	evicted := 0
	if _, exists := t.cache[key]; !exists {
		for len(t.cache) >= t.maxCache {
			oldest := t.order[0]
			t.order = t.order[1:]
			delete(t.cache, oldest)
			evicted++
		}
		t.cache[key] = rec
		t.order = append(t.order, key)
	}
	return evicted
}

// stats returns the current table sizes.
func (t *flightTable) stats() (active, cached int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active), len(t.cache)
}
