package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// admissionBuckets are the upper bounds (seconds) of the admission-wait
// histogram exposed on /metrics: log-spaced from 100µs to 10s, matching
// the range between "slot was free" and "badly oversubscribed".
var admissionBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// maxAdmissionSamples bounds the raw admission-wait reservoir backing
// exact quantiles (loadgen's p99). Beyond the cap, new samples overwrite
// old ones round-robin — enough fidelity for a bounded load run.
const maxAdmissionSamples = 1 << 19

// Metrics aggregates the server's observable counters. All methods are
// safe for concurrent use.
type Metrics struct {
	// Query lifecycle.
	queriesTotal  atomic.Int64 // subscriptions accepted (any source)
	queryErrors   atomic.Int64 // terminal error events delivered to fresh runs
	streamsActive atomic.Int64 // live WebSocket streams

	// Work performed, accumulated at each fresh execution's terminal.
	samplesTotal atomic.Int64
	roundsTotal  atomic.Int64

	// Whole-query result cache.
	cacheHits      atomic.Int64 // replayed from the result cache
	cacheShared    atomic.Int64 // attached to an identical in-flight query
	cacheMisses    atomic.Int64 // fresh executions
	cacheEvictions atomic.Int64

	// Admission-wait distribution, fed by the engine's OnAdmission hook.
	admMu      sync.Mutex
	admCounts  []int64 // one per bucket, cumulative style computed at render
	admSum     float64
	admCount   int64
	admSamples []float64 // raw reservoir for exact quantiles
	admNext    int       // overwrite cursor once the reservoir is full
}

// NewMetrics returns an empty metrics aggregate.
func NewMetrics() *Metrics {
	return &Metrics{admCounts: make([]int64, len(admissionBuckets)+1)}
}

// ObserveAdmission records one admitted query's slot wait.
func (m *Metrics) ObserveAdmission(wait time.Duration) {
	sec := wait.Seconds()
	i := sort.SearchFloat64s(admissionBuckets, sec)
	m.admMu.Lock()
	m.admCounts[i]++
	m.admSum += sec
	m.admCount++
	if len(m.admSamples) < maxAdmissionSamples {
		m.admSamples = append(m.admSamples, sec)
	} else {
		m.admSamples[m.admNext] = sec
		m.admNext = (m.admNext + 1) % maxAdmissionSamples
	}
	m.admMu.Unlock()
}

// AdmissionQuantile returns the q-quantile (0 ≤ q ≤ 1) of the recorded
// admission waits in seconds, computed exactly over the reservoir. Returns
// 0 when nothing has been recorded.
func (m *Metrics) AdmissionQuantile(q float64) float64 {
	m.admMu.Lock()
	samples := append([]float64(nil), m.admSamples...)
	m.admMu.Unlock()
	if len(samples) == 0 {
		return 0
	}
	sort.Float64s(samples)
	i := int(q * float64(len(samples)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(samples) {
		i = len(samples) - 1
	}
	return samples[i]
}

// AdmissionCount returns the number of admissions recorded.
func (m *Metrics) AdmissionCount() int64 {
	m.admMu.Lock()
	defer m.admMu.Unlock()
	return m.admCount
}

// SamplesTotal returns the cumulative samples drawn by fresh executions.
func (m *Metrics) SamplesTotal() int64 { return m.samplesTotal.Load() }

// Snapshot is a point-in-time copy of the server's counters, shaped for
// JSON reports (loadgen's BENCH_serve.json) and assertions in tests.
type Snapshot struct {
	QueriesTotal   int64 `json:"queries_total"`
	QueryErrors    int64 `json:"query_errors"`
	StreamsActive  int64 `json:"streams_active"`
	SamplesTotal   int64 `json:"samples_total"`
	RoundsTotal    int64 `json:"rounds_total"`
	CacheHits      int64 `json:"cache_hits"`
	CacheShared    int64 `json:"cache_shared"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`
	AdmissionCount int64 `json:"admission_count"`
}

// Snapshot returns the current counter values.
func (m *Metrics) Snapshot() Snapshot {
	m.admMu.Lock()
	admCount := m.admCount
	m.admMu.Unlock()
	return Snapshot{
		QueriesTotal:   m.queriesTotal.Load(),
		QueryErrors:    m.queryErrors.Load(),
		StreamsActive:  m.streamsActive.Load(),
		SamplesTotal:   m.samplesTotal.Load(),
		RoundsTotal:    m.roundsTotal.Load(),
		CacheHits:      m.cacheHits.Load(),
		CacheShared:    m.cacheShared.Load(),
		CacheMisses:    m.cacheMisses.Load(),
		CacheEvictions: m.cacheEvictions.Load(),
		AdmissionCount: admCount,
	}
}

// engineStats is the subset of engine observability /metrics renders;
// decoupled from the concrete engine type for testability.
type engineStats struct {
	inflight, capacity            int
	viewHits, viewMisses          int64
	viewEvictions, viewEntries    int64
	flightsActive, cacheEntries   int
	brokersActive                 int
	brokerAttached                int64
	brokerDrawn, brokerServed     int64
	tableRows                     int
	tableGroups, uptimeSecondsInt int64
}

// WriteProm renders the Prometheus text exposition format (type 0.0.4).
func (m *Metrics) writeProm(w io.Writer, s engineStats) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("rapidvizd_queries_total", "Query subscriptions accepted (fresh, shared, and cached).", m.queriesTotal.Load())
	counter("rapidvizd_query_errors_total", "Fresh executions that ended in an error (deadline, cancellation, validation).", m.queryErrors.Load())
	gauge("rapidvizd_queries_inflight", "Queries currently holding an engine worker slot.", int64(s.inflight))
	gauge("rapidvizd_engine_workers", "Engine admission capacity (maximum concurrent queries).", int64(s.capacity))
	gauge("rapidvizd_streams_active", "Live WebSocket query streams.", m.streamsActive.Load())
	gauge("rapidvizd_flights_active", "Distinct query executions currently running or queued.", int64(s.flightsActive))

	counter("rapidvizd_samples_total", "Tuples drawn across all fresh executions (rate() gives samples/sec).", m.samplesTotal.Load())
	counter("rapidvizd_rounds_total", "Sampling rounds across all fresh executions (rate() gives rounds/sec).", m.roundsTotal.Load())

	counter("rapidvizd_querycache_hits_total", "Queries answered by replaying the whole-query result cache.", m.cacheHits.Load())
	counter("rapidvizd_querycache_shared_total", "Queries attached to an identical in-flight execution.", m.cacheShared.Load())
	counter("rapidvizd_querycache_misses_total", "Queries requiring a fresh execution.", m.cacheMisses.Load())
	counter("rapidvizd_querycache_evictions_total", "Whole-query cache entries evicted by the size bound.", m.cacheEvictions.Load())
	gauge("rapidvizd_querycache_entries", "Whole-query cache entries currently held.", int64(s.cacheEntries))

	gauge("rapidvizd_broker_active", "Sample brokers currently serving subscribed queries.", int64(s.brokersActive))
	counter("rapidvizd_broker_subscribers_total", "Queries that attached to a sample broker.", s.brokerAttached)
	counter("rapidvizd_broker_samples_drawn_total", "Tuples physically drawn by brokers (each offset once).", s.brokerDrawn)
	counter("rapidvizd_broker_samples_served_total", "Tuples delivered to broker subscribers (drawn once, fanned out).", s.brokerServed)

	counter("rapidvizd_viewcache_hits_total", "Predicate-view cache hits (engine selection cache).", s.viewHits)
	counter("rapidvizd_viewcache_misses_total", "Predicate-view cache misses.", s.viewMisses)
	counter("rapidvizd_viewcache_evictions_total", "Predicate-view cache entries dropped by overflow flushes.", s.viewEvictions)
	gauge("rapidvizd_viewcache_entries", "Predicate-view cache entries currently held.", s.viewEntries)

	gauge("rapidvizd_table_rows", "Rows in the served table.", int64(s.tableRows))
	gauge("rapidvizd_table_groups", "Groups in the served table.", s.tableGroups)
	gauge("rapidvizd_uptime_seconds", "Seconds since the server started.", s.uptimeSecondsInt)

	// Admission-wait histogram, cumulative per Prometheus convention.
	m.admMu.Lock()
	counts := append([]int64(nil), m.admCounts...)
	sum, count := m.admSum, m.admCount
	m.admMu.Unlock()
	name := "rapidvizd_admission_wait_seconds"
	fmt.Fprintf(w, "# HELP %s Time admitted queries spent waiting for an engine worker slot.\n# TYPE %s histogram\n", name, name)
	cum := int64(0)
	for i, ub := range admissionBuckets {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, ub, cum)
	}
	cum += counts[len(admissionBuckets)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, sum)
	fmt.Fprintf(w, "%s_count %d\n", name, count)
}
