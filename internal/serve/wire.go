// Wire protocol: the JSON shapes rapidvizd speaks over HTTP and
// WebSocket. A QueryRequest maps field-for-field onto rapidviz.Query with
// enums spelled as strings; the streamed side is a sequence of Events —
// "accepted", zero or more "round" traces and "partial" settles, then
// exactly one terminal "result" or "error".
package serve

import (
	"encoding/json"
	"fmt"
	"time"

	"repro"
)

// QueryRequest is one JSON query submission. The zero request asks for
// AVG estimates of every group under the full ordering guarantee with
// IFOCUS — the same defaults as rapidviz.Query.
type QueryRequest struct {
	// Aggregate: "avg" (default), "sum", "count", "normalized_sum",
	// "normalized_count".
	Aggregate string `json:"aggregate,omitempty"`
	// Guarantee: "order" (default), "trend", "topt", "values", "mistakes".
	Guarantee string `json:"guarantee,omitempty"`
	// Algorithm: "auto" (default), "ifocus", "irefine", "roundrobin",
	// "scan", "noindex".
	Algorithm string `json:"algorithm,omitempty"`

	// T is the top-group count for guarantee "topt".
	T int `json:"t,omitempty"`
	// MaxError is the per-group value bound for guarantee "values".
	MaxError float64 `json:"max_error,omitempty"`
	// CorrectPairs is the certain-comparison fraction for "mistakes".
	CorrectPairs float64 `json:"correct_pairs,omitempty"`

	// Where lists predicate conjuncts over the served table's columns.
	Where []WirePredicate `json:"where,omitempty"`

	// Delta, Bound, ConfidenceBound, Resolution, WithReplacement,
	// BatchSize, RoundGrowth, Workers, Seed, Deterministic, MaxRounds, and
	// MaxDraws carry the same semantics as the rapidviz.Query fields of
	// the same names; zero values defer to the server's defaults.
	Delta           float64 `json:"delta,omitempty"`
	Bound           float64 `json:"bound,omitempty"`
	ConfidenceBound string  `json:"confidence_bound,omitempty"`
	Resolution      float64 `json:"resolution,omitempty"`
	WithReplacement bool    `json:"with_replacement,omitempty"`
	BatchSize       int     `json:"batch_size,omitempty"`
	RoundGrowth     float64 `json:"round_growth,omitempty"`
	Workers         int     `json:"workers,omitempty"`
	Seed            uint64  `json:"seed,omitempty"`
	Deterministic   bool    `json:"deterministic,omitempty"`
	MaxRounds       int     `json:"max_rounds,omitempty"`
	MaxDraws        int64   `json:"max_draws,omitempty"`

	// ShareSamples opts this query into the engine's sample broker even
	// when the server default is off. Redundant on a default server
	// (sharing is already on) and ignored when the server sets
	// DisableSharing. Sharing never changes results, so the flag is
	// excluded from the query fingerprint.
	ShareSamples bool `json:"share_samples,omitempty"`

	// DeadlineMillis bounds the query's wall-clock time. Zero takes the
	// server default; the server clamps every request to its maximum.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// Traces asks for throttled per-round "round" events (live converging
	// error bars) in addition to settle partials. Stream requests only.
	Traces bool `json:"traces,omitempty"`
}

// WirePredicate is one Where conjunct: either a typed comparison
// {"column": "elapsed", "op": ">=", "value": 150} (an empty column means
// the value column) or a group inclusion {"groups": ["AA", "DL"]}.
type WirePredicate struct {
	Column string   `json:"column,omitempty"`
	Op     string   `json:"op,omitempty"`
	Value  float64  `json:"value,omitempty"`
	Groups []string `json:"groups,omitempty"`
}

// Event is one streamed protocol message.
type Event struct {
	// Type is "accepted", "round", "partial", "result", or "error".
	Type string `json:"type"`

	// Accepted fields: the groups the query will sample (index-aligned
	// with every later event), the resolved query fingerprint, and how the
	// execution was sourced — "run" (fresh execution), "shared" (attached
	// to an identical in-flight query), or "cached" (replayed from the
	// whole-query result cache).
	Groups      []string `json:"groups,omitempty"`
	Fingerprint string   `json:"fingerprint,omitempty"`
	Source      string   `json:"source,omitempty"`

	// Round carries a throttled per-round trace.
	Round *rapidviz.RoundTrace `json:"round,omitempty"`
	// Partial carries one settled group.
	Partial *rapidviz.Partial `json:"partial,omitempty"`
	// Result carries the terminal result.
	Result *rapidviz.Result `json:"result,omitempty"`
	// Error carries the terminal error text.
	Error string `json:"error,omitempty"`
}

// Execution sources reported in the accepted event.
const (
	SourceRun    = "run"
	SourceShared = "shared"
	SourceCached = "cached"
)

// terminal reports whether the event ends its stream.
func (e *Event) terminal() bool { return e.Type == "result" || e.Type == "error" }

// wireOps maps the wire spellings onto predicate operators.
var wireOps = map[string]rapidviz.PredicateOp{
	"<": rapidviz.OpLT, "<=": rapidviz.OpLE,
	">": rapidviz.OpGT, ">=": rapidviz.OpGE,
	"==": rapidviz.OpEQ, "!=": rapidviz.OpNE,
}

// wireAggregates, wireGuarantees, and wireAlgorithms spell the query enums.
var (
	wireAggregates = map[string]rapidviz.Aggregate{
		"": rapidviz.AggAvg, "avg": rapidviz.AggAvg,
		"sum": rapidviz.AggSum, "count": rapidviz.AggCount,
		"normalized_sum":   rapidviz.AggNormalizedSum,
		"normalized_count": rapidviz.AggNormalizedCount,
	}
	wireGuarantees = map[string]rapidviz.Guarantee{
		"": rapidviz.GuaranteeOrder, "order": rapidviz.GuaranteeOrder,
		"trend": rapidviz.GuaranteeTrend, "topt": rapidviz.GuaranteeTopT,
		"values": rapidviz.GuaranteeValues, "mistakes": rapidviz.GuaranteeMistakes,
	}
	wireAlgorithms = map[string]rapidviz.Algorithm{
		"": rapidviz.AlgoAuto, "auto": rapidviz.AlgoAuto,
		"ifocus": rapidviz.AlgoIFocus, "irefine": rapidviz.AlgoIRefine,
		"roundrobin": rapidviz.AlgoRoundRobin, "scan": rapidviz.AlgoScan,
		"noindex": rapidviz.AlgoNoIndex,
	}
)

// Query maps the request onto a rapidviz.Query, rejecting unknown enum
// spellings at the wire boundary (the engine's own validation still runs
// on the result).
func (r *QueryRequest) Query() (rapidviz.Query, error) {
	var q rapidviz.Query
	agg, ok := wireAggregates[r.Aggregate]
	if !ok {
		return q, fmt.Errorf("unknown aggregate %q", r.Aggregate)
	}
	guar, ok := wireGuarantees[r.Guarantee]
	if !ok {
		return q, fmt.Errorf("unknown guarantee %q", r.Guarantee)
	}
	algo, ok := wireAlgorithms[r.Algorithm]
	if !ok {
		return q, fmt.Errorf("unknown algorithm %q", r.Algorithm)
	}
	q = rapidviz.Query{
		Aggregate:       agg,
		Guarantee:       guar,
		Algorithm:       algo,
		T:               r.T,
		MaxError:        r.MaxError,
		CorrectPairs:    r.CorrectPairs,
		Delta:           r.Delta,
		Bound:           r.Bound,
		ConfidenceBound: r.ConfidenceBound,
		Resolution:      r.Resolution,
		WithReplacement: r.WithReplacement,
		BatchSize:       r.BatchSize,
		RoundGrowth:     r.RoundGrowth,
		Workers:         r.Workers,
		Seed:            r.Seed,
		Deterministic:   r.Deterministic,
		MaxRounds:       r.MaxRounds,
		MaxDraws:        r.MaxDraws,
		ShareSamples:    r.ShareSamples,
	}
	for i, p := range r.Where {
		switch {
		case len(p.Groups) > 0:
			if p.Op != "" || p.Column != "" {
				return q, fmt.Errorf("where[%d]: a groups predicate takes no column/op", i)
			}
			q.Where = append(q.Where, rapidviz.WhereGroups(p.Groups...))
		default:
			op, ok := wireOps[p.Op]
			if !ok {
				return q, fmt.Errorf("where[%d]: unknown op %q", i, p.Op)
			}
			q.Where = append(q.Where, rapidviz.Where(p.Column, op, p.Value))
		}
	}
	return q, nil
}

// deadline resolves the request's deadline against the server's default
// and ceiling.
func (r *QueryRequest) deadline(def, max time.Duration) time.Duration {
	d := time.Duration(r.DeadlineMillis) * time.Millisecond
	if d <= 0 {
		d = def
	}
	if max > 0 && (d <= 0 || d > max) {
		d = max
	}
	return d
}

// encodeEvent renders one protocol message. Marshaling wire types cannot
// fail; a panic here means a wire struct gained an unserializable field.
func encodeEvent(ev Event) []byte {
	b, err := json.Marshal(ev)
	if err != nil {
		panic("serve: encoding wire event: " + err.Error())
	}
	return b
}
