// Package dataset defines the group abstraction shared by every sampling
// algorithm in this repository: a group is a (possibly enormous) multiset of
// bounded numeric values from which uniform random samples can be drawn.
//
// Two implementations are provided:
//
//   - SliceGroup materializes its values in memory and supports exact
//     sampling both with and without replacement. It backs the unit tests,
//     the NEEDLETAIL engine, and every experiment small enough to hold.
//   - DistGroup is *virtual*: it is defined by a distribution and a nominal
//     size. The paper's sample complexity is independent of group size
//     (Theorem 3.6), so the 10⁹–10¹⁰-row sweeps of Figures 3 and 4 only need
//     the ability to draw the next sample and the nominal n for the
//     Hoeffding–Serfling finite-population term; DistGroup provides both
//     without materializing rows. See DESIGN.md §4 ("Virtual groups").
package dataset

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Group is a named multiset of values in a bounded range that supports
// uniform random sampling. Implementations are not safe for concurrent use.
type Group interface {
	// Name identifies the group (the x-axis label of its bar).
	Name() string
	// Size returns the number of elements, or 0 if unknown/unbounded.
	Size() int64
	// Draw returns a uniform random element with replacement.
	Draw(r *xrand.RNG) float64
	// TrueMean returns the exact average of the multiset. Algorithms must
	// never call this; it exists for verification and difficulty analysis.
	TrueMean() float64
}

// WithoutReplacementGroup is implemented by groups that support exact
// sampling without replacement.
type WithoutReplacementGroup interface {
	Group
	// DrawWithoutReplacement returns the next element of a uniformly random
	// permutation of the multiset, and false once the group is exhausted.
	DrawWithoutReplacement(r *xrand.RNG) (float64, bool)
	// ResetDraws restarts without-replacement sampling with a fresh
	// permutation.
	ResetDraws()
}

// BatchGroup is implemented by groups that can fill a whole block of
// with-replacement samples in one call, amortizing dispatch, bounds
// checks, and accounting over the block. DrawBatch must produce exactly
// the stream that len(dst) successive Draw calls would.
type BatchGroup interface {
	Group
	// DrawBatch fills dst with uniform random elements (with replacement).
	DrawBatch(r *xrand.RNG, dst []float64)
}

// BatchWithoutReplacementGroup is the block counterpart of
// WithoutReplacementGroup. The produced stream must be identical to the
// same number of successive DrawWithoutReplacement calls.
type BatchWithoutReplacementGroup interface {
	WithoutReplacementGroup
	// DrawBatchWithoutReplacement fills a prefix of dst with the next
	// elements of the random permutation and returns how many elements it
	// produced — fewer than len(dst) only when the group is exhausted.
	DrawBatchWithoutReplacement(r *xrand.RNG, dst []float64) int
}

// Scannable is implemented by groups whose full contents can be visited,
// enabling the SCAN baseline.
type Scannable interface {
	Group
	// Scan calls fn for every element. It returns the number visited.
	Scan(fn func(v float64)) int64
}

// SliceGroup is a fully materialized group.
type SliceGroup struct {
	name   string
	values []float64
	// next indexes into the lazily built without-replacement permutation:
	// values[perm[0..next)] have been consumed. The permutation is built
	// incrementally by an inside-out Fisher–Yates so that consuming only a
	// few samples from a huge group costs O(samples), not O(n).
	perm []int32
	next int

	mean float64
	maxv float64
}

// NewSliceGroup returns a materialized group over the given values.
// The values slice is retained; callers must not mutate it afterwards.
func NewSliceGroup(name string, values []float64) *SliceGroup {
	if len(values) == 0 {
		panic(fmt.Sprintf("dataset: group %q has no values", name))
	}
	g := &SliceGroup{name: name, values: values, maxv: values[0]}
	sum := 0.0
	for _, v := range values {
		sum += v
		if v > g.maxv {
			g.maxv = v
		}
	}
	g.mean = sum / float64(len(values))
	return g
}

// Name returns the group's name.
func (g *SliceGroup) Name() string { return g.name }

// Size returns the number of values.
func (g *SliceGroup) Size() int64 { return int64(len(g.values)) }

// TrueMean returns the exact mean of the values.
func (g *SliceGroup) TrueMean() float64 { return g.mean }

// MaxValue returns the largest value, tracked at construction so bound
// bookkeeping (table views, filters) never rescans the column.
func (g *SliceGroup) MaxValue() float64 { return g.maxv }

// Draw samples uniformly with replacement.
func (g *SliceGroup) Draw(r *xrand.RNG) float64 {
	return g.values[r.Intn(len(g.values))]
}

// DrawBatch fills dst with uniform with-replacement samples in one call.
func (g *SliceGroup) DrawBatch(r *xrand.RNG, dst []float64) {
	vals := g.values
	n := len(vals)
	for i := range dst {
		dst[i] = vals[r.Intn(n)]
	}
}

// DrawWithoutReplacement returns the next element of a uniform random
// permutation, building the permutation lazily.
func (g *SliceGroup) DrawWithoutReplacement(r *xrand.RNG) (float64, bool) {
	if g.next >= len(g.values) {
		return 0, false
	}
	g.ensurePerm()
	// Fisher–Yates step: choose the next element uniformly from the
	// unconsumed suffix [next, n).
	j := g.next + r.Intn(len(g.values)-g.next)
	g.perm[g.next], g.perm[j] = g.perm[j], g.perm[g.next]
	v := g.values[g.perm[g.next]]
	g.next++
	return v, true
}

// DrawBatchWithoutReplacement consumes up to len(dst) further permutation
// elements in one tight Fisher–Yates loop, returning how many it produced.
func (g *SliceGroup) DrawBatchWithoutReplacement(r *xrand.RNG, dst []float64) int {
	n := len(g.values)
	if g.next >= n {
		return 0
	}
	g.ensurePerm()
	perm, vals := g.perm, g.values
	taken := 0
	for taken < len(dst) && g.next < n {
		j := g.next + r.Intn(n-g.next)
		perm[g.next], perm[j] = perm[j], perm[g.next]
		dst[taken] = vals[perm[g.next]]
		g.next++
		taken++
	}
	return taken
}

// ensurePerm lazily builds the identity permutation the Fisher–Yates
// suffix consumption shuffles in place.
func (g *SliceGroup) ensurePerm() {
	if g.perm == nil {
		g.perm = make([]int32, len(g.values))
		for i := range g.perm {
			g.perm[i] = int32(i)
		}
	}
}

// ResetDraws restarts without-replacement sampling. The permutation array
// is kept: restarting the Fisher–Yates suffix consumption from position 0
// over any arrangement yields a fresh uniform permutation, so the reset is
// O(1) rather than O(n). The new run's sample stream is therefore uniform
// but not a replay of the previous run's.
func (g *SliceGroup) ResetDraws() { g.next = 0 }

// Scan visits every value.
func (g *SliceGroup) Scan(fn func(v float64)) int64 {
	for _, v := range g.values {
		fn(v)
	}
	return int64(len(g.values))
}

// Values exposes the backing slice for storage engines that materialize the
// group into a table. Callers must not mutate the returned slice.
func (g *SliceGroup) Values() []float64 { return g.values }

// DistGroup is a virtual group: a distribution plus a nominal size.
// Draw samples from the distribution; because the nominal population is vast
// relative to the number of samples any algorithm takes, with- and
// without-replacement sampling are statistically indistinguishable, and the
// algorithms consume the nominal size only through the (tiny) Serfling
// correction term.
type DistGroup struct {
	name string
	dist xrand.Dist
	size int64
}

// NewDistGroup returns a virtual group of nominal size n backed by dist.
func NewDistGroup(name string, dist xrand.Dist, n int64) *DistGroup {
	if n <= 0 {
		panic(fmt.Sprintf("dataset: virtual group %q must have positive nominal size", name))
	}
	return &DistGroup{name: name, dist: dist, size: n}
}

// Name returns the group's name.
func (g *DistGroup) Name() string { return g.name }

// Size returns the nominal population size.
func (g *DistGroup) Size() int64 { return g.size }

// TrueMean returns the analytical mean of the backing distribution.
func (g *DistGroup) TrueMean() float64 { return g.dist.Mean() }

// Draw samples from the backing distribution.
func (g *DistGroup) Draw(r *xrand.RNG) float64 { return g.dist.Sample(r) }

// DrawBatch fills dst through the distribution's bulk sampler, paying one
// dispatch per block instead of one per sample.
func (g *DistGroup) DrawBatch(r *xrand.RNG, dst []float64) {
	xrand.SampleInto(g.dist, r, dst)
}

// Dist returns the backing distribution.
func (g *DistGroup) Dist() xrand.Dist { return g.dist }

// Universe is an ordered collection of groups plus the value bound c.
// It is the input to every sampling algorithm.
type Universe struct {
	Groups []Group
	// C bounds every value: all elements lie in [0, C].
	C float64
}

// NewUniverse wraps groups with the given value bound.
func NewUniverse(c float64, groups ...Group) *Universe {
	if c <= 0 {
		panic("dataset: universe bound c must be positive")
	}
	return &Universe{Groups: groups, C: c}
}

// K returns the number of groups.
func (u *Universe) K() int { return len(u.Groups) }

// TotalSize returns the summed group sizes (0 if any is unknown).
func (u *Universe) TotalSize() int64 {
	var total int64
	for _, g := range u.Groups {
		n := g.Size()
		if n == 0 {
			return 0
		}
		total += n
	}
	return total
}

// MaxSize returns the largest group size.
func (u *Universe) MaxSize() int64 {
	var max int64
	for _, g := range u.Groups {
		if n := g.Size(); n > max {
			max = n
		}
	}
	return max
}

// TrueMeans returns the exact group means, for verification only.
func (u *Universe) TrueMeans() []float64 {
	means := make([]float64, len(u.Groups))
	for i, g := range u.Groups {
		means[i] = g.TrueMean()
	}
	return means
}

// Etas returns η_i = min_{j≠i} |µ_i − µ_j| for every group: the paper's
// per-group hardness measure (Table 2).
func Etas(means []float64) []float64 {
	etas := make([]float64, len(means))
	for i := range means {
		eta := math.Inf(1)
		for j := range means {
			if i == j {
				continue
			}
			if d := math.Abs(means[i] - means[j]); d < eta {
				eta = d
			}
		}
		etas[i] = eta
	}
	return etas
}

// MinEta returns η = min_i η_i, the global hardness of the instance.
func MinEta(means []float64) float64 {
	eta := math.Inf(1)
	for _, e := range Etas(means) {
		if e < eta {
			eta = e
		}
	}
	return eta
}
