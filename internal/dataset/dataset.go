// Package dataset defines the group abstraction shared by every sampling
// algorithm in this repository: a group is a (possibly enormous) multiset of
// bounded numeric values from which uniform random samples can be drawn.
//
// Two implementations are provided:
//
//   - SliceGroup materializes its values in memory and supports exact
//     sampling both with and without replacement. It backs the unit tests,
//     the NEEDLETAIL engine, and every experiment small enough to hold.
//   - DistGroup is *virtual*: it is defined by a distribution and a nominal
//     size. The paper's sample complexity is independent of group size
//     (Theorem 3.6), so the 10⁹–10¹⁰-row sweeps of Figures 3 and 4 only need
//     the ability to draw the next sample and the nominal n for the
//     Hoeffding–Serfling finite-population term; DistGroup provides both
//     without materializing rows. See DESIGN.md §4 ("Virtual groups").
package dataset

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/xrand"
)

// Group is a named multiset of values in a bounded range that supports
// uniform random sampling. Implementations are not safe for concurrent use.
type Group interface {
	// Name identifies the group (the x-axis label of its bar).
	Name() string
	// Size returns the number of elements, or 0 if unknown/unbounded.
	Size() int64
	// Draw returns a uniform random element with replacement.
	Draw(r *xrand.RNG) float64
	// TrueMean returns the exact average of the multiset. Algorithms must
	// never call this; it exists for verification and difficulty analysis.
	TrueMean() float64
}

// WithoutReplacementGroup is implemented by groups that support exact
// sampling without replacement.
type WithoutReplacementGroup interface {
	Group
	// DrawWithoutReplacement returns the next element of a uniformly random
	// permutation of the multiset, and false once the group is exhausted.
	DrawWithoutReplacement(r *xrand.RNG) (float64, bool)
	// ResetDraws restarts without-replacement sampling with a fresh
	// permutation.
	ResetDraws()
}

// BatchGroup is implemented by groups that can fill a whole block of
// with-replacement samples in one call, amortizing dispatch, bounds
// checks, and accounting over the block. DrawBatch must produce exactly
// the stream that len(dst) successive Draw calls would.
type BatchGroup interface {
	Group
	// DrawBatch fills dst with uniform random elements (with replacement).
	DrawBatch(r *xrand.RNG, dst []float64)
}

// BatchWithoutReplacementGroup is the block counterpart of
// WithoutReplacementGroup. The produced stream must be identical to the
// same number of successive DrawWithoutReplacement calls.
type BatchWithoutReplacementGroup interface {
	WithoutReplacementGroup
	// DrawBatchWithoutReplacement fills a prefix of dst with the next
	// elements of the random permutation and returns how many elements it
	// produced — fewer than len(dst) only when the group is exhausted.
	DrawBatchWithoutReplacement(r *xrand.RNG, dst []float64) int
}

// Scannable is implemented by groups whose full contents can be visited,
// enabling the SCAN baseline.
type Scannable interface {
	Group
	// Scan calls fn for every element. It returns the number visited.
	Scan(fn func(v float64)) int64
}

// SliceGroup is a fully materialized group.
type SliceGroup struct {
	name   string
	values []float64
	// next indexes into the lazily built without-replacement permutation:
	// values[perm[0..next)] have been consumed. The permutation is built
	// incrementally by an inside-out Fisher–Yates so that consuming only a
	// few samples from a huge group costs O(samples), not O(n).
	perm []int32
	next int

	mean float64
	maxv float64

	// seg marks the group segment-backed (values alias an mmapped column
	// chunk): block draws stage their row indices first and gather the
	// values in ascending row order, so a round touches its O(batch) pages
	// with page-cache-friendly locality instead of faulting them in random
	// order. The value stream is unchanged — rows are chosen by the exact
	// same Fisher–Yates / Intn sequence and folded in draw order.
	seg bool
	// win replaces values for compressed (v2) segments: reads go through a
	// block-decoding cursor instead of a flat slice. win-backed groups are
	// always seg, and batch draws route through the same staged/gathered
	// path so each batch decodes every touched block once.
	win *blockWindow
	// sparse switches the without-replacement permutation to the sparse
	// map form: disp records only the displaced entries (perm[i] != i),
	// identity elsewhere. Same arrangement and RNG discipline as the dense
	// array, O(draws) memory instead of O(rows) — what lets a group far
	// larger than RAM be sampled without replacement. Only segment-backed
	// groups past sparsePermGate use it.
	sparse bool
	disp   map[int32]int32

	rowBuf []int32  // staged block rows, draw order
	keyBuf []uint64 // (row<<32 | slot) sort keys for the page-ordered gather
	valBuf []float64
}

// sparsePermGate is the row count above which a segment-backed group
// tracks its Fisher–Yates permutation sparsely. Below it the dense int32
// array (4 bytes/row) is cheap and faster per step; above it the array
// alone would rival the mapped data in size, defeating out-of-core
// sampling. A var so tests can force the sparse path on small groups.
var sparsePermGate = 1 << 22

// NewSliceGroup returns a materialized group over the given values.
// The values slice is retained; callers must not mutate it afterwards.
func NewSliceGroup(name string, values []float64) *SliceGroup {
	if len(values) == 0 {
		panic(fmt.Sprintf("dataset: group %q has no values", name))
	}
	g := &SliceGroup{name: name, values: values, maxv: values[0]}
	sum := 0.0
	for _, v := range values {
		sum += v
		if v > g.maxv {
			g.maxv = v
		}
	}
	g.mean = sum / float64(len(values))
	return g
}

// newSegmentSliceGroup returns a group over an mmapped column chunk whose
// mean and max were recorded in the segment manifest at write time — no
// construction scan, so opening a table faults in zero data pages.
func newSegmentSliceGroup(name string, values []float64, mean, maxv float64) *SliceGroup {
	if len(values) == 0 {
		panic(fmt.Sprintf("dataset: group %q has no values", name))
	}
	return &SliceGroup{
		name:   name,
		values: values,
		mean:   mean,
		maxv:   maxv,
		seg:    true,
		sparse: len(values) > sparsePermGate,
	}
}

// newBlockSliceGroup returns a group over a compressed column window
// (manifest-recorded statistics, like newSegmentSliceGroup). Every read
// decodes through the table's shared block cache.
func newBlockSliceGroup(name string, win *blockWindow, mean, maxv float64) *SliceGroup {
	if win.n == 0 {
		panic(fmt.Sprintf("dataset: group %q has no values", name))
	}
	return &SliceGroup{
		name:   name,
		win:    win,
		mean:   mean,
		maxv:   maxv,
		seg:    true,
		sparse: win.n > sparsePermGate,
	}
}

// n returns the group's row count regardless of backing (slice or window).
func (g *SliceGroup) n() int {
	if g.win != nil {
		return g.win.n
	}
	return len(g.values)
}

// Name returns the group's name.
func (g *SliceGroup) Name() string { return g.name }

// Size returns the number of values.
func (g *SliceGroup) Size() int64 { return int64(g.n()) }

// TrueMean returns the exact mean of the values.
func (g *SliceGroup) TrueMean() float64 { return g.mean }

// MaxValue returns the largest value, tracked at construction so bound
// bookkeeping (table views, filters) never rescans the column.
func (g *SliceGroup) MaxValue() float64 { return g.maxv }

// Draw samples uniformly with replacement.
func (g *SliceGroup) Draw(r *xrand.RNG) float64 {
	if g.win != nil {
		return g.win.at(r.Intn(g.win.n))
	}
	return g.values[r.Intn(len(g.values))]
}

// DrawBatch fills dst with uniform with-replacement samples in one call.
// Window-backed groups always stage (even single draws) so reads hit the
// block cursor in sorted order.
func (g *SliceGroup) DrawBatch(r *xrand.RNG, dst []float64) {
	if g.seg && (len(dst) > 1 || g.win != nil) {
		g.stageBatchWR(r, len(dst))
		g.gatherRows(g.rowBuf, dst)
		return
	}
	vals := g.values
	n := len(vals)
	for i := range dst {
		dst[i] = vals[r.Intn(n)]
	}
}

// stageBatchWR fills rowBuf with count with-replacement row picks, consuming
// the RNG exactly as the direct loop would.
func (g *SliceGroup) stageBatchWR(r *xrand.RNG, count int) {
	if cap(g.rowBuf) < count {
		g.rowBuf = make([]int32, count)
	}
	rows := g.rowBuf[:count]
	n := g.n()
	for i := range rows {
		rows[i] = int32(r.Intn(n))
	}
	g.rowBuf = rows
}

// valScratch returns the reusable value-staging buffer sized to n.
func (g *SliceGroup) valScratch(n int) []float64 {
	if cap(g.valBuf) < n {
		g.valBuf = make([]float64, n)
	}
	g.valBuf = g.valBuf[:n]
	return g.valBuf
}

// gatherRows copies values[rows[i]] into dst[i] for every i, but performs
// the reads in ascending row order: keys pack (row<<32 | slot) so a single
// sort yields both the page-friendly visit order and where each value
// belongs in the draw-order output. On an mmapped column this turns a
// random page walk into a short sorted sweep — the round touches O(batch)
// pages, clustered, and sequential enough for OS readahead to help.
func (g *SliceGroup) gatherRows(rows []int32, dst []float64) {
	if g.win != nil {
		g.win.gatherSorted(rows, dst, &g.keyBuf)
		return
	}
	if len(rows) <= 1 {
		for i, row := range rows {
			dst[i] = g.values[row]
		}
		return
	}
	if cap(g.keyBuf) < len(rows) {
		g.keyBuf = make([]uint64, len(rows))
	}
	keys := g.keyBuf[:len(rows)]
	for pos, row := range rows {
		keys[pos] = uint64(uint32(row))<<32 | uint64(uint32(pos))
	}
	slices.Sort(keys)
	g.keyBuf = keys
	vals := g.values
	for _, k := range keys {
		dst[uint32(k)] = vals[int32(k>>32)]
	}
}

// DrawWithoutReplacement returns the next element of a uniform random
// permutation, building the permutation lazily.
func (g *SliceGroup) DrawWithoutReplacement(r *xrand.RNG) (float64, bool) {
	if g.next >= g.n() {
		return 0, false
	}
	row := g.permStep(r)
	if g.win != nil {
		return g.win.at(int(row)), true
	}
	return g.values[row], true
}

// permStep performs one inside-out Fisher–Yates step — choose the next
// element uniformly from the unconsumed suffix [next, n) — and returns the
// row it lands on. Dense and sparse permutations consume the RNG
// identically, so the drawn row sequence is bit-for-bit the same either
// way.
func (g *SliceGroup) permStep(r *xrand.RNG) int32 {
	next := g.next
	j := next + r.Intn(g.n()-next)
	g.next++
	if g.sparse {
		pn := g.permAt(int32(next))
		if j != next {
			// Swap perm[next] and perm[j]: both displaced entries must be
			// recorded so the retained arrangement stays a valid permutation
			// across ResetDraws.
			pj := g.permAt(int32(j))
			if g.disp == nil {
				g.disp = make(map[int32]int32)
			}
			g.disp[int32(next)] = pj
			g.disp[int32(j)] = pn
			pn = pj
		}
		return pn
	}
	g.ensurePerm()
	g.perm[next], g.perm[j] = g.perm[j], g.perm[next]
	return g.perm[next]
}

// permAt reads the sparse permutation at index i: displaced entries live in
// disp, everything else is identity.
func (g *SliceGroup) permAt(i int32) int32 {
	if g.disp != nil {
		if v, ok := g.disp[i]; ok {
			return v
		}
	}
	return i
}

// DrawBatchWithoutReplacement consumes up to len(dst) further permutation
// elements in one tight Fisher–Yates loop, returning how many it produced.
func (g *SliceGroup) DrawBatchWithoutReplacement(r *xrand.RNG, dst []float64) int {
	n := g.n()
	if g.next >= n {
		return 0
	}
	if g.seg && (len(dst) > 1 || g.win != nil) {
		taken := g.stageBatchWOR(r, len(dst))
		g.gatherRows(g.rowBuf[:taken], dst[:taken])
		return taken
	}
	g.ensurePerm()
	perm, vals := g.perm, g.values
	taken := 0
	for taken < len(dst) && g.next < n {
		j := g.next + r.Intn(n-g.next)
		perm[g.next], perm[j] = perm[j], perm[g.next]
		dst[taken] = vals[perm[g.next]]
		g.next++
		taken++
	}
	return taken
}

// stageBatchWOR runs up to count Fisher–Yates steps, recording the drawn
// rows in rowBuf without touching the value column, and returns how many
// steps ran before exhaustion.
func (g *SliceGroup) stageBatchWOR(r *xrand.RNG, count int) int {
	if cap(g.rowBuf) < count {
		g.rowBuf = make([]int32, count)
	}
	rows := g.rowBuf[:count]
	n := g.n()
	taken := 0
	for taken < count && g.next < n {
		rows[taken] = g.permStep(r)
		taken++
	}
	g.rowBuf = rows
	return taken
}

// ensurePerm lazily builds the identity permutation the Fisher–Yates
// suffix consumption shuffles in place.
func (g *SliceGroup) ensurePerm() {
	if g.perm == nil {
		g.perm = make([]int32, g.n())
		for i := range g.perm {
			g.perm[i] = int32(i)
		}
	}
}

// ResetDraws restarts without-replacement sampling. The permutation array
// is kept: restarting the Fisher–Yates suffix consumption from position 0
// over any arrangement yields a fresh uniform permutation, so the reset is
// O(1) rather than O(n). The new run's sample stream is therefore uniform
// but not a replay of the previous run's.
func (g *SliceGroup) ResetDraws() { g.next = 0 }

// resetView clears all per-view draw state: the permutation (dense and
// sparse), the consumption cursor, and the staging buffers. Views copy a
// group by value, so without this the copy would share (and corrupt) the
// original's permutation arrays.
func (g *SliceGroup) resetView() {
	g.perm = nil
	g.disp = nil
	g.next = 0
	g.rowBuf = nil
	g.keyBuf = nil
	g.valBuf = nil
	if g.win != nil {
		// The block cursor memoizes draw position; views need their own.
		g.win = g.win.clone()
	}
}

// Scan visits every value.
func (g *SliceGroup) Scan(fn func(v float64)) int64 {
	if g.win != nil {
		g.win.scan(fn)
		return int64(g.win.n)
	}
	for _, v := range g.values {
		fn(v)
	}
	return int64(len(g.values))
}

// Values exposes the backing slice for storage engines that materialize the
// group into a table. Callers must not mutate the returned slice. Groups
// over compressed segments have no backing slice and return nil — use Scan
// (or Table.Column, which materializes) instead.
func (g *SliceGroup) Values() []float64 { return g.values }

// DistGroup is a virtual group: a distribution plus a nominal size.
// Draw samples from the distribution; because the nominal population is vast
// relative to the number of samples any algorithm takes, with- and
// without-replacement sampling are statistically indistinguishable, and the
// algorithms consume the nominal size only through the (tiny) Serfling
// correction term.
type DistGroup struct {
	name string
	dist xrand.Dist
	size int64
}

// NewDistGroup returns a virtual group of nominal size n backed by dist.
func NewDistGroup(name string, dist xrand.Dist, n int64) *DistGroup {
	if n <= 0 {
		panic(fmt.Sprintf("dataset: virtual group %q must have positive nominal size", name))
	}
	return &DistGroup{name: name, dist: dist, size: n}
}

// Name returns the group's name.
func (g *DistGroup) Name() string { return g.name }

// Size returns the nominal population size.
func (g *DistGroup) Size() int64 { return g.size }

// TrueMean returns the analytical mean of the backing distribution.
func (g *DistGroup) TrueMean() float64 { return g.dist.Mean() }

// Draw samples from the backing distribution.
func (g *DistGroup) Draw(r *xrand.RNG) float64 { return g.dist.Sample(r) }

// DrawBatch fills dst through the distribution's bulk sampler, paying one
// dispatch per block instead of one per sample.
func (g *DistGroup) DrawBatch(r *xrand.RNG, dst []float64) {
	xrand.SampleInto(g.dist, r, dst)
}

// Dist returns the backing distribution.
func (g *DistGroup) Dist() xrand.Dist { return g.dist }

// Universe is an ordered collection of groups plus the value bound c.
// It is the input to every sampling algorithm.
type Universe struct {
	Groups []Group
	// C bounds every value: all elements lie in [0, C].
	C float64
}

// NewUniverse wraps groups with the given value bound.
func NewUniverse(c float64, groups ...Group) *Universe {
	if c <= 0 {
		panic("dataset: universe bound c must be positive")
	}
	return &Universe{Groups: groups, C: c}
}

// K returns the number of groups.
func (u *Universe) K() int { return len(u.Groups) }

// TotalSize returns the summed group sizes (0 if any is unknown).
func (u *Universe) TotalSize() int64 {
	var total int64
	for _, g := range u.Groups {
		n := g.Size()
		if n == 0 {
			return 0
		}
		total += n
	}
	return total
}

// MaxSize returns the largest group size.
func (u *Universe) MaxSize() int64 {
	var max int64
	for _, g := range u.Groups {
		if n := g.Size(); n > max {
			max = n
		}
	}
	return max
}

// TrueMeans returns the exact group means, for verification only.
func (u *Universe) TrueMeans() []float64 {
	means := make([]float64, len(u.Groups))
	for i, g := range u.Groups {
		means[i] = g.TrueMean()
	}
	return means
}

// Etas returns η_i = min_{j≠i} |µ_i − µ_j| for every group: the paper's
// per-group hardness measure (Table 2).
func Etas(means []float64) []float64 {
	etas := make([]float64, len(means))
	for i := range means {
		eta := math.Inf(1)
		for j := range means {
			if i == j {
				continue
			}
			if d := math.Abs(means[i] - means[j]); d < eta {
				eta = d
			}
		}
		etas[i] = eta
	}
	return etas
}

// MinEta returns η = min_i η_i, the global hardness of the instance.
func MinEta(means []float64) float64 {
	eta := math.Inf(1)
	for _, e := range Etas(means) {
		if e < eta {
			eta = e
		}
	}
	return eta
}
