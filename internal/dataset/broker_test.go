package dataset

import (
	"sync"
	"testing"

	"repro/internal/xrand"
)

// brokerUniverse builds two universes over identical data: one for a solo
// stream sampler, one for a broker, so their draws can be compared.
func brokerUniverse(t *testing.T, rows int) (*Universe, *Universe) {
	t.Helper()
	mk := func() *Universe {
		b := NewTableBuilder()
		for i := 0; i < rows; i++ {
			b.Add([]string{"a", "b", "c"}[i%3], float64(i%97))
		}
		tab, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return NewUniverse(100, tab.View()...)
	}
	return mk(), mk()
}

func TestBrokerMatchesStreamSampler(t *testing.T) {
	for _, without := range []bool{false, true} {
		name := "with-replacement"
		if without {
			name = "without-replacement"
		}
		t.Run(name, func(t *testing.T) {
			uSolo, uShared := brokerUniverse(t, 900)
			const base = 0xfeed
			solo := NewStreamSampler(uSolo, base, without)
			broker := NewBroker(uShared, base, without)
			sub := NewSourceSampler(uShared, broker, without)

			// Interleave scalar and block draws; the streams must agree
			// draw for draw, including past exhaustion in WOR mode.
			buf1 := make([]float64, 64)
			buf2 := make([]float64, 64)
			for round := 0; round < 8; round++ {
				for i := 0; i < uSolo.K(); i++ {
					if round%3 == 0 {
						a, b := solo.Draw(i), sub.Draw(i)
						if a != b {
							t.Fatalf("round %d group %d: scalar draw %v != %v", round, i, a, b)
						}
						continue
					}
					solo.DrawBatch(i, buf1)
					sub.DrawBatch(i, buf2)
					for j := range buf1 {
						if buf1[j] != buf2[j] {
							t.Fatalf("round %d group %d draw %d: %v != %v", round, i, j, buf1[j], buf2[j])
						}
					}
				}
			}
			for i := 0; i < uSolo.K(); i++ {
				if solo.Count(i) != sub.Count(i) {
					t.Fatalf("group %d: counts diverge %d vs %d", i, solo.Count(i), sub.Count(i))
				}
				if solo.Exhausted(i) != sub.Exhausted(i) {
					t.Fatalf("group %d: exhaustion diverges %t vs %t", i, solo.Exhausted(i), sub.Exhausted(i))
				}
			}
		})
	}
}

func TestBrokerLateSubscriberCatchesUp(t *testing.T) {
	uSolo, uShared := brokerUniverse(t, 600)
	const base = 0xabcd
	solo := NewStreamSampler(uSolo, base, true)
	broker := NewBroker(uShared, base, true)

	// First subscriber drives the stream deep.
	first := NewSourceSampler(uShared, broker, true)
	buf := make([]float64, 50)
	for i := 0; i < uShared.K(); i++ {
		first.DrawBatch(i, buf)
		first.DrawBatch(i, buf)
	}

	// A late subscriber starts at offset 0 and must see exactly the solo
	// stream from the beginning — the retained prefix is its catch-up.
	late := NewSourceSampler(uShared, broker, true)
	want := make([]float64, 100)
	got := make([]float64, 100)
	for i := 0; i < uShared.K(); i++ {
		solo.DrawBatch(i, want)
		late.DrawBatch(i, got)
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("group %d draw %d: late subscriber saw %v, solo drew %v", i, j, got[j], want[j])
			}
		}
	}

	// The broker drew each offset once: first went to 100/group, late
	// replayed the same 100, so Drawn stays at 100/group while Served is
	// twice that.
	if want, got := int64(100*uShared.K()), broker.Drawn(); got != want {
		t.Fatalf("broker drew %d samples, want %d (each offset once)", got, want)
	}
	if want, got := int64(200*uShared.K()), broker.Served(); got != want {
		t.Fatalf("broker served %d samples, want %d", got, want)
	}
	if broker.Retained() != broker.Drawn() {
		t.Fatalf("retained %d != drawn %d", broker.Retained(), broker.Drawn())
	}
}

func TestBrokerConcurrentSubscribers(t *testing.T) {
	// Many subscribers hammer the same broker concurrently with different
	// batch shapes; every one must observe the identical stream. Run under
	// -race this also pins the broker's locking discipline.
	_, uShared := brokerUniverse(t, 1200)
	const base = 0x77
	broker := NewBroker(uShared, base, true)

	uRef, _ := brokerUniverse(t, 1200)
	ref := NewStreamSampler(uRef, base, true)
	const depth = 300
	want := make([][]float64, uRef.K())
	for i := range want {
		want[i] = make([]float64, depth)
		ref.DrawBatch(i, want[i])
	}

	const subs = 8
	var wg sync.WaitGroup
	errs := make(chan string, subs)
	for s := 0; s < subs; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			// Each subscriber needs its own universe: samplers share
			// accounting but universes carry no draw state under source
			// mode, so reusing uShared is fine — and exactly what the
			// engine does.
			sub := NewSourceSampler(uShared, broker, true)
			batch := 1 + s*7%31
			buf := make([]float64, batch)
			r := xrand.New(uint64(s))
			for i := 0; i < uShared.K(); i++ {
				off := 0
				for off < depth {
					n := 1 + r.Intn(batch)
					if off+n > depth {
						n = depth - off
					}
					sub.DrawBatch(i, buf[:n])
					for j := 0; j < n; j++ {
						if buf[j] != want[i][off+j] {
							errs <- "subscriber stream diverged from solo"
							return
						}
					}
					off += n
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
	if got, want := broker.Served(), int64(subs*depth*uShared.K()); got != want {
		t.Fatalf("served %d, want %d", got, want)
	}
	if broker.Drawn() != int64(depth*uShared.K()) {
		t.Fatalf("drawn %d, want %d (each offset once)", broker.Drawn(), depth*uShared.K())
	}
}
