package dataset

import (
	"testing"

	"repro/internal/xrand"
)

// BenchmarkFilteredDraw compares draw throughput over one 1M-row group:
// unfiltered (the SliceGroup baseline), a dense selection (bitmap-backed,
// O(log n) select per draw), and a sparse selection (index-slice-backed,
// O(1) per draw). Recorded in CI's BENCH_core.json so the filtered hot
// path's cost stays visible across PRs.
func BenchmarkFilteredDraw(b *testing.B) {
	const n = 1 << 20
	builder := NewTableBuilder()
	for i := 0; i < n; i++ {
		builder.Add("g", float64(i%1000))
	}
	tab, err := builder.Build()
	if err != nil {
		b.Fatal(err)
	}

	denseView, err := tab.Filter(Predicate{Op: OpLT, Value: 500}) // keeps 1/2
	if err != nil {
		b.Fatal(err)
	}
	sparseView, err := tab.Filter(Predicate{Op: OpLT, Value: 20}) // keeps 1/50
	if err != nil {
		b.Fatal(err)
	}

	groups := map[string]Group{
		"unfiltered":        tab.View()[0],
		"bitmap-dense":      denseView.View()[0],
		"indexslice-sparse": sparseView.View()[0],
	}
	for _, mode := range []string{"unfiltered", "bitmap-dense", "indexslice-sparse"} {
		g := groups[mode].(BatchGroup)
		b.Run(mode, func(b *testing.B) {
			r := xrand.New(1)
			buf := make([]float64, 256)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.DrawBatch(r, buf)
			}
			b.SetBytes(int64(len(buf) * 8))
			b.ReportMetric(float64(b.N*len(buf))/b.Elapsed().Seconds(), "draws/sec")
		})
	}
}
