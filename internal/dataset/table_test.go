package dataset

import (
	"strings"
	"testing"

	"repro/internal/xrand"
)

func TestTableBuilderGroupsByFirstSeen(t *testing.T) {
	b := NewTableBuilder()
	b.Add("east", 3)
	b.Add("west", 5)
	b.Add("east", 7)
	b.Add("north", 1)
	b.Add("west", 9)
	if b.Len() != 5 {
		t.Fatalf("builder holds %d rows, want 5", b.Len())
	}
	tab, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Names(); got[0] != "east" || got[1] != "west" || got[2] != "north" {
		t.Fatalf("group order %v, want first-seen [east west north]", got)
	}
	if tab.K() != 3 || tab.NumRows() != 5 {
		t.Fatalf("k=%d rows=%d, want 3/5", tab.K(), tab.NumRows())
	}
	east := tab.Column(0)
	if len(east) != 2 || east[0] != 3 || east[1] != 7 {
		t.Fatalf("east column %v, want [3 7]", east)
	}
	if tab.MinValue() != 1 || tab.MaxValue() != 9 {
		t.Fatalf("range [%v, %v], want [1, 9]", tab.MinValue(), tab.MaxValue())
	}
}

func TestTableGroupsAreColumnViews(t *testing.T) {
	tab, err := BuildTable([]Row{{"a", 1}, {"b", 10}, {"a", 3}, {"b", 20}})
	if err != nil {
		t.Fatal(err)
	}
	groups := tab.Groups()
	if len(groups) != 2 {
		t.Fatalf("got %d groups", len(groups))
	}
	sg, ok := groups[0].(*TableGroup)
	if !ok {
		t.Fatalf("table group is %T, want *TableGroup", groups[0])
	}
	if sg.TrueMean() != 2 {
		t.Fatalf("group a mean %v, want 2", sg.TrueMean())
	}
	// Zero copy: the group's backing storage is the table column.
	if &sg.Values()[0] != &tab.Column(0)[0] {
		t.Fatal("group values are a copy, want a view over the table column")
	}
	// The groups support the batched without-replacement path.
	if _, ok := groups[0].(BatchWithoutReplacementGroup); !ok {
		t.Fatal("table groups should support batched without-replacement draws")
	}
}

func TestTableUniverse(t *testing.T) {
	tab, err := BuildTable([]Row{{"a", 2}, {"b", 8}})
	if err != nil {
		t.Fatal(err)
	}
	u, err := tab.Universe(0)
	if err != nil {
		t.Fatal(err)
	}
	if u.C != 8 {
		t.Fatalf("inferred bound %v, want 8 (max value)", u.C)
	}
	if _, err := tab.Universe(5); err == nil {
		t.Fatal("bound below the data accepted")
	}
	u, err = tab.Universe(100)
	if err != nil || u.C != 100 {
		t.Fatalf("explicit bound: %v c=%v", err, u.C)
	}
}

func TestTableRejectsBadInput(t *testing.T) {
	if _, err := BuildTable(nil); err == nil {
		t.Fatal("empty table accepted")
	}
	if _, err := BuildTable([]Row{{"a", -1}}); err == nil {
		t.Fatal("negative value accepted")
	}
}

func TestReadCSV(t *testing.T) {
	const csv = `airline,delay
AA, 12.5
JB,3
AA,7.5
DL,0
JB,5
`
	tab, err := ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if tab.K() != 3 || tab.NumRows() != 5 {
		t.Fatalf("k=%d rows=%d, want 3/5", tab.K(), tab.NumRows())
	}
	if names := tab.Names(); names[0] != "AA" || names[1] != "JB" || names[2] != "DL" {
		t.Fatalf("names %v", names)
	}
	if aa := tab.Column(0); aa[0] != 12.5 || aa[1] != 7.5 {
		t.Fatalf("AA column %v", aa)
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	tab, err := ReadCSV(strings.NewReader("x,1\ny,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 {
		t.Fatalf("rows=%d, want 2 (no header to skip)", tab.NumRows())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("x,1\ny,notanumber\n")); err == nil {
		t.Fatal("bad value row accepted")
	}
	if _, err := ReadCSV(strings.NewReader("justonefield\n")); err == nil {
		t.Fatal("short record accepted")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestTableSamplingEndToEnd(t *testing.T) {
	// A table-backed universe behaves like any slice universe under the
	// sampler, block draws included.
	b := NewTableBuilder()
	r := xrand.New(5)
	for i := 0; i < 3000; i++ {
		b.Add("lo", 10+r.Float64())
		b.Add("hi", 60+r.Float64())
	}
	tab, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	u, err := tab.Universe(0)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(u, xrand.New(6), true)
	buf := make([]float64, 128)
	s.DrawBatch(0, buf)
	for _, v := range buf {
		if v < 10 || v >= 11 {
			t.Fatalf("lo draw %v outside population range", v)
		}
	}
	if s.Count(0) != 128 {
		t.Fatalf("count %d, want 128", s.Count(0))
	}
}
