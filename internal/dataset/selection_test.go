package dataset

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/xrand"
)

// filterTestTable builds a small table with one extra column: values count
// 0..n-1 per group, dist = 10*value.
func filterTestTable(t *testing.T, sizes map[string]int) *Table {
	t.Helper()
	b := NewTableBuilderColumns("delay", "dist")
	for _, name := range []string{"a", "b", "c"} {
		n, ok := sizes[name]
		if !ok {
			continue
		}
		for i := 0; i < n; i++ {
			if err := b.AddRow(name, float64(i), float64(10*i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	tab, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestPredicateOps(t *testing.T) {
	cases := []struct {
		op   PredicateOp
		v, c float64
		want bool
	}{
		{OpLT, 1, 2, true}, {OpLT, 2, 2, false},
		{OpLE, 2, 2, true}, {OpLE, 3, 2, false},
		{OpGT, 3, 2, true}, {OpGT, 2, 2, false},
		{OpGE, 2, 2, true}, {OpGE, 1, 2, false},
		{OpEQ, 2, 2, true}, {OpEQ, 1, 2, false},
		{OpNE, 1, 2, true}, {OpNE, 2, 2, false},
	}
	for _, c := range cases {
		if got := c.op.eval(c.v, c.c); got != c.want {
			t.Errorf("%v.eval(%v, %v) = %v, want %v", c.op, c.v, c.c, got, c.want)
		}
	}
}

func TestFilterMatchesBruteForce(t *testing.T) {
	tab := filterTestTable(t, map[string]int{"a": 200, "b": 50, "c": 120})
	preds := []Predicate{
		{Column: "delay", Op: OpGE, Value: 10},
		{Column: "dist", Op: OpLT, Value: 900},
	}
	v, err := tab.Filter(preds...)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force per group: values i with i >= 10 && 10i < 900 → 10..89,
	// clamped to the group size.
	wantCount := func(n int) int {
		c := 0
		for i := 0; i < n; i++ {
			if i >= 10 && 10*i < 900 {
				c++
			}
		}
		return c
	}
	sizes := []int{200, 50, 120}
	names := []string{"a", "b", "c"}
	if v.K() != 3 {
		t.Fatalf("view has %d groups, want 3: %v", v.K(), v.Names())
	}
	for i, g := range v.Groups() {
		if g.Name() != names[i] {
			t.Fatalf("group %d is %q, want %q", i, g.Name(), names[i])
		}
		want := wantCount(sizes[i])
		if int(g.Size()) != want {
			t.Fatalf("group %q selected %d rows, want %d", g.Name(), g.Size(), want)
		}
		// TrueMean over selection: mean of the surviving integers.
		sum, n := 0.0, 0
		for j := 0; j < sizes[i]; j++ {
			if j >= 10 && 10*j < 900 {
				sum += float64(j)
				n++
			}
		}
		if got := g.TrueMean(); got != sum/float64(n) {
			t.Fatalf("group %q mean %v, want %v", g.Name(), got, sum/float64(n))
		}
	}
	if v.NumRows() != int64(wantCount(200)+wantCount(50)+wantCount(120)) {
		t.Fatalf("view rows %d", v.NumRows())
	}
	if v.MaxValue() != 89 {
		t.Fatalf("view max %v, want 89", v.MaxValue())
	}
}

func TestFilterGroupInclusionUsesIndexPath(t *testing.T) {
	tab := filterTestTable(t, map[string]int{"a": 30, "b": 30, "c": 30})
	v, err := tab.Filter(Predicate{Groups: []string{"c", "a"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Names(); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("names %v, want [a c] in table order", got)
	}
	// Pure inclusion keeps whole groups as zero-copy table views.
	for _, g := range v.Groups() {
		tg, ok := g.(*TableGroup)
		if !ok {
			t.Fatalf("inclusion-only group is %T, want *TableGroup (no selection vector)", g)
		}
		if tg.Size() != 30 {
			t.Fatalf("group %q size %d", tg.Name(), tg.Size())
		}
	}
	// Intersecting inclusion lists.
	v2, err := tab.Filter(Predicate{Groups: []string{"c", "a"}}, Predicate{Groups: []string{"c", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := v2.Names(); len(got) != 1 || got[0] != "c" {
		t.Fatalf("intersection %v, want [c]", got)
	}
}

func TestFilterDenseVsSparseRepresentation(t *testing.T) {
	b := NewTableBuilder()
	for i := 0; i < 10_000; i++ {
		b.Add("g", float64(i%100))
	}
	tab, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Half the rows survive: dense → bitmap.
	dense, err := tab.Filter(Predicate{Op: OpLT, Value: 50})
	if err != nil {
		t.Fatal(err)
	}
	fg := dense.Groups()[0].(*FilteredGroup)
	if fg.sel.bits == nil || fg.sel.idx != nil {
		t.Fatalf("dense selection (density 0.5) should be bitmap-backed")
	}
	if fg.sel.count != 5000 {
		t.Fatalf("dense count %d", fg.sel.count)
	}
	// One row in a hundred: sparse → index slice.
	sparse, err := tab.Filter(Predicate{Op: OpEQ, Value: 7})
	if err != nil {
		t.Fatal(err)
	}
	fg = sparse.Groups()[0].(*FilteredGroup)
	if fg.sel.idx == nil || fg.sel.bits != nil {
		t.Fatalf("sparse selection (density 0.01) should be index-slice-backed")
	}
	if fg.sel.count != 100 {
		t.Fatalf("sparse count %d", fg.sel.count)
	}
}

// TestFilteredDrawsMatchPrefiltered pins the bit-for-bit equivalence the
// engine's Where guarantee rests on: a FilteredGroup consumes its RNG
// stream exactly as a SliceGroup holding the pre-filtered values would,
// in every draw mode (scalar/batch × with/without replacement).
func TestFilteredDrawsMatchPrefiltered(t *testing.T) {
	tab := filterTestTable(t, map[string]int{"a": 500})
	v, err := tab.Filter(Predicate{Column: "dist", Op: OpGE, Value: 1000}, Predicate{Op: OpLT, Value: 300})
	if err != nil {
		t.Fatal(err)
	}
	fg := v.Groups()[0].(*FilteredGroup)
	var kept []float64
	for i := 0; i < 500; i++ {
		if 10*i >= 1000 && i < 300 {
			kept = append(kept, float64(i))
		}
	}
	ref := NewSliceGroup("ref", kept)
	if fg.Size() != ref.Size() {
		t.Fatalf("sizes differ: %d vs %d", fg.Size(), ref.Size())
	}
	if fg.TrueMean() != ref.TrueMean() {
		t.Fatalf("means differ: %v vs %v", fg.TrueMean(), ref.TrueMean())
	}

	// Scalar with replacement.
	r1, r2 := xrand.New(42), xrand.New(42)
	for i := 0; i < 1000; i++ {
		if a, b := fg.Draw(r1), ref.Draw(r2); a != b {
			t.Fatalf("draw %d: %v vs %v", i, a, b)
		}
	}
	// Block with replacement.
	buf1, buf2 := make([]float64, 257), make([]float64, 257)
	fg.DrawBatch(r1, buf1)
	ref.DrawBatch(r2, buf2)
	for i := range buf1 {
		if buf1[i] != buf2[i] {
			t.Fatalf("batch draw %d: %v vs %v", i, buf1[i], buf2[i])
		}
	}
	// Scalar without replacement, through exhaustion.
	fg2 := v.View()[0].(*FilteredGroup)
	ref2 := NewSliceGroup("ref", kept)
	r1, r2 = xrand.New(7), xrand.New(7)
	for {
		a, okA := fg2.DrawWithoutReplacement(r1)
		b, okB := ref2.DrawWithoutReplacement(r2)
		if okA != okB {
			t.Fatalf("exhaustion mismatch")
		}
		if !okA {
			break
		}
		if a != b {
			t.Fatalf("wor draw: %v vs %v", a, b)
		}
	}
	// Block without replacement, odd block size to hit the partial tail.
	fg3 := v.View()[0].(*FilteredGroup)
	ref3 := NewSliceGroup("ref", kept)
	r1, r2 = xrand.New(9), xrand.New(9)
	for {
		n1 := fg3.DrawBatchWithoutReplacement(r1, buf1[:33])
		n2 := ref3.DrawBatchWithoutReplacement(r2, buf2[:33])
		if n1 != n2 {
			t.Fatalf("wor batch counts: %d vs %d", n1, n2)
		}
		for i := 0; i < n1; i++ {
			if buf1[i] != buf2[i] {
				t.Fatalf("wor batch draw: %v vs %v", buf1[i], buf2[i])
			}
		}
		if n1 < 33 {
			break
		}
	}
}

// TestFilteredViewExhaustion: a selection that shrinks a group below the
// draw budget must exhaust cleanly through the sampler — falling back to
// with-replacement draws and flagging Exhausted — exactly like a small
// materialized group.
func TestFilteredViewExhaustion(t *testing.T) {
	tab := filterTestTable(t, map[string]int{"a": 1000})
	v, err := tab.Filter(Predicate{Op: OpLT, Value: 7}) // 7 survivors of 1000
	if err != nil {
		t.Fatal(err)
	}
	u, err := v.Universe(0)
	if err != nil {
		t.Fatal(err)
	}
	if u.Groups[0].Size() != 7 {
		t.Fatalf("filtered size %d, want 7", u.Groups[0].Size())
	}
	s := NewSampler(u, xrand.New(3), true)
	seen := map[float64]int{}
	for i := 0; i < 7; i++ {
		seen[s.Draw(0)]++
	}
	if len(seen) != 7 {
		t.Fatalf("first 7 without-replacement draws hit %d distinct values, want 7", len(seen))
	}
	if s.Exhausted(0) {
		t.Fatal("exhausted before the population ran out")
	}
	// The 8th draw falls back to with-replacement and flags exhaustion.
	v8 := s.Draw(0)
	if !s.Exhausted(0) {
		t.Fatal("over-budget draw did not flag exhaustion")
	}
	if seen[v8] == 0 {
		t.Fatalf("fallback draw %v is outside the selection", v8)
	}
	if s.Count(0) != 8 {
		t.Fatalf("accounting %d, want 8", s.Count(0))
	}
	// Batch path across the exhaustion boundary, on a fresh view.
	s2 := NewSampler(&Universe{Groups: v.View(), C: u.C}, xrand.New(4), true)
	buf := make([]float64, 20)
	s2.DrawBatch(0, buf)
	if !s2.Exhausted(0) {
		t.Fatal("batch over-budget draw did not flag exhaustion")
	}
	for i, x := range buf {
		if x >= 7 || x < 0 {
			t.Fatalf("batch draw %d = %v outside the selection", i, x)
		}
	}
}

func TestFilterAllPassKeepsZeroCopyViews(t *testing.T) {
	tab := filterTestTable(t, map[string]int{"a": 40, "b": 40})
	v, err := tab.Filter(Predicate{Op: OpGE, Value: 0}) // all rows pass
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range v.Groups() {
		tg, ok := g.(*TableGroup)
		if !ok {
			t.Fatalf("all-pass group is %T, want *TableGroup", g)
		}
		if &tg.Values()[0] != &tab.Column(i)[0] {
			t.Fatal("all-pass group copied the column")
		}
	}
}

func TestFilterErrors(t *testing.T) {
	tab := filterTestTable(t, map[string]int{"a": 10})
	if _, err := tab.Filter(Predicate{Column: "nosuch", Op: OpGT, Value: 1}); err == nil ||
		!strings.Contains(err.Error(), "unknown column") {
		t.Fatalf("unknown column: %v", err)
	}
	if _, err := tab.Filter(Predicate{Groups: []string{"zz"}}); err == nil ||
		!strings.Contains(err.Error(), "unknown group") {
		t.Fatalf("unknown group: %v", err)
	}
	if _, err := tab.Filter(Predicate{Op: OpGT, Value: 1e9}); err == nil ||
		!strings.Contains(err.Error(), "matches no rows") {
		t.Fatalf("empty filter: %v", err)
	}
	if _, err := tab.Filter(Predicate{Op: PredicateOp(99), Value: 1}); err == nil ||
		!strings.Contains(err.Error(), "unknown operator") {
		t.Fatalf("bad op: %v", err)
	}
}

func TestFilterDropsEmptiedGroups(t *testing.T) {
	tab := filterTestTable(t, map[string]int{"a": 5, "b": 100}) // a holds 0..4
	v, err := tab.Filter(Predicate{Op: OpGE, Value: 50})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Names(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("names %v, want [b] (a emptied)", got)
	}
}

func TestViewViewIndependentDrawState(t *testing.T) {
	tab := filterTestTable(t, map[string]int{"a": 100})
	v, err := tab.Filter(Predicate{Op: OpLT, Value: 50})
	if err != nil {
		t.Fatal(err)
	}
	g1 := v.View()[0].(*FilteredGroup)
	g2 := v.View()[0].(*FilteredGroup)
	r := xrand.New(1)
	for i := 0; i < 10; i++ {
		g1.DrawWithoutReplacement(r)
	}
	if g1.next != 10 || g2.next != 0 {
		t.Fatalf("views share draw state: %d/%d", g1.next, g2.next)
	}
	if g1.sel != g2.sel {
		t.Fatal("views should share the selection vector")
	}
}

func TestFingerprintCanonical(t *testing.T) {
	a := []Predicate{{Column: "dist", Op: OpGE, Value: 5}, {Groups: []string{"x", "y"}}}
	b := []Predicate{{Groups: []string{"y", "x"}}, {Column: "dist", Op: OpGE, Value: 5}}
	if FingerprintPredicates(a) != FingerprintPredicates(b) {
		t.Fatal("fingerprint should be order-insensitive over conjuncts and group lists")
	}
	c := []Predicate{{Column: "dist", Op: OpGT, Value: 5}, {Groups: []string{"x", "y"}}}
	if FingerprintPredicates(a) == FingerprintPredicates(c) {
		t.Fatal("fingerprint must distinguish operators")
	}
	d := []Predicate{{Column: "dist", Op: OpGE, Value: 5.0000001}, {Groups: []string{"x", "y"}}}
	if FingerprintPredicates(a) == FingerprintPredicates(d) {
		t.Fatal("fingerprint must distinguish constants")
	}
}

func TestTableExtraColumnsIngestion(t *testing.T) {
	b := NewTableBuilderColumns("delay", "dist", "hops")
	if err := b.AddRow("a", 1, 100, 2); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRow("b", 2, 200, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRow("a", 3, 300, 4); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRow("a", 4, 400); err == nil {
		t.Fatal("short extras accepted")
	}
	tab, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tab.ValueColumnName() != "delay" {
		t.Fatalf("value name %q", tab.ValueColumnName())
	}
	if names := tab.ExtraColumnNames(); len(names) != 2 || names[0] != "dist" || names[1] != "hops" {
		t.Fatalf("extra names %v", names)
	}
	// Extras pack row-aligned with the value column: group a = rows 0,1
	// (values 1,3), group b = row 2 (value 2).
	dist, ok := tab.ExtraColumn("dist")
	if !ok {
		t.Fatal("dist column missing")
	}
	if dist[0] != 100 || dist[1] != 300 || dist[2] != 200 {
		t.Fatalf("dist packing %v, want [100 300 200]", dist)
	}
	if _, ok := tab.ExtraColumn("nosuch"); ok {
		t.Fatal("phantom extra column")
	}
	// The value column may be addressed by its ingested name.
	v, err := tab.Filter(Predicate{Column: "delay", Op: OpGE, Value: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v.NumRows() != 2 {
		t.Fatalf("filter by value name selected %d rows", v.NumRows())
	}
}

func TestReadCSVExtraColumns(t *testing.T) {
	const csv = `airline,delay,dist
AA,12.5,2475
JB, 3, 1069
AA,7.5,733
DL,0,2182
`
	tab, err := ReadCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if tab.ValueColumnName() != "delay" {
		t.Fatalf("value name %q", tab.ValueColumnName())
	}
	if names := tab.ExtraColumnNames(); len(names) != 1 || names[0] != "dist" {
		t.Fatalf("extra names %v", names)
	}
	v, err := tab.Filter(Predicate{Column: "dist", Op: OpGE, Value: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if v.NumRows() != 2 {
		t.Fatalf("long-haul filter selected %d rows, want 2", v.NumRows())
	}
	if got := v.Names(); len(got) != 2 || got[0] != "AA" || got[1] != "DL" {
		t.Fatalf("long-haul groups %v", got)
	}
	// A declared extra that fails to parse is an error.
	if _, err := ReadCSV(strings.NewReader("airline,delay,dist\nAA,1,far\n")); err == nil {
		t.Fatal("bad extra value accepted")
	}
	// A record missing a declared extra field is an error.
	if _, err := ReadCSV(strings.NewReader("airline,delay,dist\nAA,1\n")); err == nil {
		t.Fatal("missing extra field accepted")
	}
	// Headerless extra fields keep the legacy behavior: ignored.
	plain, err := ReadCSV(strings.NewReader("AA,1,junk\nJB,2,alsojunk\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.ExtraColumnNames()) != 0 || plain.NumRows() != 2 {
		t.Fatalf("headerless extras should be ignored: %v, %d rows", plain.ExtraColumnNames(), plain.NumRows())
	}
}

func TestReadCSVExtraColumnsShardedIdentical(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("airline,delay,dist\n")
	r := xrand.New(11)
	names := []string{"AA", "JB", "DL", "WN", "UA"}
	for i := 0; i < 4000; i++ {
		name := names[r.Intn(len(names))]
		sb.WriteString(name)
		sb.WriteString(",")
		sb.WriteString(formatFloat(r.Float64() * 100))
		sb.WriteString(",")
		sb.WriteString(formatFloat(r.Float64() * 3000))
		sb.WriteString("\n")
	}
	payload := sb.String()
	seq, err := ReadCSVWorkers(strings.NewReader(payload), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		par, err := ReadCSVWorkers(strings.NewReader(payload), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !equalStrings(par.ExtraColumnNames(), seq.ExtraColumnNames()) {
			t.Fatalf("workers=%d: extra names %v vs %v", workers, par.ExtraColumnNames(), seq.ExtraColumnNames())
		}
		for e := range seq.extras {
			if len(par.extras[e]) != len(seq.extras[e]) {
				t.Fatalf("workers=%d: extra %d length differs", workers, e)
			}
			for i := range seq.extras[e] {
				if par.extras[e][i] != seq.extras[e][i] {
					t.Fatalf("workers=%d: extra %d row %d differs", workers, e, i)
				}
			}
		}
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', 4, 64)
}
