// Columnar (group, value) storage. A Table packs every group's values
// contiguously into one dense column so the batched draw path runs over
// cache-friendly memory, and carries the GroupBy bookkeeping (first-seen
// group order, offsets, value range) that ingestion from raw rows or CSV
// needs. Tables are the bridge between real workloads — log lines, query
// results, CSV exports — and the sampling algorithms, which consume them
// as zero-copy SliceGroup views over column segments.
//
// Ingestion is sharded: BuildTable and ReadCSV split their input into
// per-worker shards, stage each shard's groups in parallel, and merge the
// shards in input order. The merge is stable — group order is the global
// first-seen order and every group's rows keep their file order — so the
// produced table is byte-identical to a sequential build no matter how
// many workers ran or in what order shards completed.
package dataset

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/par"
)

// Row is one raw record of a GROUP BY ingestion: a group label and the
// value the query aggregates.
type Row struct {
	Group string
	Value float64
}

// Table is a columnar (group, value) store: the values of group i occupy
// col[offsets[i]:offsets[i+1]], groups ordered by first appearance in the
// ingested rows. A table may additionally carry named extra numeric
// columns, row-aligned with the value column and packed in the same group
// order; they exist to be filtered on (Filter / Query.Where), never
// aggregated. Construct with a TableBuilder, BuildTable, or ReadCSV.
type Table struct {
	names   []string
	col     []float64
	offsets []int
	groups  []Group
	minV    float64
	maxV    float64

	valueName  string      // ingested name of the value column ("value" default)
	extraNames []string    // extra column names, in ingestion order
	extras     [][]float64 // extras[e] is row-aligned with col

	// bcols replaces col/extras for compressed (v2) segment tables:
	// bcols[0] is the value column, bcols[1+e] extra e, all decoding
	// through one shared block cache. Column and ExtraColumn materialize
	// on demand; draw paths read through per-group block windows.
	bcols []*blockColumn
}

// K returns the number of distinct groups.
func (t *Table) K() int { return len(t.names) }

// NumRows returns the total number of ingested rows.
func (t *Table) NumRows() int {
	if t.col == nil && len(t.offsets) > 0 {
		return t.offsets[len(t.offsets)-1]
	}
	return len(t.col)
}

// Names returns the group labels in first-seen order. The slice is owned
// by the table.
func (t *Table) Names() []string { return t.names }

// Column returns group i's packed values. On plain tables the slice
// aliases the table's column storage (callers must not mutate it); on
// compressed segment tables it is materialized by decoding the group's
// blocks, so each call allocates — tooling and verification use it, draw
// paths never do.
func (t *Table) Column(i int) []float64 {
	if t.bcols != nil {
		return t.materializeRange(t.bcols[0], t.offsets[i], t.offsets[i+1])
	}
	return t.col[t.offsets[i]:t.offsets[i+1]]
}

// materializeRange decodes rows [lo, hi) of a compressed column into a
// fresh slice. Corrupt blocks degrade to zeros and surface through
// SegmentTable.Err, like every cache read.
func (t *Table) materializeRange(bc *blockColumn, lo, hi int) []float64 {
	out := make([]float64, 0, hi-lo)
	w := newBlockWindow(bc, int64(lo), hi-lo)
	w.scan(func(v float64) { out = append(out, v) })
	return out
}

// MinValue and MaxValue bound the ingested values (both 0 for an empty
// table, which builders reject anyway).
func (t *Table) MinValue() float64 { return t.minV }

// MaxValue returns the largest ingested value.
func (t *Table) MaxValue() float64 { return t.maxV }

// ValueColumnName returns the ingested name of the aggregated value column
// ("value" when the source carried no header). Predicates may reference the
// value column by this name, by "value", or by the empty string.
func (t *Table) ValueColumnName() string { return t.valueName }

// ExtraColumnNames returns the names of the table's extra numeric columns,
// in ingestion order. The slice is owned by the table.
func (t *Table) ExtraColumnNames() []string { return t.extraNames }

// ExtraColumn returns the named extra column, row-aligned with the packed
// value column (group i's rows occupy the same offsets). The slice aliases
// table storage; callers must not mutate it.
func (t *Table) ExtraColumn(name string) ([]float64, bool) {
	for e, n := range t.extraNames {
		if n == name {
			if t.bcols != nil {
				return t.materializeRange(t.bcols[1+e], 0, t.NumRows()), true
			}
			return t.extras[e], true
		}
	}
	return nil, false
}

// Groups returns one sampling group per distinct label, in first-seen
// order. The groups are zero-copy views over the table's column and are
// built once; repeated calls return the same slice. Groups carry
// without-replacement draw state, so this one shared set must not be
// sampled by two queries at the same time — concurrent queries take a
// View each.
func (t *Table) Groups() []Group { return t.groups }

// View returns a fresh set of sampling groups over the table's columns.
// The views share the packed value storage (and the precomputed means)
// with the table — no rows are copied — but each call allocates its own
// without-replacement draw state, so any number of concurrent queries can
// run against one shared table by taking one View per query.
func (t *Table) View() []Group {
	views := make([]Group, len(t.groups))
	for i, g := range t.groups {
		tg := *(g.(*TableGroup))
		tg.resetView()
		views[i] = &tg
	}
	return views
}

// TableGroup is the concrete group type a Table produces: a zero-copy
// SliceGroup over the group's packed column segment that also knows its
// owning table and position, so the engine can resolve a Query.Where
// filter back to the table's selection layer. It inherits every draw mode
// SliceGroup supports (batched, without-replacement, scannable).
type TableGroup struct {
	SliceGroup
	table *Table
	index int
}

// Table returns the owning table.
func (g *TableGroup) Table() *Table { return g.table }

// GroupIndex returns the group's position in the table's dictionary.
func (g *TableGroup) GroupIndex() int { return g.index }

// TableBacked is implemented by groups that can be traced back to a
// columnar Table — the prerequisite for predicate filtering, which needs
// the table's columns and group index rather than just the sample stream.
type TableBacked interface {
	Group
	// Table returns the owning table.
	Table() *Table
	// GroupIndex returns the group's position in the table's dictionary.
	GroupIndex() int
}

// Universe wraps the table's groups with the value bound c. c == 0 infers
// the bound from the ingested maximum (1 when all values are zero, so the
// bound stays positive). Negative values are rejected at build time, so a
// built table always yields a valid universe.
func (t *Table) Universe(c float64) (*Universe, error) {
	if c < 0 {
		return nil, fmt.Errorf("dataset: table bound must be non-negative, got %v", c)
	}
	if c == 0 {
		c = t.maxV
		if c == 0 {
			c = 1
		}
	} else if t.maxV > c {
		return nil, fmt.Errorf("dataset: table holds value %v above the declared bound %v", t.maxV, c)
	}
	return NewUniverse(c, t.groups...), nil
}

// TableBuilder accumulates raw (group, value) rows and groups them into a
// columnar Table on Build. The zero value is not usable; construct with
// NewTableBuilder (plain group,value rows) or NewTableBuilderColumns
// (named value column plus extra filterable columns).
type TableBuilder struct {
	stage tableStage
}

// NewTableBuilder returns an empty builder with no extra columns.
func NewTableBuilder() *TableBuilder { return NewTableBuilderColumns("value") }

// NewTableBuilderColumns returns an empty builder whose rows carry the
// named aggregated value column plus one numeric extra per extraName —
// columns a Filter (Query.Where) can compare against. Rows are added with
// AddRow, whose extras must match extraNames positionally.
func NewTableBuilderColumns(valueName string, extraNames ...string) *TableBuilder {
	return &TableBuilder{stage: newTableStageCols(valueName, extraNames)}
}

// Add ingests one raw row with no extras. It panics if the builder
// declared extra columns — those rows carry more fields; use AddRow.
func (b *TableBuilder) Add(group string, value float64) {
	if err := b.AddRow(group, value); err != nil {
		panic(err.Error())
	}
}

// AddRow ingests one raw row, extras matching the builder's extra columns
// positionally.
func (b *TableBuilder) AddRow(group string, value float64, extras ...float64) error {
	if len(extras) != len(b.stage.extraNames) {
		return fmt.Errorf("dataset: row has %d extra values, builder declared %d extra columns %v",
			len(extras), len(b.stage.extraNames), b.stage.extraNames)
	}
	b.stage.add(group, value, extras)
	return nil
}

// Len returns the number of rows ingested so far.
func (b *TableBuilder) Len() int { return b.stage.rows }

// Build packs the accumulated rows into a Table. The per-group staging
// slices are released; the builder can be reused afterwards (it restarts
// empty, keeping its declared columns). Negative values are rejected
// because every algorithm requires values in [0, c].
func (b *TableBuilder) Build() (*Table, error) {
	t, err := mergeStages([]*tableStage{&b.stage}, 1)
	*b = *NewTableBuilderColumns(b.stage.valueName, b.stage.extraNames...)
	return t, err
}

// tableStage is the per-shard (and per-builder) staging area: rows grouped
// by label in first-seen order, with the value-range bookkeeping the final
// table needs. Every stage of one ingestion shares the same column schema
// (value name plus extra names), fixed at construction.
type tableStage struct {
	index  map[string]int
	names  []string
	cols   [][]float64
	extras [][][]float64 // [group][extra][row], parallel to cols
	rows   int
	minV   float64
	maxV   float64
	neg    bool
	negV   float64

	valueName  string
	extraNames []string
}

func newTableStage() tableStage {
	return newTableStageCols("value", nil)
}

func newTableStageCols(valueName string, extraNames []string) tableStage {
	if valueName == "" {
		valueName = "value"
	}
	return tableStage{index: map[string]int{}, valueName: valueName, extraNames: extraNames}
}

// add ingests one row; extras must be len(extraNames) long (callers
// validate — AddRow at the public boundary, the CSV parsers by schema).
func (s *tableStage) add(group string, value float64, extras []float64) {
	i, ok := s.index[group]
	if !ok {
		i = len(s.names)
		s.index[group] = i
		s.names = append(s.names, group)
		s.cols = append(s.cols, nil)
		if len(s.extraNames) > 0 {
			s.extras = append(s.extras, make([][]float64, len(s.extraNames)))
		}
	}
	s.cols[i] = append(s.cols[i], value)
	for e, v := range extras {
		s.extras[i][e] = append(s.extras[i][e], v)
	}
	if s.rows == 0 || value < s.minV {
		s.minV = value
	}
	if s.rows == 0 || value > s.maxV {
		s.maxV = value
	}
	if value < 0 && !s.neg {
		s.neg = true
		s.negV = value
	}
	s.rows++
}

// mergeStages packs input-ordered shard stages into one Table. Iterating
// shards in input order makes the merge stable: the global group order is
// the true first-seen order over the concatenated input, and each group's
// values are concatenated in input order, so the result does not depend on
// how the shards were scheduled. Column packing and per-group mean
// computation fan out over workers (group destinations are disjoint).
func mergeStages(stages []*tableStage, workers int) (*Table, error) {
	total := 0
	for _, s := range stages {
		total += s.rows
	}
	if total == 0 {
		return nil, fmt.Errorf("dataset: table has no rows")
	}
	for _, s := range stages {
		if s.neg {
			return nil, fmt.Errorf("dataset: table holds negative value %v; shift values into [0, c]", s.negV)
		}
	}

	t := &Table{valueName: stages[0].valueName, extraNames: stages[0].extraNames}
	for _, s := range stages[1:] {
		if s.valueName != t.valueName || !equalStrings(s.extraNames, t.extraNames) {
			return nil, fmt.Errorf("dataset: ingestion shards disagree on column schema (%q%v vs %q%v)",
				t.valueName, t.extraNames, s.valueName, s.extraNames)
		}
	}
	seeded := false
	for _, s := range stages {
		if s.rows == 0 {
			continue
		}
		if !seeded {
			t.minV, t.maxV = s.minV, s.maxV
			seeded = true
			continue
		}
		if s.minV < t.minV {
			t.minV = s.minV
		}
		if s.maxV > t.maxV {
			t.maxV = s.maxV
		}
	}

	// Global first-seen group order, and each shard's local→global map.
	index := map[string]int{}
	locals := make([][]int, len(stages))
	lengths := []int{}
	for si, s := range stages {
		locals[si] = make([]int, len(s.names))
		for li, name := range s.names {
			gi, ok := index[name]
			if !ok {
				gi = len(t.names)
				index[name] = gi
				t.names = append(t.names, name)
				lengths = append(lengths, 0)
			}
			locals[si][li] = gi
			lengths[gi] += len(s.cols[li])
		}
	}

	t.offsets = make([]int, len(t.names)+1)
	for gi, n := range lengths {
		t.offsets[gi+1] = t.offsets[gi] + n
	}
	t.col = make([]float64, total)
	t.extras = make([][]float64, len(t.extraNames))
	for e := range t.extras {
		t.extras[e] = make([]float64, total)
	}
	t.groups = make([]Group, len(t.names))

	// Lay out every (shard, local group) segment: walking shards in input
	// order hands each segment the next destination within its group's
	// column, which is exactly the stable merge — and makes the pack one
	// linear pass over the segments instead of a per-group rescan of every
	// shard (high-cardinality ingests have K within a constant factor of
	// the row count, so anything superlinear in K is superlinear in rows).
	type segment struct{ si, li, dst int }
	var segs []segment
	next := append([]int(nil), t.offsets[:len(t.names)]...)
	for si, s := range stages {
		for li, gi := range locals[si] {
			segs = append(segs, segment{si, li, next[gi]})
			next[gi] += len(s.cols[li])
		}
	}

	// Copy segments, then build the group views, each in parallel: the
	// segment destinations are disjoint by construction, and every group
	// owns a disjoint column slice, so neither fan-out needs locks.
	par.For(len(segs), workers, func(j int) {
		sg := segs[j]
		s := stages[sg.si]
		copy(t.col[sg.dst:], s.cols[sg.li])
		for e := range t.extras {
			copy(t.extras[e][sg.dst:], s.extras[sg.li][e])
		}
	})
	par.For(len(t.names), workers, func(gi int) {
		t.groups[gi] = &TableGroup{
			SliceGroup: *NewSliceGroup(t.names[gi], t.col[t.offsets[gi]:t.offsets[gi+1]]),
			table:      t,
			index:      gi,
		}
	})
	return t, nil
}

// equalStrings reports element-wise equality of two string slices.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// autoShardMinRows and autoShardMinBytes gate auto-parallel ingestion:
// below these sizes the shard bookkeeping costs more than it saves, so
// workers-0 calls stay sequential. Explicit worker counts always shard.
const (
	autoShardMinRows  = 1 << 15
	autoShardMinBytes = 1 << 19
)

// BuildTable groups raw rows by label (first-seen order) into a columnar
// Table — the one-call ingestion path for in-memory row sets. Large inputs
// are sharded across all CPUs; the result is identical to a sequential
// build (see BuildTableWorkers).
func BuildTable(rows []Row) (*Table, error) {
	return BuildTableWorkers(rows, 0)
}

// BuildTableWorkers is BuildTable with an explicit parallelism bound.
// workers == 0 uses all CPUs for large inputs and stays sequential for
// small ones; workers == 1 forces a sequential build; larger values shard
// the rows across that many goroutines. The produced table is byte-
// identical for every workers value.
func BuildTableWorkers(rows []Row, workers int) (*Table, error) {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
		if len(rows) < autoShardMinRows {
			workers = 1
		}
	}
	nshards := workers
	if nshards > len(rows) {
		nshards = len(rows)
	}
	if nshards <= 1 {
		s := newTableStage()
		for _, row := range rows {
			s.add(row.Group, row.Value, nil)
		}
		return mergeStages([]*tableStage{&s}, 1)
	}
	stages := make([]*tableStage, nshards)
	par.For(nshards, workers, func(si int) {
		lo := si * len(rows) / nshards
		hi := (si + 1) * len(rows) / nshards
		s := newTableStage()
		for _, row := range rows[lo:hi] {
			s.add(row.Group, row.Value, nil)
		}
		stages[si] = &s
	})
	return mergeStages(stages, workers)
}

// ReadCSV ingests group,value records from r into a Table. The first
// column is the group label and the second the numeric value. A header row
// is detected automatically (its value column does not parse as a number)
// and fixes the column schema: field 2's name becomes the table's value
// column name, and every named field past it declares an extra numeric
// column — row-aligned, filterable via Table.Filter / Query.Where — whose
// values must then parse on every record. Headerless inputs keep the
// legacy shape: "value" plus ignored extra fields. Records may vary in
// width but need at least two fields (plus any header-declared extras).
// Large inputs are parsed in parallel shards; the result is identical to a
// sequential read (see ReadCSVWorkers).
func ReadCSV(r io.Reader) (*Table, error) {
	return ReadCSVWorkers(r, 0)
}

// ReadCSVWorkers is ReadCSV with an explicit parallelism bound: the input
// is split at record boundaries into shards parsed concurrently, then
// merged in file order, so the produced table is byte-identical for every
// workers value — per-group row order included. workers == 0 uses all
// CPUs for large inputs; workers == 1 forces the sequential path. Inputs
// containing quoted fields fall back to the sequential parser (a quoted
// field may hide a record separator, so byte-split points cannot be
// trusted), as does any input a shard fails to parse — the sequential
// rerun reports the canonical error with its record number.
func ReadCSVWorkers(r io.Reader, workers int) (*Table, error) {
	if workers == 1 {
		// Explicit sequential parse streams straight from r — no whole-
		// input buffer.
		return readCSVSequential(r)
	}
	if workers == 0 {
		// Auto mode peeks up to the sharding threshold before committing
		// memory: small inputs stream through the sequential parser
		// without ever being slurped whole; anything larger is worth both
		// the buffer (sharding needs byte-splittable input) and the fan-
		// out.
		head := make([]byte, autoShardMinBytes)
		n, err := io.ReadFull(r, head)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return readCSVSequential(bytes.NewReader(head[:n]))
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv: %w", err)
		}
		rest, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("dataset: csv: %w", err)
		}
		return readCSVData(append(head[:n], rest...), runtime.GOMAXPROCS(0))
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("dataset: csv: %w", err)
	}
	return readCSVData(data, workers)
}

// readCSVData parses in-memory CSV bytes, sharding when workers and the
// content allow it and falling back to the sequential parser otherwise.
func readCSVData(data []byte, workers int) (*Table, error) {
	if workers > 1 && !bytes.ContainsRune(data, '"') {
		if t, ok := readCSVSharded(data, workers); ok {
			return t, nil
		}
	}
	return readCSVSequential(bytes.NewReader(data))
}

// csvSchema inspects the first CSV record: it is a header iff it carries a
// value field that does not parse as a number. A header names the value
// column (field 1) and declares one extra filterable column per non-empty
// field past it; extraFields maps each declared extra to its CSV field
// index. Headerless inputs keep the legacy schema — "value" plus ignored
// extra fields.
func csvSchema(rec []string) (valueName string, extraNames []string, extraFields []int, isHeader bool) {
	valueName = "value"
	if len(rec) < 2 {
		return valueName, nil, nil, false
	}
	if _, err := strconv.ParseFloat(strings.TrimSpace(rec[1]), 64); err == nil {
		return valueName, nil, nil, false
	}
	if name := strings.TrimSpace(rec[1]); name != "" {
		valueName = name
	}
	for f := 2; f < len(rec); f++ {
		name := strings.TrimSpace(rec[f])
		if name == "" {
			continue
		}
		extraNames = append(extraNames, name)
		extraFields = append(extraFields, f)
	}
	return valueName, extraNames, extraFields, true
}

// csvExtras parses the extra-column fields of one record into dst (reused
// across records; the stage copies the values out).
func csvExtras(rec []string, extraFields []int, extraNames []string, line int, dst []float64) ([]float64, error) {
	if len(extraFields) == 0 {
		return nil, nil
	}
	dst = dst[:0]
	for e, f := range extraFields {
		if f >= len(rec) {
			return nil, fmt.Errorf("dataset: csv record %d has %d fields, but the header declares column %q in field %d",
				line, len(rec), extraNames[e], f+1)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rec[f]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: csv record %d: bad %s value %q", line, extraNames[e], rec[f])
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// readCSVSequential is the reference parser: one pass, exact record
// numbers in errors.
func readCSVSequential(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	s := newTableStage()
	var extraFields []int
	var scratch []float64
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv: %w", err)
		}
		line++
		if line == 1 {
			// The first record fixes the column schema for the whole file.
			valueName, extraNames, fields, isHeader := csvSchema(rec)
			s = newTableStageCols(valueName, extraNames)
			extraFields = fields
			scratch = make([]float64, 0, len(fields))
			if isHeader {
				continue
			}
		}
		if len(rec) < 2 {
			return nil, fmt.Errorf("dataset: csv record %d has %d fields, want group,value", line, len(rec))
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rec[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: csv record %d: bad value %q", line, rec[1])
		}
		extras, err := csvExtras(rec, extraFields, s.extraNames, line, scratch)
		if err != nil {
			return nil, err
		}
		s.add(strings.TrimSpace(rec[0]), v, extras)
	}
	return mergeStages([]*tableStage{&s}, 1)
}

// readCSVSharded parses quote-free CSV bytes in parallel shards split at
// newline boundaries. It reports ok=false when any shard hits a malformed
// record, in which case the caller redoes the sequential pass to produce
// the canonical error.
func readCSVSharded(data []byte, workers int) (*Table, bool) {
	// Replicate the sequential header rule up front: the first record is a
	// header iff its value column does not parse, and a header fixes the
	// column schema (value name, extra filterable columns) every shard
	// stage must share.
	head := csv.NewReader(bytes.NewReader(data))
	head.FieldsPerRecord = -1
	head.TrimLeadingSpace = true
	rec, err := head.Read()
	if err != nil || len(rec) < 2 {
		return nil, false
	}
	valueName, extraNames, extraFields, isHeader := csvSchema(rec)
	if isHeader {
		data = data[head.InputOffset():]
	}

	// Shard at newline boundaries. Quote-free CSV cannot carry a record
	// separator inside a field, so every '\n' ends a record.
	bounds := []int{0}
	for s := 1; s < workers; s++ {
		target := s * len(data) / workers
		prev := bounds[len(bounds)-1]
		if target < prev {
			target = prev
		}
		nl := bytes.IndexByte(data[target:], '\n')
		if nl < 0 {
			break
		}
		cut := target + nl + 1
		if cut > prev && cut < len(data) {
			bounds = append(bounds, cut)
		}
	}
	bounds = append(bounds, len(data))

	nshards := len(bounds) - 1
	stages := make([]*tableStage, nshards)
	failed := make([]bool, nshards)
	par.For(nshards, workers, func(si int) {
		cr := csv.NewReader(bytes.NewReader(data[bounds[si]:bounds[si+1]]))
		cr.FieldsPerRecord = -1
		cr.TrimLeadingSpace = true
		s := newTableStageCols(valueName, extraNames)
		scratch := make([]float64, 0, len(extraFields))
		for {
			rec, err := cr.Read()
			if err == io.EOF {
				break
			}
			if err != nil || len(rec) < 2 {
				failed[si] = true
				return
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(rec[1]), 64)
			if err != nil {
				failed[si] = true
				return
			}
			extras, err := csvExtras(rec, extraFields, extraNames, 0, scratch)
			if err != nil {
				failed[si] = true
				return
			}
			s.add(strings.TrimSpace(rec[0]), v, extras)
		}
		stages[si] = &s
	})
	for _, f := range failed {
		if f {
			return nil, false
		}
	}
	t, err := mergeStages(stages, workers)
	if err != nil {
		// Canonical error wording (negative value, empty input) comes from
		// the sequential pass.
		return nil, false
	}
	return t, true
}
