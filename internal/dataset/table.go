// Columnar (group, value) storage. A Table packs every group's values
// contiguously into one dense column so the batched draw path runs over
// cache-friendly memory, and carries the GroupBy bookkeeping (first-seen
// group order, offsets, value range) that ingestion from raw rows or CSV
// needs. Tables are the bridge between real workloads — log lines, query
// results, CSV exports — and the sampling algorithms, which consume them
// as zero-copy SliceGroup views over column segments.
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Row is one raw record of a GROUP BY ingestion: a group label and the
// value the query aggregates.
type Row struct {
	Group string
	Value float64
}

// Table is a columnar (group, value) store: the values of group i occupy
// col[offsets[i]:offsets[i+1]], groups ordered by first appearance in the
// ingested rows. Construct with a TableBuilder, BuildTable, or ReadCSV.
type Table struct {
	names   []string
	col     []float64
	offsets []int
	groups  []Group
	minV    float64
	maxV    float64
}

// K returns the number of distinct groups.
func (t *Table) K() int { return len(t.names) }

// NumRows returns the total number of ingested rows.
func (t *Table) NumRows() int { return len(t.col) }

// Names returns the group labels in first-seen order. The slice is owned
// by the table.
func (t *Table) Names() []string { return t.names }

// Column returns group i's packed values. The slice aliases the table's
// column storage; callers must not mutate it.
func (t *Table) Column(i int) []float64 {
	return t.col[t.offsets[i]:t.offsets[i+1]]
}

// MinValue and MaxValue bound the ingested values (both 0 for an empty
// table, which builders reject anyway).
func (t *Table) MinValue() float64 { return t.minV }

// MaxValue returns the largest ingested value.
func (t *Table) MaxValue() float64 { return t.maxV }

// Groups returns one sampling group per distinct label, in first-seen
// order. The groups are zero-copy views over the table's column and are
// built once; repeated calls return the same slice.
func (t *Table) Groups() []Group { return t.groups }

// Universe wraps the table's groups with the value bound c. c == 0 infers
// the bound from the ingested maximum (1 when all values are zero, so the
// bound stays positive). Negative values are rejected at build time, so a
// built table always yields a valid universe.
func (t *Table) Universe(c float64) (*Universe, error) {
	if c < 0 {
		return nil, fmt.Errorf("dataset: table bound must be non-negative, got %v", c)
	}
	if c == 0 {
		c = t.maxV
		if c == 0 {
			c = 1
		}
	} else if t.maxV > c {
		return nil, fmt.Errorf("dataset: table holds value %v above the declared bound %v", t.maxV, c)
	}
	return NewUniverse(c, t.groups...), nil
}

// TableBuilder accumulates raw (group, value) rows and groups them into a
// columnar Table on Build. The zero value is not usable; construct with
// NewTableBuilder.
type TableBuilder struct {
	index map[string]int
	names []string
	cols  [][]float64
	rows  int
	minV  float64
	maxV  float64
	neg   bool
	negV  float64
}

// NewTableBuilder returns an empty builder.
func NewTableBuilder() *TableBuilder {
	return &TableBuilder{index: map[string]int{}}
}

// Add ingests one raw row.
func (b *TableBuilder) Add(group string, value float64) {
	i, ok := b.index[group]
	if !ok {
		i = len(b.names)
		b.index[group] = i
		b.names = append(b.names, group)
		b.cols = append(b.cols, nil)
	}
	b.cols[i] = append(b.cols[i], value)
	if b.rows == 0 || value < b.minV {
		b.minV = value
	}
	if b.rows == 0 || value > b.maxV {
		b.maxV = value
	}
	if value < 0 && !b.neg {
		b.neg = true
		b.negV = value
	}
	b.rows++
}

// Len returns the number of rows ingested so far.
func (b *TableBuilder) Len() int { return b.rows }

// Build packs the accumulated rows into a Table. The per-group staging
// slices are released; the builder can be reused afterwards (it restarts
// empty). Negative values are rejected because every algorithm requires
// values in [0, c].
func (b *TableBuilder) Build() (*Table, error) {
	if b.rows == 0 {
		return nil, fmt.Errorf("dataset: table has no rows")
	}
	if b.neg {
		return nil, fmt.Errorf("dataset: table holds negative value %v; shift values into [0, c]", b.negV)
	}
	t := &Table{
		names:   b.names,
		col:     make([]float64, 0, b.rows),
		offsets: make([]int, 1, len(b.names)+1),
		minV:    b.minV,
		maxV:    b.maxV,
	}
	for _, col := range b.cols {
		t.col = append(t.col, col...)
		t.offsets = append(t.offsets, len(t.col))
	}
	t.groups = make([]Group, t.K())
	for i, name := range t.names {
		t.groups[i] = NewSliceGroup(name, t.Column(i))
	}
	*b = *NewTableBuilder()
	return t, nil
}

// BuildTable groups raw rows by label (first-seen order) into a columnar
// Table — the one-call ingestion path for in-memory row sets.
func BuildTable(rows []Row) (*Table, error) {
	b := NewTableBuilder()
	for _, row := range rows {
		b.Add(row.Group, row.Value)
	}
	return b.Build()
}

// ReadCSV ingests group,value records from r into a Table. The first
// column is the group label and the second the numeric value; extra
// columns are ignored. A header row is skipped automatically when its
// value column does not parse as a number. Records may vary in width but
// need at least two fields.
func ReadCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.TrimLeadingSpace = true
	b := NewTableBuilder()
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: csv: %w", err)
		}
		line++
		if len(rec) < 2 {
			return nil, fmt.Errorf("dataset: csv record %d has %d fields, want group,value", line, len(rec))
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rec[1]), 64)
		if err != nil {
			if line == 1 {
				continue // header
			}
			return nil, fmt.Errorf("dataset: csv record %d: bad value %q", line, rec[1])
		}
		b.Add(strings.TrimSpace(rec[0]), v)
	}
	return b.Build()
}
