// Persistent columnar segments: the on-disk form of a Table, written once
// and served across process restarts through mmap-backed zero-copy views.
//
// A segment directory holds one file per column plus a manifest:
//
//	manifest.json   format magic/version, column schema, per-group layout
//	value.seg       the aggregated value column
//	extra.0.seg …   one file per extra (filterable) column, by position
//
// Every .seg file is a 64-byte header followed by the column's float64
// values in little-endian byte order, packed in the table's group order
// (group i's rows occupy rows [offset_i, offset_i+rows_i), exactly like the
// in-memory Table.col layout). The header is:
//
//	[0:8)   magic "RVSEGCOL"
//	[8:12)  format version, uint32 LE
//	[12:16) endianness marker 0x01020304, uint32 LE
//	[16:24) row count, uint64 LE
//	[24:32) data byte length (rows*8), uint64 LE
//	[32:36) CRC-32C (Castagnoli) of header bytes [0:32), uint32 LE
//	[36:64) zero padding
//
// Data starts at byte 64, so the mmap base (page-aligned) plus 64 keeps the
// float64 data 8-byte aligned — the contract mmapfile.Float64s enforces.
// Per-group, per-column CRC-32C checksums of the raw data bytes live in the
// manifest; OpenSegments validates structure eagerly but reads no data
// pages, and VerifyChecksums performs the full (page-faulting) integrity
// pass on demand.
//
// Format version 2 (SegmentOptions.Compress) keeps the directory shape and
// the 64-byte column headers but stores each column as back-to-back
// colcodec blocks of BlockLen values instead of raw float64s: the header's
// data byte length becomes the encoded length, and the manifest gains the
// per-column block index — each block's byte offset plus its min/max zone
// map. Group statistics and the per-group CRCs are computed over the
// *decoded* values, so VerifyChecksums proves the decode end to end and v1
// and v2 manifests stay comparable. Reads decode whole blocks through a
// bounded LRU (blockcol.go); draw streams are bit-for-bit identical to the
// v1 and in-memory paths. See DESIGN.md §14.
package dataset

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"repro/internal/colcodec"
	"repro/internal/mmapfile"
)

const (
	segColMagic     = "RVSEGCOL"
	segTableMagic   = "RVSEGTBL"
	segVersion      = 1
	segVersion2     = 2
	segEndianMarker = 0x01020304

	// SegmentDataOffset is the byte offset of the float64 column data in
	// every .seg file; the header occupies [0, SegmentDataOffset).
	SegmentDataOffset = 64

	segManifestName = "manifest.json"
	segValueName    = "value.seg"
)

// castagnoli is the CRC-32C table shared by every checksum in the format.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SegmentValuePath returns the path of the value column file inside a
// segment directory — exported for readers (needletail's disk scenario)
// that access the column by pread rather than through OpenSegments.
func SegmentValuePath(dir string) string { return filepath.Join(dir, segValueName) }

// segExtraPath names extra column e's file. Extras are index-named so group
// and column names never need filename sanitization.
func segExtraPath(dir string, e int) string {
	return filepath.Join(dir, fmt.Sprintf("extra.%d.seg", e))
}

// segManifest is the JSON manifest schema (format-internal).
type segManifest struct {
	Magic      string     `json:"magic"`
	Version    int        `json:"version"`
	ValueName  string     `json:"value_name"`
	ExtraNames []string   `json:"extra_names,omitempty"`
	Rows       int64      `json:"rows"`
	MinValue   float64    `json:"min_value"`
	MaxValue   float64    `json:"max_value"`
	Groups     []segGroup `json:"groups"`

	// v2 (compressed) only: values per block and the per-column block
	// index, [0] = value column, [1+e] = extra e.
	BlockLen int         `json:"block_len,omitempty"`
	Columns  []segColumn `json:"columns,omitempty"`
}

// segColumn is one compressed column's block index.
type segColumn struct {
	Blocks []segBlock `json:"blocks"`
}

// segBlock locates one encoded block and carries its zone map. NZ marks
// the zone unusable (the block holds non-finite values, which JSON cannot
// encode and ordering predicates cannot prune on).
type segBlock struct {
	Off int64   `json:"off"`          // byte offset within the column's data region
	Min float64 `json:"min"`          // zone map: least decoded value
	Max float64 `json:"max"`          // zone map: greatest decoded value
	NZ  bool    `json:"nz,omitempty"` // zone unusable
}

// segGroup records one group's layout and the statistics the in-memory
// constructors would otherwise have to rescan the column for.
type segGroup struct {
	Name      string   `json:"name"`
	Rows      int64    `json:"rows"`
	Offset    int64    `json:"offset"` // row offset into every column
	Mean      float64  `json:"mean"`
	Max       float64  `json:"max"`
	ValueCRC  uint32   `json:"value_crc"`
	ExtraCRCs []uint32 `json:"extra_crcs,omitempty"`
}

// SegmentInfo is the exported summary of a segment directory's manifest:
// enough for external readers (disksim's measured-IO scenario, tooling) to
// locate groups inside the value column without opening the table.
type SegmentInfo struct {
	ValueName  string
	ExtraNames []string
	Rows       int64
	MinValue   float64
	MaxValue   float64
	GroupNames []string
	GroupRows  []int64 // rows per group; group i starts at sum(GroupRows[:i])
	Compressed bool    // v2 block-compressed columns (raw pread is invalid)
	BlockLen   int     // values per block when Compressed
}

// ReadSegmentManifest reads and validates a segment directory's manifest
// without opening any column data.
func ReadSegmentManifest(dir string) (*SegmentInfo, error) {
	man, err := readSegManifest(dir)
	if err != nil {
		return nil, err
	}
	info := &SegmentInfo{
		ValueName:  man.ValueName,
		ExtraNames: man.ExtraNames,
		Rows:       man.Rows,
		MinValue:   man.MinValue,
		MaxValue:   man.MaxValue,
		Compressed: man.Version >= segVersion2,
		BlockLen:   man.BlockLen,
	}
	for _, g := range man.Groups {
		info.GroupNames = append(info.GroupNames, g.Name)
		info.GroupRows = append(info.GroupRows, g.Rows)
	}
	return info, nil
}

// SegmentWriter streams a table's rows into a segment directory without
// ever materializing the table: groups are declared in order with
// StartGroup and rows appended group-contiguously, so a writer's peak
// memory is one bufio buffer per column regardless of row count. Close
// finalizes headers and writes the manifest last (via rename), so a
// directory with a valid manifest always has complete column files.
type SegmentWriter struct {
	dir        string
	valueName  string
	extraNames []string
	opts       SegmentOptions

	files []*os.File // [0] = value column, [1+e] = extra e
	bufs  []*bufWriter
	man   segManifest

	// Compressed mode: per-column block staging. encs[c].vals buffers up
	// to BlockLen values; a full buffer is encoded, appended to the column
	// file, and indexed in the manifest with its zone map.
	encs   []colEncoder
	encBuf []byte

	cur     *segGroup
	curSum  float64
	names   map[string]struct{}
	scratch [8]byte
	closed  bool
	err     error // sticky: first failure poisons the writer
}

// colEncoder is one compressed column's write-side state.
type colEncoder struct {
	vals []float64 // staged values of the current block
	off  int64     // encoded bytes written so far
}

// SegmentOptions selects the on-disk segment format.
type SegmentOptions struct {
	// Compress writes format version 2: per-column block compression
	// (colcodec) with zone maps in the manifest. Zero value writes the raw
	// v1 format.
	Compress bool
	// BlockLen is the values-per-block for compressed columns;
	// DefaultBlockLen when 0.
	BlockLen int
}

// bufWriter is a minimal buffered writer (we avoid bufio to keep the flush
// and error paths explicit and the per-value write inlineable).
type bufWriter struct {
	f   *os.File
	buf []byte
}

func (w *bufWriter) write8(p [8]byte) error {
	w.buf = append(w.buf, p[:]...)
	if len(w.buf) >= 1<<16 {
		return w.flush()
	}
	return nil
}

// write appends an arbitrary byte run (encoded blocks).
func (w *bufWriter) write(p []byte) error {
	w.buf = append(w.buf, p...)
	if len(w.buf) >= 1<<16 {
		return w.flush()
	}
	return nil
}

func (w *bufWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.f.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// CreateSegments opens a segment writer over dir (created if missing) with
// the given column schema. The caller must feed rows group-contiguously:
// StartGroup then Append for each of the group's rows, repeated per group,
// then Close.
func CreateSegments(dir, valueName string, extraNames ...string) (*SegmentWriter, error) {
	return CreateSegmentsOptions(dir, SegmentOptions{}, valueName, extraNames...)
}

// CreateSegmentsOptions is CreateSegments with an explicit format choice
// (compression, block length).
func CreateSegmentsOptions(dir string, opts SegmentOptions, valueName string, extraNames ...string) (*SegmentWriter, error) {
	if valueName == "" {
		valueName = "value"
	}
	if opts.BlockLen == 0 {
		opts.BlockLen = DefaultBlockLen
	}
	if opts.BlockLen < 1 || opts.BlockLen > colcodec.MaxBlockLen {
		return nil, fmt.Errorf("dataset: segments: block length %d out of range (1..%d)", opts.BlockLen, colcodec.MaxBlockLen)
	}
	version := segVersion
	if opts.Compress {
		version = segVersion2
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataset: segments: %w", err)
	}
	w := &SegmentWriter{
		dir:        dir,
		valueName:  valueName,
		extraNames: extraNames,
		opts:       opts,
		names:      map[string]struct{}{},
		man: segManifest{
			Magic:      segTableMagic,
			Version:    version,
			ValueName:  valueName,
			ExtraNames: extraNames,
		},
	}
	if opts.Compress {
		w.man.BlockLen = opts.BlockLen
		w.man.Columns = make([]segColumn, 1+len(extraNames))
		w.encs = make([]colEncoder, 1+len(extraNames))
		for c := range w.encs {
			w.encs[c].vals = make([]float64, 0, opts.BlockLen)
		}
	}
	paths := []string{SegmentValuePath(dir)}
	for e := range extraNames {
		paths = append(paths, segExtraPath(dir, e))
	}
	for _, path := range paths {
		f, err := os.Create(path)
		if err != nil {
			w.abort()
			return nil, fmt.Errorf("dataset: segments: %w", err)
		}
		w.files = append(w.files, f)
		w.bufs = append(w.bufs, &bufWriter{f: f, buf: make([]byte, 0, 1<<16)})
		// Header placeholder; the real header is written at Close, once the
		// row count is known.
		if _, err := f.Write(make([]byte, SegmentDataOffset)); err != nil {
			w.abort()
			return nil, fmt.Errorf("dataset: segments: %w", err)
		}
	}
	return w, nil
}

// StartGroup begins the next group. Group names must be unique; the
// previous group (if any) must have received at least one row.
func (w *SegmentWriter) StartGroup(name string) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return fmt.Errorf("dataset: segments: writer is closed")
	}
	if err := w.finishGroup(); err != nil {
		return err
	}
	if _, dup := w.names[name]; dup {
		return w.fail(fmt.Errorf("dataset: segments: duplicate group %q (rows must be group-contiguous)", name))
	}
	w.names[name] = struct{}{}
	w.man.Groups = append(w.man.Groups, segGroup{
		Name:      name,
		Offset:    w.man.Rows,
		ExtraCRCs: make([]uint32, len(w.extraNames)),
	})
	w.cur = &w.man.Groups[len(w.man.Groups)-1]
	w.curSum = 0
	return nil
}

// Append writes one row of the current group: the aggregated value plus one
// entry per declared extra column. Values must be non-negative — every
// sampling algorithm requires values in [0, c].
func (w *SegmentWriter) Append(value float64, extras ...float64) error {
	if w.err != nil {
		return w.err
	}
	if w.cur == nil {
		return w.fail(fmt.Errorf("dataset: segments: Append before StartGroup"))
	}
	if len(extras) != len(w.extraNames) {
		return w.fail(fmt.Errorf("dataset: segments: row has %d extra values, writer declared %d extra columns %v",
			len(extras), len(w.extraNames), w.extraNames))
	}
	if value < 0 {
		return w.fail(fmt.Errorf("dataset: segments: negative value %v; shift values into [0, c]", value))
	}
	// Per-group CRCs are always over the decoded little-endian bytes —
	// in compressed mode too, so VerifyChecksums proves the decode end to
	// end and the manifests stay comparable across formats.
	binary.LittleEndian.PutUint64(w.scratch[:], math.Float64bits(value))
	w.cur.ValueCRC = crc32.Update(w.cur.ValueCRC, castagnoli, w.scratch[:])
	if err := w.writeValue(0, value, w.scratch); err != nil {
		return w.fail(err)
	}
	for e, v := range extras {
		binary.LittleEndian.PutUint64(w.scratch[:], math.Float64bits(v))
		w.cur.ExtraCRCs[e] = crc32.Update(w.cur.ExtraCRCs[e], castagnoli, w.scratch[:])
		if err := w.writeValue(1+e, v, w.scratch); err != nil {
			return w.fail(err)
		}
	}
	// Statistics fold in append order, matching NewSliceGroup's scan order
	// bit for bit (sum from 0.0, max seeded by the first value), so opened
	// groups report identical TrueMean/MaxValue to their in-memory twins.
	if w.cur.Rows == 0 || value > w.cur.Max {
		w.cur.Max = value
	}
	w.curSum += value
	if w.man.Rows == 0 || value < w.man.MinValue {
		w.man.MinValue = value
	}
	if w.man.Rows == 0 || value > w.man.MaxValue {
		w.man.MaxValue = value
	}
	w.cur.Rows++
	w.man.Rows++
	return nil
}

// writeValue routes one column value to its sink: the raw byte stream in
// v1, the block stager in v2.
func (w *SegmentWriter) writeValue(c int, v float64, le [8]byte) error {
	if !w.opts.Compress {
		return w.bufs[c].write8(le)
	}
	enc := &w.encs[c]
	enc.vals = append(enc.vals, v)
	if len(enc.vals) == w.opts.BlockLen {
		return w.flushBlock(c)
	}
	return nil
}

// flushBlock encodes column c's staged values as one block, appends it to
// the column file, and records its offset and zone map in the manifest.
func (w *SegmentWriter) flushBlock(c int) error {
	enc := &w.encs[c]
	if len(enc.vals) == 0 {
		return nil
	}
	blk, _ := colcodec.EncodeBlock(w.encBuf[:0], enc.vals)
	w.encBuf = blk
	z := zoneOf(enc.vals)
	w.man.Columns[c].Blocks = append(w.man.Columns[c].Blocks, segBlock{
		Off: enc.off, Min: z.min, Max: z.max, NZ: !z.ok,
	})
	enc.off += int64(len(blk))
	enc.vals = enc.vals[:0]
	return w.bufs[c].write(blk)
}

// finishGroup seals the current group's statistics.
func (w *SegmentWriter) finishGroup() error {
	if w.cur == nil {
		return nil
	}
	if w.cur.Rows == 0 {
		return w.fail(fmt.Errorf("dataset: segments: group %q has no rows", w.cur.Name))
	}
	if w.cur.Rows > math.MaxInt32 {
		return w.fail(fmt.Errorf("dataset: segments: group %q has %d rows; the draw layer addresses rows as int32 (max %d per group)",
			w.cur.Name, w.cur.Rows, math.MaxInt32))
	}
	w.cur.Mean = w.curSum / float64(w.cur.Rows)
	w.cur = nil
	return nil
}

// fail records the first error and poisons subsequent calls.
func (w *SegmentWriter) fail(err error) error {
	if w.err == nil {
		w.err = err
	}
	return w.err
}

// abort closes the column files without finalizing headers, leaving the
// directory manifest-less (and therefore unopenable, by design).
func (w *SegmentWriter) abort() {
	for _, f := range w.files {
		f.Close()
	}
	w.closed = true
}

// Close seals the last group, rewrites every column header with the final
// row count, syncs the column files, and writes the manifest via a
// temp-file rename so a crash mid-Close never leaves a valid manifest over
// incomplete columns.
func (w *SegmentWriter) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		w.abort()
		return w.err
	}
	if err := w.finishGroup(); err != nil {
		w.abort()
		return err
	}
	if w.man.Rows == 0 {
		w.abort()
		return fmt.Errorf("dataset: segments: table has no rows")
	}
	if w.opts.Compress {
		// Seal the trailing partial block of every column.
		for c := range w.encs {
			if err := w.flushBlock(c); err != nil {
				w.abort()
				return fmt.Errorf("dataset: segments: %w", err)
			}
		}
	}
	for c, f := range w.files {
		var header [SegmentDataOffset]byte
		copy(header[0:8], segColMagic)
		binary.LittleEndian.PutUint32(header[8:12], uint32(w.man.Version))
		binary.LittleEndian.PutUint32(header[12:16], segEndianMarker)
		binary.LittleEndian.PutUint64(header[16:24], uint64(w.man.Rows))
		dataLen := uint64(w.man.Rows) * 8
		if w.opts.Compress {
			dataLen = uint64(w.encs[c].off)
		}
		binary.LittleEndian.PutUint64(header[24:32], dataLen)
		binary.LittleEndian.PutUint32(header[32:36], crc32.Checksum(header[:32], castagnoli))
		if err := w.bufs[c].flush(); err != nil {
			w.abort()
			return fmt.Errorf("dataset: segments: %w", err)
		}
		if _, err := f.WriteAt(header[:], 0); err != nil {
			w.abort()
			return fmt.Errorf("dataset: segments: %w", err)
		}
		if err := f.Sync(); err != nil {
			w.abort()
			return fmt.Errorf("dataset: segments: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("dataset: segments: %w", err)
		}
	}
	blob, err := json.MarshalIndent(&w.man, "", "  ")
	if err != nil {
		return fmt.Errorf("dataset: segments: %w", err)
	}
	tmp := filepath.Join(w.dir, segManifestName+".tmp")
	if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("dataset: segments: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(w.dir, segManifestName)); err != nil {
		return fmt.Errorf("dataset: segments: %w", err)
	}
	return nil
}

// WriteSegments persists the table into dir as a raw (v1) columnar segment
// directory that OpenSegments can serve across process restarts.
func (t *Table) WriteSegments(dir string) error {
	return t.WriteSegmentsOptions(dir, SegmentOptions{})
}

// WriteSegmentsOptions is WriteSegments with an explicit format choice —
// SegmentOptions{Compress: true} writes v2 block-compressed columns. The
// source table may itself be compressed (a recompression pass); its blocks
// are decoded streaming, never fully materialized.
func (t *Table) WriteSegmentsOptions(dir string, opts SegmentOptions) error {
	w, err := CreateSegmentsOptions(dir, opts, t.valueName, t.extraNames...)
	if err != nil {
		return err
	}
	scratch := make([]float64, len(t.extraNames))
	var wins []*blockWindow
	if t.bcols != nil {
		wins = make([]*blockWindow, len(t.bcols))
		for c, bc := range t.bcols {
			wins[c] = newBlockWindow(bc, 0, int(bc.rows))
		}
	}
	for gi, name := range t.names {
		if err := w.StartGroup(name); err != nil {
			w.abort()
			return err
		}
		for row := t.offsets[gi]; row < t.offsets[gi+1]; row++ {
			var v float64
			if wins != nil {
				v = wins[0].at(row)
				for e := range scratch {
					scratch[e] = wins[1+e].at(row)
				}
			} else {
				v = t.col[row]
				for e := range scratch {
					scratch[e] = t.extras[e][row]
				}
			}
			if err := w.Append(v, scratch...); err != nil {
				w.abort()
				return err
			}
		}
	}
	if t.bcols != nil {
		if err := t.bcols[0].cache.Err(); err != nil {
			w.abort()
			return err
		}
	}
	return w.Close()
}

// SegmentTable is a Table served from a segment directory: its columns
// alias mmapped files (zero-copy; the OS page cache is the tiering layer),
// its groups are segment-backed SliceGroups whose block draws gather in
// page order, and its statistics come from the manifest so Open faults in
// no data pages. It satisfies every Table consumer — views, filters,
// kernels, the broker, the serving layer — unchanged.
//
// Close invalidates every slice the table handed out; callers must finish
// all queries first.
type SegmentTable struct {
	*Table
	dir   string
	maps  []*mmapfile.Mapping
	man   *segManifest
	data  [][]byte    // raw column data regions, [0] = value, [1+e] = extra e
	cache *blockCache // decoded-block LRU (compressed tables only)
}

// Dir returns the segment directory the table was opened from.
func (st *SegmentTable) Dir() string { return st.dir }

// Compressed reports whether the table serves v2 block-compressed columns.
func (st *SegmentTable) Compressed() bool { return st.cache != nil }

// Err returns the first block-decode failure encountered while serving
// reads, if any. Draw paths have no error channel, so corruption discovered
// mid-draw degrades those rows to zeros and surfaces here; check after
// queries on untrusted segments, or run VerifyChecksums up front.
func (st *SegmentTable) Err() error {
	if st.cache == nil {
		return nil
	}
	return st.cache.Err()
}

// Mapped reports whether the columns are OS memory mappings (false means
// the nommap read-at fallback copied them to the heap at open).
func (st *SegmentTable) Mapped() bool {
	for _, m := range st.maps {
		if !m.Mapped() {
			return false
		}
	}
	return true
}

// Close unmaps every column. The table and every group, view, or filter
// derived from it must not be used afterwards.
func (st *SegmentTable) Close() error {
	var err error
	for _, m := range st.maps {
		if cerr := m.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// DropPageCache asks the OS to evict the segment files' pages (best
// effort), so cold-read measurements can run without remounting.
func (st *SegmentTable) DropPageCache() error {
	var err error
	for _, m := range st.maps {
		if derr := m.DropPageCache(); err == nil {
			err = derr
		}
	}
	return err
}

// AdviseRandom marks every column mapping as randomly accessed (best
// effort): the kernel stops reading ahead around faults, so sampling's
// residency tracks the pages draws actually touch instead of readahead
// clusters. The right mode when the table is served out of core and
// queries sample far fewer rows than they scan; a full-scan-heavy
// workload should skip it and keep readahead.
func (st *SegmentTable) AdviseRandom() error {
	var err error
	for _, m := range st.maps {
		if aerr := m.AdviseRandom(); err == nil {
			err = aerr
		}
	}
	return err
}

// VerifyChecksums recomputes every per-group, per-column CRC-32C and
// compares it against the manifest. This is the full-integrity pass — it
// touches every data page (and therefore also warms the page cache). On
// compressed tables it decodes every block (bypassing the cache) and also
// proves each manifest zone map consistent with the decoded values, so a
// clean pass means draws, filters, and zone pruning all see sound data.
func (st *SegmentTable) VerifyChecksums() error {
	if st.cache != nil {
		return st.verifyCompressed()
	}
	for _, g := range st.man.Groups {
		lo, hi := g.Offset*8, (g.Offset+g.Rows)*8
		if got := crc32.Checksum(st.data[0][lo:hi], castagnoli); got != g.ValueCRC {
			return fmt.Errorf("dataset: segments: group %q value column checksum mismatch (manifest %08x, data %08x)",
				g.Name, g.ValueCRC, got)
		}
		for e := range st.man.ExtraNames {
			want := uint32(0)
			if e < len(g.ExtraCRCs) {
				want = g.ExtraCRCs[e]
			}
			if got := crc32.Checksum(st.data[1+e][lo:hi], castagnoli); got != want {
				return fmt.Errorf("dataset: segments: group %q column %q checksum mismatch (manifest %08x, data %08x)",
					g.Name, st.man.ExtraNames[e], want, got)
			}
		}
	}
	return nil
}

// verifyCompressed is VerifyChecksums for v2 tables: per column, decode
// every block directly, compare its recomputed zone against the manifest's,
// and fold the decoded values (as little-endian bytes) into per-group
// CRC-32C sums checked against the manifest — the same decoded-byte CRCs a
// v1 segment of this table would carry.
func (st *SegmentTable) verifyCompressed() error {
	colName := func(c int) string {
		if c == 0 {
			return st.man.ValueName
		}
		return st.man.ExtraNames[c-1]
	}
	var le [8]byte
	var scratch []float64
	for c, bc := range st.Table.bcols {
		gi := 0
		rowsLeft := st.man.Groups[0].Rows
		crc := uint32(0)
		for b := 0; b < bc.nblocks(); b++ {
			vals, _, err := bc.decode(scratch[:0], b)
			if err != nil {
				return err
			}
			scratch = vals
			if got, want := zoneOf(vals), bc.zones[b]; got != want {
				return fmt.Errorf("dataset: segments: column %q block %d zone map mismatch (manifest [%v, %v] nz=%v, decoded [%v, %v] nz=%v)",
					colName(c), b, want.min, want.max, !want.ok, got.min, got.max, !got.ok)
			}
			for _, v := range vals {
				binary.LittleEndian.PutUint64(le[:], math.Float64bits(v))
				crc = crc32.Update(crc, castagnoli, le[:])
				if rowsLeft--; rowsLeft == 0 {
					g := &st.man.Groups[gi]
					want := g.ValueCRC
					if c > 0 {
						want = 0
						if c-1 < len(g.ExtraCRCs) {
							want = g.ExtraCRCs[c-1]
						}
					}
					if crc != want {
						return fmt.Errorf("dataset: segments: group %q column %q checksum mismatch (manifest %08x, decoded data %08x)",
							g.Name, colName(c), want, crc)
					}
					crc = 0
					if gi++; gi < len(st.man.Groups) {
						rowsLeft = st.man.Groups[gi].Rows
					}
				}
			}
		}
	}
	return nil
}

// readSegManifest loads and structurally validates manifest.json.
func readSegManifest(dir string) (*segManifest, error) {
	blob, err := os.ReadFile(filepath.Join(dir, segManifestName))
	if err != nil {
		return nil, fmt.Errorf("dataset: segments: %w", err)
	}
	man := &segManifest{}
	if err := json.Unmarshal(blob, man); err != nil {
		return nil, fmt.Errorf("dataset: segments: %s: malformed manifest: %w", dir, err)
	}
	if man.Magic != segTableMagic {
		return nil, fmt.Errorf("dataset: segments: %s: bad manifest magic %q (want %q)", dir, man.Magic, segTableMagic)
	}
	if man.Version != segVersion && man.Version != segVersion2 {
		return nil, fmt.Errorf("dataset: segments: %s: unsupported format version %d (reader supports %d and %d)",
			dir, man.Version, segVersion, segVersion2)
	}
	if man.Rows <= 0 {
		return nil, fmt.Errorf("dataset: segments: %s: manifest declares %d rows", dir, man.Rows)
	}
	if len(man.Groups) == 0 {
		return nil, fmt.Errorf("dataset: segments: %s: manifest declares no groups", dir)
	}
	seen := map[string]struct{}{}
	var total int64
	for gi, g := range man.Groups {
		if g.Name == "" {
			return nil, fmt.Errorf("dataset: segments: %s: group %d has an empty name", dir, gi)
		}
		if _, dup := seen[g.Name]; dup {
			return nil, fmt.Errorf("dataset: segments: %s: duplicate group %q in manifest", dir, g.Name)
		}
		seen[g.Name] = struct{}{}
		if g.Rows <= 0 {
			return nil, fmt.Errorf("dataset: segments: %s: group %q declares %d rows", dir, g.Name, g.Rows)
		}
		if g.Rows > math.MaxInt32 {
			return nil, fmt.Errorf("dataset: segments: %s: group %q declares %d rows; the draw layer addresses rows as int32 (max %d per group)",
				dir, g.Name, g.Rows, math.MaxInt32)
		}
		if g.Offset != total {
			return nil, fmt.Errorf("dataset: segments: %s: group %q declares offset %d, expected %d (chunks must be contiguous)",
				dir, g.Name, g.Offset, total)
		}
		total += g.Rows
	}
	if total != man.Rows {
		return nil, fmt.Errorf("dataset: segments: %s: group rows sum to %d but the manifest declares %d rows", dir, total, man.Rows)
	}
	if man.MinValue < 0 {
		return nil, fmt.Errorf("dataset: segments: %s: manifest declares negative minimum value %v", dir, man.MinValue)
	}
	if man.Version >= segVersion2 {
		if err := validateSegBlocks(man); err != nil {
			return nil, fmt.Errorf("dataset: segments: %s: %w", dir, err)
		}
	} else if man.BlockLen != 0 || man.Columns != nil {
		return nil, fmt.Errorf("dataset: segments: %s: v1 manifest carries compressed-column metadata", dir)
	}
	return man, nil
}

// validateSegBlocks structurally checks a v2 manifest's block index: block
// length in range, one column entry per declared column, the right block
// count for the row count, offsets starting at zero and strictly
// increasing with at least a block header between consecutive offsets.
func validateSegBlocks(man *segManifest) error {
	if man.BlockLen < 1 || man.BlockLen > colcodec.MaxBlockLen {
		return fmt.Errorf("manifest declares block length %d (want 1..%d)", man.BlockLen, colcodec.MaxBlockLen)
	}
	if want := 1 + len(man.ExtraNames); len(man.Columns) != want {
		return fmt.Errorf("manifest declares %d column block indexes for %d columns", len(man.Columns), want)
	}
	wantBlocks := int((man.Rows + int64(man.BlockLen) - 1) / int64(man.BlockLen))
	for ci, col := range man.Columns {
		if len(col.Blocks) != wantBlocks {
			return fmt.Errorf("column %d declares %d blocks; %d rows at block length %d need %d",
				ci, len(col.Blocks), man.Rows, man.BlockLen, wantBlocks)
		}
		for b, blk := range col.Blocks {
			switch {
			case b == 0 && blk.Off != 0:
				return fmt.Errorf("column %d block 0 starts at offset %d, want 0", ci, blk.Off)
			case b > 0 && blk.Off < col.Blocks[b-1].Off+colcodec.HeaderSize:
				return fmt.Errorf("column %d block %d offset %d overlaps block %d at %d",
					ci, b, blk.Off, b-1, col.Blocks[b-1].Off)
			}
			if !blk.NZ && blk.Min > blk.Max {
				return fmt.Errorf("column %d block %d zone map is inverted (min %v > max %v)", ci, b, blk.Min, blk.Max)
			}
		}
	}
	return nil
}

// openSegColumn maps one .seg file and validates its header against the
// manifest's version and row count, returning the data region (past the
// header). In v1 the data length must be rows*8; in v2 it is the encoded
// byte length, checked against the manifest's block index by the caller.
func openSegColumn(path string, version int, wantRows int64) (*mmapfile.Mapping, []byte, error) {
	m, err := mmapfile.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("dataset: segments: %w", err)
	}
	b := m.Bytes()
	fail := func(format string, args ...any) (*mmapfile.Mapping, []byte, error) {
		// Render the message before unmapping: args may alias the mapped
		// bytes, which are gone the instant Close returns.
		msg := fmt.Sprintf(format, args...)
		m.Close()
		return nil, nil, fmt.Errorf("dataset: segments: %s: %s", path, msg)
	}
	if len(b) < SegmentDataOffset {
		return fail("file is %d bytes, shorter than the %d-byte header (truncated?)", len(b), SegmentDataOffset)
	}
	if string(b[0:8]) != segColMagic {
		return fail("bad magic %q (want %q)", b[0:8], segColMagic)
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != uint32(version) {
		return fail("unsupported format version %d (manifest declares %d)", v, version)
	}
	if mk := binary.LittleEndian.Uint32(b[12:16]); mk != segEndianMarker {
		return fail("bad endianness marker %08x (want %08x): file was written byte-swapped", mk, segEndianMarker)
	}
	if want := crc32.Checksum(b[:32], castagnoli); binary.LittleEndian.Uint32(b[32:36]) != want {
		return fail("header checksum mismatch (header %08x, computed %08x)", binary.LittleEndian.Uint32(b[32:36]), want)
	}
	rows := binary.LittleEndian.Uint64(b[16:24])
	if rows != uint64(wantRows) {
		return fail("header declares %d rows, manifest declares %d", rows, wantRows)
	}
	dataLen := binary.LittleEndian.Uint64(b[24:32])
	if version == segVersion && dataLen != rows*8 {
		return fail("header declares %d data bytes for %d rows (want %d)", dataLen, rows, rows*8)
	}
	if got := uint64(len(b) - SegmentDataOffset); got != dataLen {
		return fail("file holds %d data bytes but the header declares %d (truncated?)", got, dataLen)
	}
	return m, b[SegmentDataOffset:], nil
}

// OpenSegments opens a segment directory written by WriteSegments,
// CreateSegments, or a streaming writer, returning a table whose columns
// are zero-copy views over the mmapped files. Open is lazy: headers and the
// manifest are validated eagerly (descriptive errors for corrupt or
// truncated input, never panics) but no data pages are read — group
// statistics come from the manifest. Call VerifyChecksums for a full
// integrity pass.
func OpenSegments(dir string) (*SegmentTable, error) {
	if !mmapfile.HostLittleEndian() {
		return nil, fmt.Errorf("dataset: segments: this platform is big-endian; segment files are little-endian and served zero-copy")
	}
	man, err := readSegManifest(dir)
	if err != nil {
		return nil, err
	}
	st := &SegmentTable{dir: dir, man: man}
	paths := []string{SegmentValuePath(dir)}
	for e := range man.ExtraNames {
		paths = append(paths, segExtraPath(dir, e))
	}
	for _, path := range paths {
		m, data, err := openSegColumn(path, man.Version, man.Rows)
		if err != nil {
			st.Close()
			return nil, err
		}
		st.maps = append(st.maps, m)
		st.data = append(st.data, data)
	}

	t := &Table{
		minV:       man.MinValue,
		maxV:       man.MaxValue,
		valueName:  man.ValueName,
		extraNames: man.ExtraNames,
	}
	t.offsets = make([]int, len(man.Groups)+1)
	for gi, g := range man.Groups {
		t.names = append(t.names, g.Name)
		t.offsets[gi+1] = t.offsets[gi] + int(g.Rows)
	}
	t.groups = make([]Group, len(man.Groups))

	if man.Version >= segVersion2 {
		// v2: columns are encoded blocks served through a shared decoded-block
		// LRU; groups draw through per-group block windows.
		st.cache = newBlockCache(man.BlockLen)
		t.bcols = make([]*blockColumn, len(st.data))
		for c, data := range st.data {
			blocks := man.Columns[c].Blocks
			offs := make([]int64, len(blocks)+1)
			zones := make([]blockZone, len(blocks))
			for b, blk := range blocks {
				offs[b] = blk.Off
				zones[b] = blockZone{min: blk.Min, max: blk.Max, ok: !blk.NZ}
			}
			offs[len(blocks)] = int64(len(data))
			if last := offs[len(blocks)-1]; last+colcodec.HeaderSize > int64(len(data)) {
				st.Close()
				return nil, fmt.Errorf("dataset: segments: %s: manifest places the last block at offset %d but the column holds %d data bytes (truncated?)",
					paths[c], last, len(data))
			}
			t.bcols[c] = &blockColumn{
				raw: data, offs: offs, zones: zones,
				rows: man.Rows, blockLen: man.BlockLen, colID: c, cache: st.cache,
			}
		}
		for gi, g := range man.Groups {
			win := newBlockWindow(t.bcols[0], g.Offset, int(g.Rows))
			t.groups[gi] = &TableGroup{
				SliceGroup: *newBlockSliceGroup(g.Name, win, g.Mean, g.Max),
				table:      t,
				index:      gi,
			}
		}
		st.Table = t
		return st, nil
	}

	cols := make([][]float64, 0, len(st.data))
	for c, data := range st.data {
		col, err := mmapfile.Float64s(data)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("dataset: segments: %s: %w", paths[c], err)
		}
		cols = append(cols, col)
	}
	t.col = cols[0]
	t.extras = cols[1:]
	for gi, g := range man.Groups {
		t.groups[gi] = &TableGroup{
			SliceGroup: *newSegmentSliceGroup(g.Name, t.col[t.offsets[gi]:t.offsets[gi+1]], g.Mean, g.Max),
			table:      t,
			index:      gi,
		}
	}
	st.Table = t
	return st, nil
}
