// Predicate-filtered sampling. Table.Filter evaluates a conjunction of
// predicates into one selection vector per group — bitmap-backed above a
// density threshold (rank/select via internal/bitmap), a sorted index
// slice below it — and wraps them in a View whose groups implement every
// draw mode the unfiltered table groups do. A filtered draw maps a uniform
// rank in [0, count) to a surviving row in O(1) (index slice) or O(log r)
// (bitmap select); there is never a rejection loop, so every algorithm in
// internal/core runs on filtered data with unchanged ordering guarantees:
// group sizes are the selection cardinalities, without-replacement
// accounting consumes a permutation of ranks, and each group's RNG stream
// discipline is untouched because a filtered draw costs exactly one Intn —
// the same as an unfiltered one.
package dataset

import (
	"fmt"

	"repro/internal/bitmap"
	"repro/internal/xrand"
)

// selectionDenseMin is the survivor density (count/groupRows) at and above
// which a group's selection is stored as a bitmap rather than a sorted
// index slice. At 1/32 the two representations tie in memory (1 bit per
// row vs 32 bits per survivor); denser selections favor the bitmap's
// constant footprint, sparser ones the slice's O(1) rank→row lookup.
const selectionDenseMin = 1.0 / 32

// selection is one group's filtered row set, in local (within-group) row
// coordinates. Exactly one of idx and bits is set.
type selection struct {
	count int
	idx   []int32        // sorted local rows, sparse representation
	bits  *bitmap.Bitmap // dense representation with rank/select
}

// row maps a selection rank to the local row it denotes: O(1) on the index
// slice, O(log n) bitmap select on the dense form.
func (s *selection) row(rank int) int {
	if s.bits != nil {
		pos, err := s.bits.Select(rank)
		if err != nil {
			panic(err) // rank < count by construction
		}
		return pos
	}
	return int(s.idx[rank])
}

// View is the result of filtering a Table: the surviving groups, each
// restricted to its selected rows, in the table's group order. Views share
// the table's packed columns (no rows are copied) and hold no draw state
// of their own — Groups returns one shared set (like Table.Groups), View
// a fresh set per call (like Table.View), so one cached selection can
// serve any number of sequential or concurrent queries.
type View struct {
	table  *Table
	groups []Group // *FilteredGroup, or *TableGroup view for all-selected groups
	rows   int64
	maxV   float64
}

// Table returns the filtered table.
func (v *View) Table() *Table { return v.table }

// K returns the number of surviving groups.
func (v *View) K() int { return len(v.groups) }

// Names returns the surviving group names, in table group order.
func (v *View) Names() []string {
	names := make([]string, len(v.groups))
	for i, g := range v.groups {
		names[i] = g.Name()
	}
	return names
}

// NumRows returns the total number of selected rows.
func (v *View) NumRows() int64 { return v.rows }

// MaxValue returns the largest selected value (0 for an empty view), the
// natural query bound for filtered runs.
func (v *View) MaxValue() float64 { return v.maxV }

// Groups returns one shared set of sampling groups over the selection.
// Like Table.Groups, the set carries without-replacement draw state and
// must not serve two queries at the same time; concurrent queries take a
// View() each.
func (v *View) Groups() []Group { return v.groups }

// View returns a fresh set of sampling groups over the same selection:
// shared selection vectors and packed columns, independent draw state.
func (v *View) View() []Group {
	fresh := make([]Group, len(v.groups))
	for i, g := range v.groups {
		switch fg := g.(type) {
		case *FilteredGroup:
			cp := *fg
			cp.perm = nil
			cp.next = 0
			cp.rows = nil
			cp.keys = nil
			cp.vals = nil
			if cp.win != nil {
				cp.win = cp.win.clone()
			}
			fresh[i] = &cp
		case *TableGroup:
			cp := *fg
			cp.resetView()
			fresh[i] = &cp
		default:
			fresh[i] = g // unreachable: views hold only the two types above
		}
	}
	return fresh
}

// Universe wraps the view's groups with the value bound c, inferring it
// from the selected maximum when c == 0 (mirroring Table.Universe).
func (v *View) Universe(c float64) (*Universe, error) {
	if c < 0 {
		return nil, fmt.Errorf("dataset: view bound must be non-negative, got %v", c)
	}
	if c == 0 {
		c = v.maxV
		if c == 0 {
			c = 1
		}
	} else if v.maxV > c {
		return nil, fmt.Errorf("dataset: view holds value %v above the declared bound %v", v.maxV, c)
	}
	return NewUniverse(c, v.groups...), nil
}

// Filter evaluates the conjunction of preds and returns a View of the
// surviving rows. Planning is two-tier: group-inclusion predicates answer
// from the table's group index (the offsets) without reading any rows,
// while value predicates — which have no precomputed index — fall back to
// one scan-and-filter pass over the included groups' columns. Groups whose
// selection is empty are dropped; a filter that leaves no rows at all is
// an error. Groups every row of which survives stay plain zero-copy table
// views, so an all-pass filter costs nothing per draw.
func (t *Table) Filter(preds ...Predicate) (*View, error) {
	valuePreds, include, err := t.validatePredicates(preds)
	if err != nil {
		return nil, err
	}
	v := &View{table: t}
	for gi := range t.names {
		if include != nil && !include[gi] {
			continue
		}
		lo, hi := t.offsets[gi], t.offsets[gi+1]
		if len(valuePreds) == 0 {
			// Index path: the group survives whole; its zero-copy table
			// view needs no selection vector at all.
			v.addWhole(t, gi)
			continue
		}
		var sel *selection
		var sum, max float64
		if t.bcols != nil {
			sel, sum, max, err = t.filterGroupBlocks(gi, valuePreds)
			if err != nil {
				return nil, err
			}
		} else {
			sel, sum, max = t.filterGroup(gi, valuePreds)
		}
		switch {
		case sel.count == 0:
			continue
		case sel.count == hi-lo:
			v.addWhole(t, gi)
		default:
			fg := &FilteredGroup{
				name: t.names[gi],
				sel:  sel,
				mean: sum / float64(sel.count),
			}
			if t.bcols != nil {
				fg.win = newBlockWindow(t.bcols[0], int64(lo), hi-lo)
			} else {
				fg.col = t.col[lo:hi]
			}
			v.groups = append(v.groups, fg)
			v.rows += int64(sel.count)
			if max > v.maxV {
				v.maxV = max
			}
		}
	}
	if len(v.groups) == 0 {
		return nil, fmt.Errorf("dataset: filter %v matches no rows", preds)
	}
	return v, nil
}

// addWhole appends group gi as an unfiltered zero-copy view. The group's
// max was tracked at build time, so this reads no rows — which keeps the
// inclusion-only path's "group index only" promise honest.
func (v *View) addWhole(t *Table, gi int) {
	tg := *(t.groups[gi].(*TableGroup))
	tg.resetView()
	v.groups = append(v.groups, &tg)
	v.rows += tg.Size()
	if m := tg.MaxValue(); m > v.maxV {
		v.maxV = m
	}
}

// filterGroup evaluates the value predicates over one group's rows and
// builds its selection vector, returning it with the survivors' sum and
// max (the view's mean and bound bookkeeping). Survivors are collected as
// sorted local rows first; dense results convert to a bitmap.
func (t *Table) filterGroup(gi int, preds []resolvedPredicate) (*selection, float64, float64) {
	lo, hi := t.offsets[gi], t.offsets[gi+1]
	col := t.col
	var idx []int32
	sum, max := 0.0, 0.0
	for row := lo; row < hi; row++ {
		ok := true
		for _, p := range preds {
			x := col[row]
			if p.col >= 0 {
				x = t.extras[p.col][row]
			}
			if !p.op.eval(x, p.c) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		idx = append(idx, int32(row-lo))
		sum += col[row]
		if col[row] > max {
			max = col[row]
		}
	}
	return sealSelection(idx, hi-lo), sum, max
}

// sealSelection wraps sorted local survivor rows as a selection, converting
// dense results to a bitmap.
func sealSelection(idx []int32, n int) *selection {
	sel := &selection{count: len(idx)}
	if len(idx) > 0 && float64(len(idx)) >= selectionDenseMin*float64(n) {
		bits := bitmap.New(n)
		for _, r := range idx {
			bits.Set(int(r))
		}
		// Build the rank index before the selection is published: views are
		// cached and shared across concurrent queries, and a lazy build on
		// first Select would race.
		bits.Index()
		sel.bits = bits
	} else {
		sel.idx = idx
	}
	return sel
}

// filterGroupBlocks is filterGroup for compressed tables, with zone-map
// pushdown: each block's manifest [min,max] is tested against every
// predicate first, so blocks no row of which can match are skipped without
// decoding, and predicates every row of a block satisfies are dropped from
// that block's per-row loop. Surviving rows accumulate in ascending order
// and the sum/max fold visits them in that same order, so the selection,
// mean, and bound are bit-for-bit what filterGroup would produce on the
// decoded data. Decode errors (corrupt blocks) are returned, not degraded.
func (t *Table) filterGroupBlocks(gi int, preds []resolvedPredicate) (*selection, float64, float64, error) {
	lo, hi := t.offsets[gi], t.offsets[gi+1]
	bl := t.bcols[0].blockLen
	var idx []int32
	sum, max := 0.0, 0.0
	// live holds the predicates still undecided for the current block,
	// liveCols their decoded column blocks.
	live := make([]resolvedPredicate, 0, len(preds))
	liveCols := make([][]float64, 0, len(preds))
	for b := lo / bl; b*bl < hi; b++ {
		rowLo, rowHi := b*bl, (b+1)*bl
		if rowLo < lo {
			rowLo = lo
		}
		if rowHi > hi {
			rowHi = hi
		}
		live = live[:0]
		skip := false
		for _, p := range preds {
			bc := t.bcols[0]
			if p.col >= 0 {
				bc = t.bcols[1+p.col]
			}
			switch bc.zones[b].relate(p.op, p.c) {
			case zoneNone:
				skip = true
			case zoneAll:
				// Provably true for every row of the block: drop it.
			default:
				live = append(live, p)
			}
			if skip {
				break
			}
		}
		if skip {
			continue
		}
		vals := t.bcols[0].block(b)
		liveCols = liveCols[:0]
		for _, p := range live {
			if p.col >= 0 {
				liveCols = append(liveCols, t.bcols[1+p.col].block(b))
			} else {
				liveCols = append(liveCols, vals)
			}
		}
		base := b * bl
		for row := rowLo; row < rowHi; row++ {
			ok := true
			for pi, p := range live {
				if !p.op.eval(liveCols[pi][row-base], p.c) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			v := vals[row-base]
			idx = append(idx, int32(row-lo))
			sum += v
			if v > max {
				max = v
			}
		}
	}
	if err := t.bcols[0].cache.Err(); err != nil {
		return nil, 0, 0, err
	}
	return sealSelection(idx, hi-lo), sum, max, nil
}

// FilteredGroup is one group of a View: a zero-copy column segment plus a
// selection vector over it. It supports every draw mode SliceGroup does —
// with-replacement (scalar and block), exact without-replacement via a
// lazily built Fisher–Yates permutation over selection ranks, and full
// scans — and consumes its RNG stream exactly as an equal-sized SliceGroup
// would (one Intn per draw), so a filtered run is bit-for-bit identical to
// the same run over a pre-materialized table of the surviving rows.
type FilteredGroup struct {
	name string
	col  []float64 // the group's full column segment (local row indexing)
	// win replaces col on compressed tables: reads decode through the
	// table's block cache, and batch draws gather in ascending row order so
	// each batch decodes every touched block once.
	win  *blockWindow
	sel  *selection
	mean float64

	perm []int32
	next int
	// rows is per-query scratch for staged block draws (ranks, then
	// positions). Like perm it is draw state: never shared across the
	// copies View() hands out — as are keys and vals, the window path's
	// gather-key and value scratch.
	rows []int32
	keys []uint64
	vals []float64
}

// val reads one selected row through whichever backing the group has.
func (g *FilteredGroup) val(row int) float64 {
	if g.win != nil {
		return g.win.at(row)
	}
	return g.col[row]
}

// valScratch returns the group's reusable value buffer with length n.
func (g *FilteredGroup) valScratch(n int) []float64 {
	if cap(g.vals) < n {
		g.vals = make([]float64, n)
	}
	g.vals = g.vals[:n]
	return g.vals
}

// gather fills dst[i] from local row rows[i]: a direct loop on a plain
// column, a block-sorted gather on a window (each touched block decoded
// once per batch).
func (g *FilteredGroup) gather(rows []int32, dst []float64) {
	if g.win != nil {
		g.win.gatherSorted(rows, dst, &g.keys)
		return
	}
	for i, row := range rows {
		dst[i] = g.col[row]
	}
}

// Name returns the group's name.
func (g *FilteredGroup) Name() string { return g.name }

// Size returns the selection cardinality.
func (g *FilteredGroup) Size() int64 { return int64(g.sel.count) }

// TrueMean returns the exact mean of the selected rows (computed during
// the filter pass; verification oracle only).
func (g *FilteredGroup) TrueMean() float64 { return g.mean }

// Draw samples a selected row uniformly with replacement: one rank draw,
// one rank→row map, no rejection.
func (g *FilteredGroup) Draw(r *xrand.RNG) float64 {
	return g.val(g.sel.row(r.Intn(g.sel.count)))
}

// DrawBatch fills dst with uniform with-replacement samples. The block is
// staged — draw every rank, map all ranks to rows at once, then gather —
// so on the bitmap representation the rank→row searches and the column
// loads run as independent chains the CPU can overlap, instead of one
// long serial latency chain per draw. RNG consumption is identical to the
// per-draw loop (one Intn per sample, in order), so results are
// bit-for-bit unchanged.
func (g *FilteredGroup) DrawBatch(r *xrand.RNG, dst []float64) {
	n := g.sel.count
	if g.sel.bits == nil {
		if g.win != nil {
			rows := g.rowScratch(len(dst))
			for i := range rows {
				rows[i] = g.sel.idx[r.Intn(n)]
			}
			g.gather(rows, dst)
			return
		}
		for i := range dst {
			dst[i] = g.col[g.sel.idx[r.Intn(n)]]
		}
		return
	}
	rows := g.rowScratch(len(dst))
	for i := range rows {
		rows[i] = int32(r.Intn(n))
	}
	if err := g.sel.bits.SelectBatch(rows); err != nil {
		panic(err) // ranks < count by construction
	}
	g.gather(rows, dst)
}

// rowScratch returns the group's staging buffer with length n.
func (g *FilteredGroup) rowScratch(n int) []int32 {
	if cap(g.rows) < n {
		g.rows = make([]int32, n)
	}
	g.rows = g.rows[:n]
	return g.rows
}

// DrawWithoutReplacement consumes a uniform random permutation of the
// selected rows, built lazily over selection ranks.
func (g *FilteredGroup) DrawWithoutReplacement(r *xrand.RNG) (float64, bool) {
	n := g.sel.count
	if g.next >= n {
		return 0, false
	}
	g.ensurePerm()
	j := g.next + r.Intn(n-g.next)
	g.perm[g.next], g.perm[j] = g.perm[j], g.perm[g.next]
	v := g.val(g.sel.row(int(g.perm[g.next])))
	g.next++
	return v, true
}

// DrawBatchWithoutReplacement consumes up to len(dst) further permutation
// elements, returning how many it produced. Like DrawBatch, the block is
// staged: the Fisher–Yates steps (inherently sequential) run first, then
// the rank→row mapping and column gather proceed as overlappable batches.
func (g *FilteredGroup) DrawBatchWithoutReplacement(r *xrand.RNG, dst []float64) int {
	n := g.sel.count
	if g.next >= n {
		return 0
	}
	g.ensurePerm()
	taken := 0
	if g.sel.bits != nil {
		rows := g.rowScratch(len(dst))
		for taken < len(dst) && g.next < n {
			j := g.next + r.Intn(n-g.next)
			g.perm[g.next], g.perm[j] = g.perm[j], g.perm[g.next]
			rows[taken] = g.perm[g.next]
			g.next++
			taken++
		}
		rows = rows[:taken]
		if err := g.sel.bits.SelectBatch(rows); err != nil {
			panic(err) // permutation ranks < count by construction
		}
		g.gather(rows, dst[:taken])
		return taken
	}
	if g.win != nil {
		rows := g.rowScratch(len(dst))
		for taken < len(dst) && g.next < n {
			j := g.next + r.Intn(n-g.next)
			g.perm[g.next], g.perm[j] = g.perm[j], g.perm[g.next]
			rows[taken] = g.sel.idx[g.perm[g.next]]
			g.next++
			taken++
		}
		g.gather(rows[:taken], dst[:taken])
		return taken
	}
	for taken < len(dst) && g.next < n {
		j := g.next + r.Intn(n-g.next)
		g.perm[g.next], g.perm[j] = g.perm[j], g.perm[g.next]
		dst[taken] = g.col[g.sel.idx[g.perm[g.next]]]
		g.next++
		taken++
	}
	return taken
}

func (g *FilteredGroup) ensurePerm() {
	if g.perm == nil {
		g.perm = make([]int32, g.sel.count)
		for i := range g.perm {
			g.perm[i] = int32(i)
		}
	}
}

// ResetDraws restarts without-replacement sampling (O(1), like
// SliceGroup: resuming suffix consumption over any arrangement yields a
// fresh uniform permutation).
func (g *FilteredGroup) ResetDraws() { g.next = 0 }

// Scan visits every selected value, enabling bound inference and the SCAN
// baseline on filtered data.
func (g *FilteredGroup) Scan(fn func(v float64)) int64 {
	// Both representations visit rows ascending, so the window path (val)
	// decodes each touched block once through the cursor memo.
	if g.sel.bits != nil {
		g.sel.bits.ForEach(func(pos int) bool {
			fn(g.val(pos))
			return true
		})
	} else {
		for _, r := range g.sel.idx {
			fn(g.val(int(r)))
		}
	}
	return int64(g.sel.count)
}
