package dataset

import (
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/xrand"
)

// buildTestTable returns a small table with two extra columns and uneven
// group sizes, exercising offsets, extras alignment, and statistics.
func buildTestTable(t *testing.T) *Table {
	t.Helper()
	b := NewTableBuilderColumns("delay", "elapsed", "distance")
	rng := xrand.New(7)
	groups := []string{"AA", "UA", "DL", "WN"}
	for gi, g := range groups {
		rows := 37 + 61*gi
		for i := 0; i < rows; i++ {
			v := 100 * rng.Float64()
			if err := b.AddRow(g, v, v*2+1, float64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	tab, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestSegmentRoundTrip(t *testing.T) {
	tab := buildTestTable(t)
	dir := t.TempDir()
	if err := tab.WriteSegments(dir); err != nil {
		t.Fatal(err)
	}
	st, err := OpenSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	if err := st.VerifyChecksums(); err != nil {
		t.Fatalf("VerifyChecksums on a clean write: %v", err)
	}
	if st.K() != tab.K() || st.NumRows() != tab.NumRows() {
		t.Fatalf("shape mismatch: got %d groups/%d rows, want %d/%d", st.K(), st.NumRows(), tab.K(), tab.NumRows())
	}
	if st.ValueColumnName() != tab.ValueColumnName() {
		t.Fatalf("value name %q != %q", st.ValueColumnName(), tab.ValueColumnName())
	}
	if got, want := st.ExtraColumnNames(), tab.ExtraColumnNames(); len(got) != len(want) {
		t.Fatalf("extra names %v != %v", got, want)
	}
	if st.MinValue() != tab.MinValue() || st.MaxValue() != tab.MaxValue() {
		t.Fatalf("range [%v,%v] != [%v,%v]", st.MinValue(), st.MaxValue(), tab.MinValue(), tab.MaxValue())
	}
	for gi := range tab.Names() {
		if st.Names()[gi] != tab.Names()[gi] {
			t.Fatalf("group %d name %q != %q", gi, st.Names()[gi], tab.Names()[gi])
		}
		got, want := st.Column(gi), tab.Column(gi)
		if len(got) != len(want) {
			t.Fatalf("group %d has %d rows, want %d", gi, len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("group %d row %d: %v != %v", gi, i, got[i], want[i])
			}
		}
		sg := st.Groups()[gi].(*TableGroup)
		mg := tab.Groups()[gi].(*TableGroup)
		if math.Float64bits(sg.TrueMean()) != math.Float64bits(mg.TrueMean()) {
			t.Fatalf("group %d mean %v != %v", gi, sg.TrueMean(), mg.TrueMean())
		}
		if math.Float64bits(sg.MaxValue()) != math.Float64bits(mg.MaxValue()) {
			t.Fatalf("group %d max %v != %v", gi, sg.MaxValue(), mg.MaxValue())
		}
	}
	for _, name := range tab.ExtraColumnNames() {
		got, _ := st.ExtraColumn(name)
		want, _ := tab.ExtraColumn(name)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("extra %q row %d: %v != %v", name, i, got[i], want[i])
			}
		}
	}
	if info, err := ReadSegmentManifest(dir); err != nil {
		t.Fatal(err)
	} else if info.Rows != int64(tab.NumRows()) || len(info.GroupNames) != tab.K() {
		t.Fatalf("manifest info %+v does not match table", info)
	}
}

// TestSegmentDrawsMatchInMemory pins the core bit-identity contract: every
// draw mode on a segment-backed group consumes the RNG and produces values
// exactly like its in-memory twin.
func TestSegmentDrawsMatchInMemory(t *testing.T) {
	tab := buildTestTable(t)
	dir := t.TempDir()
	if err := tab.WriteSegments(dir); err != nil {
		t.Fatal(err)
	}
	st, err := OpenSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	modes := []struct {
		name string
		run  func(g Group, r *xrand.RNG, out []float64) int
	}{
		{"scalar-wr", func(g Group, r *xrand.RNG, out []float64) int {
			for i := range out {
				out[i] = g.Draw(r)
			}
			return len(out)
		}},
		{"batch-wr", func(g Group, r *xrand.RNG, out []float64) int {
			g.(BatchGroup).DrawBatch(r, out)
			return len(out)
		}},
		{"scalar-wor", func(g Group, r *xrand.RNG, out []float64) int {
			n := 0
			for n < len(out) {
				v, ok := g.(WithoutReplacementGroup).DrawWithoutReplacement(r)
				if !ok {
					break
				}
				out[n] = v
				n++
			}
			return n
		}},
		{"batch-wor", func(g Group, r *xrand.RNG, out []float64) int {
			n := 0
			for n < len(out) {
				lim := n + 64
				if lim > len(out) {
					lim = len(out)
				}
				took := g.(BatchWithoutReplacementGroup).DrawBatchWithoutReplacement(r, out[n:lim])
				if took == 0 {
					break
				}
				n += took
			}
			return n
		}},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			memViews, segViews := tab.View(), st.View()
			for gi := range memViews {
				want := make([]float64, 300) // exceeds the smallest group: WOR paths exhaust
				got := make([]float64, 300)
				nw := mode.run(memViews[gi], xrand.New(uint64(11+gi)), want)
				ng := mode.run(segViews[gi], xrand.New(uint64(11+gi)), got)
				if nw != ng {
					t.Fatalf("group %d: in-memory produced %d values, segment %d", gi, nw, ng)
				}
				for i := 0; i < nw; i++ {
					if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
						t.Fatalf("group %d draw %d: in-memory %v, segment %v", gi, i, want[i], got[i])
					}
				}
			}
		})
	}
}

// TestSparseMatchesDense forces the sparse permutation on small groups and
// pins that it draws the identical stream, including across ResetDraws.
func TestSparseMatchesDense(t *testing.T) {
	old := sparsePermGate
	defer func() { sparsePermGate = old }()

	tab := buildTestTable(t)
	dir := t.TempDir()
	if err := tab.WriteSegments(dir); err != nil {
		t.Fatal(err)
	}

	sparsePermGate = 1 // every segment group goes sparse
	stSparse, err := OpenSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer stSparse.Close()
	sparsePermGate = 1 << 30 // every segment group stays dense
	stDense, err := OpenSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer stDense.Close()

	for gi := range tab.Names() {
		sg := stSparse.Groups()[gi].(*TableGroup)
		dg := stDense.Groups()[gi].(*TableGroup)
		if !sg.sparse {
			t.Fatalf("group %d: expected sparse permutation", gi)
		}
		if dg.sparse {
			t.Fatalf("group %d: expected dense permutation", gi)
		}
		rs, rd := xrand.New(uint64(31+gi)), xrand.New(uint64(31+gi))
		// Interleave scalar and batch WOR draws, exhaust, reset, redraw:
		// the sparse map must stay a valid permutation throughout.
		for round := 0; round < 3; round++ {
			var a, b [17]float64
			na := sg.DrawBatchWithoutReplacement(rs, a[:])
			nb := dg.DrawBatchWithoutReplacement(rd, b[:])
			if na != nb {
				t.Fatalf("group %d round %d: sparse took %d, dense %d", gi, round, na, nb)
			}
			for i := 0; i < na; i++ {
				if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
					t.Fatalf("group %d round %d draw %d: sparse %v, dense %v", gi, round, i, a[i], b[i])
				}
			}
			vs, oks := sg.DrawWithoutReplacement(rs)
			vd, okd := dg.DrawWithoutReplacement(rd)
			if oks != okd || math.Float64bits(vs) != math.Float64bits(vd) {
				t.Fatalf("group %d round %d scalar: sparse (%v,%v), dense (%v,%v)", gi, round, vs, oks, vd, okd)
			}
		}
		// Exhaust both fully; the consumed multiset must equal the column.
		for {
			vs, oks := sg.DrawWithoutReplacement(rs)
			vd, okd := dg.DrawWithoutReplacement(rd)
			if oks != okd {
				t.Fatalf("group %d exhaustion disagreement", gi)
			}
			if !oks {
				break
			}
			if math.Float64bits(vs) != math.Float64bits(vd) {
				t.Fatalf("group %d post-reset draw: sparse %v, dense %v", gi, vs, vd)
			}
		}
		// Reset and redraw: the retained sparse arrangement must still be a
		// valid permutation (every row drawn exactly once).
		sg.ResetDraws()
		seen := make(map[int32]int)
		n := int(sg.Size())
		for i := 0; i < n; i++ {
			row := sg.permStep(rs)
			seen[row]++
		}
		if len(seen) != n {
			t.Fatalf("group %d: post-reset permutation visited %d distinct rows, want %d", gi, len(seen), n)
		}
	}
}

// TestSegmentKernelMatchesInMemory pins DrawBlockSum equivalence through a
// Sampler with kernels enabled — the path the round driver actually takes.
func TestSegmentKernelMatchesInMemory(t *testing.T) {
	tab := buildTestTable(t)
	dir := t.TempDir()
	if err := tab.WriteSegments(dir); err != nil {
		t.Fatal(err)
	}
	st, err := OpenSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for _, without := range []bool{true, false} {
		memU := NewUniverse(101, tab.View()...)
		segU := NewUniverse(101, st.View()...)
		ms := NewStreamSampler(memU, 99, without)
		ss := NewStreamSampler(segU, 99, without)
		ms.EnableBlockKernels()
		ss.EnableBlockKernels()
		for round := 0; round < 8; round++ {
			for gi := 0; gi < memU.K(); gi++ {
				a, aok := ms.DrawBlockSum(gi, 64)
				b, bok := ss.DrawBlockSum(gi, 64)
				if !aok || !bok {
					t.Fatalf("kernel not engaged (mem %v, seg %v)", aok, bok)
				}
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("without=%v round %d group %d: in-memory sum %v, segment %v", without, round, gi, a, b)
				}
			}
		}
	}
}

// corruptFile flips, truncates, or rewrites part of a file in place.
func corruptFile(t *testing.T, path string, mutate func([]byte) []byte) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(b), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestOpenSegmentsCorruption is the table-driven corruption matrix: every
// damaged input must produce a descriptive error (and never a panic).
func TestOpenSegmentsCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
		errHas  string
		// verify=true means the damage is only detectable by the full
		// checksum pass, not the structural open.
		verify bool
	}{
		{
			name:    "missing-manifest",
			corrupt: func(t *testing.T, dir string) { os.Remove(filepath.Join(dir, "manifest.json")) },
			errHas:  "manifest.json",
		},
		{
			name: "manifest-garbage",
			corrupt: func(t *testing.T, dir string) {
				os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{not json"), 0o644)
			},
			errHas: "malformed manifest",
		},
		{
			name: "manifest-bad-magic",
			corrupt: func(t *testing.T, dir string) {
				rewriteManifest(t, dir, func(s string) string { return strings.Replace(s, "RVSEGTBL", "NOTMAGIC", 1) })
			},
			errHas: "bad manifest magic",
		},
		{
			name: "manifest-bad-version",
			corrupt: func(t *testing.T, dir string) {
				rewriteManifest(t, dir, func(s string) string { return strings.Replace(s, `"version": 1`, `"version": 99`, 1) })
			},
			errHas: "unsupported format version",
		},
		{
			name: "manifest-row-mismatch",
			corrupt: func(t *testing.T, dir string) {
				rewriteManifest(t, dir, func(s string) string {
					// The top-level row count is the first "rows" field.
					return strings.Replace(s, `"rows": 514`, `"rows": 518`, 1)
				})
			},
			errHas: "sum to",
		},
		{
			name:    "value-missing",
			corrupt: func(t *testing.T, dir string) { os.Remove(filepath.Join(dir, "value.seg")) },
			errHas:  "value.seg",
		},
		{
			name: "value-truncated-header",
			corrupt: func(t *testing.T, dir string) {
				corruptFile(t, filepath.Join(dir, "value.seg"), func(b []byte) []byte { return b[:40] })
			},
			errHas: "shorter than",
		},
		{
			name: "value-truncated-data",
			corrupt: func(t *testing.T, dir string) {
				corruptFile(t, filepath.Join(dir, "value.seg"), func(b []byte) []byte { return b[:len(b)-128] })
			},
			errHas: "truncated",
		},
		{
			name: "value-bad-magic",
			corrupt: func(t *testing.T, dir string) {
				corruptFile(t, filepath.Join(dir, "value.seg"), func(b []byte) []byte {
					copy(b[0:8], "XXSEGCOL")
					return b
				})
			},
			errHas: "bad magic",
		},
		{
			name: "value-bad-endian-marker",
			corrupt: func(t *testing.T, dir string) {
				corruptFile(t, filepath.Join(dir, "value.seg"), func(b []byte) []byte {
					// Byte-swap the marker and re-seal the header CRC so the
					// marker check itself is what fires.
					binary.LittleEndian.PutUint32(b[12:16], 0x04030201)
					resealHeader(b)
					return b
				})
			},
			errHas: "endianness marker",
		},
		{
			name: "value-header-crc",
			corrupt: func(t *testing.T, dir string) {
				corruptFile(t, filepath.Join(dir, "value.seg"), func(b []byte) []byte {
					b[16] ^= 0xFF // row count byte; CRC no longer matches
					return b
				})
			},
			errHas: "header checksum mismatch",
		},
		{
			name: "value-rowcount-mismatch",
			corrupt: func(t *testing.T, dir string) {
				corruptFile(t, filepath.Join(dir, "value.seg"), func(b []byte) []byte {
					rows := binary.LittleEndian.Uint64(b[16:24])
					binary.LittleEndian.PutUint64(b[16:24], rows+1)
					binary.LittleEndian.PutUint64(b[24:32], (rows+1)*8)
					resealHeader(b)
					return b
				})
			},
			errHas: "manifest declares",
		},
		{
			name:    "extra-missing",
			corrupt: func(t *testing.T, dir string) { os.Remove(filepath.Join(dir, "extra.1.seg")) },
			errHas:  "extra.1.seg",
		},
		{
			name: "value-data-flip",
			corrupt: func(t *testing.T, dir string) {
				corruptFile(t, filepath.Join(dir, "value.seg"), func(b []byte) []byte {
					b[64+100] ^= 0x01
					return b
				})
			},
			errHas: "checksum mismatch",
			verify: true,
		},
		{
			name: "extra-data-flip",
			corrupt: func(t *testing.T, dir string) {
				corruptFile(t, filepath.Join(dir, "extra.0.seg"), func(b []byte) []byte {
					b[len(b)-1] ^= 0x80
					return b
				})
			},
			errHas: "checksum mismatch",
			verify: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tab := buildTestTable(t)
			dir := t.TempDir()
			if err := tab.WriteSegments(dir); err != nil {
				t.Fatal(err)
			}
			tc.corrupt(t, dir)
			st, err := OpenSegments(dir)
			if tc.verify {
				if err != nil {
					t.Fatalf("structural open should pass for %s: %v", tc.name, err)
				}
				defer st.Close()
				err = st.VerifyChecksums()
			}
			if err == nil {
				t.Fatalf("expected an error for %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.errHas) {
				t.Fatalf("error %q does not mention %q", err, tc.errHas)
			}
		})
	}
}

// resealHeader recomputes the header CRC after a deliberate header edit,
// so the test isolates the field check it is aiming at.
func resealHeader(b []byte) {
	binary.LittleEndian.PutUint32(b[32:36], crc32.Checksum(b[:32], castagnoli))
}

// rewriteManifest applies a textual edit to manifest.json.
func rewriteManifest(t *testing.T, dir string, edit func(string) string) {
	t.Helper()
	path := filepath.Join(dir, "manifest.json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(edit(string(b))), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentWriterErrors pins the writer's own validation.
func TestSegmentWriterErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := CreateSegments(filepath.Join(dir, "sub", "x"), "v"); err != nil {
		t.Fatalf("nested dir create: %v", err)
	}

	w, err := CreateSegments(filepath.Join(dir, "a"), "v", "e")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1); err == nil || !strings.Contains(err.Error(), "before StartGroup") {
		t.Fatalf("append before StartGroup: %v", err)
	}

	w, _ = CreateSegments(filepath.Join(dir, "b"), "v")
	if err := w.StartGroup("g"); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(-1); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative value: %v", err)
	}

	w, _ = CreateSegments(filepath.Join(dir, "c"), "v")
	w.StartGroup("g")
	w.Append(1)
	if err := w.StartGroup("g"); err == nil || !strings.Contains(err.Error(), "duplicate group") {
		t.Fatalf("duplicate group: %v", err)
	}

	w, _ = CreateSegments(filepath.Join(dir, "d"), "v")
	w.StartGroup("g")
	if err := w.Close(); err == nil || !strings.Contains(err.Error(), "no rows") {
		t.Fatalf("empty group at close: %v", err)
	}
	if _, err := OpenSegments(filepath.Join(dir, "d")); err == nil {
		t.Fatal("aborted directory must not open")
	}

	w, _ = CreateSegments(filepath.Join(dir, "e"), "v")
	if err := w.Close(); err == nil || !strings.Contains(err.Error(), "no rows") {
		t.Fatalf("zero-row close: %v", err)
	}
}
