package dataset

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/xrand"
)

// hammerUniverse builds a small slice universe for the concurrency tests.
func hammerUniverse(k, n int) *Universe {
	r := xrand.New(0x7a11)
	groups := make([]Group, k)
	for g := range groups {
		values := make([]float64, n)
		for i := range values {
			values[i] = float64(g) + r.Float64()
		}
		groups[g] = NewSliceGroup(fmt.Sprintf("h%d", g), values)
	}
	return NewUniverse(float64(k)+1, groups...)
}

// TestSamplerConcurrentGroupDraws is the race regression for the atomic
// accounting: one sampler over one universe is hammered by a goroutine per
// group — mixed single draws, block draws, and Record calls — and the
// shared counters must reconcile exactly. Run with -race this pins the
// concurrency contract of the parallel round driver: distinct groups of
// one sampler may be drawn concurrently.
func TestSamplerConcurrentGroupDraws(t *testing.T) {
	const (
		k       = 16
		rows    = 2000
		rounds  = 50
		perStep = 7
	)
	for _, without := range []bool{false, true} {
		t.Run(fmt.Sprintf("without=%v", without), func(t *testing.T) {
			u := hammerUniverse(k, rows)
			s := NewStreamSampler(u, 0xfeedbeef, without)
			var wg sync.WaitGroup
			for i := 0; i < k; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					buf := make([]float64, perStep)
					for r := 0; r < rounds; r++ {
						s.Draw(i)
						s.DrawBatch(i, buf)
						s.Record(i, 2)
					}
				}(i)
			}
			wg.Wait()
			want := int64(rounds * (1 + perStep + 2))
			var total int64
			for i := 0; i < k; i++ {
				if got := s.Count(i); got != want {
					t.Fatalf("group %d count %d, want %d", i, got, want)
				}
				total += want
			}
			if got := s.Total(); got != total {
				t.Fatalf("total %d, want %d", got, total)
			}
		})
	}
}

// TestStreamSamplerOrderInvariance pins the per-group stream discipline:
// the values a group yields depend only on how many samples it has taken,
// not on the order groups are visited — the property that makes parallel
// rounds bit-identical to sequential ones.
func TestStreamSamplerOrderInvariance(t *testing.T) {
	const k, n, draws = 6, 500, 40
	forward := make([][]float64, k)
	u := hammerUniverse(k, n)
	s := NewStreamSampler(u, 0xabc, true)
	for i := 0; i < k; i++ {
		forward[i] = make([]float64, draws)
		s.DrawBatch(i, forward[i])
	}
	// Reverse visiting order, interleaved draw granularity.
	u2 := hammerUniverse(k, n)
	s2 := NewStreamSampler(u2, 0xabc, true)
	got := make([][]float64, k)
	for i := k - 1; i >= 0; i-- {
		got[i] = make([]float64, draws)
		for d := 0; d < draws; d++ {
			got[i][d] = s2.Draw(i)
		}
	}
	for i := 0; i < k; i++ {
		for d := 0; d < draws; d++ {
			if forward[i][d] != got[i][d] {
				t.Fatalf("group %d draw %d differs across visit orders: %v vs %v", i, d, got[i][d], forward[i][d])
			}
		}
	}
}

// tableFingerprint renders every structural property of a table.
func tableFingerprint(tb *Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "k=%d rows=%d min=%v max=%v names=%v offsets=%v col=%v",
		tb.K(), tb.NumRows(), tb.MinValue(), tb.MaxValue(), tb.Names(), tb.offsets, tb.col)
	return b.String()
}

// shardRows builds an ingestion workload whose groups interleave heavily,
// so shard boundaries cut through every group.
func shardRows(n int) []Row {
	r := rand.New(rand.NewSource(17))
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{Group: fmt.Sprintf("g%02d", r.Intn(23)), Value: float64(i%97) + r.Float64()}
	}
	return rows
}

// TestBuildTableWorkersIdentical: sharded builds must be byte-identical to
// the sequential build for every worker count — group order, per-group row
// order, offsets, and value range included.
func TestBuildTableWorkersIdentical(t *testing.T) {
	rows := shardRows(10_000)
	ref, err := BuildTableWorkers(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := tableFingerprint(ref)
	for _, workers := range []int{2, 3, 5, 8, 16, 61} {
		got, err := BuildTableWorkers(rows, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if fp := tableFingerprint(got); fp != want {
			t.Fatalf("workers=%d table differs from sequential build", workers)
		}
	}
}

// TestBuildTableWorkersShuffledMerge pins the stable merge directly: the
// merged table must be a function of shard *positions*, not of the order
// shards were produced. Stages are filled in a shuffled completion order
// (as a racing pool would) and the merge must still equal the sequential
// build.
func TestBuildTableWorkersShuffledMerge(t *testing.T) {
	rows := shardRows(3_000)
	ref, err := BuildTableWorkers(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := tableFingerprint(ref)

	const nshards = 7
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		stages := make([]*tableStage, nshards)
		order := r.Perm(nshards)
		for _, si := range order { // shuffled completion order
			lo := si * len(rows) / nshards
			hi := (si + 1) * len(rows) / nshards
			s := newTableStage()
			for _, row := range rows[lo:hi] {
				s.add(row.Group, row.Value, nil)
			}
			stages[si] = &s
		}
		got, err := mergeStages(stages, 4)
		if err != nil {
			t.Fatal(err)
		}
		if fp := tableFingerprint(got); fp != want {
			t.Fatalf("trial %d: shuffled shard completion changed the table", trial)
		}
	}
}

// csvPayload renders rows as CSV with a header and assorted spacing.
func csvPayload(rows []Row) string {
	var b strings.Builder
	b.WriteString("group,value\n")
	for i, row := range rows {
		if i%3 == 1 {
			b.WriteString(" ") // leading space: TrimLeadingSpace must hold per shard
		}
		fmt.Fprintf(&b, "%s,%v\n", row.Group, row.Value)
	}
	return b.String()
}

// TestReadCSVWorkersIdentical: the sharded CSV parse must produce a table
// byte-identical to the sequential parse at every worker count.
func TestReadCSVWorkersIdentical(t *testing.T) {
	payload := csvPayload(shardRows(8_000))
	ref, err := ReadCSVWorkers(strings.NewReader(payload), 1)
	if err != nil {
		t.Fatal(err)
	}
	want := tableFingerprint(ref)
	for _, workers := range []int{2, 3, 4, 9, 32} {
		got, err := ReadCSVWorkers(strings.NewReader(payload), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if fp := tableFingerprint(got); fp != want {
			t.Fatalf("workers=%d table differs from sequential parse", workers)
		}
	}
	// Headerless input must shard identically too.
	headerless := strings.TrimPrefix(payload, "group,value\n")
	ref2, err := ReadCSVWorkers(strings.NewReader(headerless), 1)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := ReadCSVWorkers(strings.NewReader(headerless), 8)
	if err != nil {
		t.Fatal(err)
	}
	if tableFingerprint(got2) != tableFingerprint(ref2) {
		t.Fatal("headerless sharded parse differs from sequential")
	}
}

// TestReadCSVWorkersErrorsMatchSequential: a malformed record mid-file
// must surface the canonical sequential error (record number included),
// and quoted fields must take the sequential path rather than risk a bad
// split.
func TestReadCSVWorkersErrorsMatchSequential(t *testing.T) {
	bad := csvPayload(shardRows(2_000)) + "oops,not-a-number\n"
	_, seqErr := ReadCSVWorkers(strings.NewReader(bad), 1)
	if seqErr == nil {
		t.Fatal("sequential parse accepted bad value")
	}
	_, parErr := ReadCSVWorkers(strings.NewReader(bad), 8)
	if parErr == nil || parErr.Error() != seqErr.Error() {
		t.Fatalf("parallel error %q, want canonical %q", parErr, seqErr)
	}

	quoted := "g,1\n\"g\",2\n\"multi\nline\",3\n"
	seq, err := ReadCSVWorkers(strings.NewReader(quoted), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ReadCSVWorkers(strings.NewReader(quoted), 8)
	if err != nil {
		t.Fatal(err)
	}
	if tableFingerprint(par) != tableFingerprint(seq) {
		t.Fatal("quoted input parsed differently in parallel mode")
	}

	neg := "g,1\nh,-4\ng,2\n"
	_, seqNeg := ReadCSVWorkers(strings.NewReader(neg), 1)
	_, parNeg := ReadCSVWorkers(strings.NewReader(neg), 4)
	if seqNeg == nil || parNeg == nil || parNeg.Error() != seqNeg.Error() {
		t.Fatalf("negative-value errors differ: %v vs %v", parNeg, seqNeg)
	}
}

// TestTableViewIndependence: views share packed values with the table but
// carry independent draw state, so concurrent without-replacement queries
// can each consume their own permutation.
func TestTableViewIndependence(t *testing.T) {
	tb, err := BuildTable([]Row{{"a", 1}, {"a", 2}, {"a", 3}, {"b", 9}})
	if err != nil {
		t.Fatal(err)
	}
	v1 := tb.View()
	v2 := tb.View()
	if &v1[0].(*TableGroup).values[0] != &tb.Column(0)[0] {
		t.Fatal("view copied the column storage")
	}
	// Exhaust view 1's group a; view 2 and the table's own groups must be
	// untouched.
	r := xrand.New(3)
	wg := v1[0].(*TableGroup)
	for {
		if _, ok := wg.DrawWithoutReplacement(r); !ok {
			break
		}
	}
	if v2[0].(*TableGroup).next != 0 || tb.Groups()[0].(*TableGroup).next != 0 {
		t.Fatal("draw state leaked between views")
	}
	if v1[0].(*TableGroup).mean != tb.Groups()[0].(*TableGroup).mean {
		t.Fatal("view lost the precomputed mean")
	}
}

// TestReadCSVWorkersEmptyLeadingShard: blank lines are skipped by the CSV
// parser, so a shard can stage zero records; the merge must seed the value
// range from the first shard that actually holds rows (regression: an
// empty first shard used to poison MinValue with 0).
func TestReadCSVWorkersEmptyLeadingShard(t *testing.T) {
	payload := strings.Repeat("\n", 1000) + "a,50\nb,60\n"
	for _, workers := range []int{1, 4} {
		tb, err := ReadCSVWorkers(strings.NewReader(payload), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if tb.MinValue() != 50 || tb.MaxValue() != 60 {
			t.Fatalf("workers=%d: value range [%v, %v], want [50, 60]", workers, tb.MinValue(), tb.MaxValue())
		}
	}
}

// TestBuildTableWorkersHighCardinality: one group per row keeps the merge
// linear (regression: the pack phase used to rescan every shard per global
// group, quadratic when K ~ rows) and still byte-identical to sequential.
func TestBuildTableWorkersHighCardinality(t *testing.T) {
	rows := make([]Row, 20_000)
	for i := range rows {
		rows[i] = Row{Group: fmt.Sprintf("u%05d", i), Value: float64(i)}
	}
	ref, err := BuildTableWorkers(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := BuildTableWorkers(rows, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tableFingerprint(got) != tableFingerprint(ref) {
		t.Fatal("high-cardinality sharded build differs from sequential")
	}
}
