package dataset

import (
	"os"
	"sync"
	"testing"

	"repro/internal/xrand"
)

// segBench lazily builds one shared benchmark fixture: a 4-group x 2M-row
// table (64 MB value column) both in memory and as a segment directory.
// Built once per test-binary run; the directory lives under the OS temp
// root (benchmarks share it, so it outlives any one of them).
var segBench struct {
	once sync.Once
	dir  string
	tbl  *Table
	err  error
}

func segBenchFixture(b *testing.B) (*Table, string) {
	b.Helper()
	segBench.once.Do(func() {
		const groups, rows = 4, 2_000_000
		builder := NewTableBuilder()
		rng := xrand.New(31)
		for gi := 0; gi < groups; gi++ {
			name := string(rune('A' + gi))
			for i := 0; i < rows; i++ {
				builder.Add(name, 100*rng.Float64())
			}
		}
		segBench.tbl, segBench.err = builder.Build()
		if segBench.err != nil {
			return
		}
		segBench.dir, segBench.err = os.MkdirTemp("", "segbench")
		if segBench.err != nil {
			return
		}
		segBench.err = segBench.tbl.WriteSegments(segBench.dir)
	})
	if segBench.err != nil {
		b.Fatal(segBench.err)
	}
	return segBench.tbl, segBench.dir
}

// benchSegDraws runs the fixed draw workload — per group, 64-row
// without-replacement blocks until 16384 draws — against the given groups
// and reports draws/sec.
func benchSegDraws(b *testing.B, groups []Group) {
	const perGroup = 16384
	const block = 64
	buf := make([]float64, block)
	total := 0
	for i := 0; i < b.N; i++ {
		for gi, g := range groups {
			wg := g.(BatchWithoutReplacementGroup)
			if wr, ok := g.(WithoutReplacementGroup); ok {
				wr.ResetDraws()
			}
			r := xrand.Stream(7, uint64(gi))
			for d := 0; d < perGroup; d += block {
				wg.DrawBatchWithoutReplacement(&r, buf)
				total += block
			}
		}
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "draws/sec")
}

// BenchmarkSegmentDraw compares the block-draw hot path across backings:
// the in-memory SliceGroup baseline, a warm mmap-backed segment table
// (pages resident — the steady state of a served table), and a cold one
// (page cache dropped before every iteration, readahead disabled — each
// draw block pays real faults). Recorded in CI's BENCH_core.json; the
// out-of-core acceptance is warm staying within 2x of in-memory at
// batch=64.
func BenchmarkSegmentDraw(b *testing.B) {
	tbl, dir := segBenchFixture(b)

	b.Run("inmem", func(b *testing.B) {
		b.ReportAllocs()
		groups := tbl.View()
		b.ResetTimer()
		benchSegDraws(b, groups)
	})

	b.Run("warm-mmap", func(b *testing.B) {
		st, err := OpenSegments(dir)
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		// Touch every page up front: the steady state of a long-lived
		// served table (and a full integrity check at the same time).
		if err := st.VerifyChecksums(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		groups := st.View()
		b.ResetTimer()
		benchSegDraws(b, groups)
	})

	b.Run("cold-mmap", func(b *testing.B) {
		st, err := OpenSegments(dir)
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		if !st.Mapped() {
			b.Skip("nommap fallback: no cold path to measure")
		}
		if err := st.AdviseRandom(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		groups := st.View()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := st.DropPageCache(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			benchSegDrawsOnce(b, groups)
		}
		b.ReportMetric(float64(b.N*4*16384)/b.Elapsed().Seconds(), "draws/sec")
	})
}

// benchSegDrawsOnce is one iteration of the fixed workload, for callers
// managing the timer themselves.
func benchSegDrawsOnce(b *testing.B, groups []Group) {
	const perGroup = 16384
	const block = 64
	buf := make([]float64, block)
	for gi, g := range groups {
		wg := g.(BatchWithoutReplacementGroup)
		if wr, ok := g.(WithoutReplacementGroup); ok {
			wr.ResetDraws()
		}
		r := xrand.Stream(7, uint64(gi))
		for d := 0; d < perGroup; d += block {
			wg.DrawBatchWithoutReplacement(&r, buf)
		}
	}
}
