package dataset

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/xrand"
)

// segBench lazily builds one shared benchmark fixture: a 4-group x 2M-row
// table (64 MB value column) both in memory and as a segment directory.
// Built once per test-binary run; the directory lives under the OS temp
// root (benchmarks share it, so it outlives any one of them).
var segBench struct {
	once sync.Once
	dir  string
	tbl  *Table
	err  error
}

func segBenchFixture(b *testing.B) (*Table, string) {
	b.Helper()
	segBench.once.Do(func() {
		const groups, rows = 4, 2_000_000
		builder := NewTableBuilder()
		rng := xrand.New(31)
		for gi := 0; gi < groups; gi++ {
			name := string(rune('A' + gi))
			for i := 0; i < rows; i++ {
				builder.Add(name, 100*rng.Float64())
			}
		}
		segBench.tbl, segBench.err = builder.Build()
		if segBench.err != nil {
			return
		}
		segBench.dir, segBench.err = os.MkdirTemp("", "segbench")
		if segBench.err != nil {
			return
		}
		segBench.err = segBench.tbl.WriteSegments(segBench.dir)
	})
	if segBench.err != nil {
		b.Fatal(segBench.err)
	}
	return segBench.tbl, segBench.dir
}

// benchSegDraws runs the fixed draw workload — per group, 64-row
// without-replacement blocks until 16384 draws — against the given groups
// and reports draws/sec.
func benchSegDraws(b *testing.B, groups []Group) {
	const perGroup = 16384
	const block = 64
	buf := make([]float64, block)
	total := 0
	for i := 0; i < b.N; i++ {
		for gi, g := range groups {
			wg := g.(BatchWithoutReplacementGroup)
			if wr, ok := g.(WithoutReplacementGroup); ok {
				wr.ResetDraws()
			}
			r := xrand.Stream(7, uint64(gi))
			for d := 0; d < perGroup; d += block {
				wg.DrawBatchWithoutReplacement(&r, buf)
				total += block
			}
		}
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "draws/sec")
}

// BenchmarkSegmentDraw compares the block-draw hot path across backings:
// the in-memory SliceGroup baseline, a warm mmap-backed segment table
// (pages resident — the steady state of a served table), and a cold one
// (page cache dropped before every iteration, readahead disabled — each
// draw block pays real faults). Recorded in CI's BENCH_core.json; the
// out-of-core acceptance is warm staying within 2x of in-memory at
// batch=64.
func BenchmarkSegmentDraw(b *testing.B) {
	tbl, dir := segBenchFixture(b)

	b.Run("inmem", func(b *testing.B) {
		b.ReportAllocs()
		groups := tbl.View()
		b.ResetTimer()
		benchSegDraws(b, groups)
	})

	b.Run("warm-mmap", func(b *testing.B) {
		st, err := OpenSegments(dir)
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		// Touch every page up front: the steady state of a long-lived
		// served table (and a full integrity check at the same time).
		if err := st.VerifyChecksums(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		groups := st.View()
		b.ResetTimer()
		benchSegDraws(b, groups)
	})

	b.Run("cold-mmap", func(b *testing.B) {
		st, err := OpenSegments(dir)
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		if !st.Mapped() {
			b.Skip("nommap fallback: no cold path to measure")
		}
		if err := st.AdviseRandom(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		groups := st.View()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := st.DropPageCache(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			benchSegDrawsOnce(b, groups)
		}
		b.ReportMetric(float64(b.N*4*16384)/b.Elapsed().Seconds(), "draws/sec")
	})
}

// benchSegDrawsOnce is one iteration of the fixed workload, for callers
// managing the timer themselves.
func benchSegDrawsOnce(b *testing.B, groups []Group) {
	const perGroup = 16384
	const block = 64
	buf := make([]float64, block)
	for gi, g := range groups {
		wg := g.(BatchWithoutReplacementGroup)
		if wr, ok := g.(WithoutReplacementGroup); ok {
			wr.ResetDraws()
		}
		r := xrand.Stream(7, uint64(gi))
		for d := 0; d < perGroup; d += block {
			wg.DrawBatchWithoutReplacement(&r, buf)
		}
	}
}

// segBenchCompressed lazily writes the shared fixture as a v2 directory.
var segBenchCompressed struct {
	once sync.Once
	dir  string
	err  error
}

func segBenchCompressedFixture(b *testing.B) string {
	b.Helper()
	tbl, _ := segBenchFixture(b)
	segBenchCompressed.once.Do(func() {
		segBenchCompressed.dir, segBenchCompressed.err = os.MkdirTemp("", "segbenchc")
		if segBenchCompressed.err != nil {
			return
		}
		segBenchCompressed.err = tbl.WriteSegmentsOptions(segBenchCompressed.dir, SegmentOptions{Compress: true})
	})
	if segBenchCompressed.err != nil {
		b.Fatal(segBenchCompressed.err)
	}
	return segBenchCompressed.dir
}

// BenchmarkSegmentDrawCompressed is BenchmarkSegmentDraw over the same
// fixture written as block-compressed (v2) columns: warm measures draws
// against a populated decoded-block cache (the steady state; the
// acceptance is staying within 1.5x of the uncompressed warm mmap at
// batch=64), cold re-opens the table and drops the page cache every
// iteration, so each run pays both the faults and the decodes.
func BenchmarkSegmentDrawCompressed(b *testing.B) {
	dir := segBenchCompressedFixture(b)

	b.Run("warm", func(b *testing.B) {
		// Warm means the decoded working set stays resident: budget the
		// block cache for the whole 64 MB fixture (the default 32 MiB would
		// evict cyclically and re-decode every block each pass).
		old := blockCacheBytes
		blockCacheBytes = 128 << 20
		defer func() { blockCacheBytes = old }()
		st, err := OpenSegments(dir)
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		groups := st.View()
		benchSegDrawsOnce(b, groups) // populate the block cache
		b.ReportAllocs()
		b.ResetTimer()
		benchSegDraws(b, groups)
		if err := st.Err(); err != nil {
			b.Fatal(err)
		}
	})

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st, err := OpenSegments(dir) // fresh open: empty block cache
			if err != nil {
				b.Fatal(err)
			}
			if st.Mapped() {
				if err := st.DropPageCache(); err != nil {
					b.Fatal(err)
				}
			}
			b.StartTimer()
			benchSegDrawsOnce(b, st.View())
			b.StopTimer()
			if err := st.Err(); err != nil {
				b.Fatal(err)
			}
			st.Close()
			b.StartTimer()
		}
		b.ReportMetric(float64(b.N*4*16384)/b.Elapsed().Seconds(), "draws/sec")
	})
}

// BenchmarkSegmentDrawCodec pins the warm draw cost per block codec: one
// table per codec family (raw float64 noise, scaled-decimal FoR,
// monotone delta, low-cardinality dictionary), each written compressed and
// drawn through a warm cache, with the compression ratio reported
// alongside draws/sec.
func BenchmarkSegmentDrawCodec(b *testing.B) {
	const groups, rows = 4, 1 << 19
	codecs := []struct {
		name string
		gen  func(r *xrand.RNG, i int) float64
	}{
		{"raw", func(r *xrand.RNG, i int) float64 { return 100 * r.Float64() }},
		{"for", func(r *xrand.RNG, i int) float64 { return float64(r.Intn(10000)) / 100 }},
		{"delta", func(r *xrand.RNG, i int) float64 { return float64(i) }},
		{"dict", func(r *xrand.RNG, i int) float64 { return 1.5 * float64(r.Intn(16)) }},
	}
	for _, c := range codecs {
		b.Run(c.name, func(b *testing.B) {
			builder := NewTableBuilder()
			rng := xrand.New(17)
			for gi := 0; gi < groups; gi++ {
				name := string(rune('A' + gi))
				for i := 0; i < rows; i++ {
					builder.Add(name, c.gen(rng, i))
				}
			}
			tbl, err := builder.Build()
			if err != nil {
				b.Fatal(err)
			}
			dir := b.TempDir()
			if err := tbl.WriteSegmentsOptions(dir, SegmentOptions{Compress: true}); err != nil {
				b.Fatal(err)
			}
			var encoded int64
			for _, name := range []string{segValueName} {
				fi, err := os.Stat(filepath.Join(dir, name))
				if err != nil {
					b.Fatal(err)
				}
				encoded += fi.Size() - SegmentDataOffset
			}
			st, err := OpenSegments(dir)
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			grps := st.View()
			benchSegDrawsOnce(b, grps) // warm the cache
			b.ReportAllocs()
			b.ResetTimer()
			benchSegDraws(b, grps)
			if err := st.Err(); err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(groups*rows*8)/float64(encoded), "ratio")
		})
	}
}

// BenchmarkFilterPlan measures predicate planning over a clustered
// (near-sorted within each group) value column: full-scan is the raw (v1)
// mmap path that evaluates every row, zonemap-skip is the compressed (v2)
// path whose block zone maps prove most blocks cannot match a selective
// range predicate and skips them undecoded. Recorded in BENCH_core.json;
// the tentpole acceptance is a measured speedup for the skip plan.
func BenchmarkFilterPlan(b *testing.B) {
	const groups, rows = 4, 1 << 21
	builder := NewTableBuilder()
	rng := xrand.New(23)
	for gi := 0; gi < groups; gi++ {
		name := string(rune('A' + gi))
		for i := 0; i < rows; i++ {
			builder.Add(name, 100*float64(i)/rows+rng.Float64())
		}
	}
	tbl, err := builder.Build()
	if err != nil {
		b.Fatal(err)
	}
	pred := Predicate{Op: OpGE, Value: 99} // top ~2% of each group's rows

	rawDir, compDir := b.TempDir(), b.TempDir()
	if err := tbl.WriteSegments(rawDir); err != nil {
		b.Fatal(err)
	}
	if err := tbl.WriteSegmentsOptions(compDir, SegmentOptions{Compress: true}); err != nil {
		b.Fatal(err)
	}

	var wantRows int64
	b.Run("full-scan", func(b *testing.B) {
		st, err := OpenSegments(rawDir)
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := st.Filter(pred)
			if err != nil {
				b.Fatal(err)
			}
			wantRows = v.NumRows()
		}
	})

	b.Run("zonemap-skip", func(b *testing.B) {
		st, err := OpenSegments(compDir)
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		b.ResetTimer()
		var got int64
		for i := 0; i < b.N; i++ {
			v, err := st.Filter(pred)
			if err != nil {
				b.Fatal(err)
			}
			got = v.NumRows()
		}
		b.StopTimer()
		if wantRows != 0 && got != wantRows {
			b.Fatalf("plans disagree: full scan selected %d rows, zone skip %d", wantRows, got)
		}
	})
}
