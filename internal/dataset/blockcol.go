// Compressed column plumbing for v2 segments (DESIGN.md §14). A v2 column
// file holds back-to-back colcodec blocks over the whole column (blocks are
// global, blockLen rows each, so block boundaries line up row-wise across
// every column of the table). Three layers serve reads:
//
//   - blockColumn: one column's raw encoded bytes, block offsets, and zone
//     maps, plus the decode path.
//   - blockCache: a bounded LRU of decoded blocks shared by every column of
//     one table. Decode runs outside the lock (duplicate decodes of a block
//     are idempotent); decode failures are sticky and surface through
//     SegmentTable.Err, because draw paths cannot return errors.
//   - blockWindow: one group's (or filtered view's) cursor over a row range
//     of a column. It memoizes the current block so sorted gathers and
//     scans touch the cache mutex once per block, not once per row.
package dataset

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/colcodec"
)

// DefaultBlockLen is the values-per-block default for compressed segment
// writers: 64Ki values = 512 KiB decoded, big enough to amortize headers
// and small enough that a handful of hot blocks fit any LRU budget.
const DefaultBlockLen = 1 << 16

// blockCacheBytes is the decoded-block LRU budget per open table. A var so
// tests can shrink it to force eviction.
var blockCacheBytes = 32 << 20

// blockZone is one block's zone-map entry: the min/max of its decoded
// values. ok is false when the block holds non-finite values (JSON cannot
// carry NaN/±Inf, and ordering predicates cannot prune on them anyway).
type blockZone struct {
	min, max float64
	ok       bool
}

// blockCache is the decoded-block LRU shared by every blockColumn of one
// table. Keys combine column id and block index.
type blockCache struct {
	mu      sync.Mutex
	limit   int // decoded blocks, not bytes; computed from blockCacheBytes
	entries map[uint64][]float64
	order   []uint64 // LRU order, least recent first (small: a few dozen)
	err     error    // first decode failure, sticky
}

func newBlockCache(blockLen int) *blockCache {
	limit := blockCacheBytes / (8 * blockLen)
	if limit < 4 {
		limit = 4
	}
	return &blockCache{limit: limit, entries: make(map[uint64][]float64)}
}

// get returns the cached decoded block, or nil.
func (c *blockCache) get(key uint64) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	vals, ok := c.entries[key]
	if !ok {
		return nil
	}
	if i := slices.Index(c.order, key); i >= 0 && i != len(c.order)-1 {
		copy(c.order[i:], c.order[i+1:])
		c.order[len(c.order)-1] = key
	}
	return vals
}

// put inserts a decoded block, evicting the least recently used entries
// over budget. Racing puts for the same key keep the first value (both are
// identical decodes).
func (c *blockCache) put(key uint64, vals []float64) []float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.entries[key]; ok {
		return prev
	}
	c.entries[key] = vals
	c.order = append(c.order, key)
	for len(c.order) > c.limit {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, victim)
	}
	return vals
}

// fail records the first decode error.
func (c *blockCache) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
}

// Err returns the first decode error, if any.
func (c *blockCache) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// blockColumn is one compressed column: the raw encoded bytes (an mmapped
// region), the per-block byte offsets and zone maps from the manifest, and
// the shared cache.
type blockColumn struct {
	raw      []byte
	offs     []int64 // len nblocks+1; block b occupies raw[offs[b]:offs[b+1]]
	zones    []blockZone
	rows     int64
	blockLen int
	colID    int
	cache    *blockCache
}

// nblocks returns the column's block count.
func (bc *blockColumn) nblocks() int { return len(bc.offs) - 1 }

// blockRows returns how many rows block b holds (the last block may be
// short).
func (bc *blockColumn) blockRows(b int) int {
	lo := int64(b) * int64(bc.blockLen)
	n := bc.rows - lo
	if n > int64(bc.blockLen) {
		n = int64(bc.blockLen)
	}
	return int(n)
}

// decode decodes block b directly (no cache), validating the codec payload
// and the decoded row count.
func (bc *blockColumn) decode(dst []float64, b int) ([]float64, colcodec.Codec, error) {
	lo, hi := bc.offs[b], bc.offs[b+1]
	vals, codec, n, err := colcodec.DecodeBlock(dst, bc.raw[lo:hi])
	if err != nil {
		return nil, 0, fmt.Errorf("dataset: segments: column %d block %d: %w", bc.colID, b, err)
	}
	if int64(n) != hi-lo {
		return nil, 0, fmt.Errorf("dataset: segments: column %d block %d: decoded %d bytes of a %d-byte block", bc.colID, b, n, hi-lo)
	}
	if len(vals) != bc.blockRows(b) {
		return nil, 0, fmt.Errorf("dataset: segments: column %d block %d: decoded %d values, manifest layout expects %d",
			bc.colID, b, len(vals), bc.blockRows(b))
	}
	return vals, codec, nil
}

// block returns block b's decoded values through the cache. Decode errors
// are sticky on the cache and yield a zero-filled block — draw paths have
// no error channel, so corruption discovered mid-draw degrades to zeros and
// surfaces through SegmentTable.Err / VerifyChecksums.
func (bc *blockColumn) block(b int) []float64 {
	key := uint64(bc.colID)<<48 | uint64(uint32(b))
	if vals := bc.cache.get(key); vals != nil {
		return vals
	}
	vals, _, err := bc.decode(nil, b)
	if err != nil {
		bc.cache.fail(err)
		vals = make([]float64, bc.blockRows(b))
	}
	return bc.cache.put(key, vals)
}

// materialize decodes the whole column into one dense slice (Table.Column
// and ExtraColumn on compressed tables; test and tooling paths, not draws).
func (bc *blockColumn) materialize() ([]float64, error) {
	out := make([]float64, 0, bc.rows)
	var scratch []float64
	for b := 0; b < bc.nblocks(); b++ {
		vals, _, err := bc.decode(scratch, b)
		if err != nil {
			return nil, err
		}
		out = append(out, vals...)
		scratch = vals[:0]
	}
	return out, nil
}

// blockWindow is a cursor over rows [lo, lo+n) of a compressed column: the
// per-group (and per-filtered-view) access path. curB/curV memoize the
// block the cursor last touched, so block-sorted gathers and scans pay one
// cache lookup per block. A window is draw state: views must clone it
// (fresh memo) rather than share it across concurrent queries.
type blockWindow struct {
	col  *blockColumn
	lo   int64 // absolute row of the window's first row
	n    int   // rows in the window
	curB int   // memoized block index, -1 when empty
	curV []float64
}

func newBlockWindow(col *blockColumn, lo int64, n int) *blockWindow {
	return &blockWindow{col: col, lo: lo, n: n, curB: -1}
}

// clone returns a window over the same rows with a fresh memo.
func (w *blockWindow) clone() *blockWindow {
	return newBlockWindow(w.col, w.lo, w.n)
}

// at returns the window-local row's value.
func (w *blockWindow) at(row int) float64 {
	abs := w.lo + int64(row)
	b := int(abs / int64(w.col.blockLen))
	if b != w.curB {
		w.curV = w.col.block(b)
		w.curB = b
	}
	return w.curV[abs-int64(b)*int64(w.col.blockLen)]
}

// gatherKeys fills dst from sorted gather keys (row<<32 | slot, ascending —
// the same key layout SliceGroup.gatherRows builds): ascending rows visit
// each block once through the memo.
func (w *blockWindow) gatherKeys(keys []uint64, dst []float64) {
	for _, k := range keys {
		dst[uint32(k)] = w.at(int(int32(k >> 32)))
	}
}

// scan visits every row of the window in order.
func (w *blockWindow) scan(fn func(v float64)) {
	bl := int64(w.col.blockLen)
	for abs := w.lo; abs < w.lo+int64(w.n); {
		b := int(abs / bl)
		vals := w.col.block(b)
		start := abs - int64(b)*bl
		end := int64(len(vals))
		if rem := w.lo + int64(w.n) - int64(b)*bl; rem < end {
			end = rem
		}
		for _, v := range vals[start:end] {
			fn(v)
		}
		abs = int64(b)*bl + end
	}
}

// gatherSorted reads rows (window-local, unsorted) into dst in slot order
// while visiting the column in ascending row order, via the same packed-key
// sort the segment SliceGroup uses. keyBuf is the caller's reusable
// scratch.
func (w *blockWindow) gatherSorted(rows []int32, dst []float64, keyBuf *[]uint64) {
	if len(rows) <= 1 {
		for i, row := range rows {
			dst[i] = w.at(int(row))
		}
		return
	}
	keys := *keyBuf
	if cap(keys) < len(rows) {
		keys = make([]uint64, len(rows))
	}
	keys = keys[:len(rows)]
	for pos, row := range rows {
		keys[pos] = uint64(uint32(row))<<32 | uint64(uint32(pos))
	}
	slices.Sort(keys)
	*keyBuf = keys
	w.gatherKeys(keys, dst)
}

// zoneRelation classifies what a [min,max] zone can say about op/c:
// zoneNone (no row can match — skip the block), zoneAll (every row matches
// — the predicate needs no per-row test in this block), zoneSome
// (undecided — evaluate rows).
type zoneRel uint8

const (
	zoneSome zoneRel = iota
	zoneNone
	zoneAll
)

// relate evaluates predicate (op, c) against the zone. Unusable zones and
// non-finite constants stay undecided. The classifications are
// conservative: zoneNone/zoneAll are returned only when provable from the
// interval, so pushdown can skip or bulk-accept blocks without changing
// which rows survive.
func (z blockZone) relate(op PredicateOp, c float64) zoneRel {
	if !z.ok || c != c {
		return zoneSome
	}
	switch op {
	case OpLT:
		if z.max < c {
			return zoneAll
		}
		if z.min >= c {
			return zoneNone
		}
	case OpLE:
		if z.max <= c {
			return zoneAll
		}
		if z.min > c {
			return zoneNone
		}
	case OpGT:
		if z.min > c {
			return zoneAll
		}
		if z.max <= c {
			return zoneNone
		}
	case OpGE:
		if z.min >= c {
			return zoneAll
		}
		if z.max < c {
			return zoneNone
		}
	case OpEQ:
		if z.min == c && z.max == c {
			return zoneAll
		}
		if c < z.min || c > z.max {
			return zoneNone
		}
	case OpNE:
		if c < z.min || c > z.max {
			return zoneAll
		}
		if z.min == c && z.max == c {
			return zoneNone
		}
	}
	return zoneSome
}

// zoneOf computes a block's zone entry from its decoded values: the
// write-side rule, also used by VerifyChecksums to prove manifest zones
// consistent.
func zoneOf(vals []float64) blockZone {
	z := blockZone{min: vals[0], max: vals[0], ok: true}
	for _, v := range vals {
		if v != v || math.IsInf(v, 0) {
			return blockZone{}
		}
		if v < z.min {
			z.min = v
		}
		if v > z.max {
			z.max = v
		}
	}
	return z
}
