// Devirtualized block-draw kernels. The generic sampler path costs one
// interface dispatch per block plus a buffer fill and a separate summing
// and moments pass over it. For the two concrete group families that back
// real tables — SliceGroup (and TableGroup, which embeds it) and
// FilteredGroup — the round driver's per-block work is really just "walk
// the permutation / selection, gather values, accumulate sum and moments".
// The kernels below fuse exactly that into the group's own draw loop, so a
// block costs one bounds-checked slice walk with no intermediate buffer.
//
// Equivalence contract: a kernel must consume the group's RNG stream and
// draw state exactly as the generic path does — same Intn sequence, same
// permutation advance, same exhaustion fallback to with-replacement, same
// value order into the Welford moments (Moments.AddAll is a sequential
// Add loop, so folding per value in draw order is bit-identical). The
// worker/batch invariance pins and the kernel-vs-generic test in
// kernel_test.go hold this contract.
package dataset

import (
	"repro/internal/conc"
	"repro/internal/xrand"
)

// blockKernel is one group's resolved concrete type: exactly one field is
// non-nil for kernel-capable groups, both are nil otherwise (virtual
// distributions, pair groups, custom sources).
type blockKernel struct {
	slice    *SliceGroup
	filtered *FilteredGroup
}

// EnableBlockKernels resolves each group's concrete type once, switching
// DrawBlockSum on for the groups it recognizes. It is a no-op on
// source-fed samplers, whose draws are addressed by offset and never
// touch the groups' draw paths.
func (s *Sampler) EnableBlockKernels() {
	if s.source != nil {
		return
	}
	kernels := make([]blockKernel, s.u.K())
	any := false
	for i, g := range s.u.Groups {
		switch t := g.(type) {
		case *TableGroup:
			// TableGroup embeds SliceGroup; the embedded value carries all
			// draw state, so the slice kernel serves it directly.
			kernels[i].slice = &t.SliceGroup
			any = true
		case *SliceGroup:
			kernels[i].slice = t
			any = true
		case *FilteredGroup:
			kernels[i].filtered = t
			any = true
		}
	}
	if any {
		s.kernels = kernels
	}
}

// DrawBlockSum draws n samples from group i through its devirtualized
// kernel, recording them and folding moments exactly like DrawBatch, and
// returns their sum. ok is false when group i has no kernel (or kernels
// are not enabled); the caller must fall back to DrawBatch, which
// produces the identical value stream through the generic path.
//
// Like every draw path, at most one goroutine may call it for a given
// group at a time; distinct groups may be drawn concurrently.
func (s *Sampler) DrawBlockSum(i, n int) (sum float64, ok bool) {
	if s.kernels == nil || n <= 0 {
		return 0, false
	}
	k := &s.kernels[i]
	if k.slice == nil && k.filtered == nil {
		return 0, false
	}
	var mom *conc.Moments
	if s.moments != nil && s.autoObserve {
		mom = &s.moments[i]
	}
	s.Record(i, n)
	r := s.RNGFor(i)
	if s.without {
		var taken int
		if k.slice != nil {
			sum, taken = k.slice.drawBlockSumWOR(r, n, mom)
		} else {
			sum, taken = k.filtered.drawBlockSumWOR(r, n, mom)
		}
		if taken == n {
			return sum, true
		}
		// Population ran out mid-block: record it and top the block up
		// with replacement, exactly as the generic path does. The running
		// sum is threaded through rather than summed separately — float
		// addition is not associative, and callers folding the generic
		// buffer use one sequential accumulator across the whole block.
		s.exhausted[i].Store(true)
		n -= taken
	}
	if k.slice != nil {
		sum = k.slice.drawBlockSumWR(r, n, sum, mom)
	} else {
		sum = k.filtered.drawBlockSumWR(r, n, sum, mom)
	}
	return sum, true
}

// drawBlockSumWOR is DrawBatchWithoutReplacement fused with the sum and
// moments fold: identical Fisher–Yates steps over the permutation suffix,
// no destination buffer.
func (g *SliceGroup) drawBlockSumWOR(r *xrand.RNG, n int, mom *conc.Moments) (float64, int) {
	total := g.n()
	if g.next >= total {
		return 0, 0
	}
	if g.seg && (n > 1 || g.win != nil) {
		// Segment-backed: stage the block's rows first, gather the mmapped
		// column in ascending row order, then fold sum and moments in draw
		// order — the same value sequence, with the page faults clustered.
		taken := g.stageBatchWOR(r, n)
		vals := g.valScratch(taken)
		g.gatherRows(g.rowBuf[:taken], vals)
		sum := 0.0
		for _, v := range vals {
			sum += v
			if mom != nil {
				mom.Add(v)
			}
		}
		return sum, taken
	}
	g.ensurePerm()
	perm, vals := g.perm, g.values
	sum := 0.0
	taken := 0
	for taken < n && g.next < total {
		j := g.next + r.Intn(total-g.next)
		perm[g.next], perm[j] = perm[j], perm[g.next]
		v := vals[perm[g.next]]
		g.next++
		taken++
		sum += v
		if mom != nil {
			mom.Add(v)
		}
	}
	return sum, taken
}

// drawBlockSumWR is DrawBatch fused with the sum and moments fold,
// continuing the caller's running accumulator.
func (g *SliceGroup) drawBlockSumWR(r *xrand.RNG, n int, sum float64, mom *conc.Moments) float64 {
	if g.seg && (n > 1 || g.win != nil) {
		g.stageBatchWR(r, n)
		buf := g.valScratch(n)
		g.gatherRows(g.rowBuf, buf)
		for _, v := range buf {
			sum += v
			if mom != nil {
				mom.Add(v)
			}
		}
		return sum
	}
	vals := g.values
	sz := len(vals)
	for k := 0; k < n; k++ {
		v := vals[r.Intn(sz)]
		sum += v
		if mom != nil {
			mom.Add(v)
		}
	}
	return sum
}

// drawBlockSumWOR mirrors FilteredGroup.DrawBatchWithoutReplacement: the
// same staged Fisher–Yates over selection ranks (bitmap selections batch
// the rank→row mapping through SelectBatch into the rows scratch; index
// selections gather directly), fused with the sum and moments fold.
func (g *FilteredGroup) drawBlockSumWOR(r *xrand.RNG, n int, mom *conc.Moments) (float64, int) {
	total := g.sel.count
	if g.next >= total {
		return 0, 0
	}
	g.ensurePerm()
	if g.sel.bits != nil {
		rows := g.rowScratch(n)
		taken := 0
		for taken < n && g.next < total {
			j := g.next + r.Intn(total-g.next)
			g.perm[g.next], g.perm[j] = g.perm[j], g.perm[g.next]
			rows[taken] = g.perm[g.next]
			g.next++
			taken++
		}
		rows = rows[:taken]
		if err := g.sel.bits.SelectBatch(rows); err != nil {
			panic(err) // permutation ranks < count by construction
		}
		if g.win != nil {
			return g.foldRows(rows, 0, mom), taken
		}
		sum := 0.0
		for _, row := range rows {
			v := g.col[row]
			sum += v
			if mom != nil {
				mom.Add(v)
			}
		}
		return sum, taken
	}
	if g.win != nil {
		// Window-backed: stage the drawn rows, gather block-sorted, fold in
		// draw order — the same value sequence with one decode per block.
		rows := g.rowScratch(n)
		taken := 0
		for taken < n && g.next < total {
			j := g.next + r.Intn(total-g.next)
			g.perm[g.next], g.perm[j] = g.perm[j], g.perm[g.next]
			rows[taken] = g.sel.idx[g.perm[g.next]]
			g.next++
			taken++
		}
		return g.foldRows(rows[:taken], 0, mom), taken
	}
	perm, col, idx := g.perm, g.col, g.sel.idx
	sum := 0.0
	taken := 0
	for taken < n && g.next < total {
		j := g.next + r.Intn(total-g.next)
		perm[g.next], perm[j] = perm[j], perm[g.next]
		v := col[idx[perm[g.next]]]
		g.next++
		taken++
		sum += v
		if mom != nil {
			mom.Add(v)
		}
	}
	return sum, taken
}

// foldRows gathers the local rows' values (block-sorted on a window) and
// folds sum and moments in draw order, continuing the caller's accumulator.
func (g *FilteredGroup) foldRows(rows []int32, sum float64, mom *conc.Moments) float64 {
	vals := g.valScratch(len(rows))
	g.gather(rows, vals)
	for _, v := range vals {
		sum += v
		if mom != nil {
			mom.Add(v)
		}
	}
	return sum
}

// drawBlockSumWR mirrors FilteredGroup.DrawBatch, fused with the sum and
// moments fold, continuing the caller's running accumulator.
func (g *FilteredGroup) drawBlockSumWR(r *xrand.RNG, n int, sum float64, mom *conc.Moments) float64 {
	cnt := g.sel.count
	if g.sel.bits == nil {
		if g.win != nil {
			rows := g.rowScratch(n)
			for i := range rows {
				rows[i] = g.sel.idx[r.Intn(cnt)]
			}
			return g.foldRows(rows, sum, mom)
		}
		col, idx := g.col, g.sel.idx
		for k := 0; k < n; k++ {
			v := col[idx[r.Intn(cnt)]]
			sum += v
			if mom != nil {
				mom.Add(v)
			}
		}
		return sum
	}
	rows := g.rowScratch(n)
	for i := range rows {
		rows[i] = int32(r.Intn(cnt))
	}
	if err := g.sel.bits.SelectBatch(rows); err != nil {
		panic(err) // ranks < count by construction
	}
	if g.win != nil {
		return g.foldRows(rows, sum, mom)
	}
	for _, row := range rows {
		v := g.col[row]
		sum += v
		if mom != nil {
			mom.Add(v)
		}
	}
	return sum
}
