package dataset

import "repro/internal/xrand"

// Sampler mediates every draw an algorithm makes from a universe, keeping
// exact per-group and total sample counts (the paper's m_i and C = Σ m_i),
// and transparently switching between with- and without-replacement modes.
//
// In without-replacement mode a group that supports it is consumed via its
// permutation stream; once (or if) exhausted, further draws fall back to
// with-replacement, which can only happen if an algorithm requests more
// samples than the group holds — the accountant records this in Exhausted
// so experiments can report it.
type Sampler struct {
	u       *Universe
	rng     *xrand.RNG
	without bool

	counts    []int64
	total     int64
	exhausted []bool
}

// NewSampler returns a sampler over u. If withoutReplacement is true,
// groups implementing WithoutReplacementGroup are consumed without
// replacement.
func NewSampler(u *Universe, rng *xrand.RNG, withoutReplacement bool) *Sampler {
	return &Sampler{
		u:         u,
		rng:       rng,
		without:   withoutReplacement,
		counts:    make([]int64, u.K()),
		exhausted: make([]bool, u.K()),
	}
}

// Draw samples once from group i and records the draw.
func (s *Sampler) Draw(i int) float64 {
	g := s.u.Groups[i]
	s.counts[i]++
	s.total++
	if s.without {
		if wg, ok := g.(WithoutReplacementGroup); ok {
			if v, ok := wg.DrawWithoutReplacement(s.rng); ok {
				return v
			}
			s.exhausted[i] = true
		}
	}
	return g.Draw(s.rng)
}

// Counts returns the per-group sample counts m_i. The returned slice is
// owned by the sampler; callers must copy it if they retain it.
func (s *Sampler) Counts() []int64 { return s.counts }

// Count returns m_i for group i.
func (s *Sampler) Count(i int) int64 { return s.counts[i] }

// Total returns the total sample complexity C = Σ m_i so far.
func (s *Sampler) Total() int64 { return s.total }

// Exhausted reports whether group i ran out of without-replacement samples.
func (s *Sampler) Exhausted(i int) bool { return s.exhausted[i] }

// RNG exposes the sampler's generator for algorithms that need auxiliary
// randomness (e.g. the unknown-size SUM estimator).
func (s *Sampler) RNG() *xrand.RNG { return s.rng }

// WithoutReplacement reports whether the sampler consumes groups without
// replacement.
func (s *Sampler) WithoutReplacement() bool { return s.without }

// Universe returns the sampled universe.
func (s *Sampler) Universe() *Universe { return s.u }
