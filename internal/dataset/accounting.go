package dataset

import "repro/internal/xrand"

// Sampler mediates every draw an algorithm makes from a universe, keeping
// exact per-group and total sample counts (the paper's m_i and C = Σ m_i),
// and transparently switching between with- and without-replacement modes.
//
// In without-replacement mode a group that supports it is consumed via its
// permutation stream; once (or if) exhausted, further draws fall back to
// with-replacement, which can only happen if an algorithm requests more
// samples than the group holds — the accountant records this in Exhausted
// so experiments can report it.
//
// Draws come in two granularities: Draw takes one sample, DrawBatch fills
// a block with one dispatch. Both produce the same stream for the same
// total number of samples, so algorithms can batch freely without changing
// their statistics.
type Sampler struct {
	u       *Universe
	rng     *xrand.RNG
	without bool

	counts    []int64
	total     int64
	exhausted []bool
}

// NewSampler returns a sampler over u. If withoutReplacement is true,
// groups implementing WithoutReplacementGroup are consumed without
// replacement — starting from a fresh permutation: any draw state left on
// the groups by a previous run is reset, so reusing one Universe across
// consecutive runs cannot silently continue (or exhaust) an earlier run's
// permutation.
//
// Draw state lives on the groups, and groups are not safe for concurrent
// use: concurrent runs must not share materialized groups (build one set
// per run, or per goroutine). Consecutive reuse is fine.
func NewSampler(u *Universe, rng *xrand.RNG, withoutReplacement bool) *Sampler {
	if withoutReplacement {
		for _, g := range u.Groups {
			if wg, ok := g.(WithoutReplacementGroup); ok {
				wg.ResetDraws()
			}
		}
	}
	return &Sampler{
		u:         u,
		rng:       rng,
		without:   withoutReplacement,
		counts:    make([]int64, u.K()),
		exhausted: make([]bool, u.K()),
	}
}

// Draw samples once from group i and records the draw.
func (s *Sampler) Draw(i int) float64 {
	g := s.u.Groups[i]
	s.counts[i]++
	s.total++
	if s.without {
		if wg, ok := g.(WithoutReplacementGroup); ok {
			if v, ok := wg.DrawWithoutReplacement(s.rng); ok {
				return v
			}
			s.exhausted[i] = true
		}
	}
	return g.Draw(s.rng)
}

// DrawBatch fills dst with samples from group i and records them. One call
// costs one interface dispatch and one accounting update for the whole
// block, and produces exactly the stream len(dst) successive Draw calls
// would — including the fall-back to with-replacement sampling if the
// group's population runs out mid-block.
func (s *Sampler) DrawBatch(i int, dst []float64) {
	if len(dst) == 0 {
		return
	}
	g := s.u.Groups[i]
	s.counts[i] += int64(len(dst))
	s.total += int64(len(dst))
	if s.without {
		switch wg := g.(type) {
		case BatchWithoutReplacementGroup:
			taken := wg.DrawBatchWithoutReplacement(s.rng, dst)
			if taken == len(dst) {
				return
			}
			s.exhausted[i] = true
			dst = dst[taken:]
		case WithoutReplacementGroup:
			taken := 0
			for taken < len(dst) {
				v, ok := wg.DrawWithoutReplacement(s.rng)
				if !ok {
					s.exhausted[i] = true
					break
				}
				dst[taken] = v
				taken++
			}
			if taken == len(dst) {
				return
			}
			dst = dst[taken:]
		}
	}
	if bg, ok := g.(BatchGroup); ok {
		bg.DrawBatch(s.rng, dst)
		return
	}
	for j := range dst {
		dst[j] = g.Draw(s.rng)
	}
}

// Record accounts n samples that were drawn outside the sampler's Group
// interface (pair draws, normalized draws with auxiliary randomness), so
// Counts and Total stay exact for algorithms with custom draw paths.
func (s *Sampler) Record(i int, n int) {
	s.counts[i] += int64(n)
	s.total += int64(n)
}

// Counts returns the per-group sample counts m_i. The returned slice is
// owned by the sampler; callers must copy it if they retain it.
func (s *Sampler) Counts() []int64 { return s.counts }

// Count returns m_i for group i.
func (s *Sampler) Count(i int) int64 { return s.counts[i] }

// Total returns the total sample complexity C = Σ m_i so far.
func (s *Sampler) Total() int64 { return s.total }

// Exhausted reports whether group i ran out of without-replacement samples.
func (s *Sampler) Exhausted(i int) bool { return s.exhausted[i] }

// RNG exposes the sampler's generator for algorithms that need auxiliary
// randomness (e.g. the unknown-size SUM estimator).
func (s *Sampler) RNG() *xrand.RNG { return s.rng }

// WithoutReplacement reports whether the sampler consumes groups without
// replacement.
func (s *Sampler) WithoutReplacement() bool { return s.without }

// Universe returns the sampled universe.
func (s *Sampler) Universe() *Universe { return s.u }
