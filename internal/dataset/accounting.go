package dataset

import (
	"sync/atomic"

	"repro/internal/conc"
	"repro/internal/xrand"
)

// Sampler mediates every draw an algorithm makes from a universe, keeping
// exact per-group and total sample counts (the paper's m_i and C = Σ m_i),
// and transparently switching between with- and without-replacement modes.
//
// In without-replacement mode a group that supports it is consumed via its
// permutation stream; once (or if) exhausted, further draws fall back to
// with-replacement, which can only happen if an algorithm requests more
// samples than the group holds — the accountant records this in Exhausted
// so experiments can report it.
//
// Draws come in two granularities: Draw takes one sample, DrawBatch fills
// a block with one dispatch. Both produce the same stream for the same
// total number of samples, so algorithms can batch freely without changing
// their statistics.
//
// Concurrency: all accounting (counts, total, exhausted flags) is atomic,
// so distinct groups of one sampler may be drawn from concurrently — the
// discipline of the parallel round driver, which fans groups across a
// worker pool. Draw state itself (a group's permutation position, its RNG
// stream) is still per group and unsynchronized: at most one goroutine may
// draw from a given group at a time.
type Sampler struct {
	u   *Universe
	rng *xrand.RNG
	// streams holds the per-group generators as one contiguous value slice
	// (one allocation for k streams, not k); RNGFor hands out &streams[i].
	streams []xrand.RNG
	source  DrawSource
	without bool

	counts    []int64
	total     int64
	exhausted []atomic.Bool

	// moments, when enabled, holds one Welford accumulator per group —
	// the sufficient statistics behind variance-adaptive bounds — folded
	// forward as draws happen, never by rescanning past draws. Like a
	// group's RNG stream, moments[i] is group-owned, unsynchronized state:
	// at most one goroutine may draw from (or observe values for) a given
	// group at a time.
	moments []conc.Moments
	// autoObserve folds every value the sampler itself draws into the
	// group's moments. Algorithms whose draws pass through a transform
	// (normalized draws, pair draws) disable it and feed the transformed
	// values via Observe instead, so the moments describe the variable
	// actually being estimated.
	autoObserve bool

	// kernels, when enabled, holds the per-group devirtualized block-draw
	// kernels: the concrete group type behind each index, resolved once by
	// EnableBlockKernels so DrawBlockSum can walk the backing slice
	// directly instead of dispatching through the Group interfaces per
	// block (see kernel.go).
	kernels []blockKernel
}

// NewSampler returns a sampler over u whose draws all consume the one
// shared generator rng, in draw order. If withoutReplacement is true,
// groups implementing WithoutReplacementGroup are consumed without
// replacement — starting from a fresh permutation: any draw state left on
// the groups by a previous run is reset, so reusing one Universe across
// consecutive runs cannot silently continue (or exhaust) an earlier run's
// permutation.
//
// Because the shared stream is consumed in draw order, a shared-RNG
// sampler must be drawn from sequentially. The parallel round driver uses
// NewStreamSampler instead.
func NewSampler(u *Universe, rng *xrand.RNG, withoutReplacement bool) *Sampler {
	return newSampler(u, rng, nil, withoutReplacement)
}

// NewStreamSampler returns a sampler over u in which every group owns a
// deterministic RNG stream derived from base and the group's index
// (xrand.NewStream). Group i's randomness is then a pure function of
// (base, i) and the number of samples it has drawn — never of the order
// groups were visited — so runs produce identical results whether groups
// are drawn sequentially or fanned across any number of workers.
func NewStreamSampler(u *Universe, base uint64, withoutReplacement bool) *Sampler {
	streams := make([]xrand.RNG, u.K())
	for i := range streams {
		streams[i] = xrand.Stream(base, uint64(i))
	}
	return newSampler(u, nil, streams, withoutReplacement)
}

// NewSourceSampler returns a sampler over u whose draws are served by an
// offset-addressed source (a shared Broker) instead of the groups' own
// draw paths: group i's j-th draw is src.Fill(i, j, ·), where j is the
// group's current sample count. All accounting — counts, total, moments,
// exhaustion — works exactly as on a private sampler, so algorithms see
// no difference; but the sampler never touches the groups' draw state
// (no permutation reset or advance), which is what lets any number of
// source-fed samplers share one universe's worth of draws. The source
// must have been built with the same withoutReplacement mode.
func NewSourceSampler(u *Universe, src DrawSource, withoutReplacement bool) *Sampler {
	return &Sampler{
		u:         u,
		source:    src,
		without:   withoutReplacement,
		counts:    make([]int64, u.K()),
		exhausted: make([]atomic.Bool, u.K()),
	}
}

func newSampler(u *Universe, rng *xrand.RNG, streams []xrand.RNG, withoutReplacement bool) *Sampler {
	if withoutReplacement {
		for _, g := range u.Groups {
			if wg, ok := g.(WithoutReplacementGroup); ok {
				wg.ResetDraws()
			}
		}
	}
	return &Sampler{
		u:         u,
		rng:       rng,
		streams:   streams,
		without:   withoutReplacement,
		counts:    make([]int64, u.K()),
		exhausted: make([]atomic.Bool, u.K()),
	}
}

// Draw samples once from group i and records the draw.
func (s *Sampler) Draw(i int) float64 {
	if s.source != nil {
		var buf [1]float64
		s.fillFromSource(i, buf[:])
		if s.moments != nil && s.autoObserve {
			s.moments[i].Add(buf[0])
		}
		return buf[0]
	}
	g := s.u.Groups[i]
	s.Record(i, 1)
	r := s.RNGFor(i)
	var v float64
	drawn := false
	if s.without {
		if wg, ok := g.(WithoutReplacementGroup); ok {
			if x, ok := wg.DrawWithoutReplacement(r); ok {
				v, drawn = x, true
			} else {
				s.exhausted[i].Store(true)
			}
		}
	}
	if !drawn {
		v = g.Draw(r)
	}
	if s.moments != nil && s.autoObserve {
		s.moments[i].Add(v)
	}
	return v
}

// DrawBatch fills dst with samples from group i and records them. One call
// costs one interface dispatch and one accounting update for the whole
// block — the moments update included, folded over the freshly filled
// block right here rather than by any later rescan — and produces exactly
// the stream len(dst) successive Draw calls would, including the fall-back
// to with-replacement sampling if the group's population runs out
// mid-block.
func (s *Sampler) DrawBatch(i int, dst []float64) {
	if len(dst) == 0 {
		return
	}
	s.drawBatch(i, dst)
	if s.moments != nil && s.autoObserve {
		s.moments[i].AddAll(dst)
	}
}

// fillFromSource serves one block from the offset-addressed source: the
// block's offsets are [count_i, count_i+len(dst)), recorded before the
// fill so the next block continues where this one ended. Exhaustion is
// arithmetic — the source's without-replacement stream runs out exactly
// when offsets pass the population, at which point its values are the
// same with-replacement fallback a private sampler would produce.
func (s *Sampler) fillFromSource(i int, dst []float64) {
	from := atomic.LoadInt64(&s.counts[i])
	s.Record(i, len(dst))
	if s.without {
		if sz := s.u.Groups[i].Size(); sz > 0 && from+int64(len(dst)) > sz {
			s.exhausted[i].Store(true)
		}
	}
	s.source.Fill(i, from, dst)
}

// drawBatch is DrawBatch without the moments fold.
func (s *Sampler) drawBatch(i int, dst []float64) {
	if s.source != nil {
		s.fillFromSource(i, dst)
		return
	}
	g := s.u.Groups[i]
	s.Record(i, len(dst))
	r := s.RNGFor(i)
	if s.without {
		switch wg := g.(type) {
		case BatchWithoutReplacementGroup:
			taken := wg.DrawBatchWithoutReplacement(r, dst)
			if taken == len(dst) {
				return
			}
			s.exhausted[i].Store(true)
			dst = dst[taken:]
		case WithoutReplacementGroup:
			taken := 0
			for taken < len(dst) {
				v, ok := wg.DrawWithoutReplacement(r)
				if !ok {
					s.exhausted[i].Store(true)
					break
				}
				dst[taken] = v
				taken++
			}
			if taken == len(dst) {
				return
			}
			dst = dst[taken:]
		}
	}
	if bg, ok := g.(BatchGroup); ok {
		bg.DrawBatch(r, dst)
		return
	}
	for j := range dst {
		dst[j] = g.Draw(r)
	}
}

// Record accounts n samples that were drawn outside the sampler's Group
// interface (pair draws, normalized draws with auxiliary randomness), so
// Counts and Total stay exact for algorithms with custom draw paths. It is
// safe to call concurrently for any groups.
func (s *Sampler) Record(i int, n int) {
	atomic.AddInt64(&s.counts[i], int64(n))
	atomic.AddInt64(&s.total, int64(n))
}

// Counts returns the per-group sample counts m_i. The returned slice is
// owned by the sampler; callers must copy it if they retain it, and must
// not read it while draws are in flight on other goroutines.
func (s *Sampler) Counts() []int64 { return s.counts }

// Count returns m_i for group i.
func (s *Sampler) Count(i int) int64 { return atomic.LoadInt64(&s.counts[i]) }

// Total returns the total sample complexity C = Σ m_i so far.
func (s *Sampler) Total() int64 { return atomic.LoadInt64(&s.total) }

// Exhausted reports whether group i ran out of without-replacement samples.
func (s *Sampler) Exhausted(i int) bool { return s.exhausted[i].Load() }

// RNG exposes the sampler's shared generator for algorithms that need
// auxiliary randomness. It is nil for stream samplers, whose randomness is
// all per group — use RNGFor there.
func (s *Sampler) RNG() *xrand.RNG { return s.rng }

// RNGFor returns the generator that feeds group i's draws: the group's own
// stream on a stream sampler, the shared generator otherwise. Algorithms
// with custom draw paths (pair draws, membership indicators) must take
// their auxiliary randomness from here so the per-group stream discipline
// — and with it worker invariance — extends to every sample they consume.
// Source-fed samplers have no generator at all (draws are addressed by
// offset) and return nil; algorithms with custom draw paths cannot run on
// them, which core.Run enforces.
func (s *Sampler) RNGFor(i int) *xrand.RNG {
	if s.streams != nil {
		return &s.streams[i]
	}
	return s.rng
}

// EnableMoments switches on per-group moment accounting: one Welford
// accumulator per group, maintained incrementally. With autoObserve set,
// every value the sampler draws (Draw, DrawBatch) is folded into its
// group's moments as part of the draw — the right mode when the drawn
// values are the variable being estimated. Algorithms that transform
// draws (normalized sums, pair attributes) pass false and feed the
// transformed values through Observe at the point they fold them into
// their estimates. Call before any draws.
func (s *Sampler) EnableMoments(autoObserve bool) {
	s.moments = make([]conc.Moments, s.u.K())
	s.autoObserve = autoObserve
}

// MomentsEnabled reports whether per-group moments are being maintained.
func (s *Sampler) MomentsEnabled() bool { return s.moments != nil }

// Observe folds one value of the estimated variable into group i's
// moments (no draw is recorded). It is the value-level companion of
// Record for custom draw paths, and a no-op when moments are disabled so
// hooks can call it unconditionally.
func (s *Sampler) Observe(i int, x float64) {
	if s.moments != nil {
		s.moments[i].Add(x)
	}
}

// MomentsFor returns group i's accumulator, nil when moments are
// disabled. The caller must not mutate it; like Counts, it must not be
// read while draws are in flight on other goroutines.
func (s *Sampler) MomentsFor(i int) *conc.Moments {
	if s.moments == nil {
		return nil
	}
	return &s.moments[i]
}

// WithoutReplacement reports whether the sampler consumes groups without
// replacement.
func (s *Sampler) WithoutReplacement() bool { return s.without }

// Universe returns the sampled universe.
func (s *Sampler) Universe() *Universe { return s.u }
