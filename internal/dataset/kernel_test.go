package dataset

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/xrand"
)

// kernelTestTable builds a table whose groups are large enough to draw
// several blocks yet small enough to exhaust deliberately.
func kernelTestTable(t *testing.T) *Table {
	t.Helper()
	b := NewTableBuilderColumns("delay", "dist")
	r := xrand.New(0xbeef)
	for _, name := range []string{"a", "b", "c"} {
		for i := 0; i < 300; i++ {
			if err := b.AddRow(name, math.Floor(r.Float64()*100), float64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	tab, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// drawPlan is the block sequence each equivalence case replays: uneven
// sizes, a repeat, and a final oversized block that exhausts every group
// (populations are ≤ 300) and forces the with-replacement fallback.
var drawPlan = []int{5, 64, 7, 64, 512}

// kernelCase builds a pair of identical universes for one group family.
type kernelCase struct {
	name  string
	build func(t *testing.T) *Universe
}

func kernelCases(t *testing.T) []kernelCase {
	t.Helper()
	return []kernelCase{
		{"slice", func(t *testing.T) *Universe {
			r := xrand.New(0x51ce)
			mk := func(name string) *SliceGroup {
				vals := make([]float64, 250)
				for i := range vals {
					vals[i] = r.Float64() * 100
				}
				return NewSliceGroup(name, vals)
			}
			return NewUniverse(100, mk("a"), mk("b"), mk("c"))
		}},
		{"table", func(t *testing.T) *Universe {
			u, err := kernelTestTable(t).Universe(100)
			if err != nil {
				t.Fatal(err)
			}
			return u
		}},
		{"filtered-bitmap", func(t *testing.T) *Universe {
			// A dense predicate keeps the bitmap selection representation.
			v, err := kernelTestTable(t).Filter(Predicate{Op: OpLT, Value: 80})
			if err != nil {
				t.Fatal(err)
			}
			u, err := v.Universe(100)
			if err != nil {
				t.Fatal(err)
			}
			return u
		}},
		{"filtered-index", func(t *testing.T) *Universe {
			// A highly selective predicate switches to the row-index
			// representation.
			v, err := kernelTestTable(t).Filter(Predicate{Column: "dist", Op: OpLT, Value: 40})
			if err != nil {
				t.Fatal(err)
			}
			u, err := v.Universe(100)
			if err != nil {
				t.Fatal(err)
			}
			return u
		}},
	}
}

// TestKernelMatchesGenericPath holds the kernel equivalence contract: for
// every kernel-capable group family, DrawBlockSum must replicate the
// generic DrawBatch path bit for bit — the same values (hence sums), the
// same RNG stream advance, the same permutation and exhaustion state, and
// the same Welford moments — with and without replacement, across blocks
// that span the exhaustion boundary.
func TestKernelMatchesGenericPath(t *testing.T) {
	for _, tc := range kernelCases(t) {
		for _, without := range []bool{true, false} {
			t.Run(fmt.Sprintf("%s/without=%v", tc.name, without), func(t *testing.T) {
				fast := NewStreamSampler(tc.build(t), 0x5eed, without)
				fast.EnableMoments(true)
				fast.EnableBlockKernels()
				slow := NewStreamSampler(tc.build(t), 0x5eed, without)
				slow.EnableMoments(true)

				buf := make([]float64, 512)
				for gi := 0; gi < 3; gi++ {
					for step, n := range drawPlan {
						sum, ok := fast.DrawBlockSum(gi, n)
						if !ok {
							t.Fatalf("group %d: kernel not engaged", gi)
						}
						dst := buf[:n]
						slow.DrawBatch(gi, dst)
						want := 0.0
						for _, v := range dst {
							want += v
						}
						if sum != want {
							t.Fatalf("group %d step %d (n=%d): kernel sum %v, generic %v",
								gi, step, n, sum, want)
						}
						if fast.Exhausted(gi) != slow.Exhausted(gi) {
							t.Fatalf("group %d step %d: exhaustion flags diverge (%v vs %v)",
								gi, step, fast.Exhausted(gi), slow.Exhausted(gi))
						}
						fm, sm := fast.MomentsFor(gi), slow.MomentsFor(gi)
						if *fm != *sm {
							t.Fatalf("group %d step %d: moments diverge: %+v vs %+v", gi, step, *fm, *sm)
						}
					}
					if fast.Counts()[gi] != slow.Counts()[gi] {
						t.Fatalf("group %d: counts diverge: %d vs %d", gi, fast.Counts()[gi], slow.Counts()[gi])
					}
				}
				if fast.Total() != slow.Total() {
					t.Fatalf("totals diverge: %d vs %d", fast.Total(), slow.Total())
				}
			})
		}
	}
}

// TestKernelFallsBackOnVirtualGroups: distribution-backed groups have no
// concrete kernel; DrawBlockSum must decline so the driver's generic path
// serves them, and enabling kernels on such a universe stays a no-op.
func TestKernelFallsBackOnVirtualGroups(t *testing.T) {
	u := NewUniverse(100,
		NewDistGroup("d", xrand.TruncNormal{Mu: 50, Sigma: 8, Lo: 0, Hi: 100}, 1000))
	s := NewStreamSampler(u, 1, false)
	s.EnableBlockKernels()
	if _, ok := s.DrawBlockSum(0, 8); ok {
		t.Fatal("kernel claimed a distribution-backed group")
	}
	// A mixed universe gets kernels only for the concrete groups.
	mixed := NewUniverse(100,
		NewSliceGroup("s", []float64{1, 2, 3, 4, 5}),
		NewDistGroup("d", xrand.TruncNormal{Mu: 50, Sigma: 8, Lo: 0, Hi: 100}, 1000))
	ms := NewStreamSampler(mixed, 1, false)
	ms.EnableBlockKernels()
	if _, ok := ms.DrawBlockSum(0, 3); !ok {
		t.Fatal("kernel missing for the slice group in a mixed universe")
	}
	if _, ok := ms.DrawBlockSum(1, 3); ok {
		t.Fatal("kernel claimed the virtual group in a mixed universe")
	}
}
