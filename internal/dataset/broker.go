// Shared-sample broker: one draw stream feeding any number of concurrent
// queries over the same table (ROADMAP item 2).
//
// The paper's guarantees are per query and depend only on the draws a
// query folds — never on who triggered them — so N concurrent queries
// over one group set can share a single physical draw stream: each
// round's block draws are taken once and fanned to every subscriber,
// which folds them into its own aggregate, moments, and bound. The
// per-group RNG-stream discipline (xrand.NewStream) makes this exact
// rather than approximate: group i's j-th draw is a pure function of
// (base seed, i, j), independent of interleaving, so a broker-fed run is
// bit-for-bit identical to a solo run over the same resolved seed.
//
// The broker keeps each group's drawn values as a retained prefix. A
// subscriber at offset j reads prefix[j:]; the first subscriber to need
// an offset extends the prefix (one block draw through the broker's own
// sampler), everyone else copies. Late arrivals simply start reading at
// offset 0 — catch-up is the same code path as fan-out, not a special
// case. Retention is bounded by the deepest subscriber (and by the group
// size in without-replacement mode); registries that hand out brokers
// drop them when their last subscriber departs, freeing the prefixes.
package dataset

import (
	"sync"
	"sync/atomic"
)

// DrawSource serves draw values by (group, offset): an offset-addressed
// view of the per-group sample streams, shareable across runs because
// offsets — not private RNG state — identify draws. Fill must be safe for
// concurrent use across goroutines (including the same group; the round
// driver draws distinct groups concurrently, and distinct subscribers may
// hit one group at once).
type DrawSource interface {
	// Fill copies draws [from, from+len(dst)) of group i into dst.
	Fill(i int, from int64, dst []float64)
}

// Broker is a refcount-agnostic shared draw stream over one universe: the
// canonical DrawSource. Construct one per (table, filter, sampling mode,
// resolved seed) and feed every concurrent query's sampler from it via
// NewSourceSampler; each distinct offset is drawn exactly once no matter
// how many subscribers request it.
type Broker struct {
	sampler *Sampler
	groups  []brokerStream

	served atomic.Int64
}

// brokerStream is one group's retained draw prefix. The mutex serializes
// extension and copying per group, so subscribers contend only when they
// touch the same group at the same instant.
type brokerStream struct {
	mu     sync.Mutex
	prefix []float64
}

// NewBroker returns a broker over u whose draw streams are seeded exactly
// as NewStreamSampler(u, base, withoutReplacement) would seed a solo
// run's: feed subscribers built with NewSourceSampler and their results
// match a solo run over the same base bit for bit. The broker owns u's
// groups' draw state; do not sample them through any other sampler while
// the broker lives.
func NewBroker(u *Universe, base uint64, withoutReplacement bool) *Broker {
	return &Broker{
		sampler: NewStreamSampler(u, base, withoutReplacement),
		groups:  make([]brokerStream, u.K()),
	}
}

// Fill implements DrawSource: it serves group i's draws [from,
// from+len(dst)), extending the retained prefix through the broker's own
// sampler when the high offsets have not been drawn yet. Extension draws
// exactly the missing suffix — values are a pure function of the offset,
// so chunking never changes them.
func (b *Broker) Fill(i int, from int64, dst []float64) {
	if len(dst) == 0 {
		return
	}
	g := &b.groups[i]
	need := from + int64(len(dst))
	g.mu.Lock()
	if int64(len(g.prefix)) < need {
		cur := int64(len(g.prefix))
		if int64(cap(g.prefix)) < need {
			grown := make([]float64, cur, growCap(cur, need))
			copy(grown, g.prefix)
			g.prefix = grown
		}
		g.prefix = g.prefix[:need]
		b.sampler.drawBatch(i, g.prefix[cur:need])
	}
	copy(dst, g.prefix[from:need])
	g.mu.Unlock()
	b.served.Add(int64(len(dst)))
}

// growCap doubles the prefix capacity until it covers need, so extension
// cost is amortized O(1) per value regardless of subscribers' block sizes.
func growCap(cur, need int64) int64 {
	c := cur * 2
	if c < 1024 {
		c = 1024
	}
	if c < need {
		c = need
	}
	return c
}

// Drawn returns the number of samples the broker has physically drawn —
// the memory-traffic cost actually paid, summed over groups.
func (b *Broker) Drawn() int64 { return b.sampler.Total() }

// Served returns the number of samples delivered to subscribers. With N
// concurrent subscribers over the same offsets, Served approaches
// N×Drawn: the sharing win.
func (b *Broker) Served() int64 { return b.served.Load() }

// Retained returns the number of values currently held across all group
// prefixes (the broker's retention footprint).
func (b *Broker) Retained() int64 {
	var total int64
	for i := range b.groups {
		g := &b.groups[i]
		g.mu.Lock()
		total += int64(len(g.prefix))
		g.mu.Unlock()
	}
	return total
}

// WithoutReplacement reports the broker's sampling mode. Subscribers must
// be built with the same mode, or offsets would mean different streams.
func (b *Broker) WithoutReplacement() bool { return b.sampler.WithoutReplacement() }
