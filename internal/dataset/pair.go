package dataset

import "repro/internal/xrand"

// PairGroup is a group whose tuples carry two aggregate attributes (Y, Z),
// supporting the multiple-aggregates visualization of §6.3.5
// (SELECT X, AVG(Y), AVG(Z) ... GROUP BY X). Draw returns Y alone;
// DrawPair returns both attributes of one random tuple.
type PairGroup interface {
	Group
	// DrawPair returns the (Y, Z) attributes of a uniform random tuple.
	DrawPair(r *xrand.RNG) (y, z float64)
	// TrueMeanZ returns the exact mean of the Z attribute.
	TrueMeanZ() float64
}

// SlicePairGroup is a materialized PairGroup over parallel value slices.
type SlicePairGroup struct {
	*SliceGroup
	zs    []float64
	meanZ float64
}

// NewSlicePairGroup builds a pair group from parallel Y and Z slices.
// It panics if the slices differ in length.
func NewSlicePairGroup(name string, ys, zs []float64) *SlicePairGroup {
	if len(ys) != len(zs) {
		panic("dataset: pair group needs parallel slices")
	}
	g := &SlicePairGroup{SliceGroup: NewSliceGroup(name, ys), zs: zs}
	sum := 0.0
	for _, z := range zs {
		sum += z
	}
	g.meanZ = sum / float64(len(zs))
	return g
}

// DrawPair returns the attributes of one random tuple.
func (g *SlicePairGroup) DrawPair(r *xrand.RNG) (float64, float64) {
	i := r.Intn(len(g.zs))
	return g.Values()[i], g.zs[i]
}

// TrueMeanZ returns the exact mean of the Z attribute.
func (g *SlicePairGroup) TrueMeanZ() float64 { return g.meanZ }

// DistPairGroup is a virtual PairGroup whose two attributes are drawn from
// independent distributions (sufficient for the multi-aggregate experiments,
// which only exercise the ordering of the two marginals).
type DistPairGroup struct {
	*DistGroup
	zdist xrand.Dist
}

// NewDistPairGroup builds a virtual pair group of nominal size n.
func NewDistPairGroup(name string, ydist, zdist xrand.Dist, n int64) *DistPairGroup {
	return &DistPairGroup{DistGroup: NewDistGroup(name, ydist, n), zdist: zdist}
}

// DrawPair returns one sample from each marginal.
func (g *DistPairGroup) DrawPair(r *xrand.RNG) (float64, float64) {
	return g.Draw(r), g.zdist.Sample(r)
}

// TrueMeanZ returns the analytical mean of the Z marginal.
func (g *DistPairGroup) TrueMeanZ() float64 { return g.zdist.Mean() }

// FractionEstimator yields unbiased estimates of a group's fractional size
// s_i = n_i / Σ n_j without requiring the sizes to be known exactly. The
// unknown-group-size SUM algorithm (§6.3.1, Algorithm 5) multiplies each
// value sample by such an estimate to obtain an unbiased normalized-sum
// sample.
//
// The estimator returned by membership sampling is the indicator that a
// uniformly random tuple of the whole table belongs to group i: its
// expectation is exactly s_i and it lies in [0, 1], so products x·z stay in
// [0, c] and the Hoeffding machinery applies unchanged.
type FractionEstimator interface {
	// DrawFractionEstimate returns an unbiased estimate in [0, 1] of group
	// i's fractional size.
	DrawFractionEstimate(i int, r *xrand.RNG) float64
}

// MembershipFractionEstimator implements FractionEstimator for a universe
// with known sizes by simulating the membership test NEEDLETAIL performs
// with its bitmap indexes: a Bernoulli draw with success probability s_i.
type MembershipFractionEstimator struct {
	fractions []float64
}

// NewMembershipFractionEstimator precomputes the group fractions of u.
// It panics if any group size is unknown.
func NewMembershipFractionEstimator(u *Universe) *MembershipFractionEstimator {
	total := u.TotalSize()
	if total == 0 {
		panic("dataset: fraction estimator needs known group sizes")
	}
	fr := make([]float64, u.K())
	for i, g := range u.Groups {
		fr[i] = float64(g.Size()) / float64(total)
	}
	return &MembershipFractionEstimator{fractions: fr}
}

// DrawFractionEstimate returns 1 with probability s_i, else 0.
func (e *MembershipFractionEstimator) DrawFractionEstimate(i int, r *xrand.RNG) float64 {
	if r.Float64() < e.fractions[i] {
		return 1
	}
	return 0
}
