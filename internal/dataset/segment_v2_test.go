package dataset

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/xrand"
)

// writeCompressed writes tab as a v2 segment directory with a small block
// length, so even the test tables span many blocks per column.
func writeCompressed(t *testing.T, tab *Table, dir string, blockLen int) {
	t.Helper()
	if err := tab.WriteSegmentsOptions(dir, SegmentOptions{Compress: true, BlockLen: blockLen}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressedSegmentRoundTrip(t *testing.T) {
	tab := buildTestTable(t)
	dir := t.TempDir()
	writeCompressed(t, tab, dir, 64)

	info, err := ReadSegmentManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Compressed || info.BlockLen != 64 {
		t.Fatalf("manifest info: Compressed=%v BlockLen=%d, want true/64", info.Compressed, info.BlockLen)
	}

	st, err := OpenSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.Compressed() {
		t.Fatal("Compressed() = false on a v2 table")
	}
	if err := st.VerifyChecksums(); err != nil {
		t.Fatalf("VerifyChecksums on a clean compressed write: %v", err)
	}
	if st.K() != tab.K() || st.NumRows() != tab.NumRows() {
		t.Fatalf("shape mismatch: got %d groups/%d rows, want %d/%d", st.K(), st.NumRows(), tab.K(), tab.NumRows())
	}
	if st.MinValue() != tab.MinValue() || st.MaxValue() != tab.MaxValue() {
		t.Fatalf("range [%v,%v] != [%v,%v]", st.MinValue(), st.MaxValue(), tab.MinValue(), tab.MaxValue())
	}
	for gi := range tab.Names() {
		got, want := st.Column(gi), tab.Column(gi)
		if len(got) != len(want) {
			t.Fatalf("group %d has %d rows, want %d", gi, len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("group %d row %d: %v != %v", gi, i, got[i], want[i])
			}
		}
		sg := st.Groups()[gi].(*TableGroup)
		mg := tab.Groups()[gi].(*TableGroup)
		if math.Float64bits(sg.TrueMean()) != math.Float64bits(mg.TrueMean()) ||
			math.Float64bits(sg.MaxValue()) != math.Float64bits(mg.MaxValue()) {
			t.Fatalf("group %d stats mismatch", gi)
		}
		if sg.Values() != nil {
			t.Fatalf("group %d: Values() on a compressed group must be nil", gi)
		}
	}
	for _, name := range tab.ExtraColumnNames() {
		got, _ := st.ExtraColumn(name)
		want, _ := tab.ExtraColumn(name)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("extra %q row %d: %v != %v", name, i, got[i], want[i])
			}
		}
	}
	if err := st.Err(); err != nil {
		t.Fatalf("Err() after clean reads: %v", err)
	}

	// The directory on disk must be smaller than the raw encoding would be:
	// the delta-friendly "distance" extra alone guarantees real savings.
	var onDisk int64
	for _, name := range []string{"value.seg", "extra.0.seg", "extra.1.seg"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		onDisk += fi.Size() - SegmentDataOffset
	}
	raw := int64(tab.NumRows()) * 8 * 3
	if onDisk >= raw {
		t.Fatalf("compressed columns are %d bytes, raw would be %d", onDisk, raw)
	}
}

// drawModesV2 exercises every draw mode a group implements, returning the
// produced count.
var drawModesV2 = []struct {
	name string
	run  func(g Group, r *xrand.RNG, out []float64) int
}{
	{"scalar-wr", func(g Group, r *xrand.RNG, out []float64) int {
		for i := range out {
			out[i] = g.Draw(r)
		}
		return len(out)
	}},
	{"batch-wr", func(g Group, r *xrand.RNG, out []float64) int {
		g.(BatchGroup).DrawBatch(r, out)
		return len(out)
	}},
	{"scalar-wor", func(g Group, r *xrand.RNG, out []float64) int {
		n := 0
		for n < len(out) {
			v, ok := g.(WithoutReplacementGroup).DrawWithoutReplacement(r)
			if !ok {
				break
			}
			out[n] = v
			n++
		}
		return n
	}},
	{"batch-wor", func(g Group, r *xrand.RNG, out []float64) int {
		n := 0
		for n < len(out) {
			lim := n + 64
			if lim > len(out) {
				lim = len(out)
			}
			took := g.(BatchWithoutReplacementGroup).DrawBatchWithoutReplacement(r, out[n:lim])
			if took == 0 {
				break
			}
			n += took
		}
		return n
	}},
}

// assertSameDraws runs every draw mode on paired group sets with identical
// RNG seeds and requires bit-identical streams.
func assertSameDraws(t *testing.T, label string, want, got []Group, draws int) {
	t.Helper()
	for _, mode := range drawModesV2 {
		for gi := range want {
			a := make([]float64, draws)
			b := make([]float64, draws)
			na := mode.run(want[gi], xrand.New(uint64(11+gi)), a)
			nb := mode.run(got[gi], xrand.New(uint64(11+gi)), b)
			if na != nb {
				t.Fatalf("%s/%s group %d: %d vs %d values", label, mode.name, gi, na, nb)
			}
			for i := 0; i < na; i++ {
				if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
					t.Fatalf("%s/%s group %d draw %d: %v != %v", label, mode.name, gi, i, a[i], b[i])
				}
			}
		}
	}
}

// TestCompressedDrawsMatchInMemory pins the tentpole contract: every draw
// mode over compressed blocks produces the exact stream the in-memory
// table would, block boundaries and all.
func TestCompressedDrawsMatchInMemory(t *testing.T) {
	tab := buildTestTable(t)
	for _, blockLen := range []int{1, 64, 1 << 16} {
		dir := t.TempDir()
		writeCompressed(t, tab, dir, blockLen)
		st, err := OpenSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		// Views: fresh draw state per mode run.
		for _, mode := range drawModesV2 {
			mem, seg := tab.View(), st.View()
			for gi := range mem {
				a := make([]float64, 300)
				b := make([]float64, 300)
				na := mode.run(mem[gi], xrand.New(uint64(11+gi)), a)
				nb := mode.run(seg[gi], xrand.New(uint64(11+gi)), b)
				if na != nb {
					t.Fatalf("blockLen %d %s group %d: %d vs %d values", blockLen, mode.name, gi, na, nb)
				}
				for i := 0; i < na; i++ {
					if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
						t.Fatalf("blockLen %d %s group %d draw %d: %v != %v", blockLen, mode.name, gi, i, a[i], b[i])
					}
				}
			}
		}
		if err := st.Err(); err != nil {
			t.Fatal(err)
		}
		st.Close()
	}
}

// TestCompressedCacheEviction shrinks the decoded-block budget to its
// 4-block floor and re-pins draw equivalence: evicted blocks re-decode to
// identical values, and bounded residency never changes a stream.
func TestCompressedCacheEviction(t *testing.T) {
	old := blockCacheBytes
	blockCacheBytes = 1 // limit clamps to 4 blocks
	defer func() { blockCacheBytes = old }()

	tab := buildTestTable(t)
	dir := t.TempDir()
	writeCompressed(t, tab, dir, 32)
	st, err := OpenSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.cache.limit != 4 {
		t.Fatalf("cache limit %d, want the 4-block floor", st.cache.limit)
	}
	assertSameDraws(t, "evicting", tab.View(), st.View(), 300)
	if got := len(st.cache.entries); got > 4 {
		t.Fatalf("cache holds %d blocks, budget is 4", got)
	}
}

// TestCompressedKernelMatchesInMemory pins DrawBlockSum equivalence over
// compressed blocks — the round driver's actual hot path.
func TestCompressedKernelMatchesInMemory(t *testing.T) {
	tab := buildTestTable(t)
	dir := t.TempDir()
	writeCompressed(t, tab, dir, 64)
	st, err := OpenSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for _, without := range []bool{true, false} {
		memU := NewUniverse(101, tab.View()...)
		segU := NewUniverse(101, st.View()...)
		ms := NewStreamSampler(memU, 99, without)
		ss := NewStreamSampler(segU, 99, without)
		ms.EnableBlockKernels()
		ss.EnableBlockKernels()
		for round := 0; round < 8; round++ {
			for gi := 0; gi < memU.K(); gi++ {
				a, aok := ms.DrawBlockSum(gi, 64)
				b, bok := ss.DrawBlockSum(gi, 64)
				if !aok || !bok {
					t.Fatalf("kernel not engaged (mem %v, seg %v)", aok, bok)
				}
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Fatalf("without=%v round %d group %d: in-memory sum %v, compressed %v", without, round, gi, a, b)
				}
			}
		}
	}
}

// TestCompressedFilterMatchesInMemory pins zone-map pushdown correctness:
// for a spread of predicates (ordering, equality, extras, conjunctions),
// the filtered view over compressed blocks must have the same surviving
// groups, cardinalities, means, bound, and draw streams as the in-memory
// filter — pruned blocks and all.
func TestCompressedFilterMatchesInMemory(t *testing.T) {
	tab := buildTestTable(t)
	dir := t.TempDir()
	writeCompressed(t, tab, dir, 32)
	st, err := OpenSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	filters := [][]Predicate{
		{{Column: "delay", Op: OpLT, Value: 20}},
		{{Column: "", Op: OpGE, Value: 90}}, // sparse survivors
		{{Column: "distance", Op: OpLT, Value: 10}},
		{{Column: "distance", Op: OpGE, Value: 100}},
		{{Column: "distance", Op: OpEQ, Value: 5}},
		{{Column: "distance", Op: OpNE, Value: 5}},
		{{Column: "elapsed", Op: OpGT, Value: 50}, {Column: "distance", Op: OpLE, Value: 150}},
		{{Column: "delay", Op: OpLE, Value: 100}}, // all rows survive
	}
	for fi, preds := range filters {
		mv, merr := tab.Filter(preds...)
		sv, serr := st.Filter(preds...)
		if (merr == nil) != (serr == nil) {
			t.Fatalf("filter %d: in-memory err %v, compressed err %v", fi, merr, serr)
		}
		if merr != nil {
			continue
		}
		if mv.NumRows() != sv.NumRows() || mv.K() != sv.K() {
			t.Fatalf("filter %d: %d rows/%d groups vs %d/%d", fi, mv.NumRows(), mv.K(), sv.NumRows(), sv.K())
		}
		if math.Float64bits(mv.MaxValue()) != math.Float64bits(sv.MaxValue()) {
			t.Fatalf("filter %d: bound %v vs %v", fi, mv.MaxValue(), sv.MaxValue())
		}
		mg, sg := mv.View(), sv.View()
		for gi := range mg {
			if mg[gi].Name() != sg[gi].Name() || mg[gi].Size() != sg[gi].Size() {
				t.Fatalf("filter %d group %d: %s/%d vs %s/%d", fi,
					gi, mg[gi].Name(), mg[gi].Size(), sg[gi].Name(), sg[gi].Size())
			}
			if math.Float64bits(mg[gi].TrueMean()) != math.Float64bits(sg[gi].TrueMean()) {
				t.Fatalf("filter %d group %d: mean %v vs %v", fi, gi, mg[gi].TrueMean(), sg[gi].TrueMean())
			}
		}
		assertSameDraws(t, "filtered", mg, sg, 200)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestCompressedFilterSkipsBlocks proves the pushdown actually skips: a
// clustered predicate on the monotone "distance" extra must decode only the
// blocks whose zones straddle the cut, leaving most of the column untouched
// in the cache.
func TestCompressedFilterSkipsBlocks(t *testing.T) {
	tab := buildTestTable(t)
	dir := t.TempDir()
	writeCompressed(t, tab, dir, 32)
	st, err := OpenSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// distance counts 0..rows-1 within each group, so "distance < 5" is
	// provably false for every block past each group's first.
	if _, err := st.Filter(Predicate{Column: "distance", Op: OpLT, Value: 5}); err != nil {
		t.Fatal(err)
	}
	st.cache.mu.Lock()
	decoded := len(st.cache.entries)
	st.cache.mu.Unlock()
	total := st.Table.bcols[0].nblocks() * len(st.Table.bcols)
	if decoded*4 > total {
		t.Fatalf("filter decoded %d of %d blocks; zone maps should have skipped most", decoded, total)
	}
}

// TestCompressedRecompression round-trips a compressed table back through
// both writers: the block-windowed source path of WriteSegmentsOptions.
func TestCompressedRecompression(t *testing.T) {
	tab := buildTestTable(t)
	src := t.TempDir()
	writeCompressed(t, tab, src, 64)
	st, err := OpenSegments(src)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	for _, opts := range []SegmentOptions{{}, {Compress: true, BlockLen: 32}} {
		dst := t.TempDir()
		if err := st.WriteSegmentsOptions(dst, opts); err != nil {
			t.Fatal(err)
		}
		st2, err := OpenSegments(dst)
		if err != nil {
			t.Fatal(err)
		}
		if err := st2.VerifyChecksums(); err != nil {
			t.Fatalf("rewritten (compress=%v) fails verify: %v", opts.Compress, err)
		}
		for gi := range tab.Names() {
			got, want := st2.Column(gi), tab.Column(gi)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("rewrite compress=%v group %d row %d: %v != %v", opts.Compress, gi, i, got[i], want[i])
				}
			}
		}
		st2.Close()
	}
}

// TestOpenSegmentsCorruptionV2 extends the corruption matrix to the
// compressed format: damaged blocks, forged zone maps, and future versions
// must all produce descriptive errors, never panics or silent bad data.
func TestOpenSegmentsCorruptionV2(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(t *testing.T, dir string)
		errHas  string
		// verify=true means the damage is only detectable by the full
		// decode-and-checksum pass, not the structural open.
		verify bool
	}{
		{
			name: "block-payload-flip",
			corrupt: func(t *testing.T, dir string) {
				corruptFile(t, filepath.Join(dir, "value.seg"), func(b []byte) []byte {
					b[SegmentDataOffset+20] ^= 0x40 // inside the first block's payload
					return b
				})
			},
			errHas: "checksum mismatch",
			verify: true,
		},
		{
			name: "block-unknown-codec",
			corrupt: func(t *testing.T, dir string) {
				corruptFile(t, filepath.Join(dir, "value.seg"), func(b []byte) []byte {
					b[SegmentDataOffset] = 200 // first block's codec id
					return b
				})
			},
			errHas: "unknown codec",
			verify: true,
		},
		{
			name: "block-truncated",
			corrupt: func(t *testing.T, dir string) {
				corruptFile(t, filepath.Join(dir, "value.seg"), func(b []byte) []byte {
					return b[:len(b)-16]
				})
			},
			errHas: "truncated",
		},
		{
			name: "zone-map-forged",
			corrupt: func(t *testing.T, dir string) {
				editManifestV2(t, dir, func(man *segManifest) {
					man.Columns[0].Blocks[1].Min -= 1
				})
			},
			errHas: "zone map",
			verify: true,
		},
		{
			name: "manifest-future-version",
			corrupt: func(t *testing.T, dir string) {
				rewriteManifest(t, dir, func(s string) string {
					return strings.Replace(s, `"version": 2`, `"version": 3`, 1)
				})
			},
			errHas: "unsupported format version",
		},
		{
			name: "block-offsets-overlap",
			corrupt: func(t *testing.T, dir string) {
				editManifestV2(t, dir, func(man *segManifest) {
					man.Columns[0].Blocks[2].Off = man.Columns[0].Blocks[1].Off
				})
			},
			errHas: "overlaps",
		},
		{
			name: "block-count-wrong",
			corrupt: func(t *testing.T, dir string) {
				editManifestV2(t, dir, func(man *segManifest) {
					man.Columns[0].Blocks = man.Columns[0].Blocks[:3]
				})
			},
			errHas: "blocks",
		},
		{
			name: "zone-inverted",
			corrupt: func(t *testing.T, dir string) {
				editManifestV2(t, dir, func(man *segManifest) {
					b := &man.Columns[0].Blocks[0]
					b.Min, b.Max = b.Max+1, b.Min
				})
			},
			errHas: "inverted",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tab := buildTestTable(t)
			dir := t.TempDir()
			writeCompressed(t, tab, dir, 64)
			tc.corrupt(t, dir)
			st, err := OpenSegments(dir)
			if tc.verify {
				if err != nil {
					t.Fatalf("structural open should pass for %s: %v", tc.name, err)
				}
				defer st.Close()
				err = st.VerifyChecksums()
			}
			if err == nil {
				t.Fatalf("expected an error for %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.errHas) {
				t.Fatalf("error %q does not mention %q", err, tc.errHas)
			}
		})
	}

	// A v1 manifest smuggling v2 block metadata is rejected too.
	t.Run("v1-with-block-metadata", func(t *testing.T) {
		tab := buildTestTable(t)
		dir := t.TempDir()
		if err := tab.WriteSegments(dir); err != nil {
			t.Fatal(err)
		}
		rewriteManifest(t, dir, func(s string) string {
			return strings.Replace(s, `"version": 1`, `"version": 1, "block_len": 64`, 1)
		})
		if _, err := OpenSegments(dir); err == nil || !strings.Contains(err.Error(), "compressed-column metadata") {
			t.Fatalf("v1 manifest with block metadata: %v", err)
		}
	})

	// Corruption hit mid-draw (after a clean open, cache path) degrades to
	// zeros and surfaces through Err rather than panicking.
	t.Run("draw-after-corruption-sets-err", func(t *testing.T) {
		tab := buildTestTable(t)
		dir := t.TempDir()
		writeCompressed(t, tab, dir, 64)
		corruptFile(t, filepath.Join(dir, "value.seg"), func(b []byte) []byte {
			b[SegmentDataOffset+20] ^= 0x40
			return b
		})
		st, err := OpenSegments(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		r := xrand.New(1)
		g := st.View()[0].(BatchGroup)
		var buf [128]float64
		g.DrawBatch(r, buf[:])
		if err := st.Err(); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
			t.Fatalf("Err after drawing corrupt block: %v", err)
		}
	})
}

// editManifestV2 round-trips manifest.json through the struct form for
// field-level edits (Go's JSON encoding of float64 is exact, so untouched
// zones survive the rewrite bit-for-bit).
func editManifestV2(t *testing.T, dir string, edit func(man *segManifest)) {
	t.Helper()
	man, err := readSegManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	edit(man)
	blob, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, segManifestName), blob, 0o644); err != nil {
		t.Fatal(err)
	}
}
