package dataset

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// TestSliceGroupDrawBatchMatchesScalar: the block with-replacement path
// must replay exactly the stream the scalar path produces from the same
// seed.
func TestSliceGroupDrawBatchMatchesScalar(t *testing.T) {
	vals := make([]float64, 257)
	for i := range vals {
		vals[i] = float64(i)
	}
	scalar := NewSliceGroup("s", vals)
	block := NewSliceGroup("b", vals)
	r1, r2 := xrand.New(9), xrand.New(9)
	want := make([]float64, 100)
	for i := range want {
		want[i] = scalar.Draw(r1)
	}
	got := make([]float64, 100)
	block.DrawBatch(r2, got[:37])
	block.DrawBatch(r2, got[37:])
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d: block %v, scalar %v", i, got[i], want[i])
		}
	}
}

// TestSliceGroupBatchWithoutReplacementMatchesScalar: the block
// permutation path must consume the identical Fisher–Yates stream.
func TestSliceGroupBatchWithoutReplacementMatchesScalar(t *testing.T) {
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i) * 1.5
	}
	scalar := NewSliceGroup("s", vals)
	block := NewSliceGroup("b", vals)
	r1, r2 := xrand.New(4), xrand.New(4)
	var want []float64
	for {
		v, ok := scalar.DrawWithoutReplacement(r1)
		if !ok {
			break
		}
		want = append(want, v)
	}
	got := make([]float64, 0, len(vals))
	buf := make([]float64, 17)
	for {
		n := block.DrawBatchWithoutReplacement(r2, buf)
		got = append(got, buf[:n]...)
		if n < len(buf) {
			break
		}
	}
	if len(got) != len(want) {
		t.Fatalf("block consumed %d values, scalar %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("permutation element %d: block %v, scalar %v", i, got[i], want[i])
		}
	}
}

// TestDistGroupDrawBatchMatchesScalar covers every bulk fast path plus the
// generic fallback.
func TestDistGroupDrawBatchMatchesScalar(t *testing.T) {
	dists := map[string]xrand.Dist{
		"uniform":   xrand.Uniform{Lo: 5, Hi: 25},
		"bernoulli": xrand.Bernoulli{Lo: 0, Hi: 100, P: 0.3},
		"point":     xrand.Point(7),
		"truncnorm": xrand.TruncNormal{Mu: 50, Sigma: 10, Lo: 0, Hi: 100},
		"mixture": xrand.NewMixture(
			[]xrand.Dist{xrand.Uniform{Lo: 0, Hi: 10}, xrand.Point(50)},
			[]float64{1, 2}),
	}
	for name, d := range dists {
		t.Run(name, func(t *testing.T) {
			g := NewDistGroup("g", d, 1000)
			r1, r2 := xrand.New(11), xrand.New(11)
			want := make([]float64, 64)
			for i := range want {
				want[i] = d.Sample(r1)
			}
			got := make([]float64, 64)
			g.DrawBatch(r2, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("draw %d: block %v, scalar %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestSamplerDrawBatchMatchesScalar: block and scalar accounting produce
// the same stream, counts, and totals in both sampling modes.
func TestSamplerDrawBatchMatchesScalar(t *testing.T) {
	for _, without := range []bool{false, true} {
		vals := make([]float64, 500)
		for i := range vals {
			vals[i] = float64(i)
		}
		mk := func() *Universe {
			return NewUniverse(500,
				NewSliceGroup("a", append([]float64(nil), vals...)),
				NewSliceGroup("b", append([]float64(nil), vals...)))
		}
		s1 := NewSampler(mk(), xrand.New(21), without)
		s2 := NewSampler(mk(), xrand.New(21), without)
		want := make([]float64, 90)
		for i := range want {
			want[i] = s1.Draw(i % 2)
		}
		got := make([]float64, 90)
		buf := make([]float64, 1)
		for i := range got {
			// Alternate groups exactly as the scalar loop did, one-sample
			// blocks so the interleaving matches.
			s2.DrawBatch(i%2, buf)
			got[i] = buf[0]
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("without=%v draw %d: block %v, scalar %v", without, i, got[i], want[i])
			}
		}
		if s1.Total() != s2.Total() || s1.Count(0) != s2.Count(0) || s1.Count(1) != s2.Count(1) {
			t.Fatalf("accounting diverged: %d/%v vs %d/%v", s1.Total(), s1.Counts(), s2.Total(), s2.Counts())
		}
	}
}

// TestSamplerDrawBatchExhaustionFallback: a block larger than the
// remaining population falls back to with-replacement for the tail, like
// repeated scalar draws, and records the exhaustion.
func TestSamplerDrawBatchExhaustionFallback(t *testing.T) {
	u := NewUniverse(10, NewSliceGroup("a", []float64{1, 2, 3, 4, 5}))
	s := NewSampler(u, xrand.New(3), true)
	dst := make([]float64, 9)
	s.DrawBatch(0, dst)
	if !s.Exhausted(0) {
		t.Fatal("exhaustion not recorded")
	}
	if s.Count(0) != 9 || s.Total() != 9 {
		t.Fatalf("accounting wrong: count=%d total=%d", s.Count(0), s.Total())
	}
	seen := map[float64]int{}
	for _, v := range dst[:5] {
		seen[v]++
	}
	if len(seen) != 5 {
		t.Fatalf("first 5 draws should be the full population, got %v", dst[:5])
	}
	for _, v := range dst[5:] {
		if v < 1 || v > 5 {
			t.Fatalf("fallback draw %v outside population", v)
		}
	}
}

// TestSamplerResetsDrawStateAcrossRuns is the regression test for the
// reuse bug: a second sampler over the same universe must start a fresh
// permutation instead of continuing (or exhausting) the previous run's.
func TestSamplerResetsDrawStateAcrossRuns(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	u := NewUniverse(100, NewSliceGroup("a", vals))

	s1 := NewSampler(u, xrand.New(1), true)
	for i := 0; i < len(vals); i++ {
		s1.Draw(0) // exhaust the permutation completely
	}
	if s1.Exhausted(0) {
		t.Fatal("first run should consume exactly the population")
	}

	// Before the fix, every draw of the second run fell back to
	// with-replacement sampling (duplicates, Exhausted set). After it, the
	// run consumes a fresh full permutation: every value exactly once.
	s2 := NewSampler(u, xrand.New(2), true)
	seen := map[float64]int{}
	for i := 0; i < len(vals); i++ {
		seen[s2.Draw(0)]++
	}
	if s2.Exhausted(0) {
		t.Fatal("second run exhausted: draw state leaked from the first run")
	}
	if len(seen) != len(vals) {
		t.Fatalf("second run saw %d distinct values, want %d (permutation not fresh)", len(seen), len(vals))
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %v drawn %d times in a without-replacement pass", v, n)
		}
	}
}

// TestResetDrawsUniformity: the O(1) reset (keeping the permutation array)
// must still produce uniform first draws across repeated resets.
func TestResetDrawsUniformity(t *testing.T) {
	vals := []float64{0, 1, 2, 3}
	g := NewSliceGroup("a", vals)
	r := xrand.New(99)
	counts := make([]int, len(vals))
	const reps = 40_000
	for rep := 0; rep < reps; rep++ {
		// Consume a couple of elements, then reset mid-permutation.
		g.DrawWithoutReplacement(r)
		g.DrawWithoutReplacement(r)
		g.ResetDraws()
		v, _ := g.DrawWithoutReplacement(r)
		counts[int(v)]++
		g.ResetDraws()
	}
	want := float64(reps) / float64(len(vals))
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("value %d drawn %d times, want ~%.0f: reset is biased", v, c, want)
		}
	}
}
