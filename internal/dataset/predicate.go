package dataset

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PredicateOp is a comparison operator of a value predicate.
type PredicateOp int

// PredicateOp values.
const (
	// OpLT keeps rows whose column is strictly below the constant.
	OpLT PredicateOp = iota
	// OpLE keeps rows whose column is at most the constant.
	OpLE
	// OpGT keeps rows whose column is strictly above the constant.
	OpGT
	// OpGE keeps rows whose column is at least the constant.
	OpGE
	// OpEQ keeps rows whose column equals the constant exactly.
	OpEQ
	// OpNE keeps rows whose column differs from the constant.
	OpNE
)

// String returns the SQL-style operator spelling.
func (op PredicateOp) String() string {
	switch op {
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpEQ:
		return "=="
	case OpNE:
		return "!="
	}
	return fmt.Sprintf("PredicateOp(%d)", int(op))
}

// eval applies the comparison to one row value.
func (op PredicateOp) eval(v, c float64) bool {
	switch op {
	case OpLT:
		return v < c
	case OpLE:
		return v <= c
	case OpGT:
		return v > c
	case OpGE:
		return v >= c
	case OpEQ:
		return v == c
	case OpNE:
		return v != c
	}
	return false
}

// valid reports whether op is a known operator.
func (op PredicateOp) valid() bool { return op >= OpLT && op <= OpNE }

// Predicate is one conjunct of a table filter. Two forms exist:
//
//   - a value comparison — Column op Value — over the aggregated value
//     column (Column "" or the column's ingested name) or any extra
//     numeric column the table carries;
//   - a group-name inclusion — Groups non-empty — keeping only the listed
//     groups. Inclusion predicates answer from the table's group index
//     (the offsets) without touching a single row.
//
// A filter is the conjunction of its predicates.
type Predicate struct {
	// Column names the compared column: "" (or the table's value-column
	// name) for the aggregated value, otherwise an extra column name.
	// Ignored for inclusion predicates.
	Column string
	// Op is the comparison operator.
	Op PredicateOp
	// Value is the comparison constant.
	Value float64
	// Groups, when non-empty, turns the predicate into a group-name
	// inclusion filter; Column/Op/Value are ignored.
	Groups []string
}

// String renders the predicate the way the vizsample -where flag parses it.
func (p Predicate) String() string {
	if len(p.Groups) > 0 {
		return "group in " + strings.Join(p.Groups, "|")
	}
	col := p.Column
	if col == "" {
		col = "value"
	}
	return fmt.Sprintf("%s%s%v", col, p.Op, p.Value)
}

// FingerprintPredicates returns a canonical key for a predicate
// conjunction: conjunction order is irrelevant (AND commutes), group lists
// are order-insensitive sets, and float constants are keyed by their exact
// bit pattern. Two Where clauses with equal fingerprints select exactly the
// same rows of any table, which is what lets the engine reuse one cached
// selection across queries.
func FingerprintPredicates(preds []Predicate) string {
	parts := make([]string, 0, len(preds))
	for _, p := range preds {
		if len(p.Groups) > 0 {
			names := append([]string(nil), p.Groups...)
			sort.Strings(names)
			parts = append(parts, "g:"+strings.Join(names, "\x00"))
			continue
		}
		parts = append(parts, fmt.Sprintf("v:%s\x00%d\x00%s",
			p.Column, int(p.Op), strconv.FormatUint(math.Float64bits(p.Value), 16)))
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x01")
}

// validatePredicates resolves every predicate against the table's columns:
// value predicates get a column index (-1 for the aggregated value column,
// otherwise an index into the extra columns), inclusion predicates get
// their group names checked against the dictionary. Unknown columns,
// unknown groups, NaN constants, and unknown operators are rejected here so
// filter errors name the mistake rather than surfacing as empty views.
func (t *Table) validatePredicates(preds []Predicate) (valuePreds []resolvedPredicate, include map[int]bool, err error) {
	for _, p := range preds {
		if len(p.Groups) > 0 {
			set := map[int]bool{}
			for _, name := range p.Groups {
				gi := -1
				for i, n := range t.names {
					if n == name {
						gi = i
						break
					}
				}
				if gi < 0 {
					return nil, nil, fmt.Errorf("dataset: filter names unknown group %q", name)
				}
				set[gi] = true
			}
			// Conjunction of inclusion lists: intersect.
			if include == nil {
				include = set
			} else {
				for gi := range include {
					if !set[gi] {
						delete(include, gi)
					}
				}
			}
			continue
		}
		if !p.Op.valid() {
			return nil, nil, fmt.Errorf("dataset: filter has unknown operator %v", p.Op)
		}
		if math.IsNaN(p.Value) {
			return nil, nil, fmt.Errorf("dataset: filter constant for column %q is NaN", p.Column)
		}
		col := -1
		if p.Column != "" && p.Column != "value" && p.Column != t.valueName {
			col = -2
			for i, n := range t.extraNames {
				if n == p.Column {
					col = i
					break
				}
			}
			if col == -2 {
				return nil, nil, fmt.Errorf("dataset: filter names unknown column %q (have value column %q and extra columns %v)",
					p.Column, t.valueName, t.extraNames)
			}
		}
		valuePreds = append(valuePreds, resolvedPredicate{col: col, op: p.Op, c: p.Value})
	}
	return valuePreds, include, nil
}

// resolvedPredicate is a value predicate bound to a concrete column:
// col == -1 is the aggregated value column, col >= 0 indexes the extras.
type resolvedPredicate struct {
	col int
	op  PredicateOp
	c   float64
}
